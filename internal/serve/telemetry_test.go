package serve

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"smartndr/internal/obs"
)

// stepClock is an injectable clock: every Now() advances by the
// current step, so request durations are exact multiples of it —
// handleRun reads the clock exactly twice (admission and finish), so a
// request observed with step d has duration d.
type stepClock struct {
	mu   sync.Mutex
	t    time.Time
	step time.Duration
}

func newStepClock(step time.Duration) *stepClock {
	return &stepClock{t: time.Unix(1000, 0), step: step}
}

func (c *stepClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.t = c.t.Add(c.step)
	return c.t
}

func (c *stepClock) setStep(d time.Duration) {
	c.mu.Lock()
	c.step = d
	c.mu.Unlock()
}

func getJSON(t *testing.T, ts *httptest.Server, path string, out any) *http.Response {
	t.Helper()
	resp, err := http.Get(ts.URL + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	if out != nil {
		if err := json.Unmarshal(readBody(t, resp), out); err != nil {
			t.Fatalf("GET %s: decoding: %v", path, err)
		}
	}
	return resp
}

func TestRequestLatencyHistogramsAndStatszPercentiles(t *testing.T) {
	sr := newStubRunner()
	clock := newStepClock(time.Millisecond)
	s := New(Config{Runner: sr, Now: clock.Now})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	readBody(t, postFlow(t, ts, `{"bench":"cns01"}`)) // cold
	readBody(t, postFlow(t, ts, `{"bench":"cns01"}`)) // hit
	readBody(t, postFlow(t, ts, `{"bench"`))          // 400 → error class

	var st Statsz
	getJSON(t, ts, "/v1/statsz", &st)
	for key, wantCount := range map[string]uint64{
		"flow.cold":  1,
		"flow.hit":   1,
		"flow.error": 1,
	} {
		got, ok := st.Latency[key]
		if !ok {
			t.Fatalf("statsz latency missing %q: %+v", key, st.Latency)
		}
		if got.Count != wantCount {
			t.Errorf("latency[%q].count = %d, want %d", key, got.Count, wantCount)
		}
		if !(got.P50MS > 0 && got.P50MS <= got.P95MS && got.P95MS <= got.P99MS) {
			t.Errorf("latency[%q] percentiles not ordered: %+v", key, got)
		}
	}
	if _, ok := st.Latency["flow.refused"]; ok {
		t.Error("refused class reported before any refusal")
	}
	if _, ok := st.Latency["sweep.cold"]; ok {
		t.Error("empty sweep histogram leaked into statsz")
	}
	// Every request took exactly one 1ms clock step, landing in the
	// le=1ms bucket, so p50 interpolates inside (0.5, 1].
	if got := st.Latency["flow.cold"].P50MS; !(got > 0.5 && got <= 1) {
		t.Errorf("flow.cold p50 = %gms, want in (0.5, 1]", got)
	}

	// Draining refusals land in the refused class.
	if err := s.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	resp := postFlow(t, ts, `{"bench":"cns02"}`)
	readBody(t, resp)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining status = %d", resp.StatusCode)
	}
	getJSON(t, ts, "/v1/statsz", &st)
	if got := st.Latency["flow.refused"].Count; got != 1 {
		t.Errorf("flow.refused count = %d, want 1", got)
	}
}

func TestMetricszExposition(t *testing.T) {
	sr := newStubRunner()
	spanObs := obs.NewSpanObserver(nil)
	tracer := obs.New(spanObs)
	defer tracer.Close()
	s := New(Config{Runner: sr, Tracer: tracer, SpanObs: spanObs, Now: newStepClock(time.Millisecond).Now})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	readBody(t, postFlow(t, ts, `{"bench":"cns01"}`)) // cold
	readBody(t, postFlow(t, ts, `{"bench":"cns01"}`)) // hit

	resp, err := http.Get(ts.URL + "/metricsz")
	if err != nil {
		t.Fatal(err)
	}
	body := string(readBody(t, resp))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metricsz status = %d: %s", resp.StatusCode, body)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("content type = %q", ct)
	}
	for _, want := range []string{
		"# TYPE smartndr_serve_requests_total counter",
		"smartndr_serve_requests_total 2",
		"smartndr_serve_cache_hits_total 1",
		"# TYPE smartndr_serve_flow_cold_seconds histogram",
		`smartndr_serve_flow_cold_seconds_bucket{le="+Inf"} 1`,
		"smartndr_serve_flow_cold_seconds_count 1",
		"smartndr_serve_flow_hit_seconds_count 1",
		"# TYPE smartndr_go_goroutines gauge",
		"# TYPE smartndr_go_gc_cycles_total counter",
		"# TYPE smartndr_span_duration_seconds histogram",
		`smartndr_span_duration_seconds_bucket{path="serve.flow",le="+Inf"} 2`,
		`smartndr_span_duration_seconds_count{path="serve.flow/stub.run"} 1`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
	// Parseability: every line is a comment or "<series> <value>".
	for _, line := range strings.Split(strings.TrimRight(body, "\n"), "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if i := strings.LastIndexByte(line, ' '); i <= 0 || i == len(line)-1 {
			t.Errorf("malformed exposition line %q", line)
		}
	}

	post, err := http.Post(ts.URL+"/metricsz", "text/plain", nil)
	if err != nil {
		t.Fatal(err)
	}
	readBody(t, post)
	if post.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("POST /metricsz status = %d, want 405", post.StatusCode)
	}
}

func TestTracezSlowestAndRecent(t *testing.T) {
	sr := newStubRunner()
	clock := newStepClock(time.Millisecond)
	tracer := obs.New(obs.NewSpanObserver(nil))
	defer tracer.Close()
	// Capacity 4: two slowest slots, two recent slots.
	s := New(Config{Runner: sr, Tracer: tracer, TracezCapacity: 4, Now: clock.Now})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	for _, req := range []struct {
		bench string
		step  time.Duration
	}{
		{"cns01", 1 * time.Millisecond},
		{"cns02", 5 * time.Millisecond},
		{"cns03", 2 * time.Millisecond},
		{"cns04", 10 * time.Millisecond},
	} {
		clock.setStep(req.step)
		readBody(t, postFlow(t, ts, `{"bench":"`+req.bench+`"}`))
	}

	var page TracezPage
	getJSON(t, ts, "/v1/tracez", &page)
	if page.Capacity != 4 || page.Total != 4 {
		t.Errorf("capacity/total = %d/%d, want 4/4", page.Capacity, page.Total)
	}
	if len(page.Slowest) != 2 || page.Slowest[0].Key != "cns04" || page.Slowest[1].Key != "cns02" {
		t.Fatalf("slowest = %+v, want [cns04 cns02]", page.Slowest)
	}
	if page.Slowest[0].DurNS != (10 * time.Millisecond).Nanoseconds() {
		t.Errorf("slowest dur = %d, want 10ms", page.Slowest[0].DurNS)
	}
	if len(page.Recent) != 2 || page.Recent[0].Key != "cns03" || page.Recent[1].Key != "cns04" {
		t.Fatalf("recent = %+v, want [cns03 cns04] oldest→newest", page.Recent)
	}
	rec := page.Slowest[0]
	if rec.Endpoint != "flow" || rec.Outcome != latCold || rec.Status != http.StatusOK || rec.Cache != CacheMiss {
		t.Errorf("slowest record envelope = %+v", rec)
	}
	if len(rec.Spans) != 1 || rec.Spans[0].Span != "serve.flow" {
		t.Fatalf("slowest spans = %+v, want one serve.flow root", rec.Spans)
	}
	if kids := rec.Spans[0].Children; len(kids) != 1 || kids[0].Span != "serve.flow/stub.run" {
		t.Errorf("root children = %+v, want serve.flow/stub.run", kids)
	}

	// Disabled buffer → 404.
	off := New(Config{Runner: newStubRunner()})
	tsOff := httptest.NewServer(off.Handler())
	defer tsOff.Close()
	resp := getJSON(t, tsOff, "/v1/tracez", nil)
	readBody(t, resp)
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("disabled tracez status = %d, want 404", resp.StatusCode)
	}
}

func TestTraceBufferBounds(t *testing.T) {
	b := NewTraceBuffer(6) // 3 slowest + 3 recent
	for i := 1; i <= 10; i++ {
		dur := int64(i)
		if i == 4 {
			dur = 100 // an early outlier must survive the whole run
		}
		b.Add(TraceRecord{Req: int64(i), DurNS: dur})
	}
	page := b.Snapshot()
	if page.Total != 10 {
		t.Errorf("total = %d, want 10", page.Total)
	}
	if len(page.Slowest) != 3 || page.Slowest[0].DurNS != 100 ||
		page.Slowest[1].Req != 10 || page.Slowest[2].Req != 9 {
		t.Errorf("slowest = %+v", page.Slowest)
	}
	if len(page.Recent) != 3 || page.Recent[0].Req != 8 || page.Recent[2].Req != 10 {
		t.Errorf("recent = %+v", page.Recent)
	}
	// Ties keep arrival order (deterministic selection).
	tie := NewTraceBuffer(4)
	for i := 1; i <= 4; i++ {
		tie.Add(TraceRecord{Req: int64(i), DurNS: 7})
	}
	if got := tie.Snapshot().Slowest; got[0].Req != 1 || got[1].Req != 2 {
		t.Errorf("tie-broken slowest = %+v, want arrival order", got)
	}
}

func TestBuildSpanTreeNesting(t *testing.T) {
	evs := []obs.SpanEvent{
		// End order (innermost first), as a collector would see them.
		{Span: "serve.sweep/sweep.build", Depth: 1, StartNS: 110, DurNS: 40},
		{Span: "serve.sweep/sweep.arms/arm", Depth: 2, StartNS: 160, DurNS: 10},
		{Span: "serve.sweep/sweep.arms/arm", Depth: 2, StartNS: 161, DurNS: 12},
		{Span: "serve.sweep/sweep.arms", Depth: 1, StartNS: 155, DurNS: 30},
		{Span: "serve.sweep", Depth: 0, StartNS: 100, DurNS: 100},
	}
	roots := buildSpanTree(evs)
	if len(roots) != 1 || roots[0].Span != "serve.sweep" {
		t.Fatalf("roots = %+v", roots)
	}
	if roots[0].StartNS != 0 {
		t.Errorf("root start = %d, want 0 (request-relative)", roots[0].StartNS)
	}
	kids := roots[0].Children
	if len(kids) != 2 || kids[0].Span != "serve.sweep/sweep.build" || kids[1].Span != "serve.sweep/sweep.arms" {
		t.Fatalf("children = %+v", kids)
	}
	arms := kids[1].Children
	if len(arms) != 2 || arms[0].StartNS != 60 || arms[1].StartNS != 61 {
		t.Errorf("arm siblings = %+v, want both nested under sweep.arms", arms)
	}
	if buildSpanTree(nil) != nil {
		t.Error("empty events must yield nil")
	}
}

func TestLatencyClass(t *testing.T) {
	cases := []struct {
		status  int
		outcome string
		want    string
	}{
		{200, CacheMiss, latCold},
		{200, CacheHit, latHit},
		{200, CacheShared, latHit},
		{429, "", latRefused},
		{503, "", latRefused},
		{400, "", latError},
		{405, "", latError},
		{500, CacheMiss, latError},
		{504, CacheMiss, latError},
	}
	for _, c := range cases {
		if got := latencyClass(c.status, c.outcome); got != c.want {
			t.Errorf("latencyClass(%d, %q) = %q, want %q", c.status, c.outcome, got, c.want)
		}
	}
}
