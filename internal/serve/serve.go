// Package serve is the long-running flow service behind cmd/smartndrd:
// an HTTP/JSON layer over the smartndr engine that amortizes work
// across requests instead of paying full synthesis cost per CLI
// invocation.
//
// The endpoints:
//
//	POST /v1/flow    run one benchmark through one scheme → metrics
//	POST /v1/sweep   scheme×corner arm batch against one shared tree
//	POST /v1/batch   many flow requests, one round trip, index-ordered
//	POST /v1/session          open a stateful design session (see below)
//	POST /v1/session/{id}/delta  apply edits / roll back, re-evaluate warm
//	GET  /v1/session/{id}     session state (rev, key); DELETE closes it
//	GET  /v1/healthz liveness (503 while draining)
//	GET  /v1/statsz  counters, cache and admission state, session counts
//
// Three service properties hold regardless of the engine underneath:
//
//   - Content-addressed caching. Every result body is keyed by a
//     canonical hash of (spec, technology, library, scheme, knobs); a
//     warm hit replays the exact bytes of the cold run, and concurrent
//     identical requests collapse onto one execution (singleflight).
//     Soundness rests on the engine's bit-identical determinism.
//   - Admission control. A bounded gate (par.Gate) caps concurrent
//     runs and the wait line; beyond that the server refuses with 429
//     and Retry-After rather than queueing unboundedly. Every request
//     runs under a deadline.
//   - Graceful drain. Drain stops admission (503 + Retry-After),
//     lets in-flight requests finish, and then returns, so SIGTERM
//     never truncates a run.
//
// Sessions are the exception to statelessness: POST /v1/session builds
// one tree, keeps it live with a dirty-region STA engine, and applies
// serialized edit deltas in microseconds. The Result field of every
// session response is still content-addressed — byte-identical to a
// cold /v1/flow of the equivalently edited request (the session-replay
// differential suite enforces this) — so only the session envelope
// (IDs, rev counters) is stateful. The store evicts idle sessions by
// TTL and least-recently-used ones under memory pressure; clients
// re-hydrate by re-creating with their last edit state, landing on the
// same content addresses.
//
// Responses carry no volatile fields — cache outcome (hit|miss|shared)
// travels in the X-Cache header and on the request's span tree, which
// is tagged with the canonical key, cache outcome, and status. The
// wall clock is used only for operational metadata (deadlines,
// Retry-After, uptime); result bytes never depend on it. See
// docs/service.md.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"smartndr/internal/obs"
	"smartndr/internal/par"
)

// Config parameterizes a Server. The zero value serves with defaults
// sized for one machine.
type Config struct {
	// Runner executes requests; nil selects the production FlowRunner.
	Runner Runner
	// MaxConcurrent caps requests executing at once (default: all
	// cores). Cache hits bypass the gate — they are pure lookups.
	MaxConcurrent int
	// QueueDepth caps requests waiting for a slot before the server
	// refuses with 429 (default: 2×MaxConcurrent).
	QueueDepth int
	// RequestTimeout is the per-request deadline; a request's
	// timeout_ms may shorten but never extend it (default 120s).
	RequestTimeout time.Duration
	// RetryAfter is the hint sent with 429/503 refusals (default 1s,
	// rounded up to whole seconds on the wire).
	RetryAfter time.Duration
	// CacheEntries bounds the result cache (default 256).
	CacheEntries int
	// Workers bounds per-request sweep fan-out for the default runner
	// (0 = all cores).
	Workers int
	// MaxBodyBytes caps request bodies; oversize requests are refused
	// with 413 before any decoding (default 1 MiB). Large inline specs
	// — e.g. hierarchical runs described sink-by-sink — may need more;
	// the daemon exposes this as -max-spec-bytes.
	MaxBodyBytes int64
	// Tracer, when non-nil, records one span tree per request plus
	// service counters. Each request gets a scoped view, so concurrent
	// requests never interleave their span nesting.
	Tracer *obs.Tracer
	// SpanObs, when non-nil, contributes its per-span-path latency
	// histograms to /metricsz. Wire the same observer into the Tracer's
	// sink chain (obs.NewSpanObserver) so every engine phase the tracer
	// sees lands in a distribution.
	SpanObs *obs.SpanObserver
	// TracezCapacity bounds the /v1/tracez buffer of recent request
	// span trees: half holds the slowest requests seen, half a ring of
	// the most recent. 0 disables the endpoint.
	TracezCapacity int
	// SessionTTL is the idle lifetime of a design session; each use
	// resets the clock (default 15m). Requests may shorten their own
	// session's TTL via ttl_ms but never extend past this.
	SessionTTL time.Duration
	// MaxSessions caps live sessions; the least recently used is
	// evicted to admit a new one (default 64).
	MaxSessions int
	// SessionMaxBytes soft-caps the summed memory estimate of live
	// sessions (default 256 MiB); LRU eviction keeps the total under it.
	SessionMaxBytes int64
	// Now overrides the clock (tests). Nil uses the real clock.
	Now func() time.Time
}

// Request-latency outcome classes, one histogram per endpoint × class
// (see the serve.<endpoint>_<class>_seconds registry names).
const (
	latCold    = "cold"    // executed the engine (cache miss, 200)
	latHit     = "hit"     // served from cache or a shared flight (200)
	latRefused = "refused" // shed: saturated (429) or draining/canceled (503)
	latError   = "error"   // everything else (4xx/5xx, timeouts)
)

// Endpoint names for the run endpoints (span names are serve.<name>).
const (
	epFlow  = "flow"
	epSweep = "sweep"
	epBatch = "batch"
)

// Server is the flow service. Create with New, expose via Handler, and
// stop with Drain.
type Server struct {
	runner     Runner
	gate       *par.Gate
	cache      *Cache
	mux        *http.ServeMux
	tr         *obs.Tracer
	reg        *obs.Registry
	spanObs    *obs.SpanObserver
	tracez     *TraceBuffer
	lat        map[string]map[string]*obs.Histogram // endpoint → class → histogram
	sessions   *sessionStore
	maxBody    int64
	timeout    time.Duration
	retryAfter time.Duration
	now        func() time.Time
	start      time.Time
	reqID      atomic.Int64

	stateMu  sync.Mutex
	draining bool
	inflight int
	idle     chan struct{} // open while draining with requests in flight
}

// New returns a ready-to-serve Server.
func New(cfg Config) *Server {
	if cfg.MaxConcurrent <= 0 {
		cfg.MaxConcurrent = runtime.GOMAXPROCS(0)
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 2 * cfg.MaxConcurrent
	}
	if cfg.RequestTimeout <= 0 {
		cfg.RequestTimeout = 120 * time.Second
	}
	if cfg.RetryAfter <= 0 {
		cfg.RetryAfter = time.Second
	}
	if cfg.CacheEntries <= 0 {
		cfg.CacheEntries = 256
	}
	if cfg.MaxBodyBytes <= 0 {
		cfg.MaxBodyBytes = defaultMaxBodyBytes
	}
	if cfg.SessionTTL <= 0 {
		cfg.SessionTTL = defaultSessionTTL
	}
	if cfg.MaxSessions <= 0 {
		cfg.MaxSessions = defaultMaxSessions
	}
	if cfg.SessionMaxBytes <= 0 {
		cfg.SessionMaxBytes = defaultSessionMaxBytes
	}
	if cfg.Runner == nil {
		cfg.Runner = &FlowRunner{Workers: cfg.Workers}
	}
	now := cfg.Now
	if now == nil {
		now = time.Now
	}
	reg := cfg.Tracer.Registry()
	if reg == nil {
		// Counters stay useful (statsz) even when tracing is off.
		reg = &obs.Registry{}
	}
	s := &Server{
		runner:     cfg.Runner,
		gate:       par.NewGate(cfg.MaxConcurrent, cfg.QueueDepth),
		tr:         cfg.Tracer,
		reg:        reg,
		maxBody:    cfg.MaxBodyBytes,
		timeout:    cfg.RequestTimeout,
		retryAfter: cfg.RetryAfter,
		now:        now,
	}
	s.start = s.now()
	s.cache = NewCache(cfg.CacheEntries, s.reg)
	s.sessions = newSessionStore(cfg.SessionTTL, cfg.MaxSessions, cfg.SessionMaxBytes, s.now, s.reg)
	s.spanObs = cfg.SpanObs
	if cfg.TracezCapacity > 0 {
		s.tracez = NewTraceBuffer(cfg.TracezCapacity)
	}
	// One latency histogram per endpoint × outcome class, registered up
	// front under constant names so the metric namespace is statically
	// enumerable (the metricname analyzer enforces the convention) and
	// all series exist from the first scrape.
	s.lat = map[string]map[string]*obs.Histogram{
		epFlow: {
			latCold:    reg.Histogram("serve.flow_cold_seconds"),
			latHit:     reg.Histogram("serve.flow_hit_seconds"),
			latRefused: reg.Histogram("serve.flow_refused_seconds"),
			latError:   reg.Histogram("serve.flow_error_seconds"),
		},
		epSweep: {
			latCold:    reg.Histogram("serve.sweep_cold_seconds"),
			latHit:     reg.Histogram("serve.sweep_hit_seconds"),
			latRefused: reg.Histogram("serve.sweep_refused_seconds"),
			latError:   reg.Histogram("serve.sweep_error_seconds"),
		},
		epBatch: {
			latCold:    reg.Histogram("serve.batch_cold_seconds"),
			latHit:     reg.Histogram("serve.batch_hit_seconds"),
			latRefused: reg.Histogram("serve.batch_refused_seconds"),
			latError:   reg.Histogram("serve.batch_error_seconds"),
		},
		epSessionCreate: {
			latCold:    reg.Histogram("serve.session_create_cold_seconds"),
			latHit:     reg.Histogram("serve.session_create_hit_seconds"),
			latRefused: reg.Histogram("serve.session_create_refused_seconds"),
			latError:   reg.Histogram("serve.session_create_error_seconds"),
		},
		epSessionDelta: {
			latCold:    reg.Histogram("serve.session_delta_cold_seconds"),
			latHit:     reg.Histogram("serve.session_delta_hit_seconds"),
			latRefused: reg.Histogram("serve.session_delta_refused_seconds"),
			latError:   reg.Histogram("serve.session_delta_error_seconds"),
		},
		epSessionRead: {
			latCold:    reg.Histogram("serve.session_read_cold_seconds"),
			latHit:     reg.Histogram("serve.session_read_hit_seconds"),
			latRefused: reg.Histogram("serve.session_read_refused_seconds"),
			latError:   reg.Histogram("serve.session_read_error_seconds"),
		},
	}
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("/v1/flow", s.handleFlow)
	s.mux.HandleFunc("/v1/sweep", s.handleSweep)
	s.mux.HandleFunc("/v1/batch", s.handleBatch)
	s.mux.HandleFunc("/v1/session", s.handleSessionCreate)
	s.mux.HandleFunc("/v1/session/{id}", s.handleSessionByID)
	s.mux.HandleFunc("/v1/session/{id}/delta", s.handleSessionDelta)
	s.mux.HandleFunc("/v1/healthz", s.handleHealthz)
	s.mux.HandleFunc("/v1/statsz", s.handleStatsz)
	s.mux.HandleFunc("/v1/tracez", s.handleTracez)
	s.mux.HandleFunc("/metricsz", s.handleMetricsz)
	return s
}

// Handler returns the service's HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// Cache exposes the result cache (tests and statsz).
func (s *Server) Cache() *Cache { return s.cache }

// Draining reports whether Drain has begun.
func (s *Server) Draining() bool {
	s.stateMu.Lock()
	defer s.stateMu.Unlock()
	return s.draining
}

// admit registers a request unless the server is draining.
func (s *Server) admit() bool {
	s.stateMu.Lock()
	defer s.stateMu.Unlock()
	if s.draining {
		return false
	}
	s.inflight++
	return true
}

// depart retires an admitted request, releasing Drain when the last
// one finishes.
func (s *Server) depart() {
	s.stateMu.Lock()
	s.inflight--
	if s.inflight == 0 && s.idle != nil {
		close(s.idle)
		s.idle = nil
	}
	s.stateMu.Unlock()
}

// Drain stops admitting work and waits for in-flight requests to
// finish (or ctx to end). After Drain begins, /v1/flow and /v1/sweep
// refuse with 503 + Retry-After and /v1/healthz reports 503, so load
// balancers stop routing here while the tail completes. Idempotent.
func (s *Server) Drain(ctx context.Context) error {
	s.stateMu.Lock()
	s.draining = true
	if s.inflight > 0 && s.idle == nil {
		s.idle = make(chan struct{})
	}
	idle := s.idle
	s.stateMu.Unlock()
	if idle == nil {
		return nil
	}
	select {
	case <-idle:
		return nil
	case <-ctx.Done():
		return fmt.Errorf("serve: drain interrupted with requests in flight: %w", ctx.Err())
	}
}

// handleFlow serves POST /v1/flow.
func (s *Server) handleFlow(w http.ResponseWriter, r *http.Request) {
	s.handleRun(w, r, epFlow, func(body []byte) (string, loader, time.Duration, error) {
		req, err := DecodeFlowRequest(body)
		if err != nil {
			return "", nil, 0, err
		}
		key, err := s.runner.FlowKey(req)
		if err != nil {
			return "", nil, 0, err
		}
		return key, func(ctx context.Context, tr *obs.Tracer) (any, error) {
			return s.runner.RunFlow(ctx, req, tr)
		}, s.resolveTimeout(req.TimeoutMS), nil
	})
}

// handleSweep serves POST /v1/sweep.
func (s *Server) handleSweep(w http.ResponseWriter, r *http.Request) {
	s.handleRun(w, r, epSweep, func(body []byte) (string, loader, time.Duration, error) {
		req, err := DecodeSweepRequest(body)
		if err != nil {
			return "", nil, 0, err
		}
		key, err := s.runner.SweepKey(req)
		if err != nil {
			return "", nil, 0, err
		}
		return key, func(ctx context.Context, tr *obs.Tracer) (any, error) {
			return s.runner.RunSweep(ctx, req, tr)
		}, s.resolveTimeout(req.TimeoutMS), nil
	})
}

// loader executes one admitted request under the request-scoped tracer.
type loader func(ctx context.Context, tr *obs.Tracer) (any, error)

// resolveTimeout clamps a request's timeout_ms against the server
// bound: requests may shorten their deadline, never extend it.
func (s *Server) resolveTimeout(ms int) time.Duration {
	if ms <= 0 {
		return s.timeout
	}
	d := time.Duration(ms) * time.Millisecond
	if d > s.timeout {
		return s.timeout
	}
	return d
}

// handleRun is the shared request path: decode → key → cache/flight →
// admission → run → respond. Every outcome lands on one request span
// tagged with the canonical key, cache outcome, and HTTP status; on
// the way out the request is recorded into the per-endpoint/per-class
// latency histogram and (when enabled) the tracez buffer.
func (s *Server) handleRun(w http.ResponseWriter, r *http.Request,
	endpoint string, prepare func(body []byte) (string, loader, time.Duration, error)) {

	t0 := s.now()
	var (
		reqID   int64
		status  int
		key     string
		outcome string // cache outcome: hit|miss|shared (empty pre-cache)
		col     *obs.Collector
	)
	// Registered first so it runs last — after the request span has
	// ended and its event has landed in col.
	defer func() {
		d := s.now().Sub(t0)
		class := latencyClass(status, outcome)
		if h := s.lat[endpoint][class]; h != nil {
			h.Observe(d.Seconds())
		}
		if s.tracez != nil {
			var evs []obs.SpanEvent
			if col != nil {
				evs = col.Events()
			}
			s.tracez.Add(TraceRecord{
				Req: reqID, Endpoint: endpoint, Key: key, Outcome: class,
				Cache: outcome, Status: status, DurNS: d.Nanoseconds(),
				Spans: buildSpanTree(evs),
			})
		}
	}()

	if r.Method != http.MethodPost {
		status = http.StatusMethodNotAllowed
		s.writeError(w, nil, status, fmt.Errorf("serve: %s needs POST", r.URL.Path))
		return
	}
	if !s.admit() {
		status = http.StatusServiceUnavailable
		s.refuse(w, nil, status, "draining")
		return
	}
	defer s.depart()
	s.reg.Add("serve.requests", 1)

	reqID = s.reqID.Add(1)
	rtr := s.tr.Scoped()
	if s.tracez != nil && s.tr.Enabled() {
		col = obs.NewCollector()
		rtr = s.tr.ScopedTee(col)
	}
	sp := rtr.Start("serve."+endpoint, obs.I("req", int(reqID)))
	defer sp.End()

	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.maxBody))
	if err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			status = http.StatusRequestEntityTooLarge
			s.writeError(w, sp, status,
				fmt.Errorf("serve: request body exceeds %d bytes", tooLarge.Limit))
			return
		}
		status = http.StatusBadRequest
		s.writeError(w, sp, status, fmt.Errorf("serve: reading body: %w", err))
		return
	}
	var run loader
	var timeout time.Duration
	key, run, timeout, err = prepare(body)
	if err != nil {
		status = http.StatusBadRequest
		s.writeError(w, sp, status, err)
		return
	}
	sp.Set("key", key)

	ctx, cancel := context.WithTimeout(r.Context(), timeout)
	defer cancel()

	var bytesOut []byte
	bytesOut, outcome, err = s.cache.Do(ctx, key, func() ([]byte, error) {
		// Cache miss: this call owns the execution. Admission happens
		// here so hits and followers never consume a slot.
		release, err := s.gate.Acquire(ctx)
		if err != nil {
			return nil, err
		}
		defer release()
		out, err := run(ctx, rtr)
		if err != nil {
			return nil, err
		}
		return json.Marshal(out)
	})
	sp.Set("cache", outcome)
	if err != nil {
		switch {
		case errors.Is(err, par.ErrSaturated):
			status = http.StatusTooManyRequests
			s.reg.Add("serve.saturated", 1)
			s.refuse(w, sp, status, "saturated")
		case errors.Is(err, context.DeadlineExceeded):
			status = http.StatusGatewayTimeout
			s.reg.Add("serve.timeouts", 1)
			s.writeError(w, sp, status, err)
		case errors.Is(err, context.Canceled):
			status = http.StatusServiceUnavailable
			s.writeError(w, sp, status, err)
		default:
			status = http.StatusInternalServerError
			s.writeError(w, sp, status, err)
		}
		return
	}
	status = http.StatusOK
	sp.Set("status", http.StatusOK)
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("X-Cache", outcome)
	w.Header().Set("X-Key", key)
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(bytesOut)
}

// latencyClass maps a finished request onto its histogram class.
func latencyClass(status int, cacheOutcome string) string {
	switch {
	case status == http.StatusOK &&
		(cacheOutcome == CacheHit || cacheOutcome == CacheShared):
		return latHit
	case status == http.StatusOK:
		return latCold
	case status == http.StatusTooManyRequests || status == http.StatusServiceUnavailable:
		return latRefused
	default:
		return latError
	}
}

// handleHealthz serves GET /v1/healthz: 200 while serving, 503 while
// draining (so orchestration stops routing before shutdown).
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		s.writeError(w, nil, http.StatusMethodNotAllowed, fmt.Errorf("serve: healthz needs GET"))
		return
	}
	w.Header().Set("Content-Type", "application/json")
	if s.Draining() {
		w.Header().Set("Retry-After", s.retryAfterSeconds())
		w.WriteHeader(http.StatusServiceUnavailable)
		_ = json.NewEncoder(w).Encode(map[string]string{"status": "draining"})
		return
	}
	_ = json.NewEncoder(w).Encode(map[string]string{"status": "ok"})
}

// Statsz is the /v1/statsz body: a point-in-time operational snapshot.
type Statsz struct {
	UptimeMS int64 `json:"uptime_ms"`
	Draining bool  `json:"draining"`
	InFlight int   `json:"in_flight"`
	Waiting  int   `json:"waiting"`
	Slots    int   `json:"slots"`
	CacheLen int   `json:"cache_len"`
	CacheCap int   `json:"cache_cap"`
	// CacheShards is the per-stripe occupancy and hit/miss/eviction
	// view of the result cache; CacheBalance is the fullest stripe
	// over the mean (1.0 = even).
	CacheShards  []CacheShardStat `json:"cache_shards,omitempty"`
	CacheBalance float64          `json:"cache_balance,omitempty"`
	// Shards is the cluster backend view, present when the runner
	// routes across a fleet (see ShardStatser).
	Shards []ShardStat `json:"shards,omitempty"`
	// Sessions is the design-session store: live count and memory
	// footprint against their budgets.
	Sessions SessionStats              `json:"sessions"`
	Counters map[string]float64        `json:"counters,omitempty"`
	Latency  map[string]LatencySummary `json:"latency,omitempty"`
}

// LatencySummary is the statsz view of one request-latency histogram:
// count plus interpolated percentiles, in milliseconds. The same
// histograms back the /metricsz exposition, so the two endpoints can
// never disagree.
type LatencySummary struct {
	Count uint64  `json:"count"`
	P50MS float64 `json:"p50_ms"`
	P95MS float64 `json:"p95_ms"`
	P99MS float64 `json:"p99_ms"`
}

// latencySummaries derives the non-empty "endpoint.class" summaries
// from the request histograms.
func (s *Server) latencySummaries() map[string]LatencySummary {
	out := map[string]LatencySummary{}
	for endpoint, classes := range s.lat { //lint:commutative summaries land under distinct keys
		for class, h := range classes { //lint:commutative summaries land under distinct keys
			snap := h.Snapshot()
			if snap.Count == 0 {
				continue
			}
			out[endpoint+"."+class] = LatencySummary{
				Count: snap.Count,
				P50MS: snap.Quantile(0.50) * 1e3,
				P95MS: snap.Quantile(0.95) * 1e3,
				P99MS: snap.Quantile(0.99) * 1e3,
			}
		}
	}
	if len(out) == 0 {
		return nil
	}
	return out
}

// handleStatsz serves GET /v1/statsz.
func (s *Server) handleStatsz(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		s.writeError(w, nil, http.StatusMethodNotAllowed, fmt.Errorf("serve: statsz needs GET"))
		return
	}
	// Refresh the balance gauge on read so scrapes of /v1/statsz and
	// /metricsz agree on the same definition.
	s.reg.Set("serve.cache_shard_balance", s.cache.Balance())
	st := Statsz{
		UptimeMS:     s.now().Sub(s.start).Milliseconds(),
		Draining:     s.Draining(),
		InFlight:     s.gate.Held(),
		Waiting:      s.gate.Waiting(),
		Slots:        s.gate.Slots(),
		CacheLen:     s.cache.Len(),
		CacheCap:     s.cache.Cap(),
		CacheShards:  s.cache.ShardStats(),
		CacheBalance: s.cache.Balance(),
		Sessions:     s.sessions.stats(),
		Counters:     s.reg.Snapshot(),
		Latency:      s.latencySummaries(),
	}
	if ss, ok := s.runner.(ShardStatser); ok {
		st.Shards = ss.ShardStats()
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(st)
}

// refuse writes a retryable refusal (429 saturated / 503 draining)
// with a Retry-After hint.
func (s *Server) refuse(w http.ResponseWriter, sp *obs.Span, status int, reason string) {
	sp.Set("status", status)
	sp.Set("refused", reason)
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Retry-After", s.retryAfterSeconds())
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(errorResponse{Error: "serve: " + reason + ", retry later"})
}

func (s *Server) writeError(w http.ResponseWriter, sp *obs.Span, status int, err error) {
	sp.Set("status", status)
	sp.Set("error", err.Error())
	s.reg.Add("serve.errors", 1)
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(errorResponse{Error: err.Error()})
}

// retryAfterSeconds renders the Retry-After hint. A refused client
// should come back when a slot has likely opened, and a slot opens
// when a cold run finishes — so the hint tracks the recent cold p95
// rather than a static guess: a service running 100 ms flows tells
// clients "1", one grinding through 40 s hierarchical builds tells
// them "40". Before any cold run has completed, the configured
// RetryAfter is used. Whole seconds, rounded up, min 1 — Retry-After's
// wire grammar has no sub-second form.
func (s *Server) retryAfterSeconds() string {
	d := s.retryAfter
	if p95 := s.coldP95(); p95 > 0 {
		d = time.Duration(p95 * float64(time.Second))
	}
	secs := int((d + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	return strconv.Itoa(secs)
}

// coldP95 returns the slowest cold-class p95 across endpoints, in
// seconds (0 when no cold request has finished). Taking the max keeps
// the hint honest for mixed workloads: backing off long enough for the
// slowest endpoint never thrashes the fast one.
func (s *Server) coldP95() float64 {
	best := 0.0
	for _, classes := range s.lat { //lint:commutative max is order-independent
		h := classes[latCold]
		if h == nil {
			continue
		}
		snap := h.Snapshot()
		if snap.Count == 0 {
			continue
		}
		if q := snap.Quantile(0.95); q > best {
			best = q
		}
	}
	return best
}
