package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"strings"
	"sync"

	"smartndr/internal/obs"
)

// TraceRecord is one finished request as /v1/tracez reports it: the
// operational envelope (endpoint, key, outcome, status, duration) plus
// the request's span tree when a tracer is attached.
type TraceRecord struct {
	Req      int64       `json:"req"`
	Endpoint string      `json:"endpoint"`
	Key      string      `json:"key,omitempty"`
	Outcome  string      `json:"outcome"`         // cold|hit|refused|error
	Cache    string      `json:"cache,omitempty"` // hit|miss|shared
	Status   int         `json:"status"`
	DurNS    int64       `json:"dur_ns"`
	Spans    []*SpanNode `json:"spans,omitempty"`
}

// SpanNode is one span in a request's tree, with children nested.
// start_ns is the offset from the first span of the request, so trees
// read as request-relative timelines.
type SpanNode struct {
	Span     string         `json:"span"` // full slash-joined path
	StartNS  int64          `json:"start_ns"`
	DurNS    int64          `json:"dur_ns"`
	Attrs    map[string]any `json:"attrs,omitempty"`
	Children []*SpanNode    `json:"children,omitempty"`
}

// buildSpanTree nests one request's flat span events into trees. The
// events all come from one request-scoped tracer, so nesting is fully
// determined by start order, depth, and path prefix; concurrent
// Span.Child siblings (sweep arms) attach to the same parent.
func buildSpanTree(evs []obs.SpanEvent) []*SpanNode {
	if len(evs) == 0 {
		return nil
	}
	sorted := append([]obs.SpanEvent(nil), evs...)
	sort.SliceStable(sorted, func(a, b int) bool {
		if sorted[a].StartNS != sorted[b].StartNS {
			return sorted[a].StartNS < sorted[b].StartNS
		}
		return sorted[a].Depth < sorted[b].Depth
	})
	base := sorted[0].StartNS
	var roots []*SpanNode
	lastAt := map[int]*SpanNode{} // most recent node per depth
	pathAt := map[int]string{}
	for _, ev := range sorted {
		n := &SpanNode{
			Span:    ev.Span,
			StartNS: ev.StartNS - base,
			DurNS:   ev.DurNS,
			Attrs:   ev.Attrs,
		}
		if p := lastAt[ev.Depth-1]; p != nil && ev.Depth > 0 &&
			strings.HasPrefix(ev.Span, pathAt[ev.Depth-1]+"/") {
			p.Children = append(p.Children, n)
		} else {
			roots = append(roots, n)
		}
		lastAt[ev.Depth] = n
		pathAt[ev.Depth] = ev.Span
	}
	return roots
}

// TraceBuffer retains recent requests for /v1/tracez under a hard
// capacity bound: half the capacity always holds the slowest requests
// seen so far (a post-hoc outlier is inspectable even hours later),
// the other half is a ring of the most recent requests (the sampled
// tail — under load it represents a bounded recent window). Both sides
// store full span trees.
type TraceBuffer struct {
	mu      sync.Mutex
	nSlow   int
	nRecent int
	slow    []TraceRecord // sorted by DurNS descending, ties by arrival
	recent  []TraceRecord // ring
	next    int           // ring write index once full
	total   int64
}

// NewTraceBuffer returns a buffer bounded to capacity records total
// (minimum 2: one slowest slot, one recent slot).
func NewTraceBuffer(capacity int) *TraceBuffer {
	if capacity < 2 {
		capacity = 2
	}
	return &TraceBuffer{nSlow: capacity / 2, nRecent: capacity - capacity/2}
}

// Add records one finished request.
func (b *TraceBuffer) Add(rec TraceRecord) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.total++
	if len(b.recent) < b.nRecent {
		b.recent = append(b.recent, rec)
	} else {
		b.recent[b.next] = rec
		b.next = (b.next + 1) % b.nRecent
	}
	if len(b.slow) < b.nSlow {
		b.slow = append(b.slow, rec)
	} else if last := len(b.slow) - 1; rec.DurNS > b.slow[last].DurNS {
		b.slow[last] = rec
	} else {
		return
	}
	sort.SliceStable(b.slow, func(i, j int) bool { return b.slow[i].DurNS > b.slow[j].DurNS })
}

// TracezPage is the /v1/tracez response body.
type TracezPage struct {
	Capacity int           `json:"capacity"`
	Total    int64         `json:"total"`   // requests seen since start
	Slowest  []TraceRecord `json:"slowest"` // duration-descending
	Recent   []TraceRecord `json:"recent"`  // oldest → newest
}

// Snapshot returns the page: slowest requests plus the recent ring in
// arrival order.
func (b *TraceBuffer) Snapshot() TracezPage {
	b.mu.Lock()
	defer b.mu.Unlock()
	page := TracezPage{
		Capacity: b.nSlow + b.nRecent,
		Total:    b.total,
		Slowest:  append([]TraceRecord(nil), b.slow...),
	}
	if len(b.recent) < b.nRecent {
		page.Recent = append([]TraceRecord(nil), b.recent...)
	} else {
		page.Recent = make([]TraceRecord, 0, b.nRecent)
		for i := 0; i < b.nRecent; i++ {
			page.Recent = append(page.Recent, b.recent[(b.next+i)%b.nRecent])
		}
	}
	return page
}

// handleTracez serves GET /v1/tracez: the slowest and most recent
// request span trees. 404 when the buffer is disabled.
func (s *Server) handleTracez(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		s.writeError(w, nil, http.StatusMethodNotAllowed, fmt.Errorf("serve: tracez needs GET"))
		return
	}
	if s.tracez == nil {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusNotFound)
		_ = json.NewEncoder(w).Encode(errorResponse{Error: "serve: tracez disabled (start with -tracez-capacity > 0)"})
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(s.tracez.Snapshot())
}
