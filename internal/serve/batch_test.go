package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"smartndr/internal/obs"
)

func postBatch(t *testing.T, ts *httptest.Server, body string) *http.Response {
	t.Helper()
	resp, err := http.Post(ts.URL+"/v1/batch", "application/json", bytes.NewReader([]byte(body)))
	if err != nil {
		t.Fatalf("POST /v1/batch: %v", err)
	}
	return resp
}

func TestServeBatchRoundTrip(t *testing.T) {
	sr := newStubRunner()
	ts := httptest.NewServer(New(Config{Runner: sr}).Handler())
	defer ts.Close()

	body := `{"requests":[{"bench":"cns01"},{"bench":"cns02"},{"bench":"cns01"}]}`
	cold := postBatch(t, ts, body)
	coldBody := readBody(t, cold)
	if cold.StatusCode != http.StatusOK {
		t.Fatalf("cold batch status %d: %s", cold.StatusCode, coldBody)
	}
	if got := cold.Header.Get("X-Cache"); got != CacheMiss {
		t.Errorf("cold batch X-Cache = %q, want miss", got)
	}
	var out BatchResponse
	if err := json.Unmarshal(coldBody, &out); err != nil {
		t.Fatalf("batch response not JSON: %v", err)
	}
	if out.Key == "" || out.Key != cold.Header.Get("X-Key") {
		t.Errorf("batch key %q / X-Key %q", out.Key, cold.Header.Get("X-Key"))
	}
	if len(out.Results) != 3 {
		t.Fatalf("got %d results, want 3", len(out.Results))
	}
	for i, res := range out.Results {
		if res.Status != http.StatusOK || res.Error != "" {
			t.Errorf("item %d = %+v, want 200 with no error", i, res)
		}
	}
	// Duplicate items share one flight: two distinct benches → two runs.
	if sr.Runs() != 2 {
		t.Errorf("runner ran %d times for [cns01 cns02 cns01], want 2 (duplicate shares the flight)", sr.Runs())
	}
	if !bytes.Equal(out.Results[0].Flow, out.Results[2].Flow) {
		t.Errorf("duplicate items returned different bytes:\n%s\n%s",
			out.Results[0].Flow, out.Results[2].Flow)
	}

	// Each item's bytes are exactly the standalone /v1/flow bytes.
	flow := postFlow(t, ts, `{"bench":"cns02"}`)
	flowBody := readBody(t, flow)
	if !bytes.Equal(bytes.TrimSpace(flowBody), []byte(out.Results[1].Flow)) {
		t.Errorf("batch item bytes differ from standalone flow:\n%s\n%s", flowBody, out.Results[1].Flow)
	}

	// A warm batch replays identical bytes and reports a hit.
	warm := postBatch(t, ts, body)
	warmBody := readBody(t, warm)
	if got := warm.Header.Get("X-Cache"); got != CacheHit {
		t.Errorf("warm batch X-Cache = %q, want hit", got)
	}
	if !bytes.Equal(coldBody, warmBody) {
		t.Errorf("warm batch differs from cold:\n%s\n%s", coldBody, warmBody)
	}
}

func TestServeBatchWorkerCountInvariance(t *testing.T) {
	// Two fresh servers so both batches run cold; the worker knob must
	// not change a byte.
	sr1 := newStubRunner()
	ts1 := httptest.NewServer(New(Config{Runner: sr1}).Handler())
	defer ts1.Close()
	sr2 := newStubRunner()
	ts2 := httptest.NewServer(New(Config{Runner: sr2}).Handler())
	defer ts2.Close()

	items := make([]string, 8)
	for i := range items {
		items[i] = fmt.Sprintf(`{"bench":"cns0%d"}`, i+1)
	}
	list := strings.Join(items, ",")
	serial := postBatch(t, ts1, `{"requests":[`+list+`],"workers":1}`)
	serialBody := readBody(t, serial)
	wide := postBatch(t, ts2, `{"requests":[`+list+`],"workers":32}`)
	wideBody := readBody(t, wide)
	if serial.StatusCode != http.StatusOK || wide.StatusCode != http.StatusOK {
		t.Fatalf("statuses %d / %d", serial.StatusCode, wide.StatusCode)
	}
	if !bytes.Equal(serialBody, wideBody) {
		t.Errorf("batch bytes differ between workers=1 and workers=32:\n%s\n%s", serialBody, wideBody)
	}
}

// failingRunner wraps the stub and fails specific benches, so item
// isolation can be tested without touching the happy path.
type failingRunner struct {
	*stubRunner
	failBench string
}

func (fr *failingRunner) RunFlow(ctx context.Context, req *FlowRequest, tr *obs.Tracer) (*FlowResponse, error) {
	if req.Bench == fr.failBench {
		return nil, fmt.Errorf("engine exploded on %s", req.Bench)
	}
	return fr.stubRunner.RunFlow(ctx, req, tr)
}

func TestServeBatchItemFailureDoesNotPoisonSiblings(t *testing.T) {
	fr := &failingRunner{stubRunner: newStubRunner(), failBench: "cns05"}
	ts := httptest.NewServer(New(Config{Runner: fr}).Handler())
	defer ts.Close()

	resp := postBatch(t, ts, `{"requests":[{"bench":"cns01"},{"bench":"cns05"},{"bench":"cns03"}]}`)
	body := readBody(t, resp)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("envelope status %d, want 200 (items carry their own status): %s", resp.StatusCode, body)
	}
	if got := resp.Header.Get("X-Cache"); got != CacheMiss {
		t.Errorf("X-Cache = %q, want miss when any item failed", got)
	}
	var out BatchResponse
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if len(out.Results) != 3 {
		t.Fatalf("got %d results, want 3", len(out.Results))
	}
	if out.Results[0].Status != http.StatusOK || out.Results[2].Status != http.StatusOK {
		t.Errorf("sibling statuses = %d, %d, want 200", out.Results[0].Status, out.Results[2].Status)
	}
	if out.Results[1].Status != http.StatusInternalServerError ||
		!strings.Contains(out.Results[1].Error, "engine exploded") {
		t.Errorf("failed item = %+v, want 500 with the engine error", out.Results[1])
	}
	if len(out.Results[1].Flow) != 0 {
		t.Errorf("failed item carries flow bytes: %s", out.Results[1].Flow)
	}
}

func TestServeBatchValidation(t *testing.T) {
	sr := newStubRunner()
	ts := httptest.NewServer(New(Config{Runner: sr}).Handler())
	defer ts.Close()

	cases := []struct {
		name string
		body string
		want string
	}{
		{"empty", `{"requests":[]}`, "no requests"},
		{"missing", `{}`, "no requests"},
		{"per-item timeout", `{"requests":[{"bench":"a","timeout_ms":500}]}`, "per-item timeout_ms"},
		{"negative workers", `{"requests":[{"bench":"a"}],"workers":-1}`, "negative workers"},
		{"negative timeout", `{"requests":[{"bench":"a"}],"timeout_ms":-1}`, "negative timeout_ms"},
		{"unknown field", `{"requests":[{"bench":"a"}],"bogus":1}`, "unknown"},
		{"not json", `nope`, ""},
	}
	for _, c := range cases {
		resp := postBatch(t, ts, c.body)
		body := readBody(t, resp)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400: %s", c.name, resp.StatusCode, body)
		}
		if c.want != "" && !strings.Contains(string(body), c.want) {
			t.Errorf("%s: error %s does not mention %q", c.name, body, c.want)
		}
	}
	if sr.Runs() != 0 {
		t.Errorf("invalid batches reached the runner %d times", sr.Runs())
	}

	// The item cap rejects oversized batches before any key work.
	var sb strings.Builder
	sb.WriteString(`{"requests":[`)
	for i := 0; i <= maxBatchItems; i++ {
		if i > 0 {
			sb.WriteString(",")
		}
		fmt.Fprintf(&sb, `{"bench":"b%d"}`, i)
	}
	sb.WriteString(`]}`)
	resp := postBatch(t, ts, sb.String())
	body := readBody(t, resp)
	if resp.StatusCode != http.StatusBadRequest || !strings.Contains(string(body), "batch limit") {
		t.Errorf("oversized batch: status %d body %s, want 400 mentioning the batch limit", resp.StatusCode, body)
	}

	// Method check.
	getResp, err := http.Get(ts.URL + "/v1/batch")
	if err != nil {
		t.Fatal(err)
	}
	readBody(t, getResp)
	if getResp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /v1/batch = %d, want 405", getResp.StatusCode)
	}
}

func TestRetryAfterDerivedFromColdP95(t *testing.T) {
	sr := newStubRunner()
	s := New(Config{Runner: sr, RetryAfter: 2 * time.Second})

	// Before any cold run completes, the configured hint applies.
	if got := s.retryAfterSeconds(); got != "2" {
		t.Errorf("cold-start Retry-After = %q, want the configured \"2\"", got)
	}

	// Feed the flow cold histogram a fast regime: the hint follows the
	// p95 (rounded up to whole seconds, min 1).
	for i := 0; i < 20; i++ {
		s.lat[epFlow][latCold].Observe(0.05)
	}
	if got := s.retryAfterSeconds(); got != "1" {
		t.Errorf("fast-regime Retry-After = %q, want the 1s floor", got)
	}

	// A slow endpoint dominates: the hint takes the max cold p95 across
	// endpoints, ceiling-rounded. The expected value is derived through
	// the histogram's own quantile so the test pins the wiring, not the
	// bucket layout.
	for i := 0; i < 20; i++ {
		s.lat[epSweep][latCold].Observe(40.0)
	}
	p95 := s.coldP95()
	if p95 < 1.0 {
		t.Fatalf("coldP95 = %v after 40s observations; max-across-endpoints is broken", p95)
	}
	want := int((time.Duration(p95*float64(time.Second)) + time.Second - 1) / time.Second)
	if got := s.retryAfterSeconds(); got != fmt.Sprint(want) {
		t.Errorf("mixed-regime Retry-After = %q, want ceil(p95) = %d", got, want)
	}
}

func TestRetryAfterHeaderOnRefusalTracksColdP95(t *testing.T) {
	sr := newStubRunner()
	s := New(Config{Runner: sr, RetryAfter: time.Second})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// Simulate a history of ~3s cold flows, then drain: the refusal's
	// Retry-After must reflect the derived hint, not the static 1s.
	for i := 0; i < 10; i++ {
		s.lat[epFlow][latCold].Observe(3.0)
	}
	wantSecs := s.retryAfterSeconds()
	if wantSecs == "1" {
		t.Fatalf("derived hint still the static fallback; observations not visible")
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	resp := postFlow(t, ts, `{"bench":"late"}`)
	readBody(t, resp)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining flow = %d, want 503", resp.StatusCode)
	}
	if got := resp.Header.Get("Retry-After"); got != wantSecs {
		t.Errorf("Retry-After = %q, want derived %q", got, wantSecs)
	}
}
