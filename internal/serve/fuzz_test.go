package serve

import (
	"encoding/json"
	"reflect"
	"testing"

	"smartndr/internal/core"
)

// FuzzDecodeFlowRequest hammers the strict decoder with arbitrary
// bytes. Anything it accepts must satisfy the wire contract: the
// request re-encodes and re-decodes to the same value (no lossy
// fields), and the content address is computable and stable across the
// round trip — the property the result cache is built on.
func FuzzDecodeFlowRequest(f *testing.F) {
	f.Add([]byte(`{"bench":"cns01"}`))
	f.Add([]byte(`{"bench":"cns03","scheme":"blanket-ndr","tech":"tech65","top_k":3,"in_slew_ps":50,"timeout_ms":2000}`))
	f.Add([]byte(`{"spec":{"name":"x","sinks":40,"die_x":900,"die_y":900,"seed":7,"cap_min":1e-15,"cap_max":3e-15}}`))
	f.Add([]byte(`{"bench":"cns01","bogus":1}`))
	f.Add([]byte(`not json at all`))
	f.Add([]byte(`{"bench":"cns01"} trailing`))
	f.Fuzz(func(t *testing.T, data []byte) {
		req, err := DecodeFlowRequest(data)
		if err != nil {
			return // rejected input: nothing further to hold
		}
		out, err := json.Marshal(req)
		if err != nil {
			t.Fatalf("accepted request does not re-encode: %v", err)
		}
		req2, err := DecodeFlowRequest(out)
		if err != nil {
			t.Fatalf("re-encoded request rejected: %v\n%s", err, out)
		}
		if !reflect.DeepEqual(req, req2) {
			t.Fatalf("lossy round trip:\n%+v\n%+v", req, req2)
		}
		fr := &FlowRunner{}
		k1, err := fr.FlowKey(req)
		if err != nil {
			t.Fatalf("accepted request has no content address: %v", err)
		}
		k2, err := fr.FlowKey(req2)
		if err != nil || k1 != k2 {
			t.Fatalf("content address unstable across round trip: %q vs %q (%v)", k1, k2, err)
		}
	})
}

// FuzzDecodeBatchRequest hammers the /v1/batch decoder. Accepted
// batches must hold the wire contract (lossless round trip) plus the
// batch-specific invariants: a non-empty item list within the cap, no
// per-item deadlines, and a content address per item so the handler
// can always route and cache.
func FuzzDecodeBatchRequest(f *testing.F) {
	f.Add([]byte(`{"requests":[{"bench":"cns01"}]}`))
	f.Add([]byte(`{"requests":[{"bench":"cns01"},{"bench":"cns02","scheme":"blanket-ndr","top_k":3}],"workers":4,"timeout_ms":2000}`))
	f.Add([]byte(`{"requests":[{"spec":{"name":"x","sinks":16,"die_x":400,"die_y":400,"seed":5,"cap_min":1e-15,"cap_max":3e-15}}]}`))
	f.Add([]byte(`{"requests":[]}`))
	f.Add([]byte(`{"requests":[{"bench":"cns01","timeout_ms":50}]}`))
	f.Add([]byte(`{"requests":[{"bench":"cns01"}],"workers":-2}`))
	f.Add([]byte(`{"requests":[{"bench":"cns01"}],"bogus":true}`))
	f.Add([]byte(`not a batch`))
	f.Fuzz(func(t *testing.T, data []byte) {
		req, err := DecodeBatchRequest(data)
		if err != nil {
			return
		}
		if len(req.Requests) == 0 || len(req.Requests) > maxBatchItems {
			t.Fatalf("accepted batch with %d items (cap %d)", len(req.Requests), maxBatchItems)
		}
		if req.Workers < 0 || req.TimeoutMS < 0 {
			t.Fatalf("accepted negative knobs: workers=%d timeout_ms=%d", req.Workers, req.TimeoutMS)
		}
		out, err := json.Marshal(req)
		if err != nil {
			t.Fatalf("accepted batch does not re-encode: %v", err)
		}
		req2, err := DecodeBatchRequest(out)
		if err != nil {
			t.Fatalf("re-encoded batch rejected: %v\n%s", err, out)
		}
		if !reflect.DeepEqual(req, req2) {
			t.Fatalf("lossy round trip:\n%+v\n%+v", req, req2)
		}
		fr := &FlowRunner{}
		for i := range req.Requests {
			if req.Requests[i].TimeoutMS != 0 {
				t.Fatalf("accepted batch item %d with a per-item deadline", i)
			}
			k1, err := fr.FlowKey(&req.Requests[i])
			if err != nil {
				t.Fatalf("accepted batch item %d has no content address: %v", i, err)
			}
			k2, err := fr.FlowKey(&req2.Requests[i])
			if err != nil || k1 != k2 {
				t.Fatalf("item %d content address unstable: %q vs %q (%v)", i, k1, k2, err)
			}
		}
	})
}

// FuzzDecodeSweepRequest is FuzzDecodeFlowRequest for the sweep wire
// form, including the arm list.
func FuzzDecodeSweepRequest(f *testing.F) {
	f.Add([]byte(`{"bench":"cns01","arms":[{"scheme":"smart"}]}`))
	f.Add([]byte(`{"bench":"cns02","workers":4,"arms":[{"scheme":"smart","corner":"slow"},{"scheme":"blanket","corner":"fast"},{"scheme":"top-k"}]}`))
	f.Add([]byte(`{"spec":{"name":"x","sinks":20,"die_x":500,"die_y":500,"seed":1,"cap_min":1e-15,"cap_max":2e-15},"arms":[{"scheme":"trunk"}]}`))
	f.Add([]byte(`{"bench":"cns01","arms":[]}`))
	f.Add([]byte(`{"arms":[{"scheme":"psychic"}]}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		req, err := DecodeSweepRequest(data)
		if err != nil {
			return
		}
		out, err := json.Marshal(req)
		if err != nil {
			t.Fatalf("accepted request does not re-encode: %v", err)
		}
		req2, err := DecodeSweepRequest(out)
		if err != nil {
			t.Fatalf("re-encoded request rejected: %v\n%s", err, out)
		}
		if !reflect.DeepEqual(req, req2) {
			t.Fatalf("lossy round trip:\n%+v\n%+v", req, req2)
		}
		fr := &FlowRunner{}
		k1, err := fr.SweepKey(req)
		if err != nil {
			t.Fatalf("accepted request has no content address: %v", err)
		}
		k2, err := fr.SweepKey(req2)
		if err != nil || k1 != k2 {
			t.Fatalf("content address unstable across round trip: %q vs %q (%v)", k1, k2, err)
		}
	})
}

// FuzzDecodeSessionRequest hammers both session decoders with the same
// bytes. An accepted create must satisfy the wire contract of the flow
// decoder (lossless round trip, stable content address) plus the session
// extensions: a non-negative TTL and a canonical edit state that is a
// fixpoint (canonicalizing twice changes nothing — the property rev
// storage and re-hydration rely on). An accepted delta must carry
// exactly one of edits/rollback_to with validated, bounded edits.
func FuzzDecodeSessionRequest(f *testing.F) {
	f.Add([]byte(`{"bench":"cns01"}`))
	f.Add([]byte(`{"bench":"cns01","ttl_ms":60000}`))
	f.Add([]byte(`{"spec":{"name":"x","sinks":24,"die_x":600,"die_y":600,"seed":7,"cap_min":1e-15,"cap_max":3e-15},"scheme":"smart-ndr","edits":[{"op":"move_sink","sink":0,"x":10,"y":20},{"op":"sink_cap","sink":1,"cap":2e-15}]}`))
	f.Add([]byte(`{"bench":"cns02","edits":[{"op":"in_slew","in_slew_ps":55},{"op":"node_rule","node":3,"rule":2},{"op":"sink_rule","sink":3,"rule":1}]}`))
	f.Add([]byte(`{"edits":[{"op":"move_sink","sink":2,"x":40,"y":55}],"timeout_ms":500}`))
	f.Add([]byte(`{"rollback_to":0}`))
	f.Add([]byte(`{"rollback_to":3,"timeout_ms":100}`))
	f.Add([]byte(`{"edits":[{"op":"move_sink","sink":0,"x":1,"y":1}],"rollback_to":0}`))
	f.Add([]byte(`{"bench":"cns01","ttl_ms":-4}`))
	f.Add([]byte(`{"bench":"cns01","bogus":true}`))
	f.Add([]byte(`{"edits":[{"op":"warp_sink","sink":0}]}`))
	f.Add([]byte(`{"edits":[{"op":"sink_cap","sink":-1,"cap":1e-15}]}`))
	f.Add([]byte(`{"bench":"cns01"} trailing`))
	f.Add([]byte(`not a session request`))
	f.Fuzz(func(t *testing.T, data []byte) {
		if req, err := DecodeSessionCreateRequest(data); err == nil {
			if req.TTLMS < 0 {
				t.Fatalf("accepted negative ttl_ms %d", req.TTLMS)
			}
			if len(req.Edits) > maxRequestEdits {
				t.Fatalf("accepted %d edits (cap %d)", len(req.Edits), maxRequestEdits)
			}
			out, err := json.Marshal(req)
			if err != nil {
				t.Fatalf("accepted create does not re-encode: %v", err)
			}
			req2, err := DecodeSessionCreateRequest(out)
			if err != nil {
				t.Fatalf("re-encoded create rejected: %v\n%s", err, out)
			}
			if !reflect.DeepEqual(req, req2) {
				t.Fatalf("lossy round trip:\n%+v\n%+v", req, req2)
			}
			canon := core.CanonicalEdits(req.Edits)
			if again := core.CanonicalEdits(canon); !reflect.DeepEqual(canon, again) {
				t.Fatalf("canonical edit state is not a fixpoint:\n%+v\n%+v", canon, again)
			}
			fr := &FlowRunner{}
			k1, err := fr.FlowKey(&req.FlowRequest)
			if err != nil {
				t.Fatalf("accepted create has no content address: %v", err)
			}
			k2, err := fr.FlowKey(&req2.FlowRequest)
			if err != nil || k1 != k2 {
				t.Fatalf("content address unstable across round trip: %q vs %q (%v)", k1, k2, err)
			}
		}
		if req, err := DecodeSessionDeltaRequest(data); err == nil {
			if (len(req.Edits) > 0) == (req.RollbackTo != nil) {
				t.Fatalf("accepted delta without exactly one mode: %+v", req)
			}
			if req.RollbackTo != nil && *req.RollbackTo < 0 {
				t.Fatalf("accepted negative rollback_to %d", *req.RollbackTo)
			}
			if len(req.Edits) > maxRequestEdits || req.TimeoutMS < 0 {
				t.Fatalf("accepted out-of-bounds delta: %+v", req)
			}
			for i, e := range req.Edits {
				if e.Validate() != nil {
					t.Fatalf("accepted delta with invalid edit %d: %+v", i, e)
				}
			}
			out, err := json.Marshal(req)
			if err != nil {
				t.Fatalf("accepted delta does not re-encode: %v", err)
			}
			req2, err := DecodeSessionDeltaRequest(out)
			if err != nil {
				t.Fatalf("re-encoded delta rejected: %v\n%s", err, out)
			}
			if !reflect.DeepEqual(req, req2) {
				t.Fatalf("lossy round trip:\n%+v\n%+v", req, req2)
			}
		}
	})
}
