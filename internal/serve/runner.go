package serve

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"

	"smartndr"
	"smartndr/internal/core"
	"smartndr/internal/obs"
	"smartndr/internal/par"
	"smartndr/internal/tech"
)

// Runner executes resolved requests. The production implementation is
// FlowRunner; lifecycle tests substitute stubs so saturation and drain
// behavior can be driven without real synthesis work (and without
// sleeps). Key methods must be cheap and pure — they run before
// admission control.
type Runner interface {
	// FlowKey returns the request's content address: identical keys
	// must mean byte-identical RunFlow responses.
	FlowKey(req *FlowRequest) (string, error)
	// RunFlow executes the request. tr, when non-nil, is the
	// request-scoped tracer; engine spans nest under the caller's open
	// request span.
	RunFlow(ctx context.Context, req *FlowRequest, tr *obs.Tracer) (*FlowResponse, error)
	// SweepKey is FlowKey for sweeps.
	SweepKey(req *SweepRequest) (string, error)
	// RunSweep executes every arm against one synthesized tree and
	// returns results in arm order.
	RunSweep(ctx context.Context, req *SweepRequest, tr *obs.Tracer) (*SweepResponse, error)
}

// FlowRunner is the production Runner, backed by the public smartndr
// facade. The zero value is ready to use.
type FlowRunner struct {
	// Workers bounds sweep-arm fan-out when a request leaves its own
	// Workers at 0. 0 means all cores.
	Workers int
}

// FlowKey implements Runner using the facade's canonical content
// address, so the service's cache keys carry the full (spec, tech,
// library, scheme, knobs) provenance.
func (fr *FlowRunner) FlowKey(req *FlowRequest) (string, error) {
	cfg, err := req.flowConfig()
	if err != nil {
		return "", err
	}
	spec, err := resolveSpec(req.Bench, req.Spec)
	if err != nil {
		return "", err
	}
	scheme, err := ParseScheme(req.Scheme)
	if err != nil {
		return "", err
	}
	return smartndr.NewFlow(cfg).CanonicalKeyEdits(spec, scheme, req.Edits)
}

// RunFlow implements Runner: generate → build → apply through the
// context-accepting facade entry point.
func (fr *FlowRunner) RunFlow(ctx context.Context, req *FlowRequest, tr *obs.Tracer) (*FlowResponse, error) {
	cfg, err := req.flowConfig()
	if err != nil {
		return nil, err
	}
	spec, err := resolveSpec(req.Bench, req.Spec)
	if err != nil {
		return nil, err
	}
	scheme, err := ParseScheme(req.Scheme)
	if err != nil {
		return nil, err
	}
	cfg.Tracer = tr
	flow := smartndr.NewFlow(cfg)
	key, err := flow.CanonicalKeyEdits(spec, scheme, req.Edits)
	if err != nil {
		return nil, err
	}
	built, res, err := flow.RunSpecEdits(ctx, spec, scheme, req.Edits)
	if err != nil {
		return nil, err
	}
	return &FlowResponse{
		Key:      key,
		Bench:    workloadName(req.Bench, req.Spec),
		Scheme:   scheme.String(),
		Tech:     flow.Config().Tech.Name,
		Sinks:    spec.Sinks,
		Buffers:  built.Buffers,
		Clusters: built.NumClusters,
		Metrics:  res.Metrics,
		Stats:    res.Stats,
	}, nil
}

// SessionRunner is the optional Runner extension behind POST /v1/session.
// Runners that cannot host stateful sessions (or only host them on a
// different node) simply don't implement it and the server answers 501.
type SessionRunner interface {
	// OpenSession runs the request cold and returns a handle holding the
	// built tree and a primed dirty-region engine. The handle must NOT
	// retain tr — it outlives the request; tr only scopes the open
	// itself.
	OpenSession(ctx context.Context, req *FlowRequest, tr *obs.Tracer) (SessionHandle, error)
}

// SessionHandle is one live session. The server serializes Apply calls
// per session (single writer); the other methods are read-only and may
// run concurrently with each other but not with Apply.
type SessionHandle interface {
	// Apply moves the session to the given absolute canonical edit state
	// (nil = pristine), re-evaluates through the dirty-region engine, and
	// returns the exact response body a cold /v1/flow of the equivalently
	// edited request would produce, plus its content address.
	Apply(ctx context.Context, edits []smartndr.Edit) (body []byte, key string, err error)
	// Key returns the content address of a hypothetical edit state
	// without applying it.
	Key(edits []smartndr.Edit) (string, error)
	// Live returns the canonical edit state currently applied.
	Live() []smartndr.Edit
	// Nodes is the tree's node count — the valid range for node-indexed
	// edits, surfaced so clients can generate them.
	Nodes() int
	// MemoryBytes estimates resident footprint for store accounting.
	MemoryBytes() int64
}

// OpenSession implements SessionRunner on the production runner. The
// session's flow deliberately carries no tracer: the session outlives
// the creating request, and the engine's ambient span stack is only
// meaningful on one goroutine.
func (fr *FlowRunner) OpenSession(ctx context.Context, req *FlowRequest, tr *obs.Tracer) (SessionHandle, error) {
	cfg, err := req.flowConfig()
	if err != nil {
		return nil, err
	}
	spec, err := resolveSpec(req.Bench, req.Spec)
	if err != nil {
		return nil, err
	}
	scheme, err := ParseScheme(req.Scheme)
	if err != nil {
		return nil, err
	}
	sp := tr.Start("serve.session_open", obs.S("scheme", scheme.String()))
	defer sp.End()
	sess, err := smartndr.NewFlow(cfg).OpenSession(ctx, spec, scheme)
	if err != nil {
		return nil, err
	}
	built := sess.Built()
	return &flowSessionHandle{
		sess: sess,
		resp: FlowResponse{
			Bench:    workloadName(req.Bench, req.Spec),
			Scheme:   scheme.String(),
			Tech:     cfg.Tech.Name,
			Sinks:    spec.Sinks,
			Buffers:  built.Buffers,
			Clusters: built.NumClusters,
			Stats:    sess.Result().Stats,
		},
	}, nil
}

// flowSessionHandle adapts a smartndr.FlowSession to the wire: every
// Apply re-marshals the same FlowResponse shape RunFlow produces, so the
// bytes are interchangeable with a cold run's by construction.
type flowSessionHandle struct {
	sess *smartndr.FlowSession
	resp FlowResponse // immutable template; Key/Metrics filled per state
}

func (h *flowSessionHandle) Apply(ctx context.Context, edits []smartndr.Edit) ([]byte, string, error) {
	m, err := h.sess.ApplyState(ctx, edits)
	if err != nil {
		return nil, "", err
	}
	key, err := h.sess.Key(edits)
	if err != nil {
		return nil, "", err
	}
	r := h.resp
	r.Key = key
	r.Metrics = m
	// Stats reports the pristine-tree optimization — edits are
	// post-synthesis, so a cold run of the edited spec returns the same
	// stats; see Flow.RunSpecEdits.
	b, err := json.Marshal(&r)
	if err != nil {
		return nil, "", err
	}
	return b, key, nil
}

func (h *flowSessionHandle) Key(edits []smartndr.Edit) (string, error) { return h.sess.Key(edits) }
func (h *flowSessionHandle) Live() []smartndr.Edit                     { return h.sess.Live() }
func (h *flowSessionHandle) Nodes() int                                { return h.sess.Nodes() }
func (h *flowSessionHandle) MemoryBytes() int64                        { return h.sess.MemoryBytes() }

// sweepKeyVersion prefixes sweep content addresses; bump on any change
// to the sweep result format or semantics.
const sweepKeyVersion = "smartndr/sweep/v1"

// SweepKey implements Runner. The address covers the base run key (the
// spec, technology, library, and knobs, via the facade's canonical
// serialization with the scheme zeroed) plus the arm list in order —
// Workers is excluded because results are invariant under it.
func (fr *FlowRunner) SweepKey(req *SweepRequest) (string, error) {
	cfg, err := req.flowConfig()
	if err != nil {
		return "", err
	}
	spec, err := resolveSpec(req.Bench, req.Spec)
	if err != nil {
		return "", err
	}
	base, err := smartndr.NewFlow(cfg).CanonicalRun(spec, smartndr.SchemeAllDefault)
	if err != nil {
		return "", err
	}
	arms, err := json.Marshal(req.Arms)
	if err != nil {
		return "", err
	}
	h := sha256.New()
	fmt.Fprintf(h, "%s|%d|", sweepKeyVersion, len(base))
	h.Write(base)
	h.Write([]byte("|arms|"))
	h.Write(arms)
	return hex.EncodeToString(h.Sum(nil)), nil
}

// RunSweep implements Runner: one synthesis, then every arm applied to
// clones of the shared tree, fanned out over par with index-addressed
// results so the response order matches the request regardless of
// worker count. Arm execution runs untraced (concurrent engine spans
// would interleave); each arm instead gets one child span under the
// request span with its scheme, corner, and index.
func (fr *FlowRunner) RunSweep(ctx context.Context, req *SweepRequest, tr *obs.Tracer) (*SweepResponse, error) {
	cfg, err := req.flowConfig()
	if err != nil {
		return nil, err
	}
	spec, err := resolveSpec(req.Bench, req.Spec)
	if err != nil {
		return nil, err
	}
	key, err := fr.SweepKey(req)
	if err != nil {
		return nil, err
	}
	cfg.Tracer = tr
	flow := smartndr.NewFlow(cfg)
	sp := tr.Start("sweep.build")
	bm, err := smartndr.GenerateBenchmark(spec)
	if err != nil {
		sp.End()
		return nil, err
	}
	built, err := flow.Build(bm.Sinks, bm.Src)
	sp.End()
	if err != nil {
		return nil, err
	}

	// The arm flow shares tech/library/knobs but carries no tracer:
	// Apply uses the tracer's ambient span stack, which is only
	// meaningful on one goroutine.
	armCfg := *cfg
	armCfg.Tracer = nil
	armFlow := smartndr.NewFlow(&armCfg)
	armsSpan := tr.Start("sweep.arms", obs.I("arms", len(req.Arms)))
	defer armsSpan.End()

	workers := req.Workers
	if workers == 0 {
		workers = fr.Workers
	}
	results := make([]SweepArmResult, len(req.Arms))
	err = par.ForEach(ctx, par.Workers(workers), len(req.Arms), func(i int) error {
		arm := req.Arms[i]
		armSp := armsSpan.Child("arm",
			obs.I("i", i), obs.S("scheme", arm.Scheme), obs.S("corner", arm.Corner))
		defer armSp.End()
		scheme, err := ParseScheme(arm.Scheme)
		if err != nil {
			return err
		}
		res, err := armFlow.Apply(built, scheme)
		if err != nil {
			return err
		}
		out := SweepArmResult{Scheme: scheme.String(), Metrics: res.Metrics}
		if arm.Corner != "" {
			corner, err := tech.CornerByName(arm.Corner)
			if err != nil {
				return err
			}
			rep, err := core.EvaluateCorners(res.Tree, armCfg.Tech, armCfg.Library,
				armFlow.Config().InSlew, []tech.Corner{corner})
			if err != nil {
				return err
			}
			out.Corner = cornerTiming(rep.Corners[0])
		}
		results[i] = out
		return nil
	})
	if err != nil {
		return nil, err
	}
	return &SweepResponse{
		Key:     key,
		Bench:   workloadName(req.Bench, req.Spec),
		Tech:    cfg.Tech.Name,
		Sinks:   spec.Sinks,
		Buffers: built.Buffers,
		Arms:    results,
	}, nil
}
