package serve

import (
	"container/list"
	"context"
	"hash/fnv"
	"sync"
	"sync/atomic"

	"smartndr/internal/obs"
)

// Cache is a bounded, content-addressed result cache with singleflight
// de-duplication. Keys are canonical hashes of everything that
// determines a result (see Flow.CanonicalKey), values are the exact
// serialized response bytes — a hit replays a prior run byte for byte,
// which is only sound because the engine is deterministic.
//
// Internally the cache is lock-striped into shards (each with its own
// LRU list and flight table) so concurrent hits on different keys
// don't serialize on one mutex. Small caches use a single shard, which
// keeps the LRU bound globally exact; large caches trade exactness of
// the global bound (each shard bounds its own slice of the keyspace)
// for parallelism.
//
// Three counters land in the registry: serve.cache_hits,
// serve.cache_misses (each Do that ran the loader), and
// serve.cache_evictions (entries displaced by the LRU bound). The same
// events are also tallied per shard for /v1/statsz and /metricsz.
type Cache struct {
	reg    *obs.Registry // nil-safe; shared with the server's tracer
	max    int
	shards []*cacheShard
}

// shardThreshold is the smallest cache capacity that gets striped.
// Below it a single shard keeps eviction order globally exact — the
// contract small-capacity tests (and small deployments) rely on.
const shardThreshold = 64

// cacheShardCount is the stripe count for caches at or above the
// threshold. 8 stripes are plenty to take lock contention off the hit
// path at the service's admission-bounded concurrency.
const cacheShardCount = 8

type cacheShard struct {
	mu      sync.Mutex
	max     int
	ll      *list.List // front = most recently used
	items   map[string]*list.Element
	flights map[string]*flight

	hits      atomic.Uint64
	misses    atomic.Uint64
	evictions atomic.Uint64
}

type cacheEntry struct {
	key  string
	body []byte
}

// flight is one in-progress load; followers wait on done and read
// body/err afterwards.
type flight struct {
	done chan struct{}
	body []byte
	err  error
}

// Cache outcomes, reported by Do and tagged onto request spans.
const (
	CacheHit    = "hit"    // served from the cache
	CacheMiss   = "miss"   // this call ran the loader
	CacheShared = "shared" // de-duplicated onto a concurrent identical call
)

// NewCache returns a cache bounded to max entries (min 1). reg may be
// nil to drop the counters.
func NewCache(max int, reg *obs.Registry) *Cache {
	if max < 1 {
		max = 1
	}
	n := 1
	if max >= shardThreshold {
		n = cacheShardCount
	}
	c := &Cache{reg: reg, max: max, shards: make([]*cacheShard, n)}
	perShard := (max + n - 1) / n
	for i := range c.shards {
		c.shards[i] = &cacheShard{
			max:     perShard,
			ll:      list.New(),
			items:   make(map[string]*list.Element),
			flights: make(map[string]*flight),
		}
	}
	return c
}

// shard maps a key to its stripe. Keys are already uniform hashes, but
// FNV keeps the mapping correct for arbitrary strings too.
func (c *Cache) shard(key string) *cacheShard {
	if len(c.shards) == 1 {
		return c.shards[0]
	}
	h := fnv.New32a()
	h.Write([]byte(key))
	return c.shards[h.Sum32()%uint32(len(c.shards))]
}

// Get returns the cached body for key, if present, bumping its
// recency. The returned slice is shared — callers must not mutate it.
func (c *Cache) Get(key string) ([]byte, bool) {
	s := c.shard(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	el, ok := s.items[key]
	if !ok {
		return nil, false
	}
	s.ll.MoveToFront(el)
	return el.Value.(*cacheEntry).body, true
}

// Do returns the body for key, loading it with load on a miss.
// Concurrent Do calls with the same key share one load — followers
// block until the leader finishes and receive its result. A failed load
// caches nothing. The second return names the outcome: CacheHit,
// CacheMiss (this call ran load), or CacheShared (another call did).
// A follower whose ctx ends while waiting returns ctx's error; the
// leader's load keeps running under its own context.
func (c *Cache) Do(ctx context.Context, key string, load func() ([]byte, error)) ([]byte, string, error) {
	s := c.shard(key)
	s.mu.Lock()
	if el, ok := s.items[key]; ok {
		s.ll.MoveToFront(el)
		body := el.Value.(*cacheEntry).body
		s.mu.Unlock()
		s.hits.Add(1)
		c.reg.Add("serve.cache_hits", 1)
		return body, CacheHit, nil
	}
	if f, ok := s.flights[key]; ok {
		s.mu.Unlock()
		select {
		case <-f.done:
			s.hits.Add(1)
			c.reg.Add("serve.cache_hits", 1)
			return f.body, CacheShared, f.err
		case <-ctx.Done():
			return nil, CacheShared, ctx.Err()
		}
	}
	f := &flight{done: make(chan struct{})}
	s.flights[key] = f
	s.mu.Unlock()

	s.misses.Add(1)
	c.reg.Add("serve.cache_misses", 1)
	f.body, f.err = load()

	s.mu.Lock()
	delete(s.flights, key)
	if f.err == nil {
		evicted := s.insertLocked(key, f.body)
		if evicted > 0 {
			s.evictions.Add(uint64(evicted))
			c.reg.Add("serve.cache_evictions", float64(evicted))
		}
	}
	s.mu.Unlock()
	close(f.done)
	return f.body, CacheMiss, f.err
}

// insertLocked adds or refreshes an entry and returns how many entries
// the shard's LRU bound displaced.
func (s *cacheShard) insertLocked(key string, body []byte) int {
	if el, ok := s.items[key]; ok {
		s.ll.MoveToFront(el)
		el.Value.(*cacheEntry).body = body
		return 0
	}
	s.items[key] = s.ll.PushFront(&cacheEntry{key: key, body: body})
	evicted := 0
	for s.ll.Len() > s.max {
		oldest := s.ll.Back()
		s.ll.Remove(oldest)
		delete(s.items, oldest.Value.(*cacheEntry).key)
		evicted++
	}
	return evicted
}

// Len returns the current entry count across all shards.
func (c *Cache) Len() int {
	n := 0
	for _, s := range c.shards {
		s.mu.Lock()
		n += s.ll.Len()
		s.mu.Unlock()
	}
	return n
}

// Cap returns the configured entry bound.
func (c *Cache) Cap() int { return c.max }

// Shards returns the stripe count.
func (c *Cache) Shards() int { return len(c.shards) }

// CacheShardStat is one stripe's occupancy and hit/miss/eviction
// tallies, exported via /v1/statsz and as labeled series on /metricsz.
type CacheShardStat struct {
	Shard     int    `json:"shard"`
	Len       int    `json:"len"`
	Hits      uint64 `json:"hits"`
	Misses    uint64 `json:"misses"`
	Evictions uint64 `json:"evictions"`
}

// ShardStats returns per-stripe stats in shard order.
func (c *Cache) ShardStats() []CacheShardStat {
	out := make([]CacheShardStat, len(c.shards))
	for i, s := range c.shards {
		s.mu.Lock()
		n := s.ll.Len()
		s.mu.Unlock()
		out[i] = CacheShardStat{
			Shard:     i,
			Len:       n,
			Hits:      s.hits.Load(),
			Misses:    s.misses.Load(),
			Evictions: s.evictions.Load(),
		}
	}
	return out
}

// Balance returns the occupancy-balance ratio: the fullest shard's
// entry count over the mean (1.0 = perfectly even, 0 when empty). A
// single-shard cache is always 1.0 when non-empty.
func (c *Cache) Balance() float64 {
	total, max := 0, 0
	for _, s := range c.shards {
		s.mu.Lock()
		n := s.ll.Len()
		s.mu.Unlock()
		total += n
		if n > max {
			max = n
		}
	}
	if total == 0 {
		return 0
	}
	mean := float64(total) / float64(len(c.shards))
	return float64(max) / mean
}
