package serve

import (
	"container/list"
	"context"
	"sync"

	"smartndr/internal/obs"
)

// Cache is a bounded, content-addressed result cache with singleflight
// de-duplication. Keys are canonical hashes of everything that
// determines a result (see Flow.CanonicalKey), values are the exact
// serialized response bytes — a hit replays a prior run byte for byte,
// which is only sound because the engine is deterministic.
//
// Three counters land in the registry: serve.cache_hits,
// serve.cache_misses (each Do that ran the loader), and
// serve.cache_evictions (entries displaced by the LRU bound).
type Cache struct {
	reg *obs.Registry // nil-safe; shared with the server's tracer

	mu      sync.Mutex
	max     int
	ll      *list.List // front = most recently used
	items   map[string]*list.Element
	flights map[string]*flight
}

type cacheEntry struct {
	key  string
	body []byte
}

// flight is one in-progress load; followers wait on done and read
// body/err afterwards.
type flight struct {
	done chan struct{}
	body []byte
	err  error
}

// Cache outcomes, reported by Do and tagged onto request spans.
const (
	CacheHit    = "hit"    // served from the cache
	CacheMiss   = "miss"   // this call ran the loader
	CacheShared = "shared" // de-duplicated onto a concurrent identical call
)

// NewCache returns a cache bounded to max entries (min 1). reg may be
// nil to drop the counters.
func NewCache(max int, reg *obs.Registry) *Cache {
	if max < 1 {
		max = 1
	}
	return &Cache{
		reg:     reg,
		max:     max,
		ll:      list.New(),
		items:   make(map[string]*list.Element),
		flights: make(map[string]*flight),
	}
}

// Get returns the cached body for key, if present, bumping its
// recency. The returned slice is shared — callers must not mutate it.
func (c *Cache) Get(key string) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		return nil, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*cacheEntry).body, true
}

// Do returns the body for key, loading it with load on a miss.
// Concurrent Do calls with the same key share one load — followers
// block until the leader finishes and receive its result. A failed load
// caches nothing. The second return names the outcome: CacheHit,
// CacheMiss (this call ran load), or CacheShared (another call did).
// A follower whose ctx ends while waiting returns ctx's error; the
// leader's load keeps running under its own context.
func (c *Cache) Do(ctx context.Context, key string, load func() ([]byte, error)) ([]byte, string, error) {
	c.mu.Lock()
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		body := el.Value.(*cacheEntry).body
		c.mu.Unlock()
		c.reg.Add("serve.cache_hits", 1)
		return body, CacheHit, nil
	}
	if f, ok := c.flights[key]; ok {
		c.mu.Unlock()
		select {
		case <-f.done:
			c.reg.Add("serve.cache_hits", 1)
			return f.body, CacheShared, f.err
		case <-ctx.Done():
			return nil, CacheShared, ctx.Err()
		}
	}
	f := &flight{done: make(chan struct{})}
	c.flights[key] = f
	c.mu.Unlock()

	c.reg.Add("serve.cache_misses", 1)
	f.body, f.err = load()

	c.mu.Lock()
	delete(c.flights, key)
	if f.err == nil {
		c.insertLocked(key, f.body)
	}
	c.mu.Unlock()
	close(f.done)
	return f.body, CacheMiss, f.err
}

func (c *Cache) insertLocked(key string, body []byte) {
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		el.Value.(*cacheEntry).body = body
		return
	}
	c.items[key] = c.ll.PushFront(&cacheEntry{key: key, body: body})
	for c.ll.Len() > c.max {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.items, oldest.Value.(*cacheEntry).key)
		c.reg.Add("serve.cache_evictions", 1)
	}
}

// Len returns the current entry count.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// Cap returns the entry bound.
func (c *Cache) Cap() int { return c.max }
