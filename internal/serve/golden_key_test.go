package serve

import (
	"testing"

	"smartndr"
	"smartndr/internal/core"
	"smartndr/internal/workload"
)

// TestGoldenKeysUnchangedByEditSupport pins content addresses captured
// before the session/edit feature landed (flow key version v2). Edit-free
// requests must keep producing exactly these hashes: the edits field is
// omitempty in the canonical serialization and the v3 version string is
// stamped only when the canonical edit state is non-empty, so every
// pre-existing flow, sweep, and batch cache entry stays addressable. If
// this test fails, a serialization change silently invalidated every
// deployed cache.
func TestGoldenKeysUnchangedByEditSupport(t *testing.T) {
	fr := &FlowRunner{}
	spec := workload.Spec{Name: "gold", Dist: workload.Uniform, Sinks: 48,
		DieX: 900, DieY: 700, CapMin: 1e-15, CapMax: 4e-15, Seed: 7}
	flows := []struct {
		req  *FlowRequest
		want string
	}{
		{&FlowRequest{Bench: "cns01", Scheme: "smart-ndr"},
			"c99f758fd4e2ea7238f19777dc4a852234335be67fa8bf3a29368a3a558ae227"},
		{&FlowRequest{Bench: "cns03", Scheme: "blanket-ndr", Tech: "tech65", TopK: 3, InSlewPS: 60},
			"19599aeab93466c924ee19eeb6286cb94bc82ee06920ab43cff6cc4ccbdc6e16"},
		{&FlowRequest{Spec: &spec, Scheme: "top-k", TopK: 4},
			"45317fdc6d721c0ad99fa5ce0ffa36db0bd444ebce41d050eb27836b22addd30"},
		{&FlowRequest{Spec: &spec, Scheme: "smart-ndr", MaxRegionSinks: 32, SkewSplit: 0.6},
			"cf0bc7cbdf48fa9abe4336a0ba92d31630f34c22ea6f5220c05c3e1ce200f55c"},
	}
	for i, c := range flows {
		got, err := fr.FlowKey(c.req)
		if err != nil {
			t.Fatalf("flow[%d]: %v", i, err)
		}
		if got != c.want {
			t.Errorf("flow[%d] key = %s, want golden %s", i, got, c.want)
		}
	}

	sw := &SweepRequest{Bench: "cns02", Arms: []SweepArm{
		{Scheme: "smart-ndr"}, {Scheme: "blanket-ndr", Corner: "slow"}}, InSlewPS: 50}
	got, err := fr.SweepKey(sw)
	if err != nil {
		t.Fatal(err)
	}
	if want := "919ddc789e27a496c87dc1498b79475d590bb9a4ff4843c8225fee9ed64f6272"; got != want {
		t.Errorf("sweep key = %s, want golden %s", got, want)
	}

	k0, err := fr.FlowKey(flows[0].req)
	if err != nil {
		t.Fatal(err)
	}
	k2, err := fr.FlowKey(flows[2].req)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := batchKey([]string{k0, k2}),
		"5f1022cea353a47bf5a6c5ebc8277fa83583ae2445e7fbf65afba4f07358d9c6"; got != want {
		t.Errorf("batch key = %s, want golden %s", got, want)
	}
}

// TestEditKeysVersioned checks the other half of the key contract: an
// absent, nil, or canonically-empty edit list all land on the frozen v2
// address, while any real edit state moves to a distinct v3 address that
// is itself insensitive to edit-list spelling (ordering, shadowed
// duplicates).
func TestEditKeysVersioned(t *testing.T) {
	fr := &FlowRunner{}
	base := FlowRequest{Bench: "cns01", Scheme: "smart-ndr"}
	baseKey, err := fr.FlowKey(&base)
	if err != nil {
		t.Fatal(err)
	}

	empty := base
	empty.Edits = []smartndr.Edit{}
	emptyKey, err := fr.FlowKey(&empty)
	if err != nil {
		t.Fatal(err)
	}
	if emptyKey != baseKey {
		t.Errorf("empty edit list changed the key: %s vs %s", emptyKey, baseKey)
	}

	edited := base
	edited.Edits = []smartndr.Edit{{Op: core.OpSinkCap, Sink: 2, Cap: 2e-15}}
	editedKey, err := fr.FlowKey(&edited)
	if err != nil {
		t.Fatal(err)
	}
	if editedKey == baseKey {
		t.Error("edit state did not change the content address")
	}

	// A shadowed duplicate plus reordering canonicalizes to the same
	// state, so the same address.
	spelled := base
	spelled.Edits = []smartndr.Edit{
		{Op: core.OpSinkCap, Sink: 2, Cap: 9e-15}, // shadowed by the later write
		{Op: core.OpSinkCap, Sink: 2, Cap: 2e-15},
	}
	spelledKey, err := fr.FlowKey(&spelled)
	if err != nil {
		t.Fatal(err)
	}
	if spelledKey != editedKey {
		t.Errorf("canonically equal edit states got different keys: %s vs %s", spelledKey, editedKey)
	}
}
