package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"strings"

	"smartndr"
	"smartndr/internal/core"
	"smartndr/internal/tech"
	"smartndr/internal/workload"
)

// defaultMaxBodyBytes is the default request-body cap (Config.MaxBodyBytes).
// Typical flow and sweep requests are a few hundred bytes of JSON; the
// default leaves room for large inline specs while still bounding
// per-request memory. Deployments that accept bigger payloads raise it
// via -max-spec-bytes on the daemon.
const defaultMaxBodyBytes = 1 << 20

// FlowRequest is the wire form of POST /v1/flow: run one benchmark
// through synthesis and one rule-assignment scheme. Exactly one of
// Bench (a built-in cns01…cns08 name) or Spec (a custom generator spec)
// selects the workload.
type FlowRequest struct {
	Bench  string         `json:"bench,omitempty"`
	Spec   *workload.Spec `json:"spec,omitempty"`
	Scheme string         `json:"scheme,omitempty"` // default "smart-ndr"
	Tech   string         `json:"tech,omitempty"`   // tech45 (default) | tech65
	// TopK is K for the top-k scheme; 0 resolves to the flow default (2).
	TopK int `json:"top_k,omitempty"`
	// InSlewPS overrides the root input transition, in picoseconds.
	InSlewPS float64 `json:"in_slew_ps,omitempty"`
	// TimeoutMS caps this request's deadline; the server clamps it to
	// its configured maximum. 0 means the server default.
	TimeoutMS int `json:"timeout_ms,omitempty"`
	// MaxRegionSinks opts the run into partitioned hierarchical
	// construction when the workload exceeds it (see smartndr.HierConfig).
	// 0 builds flat regardless of size.
	MaxRegionSinks int `json:"max_region_sinks,omitempty"`
	// SkewSplit is the hierarchical intra-region skew-budget fraction;
	// 0 means the engine default (0.5). Only meaningful with
	// MaxRegionSinks.
	SkewSplit float64 `json:"skew_split,omitempty"`
	// Edits is a post-synthesis ECO state applied after the scheme (see
	// the session API, docs/service.md): the tree is built and optimized
	// unedited, then these edits land and metrics are re-evaluated. The
	// canonical key covers the canonicalized edit state.
	Edits []smartndr.Edit `json:"edits,omitempty"`
}

// SweepArm is one (scheme, corner) cell of a sweep: the scheme is
// applied to the shared synthesized tree and, when Corner names a
// standard analysis corner (typ|slow|fast), the result is additionally
// timed at that corner.
type SweepArm struct {
	Scheme string `json:"scheme"`
	Corner string `json:"corner,omitempty"`
}

// SweepRequest is the wire form of POST /v1/sweep: synthesize one tree
// and evaluate a batch of scheme×corner arms against it. Results come
// back in arm order regardless of execution interleaving.
type SweepRequest struct {
	Bench    string         `json:"bench,omitempty"`
	Spec     *workload.Spec `json:"spec,omitempty"`
	Tech     string         `json:"tech,omitempty"`
	Arms     []SweepArm     `json:"arms"`
	InSlewPS float64        `json:"in_slew_ps,omitempty"`
	// Workers bounds the arm fan-out; 0 uses the server's configured
	// worker count. Results are identical at any value.
	Workers   int `json:"workers,omitempty"`
	TimeoutMS int `json:"timeout_ms,omitempty"`
}

// FlowResponse is the /v1/flow result body. The body is fully
// determined by the request's canonical key — cache hits replay these
// exact bytes — so it carries no timestamps or other volatile fields;
// cache outcome and timing travel in headers and spans instead.
type FlowResponse struct {
	Key      string             `json:"key"`
	Bench    string             `json:"bench"`
	Scheme   string             `json:"scheme"`
	Tech     string             `json:"tech"`
	Sinks    int                `json:"sinks"`
	Buffers  int                `json:"buffers"`
	Clusters int                `json:"clusters"`
	Metrics  smartndr.Metrics   `json:"metrics"`
	Stats    *smartndr.OptStats `json:"stats,omitempty"`
}

// CornerTiming is the per-corner timing view of a sweep arm.
type CornerTiming struct {
	Corner      string  `json:"corner"`
	Skew        float64 `json:"skew"`
	WorstSlew   float64 `json:"worst_slew"`
	SlewViol    int     `json:"slew_violations"`
	MaxInsDelay float64 `json:"max_ins_delay"`
}

// SweepArmResult is one arm's outcome, at the same index as its arm in
// the request.
type SweepArmResult struct {
	Scheme  string           `json:"scheme"`
	Metrics smartndr.Metrics `json:"metrics"`
	Corner  *CornerTiming    `json:"corner,omitempty"`
}

// SweepResponse is the /v1/sweep result body; like FlowResponse it is a
// pure function of the canonical key.
type SweepResponse struct {
	Key     string           `json:"key"`
	Bench   string           `json:"bench"`
	Tech    string           `json:"tech"`
	Sinks   int              `json:"sinks"`
	Buffers int              `json:"buffers"`
	Arms    []SweepArmResult `json:"arms"`
}

// errorResponse is the JSON body of every non-2xx response.
type errorResponse struct {
	Error string `json:"error"`
}

// DecodeFlowRequest parses and validates a /v1/flow body. Decoding is
// strict — unknown fields and trailing garbage are errors — so a typoed
// knob fails loudly instead of silently running defaults.
func DecodeFlowRequest(data []byte) (*FlowRequest, error) {
	var req FlowRequest
	if err := decodeStrict(data, &req); err != nil {
		return nil, err
	}
	if err := req.Validate(); err != nil {
		return nil, err
	}
	// An explicit empty edit list means the same as no edits; normalize
	// so the round trip through omitempty serialization is lossless.
	if len(req.Edits) == 0 {
		req.Edits = nil
	}
	return &req, nil
}

// DecodeSweepRequest parses and validates a /v1/sweep body.
func DecodeSweepRequest(data []byte) (*SweepRequest, error) {
	var req SweepRequest
	if err := decodeStrict(data, &req); err != nil {
		return nil, err
	}
	if err := req.Validate(); err != nil {
		return nil, err
	}
	return &req, nil
}

func decodeStrict(data []byte, v any) error {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return fmt.Errorf("serve: bad request body: %w", err)
	}
	// A second token means trailing content after the JSON value.
	if _, err := dec.Token(); err == nil {
		return fmt.Errorf("serve: bad request body: trailing data after JSON value")
	}
	return nil
}

// Validate checks the request's shape without touching the engine.
func (r *FlowRequest) Validate() error {
	if err := validateWorkload(r.Bench, r.Spec); err != nil {
		return err
	}
	if _, err := ParseScheme(r.Scheme); err != nil {
		return err
	}
	if _, err := resolveTech(r.Tech); err != nil {
		return err
	}
	if r.TopK < 0 {
		return fmt.Errorf("serve: negative top_k %d", r.TopK)
	}
	if r.InSlewPS < 0 {
		return fmt.Errorf("serve: negative in_slew_ps %g", r.InSlewPS)
	}
	if r.TimeoutMS < 0 {
		return fmt.Errorf("serve: negative timeout_ms %d", r.TimeoutMS)
	}
	if r.MaxRegionSinks < 0 {
		return fmt.Errorf("serve: negative max_region_sinks %d", r.MaxRegionSinks)
	}
	if r.SkewSplit != 0 && (r.SkewSplit < 0 || r.SkewSplit >= 1) {
		return fmt.Errorf("serve: skew_split %g out of (0,1)", r.SkewSplit)
	}
	if len(r.Edits) > maxRequestEdits {
		return fmt.Errorf("serve: %d edits exceeds the %d-edit limit", len(r.Edits), maxRequestEdits)
	}
	for i, e := range r.Edits {
		if err := e.Validate(); err != nil {
			return fmt.Errorf("serve: edit %d: %w", i, err)
		}
	}
	return nil
}

// maxRequestEdits bounds the edit list one request may carry; canonical
// states beyond it should live in a session, not a request body.
const maxRequestEdits = 4096

// Validate checks the sweep request's shape.
func (r *SweepRequest) Validate() error {
	if err := validateWorkload(r.Bench, r.Spec); err != nil {
		return err
	}
	if _, err := resolveTech(r.Tech); err != nil {
		return err
	}
	if len(r.Arms) == 0 {
		return fmt.Errorf("serve: sweep with no arms")
	}
	if len(r.Arms) > maxSweepArms {
		return fmt.Errorf("serve: %d arms exceeds the %d-arm limit", len(r.Arms), maxSweepArms)
	}
	for i, arm := range r.Arms {
		if _, err := ParseScheme(arm.Scheme); err != nil {
			return fmt.Errorf("serve: arm %d: %w", i, err)
		}
		if arm.Corner != "" {
			if _, err := tech.CornerByName(arm.Corner); err != nil {
				return fmt.Errorf("serve: arm %d: %w", i, err)
			}
		}
	}
	if r.InSlewPS < 0 {
		return fmt.Errorf("serve: negative in_slew_ps %g", r.InSlewPS)
	}
	if r.Workers < 0 {
		return fmt.Errorf("serve: negative workers %d", r.Workers)
	}
	if r.TimeoutMS < 0 {
		return fmt.Errorf("serve: negative timeout_ms %d", r.TimeoutMS)
	}
	return nil
}

// maxSweepArms bounds one sweep's fan-out so a single request cannot
// monopolize the service; batch beyond it with multiple requests.
const maxSweepArms = 64

func validateWorkload(bench string, spec *workload.Spec) error {
	switch {
	case bench == "" && spec == nil:
		return fmt.Errorf("serve: request needs bench or spec")
	case bench != "" && spec != nil:
		return fmt.Errorf("serve: bench and spec are mutually exclusive")
	case bench != "":
		if _, err := workload.ByName(bench); err != nil {
			return err
		}
	default:
		if err := spec.Validate(); err != nil {
			return err
		}
	}
	return nil
}

// ParseScheme maps a wire scheme name to the engine enum. Both the
// canonical Stringer names (smart-ndr, blanket-ndr, …) and the short
// CLI aliases (smart, blanket, …) are accepted; empty selects smart.
func ParseScheme(name string) (smartndr.Scheme, error) {
	switch strings.ToLower(name) {
	case "", "smart", "smart-ndr":
		return smartndr.SchemeSmart, nil
	case "all-default", "default":
		return smartndr.SchemeAllDefault, nil
	case "blanket", "blanket-ndr":
		return smartndr.SchemeBlanket, nil
	case "top-k", "topk":
		return smartndr.SchemeTopK, nil
	case "trunk", "trunk-ndr":
		return smartndr.SchemeTrunk, nil
	default:
		return 0, fmt.Errorf("serve: unknown scheme %q", name)
	}
}

func resolveTech(name string) (*tech.Tech, error) {
	if name == "" {
		return tech.Tech45(), nil
	}
	return tech.ByName(name)
}

// resolveSpec returns the generator spec a request selects.
func resolveSpec(bench string, spec *workload.Spec) (workload.Spec, error) {
	if bench != "" {
		return workload.ByName(bench)
	}
	return *spec, nil
}

// workloadName names the request's workload for response bodies.
func workloadName(bench string, spec *workload.Spec) string {
	if bench != "" {
		return bench
	}
	return spec.Name
}

// flowConfig builds the engine configuration a flow request resolves
// to. The tracer is attached by the caller; everything here is
// semantic, so it all lands in the canonical key.
func (r *FlowRequest) flowConfig() (*smartndr.FlowConfig, error) {
	te, err := resolveTech(r.Tech)
	if err != nil {
		return nil, err
	}
	return &smartndr.FlowConfig{
		Tech:    te,
		Library: smartndr.DefaultLibraryFor(te),
		TopK:    r.TopK,
		InSlew:  r.InSlewPS * 1e-12,
		Hier: smartndr.HierConfig{
			MaxRegionSinks: r.MaxRegionSinks,
			SkewSplit:      r.SkewSplit,
		},
	}, nil
}

// sweepFlowConfig is flowConfig for sweeps (no per-request TopK).
func (r *SweepRequest) flowConfig() (*smartndr.FlowConfig, error) {
	te, err := resolveTech(r.Tech)
	if err != nil {
		return nil, err
	}
	return &smartndr.FlowConfig{
		Tech:    te,
		Library: smartndr.DefaultLibraryFor(te),
		InSlew:  r.InSlewPS * 1e-12,
	}, nil
}

// cornerTiming converts the engine's corner view to the wire form.
func cornerTiming(cm core.CornerMetrics) *CornerTiming {
	return &CornerTiming{
		Corner:      cm.Corner.Name,
		Skew:        cm.Skew,
		WorstSlew:   cm.WorstSlew,
		SlewViol:    cm.SlewViol,
		MaxInsDelay: cm.MaxInsDel,
	}
}
