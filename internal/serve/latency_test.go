package serve

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"smartndr/internal/testutil"
)

// lat300Request is the acceptance workload: the 300-sink benchmark case
// through the smart scheme — the same shape as the engine's
// 300-sink optimizer benchmark.
func lat300Request(tb testing.TB) []byte {
	tb.Helper()
	spec := testutil.UniformSpec("lat300", 300, 3000, 42)
	body, err := json.Marshal(&FlowRequest{Spec: &spec, Scheme: "smart-ndr"})
	if err != nil {
		tb.Fatal(err)
	}
	return body
}

func timedPost(tb testing.TB, ts *httptest.Server, body []byte) (time.Duration, string) {
	tb.Helper()
	begin := time.Now()
	resp, err := http.Post(ts.URL+"/v1/flow", "application/json", bytes.NewReader(body))
	if err != nil {
		tb.Fatal(err)
	}
	elapsed := time.Since(begin)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		tb.Fatalf("status %d", resp.StatusCode)
	}
	return elapsed, resp.Header.Get("X-Cache")
}

// TestServeWarmCacheLatencyFloor is the acceptance check: on the
// 300-sink benchmark case a warm-cache /v1/flow round trip must cost
// under 5% of the cold run. The cold run synthesizes and optimizes a
// 300-sink tree (tens to hundreds of milliseconds); the warm path is a
// map lookup plus response replay, so the margin is enormous — if this
// test fails, caching is broken, not slow.
func TestServeWarmCacheLatencyFloor(t *testing.T) {
	if testing.Short() {
		t.Skip("300-sink synthesis is not a -short test")
	}
	ts := httptest.NewServer(New(Config{}).Handler())
	defer ts.Close()
	body := lat300Request(t)

	cold, outcome := timedPost(t, ts, body)
	if outcome != CacheMiss {
		t.Fatalf("first request X-Cache = %q, want miss", outcome)
	}
	// Best of three warm probes, so one scheduling hiccup cannot fail
	// the run.
	warm := time.Duration(1<<62 - 1)
	for i := 0; i < 3; i++ {
		d, outcome := timedPost(t, ts, body)
		if outcome != CacheHit {
			t.Fatalf("warm request %d X-Cache = %q, want hit", i, outcome)
		}
		if d < warm {
			warm = d
		}
	}
	if warm >= cold/20 {
		t.Errorf("warm-cache latency %v is not under 5%% of cold %v", warm, cold)
	}
}

// BenchmarkServeFlowCold measures the full uncached service round trip
// on the 300-sink case; BenchmarkServeFlowWarm the cached one. Their
// ratio is the margin behind TestServeWarmCacheLatencyFloor.
func BenchmarkServeFlowCold(b *testing.B) {
	ts := httptest.NewServer(New(Config{CacheEntries: 1}).Handler())
	defer ts.Close()
	body := lat300Request(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// A distinct seed per iteration defeats the cache.
		spec := testutil.UniformSpec("cold", 300, 3000, int64(i+1))
		req, _ := json.Marshal(&FlowRequest{Spec: &spec, Scheme: "smart-ndr"})
		resp, err := http.Post(ts.URL+"/v1/flow", "application/json", bytes.NewReader(req))
		if err != nil {
			b.Fatal(err)
		}
		resp.Body.Close()
	}
	_ = body
}

func BenchmarkServeFlowWarm(b *testing.B) {
	ts := httptest.NewServer(New(Config{}).Handler())
	defer ts.Close()
	body := lat300Request(b)
	resp, err := http.Post(ts.URL+"/v1/flow", "application/json", bytes.NewReader(body))
	if err != nil {
		b.Fatal(err)
	}
	resp.Body.Close()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		resp, err := http.Post(ts.URL+"/v1/flow", "application/json", bytes.NewReader(body))
		if err != nil {
			b.Fatal(err)
		}
		resp.Body.Close()
	}
}
