package serve

import (
	"strings"
	"testing"

	"smartndr"
	"smartndr/internal/workload"
)

func TestDecodeFlowRequestValid(t *testing.T) {
	req, err := DecodeFlowRequest([]byte(`{"bench":"cns01","scheme":"smart-ndr","tech":"tech45"}`))
	if err != nil {
		t.Fatal(err)
	}
	if req.Bench != "cns01" || req.Scheme != "smart-ndr" {
		t.Fatalf("decoded %+v", req)
	}
}

func TestDecodeFlowRequestSpec(t *testing.T) {
	req, err := DecodeFlowRequest([]byte(
		`{"spec":{"name":"x","sinks":40,"die_x":900,"die_y":900,"seed":7,"dist":0,"cap_min":1e-15,"cap_max":3e-15}}`))
	if err != nil {
		t.Fatal(err)
	}
	if req.Spec == nil || req.Spec.Sinks != 40 {
		t.Fatalf("decoded %+v", req)
	}
}

func TestDecodeFlowRequestRejects(t *testing.T) {
	cases := map[string]string{
		"unknown field":    `{"bench":"cns01","bogus":1}`,
		"trailing data":    `{"bench":"cns01"} {"again":true}`,
		"no workload":      `{}`,
		"both workloads":   `{"bench":"cns01","spec":{"name":"x","sinks":4,"die_x":100,"die_y":100,"seed":1,"cap_min":1e-15,"cap_max":2e-15}}`,
		"unknown bench":    `{"bench":"nope"}`,
		"unknown scheme":   `{"bench":"cns01","scheme":"psychic"}`,
		"unknown tech":     `{"bench":"cns01","tech":"tech7"}`,
		"negative topk":    `{"bench":"cns01","top_k":-1}`,
		"negative slew":    `{"bench":"cns01","in_slew_ps":-4}`,
		"negative timeout": `{"bench":"cns01","timeout_ms":-1}`,
		"not json":         `hello`,
	}
	for name, body := range cases {
		if _, err := DecodeFlowRequest([]byte(body)); err == nil {
			t.Errorf("%s: decode accepted %s", name, body)
		}
	}
}

func TestDecodeSweepRequestRejects(t *testing.T) {
	cases := map[string]string{
		"no arms":          `{"bench":"cns01"}`,
		"bad arm scheme":   `{"bench":"cns01","arms":[{"scheme":"psychic"}]}`,
		"bad arm corner":   `{"bench":"cns01","arms":[{"scheme":"smart","corner":"cryogenic"}]}`,
		"negative workers": `{"bench":"cns01","workers":-2,"arms":[{"scheme":"smart"}]}`,
	}
	for name, body := range cases {
		if _, err := DecodeSweepRequest([]byte(body)); err == nil {
			t.Errorf("%s: decode accepted %s", name, body)
		}
	}
	// Arm-count cap.
	arms := make([]string, maxSweepArms+1)
	for i := range arms {
		arms[i] = `{"scheme":"smart"}`
	}
	over := `{"bench":"cns01","arms":[` + strings.Join(arms, ",") + `]}`
	if _, err := DecodeSweepRequest([]byte(over)); err == nil {
		t.Errorf("decode accepted %d arms", maxSweepArms+1)
	}
}

func TestParseScheme(t *testing.T) {
	cases := map[string]smartndr.Scheme{
		"":            smartndr.SchemeSmart,
		"smart":       smartndr.SchemeSmart,
		"smart-ndr":   smartndr.SchemeSmart,
		"SMART":       smartndr.SchemeSmart,
		"all-default": smartndr.SchemeAllDefault,
		"default":     smartndr.SchemeAllDefault,
		"blanket":     smartndr.SchemeBlanket,
		"blanket-ndr": smartndr.SchemeBlanket,
		"top-k":       smartndr.SchemeTopK,
		"topk":        smartndr.SchemeTopK,
		"trunk":       smartndr.SchemeTrunk,
		"trunk-ndr":   smartndr.SchemeTrunk,
	}
	for name, want := range cases {
		got, err := ParseScheme(name)
		if err != nil || got != want {
			t.Errorf("ParseScheme(%q) = %v, %v; want %v", name, got, err, want)
		}
	}
	if _, err := ParseScheme("psychic"); err == nil {
		t.Error("ParseScheme accepted psychic")
	}
}

func TestFlowKeyStableAcrossEquivalentRequests(t *testing.T) {
	fr := &FlowRunner{}
	base := &FlowRequest{Bench: "cns01", Scheme: "smart-ndr"}
	k1, err := fr.FlowKey(base)
	if err != nil {
		t.Fatal(err)
	}
	// The scheme alias and an explicit default tech must map to the same
	// content address — they resolve to the same run.
	alias := &FlowRequest{Bench: "cns01", Scheme: "smart", Tech: "tech45"}
	k2, err := fr.FlowKey(alias)
	if err != nil {
		t.Fatal(err)
	}
	if k1 != k2 {
		t.Errorf("equivalent requests got different keys:\n%s\n%s", k1, k2)
	}
	// Workers and timeout are non-semantic.
	k3, err := fr.FlowKey(&FlowRequest{Bench: "cns01", Scheme: "smart-ndr", TimeoutMS: 5000})
	if err != nil {
		t.Fatal(err)
	}
	if k1 != k3 {
		t.Error("timeout_ms changed the content address")
	}
	// A different scheme must not collide.
	k4, err := fr.FlowKey(&FlowRequest{Bench: "cns01", Scheme: "blanket"})
	if err != nil {
		t.Fatal(err)
	}
	if k1 == k4 {
		t.Error("different schemes share a content address")
	}
}

func TestSweepKeySensitivity(t *testing.T) {
	fr := &FlowRunner{}
	base := &SweepRequest{Bench: "cns01", Arms: []SweepArm{{Scheme: "smart"}, {Scheme: "blanket", Corner: "slow"}}}
	k1, err := fr.SweepKey(base)
	if err != nil {
		t.Fatal(err)
	}
	// Workers are excluded: results are invariant under fan-out width.
	k2, err := fr.SweepKey(&SweepRequest{Bench: "cns01", Workers: 8,
		Arms: []SweepArm{{Scheme: "smart"}, {Scheme: "blanket", Corner: "slow"}}})
	if err != nil {
		t.Fatal(err)
	}
	if k1 != k2 {
		t.Error("workers changed the sweep content address")
	}
	// Arm order is semantic (results come back in arm order).
	k3, err := fr.SweepKey(&SweepRequest{Bench: "cns01",
		Arms: []SweepArm{{Scheme: "blanket", Corner: "slow"}, {Scheme: "smart"}}})
	if err != nil {
		t.Fatal(err)
	}
	if k1 == k3 {
		t.Error("reordered arms share a content address")
	}
}

func TestResolveSpecAndWorkloadName(t *testing.T) {
	spec, err := resolveSpec("cns01", nil)
	if err != nil || spec.Sinks == 0 {
		t.Fatalf("resolveSpec(cns01) = %+v, %v", spec, err)
	}
	custom := &workload.Spec{Name: "mine", Sinks: 10}
	spec, err = resolveSpec("", custom)
	if err != nil || spec.Name != "mine" {
		t.Fatalf("resolveSpec(custom) = %+v, %v", spec, err)
	}
	if workloadName("cns01", nil) != "cns01" || workloadName("", custom) != "mine" {
		t.Error("workloadName mismatch")
	}
}
