package serve

import (
	"container/list"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"

	"smartndr"
	"smartndr/internal/core"
	"smartndr/internal/obs"
	"smartndr/internal/par"
)

// Session endpoints (histogram names are serve.<endpoint>_<class>_seconds).
const (
	epSessionCreate = "session_create"
	epSessionDelta  = "session_delta"
	epSessionRead   = "session_read"
)

// Session store defaults (Config.SessionTTL, MaxSessions, SessionMaxBytes).
const (
	defaultSessionTTL      = 15 * time.Minute
	defaultMaxSessions     = 64
	defaultSessionMaxBytes = 256 << 20
)

// SessionCreateRequest is the wire form of POST /v1/session: the same
// shape as /v1/flow (including optional initial edits — re-hydrating an
// evicted session is a create carrying its last edit state), plus a TTL.
type SessionCreateRequest struct {
	FlowRequest
	// TTLMS overrides the server's idle TTL for this session, in
	// milliseconds; it can shorten but never extend the server bound.
	TTLMS int `json:"ttl_ms,omitempty"`
}

// SessionDeltaRequest is the wire form of POST /v1/session/{id}/delta.
// Exactly one of Edits (apply on top of the current state) or RollbackTo
// (jump back to an earlier rev) must be present.
type SessionDeltaRequest struct {
	Edits []smartndr.Edit `json:"edits,omitempty"`
	// RollbackTo names an earlier rev (0 = the create state); the
	// session returns to that state and records the visit as a new rev.
	RollbackTo *int `json:"rollback_to,omitempty"`
	TimeoutMS  int  `json:"timeout_ms,omitempty"`
}

// SessionResponse is the body of every successful session call. Result
// is the exact /v1/flow response body for the session's current edit
// state — byte-identical to a cold run — while the envelope fields are
// session-local (IDs and rev counters follow allocation order, so they
// are the one part of the session API that is not content-addressed).
type SessionResponse struct {
	Session string          `json:"session"`
	Rev     int             `json:"rev"`
	Revs    int             `json:"revs"`
	Key     string          `json:"key"`
	Nodes   int             `json:"nodes"`
	Result  json.RawMessage `json:"result,omitempty"`
}

// SessionStats is the /v1/statsz session view.
type SessionStats struct {
	Live        int   `json:"live"`
	MaxSessions int   `json:"max_sessions"`
	Bytes       int64 `json:"bytes"`
	MaxBytes    int64 `json:"max_bytes"`
}

// DecodeSessionCreateRequest parses and validates a /v1/session body.
func DecodeSessionCreateRequest(data []byte) (*SessionCreateRequest, error) {
	var req SessionCreateRequest
	if err := decodeStrict(data, &req); err != nil {
		return nil, err
	}
	if err := req.Validate(); err != nil {
		return nil, err
	}
	if req.TTLMS < 0 {
		return nil, fmt.Errorf("serve: negative ttl_ms %d", req.TTLMS)
	}
	// As in DecodeFlowRequest: an explicit empty edit list is no edits.
	if len(req.Edits) == 0 {
		req.Edits = nil
	}
	return &req, nil
}

// DecodeSessionDeltaRequest parses and validates a delta body.
func DecodeSessionDeltaRequest(data []byte) (*SessionDeltaRequest, error) {
	var req SessionDeltaRequest
	if err := decodeStrict(data, &req); err != nil {
		return nil, err
	}
	if err := req.Validate(); err != nil {
		return nil, err
	}
	if len(req.Edits) == 0 {
		req.Edits = nil
	}
	return &req, nil
}

// Validate checks the delta's shape without touching a session.
func (r *SessionDeltaRequest) Validate() error {
	if len(r.Edits) > 0 && r.RollbackTo != nil {
		return fmt.Errorf("serve: edits and rollback_to are mutually exclusive")
	}
	if len(r.Edits) == 0 && r.RollbackTo == nil {
		return fmt.Errorf("serve: delta needs edits or rollback_to")
	}
	if r.RollbackTo != nil && *r.RollbackTo < 0 {
		return fmt.Errorf("serve: negative rollback_to %d", *r.RollbackTo)
	}
	if len(r.Edits) > maxRequestEdits {
		return fmt.Errorf("serve: %d edits exceeds the %d-edit limit", len(r.Edits), maxRequestEdits)
	}
	for i, e := range r.Edits {
		if err := e.Validate(); err != nil {
			return fmt.Errorf("serve: edit %d: %w", i, err)
		}
	}
	if r.TimeoutMS < 0 {
		return fmt.Errorf("serve: negative timeout_ms %d", r.TimeoutMS)
	}
	return nil
}

// sessionRev is one visited edit state. Only the canonical edit list and
// its address are kept — rollback re-applies the state and re-evaluates,
// which the engine's bitwise contract makes byte-equivalent to (and far
// smaller than) storing response bodies.
type sessionRev struct {
	edits []smartndr.Edit
	key   string
}

// session is one store entry. The store's lock covers placement (map,
// LRU list, byte accounting); mu covers the handle and rev history —
// deltas take the write side (single writer per session), reads the read
// side. An evicted session's in-flight delta still completes: eviction
// only unlinks the entry, it never touches the handle.
type session struct {
	id     string
	handle SessionHandle

	mu   sync.RWMutex
	revs []sessionRev

	// The fields below are guarded by the store lock, not mu.
	expiry time.Time
	ttl    time.Duration
	bytes  int64
	elem   *list.Element
	gone   bool // evicted or closed; kept for observability in tests
}

// sessionStore owns the live sessions: TTL expiry (lazy, via the
// injected clock — no background goroutine to leak or to fake in tests),
// LRU eviction under session-count and memory pressure, and gauge
// upkeep. All methods are safe for concurrent use.
type sessionStore struct {
	mu          sync.Mutex
	byID        map[string]*session
	lru         *list.List // front = most recently used
	ttl         time.Duration
	maxSessions int
	maxBytes    int64
	bytes       int64
	seq         int64
	now         func() time.Time
	reg         *obs.Registry
}

func newSessionStore(ttl time.Duration, maxSessions int, maxBytes int64,
	now func() time.Time, reg *obs.Registry) *sessionStore {
	return &sessionStore{
		byID:        make(map[string]*session),
		lru:         list.New(),
		ttl:         ttl,
		maxSessions: maxSessions,
		maxBytes:    maxBytes,
		now:         now,
		reg:         reg,
	}
}

// gauges refreshes the live-session gauges; callers hold st.mu.
func (st *sessionStore) gauges() {
	st.reg.Set("serve.session_live", float64(len(st.byID)))
	st.reg.Set("serve.session_bytes", float64(st.bytes))
}

// dropLocked unlinks a session; callers hold st.mu and account the
// removal under its own counter.
func (st *sessionStore) dropLocked(s *session) {
	delete(st.byID, s.id)
	st.lru.Remove(s.elem)
	st.bytes -= s.bytes
	s.gone = true
}

// expireLocked retires every idle-expired session. TTLs refresh on use,
// so for a uniform TTL the LRU order is expiry order; mixed per-session
// TTLs make the back-of-list scan conservative (a short-TTL session
// behind a long-TTL one outlives its deadline until the next add/get —
// lazy expiry trades that slack for having no background sweeper).
func (st *sessionStore) expireLocked(now time.Time) {
	for e := st.lru.Back(); e != nil; {
		s := e.Value.(*session)
		e = e.Prev()
		if now.Before(s.expiry) {
			continue
		}
		st.dropLocked(s)
		st.reg.Add("serve.session_expired", 1)
	}
}

// add stores a new session and returns its entry, evicting LRU entries
// as needed to respect the session-count and byte budgets. A session
// bigger than the whole byte budget is still admitted — alone — because
// refusing it forever would make large specs un-sessionable; the budget
// is a soft target, not an allocator.
func (st *sessionStore) add(h SessionHandle, ttl time.Duration, state []smartndr.Edit, key string) *session {
	if ttl <= 0 || ttl > st.ttl {
		ttl = st.ttl
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	now := st.now()
	st.expireLocked(now)
	bytes := h.MemoryBytes()
	for len(st.byID) > 0 &&
		(len(st.byID) >= st.maxSessions || st.bytes+bytes > st.maxBytes) {
		st.dropLocked(st.lru.Back().Value.(*session))
		st.reg.Add("serve.session_evicted", 1)
	}
	st.seq++
	s := &session{
		id:     fmt.Sprintf("s%d", st.seq),
		handle: h,
		revs:   []sessionRev{{edits: state, key: key}},
		expiry: now.Add(ttl),
		ttl:    ttl,
		bytes:  bytes,
	}
	s.elem = st.lru.PushFront(s)
	st.byID[s.id] = s
	st.bytes += bytes
	st.reg.Add("serve.session_created", 1)
	st.gauges()
	return s
}

// get returns a live session, refreshing its TTL and recency, or nil if
// the ID is unknown or idle-expired.
func (st *sessionStore) get(id string) *session {
	st.mu.Lock()
	defer st.mu.Unlock()
	now := st.now()
	st.expireLocked(now)
	st.gauges()
	s := st.byID[id]
	if s == nil {
		return nil
	}
	s.expiry = now.Add(s.ttl)
	st.lru.MoveToFront(s.elem)
	return s
}

// remove closes a session by ID; reports whether it was live.
func (st *sessionStore) remove(id string) bool {
	st.mu.Lock()
	defer st.mu.Unlock()
	s := st.byID[id]
	if s == nil {
		return false
	}
	st.dropLocked(s)
	st.reg.Add("serve.session_closed", 1)
	st.gauges()
	return true
}

// stats snapshots the store for /v1/statsz.
func (st *sessionStore) stats() SessionStats {
	st.mu.Lock()
	defer st.mu.Unlock()
	st.expireLocked(st.now())
	st.gauges()
	return SessionStats{
		Live:        len(st.byID),
		MaxSessions: st.maxSessions,
		Bytes:       st.bytes,
		MaxBytes:    st.maxBytes,
	}
}

// sessionWork executes one admitted, decoded session request and
// returns the response or (status, error).
type sessionWork func(rtr *obs.Tracer, body []byte) (*SessionResponse, int, error)

// handleSession is the shared session request path, mirroring handleRun:
// deferred histogram + tracez record, method check, admission, scoped
// tracer, bounded body read, then the endpoint work. Session responses
// are stateful (rev counters), so there is no result cache — the
// admission gate is the only throughput control. okOutcome is the cache
// class a 200 lands in: "" (cold) for work that runs the engine,
// CacheHit for pure state reads.
func (s *Server) handleSession(w http.ResponseWriter, r *http.Request,
	method, endpoint, okOutcome string, work sessionWork) {

	t0 := s.now()
	var (
		reqID   int64
		status  int
		key     string
		outcome string
		col     *obs.Collector
	)
	defer func() {
		d := s.now().Sub(t0)
		class := latencyClass(status, outcome)
		if h := s.lat[endpoint][class]; h != nil {
			h.Observe(d.Seconds())
		}
		if s.tracez != nil {
			var evs []obs.SpanEvent
			if col != nil {
				evs = col.Events()
			}
			s.tracez.Add(TraceRecord{
				Req: reqID, Endpoint: endpoint, Key: key, Outcome: class,
				Cache: outcome, Status: status, DurNS: d.Nanoseconds(),
				Spans: buildSpanTree(evs),
			})
		}
	}()

	if r.Method != method {
		status = http.StatusMethodNotAllowed
		s.writeError(w, nil, status, fmt.Errorf("serve: %s needs %s", r.URL.Path, method))
		return
	}
	if !s.admit() {
		status = http.StatusServiceUnavailable
		s.refuse(w, nil, status, "draining")
		return
	}
	defer s.depart()
	s.reg.Add("serve.requests", 1)

	reqID = s.reqID.Add(1)
	rtr := s.tr.Scoped()
	if s.tracez != nil && s.tr.Enabled() {
		col = obs.NewCollector()
		rtr = s.tr.ScopedTee(col)
	}
	sp := rtr.Start("serve."+endpoint, obs.I("req", int(reqID)))
	defer sp.End()

	var body []byte
	if method == http.MethodPost {
		var err error
		body, err = io.ReadAll(http.MaxBytesReader(w, r.Body, s.maxBody))
		if err != nil {
			var tooLarge *http.MaxBytesError
			if errors.As(err, &tooLarge) {
				status = http.StatusRequestEntityTooLarge
				s.writeError(w, sp, status,
					fmt.Errorf("serve: request body exceeds %d bytes", tooLarge.Limit))
				return
			}
			status = http.StatusBadRequest
			s.writeError(w, sp, status, fmt.Errorf("serve: reading body: %w", err))
			return
		}
	}
	resp, failStatus, err := work(rtr, body)
	if err != nil {
		status = failStatus
		switch status {
		case http.StatusTooManyRequests:
			s.reg.Add("serve.saturated", 1)
			s.refuse(w, sp, status, "saturated")
		case http.StatusGatewayTimeout:
			s.reg.Add("serve.timeouts", 1)
			s.writeError(w, sp, status, err)
		default:
			s.writeError(w, sp, status, err)
		}
		return
	}
	key = resp.Key
	outcome = okOutcome
	sp.Set("key", key)
	sp.Set("session", resp.Session)
	status = http.StatusOK
	sp.Set("status", http.StatusOK)
	sp.Set("cache", outcome)
	out, err := json.Marshal(resp)
	if err != nil {
		status = http.StatusInternalServerError
		s.writeError(w, sp, status, err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("X-Cache", outcome)
	w.Header().Set("X-Key", key)
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(out)
}

// mapRunError classifies an engine/gate error the way handleRun does,
// with the session-specific addition that edit-validation failures
// (core.ErrEdit) are the client's fault.
func mapRunError(err error) int {
	switch {
	case errors.Is(err, par.ErrSaturated):
		return http.StatusTooManyRequests
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout
	case errors.Is(err, context.Canceled):
		return http.StatusServiceUnavailable
	case errors.Is(err, core.ErrEdit):
		return http.StatusBadRequest
	default:
		return http.StatusInternalServerError
	}
}

// handleSessionCreate serves POST /v1/session: open the flow cold
// (gated — it is a full synthesis), apply the initial edit state, store
// the session at rev 0.
func (s *Server) handleSessionCreate(w http.ResponseWriter, r *http.Request) {
	s.handleSession(w, r, http.MethodPost, epSessionCreate, "", func(rtr *obs.Tracer, body []byte) (*SessionResponse, int, error) {
		req, err := DecodeSessionCreateRequest(body)
		if err != nil {
			return nil, http.StatusBadRequest, err
		}
		sr, ok := s.runner.(SessionRunner)
		if !ok {
			return nil, http.StatusNotImplemented,
				fmt.Errorf("serve: this runner does not host sessions")
		}
		ctx, cancel := context.WithTimeout(r.Context(), s.resolveTimeout(req.TimeoutMS))
		defer cancel()
		release, err := s.gate.Acquire(ctx)
		if err != nil {
			return nil, mapRunError(err), err
		}
		defer release()
		h, err := sr.OpenSession(ctx, &req.FlowRequest, rtr)
		if err != nil {
			return nil, mapRunError(err), err
		}
		state := core.CanonicalEdits(req.Edits)
		result, key, err := h.Apply(ctx, state)
		if err != nil {
			return nil, mapRunError(err), err
		}
		sess := s.sessions.add(h, time.Duration(req.TTLMS)*time.Millisecond, state, key)
		return &SessionResponse{
			Session: sess.id,
			Rev:     0,
			Revs:    1,
			Key:     key,
			Nodes:   h.Nodes(),
			Result:  result,
		}, 0, nil
	})
}

// handleSessionDelta serves POST /v1/session/{id}/delta: resolve the
// target edit state (stacked edits or a rollback), apply it under the
// session's writer lock, record the new rev.
func (s *Server) handleSessionDelta(w http.ResponseWriter, r *http.Request) {
	s.handleSession(w, r, http.MethodPost, epSessionDelta, "", func(rtr *obs.Tracer, body []byte) (*SessionResponse, int, error) {
		req, err := DecodeSessionDeltaRequest(body)
		if err != nil {
			return nil, http.StatusBadRequest, err
		}
		id := r.PathValue("id")
		sess := s.sessions.get(id)
		if sess == nil {
			return nil, http.StatusNotFound,
				fmt.Errorf("serve: no session %q (expired or never created)", id)
		}
		ctx, cancel := context.WithTimeout(r.Context(), s.resolveTimeout(req.TimeoutMS))
		defer cancel()
		release, err := s.gate.Acquire(ctx)
		if err != nil {
			return nil, mapRunError(err), err
		}
		defer release()
		sp := rtr.Start("serve.session_apply", obs.I("edits", len(req.Edits)))
		defer sp.End()
		// Single writer: resolving the target state, the edit itself,
		// and the rev append are one critical section, so concurrent
		// deltas serialize and each sees the other's revs.
		sess.mu.Lock()
		defer sess.mu.Unlock()
		var state []smartndr.Edit
		if rb := req.RollbackTo; rb != nil {
			if *rb >= len(sess.revs) {
				return nil, http.StatusBadRequest,
					fmt.Errorf("%w: rollback_to %d beyond rev %d", core.ErrEdit, *rb, len(sess.revs)-1)
			}
			state = sess.revs[*rb].edits
			s.reg.Add("serve.session_rollbacks", 1)
		} else {
			cur := sess.revs[len(sess.revs)-1].edits
			state = core.CanonicalEdits(append(append([]smartndr.Edit{}, cur...), req.Edits...))
		}
		result, key, err := sess.handle.Apply(ctx, state)
		if err != nil {
			return nil, mapRunError(err), err
		}
		sess.revs = append(sess.revs, sessionRev{edits: state, key: key})
		s.reg.Add("serve.session_deltas", 1)
		return &SessionResponse{
			Session: sess.id,
			Rev:     len(sess.revs) - 1,
			Revs:    len(sess.revs),
			Key:     key,
			Nodes:   sess.handle.Nodes(),
			Result:  result,
		}, 0, nil
	})
}

// handleSessionByID serves GET (cheap state read, no engine work) and
// DELETE (close now instead of waiting out the TTL) on /v1/session/{id}.
func (s *Server) handleSessionByID(w http.ResponseWriter, r *http.Request) {
	if r.Method == http.MethodDelete {
		id := r.PathValue("id")
		if !s.sessions.remove(id) {
			s.writeError(w, nil, http.StatusNotFound,
				fmt.Errorf("serve: no session %q (expired or never created)", id))
			return
		}
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(map[string]string{"closed": id})
		return
	}
	s.handleSession(w, r, http.MethodGet, epSessionRead, CacheHit, func(rtr *obs.Tracer, body []byte) (*SessionResponse, int, error) {
		id := r.PathValue("id")
		sess := s.sessions.get(id)
		if sess == nil {
			return nil, http.StatusNotFound,
				fmt.Errorf("serve: no session %q (expired or never created)", id)
		}
		sess.mu.RLock()
		defer sess.mu.RUnlock()
		rev := len(sess.revs) - 1
		return &SessionResponse{
			Session: sess.id,
			Rev:     rev,
			Revs:    len(sess.revs),
			Key:     sess.revs[rev].key,
			Nodes:   sess.handle.Nodes(),
		}, 0, nil
	})
}
