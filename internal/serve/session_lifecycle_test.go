package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"runtime"
	"sync"
	"testing"
	"time"

	"smartndr"
	"smartndr/internal/obs"
)

// Session-store and session-endpoint lifecycle tests. Everything here
// runs against stub handles and an injected clock — no engine, no
// sleeps: time advances by assignment and concurrency is sequenced with
// channels, so the suite is deterministic under -race.

// stubSessionHandle is a SessionHandle whose Apply can be held open on a
// channel, mirroring stubRunner.hold for the session path.
type stubSessionHandle struct {
	bytes int64

	mu      sync.Mutex
	applies int
	gate    chan struct{} // non-nil: Apply blocks here (or on ctx)
	started chan struct{} // non-nil: receives as each Apply begins
}

func (h *stubSessionHandle) Apply(ctx context.Context, edits []smartndr.Edit) ([]byte, string, error) {
	h.mu.Lock()
	h.applies++
	gate := h.gate
	started := h.started
	h.mu.Unlock()
	if started != nil {
		started <- struct{}{}
	}
	if gate != nil {
		select {
		case <-gate:
		case <-ctx.Done():
			return nil, "", ctx.Err()
		}
	}
	key, _ := h.Key(edits)
	body, err := json.Marshal(map[string]int{"edits": len(edits)})
	return body, key, err
}

func (h *stubSessionHandle) Key(edits []smartndr.Edit) (string, error) {
	return fmt.Sprintf("state-%d", len(edits)), nil
}
func (h *stubSessionHandle) Live() []smartndr.Edit { return nil }
func (h *stubSessionHandle) Nodes() int            { return 7 }
func (h *stubSessionHandle) MemoryBytes() int64    { return h.bytes }

func (h *stubSessionHandle) Applies() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.applies
}

// stubSessionRunner extends stubRunner with sessions; every OpenSession
// hands out the next handle from the queue (or a fresh default one).
type stubSessionRunner struct {
	*stubRunner
	mu      sync.Mutex
	handles []*stubSessionHandle // consumed in order; empty → new default
	opened  []*stubSessionHandle
}

func newStubSessionRunner(handles ...*stubSessionHandle) *stubSessionRunner {
	return &stubSessionRunner{stubRunner: newStubRunner(), handles: handles}
}

func (sr *stubSessionRunner) OpenSession(ctx context.Context, req *FlowRequest, tr *obs.Tracer) (SessionHandle, error) {
	sr.mu.Lock()
	defer sr.mu.Unlock()
	var h *stubSessionHandle
	if len(sr.handles) > 0 {
		h, sr.handles = sr.handles[0], sr.handles[1:]
	} else {
		h = &stubSessionHandle{bytes: 1 << 10}
	}
	sr.opened = append(sr.opened, h)
	return h, nil
}

// fakeClock is a mutex-guarded settable clock for Config.Now.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock { return &fakeClock{t: time.Unix(5000, 0)} }

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

func postSession(t *testing.T, ts *httptest.Server, path, body string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(ts.URL+path, "application/json", bytes.NewReader([]byte(body)))
	if err != nil {
		t.Fatal(err)
	}
	return resp, readBody(t, resp)
}

const stubCreateBody = `{"bench":"cns01"}`

// createStubSession opens one session against a stub server and returns
// its ID.
func createStubSession(t *testing.T, ts *httptest.Server, body string) string {
	t.Helper()
	resp, out := postSession(t, ts, "/v1/session", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("create status %d: %s", resp.StatusCode, out)
	}
	return decodeSessionResponse(t, out).Session
}

func TestSessionStoreTTLExpiry(t *testing.T) {
	clock := newFakeClock()
	sr := newStubSessionRunner()
	s := New(Config{Runner: sr, SessionTTL: time.Minute, Now: clock.Now})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	id := createStubSession(t, ts, stubCreateBody)

	// Uses refresh the TTL: touch at +30s, then the session survives
	// +80s total (50s past the refreshed deadline's start, under 60s).
	clock.Advance(30 * time.Second)
	if resp, out := postSession(t, ts, "/v1/session/"+id+"/delta",
		`{"edits":[{"op":"in_slew","in_slew_ps":50}]}`); resp.StatusCode != http.StatusOK {
		t.Fatalf("delta at +30s: %d: %s", resp.StatusCode, out)
	}
	clock.Advance(50 * time.Second)
	resp, err := http.Get(ts.URL + "/v1/session/" + id)
	if err != nil {
		t.Fatal(err)
	}
	readBody(t, resp)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("read at +80s (refreshed at +30s) = %d, want 200", resp.StatusCode)
	}

	// Then it idles past the full TTL and lazily expires.
	clock.Advance(61 * time.Second)
	resp, out := postSession(t, ts, "/v1/session/"+id+"/delta",
		`{"edits":[{"op":"in_slew","in_slew_ps":40}]}`)
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("delta after TTL = %d, want 404: %s", resp.StatusCode, out)
	}
	if got := s.reg.Counter("serve.session_expired"); got != 1 {
		t.Errorf("serve.session_expired = %v, want 1", got)
	}

	// A request ttl_ms below the server bound shortens the session's
	// life; one above it is clamped to the bound.
	short := createStubSession(t, ts, `{"bench":"cns01","ttl_ms":10000}`)
	long := createStubSession(t, ts, `{"bench":"cns02","ttl_ms":3600000}`)
	clock.Advance(11 * time.Second)
	if resp, _ := http.Get(ts.URL + "/v1/session/" + short); resp.StatusCode != http.StatusNotFound {
		readBody(t, resp)
		t.Errorf("short-TTL session alive at +11s: %d", resp.StatusCode)
	} else {
		readBody(t, resp)
	}
	clock.Advance(55 * time.Second) // +66s > the 60s server bound
	if resp, _ := http.Get(ts.URL + "/v1/session/" + long); resp.StatusCode != http.StatusNotFound {
		readBody(t, resp)
		t.Errorf("ttl_ms extended the session past the server bound: %d", resp.StatusCode)
	} else {
		readBody(t, resp)
	}
}

func TestSessionStoreLRUEvictionUnderPressure(t *testing.T) {
	clock := newFakeClock()
	// Four slots by count but only 3 KiB by bytes: byte pressure binds
	// first with 1-KiB handles.
	sr := newStubSessionRunner(
		&stubSessionHandle{bytes: 1 << 10},
		&stubSessionHandle{bytes: 1 << 10},
		&stubSessionHandle{bytes: 1 << 10},
		&stubSessionHandle{bytes: 1 << 10},
	)
	s := New(Config{Runner: sr, MaxSessions: 4, SessionMaxBytes: 3 << 10, Now: clock.Now})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	a := createStubSession(t, ts, `{"bench":"cns01"}`)
	b := createStubSession(t, ts, `{"bench":"cns02"}`)
	c := createStubSession(t, ts, `{"bench":"cns03"}`)

	// Touch a so b becomes the LRU victim.
	if resp, _ := http.Get(ts.URL + "/v1/session/" + a); resp.StatusCode != http.StatusOK {
		t.Fatalf("read a: %d", resp.StatusCode)
	} else {
		readBody(t, resp)
	}
	d := createStubSession(t, ts, `{"bench":"cns04"}`)

	for id, want := range map[string]int{
		a: http.StatusOK, b: http.StatusNotFound, c: http.StatusOK, d: http.StatusOK,
	} {
		resp, err := http.Get(ts.URL + "/v1/session/" + id)
		if err != nil {
			t.Fatal(err)
		}
		readBody(t, resp)
		if resp.StatusCode != want {
			t.Errorf("session %s read = %d, want %d", id, resp.StatusCode, want)
		}
	}
	if got := s.reg.Counter("serve.session_evicted"); got != 1 {
		t.Errorf("serve.session_evicted = %v, want 1", got)
	}
	st := s.sessions.stats()
	if st.Live != 3 || st.Bytes != 3<<10 {
		t.Errorf("stats after eviction = %+v, want 3 live / 3072 bytes", st)
	}

	// An oversize session (bigger than the whole byte budget) still gets
	// admitted — alone.
	sr.mu.Lock()
	sr.handles = append(sr.handles, &stubSessionHandle{bytes: 64 << 10})
	sr.mu.Unlock()
	huge := createStubSession(t, ts, `{"bench":"cns05"}`)
	st = s.sessions.stats()
	if st.Live != 1 || st.Bytes != 64<<10 {
		t.Errorf("stats after oversize admit = %+v, want it alone", st)
	}
	if resp, _ := http.Get(ts.URL + "/v1/session/" + huge); resp.StatusCode != http.StatusOK {
		t.Errorf("oversize session not live: %d", resp.StatusCode)
	} else {
		readBody(t, resp)
	}
}

// TestSessionConcurrentDeltaReadEvict hammers one store from three
// directions at once — writers stacking deltas on a session, readers
// polling it, and a creator forcing LRU evictions — and checks the
// serialization invariants afterwards. Synchronization is purely
// WaitGroup + channel; run under -race this is the data-race probe for
// the store and the per-session locks.
func TestSessionConcurrentDeltaReadEvict(t *testing.T) {
	clock := newFakeClock()
	sr := newStubSessionRunner()
	s := New(Config{Runner: sr, MaxSessions: 2, MaxConcurrent: 8, Now: clock.Now})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	target := createStubSession(t, ts, stubCreateBody)

	const writers, readers, creators = 4, 4, 2
	const perWorker = 8
	var wg sync.WaitGroup
	errs := make(chan string, (writers+readers+creators)*perWorker)

	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				resp, err := http.Post(ts.URL+"/v1/session/"+target+"/delta", "application/json",
					bytes.NewReader([]byte(`{"edits":[{"op":"in_slew","in_slew_ps":45}]}`)))
				if err != nil {
					errs <- err.Error()
					return
				}
				resp.Body.Close()
				// 200 while live, 404 once the creators evict it.
				if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusNotFound {
					errs <- fmt.Sprintf("delta status %d", resp.StatusCode)
				}
			}
		}()
	}
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				resp, err := http.Get(ts.URL + "/v1/session/" + target)
				if err != nil {
					errs <- err.Error()
					return
				}
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusNotFound {
					errs <- fmt.Sprintf("read status %d", resp.StatusCode)
				}
			}
		}()
	}
	for c := 0; c < creators; c++ {
		c := c
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				resp, err := http.Post(ts.URL+"/v1/session", "application/json",
					bytes.NewReader([]byte(fmt.Sprintf(`{"bench":"cns0%d"}`, 2+c))))
				if err != nil {
					errs <- err.Error()
					return
				}
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					errs <- fmt.Sprintf("create status %d", resp.StatusCode)
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Error(e)
	}

	// The store's accounting survived the storm.
	st := s.sessions.stats()
	if st.Live < 1 || st.Live > 2 {
		t.Errorf("live sessions = %d, want 1..2", st.Live)
	}
	if st.Bytes != int64(st.Live)<<10 {
		t.Errorf("bytes = %d for %d live 1-KiB sessions", st.Bytes, st.Live)
	}
}

// TestSessionDrainFinishesInFlightDelta: during drain the session
// endpoints refuse new work with 503, but a delta already inside the
// engine completes — the same guarantee the run endpoints give.
func TestSessionDrainFinishesInFlightDelta(t *testing.T) {
	h := &stubSessionHandle{
		bytes:   1 << 10,
		gate:    make(chan struct{}),
		started: make(chan struct{}, 4),
	}
	sr := newStubSessionRunner(h)
	s := New(Config{Runner: sr})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// The create's initial Apply would also hit the gate, so create with
	// it open and re-arm afterwards.
	close(h.gate)
	id := createStubSession(t, ts, stubCreateBody)
	<-h.started
	h.mu.Lock()
	h.gate = make(chan struct{})
	gate := h.gate
	h.mu.Unlock()

	// One delta in flight, held open inside Apply.
	deltaDone := make(chan int, 1)
	go func() {
		resp, err := http.Post(ts.URL+"/v1/session/"+id+"/delta", "application/json",
			bytes.NewReader([]byte(`{"edits":[{"op":"in_slew","in_slew_ps":50}]}`)))
		if err != nil {
			deltaDone <- -1
			return
		}
		resp.Body.Close()
		deltaDone <- resp.StatusCode
	}()
	<-h.started

	drainErr := make(chan error, 1)
	go func() { drainErr <- s.Drain(context.Background()) }()
	for !s.Draining() {
		runtime.Gosched()
	}

	// New session work is refused while draining.
	if resp, _ := postSession(t, ts, "/v1/session", stubCreateBody); resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("create during drain = %d, want 503", resp.StatusCode)
	}
	if resp, _ := postSession(t, ts, "/v1/session/"+id+"/delta",
		`{"edits":[{"op":"in_slew","in_slew_ps":55}]}`); resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("delta during drain = %d, want 503", resp.StatusCode)
	}
	select {
	case err := <-drainErr:
		t.Fatalf("drain returned %v with a delta still in flight", err)
	default:
	}

	// The in-flight delta completes and drain then returns.
	close(gate)
	if status := <-deltaDone; status != http.StatusOK {
		t.Fatalf("in-flight delta finished %d, want 200", status)
	}
	if err := <-drainErr; err != nil {
		t.Fatalf("drain: %v", err)
	}
}

// TestSessionEndpointErrors sweeps the session endpoints' failure
// surface: wrong methods, unknown IDs, malformed and invalid bodies,
// out-of-range rollbacks, and a runner with no session support.
func TestSessionEndpointErrors(t *testing.T) {
	sr := newStubSessionRunner()
	s := New(Config{Runner: sr})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	id := createStubSession(t, ts, stubCreateBody)

	get := func(path string) int {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		readBody(t, resp)
		return resp.StatusCode
	}
	post := func(path, body string) int {
		resp, out := postSession(t, ts, path, body)
		_ = out
		return resp.StatusCode
	}

	cases := []struct {
		name string
		got  int
		want int
	}{
		{"GET create endpoint", get("/v1/session"), http.StatusMethodNotAllowed},
		{"GET delta endpoint", get("/v1/session/" + id + "/delta"), http.StatusMethodNotAllowed},
		{"delta unknown id", post("/v1/session/nope/delta", `{"edits":[{"op":"in_slew","in_slew_ps":50}]}`), http.StatusNotFound},
		{"read unknown id", get("/v1/session/nope"), http.StatusNotFound},
		{"create malformed", post("/v1/session", `{"bench":`), http.StatusBadRequest},
		{"create unknown field", post("/v1/session", `{"bench":"cns01","bogus":1}`), http.StatusBadRequest},
		{"create negative ttl", post("/v1/session", `{"bench":"cns01","ttl_ms":-5}`), http.StatusBadRequest},
		{"delta empty", post("/v1/session/"+id+"/delta", `{}`), http.StatusBadRequest},
		{"delta both modes", post("/v1/session/"+id+"/delta", `{"edits":[{"op":"in_slew","in_slew_ps":50}],"rollback_to":0}`), http.StatusBadRequest},
		{"delta bad op", post("/v1/session/"+id+"/delta", `{"edits":[{"op":"warp_sink"}]}`), http.StatusBadRequest},
		{"rollback negative", post("/v1/session/"+id+"/delta", `{"rollback_to":-1}`), http.StatusBadRequest},
		{"rollback beyond", post("/v1/session/"+id+"/delta", `{"rollback_to":99}`), http.StatusBadRequest},
	}
	for _, c := range cases {
		if c.got != c.want {
			t.Errorf("%s = %d, want %d", c.name, c.got, c.want)
		}
	}

	// DELETE closes; the second DELETE has nothing to close.
	del := func() int {
		req, err := http.NewRequest(http.MethodDelete, ts.URL+"/v1/session/"+id, nil)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		readBody(t, resp)
		return resp.StatusCode
	}
	if got := del(); got != http.StatusOK {
		t.Errorf("DELETE = %d, want 200", got)
	}
	if got := del(); got != http.StatusNotFound {
		t.Errorf("second DELETE = %d, want 404", got)
	}
	if got := s.reg.Counter("serve.session_closed"); got != 1 {
		t.Errorf("serve.session_closed = %v, want 1", got)
	}

	// A runner without session support answers 501.
	plain := New(Config{Runner: newStubRunner()})
	tp := httptest.NewServer(plain.Handler())
	defer tp.Close()
	resp, out := postSession(t, tp, "/v1/session", stubCreateBody)
	if resp.StatusCode != http.StatusNotImplemented {
		t.Errorf("sessionless runner create = %d, want 501: %s", resp.StatusCode, out)
	}
}

// TestSessionMetricsAndStatsz: the session counters, gauges, and the
// statsz session block move with the lifecycle.
func TestSessionMetricsAndStatsz(t *testing.T) {
	clock := newFakeClock()
	sr := newStubSessionRunner()
	s := New(Config{Runner: sr, MaxSessions: 8, SessionMaxBytes: 1 << 20, Now: clock.Now})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	id := createStubSession(t, ts, stubCreateBody)
	if resp, out := postSession(t, ts, "/v1/session/"+id+"/delta",
		`{"edits":[{"op":"in_slew","in_slew_ps":50}]}`); resp.StatusCode != http.StatusOK {
		t.Fatalf("delta: %d: %s", resp.StatusCode, out)
	}
	rb := `{"rollback_to":0}`
	if resp, out := postSession(t, ts, "/v1/session/"+id+"/delta", rb); resp.StatusCode != http.StatusOK {
		t.Fatalf("rollback: %d: %s", resp.StatusCode, out)
	}

	resp, err := http.Get(ts.URL + "/v1/statsz")
	if err != nil {
		t.Fatal(err)
	}
	var st Statsz
	if err := json.Unmarshal(readBody(t, resp), &st); err != nil {
		t.Fatal(err)
	}
	if st.Sessions.Live != 1 || st.Sessions.MaxSessions != 8 {
		t.Errorf("statsz sessions = %+v", st.Sessions)
	}
	if st.Sessions.Bytes != 1<<10 || st.Sessions.MaxBytes != 1<<20 {
		t.Errorf("statsz session bytes = %+v", st.Sessions)
	}
	// Both delta requests count as deltas; the rollback one additionally
	// lands in the rollback counter.
	for name, want := range map[string]float64{
		"serve.session_created":   1,
		"serve.session_deltas":    2,
		"serve.session_rollbacks": 1,
	} {
		if got := s.reg.Counter(name); got != want {
			t.Errorf("%s = %v, want %v", name, got, want)
		}
	}
	gauges := s.reg.Gauges()
	if gauges["serve.session_live"] != 1 || gauges["serve.session_bytes"] != 1<<10 {
		t.Errorf("session gauges = live %v bytes %v",
			gauges["serve.session_live"], gauges["serve.session_bytes"])
	}

	// Latency histograms landed under the session endpoint classes.
	if snap := s.lat[epSessionCreate][latCold].Snapshot(); snap.Count != 1 {
		t.Errorf("session_create cold count = %d, want 1", snap.Count)
	}
	if snap := s.lat[epSessionDelta][latCold].Snapshot(); snap.Count != 2 {
		t.Errorf("session_delta cold count = %d, want 2", snap.Count)
	}
}
