package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"

	"smartndr/internal/testutil"
)

// differential tests run the real engine through the full HTTP path and
// pin down the service's core promise: a cached response is the cold
// response, byte for byte, and no amount of concurrency or fan-out
// width changes the bytes.

func postJSON(t *testing.T, ts *httptest.Server, path string, v any) (*http.Response, []byte) {
	t.Helper()
	body, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+path, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	return resp, readBody(t, resp)
}

func TestServeFlowCachedResponseByteIdenticalAcrossSeeds(t *testing.T) {
	if testing.Short() {
		t.Skip("differential sweep is not a -short test")
	}
	// Two independent servers: warm hits on A must replay A's cold
	// bytes, and a cold run on B must produce those same bytes — the
	// cache is transparent and the engine is deterministic across
	// server instances.
	a := httptest.NewServer(New(Config{}).Handler())
	defer a.Close()
	b := httptest.NewServer(New(Config{}).Handler())
	defer b.Close()

	const seeds = 24
	for i := 0; i < seeds; i++ {
		seed := int64(1000 + 37*i)
		spec := testutil.UniformSpec(fmt.Sprintf("diff%02d", i), 24, 600, seed)
		req := &FlowRequest{Spec: &spec, Scheme: "smart-ndr"}

		coldResp, cold := postJSON(t, a, "/v1/flow", req)
		if coldResp.StatusCode != http.StatusOK {
			t.Fatalf("seed %d: cold status %d: %s", seed, coldResp.StatusCode, cold)
		}
		if got := coldResp.Header.Get("X-Cache"); got != CacheMiss {
			t.Fatalf("seed %d: cold X-Cache %q", seed, got)
		}

		warmResp, warm := postJSON(t, a, "/v1/flow", req)
		if got := warmResp.Header.Get("X-Cache"); got != CacheHit {
			t.Fatalf("seed %d: warm X-Cache %q", seed, got)
		}
		if !bytes.Equal(cold, warm) {
			t.Errorf("seed %d: warm response differs from cold:\n%s\n%s", seed, cold, warm)
		}

		_, other := postJSON(t, b, "/v1/flow", req)
		if !bytes.Equal(cold, other) {
			t.Errorf("seed %d: fresh server produced different bytes:\n%s\n%s", seed, cold, other)
		}
	}
}

func TestServeSweepWorkerCountInvariance(t *testing.T) {
	if testing.Short() {
		t.Skip("differential sweep is not a -short test")
	}
	spec := testutil.UniformSpec("sweepdiff", 40, 800, 7)
	arms := []SweepArm{
		{Scheme: "all-default"},
		{Scheme: "blanket", Corner: "slow"},
		{Scheme: "top-k", Corner: "fast"},
		{Scheme: "trunk"},
		{Scheme: "smart", Corner: "typ"},
	}
	// Separate servers so both runs are cold — the sweep key excludes
	// Workers, so on one server the second request would be a cache hit
	// and the comparison vacuous.
	serial := httptest.NewServer(New(Config{}).Handler())
	defer serial.Close()
	parallel := httptest.NewServer(New(Config{}).Handler())
	defer parallel.Close()

	r1, body1 := postJSON(t, serial, "/v1/sweep", &SweepRequest{Spec: &spec, Arms: arms, Workers: 1})
	if r1.StatusCode != http.StatusOK {
		t.Fatalf("workers=1 status %d: %s", r1.StatusCode, body1)
	}
	r8, body8 := postJSON(t, parallel, "/v1/sweep", &SweepRequest{Spec: &spec, Arms: arms, Workers: 8})
	if r8.StatusCode != http.StatusOK {
		t.Fatalf("workers=8 status %d: %s", r8.StatusCode, body8)
	}
	if !bytes.Equal(body1, body8) {
		t.Fatalf("sweep bytes differ between workers=1 and workers=8:\n%s\n%s", body1, body8)
	}
	if r1.Header.Get("X-Key") != r8.Header.Get("X-Key") {
		t.Errorf("sweep keys differ across worker counts: %s vs %s",
			r1.Header.Get("X-Key"), r8.Header.Get("X-Key"))
	}

	var out SweepResponse
	if err := json.Unmarshal(body1, &out); err != nil {
		t.Fatal(err)
	}
	if len(out.Arms) != len(arms) {
		t.Fatalf("got %d arm results, want %d", len(out.Arms), len(arms))
	}
	// Results come back in arm order (registry order), not completion
	// order.
	wantSchemes := []string{"all-default", "blanket-ndr", "top-k", "trunk-ndr", "smart-ndr"}
	for i, arm := range out.Arms {
		if arm.Scheme != wantSchemes[i] {
			t.Errorf("arm %d scheme = %q, want %q", i, arm.Scheme, wantSchemes[i])
		}
	}
	for i, arm := range out.Arms {
		wantCorner := arms[i].Corner
		if (arm.Corner != nil) != (wantCorner != "") {
			t.Errorf("arm %d corner presence mismatch", i)
			continue
		}
		if arm.Corner != nil && arm.Corner.Corner != wantCorner {
			t.Errorf("arm %d corner = %q, want %q", i, arm.Corner.Corner, wantCorner)
		}
	}
}
