package serve

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"

	"smartndr/internal/obs"
)

func TestCacheHitMissAndCounters(t *testing.T) {
	reg := &obs.Registry{}
	c := NewCache(4, reg)
	ctx := context.Background()

	calls := 0
	load := func() ([]byte, error) { calls++; return []byte("body"), nil }

	body, outcome, err := c.Do(ctx, "k", load)
	if err != nil || string(body) != "body" || outcome != CacheMiss {
		t.Fatalf("cold Do = %q,%q,%v; want body,miss,nil", body, outcome, err)
	}
	body, outcome, err = c.Do(ctx, "k", load)
	if err != nil || string(body) != "body" || outcome != CacheHit {
		t.Fatalf("warm Do = %q,%q,%v; want body,hit,nil", body, outcome, err)
	}
	if calls != 1 {
		t.Fatalf("loader ran %d times, want 1", calls)
	}
	if got := reg.Counter("serve.cache_hits"); got != 1 {
		t.Errorf("cache_hits = %v, want 1", got)
	}
	if got := reg.Counter("serve.cache_misses"); got != 1 {
		t.Errorf("cache_misses = %v, want 1", got)
	}
}

func TestCacheLRUEviction(t *testing.T) {
	reg := &obs.Registry{}
	c := NewCache(2, reg)
	ctx := context.Background()
	put := func(k string) {
		_, _, err := c.Do(ctx, k, func() ([]byte, error) { return []byte(k), nil })
		if err != nil {
			t.Fatal(err)
		}
	}
	put("a")
	put("b")
	// Touch a so b becomes the LRU victim.
	if _, ok := c.Get("a"); !ok {
		t.Fatal("a should be cached")
	}
	put("c")
	if _, ok := c.Get("b"); ok {
		t.Error("b should have been evicted (LRU)")
	}
	if _, ok := c.Get("a"); !ok {
		t.Error("a should have survived (recently used)")
	}
	if c.Len() != 2 || c.Cap() != 2 {
		t.Errorf("Len/Cap = %d/%d, want 2/2", c.Len(), c.Cap())
	}
	if got := reg.Counter("serve.cache_evictions"); got != 1 {
		t.Errorf("cache_evictions = %v, want 1", got)
	}
}

func TestCacheErrorNotCached(t *testing.T) {
	c := NewCache(4, nil)
	ctx := context.Background()
	boom := errors.New("boom")
	calls := 0
	load := func() ([]byte, error) {
		calls++
		if calls == 1 {
			return nil, boom
		}
		return []byte("ok"), nil
	}
	if _, _, err := c.Do(ctx, "k", load); !errors.Is(err, boom) {
		t.Fatalf("first Do err = %v, want boom", err)
	}
	if c.Len() != 0 {
		t.Fatalf("failed load cached an entry")
	}
	body, outcome, err := c.Do(ctx, "k", load)
	if err != nil || string(body) != "ok" || outcome != CacheMiss {
		t.Fatalf("retry Do = %q,%q,%v; want ok,miss,nil", body, outcome, err)
	}
}

func TestCacheSingleflightShares(t *testing.T) {
	c := NewCache(4, nil)
	ctx := context.Background()

	started := make(chan struct{})
	release := make(chan struct{})
	var calls int
	var mu sync.Mutex
	load := func() ([]byte, error) {
		mu.Lock()
		calls++
		mu.Unlock()
		close(started)
		<-release
		return []byte("shared"), nil
	}

	var wg sync.WaitGroup
	outcomes := make([]string, 2)
	bodies := make([][]byte, 2)
	wg.Add(1)
	go func() {
		defer wg.Done()
		bodies[0], outcomes[0], _ = c.Do(ctx, "k", load)
	}()
	<-started // leader is inside the loader; the flight is registered

	wg.Add(1)
	go func() {
		defer wg.Done()
		bodies[1], outcomes[1], _ = c.Do(ctx, "k", func() ([]byte, error) {
			t.Error("follower must not run its own loader")
			return nil, nil
		})
	}()
	// The follower either joins the flight (shared) or, if it loses the
	// race and arrives after completion, hits the cache. Both prove
	// single execution.
	close(release)
	wg.Wait()

	if calls != 1 {
		t.Fatalf("loader ran %d times, want 1", calls)
	}
	if string(bodies[0]) != "shared" || string(bodies[1]) != "shared" {
		t.Fatalf("bodies = %q/%q, want shared/shared", bodies[0], bodies[1])
	}
	if outcomes[0] != CacheMiss {
		t.Errorf("leader outcome = %q, want miss", outcomes[0])
	}
	if outcomes[1] != CacheShared && outcomes[1] != CacheHit {
		t.Errorf("follower outcome = %q, want shared or hit", outcomes[1])
	}
}

func TestCacheFollowerHonorsContext(t *testing.T) {
	c := NewCache(4, nil)
	started := make(chan struct{})
	release := make(chan struct{})
	defer close(release)

	go func() {
		_, _, _ = c.Do(context.Background(), "k", func() ([]byte, error) {
			close(started)
			<-release
			return []byte("late"), nil
		})
	}()
	<-started

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, _, err := c.Do(ctx, "k", func() ([]byte, error) { return nil, nil })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled follower err = %v, want context.Canceled", err)
	}
}

func TestCacheConcurrentDistinctKeys(t *testing.T) {
	c := NewCache(128, nil)
	ctx := context.Background()
	var wg sync.WaitGroup
	for i := 0; i < 64; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			key := fmt.Sprintf("k%d", i)
			body, _, err := c.Do(ctx, key, func() ([]byte, error) { return []byte(key), nil })
			if err != nil || string(body) != key {
				t.Errorf("Do(%s) = %q,%v", key, body, err)
			}
		}(i)
	}
	wg.Wait()
	if c.Len() != 64 {
		t.Fatalf("Len = %d, want 64", c.Len())
	}
}
