package serve

// ShardStat is one backend shard's frontend-side view: request and
// error volume, hedge activity, the remote cache outcome split, current
// in-flight calls, and the recent latency p95 driving the hedge timer.
// Runners that route across a fleet (internal/cluster) report one per
// backend; /v1/statsz embeds the list and /metricsz renders it as
// labeled per-shard series.
type ShardStat struct {
	Shard        string  `json:"shard"`
	Healthy      bool    `json:"healthy"`
	Requests     uint64  `json:"requests"`
	Errors       uint64  `json:"errors"`
	Hedges       uint64  `json:"hedges"`
	HedgeWins    uint64  `json:"hedge_wins"`
	RemoteHits   uint64  `json:"remote_hits"`
	RemoteMisses uint64  `json:"remote_misses"`
	InFlight     int     `json:"in_flight"`
	P95MS        float64 `json:"p95_ms"`
}

// ShardStatser is the optional Runner extension for sharded routing:
// when the configured Runner implements it, the server exports the
// per-shard view alongside its own stats.
type ShardStatser interface {
	ShardStats() []ShardStat
}
