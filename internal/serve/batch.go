package serve

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"

	"smartndr/internal/obs"
	"smartndr/internal/par"
)

// maxBatchItems bounds one batch's item count. At 256 items × 64-arm
// sweeps' worth of flow work the envelope already amortizes round
// trips thoroughly; beyond it, paginate.
const maxBatchItems = 256

// BatchRequest is the wire form of POST /v1/batch: many flow requests,
// one round trip, index-ordered results. Heavy clients (benchmark
// sweeps across corners, Pareto explorations) use it to amortize
// connection and scheduling overhead; each item still flows through
// the content-addressed cache individually, so a batch mixing warm and
// cold work pays only for the cold part.
type BatchRequest struct {
	Requests []FlowRequest `json:"requests"`
	// Workers bounds item fan-out; 0 runs all items concurrently
	// (admission still bounds actual engine concurrency). Results are
	// identical at any value.
	Workers int `json:"workers,omitempty"`
	// TimeoutMS caps the whole batch's deadline. Per-item timeout_ms is
	// rejected — items share the batch deadline.
	TimeoutMS int `json:"timeout_ms,omitempty"`
}

// BatchItemResult is one item's outcome, at the same index as its
// request. Status is the HTTP status the item would have received as a
// standalone /v1/flow call; Flow carries the exact bytes a standalone
// call would have returned (so batch responses are byte-stable too).
type BatchItemResult struct {
	Status int             `json:"status"`
	Flow   json.RawMessage `json:"flow,omitempty"`
	Error  string          `json:"error,omitempty"`
}

// BatchResponse is the /v1/batch result body. The envelope itself is
// not cached — items are, individually — but it is a pure function of
// the item results, so identical batches on idle servers render
// identical bytes.
type BatchResponse struct {
	Key     string            `json:"key"`
	Results []BatchItemResult `json:"results"`
}

// DecodeBatchRequest parses and validates a /v1/batch body.
func DecodeBatchRequest(data []byte) (*BatchRequest, error) {
	var req BatchRequest
	if err := decodeStrict(data, &req); err != nil {
		return nil, err
	}
	if err := req.Validate(); err != nil {
		return nil, err
	}
	// As in DecodeFlowRequest: an explicit empty edit list is no edits.
	for i := range req.Requests {
		if len(req.Requests[i].Edits) == 0 {
			req.Requests[i].Edits = nil
		}
	}
	return &req, nil
}

// Validate checks the batch envelope and every item.
func (r *BatchRequest) Validate() error {
	if len(r.Requests) == 0 {
		return fmt.Errorf("serve: batch with no requests")
	}
	if len(r.Requests) > maxBatchItems {
		return fmt.Errorf("serve: %d requests exceeds the %d-item batch limit", len(r.Requests), maxBatchItems)
	}
	if r.Workers < 0 {
		return fmt.Errorf("serve: negative workers %d", r.Workers)
	}
	if r.TimeoutMS < 0 {
		return fmt.Errorf("serve: negative timeout_ms %d", r.TimeoutMS)
	}
	for i := range r.Requests {
		it := &r.Requests[i]
		if it.TimeoutMS != 0 {
			return fmt.Errorf("serve: batch item %d: per-item timeout_ms is not allowed; set the batch timeout_ms", i)
		}
		if err := it.Validate(); err != nil {
			return fmt.Errorf("serve: batch item %d: %w", i, err)
		}
	}
	return nil
}

// batchKeyVersion is folded into every batch key.
const batchKeyVersion = "smartndr/batch/v1"

// batchKey derives the envelope key from the item keys, in order. Two
// batches over the same items in the same order share a key; it names
// the batch in spans and the X-Key header but is not a cache address.
func batchKey(keys []string) string {
	h := sha256.New()
	io.WriteString(h, batchKeyVersion)
	for _, k := range keys {
		io.WriteString(h, "|")
		io.WriteString(h, k)
	}
	return hex.EncodeToString(h.Sum(nil))
}

// handleBatch serves POST /v1/batch. The envelope succeeds (200) once
// it decodes and every key resolves; individual items carry their own
// status, so one failing item does not poison its siblings. Each item
// runs exactly the standalone /v1/flow path — same cache, same
// admission gate per cold item, same runner — which is what makes item
// bytes identical to standalone responses.
func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	t0 := s.now()
	var (
		reqID   int64
		status  int
		key     string
		outcome string
		col     *obs.Collector
	)
	defer func() {
		d := s.now().Sub(t0)
		class := latencyClass(status, outcome)
		if h := s.lat[epBatch][class]; h != nil {
			h.Observe(d.Seconds())
		}
		if s.tracez != nil {
			var evs []obs.SpanEvent
			if col != nil {
				evs = col.Events()
			}
			s.tracez.Add(TraceRecord{
				Req: reqID, Endpoint: epBatch, Key: key, Outcome: class,
				Cache: outcome, Status: status, DurNS: d.Nanoseconds(),
				Spans: buildSpanTree(evs),
			})
		}
	}()

	if r.Method != http.MethodPost {
		status = http.StatusMethodNotAllowed
		s.writeError(w, nil, status, fmt.Errorf("serve: %s needs POST", r.URL.Path))
		return
	}
	if !s.admit() {
		status = http.StatusServiceUnavailable
		s.refuse(w, nil, status, "draining")
		return
	}
	defer s.depart()
	s.reg.Add("serve.requests", 1)

	reqID = s.reqID.Add(1)
	rtr := s.tr.Scoped()
	if s.tracez != nil && s.tr.Enabled() {
		col = obs.NewCollector()
		rtr = s.tr.ScopedTee(col)
	}

	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.maxBody))
	if err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			status = http.StatusRequestEntityTooLarge
			s.writeError(w, nil, status,
				fmt.Errorf("serve: request body exceeds %d bytes", tooLarge.Limit))
			return
		}
		status = http.StatusBadRequest
		s.writeError(w, nil, status, fmt.Errorf("serve: reading body: %w", err))
		return
	}
	req, err := DecodeBatchRequest(body)
	if err != nil {
		status = http.StatusBadRequest
		s.writeError(w, nil, status, err)
		return
	}
	n := len(req.Requests)
	sp := rtr.Start("serve.batch", obs.I("req", int(reqID)), obs.I("items", n))
	defer sp.End()

	keys := make([]string, n)
	for i := range req.Requests {
		keys[i], err = s.runner.FlowKey(&req.Requests[i])
		if err != nil {
			status = http.StatusBadRequest
			s.writeError(w, sp, status, fmt.Errorf("serve: batch item %d: %w", i, err))
			return
		}
	}
	key = batchKey(keys)
	sp.Set("key", key)

	ctx, cancel := context.WithTimeout(r.Context(), s.resolveTimeout(req.TimeoutMS))
	defer cancel()

	workers := req.Workers
	if workers <= 0 || workers > n {
		workers = n
	}
	results := make([]BatchItemResult, n)
	outcomes := make([]string, n)
	// fn never returns an error: item failures land in the item's
	// result so siblings keep running.
	_ = par.ForEach(ctx, workers, n, func(i int) error {
		item := &req.Requests[i]
		bytesOut, oc, err := s.cache.Do(ctx, keys[i], func() ([]byte, error) {
			release, err := s.gate.Acquire(ctx)
			if err != nil {
				return nil, err
			}
			defer release()
			out, err := s.runner.RunFlow(ctx, item, rtr)
			if err != nil {
				return nil, err
			}
			return json.Marshal(out)
		})
		outcomes[i] = oc
		if err != nil {
			results[i] = BatchItemResult{Status: s.batchItemStatus(err), Error: err.Error()}
			return nil
		}
		results[i] = BatchItemResult{Status: http.StatusOK, Flow: bytesOut}
		return nil
	})

	outcome = CacheMiss
	allHit := true
	for i := range results {
		if results[i].Status != http.StatusOK ||
			(outcomes[i] != CacheHit && outcomes[i] != CacheShared) {
			allHit = false
			break
		}
	}
	if allHit {
		outcome = CacheHit
	}
	status = http.StatusOK
	sp.Set("cache", outcome)
	sp.Set("status", status)
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("X-Cache", outcome)
	w.Header().Set("X-Key", key)
	w.WriteHeader(http.StatusOK)
	_ = json.NewEncoder(w).Encode(BatchResponse{Key: key, Results: results})
}

// batchItemStatus maps an item failure onto the status a standalone
// /v1/flow call would have returned, tallying the same counters.
func (s *Server) batchItemStatus(err error) int {
	switch {
	case errors.Is(err, par.ErrSaturated):
		s.reg.Add("serve.saturated", 1)
		return http.StatusTooManyRequests
	case errors.Is(err, context.DeadlineExceeded):
		s.reg.Add("serve.timeouts", 1)
		return http.StatusGatewayTimeout
	case errors.Is(err, context.Canceled):
		s.reg.Add("serve.errors", 1)
		return http.StatusServiceUnavailable
	default:
		s.reg.Add("serve.errors", 1)
		return http.StatusInternalServerError
	}
}
