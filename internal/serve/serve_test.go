package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"sync"
	"testing"
	"time"

	"smartndr/internal/obs"
)

// stubRunner is a Runner whose executions can be held open on demand,
// so lifecycle tests drive saturation and drain with channels instead
// of sleeps. Keys are the bench name — requests to different benches
// never share a cache entry or a flight.
type stubRunner struct {
	mu      sync.Mutex
	runs    int
	started chan string              // receives the key as each run begins
	blocked map[string]chan struct{} // key → release channel (nil entry = run immediately)
	waitCtx bool                     // block on ctx instead of a channel
}

func newStubRunner() *stubRunner {
	return &stubRunner{
		started: make(chan string, 16),
		blocked: make(map[string]chan struct{}),
	}
}

// hold makes subsequent runs for key block until the returned release
// function is called.
func (sr *stubRunner) hold(key string) (release func()) {
	ch := make(chan struct{})
	sr.mu.Lock()
	sr.blocked[key] = ch
	sr.mu.Unlock()
	var once sync.Once
	return func() { once.Do(func() { close(ch) }) }
}

func (sr *stubRunner) Runs() int {
	sr.mu.Lock()
	defer sr.mu.Unlock()
	return sr.runs
}

func (sr *stubRunner) FlowKey(req *FlowRequest) (string, error) { return req.Bench, nil }

func (sr *stubRunner) RunFlow(ctx context.Context, req *FlowRequest, tr *obs.Tracer) (*FlowResponse, error) {
	sr.mu.Lock()
	sr.runs++
	gate := sr.blocked[req.Bench]
	waitCtx := sr.waitCtx
	sr.mu.Unlock()
	sr.started <- req.Bench
	sp := tr.Start("stub.run")
	defer sp.End()
	if waitCtx {
		<-ctx.Done()
		return nil, ctx.Err()
	}
	if gate != nil {
		select {
		case <-gate:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	return &FlowResponse{Key: req.Bench, Bench: req.Bench, Scheme: "stub"}, nil
}

func (sr *stubRunner) SweepKey(req *SweepRequest) (string, error) { return "sweep:" + req.Bench, nil }

func (sr *stubRunner) RunSweep(ctx context.Context, req *SweepRequest, tr *obs.Tracer) (*SweepResponse, error) {
	sr.mu.Lock()
	sr.runs++
	sr.mu.Unlock()
	return &SweepResponse{Key: "sweep:" + req.Bench, Bench: req.Bench}, nil
}

func postFlow(t *testing.T, ts *httptest.Server, body string) *http.Response {
	t.Helper()
	resp, err := http.Post(ts.URL+"/v1/flow", "application/json", bytes.NewReader([]byte(body)))
	if err != nil {
		t.Fatalf("POST /v1/flow: %v", err)
	}
	return resp
}

func readBody(t *testing.T, resp *http.Response) []byte {
	t.Helper()
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestServeFlowCacheRoundTrip(t *testing.T) {
	sr := newStubRunner()
	s := New(Config{Runner: sr})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	cold := postFlow(t, ts, `{"bench":"cns01"}`)
	coldBody := readBody(t, cold)
	if cold.StatusCode != http.StatusOK {
		t.Fatalf("cold status %d: %s", cold.StatusCode, coldBody)
	}
	if got := cold.Header.Get("X-Cache"); got != CacheMiss {
		t.Errorf("cold X-Cache = %q, want miss", got)
	}
	if cold.Header.Get("X-Key") != "cns01" {
		t.Errorf("X-Key = %q", cold.Header.Get("X-Key"))
	}

	warm := postFlow(t, ts, `{"bench":"cns01"}`)
	warmBody := readBody(t, warm)
	if warm.StatusCode != http.StatusOK {
		t.Fatalf("warm status %d", warm.StatusCode)
	}
	if got := warm.Header.Get("X-Cache"); got != CacheHit {
		t.Errorf("warm X-Cache = %q, want hit", got)
	}
	if !bytes.Equal(coldBody, warmBody) {
		t.Errorf("warm body differs from cold:\n%s\n%s", coldBody, warmBody)
	}
	if sr.Runs() != 1 {
		t.Errorf("runner ran %d times, want 1", sr.Runs())
	}
	<-sr.started
}

func TestServeSweepEndpoint(t *testing.T) {
	sr := newStubRunner()
	s := New(Config{Runner: sr})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, err := http.Post(ts.URL+"/v1/sweep", "application/json",
		bytes.NewReader([]byte(`{"bench":"cns02","arms":[{"scheme":"smart"},{"scheme":"blanket","corner":"slow"}]}`)))
	if err != nil {
		t.Fatal(err)
	}
	body := readBody(t, resp)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var out SweepResponse
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if out.Key != "sweep:cns02" {
		t.Errorf("key = %q", out.Key)
	}
}

func TestServeSaturationRefusesWith429(t *testing.T) {
	sr := newStubRunner()
	s := New(Config{Runner: sr, MaxConcurrent: 1, QueueDepth: 1, RetryAfter: 2 * time.Second})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	releaseA := sr.hold("cns01")
	defer releaseA()
	releaseB := sr.hold("cns02")
	defer releaseB()

	var wg sync.WaitGroup
	statuses := make(map[string]int)
	var mu sync.Mutex
	fire := func(bench string) {
		defer wg.Done()
		resp := postFlow(t, ts, `{"bench":"`+bench+`"}`)
		readBody(t, resp)
		mu.Lock()
		statuses[bench] = resp.StatusCode
		mu.Unlock()
	}

	// A takes the only slot and blocks inside the runner.
	wg.Add(1)
	go fire("cns01")
	<-sr.started

	// B queues for the slot (never reaches the runner yet). Wait until
	// the gate reports it in line — channel-free but sleep-free.
	wg.Add(1)
	go fire("cns02")
	for s.gate.Waiting() != 1 {
		runtime.Gosched()
	}

	// C finds slot taken and the wait line full: refused immediately.
	resp := postFlow(t, ts, `{"bench":"cns03"}`)
	body := readBody(t, resp)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("saturated status = %d (%s), want 429", resp.StatusCode, body)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "2" {
		t.Errorf("Retry-After = %q, want 2", ra)
	}
	if got := s.reg.Counter("serve.saturated"); got != 1 {
		t.Errorf("serve.saturated = %v, want 1", got)
	}

	releaseA()
	releaseB()
	wg.Wait()
	if statuses["cns01"] != http.StatusOK || statuses["cns02"] != http.StatusOK {
		t.Errorf("queued requests finished %v, want 200s", statuses)
	}
}

func TestServeCacheHitBypassesAdmission(t *testing.T) {
	sr := newStubRunner()
	s := New(Config{Runner: sr, MaxConcurrent: 1, QueueDepth: 1})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// Prime the cache while the server is idle.
	readBody(t, postFlow(t, ts, `{"bench":"cns01"}`))
	<-sr.started

	// Occupy the only slot.
	release := sr.hold("cns02")
	defer release()
	go func() {
		resp, err := http.Post(ts.URL+"/v1/flow", "application/json",
			bytes.NewReader([]byte(`{"bench":"cns02"}`)))
		if err == nil {
			resp.Body.Close()
		}
	}()
	<-sr.started

	// The cached key must still be served instantly.
	resp := postFlow(t, ts, `{"bench":"cns01"}`)
	readBody(t, resp)
	if resp.StatusCode != http.StatusOK || resp.Header.Get("X-Cache") != CacheHit {
		t.Fatalf("cached request during saturation: status %d, X-Cache %q",
			resp.StatusCode, resp.Header.Get("X-Cache"))
	}
	release()
}

func TestServeDrainLifecycle(t *testing.T) {
	sr := newStubRunner()
	s := New(Config{Runner: sr, RetryAfter: 3 * time.Second})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	release := sr.hold("cns01")
	defer release()

	// One request in flight, held open inside the runner.
	inflightDone := make(chan int, 1)
	go func() {
		resp, err := http.Post(ts.URL+"/v1/flow", "application/json",
			bytes.NewReader([]byte(`{"bench":"cns01"}`)))
		if err != nil {
			inflightDone <- -1
			return
		}
		io.ReadAll(resp.Body)
		resp.Body.Close()
		inflightDone <- resp.StatusCode
	}()
	<-sr.started

	// Begin draining; it must block on the in-flight request.
	drainErr := make(chan error, 1)
	go func() { drainErr <- s.Drain(context.Background()) }()
	for !s.Draining() {
		runtime.Gosched()
	}

	// New work is refused with 503 + Retry-After while draining.
	resp := postFlow(t, ts, `{"bench":"cns02"}`)
	readBody(t, resp)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("during drain: status %d, want 503", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "3" {
		t.Errorf("Retry-After = %q, want 3", ra)
	}

	// Health flips to 503 so load balancers stop routing here.
	hresp, err := http.Get(ts.URL + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	readBody(t, hresp)
	if hresp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("healthz during drain = %d, want 503", hresp.StatusCode)
	}

	select {
	case err := <-drainErr:
		t.Fatalf("drain returned %v with a request still in flight", err)
	default:
	}

	// The in-flight request completes normally and drain then returns.
	release()
	if status := <-inflightDone; status != http.StatusOK {
		t.Fatalf("in-flight request finished with %d, want 200", status)
	}
	if err := <-drainErr; err != nil {
		t.Fatalf("drain: %v", err)
	}

	// Post-drain the server stays closed.
	resp = postFlow(t, ts, `{"bench":"cns03"}`)
	readBody(t, resp)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("post-drain status = %d, want 503", resp.StatusCode)
	}
	if sr.Runs() != 1 {
		t.Errorf("runner ran %d times, want 1 (refused requests must not run)", sr.Runs())
	}
}

func TestServeDrainInterruptedByContext(t *testing.T) {
	sr := newStubRunner()
	s := New(Config{Runner: sr})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	release := sr.hold("cns01")
	go func() {
		resp, err := http.Post(ts.URL+"/v1/flow", "application/json",
			bytes.NewReader([]byte(`{"bench":"cns01"}`)))
		if err == nil {
			io.ReadAll(resp.Body)
			resp.Body.Close()
		}
	}()
	<-sr.started

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := s.Drain(ctx); err == nil {
		t.Fatal("drain with cancelled ctx and in-flight work returned nil")
	}
	release()
	// A second drain completes once the request finishes.
	if err := s.Drain(context.Background()); err != nil {
		t.Fatalf("second drain: %v", err)
	}
}

func TestServeRequestTimeoutMaps504(t *testing.T) {
	sr := newStubRunner()
	sr.waitCtx = true
	s := New(Config{Runner: sr})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp := postFlow(t, ts, `{"bench":"cns01","timeout_ms":1}`)
	body := readBody(t, resp)
	<-sr.started
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status = %d (%s), want 504", resp.StatusCode, body)
	}
	if got := s.reg.Counter("serve.timeouts"); got != 1 {
		t.Errorf("serve.timeouts = %v, want 1", got)
	}
}

func TestServeRejectsBadRequests(t *testing.T) {
	s := New(Config{Runner: newStubRunner()})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/v1/flow")
	if err != nil {
		t.Fatal(err)
	}
	readBody(t, resp)
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /v1/flow = %d, want 405", resp.StatusCode)
	}

	resp = postFlow(t, ts, `{"bench":`)
	var e errorResponse
	if err := json.Unmarshal(readBody(t, resp), &e); err != nil || e.Error == "" {
		t.Errorf("malformed body response not an errorResponse: %v", err)
	}
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad body = %d, want 400", resp.StatusCode)
	}
}

func TestServeStatszShape(t *testing.T) {
	sr := newStubRunner()
	base := time.Unix(1000, 0)
	clock := base
	var clockMu sync.Mutex
	s := New(Config{Runner: sr, Now: func() time.Time {
		clockMu.Lock()
		defer clockMu.Unlock()
		return clock
	}})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	readBody(t, postFlow(t, ts, `{"bench":"cns01"}`))
	<-sr.started
	clockMu.Lock()
	clock = base.Add(1500 * time.Millisecond)
	clockMu.Unlock()

	resp, err := http.Get(ts.URL + "/v1/statsz")
	if err != nil {
		t.Fatal(err)
	}
	var st Statsz
	if err := json.Unmarshal(readBody(t, resp), &st); err != nil {
		t.Fatal(err)
	}
	if st.UptimeMS != 1500 {
		t.Errorf("uptime_ms = %d, want 1500", st.UptimeMS)
	}
	if st.CacheLen != 1 || st.CacheCap != 256 {
		t.Errorf("cache len/cap = %d/%d, want 1/256", st.CacheLen, st.CacheCap)
	}
	if st.Counters["serve.requests"] != 1 || st.Counters["serve.cache_misses"] != 1 {
		t.Errorf("counters = %v", st.Counters)
	}
	if st.Draining || st.InFlight != 0 {
		t.Errorf("draining/inflight = %v/%d", st.Draining, st.InFlight)
	}
}

func TestServeRequestSpansCarryCacheOutcome(t *testing.T) {
	col := obs.NewCollector()
	tr := obs.New(col)
	sr := newStubRunner()
	s := New(Config{Runner: sr, Tracer: tr})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	readBody(t, postFlow(t, ts, `{"bench":"cns01"}`)) // miss
	readBody(t, postFlow(t, ts, `{"bench":"cns01"}`)) // hit
	<-sr.started

	// Request spans end after the response is written; wait for both to
	// land in the collector (the test harness timeout bounds this).
	var flowSpans []obs.SpanEvent
	var sawStubChild bool
	for len(flowSpans) < 2 {
		flowSpans = flowSpans[:0]
		sawStubChild = false
		for _, ev := range col.Events() {
			if ev.Span == "serve.flow" {
				flowSpans = append(flowSpans, ev)
			}
			if ev.Span == "serve.flow/stub.run" {
				sawStubChild = true
			}
		}
		runtime.Gosched()
	}
	outcomes := map[any]bool{}
	for _, ev := range flowSpans {
		outcomes[ev.Attrs["cache"]] = true
		if ev.Attrs["key"] != "cns01" {
			t.Errorf("span key = %v", ev.Attrs["key"])
		}
		if ev.Attrs["status"] != 200 && ev.Attrs["status"] != float64(200) {
			t.Errorf("span status = %v", ev.Attrs["status"])
		}
	}
	if !outcomes[CacheMiss] || !outcomes[CacheHit] {
		t.Errorf("span cache outcomes = %v, want miss and hit", outcomes)
	}
	if !sawStubChild {
		t.Error("engine span did not nest under the request span")
	}
}
