package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"smartndr/internal/obs"
)

func TestCacheStripesAboveThreshold(t *testing.T) {
	reg := &obs.Registry{}
	small := NewCache(shardThreshold-1, reg)
	if got := small.Shards(); got != 1 {
		t.Errorf("cap %d uses %d stripes, want 1 (exact global LRU below the threshold)", shardThreshold-1, got)
	}
	big := NewCache(shardThreshold, reg)
	if got := big.Shards(); got != cacheShardCount {
		t.Errorf("cap %d uses %d stripes, want %d", shardThreshold, got, cacheShardCount)
	}
}

func TestCacheShardStatsAccount(t *testing.T) {
	reg := &obs.Registry{}
	c := NewCache(256, reg)
	ctx := context.Background()
	load := func(v string) func() ([]byte, error) {
		return func() ([]byte, error) { return []byte(v), nil }
	}
	const keys = 40
	for i := 0; i < keys; i++ {
		k := fmt.Sprintf("key-%d", i)
		if _, oc, err := c.Do(ctx, k, load(k)); err != nil || oc != CacheMiss {
			t.Fatalf("cold Do(%s) = %q, %v", k, oc, err)
		}
		if _, oc, err := c.Do(ctx, k, load(k)); err != nil || oc != CacheHit {
			t.Fatalf("warm Do(%s) = %q, %v", k, oc, err)
		}
	}
	stats := c.ShardStats()
	if len(stats) != cacheShardCount {
		t.Fatalf("ShardStats len = %d, want %d", len(stats), cacheShardCount)
	}
	var lenSum int
	var hits, misses uint64
	striped := 0
	for i, st := range stats {
		if st.Shard != i {
			t.Errorf("stats[%d].Shard = %d", i, st.Shard)
		}
		lenSum += st.Len
		hits += st.Hits
		misses += st.Misses
		if st.Len > 0 {
			striped++
		}
	}
	if lenSum != c.Len() || lenSum != keys {
		t.Errorf("stripe lens sum to %d, want Len() = %d = %d", lenSum, c.Len(), keys)
	}
	if hits != keys || misses != keys {
		t.Errorf("per-stripe tallies hits=%d misses=%d, want %d each", hits, misses, keys)
	}
	if striped < 2 {
		t.Errorf("all %d keys landed in one stripe; the hash is not spreading", keys)
	}
	if b := c.Balance(); b < 1.0 {
		t.Errorf("Balance() = %v, want >= 1 when occupied (max/mean)", b)
	}
}

func TestCacheBalanceEmpty(t *testing.T) {
	c := NewCache(256, &obs.Registry{})
	if b := c.Balance(); b != 0 {
		t.Errorf("empty cache Balance() = %v, want 0", b)
	}
}

// shardStatsRunner makes a stub runner double as a serve.ShardStatser,
// standing in for the cluster runner without an import cycle.
type shardStatsRunner struct {
	*stubRunner
	stats []ShardStat
}

func (r *shardStatsRunner) ShardStats() []ShardStat { return r.stats }

func TestStatszAndMetricszExposeShards(t *testing.T) {
	runner := &shardStatsRunner{stubRunner: newStubRunner(), stats: []ShardStat{
		{Shard: "w0", Healthy: true, Requests: 12, Hedges: 3, HedgeWins: 2, RemoteHits: 5, RemoteMisses: 7, P95MS: 41.5},
		{Shard: "w1", Healthy: false, Requests: 4, Errors: 4},
	}}
	ts := httptest.NewServer(New(Config{Runner: runner, CacheEntries: 256}).Handler())
	defer ts.Close()

	// Prime the cache stripes so per-shard cache series are non-trivial.
	resp := postFlow(t, ts, `{"bench":"cns01"}`)
	readBody(t, resp)
	resp = postFlow(t, ts, `{"bench":"cns01"}`)
	readBody(t, resp)

	// /v1/statsz carries both shard views.
	stResp, err := http.Get(ts.URL + "/v1/statsz")
	if err != nil {
		t.Fatal(err)
	}
	stBody := readBody(t, stResp)
	var st struct {
		CacheShards  []CacheShardStat `json:"cache_shards"`
		CacheBalance float64          `json:"cache_balance"`
		Shards       []ShardStat      `json:"shards"`
	}
	if err := json.Unmarshal(stBody, &st); err != nil {
		t.Fatalf("statsz not JSON: %v", err)
	}
	if len(st.CacheShards) != cacheShardCount {
		t.Errorf("statsz cache_shards len = %d, want %d", len(st.CacheShards), cacheShardCount)
	}
	var hits uint64
	for _, cs := range st.CacheShards {
		hits += cs.Hits
	}
	if hits != 1 {
		t.Errorf("statsz cache_shards hits = %d, want 1", hits)
	}
	if st.CacheBalance <= 0 {
		t.Errorf("statsz cache_balance = %v, want > 0 with a resident entry", st.CacheBalance)
	}
	if len(st.Shards) != 2 || st.Shards[0].Shard != "w0" || st.Shards[1].Healthy {
		t.Errorf("statsz shards = %+v, want the runner's two shards verbatim", st.Shards)
	}
	if st.Shards[0].P95MS != 41.5 || st.Shards[0].HedgeWins != 2 {
		t.Errorf("statsz shard w0 = %+v", st.Shards[0])
	}

	// /metricsz renders the same views as labeled series.
	mResp, err := http.Get(ts.URL + "/metricsz")
	if err != nil {
		t.Fatal(err)
	}
	defer mResp.Body.Close()
	expoBytes, err := io.ReadAll(mResp.Body)
	if err != nil {
		t.Fatal(err)
	}
	expo := string(expoBytes)
	for _, want := range []string{
		`smartndr_serve_cache_shard_hits_total{shard="`,
		`smartndr_serve_cache_shard_len{shard="`,
		"smartndr_serve_cache_shard_balance ",
		`smartndr_cluster_shard_requests_total{shard="w0"} 12`,
		`smartndr_cluster_shard_hedge_wins_total{shard="w0"} 2`,
		`smartndr_cluster_shard_healthy{shard="w0"} 1`,
		`smartndr_cluster_shard_healthy{shard="w1"} 0`,
		`smartndr_cluster_shard_p95_seconds{shard="w0"} 0.0415`,
	} {
		if !strings.Contains(expo, want) {
			t.Errorf("metricsz missing %q", want)
		}
	}
	// Labeled families keep series sorted for deterministic scrapes.
	if i0, i1 := strings.Index(expo, `shard_requests_total{shard="w0"}`),
		strings.Index(expo, `shard_requests_total{shard="w1"}`); i0 == -1 || i1 == -1 || i0 > i1 {
		t.Errorf("labeled series out of order or missing: w0@%d w1@%d", i0, i1)
	}
}

func TestStatszOmitsShardsForPlainRunner(t *testing.T) {
	ts := httptest.NewServer(New(Config{Runner: newStubRunner()}).Handler())
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/v1/statsz")
	if err != nil {
		t.Fatal(err)
	}
	body := readBody(t, resp)
	var raw map[string]json.RawMessage
	if err := json.Unmarshal(body, &raw); err != nil {
		t.Fatal(err)
	}
	if _, ok := raw["shards"]; ok {
		t.Errorf("statsz exposes shards for a non-cluster runner: %s", raw["shards"])
	}
}
