package serve

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"smartndr"
	"smartndr/internal/core"
	"smartndr/internal/testutil"
)

// sessionDelta serializes one delta body for the session endpoints.
func sessionDelta(tb testing.TB, edits []smartndr.Edit) []byte {
	tb.Helper()
	body, err := json.Marshal(&SessionDeltaRequest{Edits: edits})
	if err != nil {
		tb.Fatal(err)
	}
	return body
}

// TestServeSessionDeltaLatencyFloor is the session acceptance check: on
// the 300-sink case, a warm session delta — dirty-region re-evaluation
// of a live tree — must come in under 5% of a cold /v1/flow of the same
// edited state, which pays synthesis + optimization + full evaluation.
func TestServeSessionDeltaLatencyFloor(t *testing.T) {
	if testing.Short() {
		t.Skip("300-sink synthesis is not a -short test")
	}
	ts := httptest.NewServer(New(Config{CacheEntries: 1}).Handler())
	defer ts.Close()
	spec := testutil.UniformSpec("lat300", 300, 3000, 42)

	createBody, err := json.Marshal(&SessionCreateRequest{
		FlowRequest: FlowRequest{Spec: &spec, Scheme: "smart-ndr"},
	})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/v1/session", "application/json", bytes.NewReader(createBody))
	if err != nil {
		t.Fatal(err)
	}
	body := readBody(t, resp)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("create status %d: %s", resp.StatusCode, body)
	}
	sess := decodeSessionResponse(t, body)

	edit := []smartndr.Edit{{Op: core.OpMoveSink, Sink: 5, X: 1200, Y: 900}}

	// Cold baseline: full flow of the edited spec, timed through the
	// same HTTP stack (cache sized to 1 so nothing is reused).
	coldReq, err := json.Marshal(&FlowRequest{Spec: &spec, Scheme: "smart-ndr", Edits: edit})
	if err != nil {
		t.Fatal(err)
	}
	begin := time.Now()
	resp, err = http.Post(ts.URL+"/v1/flow", "application/json", bytes.NewReader(coldReq))
	if err != nil {
		t.Fatal(err)
	}
	cold := time.Since(begin)
	coldBody := readBody(t, resp)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cold flow status %d: %s", resp.StatusCode, coldBody)
	}

	// Warm probes: the same edit applied repeatedly is idempotent on the
	// canonical state, so every probe re-evaluates the same delta. Best
	// of three, so one scheduling hiccup cannot fail the run.
	deltaBody := sessionDelta(t, edit)
	warm := time.Duration(1<<62 - 1)
	var warmResult []byte
	for i := 0; i < 3; i++ {
		begin := time.Now()
		resp, err := http.Post(ts.URL+"/v1/session/"+sess.Session+"/delta",
			"application/json", bytes.NewReader(deltaBody))
		if err != nil {
			t.Fatal(err)
		}
		d := time.Since(begin)
		out := readBody(t, resp)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("delta %d status %d: %s", i, resp.StatusCode, out)
		}
		if d < warm {
			warm = d
		}
		warmResult = decodeSessionResponse(t, out).Result
	}

	// The speed claim is only meaningful because the answers agree.
	if !bytes.Equal(warmResult, coldBody) {
		t.Fatalf("warm delta result differs from cold flow:\n%s\n%s", warmResult, coldBody)
	}
	if warm >= cold/20 {
		t.Errorf("warm session delta %v is not under 5%% of cold flow %v", warm, cold)
	}
}

// BenchmarkServeSessionCreate measures the cold half of the session
// story: full synthesis + optimization behind POST /v1/session on the
// 300-sink case. Its ratio to BenchmarkServeSessionDeltaWarm is the
// speedup a session buys per edit.
func BenchmarkServeSessionCreate(b *testing.B) {
	ts := httptest.NewServer(New(Config{MaxSessions: 4}).Handler())
	defer ts.Close()
	spec := testutil.UniformSpec("lat300", 300, 3000, 42)
	body, err := json.Marshal(&SessionCreateRequest{
		FlowRequest: FlowRequest{Spec: &spec, Scheme: "smart-ndr"},
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		resp, err := http.Post(ts.URL+"/v1/session", "application/json", bytes.NewReader(body))
		if err != nil {
			b.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			b.Fatalf("status %d", resp.StatusCode)
		}
	}
}

// BenchmarkServeSessionDeltaWarm measures one warm edit-and-re-evaluate
// round trip against a live 300-sink session. The two alternating edits
// guarantee every delta changes the canonical state, so the engine does
// real dirty-region work each iteration.
func BenchmarkServeSessionDeltaWarm(b *testing.B) {
	ts := httptest.NewServer(New(Config{}).Handler())
	defer ts.Close()
	spec := testutil.UniformSpec("lat300", 300, 3000, 42)
	createBody, err := json.Marshal(&SessionCreateRequest{
		FlowRequest: FlowRequest{Spec: &spec, Scheme: "smart-ndr"},
	})
	if err != nil {
		b.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/v1/session", "application/json", bytes.NewReader(createBody))
	if err != nil {
		b.Fatal(err)
	}
	var sess SessionResponse
	if err := json.NewDecoder(resp.Body).Decode(&sess); err != nil {
		b.Fatal(err)
	}
	resp.Body.Close()
	if sess.Session == "" {
		b.Fatal("no session")
	}
	deltas := [2][]byte{
		sessionDelta(b, []smartndr.Edit{{Op: core.OpMoveSink, Sink: 5, X: 1200, Y: 900}}),
		sessionDelta(b, []smartndr.Edit{{Op: core.OpMoveSink, Sink: 5, X: 400, Y: 2100}}),
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		resp, err := http.Post(ts.URL+"/v1/session/"+sess.Session+"/delta",
			"application/json", bytes.NewReader(deltas[i%2]))
		if err != nil {
			b.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			b.Fatalf("status %d", resp.StatusCode)
		}
	}
}
