package serve

import (
	"fmt"
	"net/http"
	"runtime/metrics"

	"smartndr/internal/obs"
)

// runtimeSamples is the fixed set of runtime/metrics series /metricsz
// exposes, mapped into the registry naming convention. Counters are
// monotonic runtime totals; everything else is a gauge.
var runtimeSamples = []struct {
	sample  string
	name    string
	counter bool
}{
	{"/sched/goroutines:goroutines", "go.goroutines", false},
	{"/memory/classes/heap/objects:bytes", "go.heap_objects_bytes", false},
	{"/memory/classes/total:bytes", "go.memory_total_bytes", false},
	{"/gc/cycles/total:gc-cycles", "go.gc_cycles", true},
	{"/gc/heap/allocs:bytes", "go.heap_allocs_bytes", true},
}

// readRuntimeMetrics folds the fixed runtime/metrics set into the
// snapshot. Unknown or non-scalar samples (older runtimes) are skipped
// rather than rendered as garbage.
func readRuntimeMetrics(snap *obs.PromSnapshot) {
	samples := make([]metrics.Sample, len(runtimeSamples))
	for i, rs := range runtimeSamples {
		samples[i].Name = rs.sample
	}
	metrics.Read(samples)
	if snap.Counters == nil {
		snap.Counters = map[string]float64{}
	}
	if snap.Gauges == nil {
		snap.Gauges = map[string]float64{}
	}
	for i, rs := range runtimeSamples {
		var v float64
		switch samples[i].Value.Kind() {
		case metrics.KindUint64:
			v = float64(samples[i].Value.Uint64())
		case metrics.KindFloat64:
			v = samples[i].Value.Float64()
		default:
			continue
		}
		if rs.counter {
			snap.Counters[rs.name] = v
		} else {
			snap.Gauges[rs.name] = v
		}
	}
}

// handleMetricsz serves GET /metricsz: every registry counter, gauge,
// and histogram, the per-span-path latency histograms (when a
// SpanObserver is wired in), and a fixed set of Go runtime stats, all
// in Prometheus text exposition format under the smartndr_ namespace.
// Rendering is deterministic given the recorded data; only the runtime
// gauges vary run to run.
func (s *Server) handleMetricsz(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		s.writeError(w, nil, http.StatusMethodNotAllowed, fmt.Errorf("serve: metricsz needs GET"))
		return
	}
	snap := s.reg.PromSnapshot()
	readRuntimeMetrics(&snap)
	snap.SpanHistograms = s.spanObs.Snapshot()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = obs.WritePromText(w, "smartndr", snap)
}
