package serve

import (
	"fmt"
	"net/http"
	"runtime/metrics"
	"strconv"

	"smartndr/internal/obs"
)

// runtimeSamples is the fixed set of runtime/metrics series /metricsz
// exposes, mapped into the registry naming convention. Counters are
// monotonic runtime totals; everything else is a gauge.
var runtimeSamples = []struct {
	sample  string
	name    string
	counter bool
}{
	{"/sched/goroutines:goroutines", "go.goroutines", false},
	{"/memory/classes/heap/objects:bytes", "go.heap_objects_bytes", false},
	{"/memory/classes/total:bytes", "go.memory_total_bytes", false},
	{"/gc/cycles/total:gc-cycles", "go.gc_cycles", true},
	{"/gc/heap/allocs:bytes", "go.heap_allocs_bytes", true},
}

// readRuntimeMetrics folds the fixed runtime/metrics set into the
// snapshot. Unknown or non-scalar samples (older runtimes) are skipped
// rather than rendered as garbage.
func readRuntimeMetrics(snap *obs.PromSnapshot) {
	samples := make([]metrics.Sample, len(runtimeSamples))
	for i, rs := range runtimeSamples {
		samples[i].Name = rs.sample
	}
	metrics.Read(samples)
	if snap.Counters == nil {
		snap.Counters = map[string]float64{}
	}
	if snap.Gauges == nil {
		snap.Gauges = map[string]float64{}
	}
	for i, rs := range runtimeSamples {
		var v float64
		switch samples[i].Value.Kind() {
		case metrics.KindUint64:
			v = float64(samples[i].Value.Uint64())
		case metrics.KindFloat64:
			v = samples[i].Value.Float64()
		default:
			continue
		}
		if rs.counter {
			snap.Counters[rs.name] = v
		} else {
			snap.Gauges[rs.name] = v
		}
	}
}

// handleMetricsz serves GET /metricsz: every registry counter, gauge,
// and histogram, the per-span-path latency histograms (when a
// SpanObserver is wired in), and a fixed set of Go runtime stats, all
// in Prometheus text exposition format under the smartndr_ namespace.
// Rendering is deterministic given the recorded data; only the runtime
// gauges vary run to run.
func (s *Server) handleMetricsz(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		s.writeError(w, nil, http.StatusMethodNotAllowed, fmt.Errorf("serve: metricsz needs GET"))
		return
	}
	s.reg.Set("serve.cache_shard_balance", s.cache.Balance())
	snap := s.reg.PromSnapshot()
	readRuntimeMetrics(&snap)
	snap.SpanHistograms = s.spanObs.Snapshot()
	s.addShardSeries(&snap)
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = obs.WritePromText(w, "smartndr", snap)
}

// addShardSeries folds the dimensional shard views into the snapshot:
// cache-stripe tallies labeled by stripe index, and — when the runner
// routes across a fleet — per-backend cluster series labeled by shard
// name. Families follow the registry naming convention even though
// they bypass the flat Registry (it cannot express labels).
func (s *Server) addShardSeries(snap *obs.PromSnapshot) {
	counters := map[string][]obs.LabeledSeries{}
	gauges := map[string][]obs.LabeledSeries{}

	for _, cs := range s.cache.ShardStats() {
		l := obs.PromLabel("shard", strconv.Itoa(cs.Shard))
		counters["serve.cache_shard_hits"] = append(counters["serve.cache_shard_hits"],
			obs.LabeledSeries{Labels: l, Value: float64(cs.Hits)})
		counters["serve.cache_shard_misses"] = append(counters["serve.cache_shard_misses"],
			obs.LabeledSeries{Labels: l, Value: float64(cs.Misses)})
		counters["serve.cache_shard_evictions"] = append(counters["serve.cache_shard_evictions"],
			obs.LabeledSeries{Labels: l, Value: float64(cs.Evictions)})
		gauges["serve.cache_shard_len"] = append(gauges["serve.cache_shard_len"],
			obs.LabeledSeries{Labels: l, Value: float64(cs.Len)})
	}
	if ss, ok := s.runner.(ShardStatser); ok {
		for _, st := range ss.ShardStats() {
			l := obs.PromLabel("shard", st.Shard)
			healthy := 0.0
			if st.Healthy {
				healthy = 1.0
			}
			counters["cluster.shard_requests"] = append(counters["cluster.shard_requests"],
				obs.LabeledSeries{Labels: l, Value: float64(st.Requests)})
			counters["cluster.shard_errors"] = append(counters["cluster.shard_errors"],
				obs.LabeledSeries{Labels: l, Value: float64(st.Errors)})
			counters["cluster.shard_hedges"] = append(counters["cluster.shard_hedges"],
				obs.LabeledSeries{Labels: l, Value: float64(st.Hedges)})
			counters["cluster.shard_hedge_wins"] = append(counters["cluster.shard_hedge_wins"],
				obs.LabeledSeries{Labels: l, Value: float64(st.HedgeWins)})
			counters["cluster.shard_remote_hits"] = append(counters["cluster.shard_remote_hits"],
				obs.LabeledSeries{Labels: l, Value: float64(st.RemoteHits)})
			counters["cluster.shard_remote_misses"] = append(counters["cluster.shard_remote_misses"],
				obs.LabeledSeries{Labels: l, Value: float64(st.RemoteMisses)})
			gauges["cluster.shard_healthy"] = append(gauges["cluster.shard_healthy"],
				obs.LabeledSeries{Labels: l, Value: healthy})
			gauges["cluster.shard_inflight"] = append(gauges["cluster.shard_inflight"],
				obs.LabeledSeries{Labels: l, Value: float64(st.InFlight)})
			gauges["cluster.shard_p95_seconds"] = append(gauges["cluster.shard_p95_seconds"],
				obs.LabeledSeries{Labels: l, Value: st.P95MS / 1e3})
		}
	}
	snap.LabeledCounters = counters
	snap.LabeledGauges = gauges
}
