package serve

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// TestServeBodyCap413 exercises the request-body limit: payloads over
// the cap are refused with 413 before any decoding; payloads under it
// proceed (and fail later, on JSON shape, not on size).
func TestServeBodyCap413(t *testing.T) {
	sr := newStubRunner()
	s := New(Config{Runner: sr, MaxBodyBytes: 256})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	big := `{"bench":"cns01","pad":"` + strings.Repeat("x", 512) + `"}`
	resp := postFlow(t, ts, big)
	body := readBody(t, resp)
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversize body: status %d (%s), want 413", resp.StatusCode, body)
	}
	if !strings.Contains(string(body), "256 bytes") {
		t.Errorf("413 body should name the limit: %s", body)
	}

	ok := postFlow(t, ts, `{"bench":"cns01"}`)
	if okBody := readBody(t, ok); ok.StatusCode != http.StatusOK {
		t.Fatalf("small body after oversize: status %d (%s)", ok.StatusCode, okBody)
	}
	if sr.Runs() != 1 {
		t.Errorf("runner ran %d times, want 1 (oversize must not reach it)", sr.Runs())
	}
	<-sr.started
}

// TestServeBodyCapDefault confirms the zero-config cap is 1 MiB: a body
// just under sails through decoding, one over gets 413.
func TestServeBodyCapDefault(t *testing.T) {
	s := New(Config{Runner: newStubRunner()})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	over := strings.Repeat("x", defaultMaxBodyBytes+1)
	resp := postFlow(t, ts, over)
	readBody(t, resp)
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("default cap: status %d, want 413", resp.StatusCode)
	}

	// Under the cap: rejected as malformed JSON (400), not by size.
	under := `{"bench":"cns01","junk":"` + strings.Repeat("x", 1024) + `"}`
	resp = postFlow(t, ts, under)
	readBody(t, resp)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("under-cap junk: status %d, want 400", resp.StatusCode)
	}
}

func TestFlowRequestHierValidation(t *testing.T) {
	base := FlowRequest{Bench: "cns01"}
	good := base
	good.MaxRegionSinks = 2048
	good.SkewSplit = 0.6
	if err := good.Validate(); err != nil {
		t.Fatalf("valid hier request rejected: %v", err)
	}
	for _, mut := range []func(*FlowRequest){
		func(r *FlowRequest) { r.MaxRegionSinks = -1 },
		func(r *FlowRequest) { r.SkewSplit = -0.2 },
		func(r *FlowRequest) { r.SkewSplit = 1.0 },
	} {
		r := base
		mut(&r)
		if err := r.Validate(); err == nil {
			t.Errorf("bad hier request accepted: %+v", r)
		}
	}
}
