package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"testing"

	"smartndr"
	"smartndr/internal/core"
	"smartndr/internal/testutil"
)

// The session-replay differential suite. The session API's correctness
// contract is that statefulness is an optimization, never a semantic: a
// session's Result after any sequence of deltas must be byte-identical
// to a cold /v1/flow of the equivalently edited request, and carry the
// same content address. These tests replay random seeded edit sequences
// through live sessions, prefix by prefix, against cold runs.

// sessEdits generates one batch of valid random edits for an nSinks-sink
// spec with nNodes tree nodes on a die×die floorplan. Pure function of
// rng state, so the sequences are reproducible from the seed.
func sessEdits(rng *rand.Rand, nSinks, nNodes int, die float64, count int) []smartndr.Edit {
	edits := make([]smartndr.Edit, 0, count)
	for i := 0; i < count; i++ {
		switch rng.Intn(6) {
		case 0, 1:
			edits = append(edits, smartndr.Edit{Op: core.OpMoveSink,
				Sink: rng.Intn(nSinks), X: rng.Float64() * die, Y: rng.Float64() * die})
		case 2:
			edits = append(edits, smartndr.Edit{Op: core.OpSinkCap,
				Sink: rng.Intn(nSinks), Cap: (1 + 3*rng.Float64()) * 1e-15})
		case 3:
			edits = append(edits, smartndr.Edit{Op: core.OpSinkRule,
				Sink: rng.Intn(nSinks), Rule: rng.Intn(4)})
		case 4:
			edits = append(edits, smartndr.Edit{Op: core.OpNodeRule,
				Node: rng.Intn(nNodes), Rule: rng.Intn(4)})
		default:
			edits = append(edits, smartndr.Edit{Op: core.OpInSlew,
				InSlewPS: 30 + 40*rng.Float64()})
		}
	}
	return edits
}

func decodeSessionResponse(t *testing.T, body []byte) *SessionResponse {
	t.Helper()
	var out SessionResponse
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatalf("session response not JSON: %v: %s", err, body)
	}
	return &out
}

// replaySeed drives one seeded edit sequence through a session on warm
// and a cold /v1/flow per prefix on cold, asserting byte-identity and
// key equality at every step. Returns the Result bytes per prefix
// (index 0 = pristine) so callers can compare across server configs.
func replaySeed(t *testing.T, warm, cold *httptest.Server, name string, seed int64, steps int) [][]byte {
	t.Helper()
	spec := testutil.UniformSpec(name, 24, 600, seed)

	createResp, createBody := postJSON(t, warm, "/v1/session", &SessionCreateRequest{
		FlowRequest: FlowRequest{Spec: &spec, Scheme: "smart-ndr"},
	})
	if createResp.StatusCode != http.StatusOK {
		t.Fatalf("seed %d: create status %d: %s", seed, createResp.StatusCode, createBody)
	}
	sess := decodeSessionResponse(t, createBody)
	if sess.Session == "" || sess.Nodes == 0 || sess.Rev != 0 {
		t.Fatalf("seed %d: malformed create response: %s", seed, createBody)
	}

	rng := rand.New(rand.NewSource(seed))
	var state []smartndr.Edit
	results := make([][]byte, 0, steps+1)
	prefix := func(step int, got []byte, gotKey string) {
		coldResp, coldBody := postJSON(t, cold, "/v1/flow",
			&FlowRequest{Spec: &spec, Scheme: "smart-ndr", Edits: state})
		if coldResp.StatusCode != http.StatusOK {
			t.Fatalf("seed %d step %d: cold status %d: %s", seed, step, coldResp.StatusCode, coldBody)
		}
		if !bytes.Equal(got, coldBody) {
			t.Fatalf("seed %d step %d: session result differs from cold run\nwarm: %s\ncold: %s",
				seed, step, got, coldBody)
		}
		if ck := coldResp.Header.Get("X-Key"); ck != gotKey {
			t.Fatalf("seed %d step %d: session key %s != cold key %s", seed, step, gotKey, ck)
		}
		results = append(results, got)
	}
	prefix(0, sess.Result, sess.Key)

	for step := 1; step <= steps; step++ {
		batch := sessEdits(rng, spec.Sinks, sess.Nodes, spec.DieX, 1+rng.Intn(3))
		state = core.CanonicalEdits(append(state, batch...))
		deltaResp, deltaBody := postJSON(t, warm, "/v1/session/"+sess.Session+"/delta",
			&SessionDeltaRequest{Edits: batch})
		if deltaResp.StatusCode != http.StatusOK {
			t.Fatalf("seed %d step %d: delta status %d: %s", seed, step, deltaResp.StatusCode, deltaBody)
		}
		out := decodeSessionResponse(t, deltaBody)
		if out.Rev != step {
			t.Fatalf("seed %d step %d: rev = %d", seed, step, out.Rev)
		}
		prefix(step, out.Result, out.Key)
	}
	return results
}

// TestServeSessionReplayByteIdentical is the headline differential test:
// for 24 seeded random edit sequences, every prefix replayed through the
// session API matches the cold /v1/flow bytes of the equivalently edited
// spec — and the bytes are invariant across server worker counts.
func TestServeSessionReplayByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("session replay sweep is not a -short test")
	}
	const seeds = 24
	const steps = 4

	// Results are collected per worker count and cross-compared, so the
	// suite also proves fan-out width never leaks into session bytes.
	byWorkers := map[int][][][]byte{}
	for _, workers := range []int{1, 8} {
		warm := httptest.NewServer(New(Config{Workers: workers}).Handler())
		cold := httptest.NewServer(New(Config{Workers: workers, CacheEntries: 1}).Handler())
		for i := 0; i < seeds; i++ {
			seed := int64(4000 + 61*i)
			byWorkers[workers] = append(byWorkers[workers],
				replaySeed(t, warm, cold, fmt.Sprintf("sess%02d", i), seed, steps))
		}
		warm.Close()
		cold.Close()
	}
	for i := range byWorkers[1] {
		for step := range byWorkers[1][i] {
			if !bytes.Equal(byWorkers[1][i][step], byWorkers[8][i][step]) {
				t.Errorf("seed idx %d step %d: bytes differ between workers=1 and workers=8", i, step)
			}
		}
	}
}

// TestServeSessionRollbackInverse is the inverse-edit metamorphic
// property: after a stack of deltas, rolling back to each earlier rev —
// newest to oldest, down to the create state — returns Result bytes
// identical to the response recorded when that rev was first visited.
func TestServeSessionRollbackInverse(t *testing.T) {
	if testing.Short() {
		t.Skip("rollback property sweep is not a -short test")
	}
	ts := httptest.NewServer(New(Config{}).Handler())
	defer ts.Close()

	const seeds = 24
	const steps = 3
	for i := 0; i < seeds; i++ {
		seed := int64(7000 + 13*i)
		spec := testutil.UniformSpec(fmt.Sprintf("roll%02d", i), 24, 600, seed)
		createResp, createBody := postJSON(t, ts, "/v1/session", &SessionCreateRequest{
			FlowRequest: FlowRequest{Spec: &spec, Scheme: "smart-ndr"},
		})
		if createResp.StatusCode != http.StatusOK {
			t.Fatalf("seed %d: create status %d: %s", seed, createResp.StatusCode, createBody)
		}
		sess := decodeSessionResponse(t, createBody)

		rng := rand.New(rand.NewSource(seed))
		recorded := [][]byte{sess.Result}
		keys := []string{sess.Key}
		for step := 1; step <= steps; step++ {
			batch := sessEdits(rng, spec.Sinks, sess.Nodes, spec.DieX, 2)
			resp, body := postJSON(t, ts, "/v1/session/"+sess.Session+"/delta",
				&SessionDeltaRequest{Edits: batch})
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("seed %d step %d: delta status %d: %s", seed, step, resp.StatusCode, body)
			}
			out := decodeSessionResponse(t, body)
			recorded = append(recorded, out.Result)
			keys = append(keys, out.Key)
		}

		for rev := steps; rev >= 0; rev-- {
			rb := rev
			resp, body := postJSON(t, ts, "/v1/session/"+sess.Session+"/delta",
				&SessionDeltaRequest{RollbackTo: &rb})
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("seed %d rollback to %d: status %d: %s", seed, rev, resp.StatusCode, body)
			}
			out := decodeSessionResponse(t, body)
			if !bytes.Equal(out.Result, recorded[rev]) {
				t.Fatalf("seed %d: rollback to rev %d diverged from recorded response\ngot:  %s\nwant: %s",
					seed, rev, out.Result, recorded[rev])
			}
			if out.Key != keys[rev] {
				t.Fatalf("seed %d: rollback to rev %d key %s, want %s", seed, rev, out.Key, keys[rev])
			}
		}
	}
}

// TestServeSessionEvictionRehydration: when the store evicts a session
// under pressure, re-creating it with its last canonical edit state (the
// documented client recovery) lands on the same content address and the
// same Result bytes — eviction loses the warm engine, never the answer.
func TestServeSessionEvictionRehydration(t *testing.T) {
	if testing.Short() {
		t.Skip("eviction re-hydration runs real synthesis")
	}
	ts := httptest.NewServer(New(Config{MaxSessions: 1}).Handler())
	defer ts.Close()

	spec := testutil.UniformSpec("evict", 24, 600, 11)
	createResp, createBody := postJSON(t, ts, "/v1/session", &SessionCreateRequest{
		FlowRequest: FlowRequest{Spec: &spec, Scheme: "smart-ndr"},
	})
	if createResp.StatusCode != http.StatusOK {
		t.Fatalf("create status %d: %s", createResp.StatusCode, createBody)
	}
	first := decodeSessionResponse(t, createBody)

	// The client mirrors its canonical state, as a real client would.
	rng := rand.New(rand.NewSource(99))
	batch := sessEdits(rng, spec.Sinks, first.Nodes, spec.DieX, 3)
	state := core.CanonicalEdits(batch)
	deltaResp, deltaBody := postJSON(t, ts, "/v1/session/"+first.Session+"/delta",
		&SessionDeltaRequest{Edits: batch})
	if deltaResp.StatusCode != http.StatusOK {
		t.Fatalf("delta status %d: %s", deltaResp.StatusCode, deltaBody)
	}
	edited := decodeSessionResponse(t, deltaBody)

	// A second session evicts the first (MaxSessions=1).
	other := testutil.UniformSpec("evict2", 24, 600, 12)
	otherResp, otherBody := postJSON(t, ts, "/v1/session", &SessionCreateRequest{
		FlowRequest: FlowRequest{Spec: &other, Scheme: "smart-ndr"},
	})
	if otherResp.StatusCode != http.StatusOK {
		t.Fatalf("second create status %d: %s", otherResp.StatusCode, otherBody)
	}
	goneResp, goneBody := postJSON(t, ts, "/v1/session/"+first.Session+"/delta",
		&SessionDeltaRequest{Edits: batch})
	if goneResp.StatusCode != http.StatusNotFound {
		t.Fatalf("delta to evicted session = %d, want 404: %s", goneResp.StatusCode, goneBody)
	}

	// Re-hydrate: create carrying the mirrored state.
	rehydResp, rehydBody := postJSON(t, ts, "/v1/session", &SessionCreateRequest{
		FlowRequest: FlowRequest{Spec: &spec, Scheme: "smart-ndr", Edits: state},
	})
	if rehydResp.StatusCode != http.StatusOK {
		t.Fatalf("re-hydrate status %d: %s", rehydResp.StatusCode, rehydBody)
	}
	rehyd := decodeSessionResponse(t, rehydBody)
	if rehyd.Key != edited.Key {
		t.Errorf("re-hydrated key %s, want %s", rehyd.Key, edited.Key)
	}
	if !bytes.Equal(rehyd.Result, edited.Result) {
		t.Errorf("re-hydrated result differs from pre-eviction state:\n%s\n%s",
			rehyd.Result, edited.Result)
	}
	if rehyd.Session == first.Session {
		t.Error("re-hydrated session reused an evicted ID")
	}
}
