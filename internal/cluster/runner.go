package cluster

import (
	"context"
	"fmt"
	"net/http"
	"sync/atomic"
	"time"

	"smartndr/internal/obs"
	"smartndr/internal/par"
	"smartndr/internal/serve"
)

// BackendSpec names one shard of the fleet. An empty URL selects the
// in-process loopback backend (Config.Local executes the work); a
// non-empty URL is a worker smartndrd reached over HTTP.
type BackendSpec struct {
	// Name is the backend's stable shard identity — ring placement
	// hashes it, so renaming a backend remaps its keys. Defaults to the
	// URL, or "local" for the loopback backend.
	Name string
	// URL is the worker's base URL (e.g. "http://10.0.0.7:8147").
	URL string
	// Transport overrides the transport (tests); when nil it is derived
	// from URL.
	Transport Transport
}

// Config parameterizes a Runner. Zero values select defaults sized for
// a small fleet; only Local is required.
type Config struct {
	// Local computes canonical keys on the frontend and executes
	// loopback work. Required.
	Local serve.Runner
	// Backends is the shard set. Empty means standalone: one loopback
	// backend, no HTTP anywhere.
	Backends []BackendSpec
	// Replicas is the consistent-hash vnode count per backend (default 64).
	Replicas int
	// BackendConcurrent caps in-flight calls per backend (default 4).
	BackendConcurrent int
	// BackendQueue caps callers waiting per backend before ErrSaturated
	// (default 2×BackendConcurrent).
	BackendQueue int
	// DisableHedge turns hedged retries off (stragglers run to
	// completion on their owner).
	DisableHedge bool
	// HedgeAfter, when positive, is a fixed hedge delay. 0 selects the
	// adaptive delay: the recent p95 of the fastest healthy backend's
	// latency window, clamped to [HedgeMin, HedgeMax].
	HedgeAfter time.Duration
	// HedgeMinSamples is how many window samples a backend needs before
	// its p95 participates in the adaptive delay (default 8).
	HedgeMinSamples int
	// HedgeMin / HedgeMax clamp the adaptive delay (defaults 2ms / 2s).
	HedgeMin time.Duration
	HedgeMax time.Duration
	// HedgeDefault is the delay used before any window is warm
	// (default 100ms).
	HedgeDefault time.Duration
	// FailCooldown is how long a backend stays out of rotation after a
	// retryable failure (default 2s). Probe can bring it back sooner.
	FailCooldown time.Duration
	// WindowSize bounds each backend's latency window (default 128).
	WindowSize int
	// Client overrides the HTTP client used for URL backends.
	Client *http.Client
	// Tracer contributes the cluster.* counters to the shared registry.
	Tracer *obs.Tracer
	// Now overrides the clock (tests). Nil uses the real clock.
	Now func() time.Time
}

// backend is one shard: a transport plus the frontend-side state that
// governs admission to it (gate), hedge timing (latency window), and
// membership (the down-until clock).
type backend struct {
	name   string
	tr     Transport
	gate   *par.Gate
	window *latWindow

	downUntilNS atomic.Int64 // unix nanos; 0 = healthy

	requests     atomic.Uint64
	errors       atomic.Uint64
	hedges       atomic.Uint64
	hedgeWins    atomic.Uint64
	remoteHits   atomic.Uint64
	remoteMisses atomic.Uint64
}

// Runner routes serve requests across the shard set. It implements
// serve.Runner, so the HTTP layer in front of it is byte-for-byte the
// single-node service; and serve.ShardStatser, so /v1/statsz and
// /metricsz expose the per-shard view.
type Runner struct {
	local      serve.Runner
	backends   []*backend
	ring       *Ring
	standalone bool
	reg        *obs.Registry
	now        func() time.Time

	disableHedge    bool
	hedgeAfter      time.Duration
	hedgeMinSamples int
	hedgeMin        time.Duration
	hedgeMax        time.Duration
	hedgeDefault    time.Duration
	failCooldown    time.Duration
}

// NewRunner builds a cluster runner over the configured shard set.
func NewRunner(cfg Config) (*Runner, error) {
	if cfg.Local == nil {
		return nil, fmt.Errorf("cluster: Config.Local is required")
	}
	specs := cfg.Backends
	if len(specs) == 0 {
		specs = []BackendSpec{{Name: "local"}}
	}
	if cfg.BackendConcurrent <= 0 {
		cfg.BackendConcurrent = 4
	}
	if cfg.BackendQueue <= 0 {
		cfg.BackendQueue = 2 * cfg.BackendConcurrent
	}
	if cfg.HedgeMinSamples <= 0 {
		cfg.HedgeMinSamples = 8
	}
	if cfg.HedgeMin <= 0 {
		cfg.HedgeMin = 2 * time.Millisecond
	}
	if cfg.HedgeMax <= 0 {
		cfg.HedgeMax = 2 * time.Second
	}
	if cfg.HedgeDefault <= 0 {
		cfg.HedgeDefault = 100 * time.Millisecond
	}
	if cfg.FailCooldown <= 0 {
		cfg.FailCooldown = 2 * time.Second
	}
	if cfg.WindowSize <= 0 {
		cfg.WindowSize = 128
	}
	now := cfg.Now
	if now == nil {
		now = time.Now
	}
	reg := cfg.Tracer.Registry()
	if reg == nil {
		reg = &obs.Registry{}
	}

	names := make([]string, len(specs))
	seen := map[string]bool{}
	backends := make([]*backend, len(specs))
	for i, spec := range specs {
		name := spec.Name
		if name == "" {
			name = spec.URL
		}
		if name == "" {
			name = "local"
		}
		if seen[name] {
			return nil, fmt.Errorf("cluster: duplicate backend name %q", name)
		}
		seen[name] = true
		names[i] = name
		tr := spec.Transport
		if tr == nil {
			if spec.URL == "" {
				tr = &LocalTransport{Runner: cfg.Local}
			} else {
				tr = &HTTPTransport{Base: spec.URL, Client: cfg.Client}
			}
		}
		backends[i] = &backend{
			name:   name,
			tr:     tr,
			gate:   par.NewGate(cfg.BackendConcurrent, cfg.BackendQueue),
			window: newLatWindow(cfg.WindowSize),
		}
	}
	return &Runner{
		local:           cfg.Local,
		backends:        backends,
		ring:            NewRing(names, cfg.Replicas),
		standalone:      len(backends) == 1,
		reg:             reg,
		now:             now,
		disableHedge:    cfg.DisableHedge,
		hedgeAfter:      cfg.HedgeAfter,
		hedgeMinSamples: cfg.HedgeMinSamples,
		hedgeMin:        cfg.HedgeMin,
		hedgeMax:        cfg.HedgeMax,
		hedgeDefault:    cfg.HedgeDefault,
		failCooldown:    cfg.FailCooldown,
	}, nil
}

// Ring exposes the placement ring (tests, statsz).
func (r *Runner) Ring() *Ring { return r.ring }

// Standalone reports whether the runner is a single loopback backend.
func (r *Runner) Standalone() bool { return r.standalone }

// --- membership ---

func (r *Runner) healthy(b *backend) bool {
	until := b.downUntilNS.Load()
	return until == 0 || r.now().UnixNano() >= until
}

func (r *Runner) markDown(b *backend) {
	b.downUntilNS.Store(r.now().Add(r.failCooldown).UnixNano())
	r.reg.Add("cluster.backend_down", 1)
}

func (r *Runner) markUp(b *backend) { b.downUntilNS.Store(0) }

// Probe health-checks every backend, marking failures down for the
// cooldown and recovering backends that answer again. The daemon calls
// this on a timer in frontend role; tests call it directly.
func (r *Runner) Probe(ctx context.Context) {
	for _, b := range r.backends {
		if err := b.tr.Check(ctx); err != nil {
			r.markDown(b)
		} else {
			r.markUp(b)
		}
	}
}

// order returns seq reordered so healthy backends come first (relative
// ring order preserved within each class) — down backends are still
// eligible last so a fully-down fleet fails open rather than refusing.
func (r *Runner) order(seq []int) []int {
	out := make([]int, 0, len(seq))
	for _, b := range seq {
		if r.healthy(r.backends[b]) {
			out = append(out, b)
		}
	}
	for _, b := range seq {
		if !r.healthy(r.backends[b]) {
			out = append(out, b)
		}
	}
	return out
}

// hedgeDelay resolves the current hedge delay: fixed when configured,
// otherwise the recent p95 of the fastest healthy backend's window —
// "how long should a well-placed call take" — clamped to the
// configured band. Using the fastest replica's p95 (not the primary's)
// is what lets hedging route around a degraded-but-alive backend: a
// shard running 10× slow raises its own p95, not the delay.
func (r *Runner) hedgeDelay() time.Duration {
	if r.hedgeAfter > 0 {
		return r.hedgeAfter
	}
	best := time.Duration(-1)
	for _, b := range r.backends {
		if !r.healthy(b) {
			continue
		}
		q, n := b.window.Quantile(0.95)
		if n < r.hedgeMinSamples {
			continue
		}
		d := time.Duration(q * float64(time.Second))
		if best < 0 || d < best {
			best = d
		}
	}
	if best < 0 {
		best = r.hedgeDefault
	}
	if best < r.hedgeMin {
		best = r.hedgeMin
	}
	if best > r.hedgeMax {
		best = r.hedgeMax
	}
	return best
}

// --- execution ---

// exec runs one transport call against backend index b under its gate,
// recording latency, per-shard counters, and health transitions.
func exec[T any](r *Runner, ctx context.Context, b int,
	call func(ctx context.Context, tr Transport) (T, Meta, error)) (T, error) {

	be := r.backends[b]
	var zero T
	release, err := be.gate.Acquire(ctx)
	if err != nil {
		be.errors.Add(1)
		r.reg.Add("cluster.errors", 1)
		return zero, err
	}
	defer release()
	be.requests.Add(1)
	r.reg.Add("cluster.requests", 1)
	t0 := r.now()
	out, meta, err := call(ctx, be.tr)
	switch meta.Cache {
	case serve.CacheHit, serve.CacheShared:
		be.remoteHits.Add(1)
		r.reg.Add("cluster.remote_hits", 1)
	case serve.CacheMiss:
		be.remoteMisses.Add(1)
		r.reg.Add("cluster.remote_misses", 1)
	}
	if err != nil {
		be.errors.Add(1)
		r.reg.Add("cluster.errors", 1)
		if marksDown(err) {
			r.markDown(be)
		}
		return zero, err
	}
	// Only successful calls feed the hedge-timing window: canceled
	// hedge losers would record ~hedge-delay samples and fast failures
	// near-zero ones, dragging the adaptive p95 into a feedback loop of
	// ever more aggressive hedging.
	be.window.Observe(r.now().Sub(t0).Seconds())
	return out, nil
}

// callSharded routes one call along the key's preference sequence:
// primary = the owning shard, hedged onto the next replica after the
// hedge delay, then sequential failover across the remaining backends
// when the error is retryable (network, 5xx, saturation) — a request
// error (400) fails immediately everywhere and is returned as-is.
func callSharded[T any](r *Runner, ctx context.Context, key string,
	call func(ctx context.Context, tr Transport) (T, Meta, error)) (T, error) {

	seq := r.order(r.ring.Sequence(key, nil))
	var zero T
	if len(seq) == 0 {
		return zero, fmt.Errorf("cluster: no backends")
	}
	primary := func(ctx context.Context) (T, error) {
		return exec(r, ctx, seq[0], call)
	}
	var backup func(ctx context.Context) (T, error)
	if !r.disableHedge && len(seq) > 1 {
		hedgeTo := seq[1]
		backup = func(ctx context.Context) (T, error) {
			r.backends[hedgeTo].hedges.Add(1)
			r.reg.Add("cluster.hedges", 1)
			return exec(r, ctx, hedgeTo, call)
		}
	}
	out, hedged, err := par.Hedge(ctx, r.hedgeDelay(), primary, backup)
	if err == nil {
		if hedged {
			r.backends[seq[1]].hedgeWins.Add(1)
			r.reg.Add("cluster.hedge_wins", 1)
		}
		return out, nil
	}
	if !retryable(err) {
		return zero, err
	}
	// Hedged pair exhausted: walk the rest of the sequence once.
	start := 1
	if backup != nil {
		start = 2
	}
	for _, b := range seq[start:] {
		if ctx.Err() != nil {
			return zero, ctx.Err()
		}
		r.reg.Add("cluster.failovers", 1)
		out, ferr := exec(r, ctx, b, call)
		if ferr == nil {
			return out, nil
		}
		if !retryable(ferr) {
			return zero, ferr
		}
		err = ferr
	}
	return zero, err
}

// --- serve.Runner ---

// FlowKey implements serve.Runner: keys are computed locally — they
// are pure functions of the request, and routing depends on them.
func (r *Runner) FlowKey(req *serve.FlowRequest) (string, error) {
	return r.local.FlowKey(req)
}

// OpenSession implements serve.SessionRunner by delegating to the local
// runner. Sessions are deliberately node-local: a session is a live tree
// plus an incremental engine, and shipping per-edit dirty state across
// the fleet would cost more than the microseconds it saves. Clients pin
// a session to the node that created it; content addresses make results
// portable anyway. Returns an error when the local runner cannot host
// sessions (the serve layer reports 501).
func (r *Runner) OpenSession(ctx context.Context, req *serve.FlowRequest, tr *obs.Tracer) (serve.SessionHandle, error) {
	sr, ok := r.local.(serve.SessionRunner)
	if !ok {
		return nil, fmt.Errorf("cluster: local runner %T does not host sessions", r.local)
	}
	r.reg.Add("cluster.requests", 1)
	return sr.OpenSession(ctx, req, tr)
}

// SweepKey implements serve.Runner.
func (r *Runner) SweepKey(req *serve.SweepRequest) (string, error) {
	return r.local.SweepKey(req)
}

// RunFlow implements serve.Runner: standalone runs loopback on the
// caller's goroutine (today's single-node behavior, tracer and all);
// clustered, the flow is owned by the shard its canonical key hashes
// to, so a cold run happens on exactly one backend fleet-wide.
func (r *Runner) RunFlow(ctx context.Context, req *serve.FlowRequest, tr *obs.Tracer) (*serve.FlowResponse, error) {
	if r.standalone {
		be := r.backends[0]
		be.requests.Add(1)
		r.reg.Add("cluster.requests", 1)
		t0 := r.now()
		out, _, err := be.tr.Flow(ctx, req, tr)
		if err != nil {
			be.errors.Add(1)
			r.reg.Add("cluster.errors", 1)
			return nil, err
		}
		be.window.Observe(r.now().Sub(t0).Seconds())
		return out, nil
	}
	key, err := r.local.FlowKey(req)
	if err != nil {
		return nil, err
	}
	// Remote calls run untraced — the worker records its own span tree
	// — and hedged branches run on their own goroutines where the
	// ambient span stack is off-limits.
	return callSharded(r, ctx, key, func(ctx context.Context, t Transport) (*serve.FlowResponse, Meta, error) {
		return t.Flow(ctx, req, nil)
	})
}

// RunSweep implements serve.Runner. Standalone delegates to the local
// engine (one shared build, arms fanned in-process). Clustered, each
// arm becomes a single-arm sweep routed by its own canonical key, so
// repeat sweeps hit each arm's owner cache, the whole batch spreads
// across the fleet under per-backend gates, and a straggling arm is
// hedged onto the next replica after the recent p95.
func (r *Runner) RunSweep(ctx context.Context, req *serve.SweepRequest, tr *obs.Tracer) (*serve.SweepResponse, error) {
	if r.standalone {
		be := r.backends[0]
		be.requests.Add(1)
		r.reg.Add("cluster.requests", 1)
		t0 := r.now()
		out, _, err := be.tr.Sweep(ctx, req, tr)
		if err != nil {
			be.errors.Add(1)
			r.reg.Add("cluster.errors", 1)
			return nil, err
		}
		be.window.Observe(r.now().Sub(t0).Seconds())
		return out, nil
	}
	key, err := r.local.SweepKey(req)
	if err != nil {
		return nil, err
	}
	n := len(req.Arms)
	sp := tr.Start("cluster.sweep", obs.I("arms", n), obs.I("backends", len(r.backends)))
	defer sp.End()

	results := make([]serve.SweepArmResult, n)
	envs := make([]*serve.SweepResponse, n)
	// One goroutine per arm by default: n is bounded by the serve
	// layer's arm limit, and real concurrency is bounded by the
	// per-backend gates. A client-requested Workers bound still caps
	// the fan-out, matching single-node semantics.
	workers := n
	if req.Workers > 0 && req.Workers < workers {
		workers = req.Workers
	}
	err = par.ForEach(ctx, workers, n, func(i int) error {
		armReq := singleArm(req, i)
		armKey, err := r.local.SweepKey(armReq)
		if err != nil {
			return err
		}
		armSp := sp.Child("arm", obs.I("i", i),
			obs.S("scheme", req.Arms[i].Scheme), obs.S("corner", req.Arms[i].Corner))
		defer armSp.End()
		resp, err := callSharded(r, ctx, armKey, func(ctx context.Context, t Transport) (*serve.SweepResponse, Meta, error) {
			return t.Sweep(ctx, armReq, nil)
		})
		if err != nil {
			return err
		}
		if len(resp.Arms) != 1 {
			return fmt.Errorf("cluster: arm %d: backend returned %d results for a single-arm sweep", i, len(resp.Arms))
		}
		envs[i] = resp
		results[i] = resp.Arms[0]
		return nil
	})
	if err != nil {
		return nil, err
	}
	// Envelope fields are identical on every backend (the engine is
	// deterministic); take them from arm 0 and stamp the full-sweep
	// key, matching the single-node response byte for byte.
	return &serve.SweepResponse{
		Key:     key,
		Bench:   envs[0].Bench,
		Tech:    envs[0].Tech,
		Sinks:   envs[0].Sinks,
		Buffers: envs[0].Buffers,
		Arms:    results,
	}, nil
}

// singleArm projects one arm of a sweep into its own request, carrying
// only semantic fields — Workers and TimeoutMS are excluded so the
// arm's canonical key (and therefore its owner and its worker-side
// cache entry) is a pure function of the work.
func singleArm(req *serve.SweepRequest, i int) *serve.SweepRequest {
	return &serve.SweepRequest{
		Bench:    req.Bench,
		Spec:     req.Spec,
		Tech:     req.Tech,
		InSlewPS: req.InSlewPS,
		Arms:     []serve.SweepArm{req.Arms[i]},
	}
}

// ShardStats implements serve.ShardStatser: the per-shard view
// exported via /v1/statsz and as labeled series on /metricsz.
func (r *Runner) ShardStats() []serve.ShardStat {
	out := make([]serve.ShardStat, len(r.backends))
	for i, b := range r.backends {
		p95, _ := b.window.Quantile(0.95)
		out[i] = serve.ShardStat{
			Shard:        b.name,
			Healthy:      r.healthy(b),
			Requests:     b.requests.Load(),
			Errors:       b.errors.Load(),
			Hedges:       b.hedges.Load(),
			HedgeWins:    b.hedgeWins.Load(),
			RemoteHits:   b.remoteHits.Load(),
			RemoteMisses: b.remoteMisses.Load(),
			InFlight:     b.gate.Held(),
			P95MS:        p95 * 1e3,
		}
	}
	return out
}
