package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sort"
	"sync"
	"time"

	"smartndr/internal/obs"
	"smartndr/internal/par"
	"smartndr/internal/serve"
)

// Meta is the per-call metadata a transport reports alongside the
// response: the remote cache outcome (from the X-Cache header; empty
// for loopback calls, which run under the caller's own cache).
type Meta struct {
	Cache string
}

// Transport executes one resolved request against one backend. The two
// implementations are LocalTransport (in-process loopback — the
// standalone path) and HTTPTransport (a worker reached over the wire).
// tr is the request-scoped tracer; transports that cross a process
// boundary ignore it (the worker has its own), and the cluster runner
// only threads it through on single-branch calls where the ambient
// span stack is goroutine-safe.
type Transport interface {
	Flow(ctx context.Context, req *serve.FlowRequest, tr *obs.Tracer) (*serve.FlowResponse, Meta, error)
	Sweep(ctx context.Context, req *serve.SweepRequest, tr *obs.Tracer) (*serve.SweepResponse, Meta, error)
	// Check probes the backend's health (GET /v1/healthz for HTTP;
	// always healthy for loopback).
	Check(ctx context.Context) error
}

// LocalTransport is the in-process loopback backend: calls land
// directly on a serve.Runner with no serialization and no network.
type LocalTransport struct {
	Runner serve.Runner
}

// Flow implements Transport.
func (t *LocalTransport) Flow(ctx context.Context, req *serve.FlowRequest, tr *obs.Tracer) (*serve.FlowResponse, Meta, error) {
	resp, err := t.Runner.RunFlow(ctx, req, tr)
	return resp, Meta{}, err
}

// Sweep implements Transport.
func (t *LocalTransport) Sweep(ctx context.Context, req *serve.SweepRequest, tr *obs.Tracer) (*serve.SweepResponse, Meta, error) {
	resp, err := t.Runner.RunSweep(ctx, req, tr)
	return resp, Meta{}, err
}

// Check implements Transport; the loopback backend is this process.
func (t *LocalTransport) Check(ctx context.Context) error { return nil }

// StatusError is a non-2xx response from a worker, carrying the HTTP
// status so the frontend can distinguish retryable refusals (429, 5xx)
// from permanent request errors (4xx).
type StatusError struct {
	Code int
	Msg  string
}

func (e *StatusError) Error() string {
	return fmt.Sprintf("cluster: backend status %d: %s", e.Code, e.Msg)
}

// retryable reports whether err should move the call to another
// replica: transport-level failures, refusal/overload statuses, and
// frontend-side gate saturation — but never request errors (a 400 will
// fail identically everywhere) and never cancellation. errors.Is is
// essential here: http.Client.Do wraps a canceled context in
// *url.Error, and par.Hedge cancels the losing branch on every hedge
// win, so a bare == would let wrapped cancels fall into the network
// catch-all.
func retryable(err error) bool {
	if err == nil || errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return false
	}
	var se *StatusError
	if errors.As(err, &se) {
		return se.Code == http.StatusTooManyRequests || se.Code >= 500
	}
	// URL/network errors from the HTTP client land here, as does
	// par.ErrSaturated from the frontend's own admission gate.
	return true
}

// marksDown reports whether a retryable err is also a health signal
// that should take the backend out of rotation. par.ErrSaturated is
// excluded: it comes from the frontend's own per-backend gate, not the
// wire, so a momentarily full local queue says nothing about the
// shard's health — cooling the owner down would move its whole key arc
// off-owner and trigger duplicate cold runs.
func marksDown(err error) bool {
	return retryable(err) && !errors.Is(err, par.ErrSaturated)
}

// HTTPTransport reaches one worker's smartndrd over its HTTP API.
type HTTPTransport struct {
	// Base is the worker's base URL, e.g. "http://10.0.0.7:8147".
	Base string
	// Client defaults to a dedicated client with sane pooling.
	Client *http.Client
}

// defaultHTTPClient is shared across HTTPTransports that don't bring
// their own, so connection pools are reused per-destination.
var defaultHTTPClient = &http.Client{
	Transport: &http.Transport{
		MaxIdleConns:        64,
		MaxIdleConnsPerHost: 16,
		IdleConnTimeout:     90 * time.Second,
	},
}

func (t *HTTPTransport) client() *http.Client {
	if t.Client != nil {
		return t.Client
	}
	return defaultHTTPClient
}

// post sends one JSON request and decodes the response into out,
// returning the remote cache outcome. Non-2xx responses become
// *StatusError with the worker's error text.
func (t *HTTPTransport) post(ctx context.Context, path string, in, out any) (Meta, error) {
	body, err := json.Marshal(in)
	if err != nil {
		return Meta{}, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, t.Base+path, bytes.NewReader(body))
	if err != nil {
		return Meta{}, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := t.client().Do(req)
	if err != nil {
		return Meta{}, err
	}
	defer resp.Body.Close()
	meta := Meta{Cache: resp.Header.Get("X-Cache")}
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return meta, err
	}
	if resp.StatusCode != http.StatusOK {
		return meta, &StatusError{Code: resp.StatusCode, Msg: errorText(data)}
	}
	if err := json.Unmarshal(data, out); err != nil {
		return meta, fmt.Errorf("cluster: decoding %s response: %w", path, err)
	}
	return meta, nil
}

// Flow implements Transport.
func (t *HTTPTransport) Flow(ctx context.Context, req *serve.FlowRequest, _ *obs.Tracer) (*serve.FlowResponse, Meta, error) {
	var out serve.FlowResponse
	meta, err := t.post(ctx, "/v1/flow", req, &out)
	if err != nil {
		return nil, meta, err
	}
	return &out, meta, nil
}

// Sweep implements Transport.
func (t *HTTPTransport) Sweep(ctx context.Context, req *serve.SweepRequest, _ *obs.Tracer) (*serve.SweepResponse, Meta, error) {
	var out serve.SweepResponse
	meta, err := t.post(ctx, "/v1/sweep", req, &out)
	if err != nil {
		return nil, meta, err
	}
	return &out, meta, nil
}

// Check implements Transport: GET /v1/healthz, healthy only on 200 (a
// draining worker answers 503 and stops receiving new work).
func (t *HTTPTransport) Check(ctx context.Context) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, t.Base+"/v1/healthz", nil)
	if err != nil {
		return err
	}
	resp, err := t.client().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		return &StatusError{Code: resp.StatusCode, Msg: errorText(data)}
	}
	return nil
}

// errorText extracts the server's error message from a response body,
// falling back to the raw bytes (bounded) when it is not the standard
// {"error": ...} shape.
func errorText(data []byte) string {
	var e struct {
		Error string `json:"error"`
	}
	if json.Unmarshal(data, &e) == nil && e.Error != "" {
		return e.Error
	}
	const max = 200
	if len(data) > max {
		data = data[:max]
	}
	return string(bytes.TrimSpace(data))
}

// latWindow is a bounded ring of recent call latencies, the source of
// the adaptive hedge delay. A windowed quantile — unlike the
// cumulative obs histograms — forgets old regimes, so a backend that
// was slow an hour ago doesn't poison today's hedge timing.
type latWindow struct {
	mu  sync.Mutex
	buf []float64
	n   int // filled entries
	i   int // next write position
}

func newLatWindow(size int) *latWindow {
	if size < 1 {
		size = 1
	}
	return &latWindow{buf: make([]float64, size)}
}

// Observe records one latency in seconds.
func (w *latWindow) Observe(sec float64) {
	w.mu.Lock()
	w.buf[w.i] = sec
	w.i = (w.i + 1) % len(w.buf)
	if w.n < len(w.buf) {
		w.n++
	}
	w.mu.Unlock()
}

// Quantile returns the p-quantile of the window (nearest-rank on a
// sorted copy) and the sample count. Returns (0, 0) on an empty
// window.
func (w *latWindow) Quantile(p float64) (float64, int) {
	w.mu.Lock()
	n := w.n
	tmp := make([]float64, n)
	copy(tmp, w.buf[:n])
	w.mu.Unlock()
	if n == 0 {
		return 0, 0
	}
	sort.Float64s(tmp)
	if p < 0 {
		p = 0
	}
	if p > 1 {
		p = 1
	}
	idx := int(p * float64(n-1))
	return tmp[idx], n
}
