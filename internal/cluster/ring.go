// Package cluster scales the smartndr flow service from one process to
// a fleet while keeping the single-binary story: a frontend routes
// content-addressed work across cache-shard backends (each canonical
// key is owned by exactly one backend, so a cold run happens once
// fleet-wide), fans sweep arms out to workers with a bounded gate per
// backend, and hedges stragglers onto a second replica after the
// recent p95. Standalone deployments use the same Runner with a single
// in-process loopback backend — the cluster layer adds no HTTP hop and
// no behavior change when there is nothing to distribute.
//
// The package implements serve.Runner, so the HTTP layer (admission,
// caching, drain, telemetry) is identical on every role; see
// docs/service.md for the topology and failure-mode story.
package cluster

import (
	"crypto/sha256"
	"encoding/binary"
	"sort"
	"strconv"
)

// ringVersion is folded into every ring-point hash; bump it to remap
// the whole keyspace deliberately (it is the only way the placement
// function is allowed to change).
const ringVersion = "smartndr/ring/v1"

// defaultReplicas is the virtual-node count per backend. 64 vnodes
// keep the maximum shard imbalance within a few percent for small
// fleets while the ring stays tiny (a few KB).
const defaultReplicas = 64

// Ring is a consistent-hash ring mapping canonical result keys to
// backend indices. Placement depends only on the backend names and the
// ring version — never on list order, process identity, or time — so
// every frontend in a fleet computes identical ownership, and adding
// or removing one backend moves only that backend's arc of keys.
type Ring struct {
	points []ringPoint
	n      int
}

type ringPoint struct {
	hash    uint64
	backend int
}

// NewRing builds a ring over n backends named by names (placement is
// name-derived, so names must be stable across the fleet — use the
// backend's address or configured shard name). replicas <= 0 selects
// the default vnode count.
func NewRing(names []string, replicas int) *Ring {
	if replicas <= 0 {
		replicas = defaultReplicas
	}
	r := &Ring{n: len(names), points: make([]ringPoint, 0, len(names)*replicas)}
	for i, name := range names {
		for j := 0; j < replicas; j++ {
			h := ringHash(ringVersion + "|" + name + "|" + strconv.Itoa(j))
			r.points = append(r.points, ringPoint{hash: h, backend: i})
		}
	}
	sort.Slice(r.points, func(a, b int) bool {
		if r.points[a].hash != r.points[b].hash {
			return r.points[a].hash < r.points[b].hash
		}
		return r.points[a].backend < r.points[b].backend
	})
	return r
}

// Backends returns the backend count the ring was built over.
func (r *Ring) Backends() int { return r.n }

// Owner returns the backend index owning key: the first ring point at
// or clockwise after the key's hash.
func (r *Ring) Owner(key string) int {
	if r.n == 0 {
		return -1
	}
	return r.points[r.search(ringHash(key))].backend
}

// Sequence appends to buf the distinct backends in ring order starting
// from key's owner — the preference order for placement, hedging, and
// failover: seq[0] owns the key, seq[1] is the hedge/failover target,
// and so on. Every backend appears exactly once.
func (r *Ring) Sequence(key string, buf []int) []int {
	buf = buf[:0]
	if r.n == 0 {
		return buf
	}
	seen := make([]bool, r.n)
	i := r.search(ringHash(key))
	for k := 0; k < len(r.points) && len(buf) < r.n; k++ {
		p := r.points[(i+k)%len(r.points)]
		if !seen[p.backend] {
			seen[p.backend] = true
			buf = append(buf, p.backend)
		}
	}
	return buf
}

// search returns the index of the first point with hash >= h, wrapping
// to 0 past the last point.
func (r *Ring) search(h uint64) int {
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		return 0
	}
	return i
}

// ringHash maps a string onto the ring's 64-bit keyspace. SHA-256
// (truncated) rather than a fast non-cryptographic hash: placement
// must be stable across architectures and releases, and ring
// construction is a startup-only cost.
func ringHash(s string) uint64 {
	sum := sha256.Sum256([]byte(s))
	return binary.BigEndian.Uint64(sum[:8])
}
