package cluster

import (
	"context"
	"errors"
	"fmt"
	"net/url"
	"runtime"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"smartndr/internal/obs"
	"smartndr/internal/par"
	"smartndr/internal/serve"
)

// keyRunner is the frontend-side local runner for stub-transport tests:
// keys are cheap pure functions of the request, and loopback execution
// just echoes the request.
type keyRunner struct{}

func (keyRunner) FlowKey(req *serve.FlowRequest) (string, error) {
	return "flow:" + req.Bench, nil
}

func (keyRunner) RunFlow(ctx context.Context, req *serve.FlowRequest, _ *obs.Tracer) (*serve.FlowResponse, error) {
	return &serve.FlowResponse{Key: "flow:" + req.Bench, Bench: req.Bench, Scheme: "local"}, nil
}

func (keyRunner) SweepKey(req *serve.SweepRequest) (string, error) {
	parts := make([]string, len(req.Arms))
	for i, a := range req.Arms {
		parts[i] = a.Scheme + ":" + a.Corner
	}
	return "sweep:" + req.Bench + "|" + strings.Join(parts, ","), nil
}

func (keyRunner) RunSweep(ctx context.Context, req *serve.SweepRequest, _ *obs.Tracer) (*serve.SweepResponse, error) {
	return &serve.SweepResponse{Bench: req.Bench}, nil
}

// stubTransport is a scriptable backend: fixed latency, optional
// failure, optional reported remote-cache outcome. It records which
// flows and sweep arms landed on it.
type stubTransport struct {
	name  string
	delay time.Duration
	cache string

	mu          sync.Mutex
	fail        error
	down        bool // Check fails
	flows       []string
	sweeps      []string
	inflight    int
	maxInflight int
}

func (s *stubTransport) setFail(err error) {
	s.mu.Lock()
	s.fail = err
	s.mu.Unlock()
}

func (s *stubTransport) setDown(down bool) {
	s.mu.Lock()
	s.down = down
	s.mu.Unlock()
}

func (s *stubTransport) flowCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.flows)
}

func (s *stubTransport) sweepCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.sweeps)
}

func (s *stubTransport) wait(ctx context.Context) error {
	if s.delay <= 0 {
		return nil
	}
	t := time.NewTimer(s.delay)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

func (s *stubTransport) Flow(ctx context.Context, req *serve.FlowRequest, _ *obs.Tracer) (*serve.FlowResponse, Meta, error) {
	s.mu.Lock()
	s.flows = append(s.flows, req.Bench)
	fail := s.fail
	s.mu.Unlock()
	if err := s.wait(ctx); err != nil {
		return nil, Meta{}, err
	}
	if fail != nil {
		return nil, Meta{}, fail
	}
	return &serve.FlowResponse{Key: "flow:" + req.Bench, Bench: req.Bench, Scheme: s.name}, Meta{Cache: s.cache}, nil
}

// Sweep models a serial worker: one delay per arm. The cluster path
// always sends single-arm sweeps; the standalone path sends the whole
// batch to its one backend.
func (s *stubTransport) Sweep(ctx context.Context, req *serve.SweepRequest, _ *obs.Tracer) (*serve.SweepResponse, Meta, error) {
	s.mu.Lock()
	for _, a := range req.Arms {
		s.sweeps = append(s.sweeps, a.Scheme+":"+a.Corner)
	}
	fail := s.fail
	s.inflight++
	if s.inflight > s.maxInflight {
		s.maxInflight = s.inflight
	}
	s.mu.Unlock()
	defer func() {
		s.mu.Lock()
		s.inflight--
		s.mu.Unlock()
	}()
	for range req.Arms {
		if err := s.wait(ctx); err != nil {
			return nil, Meta{}, err
		}
	}
	if fail != nil {
		return nil, Meta{}, fail
	}
	results := make([]serve.SweepArmResult, len(req.Arms))
	for i, a := range req.Arms {
		results[i] = serve.SweepArmResult{Scheme: a.Scheme}
	}
	return &serve.SweepResponse{
		Bench: req.Bench,
		Sinks: 7,
		Arms:  results,
	}, Meta{Cache: s.cache}, nil
}

func (s *stubTransport) Check(ctx context.Context) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.down {
		return &StatusError{Code: 503, Msg: "stub down"}
	}
	return nil
}

// newStubCluster builds a runner over n stub backends named w0..wN-1.
func newStubCluster(t *testing.T, n int, mut func(cfg *Config), delays ...time.Duration) (*Runner, []*stubTransport) {
	t.Helper()
	stubs := make([]*stubTransport, n)
	specs := make([]BackendSpec, n)
	for i := range stubs {
		var d time.Duration
		if i < len(delays) {
			d = delays[i]
		}
		stubs[i] = &stubTransport{name: fmt.Sprintf("w%d", i), delay: d}
		specs[i] = BackendSpec{Name: stubs[i].name, Transport: stubs[i]}
	}
	cfg := Config{Local: keyRunner{}, Backends: specs}
	if mut != nil {
		mut(&cfg)
	}
	r, err := NewRunner(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return r, stubs
}

// benchOwnedBy generates distinct flow bench names whose canonical keys
// are owned by backend idx, using the runner's real ring.
func benchOwnedBy(r *Runner, idx, count int, tag string) []string {
	var out []string
	for i := 0; len(out) < count; i++ {
		bench := fmt.Sprintf("%s-%d", tag, i)
		if r.Ring().Owner("flow:"+bench) == idx {
			out = append(out, bench)
		}
	}
	return out
}

func TestRunnerFlowRoutesToOwner(t *testing.T) {
	r, stubs := newStubCluster(t, 3, func(cfg *Config) { cfg.DisableHedge = true })
	for i := 0; i < 3; i++ {
		bench := benchOwnedBy(r, i, 1, fmt.Sprintf("route%d", i))[0]
		resp, err := r.RunFlow(context.Background(), &serve.FlowRequest{Bench: bench}, nil)
		if err != nil {
			t.Fatal(err)
		}
		if resp.Scheme != stubs[i].name {
			t.Errorf("bench %q served by %s, want owner %s", bench, resp.Scheme, stubs[i].name)
		}
	}
	total := 0
	for _, s := range stubs {
		total += s.flowCount()
	}
	if total != 3 {
		t.Errorf("backends saw %d calls total, want exactly 3 (one per request, no duplicates)", total)
	}
}

func TestRunnerFlowFailsOverOnRetryableError(t *testing.T) {
	r, stubs := newStubCluster(t, 3, func(cfg *Config) { cfg.DisableHedge = true })
	bench := benchOwnedBy(r, 0, 1, "failover")[0]
	stubs[0].setFail(&StatusError{Code: 500, Msg: "shard wedged"})

	resp, err := r.RunFlow(context.Background(), &serve.FlowRequest{Bench: bench}, nil)
	if err != nil {
		t.Fatalf("failover did not rescue the call: %v", err)
	}
	seq := r.Ring().Sequence("flow:"+bench, nil)
	if want := stubs[seq[1]].name; resp.Scheme != want {
		t.Errorf("failover served by %s, want next-in-sequence %s", resp.Scheme, want)
	}
	// The retryable failure took the owner out of rotation.
	if r.healthy(r.backends[0]) {
		t.Error("owner still healthy after a retryable failure")
	}
	// Subsequent calls for the same key skip the down owner entirely.
	resp2, err := r.RunFlow(context.Background(), &serve.FlowRequest{Bench: bench}, nil)
	if err != nil || resp2.Scheme == stubs[0].name {
		t.Errorf("down owner still receiving calls: scheme=%s err=%v", resp2.Scheme, err)
	}
}

func TestRunnerFlowRequestErrorDoesNotFailOver(t *testing.T) {
	r, stubs := newStubCluster(t, 3, func(cfg *Config) { cfg.DisableHedge = true })
	bench := benchOwnedBy(r, 1, 1, "badreq")[0]
	stubs[1].setFail(&StatusError{Code: 400, Msg: "bad request"})

	_, err := r.RunFlow(context.Background(), &serve.FlowRequest{Bench: bench}, nil)
	var se *StatusError
	if !errors.As(err, &se) || se.Code != 400 {
		t.Fatalf("err = %v, want the owner's 400", err)
	}
	for i, s := range stubs {
		if i != 1 && s.flowCount() != 0 {
			t.Errorf("backend %d saw %d calls for a non-retryable failure, want 0", i, s.flowCount())
		}
	}
	if !r.healthy(r.backends[1]) {
		t.Error("a 400 marked the backend down; only retryable failures may")
	}
}

func TestRunnerSweepFansOutAndKeepsArmOrder(t *testing.T) {
	r, stubs := newStubCluster(t, 3, func(cfg *Config) { cfg.DisableHedge = true })
	arms := make([]serve.SweepArm, 12)
	for i := range arms {
		arms[i] = serve.SweepArm{Scheme: fmt.Sprintf("s%02d", i), Corner: "typ"}
	}
	req := &serve.SweepRequest{Bench: "fan", Arms: arms, Workers: 5}
	resp, err := r.RunSweep(context.Background(), req, nil)
	if err != nil {
		t.Fatal(err)
	}
	wantKey, _ := keyRunner{}.SweepKey(req)
	if resp.Key != wantKey {
		t.Errorf("sweep key = %q, want the full-sweep key %q", resp.Key, wantKey)
	}
	if resp.Bench != "fan" || resp.Sinks != 7 {
		t.Errorf("envelope = %+v, want bench/sinks from the arm responses", resp)
	}
	if len(resp.Arms) != len(arms) {
		t.Fatalf("got %d arm results, want %d", len(resp.Arms), len(arms))
	}
	for i, a := range resp.Arms {
		if a.Scheme != arms[i].Scheme {
			t.Errorf("arm %d = %q, want %q (results must be index-ordered)", i, a.Scheme, arms[i].Scheme)
		}
	}
	// Every arm landed somewhere, and each arm's owner (per the ring)
	// is the backend that served it.
	total := 0
	for _, s := range stubs {
		total += s.sweepCount()
	}
	if total != len(arms) {
		t.Errorf("backends saw %d single-arm sweeps, want %d", total, len(arms))
	}
	for i := range arms {
		armKey, _ := keyRunner{}.SweepKey(singleArm(req, i))
		owner := r.Ring().Owner(armKey)
		stubs[owner].mu.Lock()
		served := false
		for _, got := range stubs[owner].sweeps {
			if got == arms[i].Scheme+":"+arms[i].Corner {
				served = true
			}
		}
		stubs[owner].mu.Unlock()
		if !served {
			t.Errorf("arm %d did not land on its owner w%d", i, owner)
		}
	}
}

func TestRunnerRemoteCacheCountsInShardStats(t *testing.T) {
	r, stubs := newStubCluster(t, 2, func(cfg *Config) { cfg.DisableHedge = true })
	stubs[0].cache = serve.CacheHit
	stubs[1].cache = serve.CacheMiss
	for i := 0; i < 2; i++ {
		bench := benchOwnedBy(r, i, 1, fmt.Sprintf("tally%d", i))[0]
		if _, err := r.RunFlow(context.Background(), &serve.FlowRequest{Bench: bench}, nil); err != nil {
			t.Fatal(err)
		}
	}
	stats := r.ShardStats()
	if len(stats) != 2 {
		t.Fatalf("ShardStats len = %d, want 2", len(stats))
	}
	if stats[0].RemoteHits != 1 || stats[0].RemoteMisses != 0 {
		t.Errorf("w0 stats = %+v, want 1 remote hit", stats[0])
	}
	if stats[1].RemoteMisses != 1 || stats[1].RemoteHits != 0 {
		t.Errorf("w1 stats = %+v, want 1 remote miss", stats[1])
	}
	for i, st := range stats {
		if st.Requests != 1 || !st.Healthy || st.InFlight != 0 {
			t.Errorf("shard %d stats = %+v, want 1 request, healthy, idle", i, st)
		}
	}
}

func TestRunnerProbeMarksDownAndRecovers(t *testing.T) {
	r, stubs := newStubCluster(t, 3, nil)
	stubs[2].setDown(true)
	r.Probe(context.Background())
	if r.healthy(r.backends[2]) {
		t.Fatal("backend failing its health check still marked healthy")
	}
	// Routing prefers healthy backends: a key owned by w2 is served
	// elsewhere while w2 is down.
	bench := benchOwnedBy(r, 2, 1, "probe")[0]
	resp, err := r.RunFlow(context.Background(), &serve.FlowRequest{Bench: bench}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Scheme == stubs[2].name {
		t.Errorf("down backend served the call")
	}
	stubs[2].setDown(false)
	r.Probe(context.Background())
	if !r.healthy(r.backends[2]) {
		t.Fatal("recovered backend not marked healthy by probe")
	}
}

func TestRunnerAllBackendsDownFailsOpen(t *testing.T) {
	r, stubs := newStubCluster(t, 2, func(cfg *Config) { cfg.DisableHedge = true })
	stubs[0].setDown(true)
	stubs[1].setDown(true)
	r.Probe(context.Background())
	// Every backend is in cooldown, but the fleet still serves: down
	// backends stay eligible rather than turning the frontend into a
	// brick.
	resp, err := r.RunFlow(context.Background(), &serve.FlowRequest{Bench: "failopen"}, nil)
	if err != nil || resp == nil {
		t.Fatalf("fully-down fleet refused the call: %v", err)
	}
}

func TestRunnerStandaloneUsesLoopback(t *testing.T) {
	r, err := NewRunner(Config{Local: keyRunner{}})
	if err != nil {
		t.Fatal(err)
	}
	if !r.Standalone() {
		t.Fatal("empty backend list should be standalone")
	}
	resp, err := r.RunFlow(context.Background(), &serve.FlowRequest{Bench: "solo"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Scheme != "local" {
		t.Errorf("standalone flow served by %q, want the local runner", resp.Scheme)
	}
	stats := r.ShardStats()
	if len(stats) != 1 || stats[0].Requests != 1 {
		t.Errorf("standalone ShardStats = %+v, want one shard with one request", stats)
	}
}

func TestRunnerConfigValidation(t *testing.T) {
	if _, err := NewRunner(Config{}); err == nil {
		t.Error("NewRunner accepted a nil Local runner")
	}
	_, err := NewRunner(Config{Local: keyRunner{}, Backends: []BackendSpec{
		{Name: "dup", URL: "http://a"}, {Name: "dup", URL: "http://b"},
	}})
	if err == nil {
		t.Error("NewRunner accepted duplicate backend names")
	}
}

func TestRunnerHedgeDelayTracksFastestHealthyBackend(t *testing.T) {
	r, _ := newStubCluster(t, 2, nil)
	// Before any window is warm the default applies.
	if got := r.hedgeDelay(); got != 100*time.Millisecond {
		t.Errorf("cold hedge delay = %v, want the 100ms default", got)
	}
	// Warm w0 slow, w1 fast: the delay must follow the fastest healthy
	// backend, not the slowest — that is what routes around a degraded
	// shard.
	for i := 0; i < 16; i++ {
		r.backends[0].window.Observe(0.500)
		r.backends[1].window.Observe(0.010)
	}
	if got := r.hedgeDelay(); got != 10*time.Millisecond {
		t.Errorf("hedge delay = %v, want the fast backend's 10ms p95", got)
	}
	// With the fast backend down, the slow one's p95 governs.
	r.markDown(r.backends[1])
	if got := r.hedgeDelay(); got != 500*time.Millisecond {
		t.Errorf("hedge delay with w1 down = %v, want 500ms", got)
	}
	// The clamp floors tiny windows.
	r.markUp(r.backends[1])
	for i := 0; i < 140; i++ {
		r.backends[1].window.Observe(0.0001)
	}
	if got := r.hedgeDelay(); got != 2*time.Millisecond {
		t.Errorf("hedge delay = %v, want the 2ms floor", got)
	}
}

// TestClusterSweepThroughputScales is the scaling half of the PR's
// perf contract: the same sweep against 1 and 3 backends (each a
// serial 5ms-per-arm worker) must finish at least 2× faster on 3. The
// arm set is chosen so the ring splits it evenly — this measures
// fan-out, not hash luck.
func TestClusterSweepThroughputScales(t *testing.T) {
	if testing.Short() {
		t.Skip("timing test is not a -short test")
	}
	const perBackend = 12
	const armDelay = 5 * time.Millisecond

	mut := func(cfg *Config) {
		cfg.DisableHedge = true
		cfg.BackendConcurrent = 1 // serial per backend: wall clock ∝ widest shard
		cfg.BackendQueue = 4 * perBackend
	}
	r3, _ := newStubCluster(t, 3, mut, armDelay, armDelay, armDelay)
	r1, _ := newStubCluster(t, 1, mut, armDelay)

	// Pick perBackend arms owned by each of r3's backends. r1 has a
	// single backend, so the same arms serialize there.
	var arms []serve.SweepArm
	counts := make([]int, 3)
	for i := 0; len(arms) < 3*perBackend; i++ {
		arm := serve.SweepArm{Scheme: fmt.Sprintf("arm%03d", i), Corner: "typ"}
		probe := &serve.SweepRequest{Bench: "scale", Arms: []serve.SweepArm{arm}}
		key, _ := keyRunner{}.SweepKey(probe)
		owner := r3.Ring().Owner(key)
		if counts[owner] < perBackend {
			counts[owner]++
			arms = append(arms, arm)
		}
	}
	req := &serve.SweepRequest{Bench: "scale", Arms: arms}

	t0 := time.Now()
	if _, err := r1.RunSweep(context.Background(), req, nil); err != nil {
		t.Fatal(err)
	}
	oneBackend := time.Since(t0)

	t0 = time.Now()
	if _, err := r3.RunSweep(context.Background(), req, nil); err != nil {
		t.Fatal(err)
	}
	threeBackends := time.Since(t0)

	speedup := float64(oneBackend) / float64(threeBackends)
	t.Logf("sweep %d arms × %v: 1 backend %v, 3 backends %v (%.2fx)",
		len(arms), armDelay, oneBackend, threeBackends, speedup)
	if speedup < 2.0 {
		t.Errorf("3-backend sweep is only %.2fx faster than 1 backend (%v vs %v), want >= 2x",
			speedup, oneBackend, threeBackends)
	}
}

// TestClusterHedgingCutsTailLatency is the tail half of the perf
// contract: with one backend injected 10× slow, hedged retries must
// cut the p99 of calls owned by the slow shard by at least 2× versus
// no hedging.
func TestClusterHedgingCutsTailLatency(t *testing.T) {
	if testing.Short() {
		t.Skip("timing test is not a -short test")
	}
	const fastDelay = 3 * time.Millisecond
	const slowDelay = 10 * fastDelay // one shard injected 10× slow

	build := func(disable bool) (*Runner, []*stubTransport) {
		return newStubCluster(t, 3, func(cfg *Config) {
			cfg.DisableHedge = disable
		}, slowDelay, fastDelay, fastDelay) // w0 is the degraded shard
	}
	hedged, _ := build(false)
	plain, _ := build(true)

	// Warm every backend's latency window through real routed calls so
	// the adaptive delay is live (the fast shards' p95, ~2ms) before
	// measurement starts.
	warm := func(r *Runner) {
		for i := 0; i < 3; i++ {
			for _, bench := range benchOwnedBy(r, i, 10, fmt.Sprintf("warm%d", i)) {
				if _, err := r.RunFlow(context.Background(), &serve.FlowRequest{Bench: bench}, nil); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	warm(hedged)
	warm(plain)

	p99 := func(r *Runner) time.Duration {
		benches := benchOwnedBy(r, 0, 40, "tail")
		lat := make([]time.Duration, 0, len(benches))
		for _, bench := range benches {
			t0 := time.Now()
			if _, err := r.RunFlow(context.Background(), &serve.FlowRequest{Bench: bench}, nil); err != nil {
				t.Fatal(err)
			}
			lat = append(lat, time.Since(t0))
		}
		sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
		return lat[len(lat)*99/100]
	}

	plainP99 := p99(plain)
	hedgedP99 := p99(hedged)
	cut := float64(plainP99) / float64(hedgedP99)
	t.Logf("slow-shard p99: no hedge %v, hedged %v (%.2fx cut)", plainP99, hedgedP99, cut)
	if cut < 2.0 {
		t.Errorf("hedging cut p99 only %.2fx (%v vs %v), want >= 2x", cut, plainP99, hedgedP99)
	}

	stats := hedged.ShardStats()
	wins := uint64(0)
	for _, st := range stats {
		wins += st.HedgeWins
	}
	if wins == 0 {
		t.Error("no hedge wins recorded although the owner shard is 100x slower than the hedge delay")
	}
	for _, st := range plain.ShardStats() {
		if st.Hedges != 0 {
			t.Errorf("DisableHedge runner recorded %d hedges on %s", st.Hedges, st.Shard)
		}
	}
}

// --- error classification and health-signal regressions ---

// wrapErrTransport mimics the real HTTP client's error surface: every
// transport error comes back wrapped in *url.Error, which is how
// http.Client.Do reports a canceled request. The raw-error stubs above
// are exactly how an ==-based cancellation check slips past tests.
type wrapErrTransport struct{ inner Transport }

func (w wrapErrTransport) Flow(ctx context.Context, req *serve.FlowRequest, tr *obs.Tracer) (*serve.FlowResponse, Meta, error) {
	resp, m, err := w.inner.Flow(ctx, req, tr)
	if err != nil {
		err = &url.Error{Op: "Post", URL: "http://stub/v1/flow", Err: err}
	}
	return resp, m, err
}

func (w wrapErrTransport) Sweep(ctx context.Context, req *serve.SweepRequest, tr *obs.Tracer) (*serve.SweepResponse, Meta, error) {
	resp, m, err := w.inner.Sweep(ctx, req, tr)
	if err != nil {
		err = &url.Error{Op: "Post", URL: "http://stub/v1/sweep", Err: err}
	}
	return resp, m, err
}

func (w wrapErrTransport) Check(ctx context.Context) error { return w.inner.Check(ctx) }

func TestRetryableClassification(t *testing.T) {
	cases := []struct {
		name      string
		err       error
		retryable bool
		marksDown bool
	}{
		{"nil", nil, false, false},
		{"raw cancel", context.Canceled, false, false},
		{"wrapped cancel", &url.Error{Op: "Post", URL: "http://w0/v1/flow", Err: context.Canceled}, false, false},
		{"wrapped deadline", fmt.Errorf("call: %w", context.DeadlineExceeded), false, false},
		{"status 500", &StatusError{Code: 500, Msg: "wedged"}, true, true},
		{"wrapped 429", fmt.Errorf("call: %w", &StatusError{Code: 429, Msg: "busy"}), true, true},
		{"status 400", &StatusError{Code: 400, Msg: "bad"}, false, false},
		{"network", &url.Error{Op: "Post", URL: "http://w0/v1/flow", Err: errors.New("connection refused")}, true, true},
		{"gate saturated", par.ErrSaturated, true, false},
	}
	for _, tc := range cases {
		if got := retryable(tc.err); got != tc.retryable {
			t.Errorf("%s: retryable = %v, want %v", tc.name, got, tc.retryable)
		}
		if got := marksDown(tc.err); got != tc.marksDown {
			t.Errorf("%s: marksDown = %v, want %v", tc.name, got, tc.marksDown)
		}
	}
}

// TestHedgeWinDoesNotMarkDownCanceledLoser pins the membership-flap
// regression: par.Hedge cancels the losing branch on every hedge win,
// the HTTP client reports that as a *url.Error wrapping
// context.Canceled, and that must never count as a backend failure —
// otherwise every hedge win puts a healthy shard into cooldown and
// reorders ring ownership.
func TestHedgeWinDoesNotMarkDownCanceledLoser(t *testing.T) {
	r, stubs := newStubCluster(t, 2, func(cfg *Config) {
		cfg.HedgeAfter = 2 * time.Millisecond
		for i := range cfg.Backends {
			cfg.Backends[i].Transport = wrapErrTransport{inner: cfg.Backends[i].Transport}
		}
	}, 250*time.Millisecond, 0) // w0 straggles; w1 answers instantly

	bench := benchOwnedBy(r, 0, 1, "loser")[0]
	resp, err := r.RunFlow(context.Background(), &serve.FlowRequest{Bench: bench}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Scheme != stubs[1].name {
		t.Fatalf("winner = %s, want the hedge backup %s", resp.Scheme, stubs[1].name)
	}
	// Wait for the canceled loser to unwind its exec — once its gate
	// slot is back, its health verdict has been rendered.
	deadline := time.Now().Add(2 * time.Second)
	for r.backends[0].gate.Held() != 0 {
		if time.Now().After(deadline) {
			t.Fatal("loser never released its gate slot")
		}
		time.Sleep(time.Millisecond)
	}
	if !r.healthy(r.backends[0]) {
		t.Error("hedge win marked the slow-but-healthy loser down (wrapped cancel treated as backend failure)")
	}
	if _, n := r.backends[0].window.Quantile(0.95); n != 0 {
		t.Errorf("canceled loser fed %d samples into w0's hedge window, want 0", n)
	}
}

// TestSaturatedOwnerFailsOverWithoutMarkDown pins the split between
// "fail over" and "mark down": par.ErrSaturated from the frontend's
// own per-backend gate moves the call to the next replica but leaves
// the owner in rotation.
func TestSaturatedOwnerFailsOverWithoutMarkDown(t *testing.T) {
	r, stubs := newStubCluster(t, 2, func(cfg *Config) {
		cfg.DisableHedge = true
		cfg.BackendConcurrent = 1
		cfg.BackendQueue = 1
	})
	bench := benchOwnedBy(r, 0, 1, "sat")[0]

	// Fill the owner's slot and wait line so its next Acquire refuses.
	g := r.backends[0].gate
	rel, err := g.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	waiterDone := make(chan struct{})
	go func() {
		defer close(waiterDone)
		if rel2, err := g.Acquire(context.Background()); err == nil {
			rel2()
		}
	}()
	for g.Waiting() != 1 {
		runtime.Gosched()
	}

	resp, err := r.RunFlow(context.Background(), &serve.FlowRequest{Bench: bench}, nil)
	if err != nil {
		t.Fatalf("saturated owner did not fail over: %v", err)
	}
	if resp.Scheme != stubs[1].name {
		t.Errorf("served by %s, want failover to %s", resp.Scheme, stubs[1].name)
	}
	if !r.healthy(r.backends[0]) {
		t.Error("frontend-side saturation marked the owner down; it is not a health signal")
	}
	// The per-shard and fleet error series advanced together on the
	// refusal.
	if got, shard := r.reg.Counter("cluster.errors"), r.backends[0].errors.Load(); shard != 1 || got != float64(shard) {
		t.Errorf("cluster.errors=%v shard errors=%d, want both 1", got, shard)
	}
	rel()
	<-waiterDone
}

// TestFailedCallsDoNotFeedHedgeWindow: only successes may feed the
// adaptive hedge timing — near-zero failure samples would drag the p95
// into ever more aggressive hedging.
func TestFailedCallsDoNotFeedHedgeWindow(t *testing.T) {
	r, stubs := newStubCluster(t, 2, func(cfg *Config) { cfg.DisableHedge = true })
	bench := benchOwnedBy(r, 0, 1, "window")[0]
	stubs[0].setFail(&StatusError{Code: 500, Msg: "boom"})
	if _, err := r.RunFlow(context.Background(), &serve.FlowRequest{Bench: bench}, nil); err != nil {
		t.Fatal(err) // rescued by failover
	}
	if _, n := r.backends[0].window.Quantile(0.95); n != 0 {
		t.Errorf("failed call fed %d samples into w0's hedge window, want 0", n)
	}
	if _, n := r.backends[1].window.Quantile(0.95); n != 1 {
		t.Errorf("successful failover fed %d samples into w1's window, want 1", n)
	}
}

// TestClusterSweepHonorsWorkersBound: a client-requested Workers bound
// caps the clustered arm fan-out just as it does standalone.
func TestClusterSweepHonorsWorkersBound(t *testing.T) {
	r, stubs := newStubCluster(t, 3, func(cfg *Config) { cfg.DisableHedge = true },
		2*time.Millisecond, 2*time.Millisecond, 2*time.Millisecond)
	arms := make([]serve.SweepArm, 12)
	for i := range arms {
		arms[i] = serve.SweepArm{Scheme: fmt.Sprintf("wb%02d", i), Corner: "typ"}
	}
	req := &serve.SweepRequest{Bench: "bound", Arms: arms, Workers: 1}
	if _, err := r.RunSweep(context.Background(), req, nil); err != nil {
		t.Fatal(err)
	}
	for i, s := range stubs {
		s.mu.Lock()
		max := s.maxInflight
		s.mu.Unlock()
		if max > 1 {
			t.Errorf("backend %d saw %d concurrent arms with Workers=1, want <= 1", i, max)
		}
	}
}
