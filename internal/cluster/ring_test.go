package cluster

import (
	"fmt"
	"testing"
)

func ringKeys(n int) []string {
	keys := make([]string, n)
	for i := range keys {
		keys[i] = fmt.Sprintf("key-%04d", i)
	}
	return keys
}

func TestRingPlacementIgnoresListOrder(t *testing.T) {
	// Ownership must be a pure function of the name set: every frontend
	// in a fleet computes the same placement no matter how its -backends
	// flag happened to be ordered.
	a := NewRing([]string{"w1", "w2", "w3"}, 0)
	b := NewRing([]string{"w3", "w1", "w2"}, 0)
	namesA := []string{"w1", "w2", "w3"}
	namesB := []string{"w3", "w1", "w2"}
	for _, key := range ringKeys(500) {
		if namesA[a.Owner(key)] != namesB[b.Owner(key)] {
			t.Fatalf("key %q owned by %s in one ordering, %s in another",
				key, namesA[a.Owner(key)], namesB[b.Owner(key)])
		}
	}
}

func TestRingOwnerIsDeterministic(t *testing.T) {
	r := NewRing([]string{"w1", "w2", "w3"}, 0)
	for _, key := range ringKeys(100) {
		first := r.Owner(key)
		for i := 0; i < 3; i++ {
			if got := r.Owner(key); got != first {
				t.Fatalf("key %q owner flapped: %d then %d", key, first, got)
			}
		}
	}
}

func TestRingBalance(t *testing.T) {
	// With 64 vnodes per backend the arcs even out; no shard should own
	// a wildly disproportionate share of a uniform keyspace.
	r := NewRing([]string{"w1", "w2", "w3"}, 0)
	counts := make([]int, 3)
	keys := ringKeys(9000)
	for _, key := range keys {
		counts[r.Owner(key)]++
	}
	for i, c := range counts {
		share := float64(c) / float64(len(keys))
		if share < 0.15 || share > 0.55 {
			t.Errorf("backend %d owns %.1f%% of keys (counts %v); ring is badly unbalanced",
				i, 100*share, counts)
		}
	}
}

func TestRingSequenceCoversAllBackendsOnce(t *testing.T) {
	const n = 5
	names := make([]string, n)
	for i := range names {
		names[i] = fmt.Sprintf("w%d", i)
	}
	r := NewRing(names, 0)
	var buf []int
	for _, key := range ringKeys(200) {
		buf = r.Sequence(key, buf)
		if len(buf) != n {
			t.Fatalf("key %q sequence has %d entries, want %d: %v", key, len(buf), n, buf)
		}
		seen := make([]bool, n)
		for _, b := range buf {
			if b < 0 || b >= n || seen[b] {
				t.Fatalf("key %q sequence %v repeats or escapes [0,%d)", key, buf, n)
			}
			seen[b] = true
		}
		if buf[0] != r.Owner(key) {
			t.Fatalf("key %q sequence starts at %d, owner is %d", key, buf[0], r.Owner(key))
		}
	}
}

func TestRingRemovalMovesOnlyTheRemovedArc(t *testing.T) {
	// The consistent-hashing contract: dropping w3 reassigns only the
	// keys w3 owned. Every key owned by w1 or w2 keeps its owner.
	full := NewRing([]string{"w1", "w2", "w3"}, 0)
	reduced := NewRing([]string{"w1", "w2"}, 0)
	names := []string{"w1", "w2", "w3"}
	moved := 0
	for _, key := range ringKeys(2000) {
		was := names[full.Owner(key)]
		if was == "w3" {
			moved++
			continue
		}
		if now := names[reduced.Owner(key)]; now != was {
			t.Fatalf("key %q moved from %s to %s although only w3 was removed", key, was, now)
		}
	}
	if moved == 0 {
		t.Fatal("w3 owned no keys; the ring test is vacuous")
	}
}

func TestRingDegenerateSizes(t *testing.T) {
	empty := NewRing(nil, 0)
	if got := empty.Owner("k"); got != -1 {
		t.Errorf("empty ring Owner = %d, want -1", got)
	}
	if seq := empty.Sequence("k", nil); len(seq) != 0 {
		t.Errorf("empty ring Sequence = %v, want empty", seq)
	}
	one := NewRing([]string{"solo"}, 0)
	for _, key := range ringKeys(20) {
		if got := one.Owner(key); got != 0 {
			t.Errorf("single-backend ring Owner(%q) = %d, want 0", key, got)
		}
	}
	if seq := one.Sequence("k", nil); len(seq) != 1 || seq[0] != 0 {
		t.Errorf("single-backend ring Sequence = %v, want [0]", seq)
	}
}
