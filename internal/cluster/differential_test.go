package cluster

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"

	"smartndr/internal/serve"
	"smartndr/internal/testutil"
)

// The cluster differential suite pins the PR's core promise: a 3-node
// cluster (frontend + two HTTP workers, with the frontend itself
// owning a loopback shard) and a loopback-standalone node return the
// exact bytes a single-node smartndrd returns, for every endpoint, at
// any worker count. The cluster layer is a routing detail — never a
// semantic one.

// newWorkerServer starts a real single-node smartndrd HTTP surface.
func newWorkerServer(t *testing.T) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(serve.New(serve.Config{}).Handler())
	t.Cleanup(ts.Close)
	return ts
}

// newClusterServer starts a frontend over two HTTP workers plus its
// own loopback shard — the 3-node topology from docs/service.md.
func newClusterServer(t *testing.T) *httptest.Server {
	t.Helper()
	w1 := newWorkerServer(t)
	w2 := newWorkerServer(t)
	runner, err := NewRunner(Config{
		Local: &serve.FlowRunner{},
		Backends: []BackendSpec{
			{Name: "w1", URL: w1.URL},
			{Name: "w2", URL: w2.URL},
			{Name: "self"}, // loopback shard on the frontend itself
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(serve.New(serve.Config{Runner: runner}).Handler())
	t.Cleanup(ts.Close)
	return ts
}

// newStandaloneClusterServer starts a node whose runner is the cluster
// layer in loopback-standalone mode — the default single-binary path.
func newStandaloneClusterServer(t *testing.T) *httptest.Server {
	t.Helper()
	runner, err := NewRunner(Config{Local: &serve.FlowRunner{}})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(serve.New(serve.Config{Runner: runner}).Handler())
	t.Cleanup(ts.Close)
	return ts
}

func clusterPost(t *testing.T, ts *httptest.Server, path string, v any) (*http.Response, []byte) {
	t.Helper()
	body, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+path, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp, buf.Bytes()
}

func TestClusterFlowByteIdenticalToSingleNode(t *testing.T) {
	if testing.Short() {
		t.Skip("differential cluster test is not a -short test")
	}
	single := newWorkerServer(t)
	cluster := newClusterServer(t)
	standalone := newStandaloneClusterServer(t)

	for i := 0; i < 4; i++ {
		spec := testutil.UniformSpec(fmt.Sprintf("cdiff%d", i), 24, 600, int64(100+i))
		req := &serve.FlowRequest{Spec: &spec, Scheme: "smart-ndr"}

		refResp, ref := clusterPost(t, single, "/v1/flow", req)
		if refResp.StatusCode != http.StatusOK {
			t.Fatalf("spec %d: single-node status %d: %s", i, refResp.StatusCode, ref)
		}
		clResp, cl := clusterPost(t, cluster, "/v1/flow", req)
		if clResp.StatusCode != http.StatusOK {
			t.Fatalf("spec %d: cluster status %d: %s", i, clResp.StatusCode, cl)
		}
		if !bytes.Equal(ref, cl) {
			t.Errorf("spec %d: cluster flow differs from single node:\n%s\n%s", i, ref, cl)
		}
		if refResp.Header.Get("X-Key") != clResp.Header.Get("X-Key") {
			t.Errorf("spec %d: keys differ: %s vs %s",
				i, refResp.Header.Get("X-Key"), clResp.Header.Get("X-Key"))
		}
		_, sa := clusterPost(t, standalone, "/v1/flow", req)
		if !bytes.Equal(ref, sa) {
			t.Errorf("spec %d: standalone-cluster flow differs from single node:\n%s\n%s", i, ref, sa)
		}

		// A warm replay through the frontend cache is the cold bytes.
		_, warm := clusterPost(t, cluster, "/v1/flow", req)
		if !bytes.Equal(cl, warm) {
			t.Errorf("spec %d: cluster warm replay differs from its cold response", i)
		}
	}
}

func TestClusterSweepByteIdenticalAtAnyWorkerCount(t *testing.T) {
	if testing.Short() {
		t.Skip("differential cluster test is not a -short test")
	}
	spec := testutil.UniformSpec("cdiffsweep", 32, 700, 21)
	arms := []serve.SweepArm{
		{Scheme: "all-default"},
		{Scheme: "blanket", Corner: "slow"},
		{Scheme: "top-k", Corner: "fast"},
		{Scheme: "trunk"},
		{Scheme: "smart", Corner: "typ"},
	}
	single := newWorkerServer(t)
	refResp, ref := clusterPost(t, single, "/v1/sweep",
		&serve.SweepRequest{Spec: &spec, Arms: arms, Workers: 1})
	if refResp.StatusCode != http.StatusOK {
		t.Fatalf("single-node sweep status %d: %s", refResp.StatusCode, ref)
	}

	// Fresh cluster per worker count so every run is cold end to end
	// (the sweep key excludes Workers; a shared frontend would replay
	// its cache and make the comparison vacuous).
	for _, workers := range []int{1, 2, 8} {
		cluster := newClusterServer(t)
		clResp, cl := clusterPost(t, cluster, "/v1/sweep",
			&serve.SweepRequest{Spec: &spec, Arms: arms, Workers: workers})
		if clResp.StatusCode != http.StatusOK {
			t.Fatalf("workers=%d: cluster sweep status %d: %s", workers, clResp.StatusCode, cl)
		}
		if !bytes.Equal(ref, cl) {
			t.Errorf("workers=%d: cluster sweep differs from single node:\n%s\n%s", workers, ref, cl)
		}
		if refResp.Header.Get("X-Key") != clResp.Header.Get("X-Key") {
			t.Errorf("workers=%d: sweep keys differ: %s vs %s",
				workers, refResp.Header.Get("X-Key"), clResp.Header.Get("X-Key"))
		}
	}

	standalone := newStandaloneClusterServer(t)
	_, sa := clusterPost(t, standalone, "/v1/sweep",
		&serve.SweepRequest{Spec: &spec, Arms: arms, Workers: 3})
	if !bytes.Equal(ref, sa) {
		t.Errorf("standalone-cluster sweep differs from single node:\n%s\n%s", ref, sa)
	}
}

func TestClusterBatchByteIdenticalToSingleNode(t *testing.T) {
	if testing.Short() {
		t.Skip("differential cluster test is not a -short test")
	}
	specA := testutil.UniformSpec("cbatchA", 20, 500, 31)
	specB := testutil.UniformSpec("cbatchB", 28, 650, 32)
	batch := &serve.BatchRequest{Requests: []serve.FlowRequest{
		{Spec: &specA, Scheme: "smart-ndr"},
		{Spec: &specB, Scheme: "blanket-ndr"},
		{Spec: &specA, Scheme: "smart-ndr"}, // duplicate: shared flight, same bytes
	}}

	single := newWorkerServer(t)
	cluster := newClusterServer(t)
	standalone := newStandaloneClusterServer(t)

	refResp, ref := clusterPost(t, single, "/v1/batch", batch)
	if refResp.StatusCode != http.StatusOK {
		t.Fatalf("single-node batch status %d: %s", refResp.StatusCode, ref)
	}
	clResp, cl := clusterPost(t, cluster, "/v1/batch", batch)
	if clResp.StatusCode != http.StatusOK {
		t.Fatalf("cluster batch status %d: %s", clResp.StatusCode, cl)
	}
	if !bytes.Equal(ref, cl) {
		t.Errorf("cluster batch differs from single node:\n%s\n%s", ref, cl)
	}
	_, sa := clusterPost(t, standalone, "/v1/batch", batch)
	if !bytes.Equal(ref, sa) {
		t.Errorf("standalone-cluster batch differs from single node:\n%s\n%s", ref, sa)
	}

	// Item-level invariant: each item's flow bytes equal the standalone
	// /v1/flow bytes for the same request.
	var out serve.BatchResponse
	if err := json.Unmarshal(cl, &out); err != nil {
		t.Fatal(err)
	}
	if len(out.Results) != len(batch.Requests) {
		t.Fatalf("batch returned %d results, want %d", len(out.Results), len(batch.Requests))
	}
	for i, res := range out.Results {
		if res.Status != http.StatusOK {
			t.Fatalf("batch item %d status %d: %s", i, res.Status, res.Error)
		}
		_, flow := clusterPost(t, single, "/v1/flow", &batch.Requests[i])
		if !bytes.Equal(bytes.TrimSpace(flow), []byte(res.Flow)) {
			t.Errorf("batch item %d bytes differ from a standalone /v1/flow call:\n%s\n%s",
				i, flow, res.Flow)
		}
	}
}
