// Package workload generates clock-tree benchmarks: sink placements and
// pin capacitances with the statistical shapes of the standard CTS
// benchmark suites (uniform ISPD-CNS-style floorplans, register banks,
// clustered SoC blocks, perimeter-heavy I/O designs). Every generator is
// deterministic in its seed, and sharded specs (Shard > 0) generate
// byte-identically on any number of workers.
package workload

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"sort"
	"strconv"

	"smartndr/internal/ctree"
	"smartndr/internal/geom"
	"smartndr/internal/par"
)

// Distribution selects the sink placement shape.
type Distribution int

const (
	// Uniform scatters sinks uniformly over the die.
	Uniform Distribution = iota
	// Clustered places sinks in Gaussian clumps (register banks around
	// datapath blocks), plus a uniform background.
	Clustered
	// Perimeter concentrates sinks near the die edges (I/O registers)
	// with a sparse center.
	Perimeter
	// Grid places sinks on a jittered regular grid (datapath arrays).
	Grid
)

// String implements fmt.Stringer.
func (d Distribution) String() string {
	switch d {
	case Uniform:
		return "uniform"
	case Clustered:
		return "clustered"
	case Perimeter:
		return "perimeter"
	case Grid:
		return "grid"
	default:
		return fmt.Sprintf("distribution(%d)", int(d))
	}
}

// Spec describes one benchmark.
type Spec struct {
	Name   string       `json:"name"`
	Dist   Distribution `json:"dist"`
	Sinks  int          `json:"sinks"`
	DieX   float64      `json:"die_x"`   // µm
	DieY   float64      `json:"die_y"`   // µm
	CapMin float64      `json:"cap_min"` // F
	CapMax float64      `json:"cap_max"` // F
	Seed   int64        `json:"seed"`
	// Clusters is the clump count for the Clustered distribution.
	Clusters int `json:"clusters,omitempty"`
	// Shard, when positive, carves generation into fixed index ranges of
	// that size, each drawn from its own SplitMix64 substream of Seed.
	// Sharded specs generate in parallel (GenerateP) with byte-identical
	// output at every worker count. Shard is part of the spec identity: a
	// sharded spec's sinks differ from the same spec unsharded, but never
	// from one run to the next.
	Shard int `json:"shard,omitempty"`
}

// Validate checks the spec.
func (s Spec) Validate() error {
	switch {
	case s.Name == "":
		return fmt.Errorf("workload: empty name")
	case s.Sinks <= 0:
		return fmt.Errorf("workload %s: non-positive sink count %d", s.Name, s.Sinks)
	case s.DieX <= 0 || s.DieY <= 0:
		return fmt.Errorf("workload %s: non-positive die", s.Name)
	case s.CapMin <= 0 || s.CapMax < s.CapMin:
		return fmt.Errorf("workload %s: bad cap range [%g, %g]", s.Name, s.CapMin, s.CapMax)
	case s.Shard < 0:
		return fmt.Errorf("workload %s: negative shard size %d", s.Name, s.Shard)
	}
	return nil
}

// Benchmark is a generated testcase.
type Benchmark struct {
	Spec  Spec         `json:"spec"`
	Sinks []ctree.Sink `json:"sinks"`
	Src   geom.Point   `json:"src"` // clock source location (die center)
}

// Generate produces the benchmark for a spec on one goroutine.
func Generate(s Spec) (*Benchmark, error) { return GenerateP(s, 1) }

// GenerateP produces the benchmark on up to workers goroutines. The
// output is a pure function of the spec: an unsharded spec always
// generates serially from a single stream (its historical byte layout
// is frozen — see the golden test), while a sharded spec draws every
// shard from its own substream, so the result is identical whether the
// shards ran on one worker or sixteen.
func GenerateP(s Spec, workers int) (*Benchmark, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	sinks := make([]ctree.Sink, s.Sinks)
	if s.Shard <= 0 {
		rng := rand.New(rand.NewSource(s.Seed))
		fillSinks(s, clusterCenters(s, rng), sinks, 0, rng)
	} else {
		// Centers come from a dedicated stream: the shard substreams must
		// not shift with however many draws the center setup consumed.
		centers := clusterCenters(s, rand.New(rand.NewSource(s.Seed)))
		shards := (s.Sinks + s.Shard - 1) / s.Shard
		//lint:allow ctxflow deterministic generator; cancelling a shard mid-run would violate the seeded-substream reproducibility contract
		err := par.ForEach(context.Background(), par.Workers(workers), shards, func(j int) error {
			var src par.Source
			src.Seed(par.SubstreamSeed(s.Seed, j))
			lo := j * s.Shard
			hi := min(lo+s.Shard, s.Sinks)
			fillSinks(s, centers, sinks[lo:hi], lo, rand.New(&src))
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	return &Benchmark{
		Spec:  s,
		Sinks: sinks,
		Src:   geom.Point{X: s.DieX / 2, Y: s.DieY / 2},
	}, nil
}

// fillSinks generates sinks for global indices [base, base+len(out))
// from rng. Per sink the draw order is placement first, then cap.
func fillSinks(s Spec, centers []geom.Point, out []ctree.Sink, base int, rng *rand.Rand) {
	buf := make([]byte, 0, len(s.Name)+16)
	for j := range out {
		i := base + j
		buf = appendSinkName(buf[:0], s.Name, i)
		out[j] = ctree.Sink{
			Name: string(buf),
			Loc:  placeOne(s, centers, rng, i),
			Cap:  s.CapMin + rng.Float64()*(s.CapMax-s.CapMin),
		}
	}
}

// appendSinkName appends "<name>/ffNNNNN" — zero-padded to five digits,
// wider when the index needs it; byte-for-byte what
// fmt.Sprintf("%s/ff%05d", name, i) produces, at a fraction of the cost
// (which matters when generating a million names).
func appendSinkName(buf []byte, name string, i int) []byte {
	buf = append(buf, name...)
	buf = append(buf, '/', 'f', 'f')
	switch {
	case i < 10:
		buf = append(buf, "0000"...)
	case i < 100:
		buf = append(buf, "000"...)
	case i < 1000:
		buf = append(buf, "00"...)
	case i < 10000:
		buf = append(buf, '0')
	}
	return strconv.AppendInt(buf, int64(i), 10)
}

// clusterCenters draws the Clustered distribution's clump centers (nil
// for every other distribution). Centers are drawn before any sink, so
// unsharded streams keep their historical byte layout.
func clusterCenters(s Spec, rng *rand.Rand) []geom.Point {
	if s.Dist != Clustered {
		return nil
	}
	k := s.Clusters
	if k <= 0 {
		k = 1 + s.Sinks/150
	}
	centers := make([]geom.Point, k)
	for i := range centers {
		centers[i] = geom.Point{X: rng.Float64() * s.DieX, Y: rng.Float64() * s.DieY}
	}
	return centers
}

// placeOne draws the placement for sink i. The per-distribution draw
// order is frozen: it defines the byte content of every benchmark ever
// generated from a spec, and the golden test pins it.
func placeOne(s Spec, centers []geom.Point, rng *rand.Rand, i int) geom.Point {
	clamp := func(p geom.Point) geom.Point {
		return geom.Point{
			X: geom.Clamp(p.X, 0, s.DieX),
			Y: geom.Clamp(p.Y, 0, s.DieY),
		}
	}
	switch s.Dist {
	case Clustered:
		if rng.Float64() < 0.15 { // uniform background
			return geom.Point{X: rng.Float64() * s.DieX, Y: rng.Float64() * s.DieY}
		}
		sigma := math.Min(s.DieX, s.DieY) / (3 * math.Sqrt(float64(len(centers))))
		c := centers[rng.Intn(len(centers))]
		return clamp(geom.Point{
			X: c.X + rng.NormFloat64()*sigma,
			Y: c.Y + rng.NormFloat64()*sigma,
		})
	case Perimeter:
		band := math.Min(s.DieX, s.DieY) * 0.12
		if rng.Float64() < 0.2 { // sparse center
			return geom.Point{X: rng.Float64() * s.DieX, Y: rng.Float64() * s.DieY}
		}
		switch rng.Intn(4) {
		case 0:
			return geom.Point{X: rng.Float64() * s.DieX, Y: rng.Float64() * band}
		case 1:
			return geom.Point{X: rng.Float64() * s.DieX, Y: s.DieY - rng.Float64()*band}
		case 2:
			return geom.Point{X: rng.Float64() * band, Y: rng.Float64() * s.DieY}
		default:
			return geom.Point{X: s.DieX - rng.Float64()*band, Y: rng.Float64() * s.DieY}
		}
	case Grid:
		cols := int(math.Ceil(math.Sqrt(float64(s.Sinks) * s.DieX / s.DieY)))
		if cols < 1 {
			cols = 1
		}
		rows := (s.Sinks + cols - 1) / cols
		px := s.DieX / float64(cols)
		py := s.DieY / float64(rows)
		cx := float64(i%cols) * px
		cy := float64(i/cols%rows) * py
		return clamp(geom.Point{
			X: cx + px/2 + rng.NormFloat64()*px/8,
			Y: cy + py/2 + rng.NormFloat64()*py/8,
		})
	default: // Uniform
		return geom.Point{X: rng.Float64() * s.DieX, Y: rng.Float64() * s.DieY}
	}
}

// CNSSuite returns the eight built-in benchmarks used by the experiment
// tables. Sizes and die dimensions follow the spread of the ISPD-2010
// clock-network-synthesis contest testcases (thousands of sinks over
// multi-millimetre dies), with the distribution families rotating so the
// optimizer sees uniform, clustered, perimeter, and array-like inputs.
func CNSSuite() []Spec {
	mk := func(i int, d Distribution, n int, die float64) Spec {
		return Spec{
			Name:   fmt.Sprintf("cns%02d", i),
			Dist:   d,
			Sinks:  n,
			DieX:   die,
			DieY:   die * 0.8,
			CapMin: 1e-15,
			CapMax: 4e-15,
			Seed:   int64(1000 + i),
		}
	}
	return []Spec{
		mk(1, Uniform, 1200, 3200),
		mk(2, Clustered, 1600, 4000),
		mk(3, Uniform, 2000, 5000),
		mk(4, Perimeter, 2400, 5600),
		mk(5, Grid, 3000, 6400),
		mk(6, Clustered, 4000, 7000),
		mk(7, Uniform, 6000, 8000),
		mk(8, Clustered, 8000, 9000),
	}
}

// Scale returns a synthetic scale-testing spec: a clustered SoC-like
// floorplan sized to constant sink density — the 100K-sink design gets
// a 3.0 × 2.4 mm die and area grows linearly with sink count, so wire
// geometry stays realistic at every size. Scale specs are sharded, so
// GenerateP fans generation out across workers without changing a byte
// of the output.
func Scale(name string, sinks int, seed int64) Spec {
	die := 3000 * math.Sqrt(float64(sinks)/100_000)
	return Spec{
		Name:   name,
		Dist:   Clustered,
		Sinks:  sinks,
		DieX:   die,
		DieY:   die * 0.8,
		CapMin: 1e-15,
		CapMax: 4e-15,
		Seed:   seed,
		Shard:  1 << 16,
	}
}

// ByName returns the CNS suite spec with the given name.
func ByName(name string) (Spec, error) {
	for _, s := range CNSSuite() {
		if s.Name == name {
			return s, nil
		}
	}
	names := make([]string, 0, 8)
	for _, s := range CNSSuite() {
		names = append(names, s.Name)
	}
	sort.Strings(names)
	return Spec{}, fmt.Errorf("workload: unknown benchmark %q (have %v)", name, names)
}
