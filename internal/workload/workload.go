// Package workload generates clock-tree benchmarks: sink placements and
// pin capacitances with the statistical shapes of the standard CTS
// benchmark suites (uniform ISPD-CNS-style floorplans, register banks,
// clustered SoC blocks, perimeter-heavy I/O designs). Every generator is
// deterministic in its seed.
package workload

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"smartndr/internal/ctree"
	"smartndr/internal/geom"
)

// Distribution selects the sink placement shape.
type Distribution int

const (
	// Uniform scatters sinks uniformly over the die.
	Uniform Distribution = iota
	// Clustered places sinks in Gaussian clumps (register banks around
	// datapath blocks), plus a uniform background.
	Clustered
	// Perimeter concentrates sinks near the die edges (I/O registers)
	// with a sparse center.
	Perimeter
	// Grid places sinks on a jittered regular grid (datapath arrays).
	Grid
)

// String implements fmt.Stringer.
func (d Distribution) String() string {
	switch d {
	case Uniform:
		return "uniform"
	case Clustered:
		return "clustered"
	case Perimeter:
		return "perimeter"
	case Grid:
		return "grid"
	default:
		return fmt.Sprintf("distribution(%d)", int(d))
	}
}

// Spec describes one benchmark.
type Spec struct {
	Name   string       `json:"name"`
	Dist   Distribution `json:"dist"`
	Sinks  int          `json:"sinks"`
	DieX   float64      `json:"die_x"`   // µm
	DieY   float64      `json:"die_y"`   // µm
	CapMin float64      `json:"cap_min"` // F
	CapMax float64      `json:"cap_max"` // F
	Seed   int64        `json:"seed"`
	// Clusters is the clump count for the Clustered distribution.
	Clusters int `json:"clusters,omitempty"`
}

// Validate checks the spec.
func (s Spec) Validate() error {
	switch {
	case s.Name == "":
		return fmt.Errorf("workload: empty name")
	case s.Sinks <= 0:
		return fmt.Errorf("workload %s: non-positive sink count %d", s.Name, s.Sinks)
	case s.DieX <= 0 || s.DieY <= 0:
		return fmt.Errorf("workload %s: non-positive die", s.Name)
	case s.CapMin <= 0 || s.CapMax < s.CapMin:
		return fmt.Errorf("workload %s: bad cap range [%g, %g]", s.Name, s.CapMin, s.CapMax)
	}
	return nil
}

// Benchmark is a generated testcase.
type Benchmark struct {
	Spec  Spec         `json:"spec"`
	Sinks []ctree.Sink `json:"sinks"`
	Src   geom.Point   `json:"src"` // clock source location (die center)
}

// Generate produces the benchmark for a spec.
func Generate(s Spec) (*Benchmark, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(s.Seed))
	sinks := make([]ctree.Sink, s.Sinks)
	place := placer(s, rng)
	for i := range sinks {
		sinks[i] = ctree.Sink{
			Name: fmt.Sprintf("%s/ff%05d", s.Name, i),
			Loc:  place(),
			Cap:  s.CapMin + rng.Float64()*(s.CapMax-s.CapMin),
		}
	}
	return &Benchmark{
		Spec:  s,
		Sinks: sinks,
		Src:   geom.Point{X: s.DieX / 2, Y: s.DieY / 2},
	}, nil
}

func placer(s Spec, rng *rand.Rand) func() geom.Point {
	clamp := func(p geom.Point) geom.Point {
		return geom.Point{
			X: geom.Clamp(p.X, 0, s.DieX),
			Y: geom.Clamp(p.Y, 0, s.DieY),
		}
	}
	switch s.Dist {
	case Clustered:
		k := s.Clusters
		if k <= 0 {
			k = 1 + s.Sinks/150
		}
		centers := make([]geom.Point, k)
		for i := range centers {
			centers[i] = geom.Point{X: rng.Float64() * s.DieX, Y: rng.Float64() * s.DieY}
		}
		sigma := math.Min(s.DieX, s.DieY) / (3 * math.Sqrt(float64(k)))
		return func() geom.Point {
			if rng.Float64() < 0.15 { // uniform background
				return geom.Point{X: rng.Float64() * s.DieX, Y: rng.Float64() * s.DieY}
			}
			c := centers[rng.Intn(k)]
			return clamp(geom.Point{
				X: c.X + rng.NormFloat64()*sigma,
				Y: c.Y + rng.NormFloat64()*sigma,
			})
		}
	case Perimeter:
		band := math.Min(s.DieX, s.DieY) * 0.12
		return func() geom.Point {
			if rng.Float64() < 0.2 { // sparse center
				return geom.Point{X: rng.Float64() * s.DieX, Y: rng.Float64() * s.DieY}
			}
			switch rng.Intn(4) {
			case 0:
				return geom.Point{X: rng.Float64() * s.DieX, Y: rng.Float64() * band}
			case 1:
				return geom.Point{X: rng.Float64() * s.DieX, Y: s.DieY - rng.Float64()*band}
			case 2:
				return geom.Point{X: rng.Float64() * band, Y: rng.Float64() * s.DieY}
			default:
				return geom.Point{X: s.DieX - rng.Float64()*band, Y: rng.Float64() * s.DieY}
			}
		}
	case Grid:
		cols := int(math.Ceil(math.Sqrt(float64(s.Sinks) * s.DieX / s.DieY)))
		if cols < 1 {
			cols = 1
		}
		rows := (s.Sinks + cols - 1) / cols
		px := s.DieX / float64(cols)
		py := s.DieY / float64(rows)
		i := 0
		return func() geom.Point {
			cx := float64(i%cols) * px
			cy := float64(i/cols%rows) * py
			i++
			return clamp(geom.Point{
				X: cx + px/2 + rng.NormFloat64()*px/8,
				Y: cy + py/2 + rng.NormFloat64()*py/8,
			})
		}
	default: // Uniform
		return func() geom.Point {
			return geom.Point{X: rng.Float64() * s.DieX, Y: rng.Float64() * s.DieY}
		}
	}
}

// CNSSuite returns the eight built-in benchmarks used by the experiment
// tables. Sizes and die dimensions follow the spread of the ISPD-2010
// clock-network-synthesis contest testcases (thousands of sinks over
// multi-millimetre dies), with the distribution families rotating so the
// optimizer sees uniform, clustered, perimeter, and array-like inputs.
func CNSSuite() []Spec {
	mk := func(i int, d Distribution, n int, die float64) Spec {
		return Spec{
			Name:   fmt.Sprintf("cns%02d", i),
			Dist:   d,
			Sinks:  n,
			DieX:   die,
			DieY:   die * 0.8,
			CapMin: 1e-15,
			CapMax: 4e-15,
			Seed:   int64(1000 + i),
		}
	}
	return []Spec{
		mk(1, Uniform, 1200, 3200),
		mk(2, Clustered, 1600, 4000),
		mk(3, Uniform, 2000, 5000),
		mk(4, Perimeter, 2400, 5600),
		mk(5, Grid, 3000, 6400),
		mk(6, Clustered, 4000, 7000),
		mk(7, Uniform, 6000, 8000),
		mk(8, Clustered, 8000, 9000),
	}
}

// ByName returns the CNS suite spec with the given name.
func ByName(name string) (Spec, error) {
	for _, s := range CNSSuite() {
		if s.Name == name {
			return s, nil
		}
	}
	names := make([]string, 0, 8)
	for _, s := range CNSSuite() {
		names = append(names, s.Name)
	}
	sort.Strings(names)
	return Spec{}, fmt.Errorf("workload: unknown benchmark %q (have %v)", name, names)
}
