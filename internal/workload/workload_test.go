package workload

import (
	"math"
	"strings"
	"testing"

	"smartndr/internal/geom"
)

func TestGenerateDeterministic(t *testing.T) {
	s := CNSSuite()[0]
	a, err := Generate(s)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Sinks) != len(b.Sinks) {
		t.Fatal("length mismatch")
	}
	for i := range a.Sinks {
		if a.Sinks[i] != b.Sinks[i] {
			t.Fatalf("sink %d differs between identical seeds", i)
		}
	}
}

func TestGenerateSeedChangesOutput(t *testing.T) {
	s := CNSSuite()[0]
	a, _ := Generate(s)
	s.Seed++
	b, _ := Generate(s)
	same := 0
	for i := range a.Sinks {
		if a.Sinks[i].Loc == b.Sinks[i].Loc {
			same++
		}
	}
	if same == len(a.Sinks) {
		t.Error("different seeds must produce different placements")
	}
}

func TestAllDistributionsInDie(t *testing.T) {
	for _, d := range []Distribution{Uniform, Clustered, Perimeter, Grid} {
		s := Spec{Name: "t", Dist: d, Sinks: 500, DieX: 1000, DieY: 800, CapMin: 1e-15, CapMax: 3e-15, Seed: 5}
		bm, err := Generate(s)
		if err != nil {
			t.Fatalf("%v: %v", d, err)
		}
		if len(bm.Sinks) != 500 {
			t.Fatalf("%v: %d sinks", d, len(bm.Sinks))
		}
		for i, sk := range bm.Sinks {
			if sk.Loc.X < 0 || sk.Loc.X > s.DieX || sk.Loc.Y < 0 || sk.Loc.Y > s.DieY {
				t.Fatalf("%v: sink %d at %v outside die", d, i, sk.Loc)
			}
			if sk.Cap < s.CapMin || sk.Cap > s.CapMax {
				t.Fatalf("%v: sink %d cap %g outside range", d, i, sk.Cap)
			}
			if sk.Name == "" {
				t.Fatalf("%v: sink %d unnamed", d, i)
			}
		}
		if bm.Src != (geom.Point{X: 500, Y: 400}) {
			t.Errorf("%v: src = %v", d, bm.Src)
		}
	}
}

func TestDistributionShapes(t *testing.T) {
	// Perimeter: most sinks within the edge band. Clustered: sample
	// variance of local density higher than uniform.
	die := 2000.0
	band := die * 0.15
	per, _ := Generate(Spec{Name: "p", Dist: Perimeter, Sinks: 2000, DieX: die, DieY: die, CapMin: 1e-15, CapMax: 2e-15, Seed: 9})
	edge := 0
	for _, sk := range per.Sinks {
		if sk.Loc.X < band || sk.Loc.X > die-band || sk.Loc.Y < band || sk.Loc.Y > die-band {
			edge++
		}
	}
	if frac := float64(edge) / float64(len(per.Sinks)); frac < 0.6 {
		t.Errorf("perimeter edge fraction %g too low", frac)
	}

	uni, _ := Generate(Spec{Name: "u", Dist: Uniform, Sinks: 2000, DieX: die, DieY: die, CapMin: 1e-15, CapMax: 2e-15, Seed: 9})
	clu, _ := Generate(Spec{Name: "c", Dist: Clustered, Sinks: 2000, DieX: die, DieY: die, CapMin: 1e-15, CapMax: 2e-15, Seed: 9, Clusters: 6})
	if gridVar(clu, die) < 2*gridVar(uni, die) {
		t.Error("clustered density variance should far exceed uniform")
	}
}

// gridVar bins sinks into an 8×8 grid and returns bin-count variance — a
// crude clumpiness measure.
func gridVar(bm *Benchmark, die float64) float64 {
	const g = 8
	var bins [g * g]float64
	for _, s := range bm.Sinks {
		x := int(s.Loc.X / die * g)
		y := int(s.Loc.Y / die * g)
		if x >= g {
			x = g - 1
		}
		if y >= g {
			y = g - 1
		}
		bins[y*g+x]++
	}
	mean := float64(len(bm.Sinks)) / (g * g)
	var v float64
	for _, b := range bins {
		v += (b - mean) * (b - mean)
	}
	return v / (g * g)
}

func TestByName(t *testing.T) {
	s, err := ByName("cns03")
	if err != nil || s.Name != "cns03" {
		t.Fatalf("ByName: %v %v", s, err)
	}
	if _, err := ByName("cns99"); err == nil {
		t.Error("unknown benchmark must error")
	} else if !strings.Contains(err.Error(), "cns99") {
		t.Errorf("error should name the miss: %v", err)
	}
}

func TestCNSSuiteShape(t *testing.T) {
	suite := CNSSuite()
	if len(suite) != 8 {
		t.Fatalf("suite size %d", len(suite))
	}
	seen := map[string]bool{}
	prev := 0
	for _, s := range suite {
		if err := s.Validate(); err != nil {
			t.Errorf("%s: %v", s.Name, err)
		}
		if seen[s.Name] {
			t.Errorf("duplicate name %s", s.Name)
		}
		seen[s.Name] = true
		if s.Sinks < prev {
			t.Error("suite should grow in sink count")
		}
		prev = s.Sinks
	}
}

func TestSpecValidate(t *testing.T) {
	good := Spec{Name: "x", Sinks: 10, DieX: 100, DieY: 100, CapMin: 1e-15, CapMax: 2e-15}
	if err := good.Validate(); err != nil {
		t.Fatalf("good spec rejected: %v", err)
	}
	bad := []Spec{
		{Sinks: 10, DieX: 100, DieY: 100, CapMin: 1e-15, CapMax: 2e-15},
		{Name: "x", Sinks: 0, DieX: 100, DieY: 100, CapMin: 1e-15, CapMax: 2e-15},
		{Name: "x", Sinks: 10, DieX: 0, DieY: 100, CapMin: 1e-15, CapMax: 2e-15},
		{Name: "x", Sinks: 10, DieX: 100, DieY: 100, CapMin: 0, CapMax: 2e-15},
		{Name: "x", Sinks: 10, DieX: 100, DieY: 100, CapMin: 3e-15, CapMax: 2e-15},
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("bad spec %d accepted", i)
		}
	}
	if _, err := Generate(bad[1]); err == nil {
		t.Error("Generate must validate")
	}
}

func TestDistributionString(t *testing.T) {
	for _, d := range []Distribution{Uniform, Clustered, Perimeter, Grid, Distribution(9)} {
		if d.String() == "" {
			t.Error("empty distribution name")
		}
	}
}

func TestGridIsRegular(t *testing.T) {
	g, _ := Generate(Spec{Name: "g", Dist: Grid, Sinks: 400, DieX: 2000, DieY: 2000, CapMin: 1e-15, CapMax: 2e-15, Seed: 3})
	// Nearest-neighbor distances on a jittered grid concentrate near the
	// pitch; their coefficient of variation is far below uniform random.
	nnCV := func(sinks []float64) float64 { return 0 }
	_ = nnCV
	pitch := 100.0 // 2000/sqrt(400)
	var devSum float64
	n := 0
	for i := 0; i < len(g.Sinks); i += 10 {
		best := math.Inf(1)
		for j := range g.Sinks {
			if i == j {
				continue
			}
			if d := g.Sinks[i].Loc.Dist(g.Sinks[j].Loc); d < best {
				best = d
			}
		}
		devSum += math.Abs(best - pitch)
		n++
	}
	if devSum/float64(n) > pitch {
		t.Errorf("grid NN distances far from pitch: mean dev %g", devSum/float64(n))
	}
}
