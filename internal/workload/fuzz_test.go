package workload

import (
	"bytes"
	"testing"
)

// FuzzSpecCanonical drives the canonical serialization with arbitrary
// field values and checks the properties cache keys rely on:
// determinism (same spec → same bytes, always), injectivity under
// single-field mutation, and a well-formed 64-hex-digit hash — even for
// hostile values (NaN, infinities, control characters in names) that a
// JSON-based encoding would choke on or collapse.
func FuzzSpecCanonical(f *testing.F) {
	f.Add("cns01", int64(42), 16, 600.0, 600.0, 1e-15, 3e-15, 0, 0)
	f.Add("", int64(0), 0, 0.0, 0.0, 0.0, 0.0, 0, 0)
	f.Add("weird\x00name\"|", int64(-1), 1<<20, -1.5, 2.25e300, 1e-300, 5e-15, 7, 3)
	f.Fuzz(func(t *testing.T, name string, seed int64, sinks int,
		dieX, dieY, capMin, capMax float64, clusters, dist int) {

		s := Spec{
			Name: name, Dist: Distribution(dist), Sinks: sinks,
			DieX: dieX, DieY: dieY, CapMin: capMin, CapMax: capMax,
			Seed: seed, Clusters: clusters,
		}
		c1 := s.Canonical()
		c2 := s.Canonical()
		if !bytes.Equal(c1, c2) {
			t.Fatalf("Canonical not deterministic:\n%q\n%q", c1, c2)
		}
		h := s.Hash()
		if len(h) != 64 {
			t.Fatalf("Hash length %d, want 64 hex digits", len(h))
		}
		if s.Hash() != h {
			t.Fatal("Hash not deterministic")
		}
		// Any single-field mutation must move the content address.
		m := s
		m.Seed++
		if m.Hash() == h {
			t.Fatalf("seed mutation did not change the hash (spec %+v)", s)
		}
		m = s
		m.Sinks++
		if m.Hash() == h {
			t.Fatalf("sink-count mutation did not change the hash (spec %+v)", s)
		}
		m = s
		m.Name += "x"
		if m.Hash() == h {
			t.Fatalf("name mutation did not change the hash (spec %+v)", s)
		}
	})
}
