package workload

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"

	"smartndr/internal/ctree"
)

// canonVersion prefixes every canonical serialization. Bump it whenever
// the byte format changes so stale content-addressed cache entries can
// never alias a new result.
const canonVersion = "smartndr/workload/v1"

// Canonical returns the deterministic byte serialization of the spec —
// the form cache keys hash. Every result-determining field (name,
// distribution, sink count, die, cap range, seed, clusters) is covered
// in a fixed order. Floats render in hexadecimal floating-point, which
// is exact (no shortest-round-trip subtleties), platform-stable, and —
// unlike JSON — total: NaN and infinities serialize too, so no two
// distinct specs can ever collapse to the same bytes.
func (s Spec) Canonical() []byte {
	return []byte(fmt.Sprintf(
		"%s|spec|name=%q|dist=%d|sinks=%d|die_x=%x|die_y=%x|cap_min=%x|cap_max=%x|seed=%d|clusters=%d",
		canonVersion, s.Name, int(s.Dist), s.Sinks,
		s.DieX, s.DieY, s.CapMin, s.CapMax, s.Seed, s.Clusters))
}

// Hash returns the SHA-256 content address (hex) of the spec's
// canonical serialization.
func (s Spec) Hash() string {
	sum := sha256.Sum256(s.Canonical())
	return hex.EncodeToString(sum[:])
}

// HashSinks returns the SHA-256 content address (hex) of an explicit
// sink set — the cache-key form for callers that bring their own
// placement instead of a generator spec. The hash covers every field of
// every sink in order; permuting sinks changes the address, matching
// the engine, whose results are sink-order dependent.
func HashSinks(sinks []ctree.Sink) string {
	h := sha256.New()
	h.Write([]byte(canonVersion + "|sinks|"))
	enc := json.NewEncoder(h)
	for i := range sinks {
		// Encode cannot fail for a flat struct of strings and floats.
		_ = enc.Encode(&sinks[i])
	}
	return hex.EncodeToString(h.Sum(nil))
}
