package workload

import (
	"bytes"
	"testing"

	"smartndr/internal/ctree"
	"smartndr/internal/geom"
)

func TestSpecCanonicalDeterministic(t *testing.T) {
	for _, s := range CNSSuite() {
		a, b := s.Canonical(), s.Canonical()
		if !bytes.Equal(a, b) {
			t.Fatalf("%s: canonical bytes differ across calls", s.Name)
		}
		if s.Hash() != s.Hash() {
			t.Fatalf("%s: hash differs across calls", s.Name)
		}
	}
}

func TestSpecHashSeparatesSpecs(t *testing.T) {
	seen := map[string]string{}
	for _, s := range CNSSuite() {
		h := s.Hash()
		if prev, dup := seen[h]; dup {
			t.Fatalf("specs %s and %s collide", prev, s.Name)
		}
		seen[h] = s.Name
	}
	// Every result-determining field must move the hash.
	base := CNSSuite()[0]
	mutations := []func(*Spec){
		func(s *Spec) { s.Name = "other" },
		func(s *Spec) { s.Dist = Clustered },
		func(s *Spec) { s.Sinks++ },
		func(s *Spec) { s.DieX += 1 },
		func(s *Spec) { s.DieY += 1 },
		func(s *Spec) { s.CapMin *= 2 },
		func(s *Spec) { s.CapMax *= 2 },
		func(s *Spec) { s.Seed++ },
		func(s *Spec) { s.Clusters = 7 },
	}
	for i, mut := range mutations {
		m := base
		mut(&m)
		if m.Hash() == base.Hash() {
			t.Errorf("mutation %d did not change the hash", i)
		}
	}
}

func TestHashSinksOrderAndContentSensitive(t *testing.T) {
	a := []ctree.Sink{
		{Name: "s0", Loc: geom.Point{X: 1, Y: 2}, Cap: 1e-15},
		{Name: "s1", Loc: geom.Point{X: 3, Y: 4}, Cap: 2e-15},
	}
	if HashSinks(a) != HashSinks(a) {
		t.Fatal("HashSinks not deterministic")
	}
	swapped := []ctree.Sink{a[1], a[0]}
	if HashSinks(a) == HashSinks(swapped) {
		t.Error("sink order must change the hash (results are order dependent)")
	}
	bumped := []ctree.Sink{a[0], {Name: "s1", Loc: geom.Point{X: 3, Y: 4}, Cap: 3e-15}}
	if HashSinks(a) == HashSinks(bumped) {
		t.Error("sink cap must change the hash")
	}
	if HashSinks(nil) == HashSinks(a) {
		t.Error("empty sink set must differ")
	}
	// A spec hash and a sink hash over related content must never
	// collide — the domain prefix separates them.
	if CNSSuite()[0].Hash() == HashSinks(nil) {
		t.Error("spec and sink hash domains collide")
	}
}
