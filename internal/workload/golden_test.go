package workload

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"math"
	"testing"
)

// benchHash reduces a benchmark to a SHA-256 over every byte of every
// sink: names, exact coordinates, exact capacitances.
func benchHash(bm *Benchmark) string {
	h := sha256.New()
	var buf [8]byte
	for _, sk := range bm.Sinks {
		h.Write([]byte(sk.Name))
		binary.LittleEndian.PutUint64(buf[:], math.Float64bits(sk.Loc.X))
		h.Write(buf[:])
		binary.LittleEndian.PutUint64(buf[:], math.Float64bits(sk.Loc.Y))
		h.Write(buf[:])
		binary.LittleEndian.PutUint64(buf[:], math.Float64bits(sk.Cap))
		h.Write(buf[:])
	}
	return hex.EncodeToString(h.Sum(nil))
}

// TestGenerateByteLayoutFrozen pins the exact output of the unsharded
// generator for one spec of each distribution. Benchmarks are identified
// by spec everywhere (flow cache keys, experiment tables, BENCH_*.json
// baselines), so regenerating different bytes for an old spec would
// silently invalidate all of them. If this test fails, the generator's
// draw order changed — that is a breaking change, not a test to update.
func TestGenerateByteLayoutFrozen(t *testing.T) {
	cases := []struct {
		spec Spec
		want string
	}{
		{CNSSuite()[0], "aa1dd4b63818626fbcce09352836d7c71ba69ae9617961630cd7104e35f756e6"},
		{CNSSuite()[1], "face94297d960f5c1d26fc637acc3cfc8f094c907d91bf8af9dc1430edd72a44"},
		{Spec{Name: "p", Dist: Perimeter, Sinks: 777, DieX: 2000, DieY: 1500, CapMin: 1e-15, CapMax: 2e-15, Seed: 42},
			"6224b97a4b32183ae303bf74b1477146d6982794728e114ae942ea2b02f7e67c"},
		{Spec{Name: "g", Dist: Grid, Sinks: 500, DieX: 1800, DieY: 1200, CapMin: 1e-15, CapMax: 2e-15, Seed: 6},
			"8afbedd1682096f12173e26d7021a6bf3c9347928dc718f10b763e6c69a58013"},
	}
	for _, c := range cases {
		bm, err := Generate(c.spec)
		if err != nil {
			t.Fatal(err)
		}
		if got := benchHash(bm); got != c.want {
			t.Errorf("%s (%v): generator byte layout changed\n got %s\nwant %s",
				c.spec.Name, c.spec.Dist, got, c.want)
		}
	}
}

// TestGeneratePWorkerInvariance is the sharded generator's determinism
// contract: same bytes at every worker count, including serial.
func TestGeneratePWorkerInvariance(t *testing.T) {
	for _, dist := range []Distribution{Uniform, Clustered, Perimeter, Grid} {
		spec := Spec{
			Name: "sh", Dist: dist, Sinks: 5000, DieX: 4000, DieY: 3200,
			CapMin: 1e-15, CapMax: 4e-15, Seed: 31, Shard: 512,
		}
		serial, err := GenerateP(spec, 1)
		if err != nil {
			t.Fatal(err)
		}
		want := benchHash(serial)
		for _, workers := range []int{2, 8} {
			par, err := GenerateP(spec, workers)
			if err != nil {
				t.Fatal(err)
			}
			if got := benchHash(par); got != want {
				t.Errorf("%v: workers=%d output differs from serial", dist, workers)
			}
		}
	}
}

func TestGeneratePShardedValid(t *testing.T) {
	spec := Spec{
		Name: "sv", Dist: Clustered, Sinks: 3000, DieX: 3000, DieY: 2400,
		CapMin: 1e-15, CapMax: 4e-15, Seed: 7, Shard: 256,
	}
	bm, err := GenerateP(spec, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(bm.Sinks) != spec.Sinks {
		t.Fatalf("%d sinks, want %d", len(bm.Sinks), spec.Sinks)
	}
	seen := make(map[string]bool, spec.Sinks)
	for i, sk := range bm.Sinks {
		if sk.Name != fmt.Sprintf("%s/ff%05d", spec.Name, i) {
			t.Fatalf("sink %d name %q", i, sk.Name)
		}
		if seen[sk.Name] {
			t.Fatalf("duplicate name %q", sk.Name)
		}
		seen[sk.Name] = true
		if sk.Loc.X < 0 || sk.Loc.X > spec.DieX || sk.Loc.Y < 0 || sk.Loc.Y > spec.DieY {
			t.Fatalf("sink %d at %v outside die", i, sk.Loc)
		}
		if sk.Cap < spec.CapMin || sk.Cap > spec.CapMax {
			t.Fatalf("sink %d cap %g out of range", i, sk.Cap)
		}
	}
	// Sharding changes the stream layout, deliberately: the shard size is
	// part of the spec identity.
	unsharded := spec
	unsharded.Shard = 0
	flat, err := Generate(unsharded)
	if err != nil {
		t.Fatal(err)
	}
	if benchHash(flat) == benchHash(bm) {
		t.Error("sharded and unsharded output identical — substreams not in effect")
	}
}

func TestAppendSinkNameMatchesSprintf(t *testing.T) {
	buf := make([]byte, 0, 32)
	for _, i := range []int{0, 7, 10, 99, 100, 1000, 9999, 10000, 12345, 99999, 100000, 1234567} {
		buf = appendSinkName(buf[:0], "blk", i)
		if want := fmt.Sprintf("blk/ff%05d", i); string(buf) != want {
			t.Errorf("appendSinkName(%d) = %q, want %q", i, buf, want)
		}
	}
}

func TestScaleSpec(t *testing.T) {
	s := Scale("scale100k", 100_000, 1)
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if s.DieX != 3000 || s.DieY != 2400 {
		t.Errorf("100K die = %g × %g, want 3000 × 2400", s.DieX, s.DieY)
	}
	if s.Shard <= 0 {
		t.Error("scale specs must be sharded for parallel generation")
	}
	// Constant density: 4× the sinks → 2× the die edge.
	big := Scale("scale400k", 400_000, 1)
	if math.Abs(big.DieX-6000) > 1e-9 {
		t.Errorf("400K die edge %g, want 6000", big.DieX)
	}
	// Small scale specs stay cheap enough to generate in tests.
	bm, err := GenerateP(Scale("s", 2000, 3), 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(bm.Sinks) != 2000 {
		t.Fatalf("%d sinks", len(bm.Sinks))
	}
}

func TestSpecValidateShard(t *testing.T) {
	s := Spec{Name: "x", Sinks: 10, DieX: 100, DieY: 100, CapMin: 1e-15, CapMax: 2e-15, Shard: -1}
	if err := s.Validate(); err == nil {
		t.Error("negative shard accepted")
	}
}
