package variation

import (
	"math"
	"testing"
)

func TestQuantileSmallSamples(t *testing.T) {
	cases := []struct {
		name   string
		sorted []float64
		q      float64
		want   float64
	}{
		{"single", []float64{3}, 0.95, 3},
		{"single-median", []float64{3}, 0.5, 3},
		{"pair-interpolates", []float64{1, 2}, 0.95, 1.95},
		{"pair-median", []float64{1, 2}, 0.5, 1.5},
		{"triple-median", []float64{1, 2, 3}, 0.5, 2},
		{"q0", []float64{1, 2, 3}, 0, 1},
		{"q1", []float64{1, 2, 3}, 1, 3},
		{"clamp-low", []float64{1, 2}, -0.5, 1},
		{"clamp-high", []float64{1, 2}, 1.5, 2},
		{"exact-rank", []float64{10, 20, 30, 40, 50}, 0.25, 20},
		{"between-ranks", []float64{10, 20, 30, 40, 50}, 0.95, 48},
	}
	for _, c := range cases {
		if got := Quantile(c.sorted, c.q); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("%s: Quantile(%v, %g) = %g, want %g", c.name, c.sorted, c.q, got, c.want)
		}
	}
}

func TestQuantileUnbiasedVsTruncating(t *testing.T) {
	// The old estimator sorted[int(0.95*(n-1))] snaps to the order
	// statistic below; on 20 samples the interpolated P95 must land
	// strictly between the 19th and 20th values.
	s := make([]float64, 20)
	for i := range s {
		s[i] = float64(i)
	}
	got := Quantile(s, 0.95)
	if got <= s[18] || got >= s[19] {
		t.Errorf("P95 of 0..19 = %g, want in (18, 19)", got)
	}
}

func TestQuantileMonotone(t *testing.T) {
	s := []float64{1, 1, 2, 3, 5, 8, 13}
	prev := math.Inf(-1)
	for q := 0.0; q <= 1.0; q += 0.05 {
		v := Quantile(s, q)
		if v < prev {
			t.Fatalf("Quantile not monotone at q=%g: %g < %g", q, v, prev)
		}
		prev = v
	}
}

func TestQuantilePanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Quantile of empty slice must panic")
		}
	}()
	Quantile(nil, 0.5)
}
