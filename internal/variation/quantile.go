package variation

// Quantile returns the q-quantile (q in [0, 1]) of an ascending-sorted
// sample by linear interpolation between closest ranks — the R-7 /
// NumPy default estimator. Unlike the truncating index
// sorted[int(q*(n-1))], it is unbiased on small samples: the 0.95
// quantile of 20 points falls between the 19th and 20th order
// statistics instead of snapping to the 19th.
//
// The slice must be sorted ascending; Quantile panics on an empty
// slice. q is clamped to [0, 1].
func Quantile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		panic("variation: Quantile of empty sample")
	}
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[len(sorted)-1]
	}
	h := q * float64(len(sorted)-1)
	lo := int(h)
	frac := h - float64(lo)
	if frac == 0 || lo+1 >= len(sorted) {
		return sorted[lo]
	}
	return sorted[lo] + frac*(sorted[lo+1]-sorted[lo])
}
