package variation

import (
	"strings"
	"testing"

	"smartndr/internal/cell"
	"smartndr/internal/obs"
	"smartndr/internal/tech"
)

// TestMonteCarloWorkerCountInvariance is the determinism contract: the
// full Stats must be bit-identical regardless of how many workers run
// the trials, because trial i's RNG substream depends only on (Seed, i).
func TestMonteCarloWorkerCountInvariance(t *testing.T) {
	te := tech.Tech45()
	lib := cell.Default45()
	tr := builtTree(t, 80, 3, 1200, te, lib)
	p := Defaults(7)
	p.Samples = 40

	var ref *Stats
	for _, workers := range []int{1, 2, 8} {
		pw := p
		pw.Workers = workers
		st, err := MonteCarlo(tr, te, lib, pw)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if ref == nil {
			ref = st
			continue
		}
		for i := range ref.Samples {
			if st.Samples[i] != ref.Samples[i] {
				t.Fatalf("workers=%d: sample %d = %+v, want %+v",
					workers, i, st.Samples[i], ref.Samples[i])
			}
		}
		if st.MeanSkew != ref.MeanSkew || st.StdSkew != ref.StdSkew ||
			st.P95Skew != ref.P95Skew || st.MaxSkew != ref.MaxSkew ||
			st.WorstSlew != ref.WorstSlew {
			t.Fatalf("workers=%d: summary stats differ: %+v vs %+v", workers, st, ref)
		}
	}
}

// TestMonteCarloSpanLeak is the regression test for the error-path span
// leak: when the per-trial analysis fails, the trial span (and the run
// span) must still be ended and emitted — previously an analysis error
// returned before tsp.End(), leaving the span open forever.
func TestMonteCarloSpanLeak(t *testing.T) {
	te := tech.Tech45()
	lib := cell.Default45()
	tree := builtTree(t, 40, 5, 800, te, lib)
	col := obs.NewCollector()
	tr := obs.New(col)
	p := Defaults(1)
	p.Samples = 4
	p.InSlew = -1 // forces sta to reject every trial's analysis
	if _, err := MonteCarloTr(tree, te, lib, p, tr); err == nil {
		t.Fatal("negative input slew must fail the run")
	}
	trials, runs := 0, 0
	for _, ev := range col.Events() {
		switch {
		case strings.HasSuffix(ev.Span, "/trial"):
			trials++
		case ev.Span == "variation.montecarlo":
			runs++
		}
	}
	if trials == 0 {
		t.Error("failing trial's span never emitted (leaked)")
	}
	if runs != 1 {
		t.Errorf("run span emitted %d times, want 1", runs)
	}
}

// TestMonteCarloTrialSpansWellFormed checks the concurrent span tree:
// every trial span must be a direct child of the run span (path
// "variation.montecarlo/trial"), never nested under another trial or a
// foreign ambient span, at any worker count.
func TestMonteCarloTrialSpansWellFormed(t *testing.T) {
	te := tech.Tech45()
	lib := cell.Default45()
	tree := builtTree(t, 40, 5, 800, te, lib)
	col := obs.NewCollector()
	tr := obs.New(col)
	p := Defaults(3)
	p.Samples = 24
	p.Workers = 8
	if _, err := MonteCarloTr(tree, te, lib, p, tr); err != nil {
		t.Fatal(err)
	}
	trials := 0
	for _, ev := range col.Events() {
		if !strings.Contains(ev.Span, "trial") {
			continue
		}
		trials++
		if ev.Span != "variation.montecarlo/trial" {
			t.Errorf("trial span has path %q, want variation.montecarlo/trial", ev.Span)
		}
		if ev.Depth != 1 {
			t.Errorf("trial span depth %d, want 1", ev.Depth)
		}
	}
	if trials != p.Samples {
		t.Errorf("%d trial spans emitted, want %d", trials, p.Samples)
	}
}
