// Package variation quantifies a clock network's robustness to process
// variation with Monte Carlo analysis — the second half of the NDR story:
// wide wires do not only sharpen transitions, they also *attenuate* the
// impact of lithographic critical-dimension (CD) variation, because an
// absolute width error δ is a smaller relative error on a 2W wire than on
// a 1W wire. Smart NDR assignment must preserve (most of) that robustness
// while shedding the capacitance, and this package produces the skew
// distributions that show whether it does.
//
// The variation model is the standard grid-correlated one: each sample
// draws a coarse spatial field (bilinear-interpolated Gaussian grid) plus
// white per-element noise; wire width errors perturb resistance as
// w/(w+δ) and area capacitance as +ca·δ, and buffer delays scale by a
// correlated relative factor.
package variation

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"

	"smartndr/internal/cell"
	"smartndr/internal/ctree"
	"smartndr/internal/geom"
	"smartndr/internal/obs"
	"smartndr/internal/par"
	"smartndr/internal/sta"
	"smartndr/internal/tech"
)

// Params configure the Monte Carlo run.
type Params struct {
	// WidthSigma is the 1σ absolute wire CD variation, µm (e.g. 0.004 for
	// 4 nm at a 45 nm-class node).
	WidthSigma float64
	// BufSigma is the 1σ relative buffer delay variation.
	BufSigma float64
	// SpatialFrac is the fraction of variance carried by the spatially
	// correlated field (the rest is white), in [0, 1].
	SpatialFrac float64
	// GridCells is the resolution of the correlated field (default 8).
	GridCells int
	// Samples is the Monte Carlo sample count.
	Samples int
	// Seed makes the run deterministic.
	Seed int64
	// InSlew is the root input transition, s (default 40 ps).
	InSlew float64
	// Workers bounds trial-level parallelism: 0 (or negative) uses
	// runtime.GOMAXPROCS(0); 1 forces the serial path. The determinism
	// contract: trial i draws from an independent RNG substream derived
	// from (Seed, i) alone, so results are bit-identical for every
	// Workers value — Workers is purely a throughput knob.
	Workers int
}

func (p Params) withDefaults() Params {
	if p.GridCells == 0 {
		p.GridCells = 8
	}
	if p.InSlew == 0 {
		p.InSlew = 40e-12
	}
	return p
}

// Validate checks the parameters.
func (p Params) Validate() error {
	p = p.withDefaults()
	switch {
	case p.WidthSigma < 0 || p.BufSigma < 0:
		return errors.New("variation: negative sigma")
	case p.SpatialFrac < 0 || p.SpatialFrac > 1:
		return fmt.Errorf("variation: spatial fraction %g out of [0,1]", p.SpatialFrac)
	case p.Samples <= 0:
		return fmt.Errorf("variation: non-positive sample count %d", p.Samples)
	case p.GridCells <= 0:
		return fmt.Errorf("variation: non-positive grid resolution %d", p.GridCells)
	}
	return nil
}

// Defaults returns a 45 nm-class variation corner: 4 nm CD sigma, 3%
// buffer sigma, 60% spatially correlated, 500 samples.
func Defaults(seed int64) Params {
	return Params{
		WidthSigma:  0.004,
		BufSigma:    0.03,
		SpatialFrac: 0.6,
		GridCells:   8,
		Samples:     500,
		Seed:        seed,
	}
}

// Sample is one Monte Carlo outcome.
type Sample struct {
	Skew      float64 // s
	WorstSlew float64 // s
	Insertion float64 // s, max sink arrival
}

// Stats summarizes a Monte Carlo run.
type Stats struct {
	Samples   []Sample
	MeanSkew  float64
	StdSkew   float64
	P95Skew   float64
	MaxSkew   float64
	WorstSlew float64 // max over samples
}

// field is a bilinear-interpolated Gaussian grid over the die.
type field struct {
	vals       []float64
	cells      int
	bb         geom.BBox
	invW, invH float64
}

func newField(rng *rand.Rand, cells int, bb geom.BBox) *field {
	f := emptyField(cells, bb)
	f.fill(rng)
	return f
}

// emptyField allocates the grid without drawing values; fill redraws it
// in place so per-trial scratch reuse skips the allocation.
func emptyField(cells int, bb geom.BBox) *field {
	f := &field{vals: make([]float64, (cells+1)*(cells+1)), cells: cells, bb: bb}
	w := bb.Width()
	h := bb.Height()
	if w <= 0 {
		w = 1
	}
	if h <= 0 {
		h = 1
	}
	f.invW, f.invH = 1/w, 1/h
	return f
}

// fill redraws every grid value from rng.
func (f *field) fill(rng *rand.Rand) {
	for i := range f.vals {
		f.vals[i] = rng.NormFloat64()
	}
}

// at returns the field value at a die location.
func (f *field) at(p geom.Point) float64 {
	fx := geom.Clamp((p.X-f.bb.MinX)*f.invW, 0, 1) * float64(f.cells)
	fy := geom.Clamp((p.Y-f.bb.MinY)*f.invH, 0, 1) * float64(f.cells)
	x0 := int(fx)
	y0 := int(fy)
	if x0 >= f.cells {
		x0 = f.cells - 1
	}
	if y0 >= f.cells {
		y0 = f.cells - 1
	}
	dx := fx - float64(x0)
	dy := fy - float64(y0)
	n := f.cells + 1
	v00 := f.vals[y0*n+x0]
	v01 := f.vals[y0*n+x0+1]
	v10 := f.vals[(y0+1)*n+x0]
	v11 := f.vals[(y0+1)*n+x0+1]
	return v00*(1-dx)*(1-dy) + v01*dx*(1-dy) + v10*(1-dx)*dy + v11*dx*dy
}

// MonteCarlo runs the analysis. The tree is not modified.
//
// Determinism contract: trial i draws every random number from a
// dedicated substream seeded by par.SubstreamSeed(p.Seed, i), so the
// sample sequence depends only on the Params — not on Workers, core
// count, or scheduling. Two runs with equal Params produce identical
// Stats.
func MonteCarlo(t *ctree.Tree, te *tech.Tech, lib *cell.Library, p Params) (*Stats, error) {
	return MonteCarloTr(t, te, lib, p, nil)
}

// trialScratch is the per-worker reusable state: Gaussian fields, the
// override buffers, the trial RNG, and an STA analyzer with preallocated
// storage. One worker runs one trial at a time, so nothing here needs
// locking.
type trialScratch struct {
	fw, fb *field // width and buffer spatial fields
	ov     sta.Overrides
	src    par.Source
	rng    *rand.Rand
	an     *sta.Analyzer
}

// MonteCarloTr is MonteCarlo with instrumentation: each trial records a
// span (so timing outliers are visible in a trace), and the run gauges
// acceptance against the technology skew bound. A nil tracer adds no
// overhead. Trial spans are attached to the run span explicitly — never
// to the tracer's ambient span stack — so the span tree stays
// well-formed when trials run on many goroutines.
func MonteCarloTr(t *ctree.Tree, te *tech.Tech, lib *cell.Library, p Params, tr *obs.Tracer) (*Stats, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	p = p.withDefaults()
	workers := par.Workers(p.Workers)
	sp := tr.Start("variation.montecarlo",
		obs.I("samples", p.Samples), obs.I("workers", workers))
	defer sp.End()
	bb := geom.NewEmptyBBox()
	for i := range t.Nodes {
		bb.Extend(t.Nodes[i].Loc)
	}
	n := len(t.Nodes)
	spat := math.Sqrt(p.SpatialFrac)
	white := math.Sqrt(1 - p.SpatialFrac)
	if workers > p.Samples {
		workers = p.Samples
	}
	scratch := make([]*trialScratch, workers)
	samples := make([]Sample, p.Samples)
	//lint:allow ctxflow deterministic Monte-Carlo batch; cancelling mid-run would violate the seeded-substream reproducibility contract
	err := par.ForEachWorker(context.Background(), workers, p.Samples, func(w, s int) error {
		sc := scratch[w]
		if sc == nil {
			sc = &trialScratch{
				fw: emptyField(p.GridCells, bb),
				fb: emptyField(p.GridCells, bb),
				ov: sta.Overrides{
					EdgeR:    make([]float64, n),
					EdgeC:    make([]float64, n),
					BufScale: make([]float64, n),
				},
				an: sta.NewAnalyzer(te, lib),
			}
			sc.rng = rand.New(&sc.src)
			scratch[w] = sc
		}
		tsp := sp.Child("trial", obs.I("trial", s))
		defer tsp.End() // must fire on error paths too — see TestMonteCarloSpanLeak
		sc.src.Seed(par.SubstreamSeed(p.Seed, s))
		rng := sc.rng
		sc.fw.fill(rng)
		sc.fb.fill(rng)
		for i := range t.Nodes {
			nd := &t.Nodes[i]
			if nd.Parent == ctree.NoNode {
				sc.ov.EdgeR[i], sc.ov.EdgeC[i] = 0, 0
			} else {
				mid := geom.Midpoint(nd.Loc, t.Nodes[nd.Parent].Loc)
				delta := p.WidthSigma * (spat*sc.fw.at(mid) + white*rng.NormFloat64())
				rule := te.Rule(nd.Rule)
				w := te.Layer.MinWidth * rule.WMult
				if delta < -0.8*w {
					delta = -0.8 * w // physical floor: wire cannot vanish
				}
				sc.ov.EdgeR[i] = te.WireR(nd.EdgeLen, nd.Rule) * w / (w + delta)
				sc.ov.EdgeC[i] = te.WireC(nd.EdgeLen, nd.Rule) + te.Layer.CArea*delta*nd.EdgeLen
			}
			sc.ov.BufScale[i] = 1
			if nd.BufIdx != ctree.NoBuf {
				g := spat*sc.fb.at(nd.Loc) + white*rng.NormFloat64()
				sc.ov.BufScale[i] = math.Max(0.5, 1+p.BufSigma*g)
			}
		}
		res, err := sc.an.Analyze(t, p.InSlew, &sc.ov)
		if err != nil {
			return err
		}
		worst, _ := res.WorstSlew()
		skew := res.Skew()
		samples[s] = Sample{
			Skew:      skew,
			WorstSlew: worst,
			Insertion: res.MaxSinkArrival(),
		}
		tsp.Set("skew_ps", skew*1e12)
		tr.Add("mc.trials", 1)
		return nil
	})
	if err != nil {
		return nil, err
	}
	st := &Stats{Samples: samples}
	st.finalize()
	tr.Gauge("mc.mean_skew_ps", st.MeanSkew*1e12)
	tr.Gauge("mc.p95_skew_ps", st.P95Skew*1e12)
	tr.Gauge("mc.yield_at_bound", st.YieldAt(te.MaxSkew))
	sp.Set("p95_skew_ps", st.P95Skew*1e12)
	return st, nil
}

func (st *Stats) finalize() {
	if len(st.Samples) == 0 {
		return
	}
	skews := make([]float64, len(st.Samples))
	var sum, sumSq float64
	for i, s := range st.Samples {
		skews[i] = s.Skew
		sum += s.Skew
		sumSq += s.Skew * s.Skew
		if s.Skew > st.MaxSkew {
			st.MaxSkew = s.Skew
		}
		if s.WorstSlew > st.WorstSlew {
			st.WorstSlew = s.WorstSlew
		}
	}
	n := float64(len(st.Samples))
	st.MeanSkew = sum / n
	if v := sumSq/n - st.MeanSkew*st.MeanSkew; v > 0 {
		st.StdSkew = math.Sqrt(v)
	}
	sort.Float64s(skews)
	st.P95Skew = Quantile(skews, 0.95)
}

// YieldAt returns the fraction of samples whose skew is within the bound.
func (st *Stats) YieldAt(bound float64) float64 {
	if len(st.Samples) == 0 {
		return 0
	}
	ok := 0
	for _, s := range st.Samples {
		if s.Skew <= bound {
			ok++
		}
	}
	return float64(ok) / float64(len(st.Samples))
}
