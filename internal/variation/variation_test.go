package variation

import (
	"math/rand"
	"testing"

	"smartndr/internal/cell"
	"smartndr/internal/core"
	"smartndr/internal/ctree"
	"smartndr/internal/cts"
	"smartndr/internal/geom"
	"smartndr/internal/tech"
)

func builtTree(t testing.TB, n int, seed int64, spread float64, te *tech.Tech, lib *cell.Library) *ctree.Tree {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	sinks := make([]ctree.Sink, n)
	for i := range sinks {
		sinks[i] = ctree.Sink{
			Loc: geom.Point{X: rng.Float64() * spread, Y: rng.Float64() * spread},
			Cap: (1 + rng.Float64()*2) * 1e-15,
		}
	}
	res, err := cts.Build(sinks, geom.Point{X: spread / 2, Y: spread / 2}, te, lib, cts.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return res.Tree
}

func TestMonteCarloDeterministic(t *testing.T) {
	te := tech.Tech45()
	lib := cell.Default45()
	tr := builtTree(t, 60, 3, 1000, te, lib)
	p := Defaults(7)
	p.Samples = 20
	a, err := MonteCarlo(tr, te, lib, p)
	if err != nil {
		t.Fatal(err)
	}
	b, err := MonteCarlo(tr, te, lib, p)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Samples {
		if a.Samples[i] != b.Samples[i] {
			t.Fatalf("sample %d differs under identical seeds", i)
		}
	}
}

func TestMonteCarloZeroSigmaMatchesNominal(t *testing.T) {
	te := tech.Tech45()
	lib := cell.Default45()
	tr := builtTree(t, 60, 5, 1000, te, lib)
	p := Params{Samples: 3, Seed: 1}
	st, err := MonteCarlo(tr, te, lib, p)
	if err != nil {
		t.Fatal(err)
	}
	if st.StdSkew > 1e-18 {
		t.Errorf("zero sigmas must give zero spread, got std %g", st.StdSkew)
	}
}

func TestVariationIncreasesSkewSpread(t *testing.T) {
	te := tech.Tech45()
	lib := cell.Default45()
	tr := builtTree(t, 120, 9, 2000, te, lib)
	p := Defaults(11)
	p.Samples = 100
	st, err := MonteCarlo(tr, te, lib, p)
	if err != nil {
		t.Fatal(err)
	}
	if st.StdSkew <= 0 {
		t.Error("variation must spread the skew")
	}
	if st.P95Skew < st.MeanSkew {
		t.Error("P95 below mean")
	}
	if st.MaxSkew < st.P95Skew {
		t.Error("max below P95")
	}
	y := st.YieldAt(st.P95Skew)
	if y < 0.9 || y > 1 {
		t.Errorf("yield at P95 = %g", y)
	}
}

func TestNDRMoreRobustThanDefault(t *testing.T) {
	// The core physics claim: the same tree with all-default rules has a
	// wider skew distribution under CD variation than with blanket NDR.
	te := tech.Tech45()
	lib := cell.Default45()
	tr := builtTree(t, 150, 13, 2500, te, lib)
	p := Defaults(17)
	p.Samples = 120
	p.BufSigma = 0 // isolate the wire effect

	blanket := tr.Clone()
	core.AssignAll(blanket, te.BlanketRule)
	sb, err := MonteCarlo(blanket, te, lib, p)
	if err != nil {
		t.Fatal(err)
	}
	def := tr.Clone()
	core.AssignAll(def, te.DefaultRule)
	sd, err := MonteCarlo(def, te, lib, p)
	if err != nil {
		t.Fatal(err)
	}
	if sd.StdSkew <= sb.StdSkew {
		t.Errorf("default rule must be less robust: σ(default)=%.3fps σ(NDR)=%.3fps",
			sd.StdSkew*1e12, sb.StdSkew*1e12)
	}
}

func TestParamsValidate(t *testing.T) {
	bad := []Params{
		{WidthSigma: -1, Samples: 10},
		{BufSigma: -1, Samples: 10},
		{SpatialFrac: 2, Samples: 10},
		{Samples: 0},
		{Samples: 10, GridCells: -1},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("bad params %d accepted", i)
		}
	}
	if err := Defaults(1).Validate(); err != nil {
		t.Errorf("defaults invalid: %v", err)
	}
}

func TestFieldInterpolation(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	bb := geom.BBox{MinX: 0, MinY: 0, MaxX: 100, MaxY: 100}
	f := newField(rng, 4, bb)
	// Continuity: nearby points give nearby values.
	a := f.at(geom.Point{X: 50, Y: 50})
	b := f.at(geom.Point{X: 50.1, Y: 50.1})
	if diff := a - b; diff > 0.5 || diff < -0.5 {
		t.Errorf("field jumps: %g vs %g", a, b)
	}
	// Out-of-range points clamp, not panic.
	_ = f.at(geom.Point{X: -50, Y: 500})
}

func TestSpatialCorrelationMatters(t *testing.T) {
	// Die-scale correlated gradients shift whole regions coherently, so a
	// balanced tree whose branches serve different regions accumulates
	// *systematic* skew — worse than white noise, which averages out over
	// the many independent segments of each path. (This asymmetry is why
	// timing signoff applies distance-based OCV derates.)
	te := tech.Tech45()
	lib := cell.Default45()
	tr := builtTree(t, 100, 19, 1500, te, lib)
	base := Defaults(23)
	base.Samples = 100
	base.BufSigma = 0.03

	spatial := base
	spatial.SpatialFrac = 1
	white := base
	white.SpatialFrac = 0
	ss, err := MonteCarlo(tr, te, lib, spatial)
	if err != nil {
		t.Fatal(err)
	}
	sw, err := MonteCarlo(tr, te, lib, white)
	if err != nil {
		t.Fatal(err)
	}
	if ss.StdSkew <= 0 || sw.StdSkew <= 0 {
		t.Fatal("both corners must show spread")
	}
	if ss.StdSkew <= sw.StdSkew*0.8 {
		t.Errorf("correlated gradients should not be milder than white noise: σ(spatial)=%.3fps σ(white)=%.3fps",
			ss.StdSkew*1e12, sw.StdSkew*1e12)
	}
}
