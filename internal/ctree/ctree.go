// Package ctree defines the clock-tree data model shared by the synthesis
// stages: a binary routing topology over clock sinks, annotated step by
// step with embedding locations (DME), electrical edge lengths (including
// wire snaking), buffer placements, and per-edge routing-rule assignments.
//
// A Tree flows through the pipeline:
//
//	topo.Build   → topology (Parent/Kids/SinkIdx set)
//	dme.Embed    → Loc and EdgeLen set, zero-skew by construction
//	buffering    → BufIdx set on selected nodes
//	ndr / core   → Rule set per edge
//	sta / power  → read-only evaluation
package ctree

import (
	"errors"
	"fmt"
	"math"

	"smartndr/internal/geom"
)

// NoSink marks internal (Steiner/merge) nodes.
const NoSink = -1

// NoBuf marks nodes without a buffer.
const NoBuf = -1

// NoNode is the parent of the root.
const NoNode = -1

// Sink is one clock endpoint: a flip-flop clock pin (or a clock-gating cell
// input) with a location and a pin capacitance. Delay is the insertion
// delay *below* the pin: zero for real flip-flop sinks, nonzero when the
// "sink" is the input of an already-built buffered subtree (hierarchical
// CTS builds upper levels over such pseudo-sinks, and DME balances the
// offsets away).
type Sink struct {
	Name  string     `json:"name"`
	Loc   geom.Point `json:"loc"`             // µm
	Cap   float64    `json:"cap"`             // F
	Delay float64    `json:"delay,omitempty"` // s, insertion delay below the pin
}

// Node is one vertex of the clock tree. The edge referred to by EdgeLen and
// Rule is the edge from the node's parent down to the node ("the feeding
// edge"); the root has none.
type Node struct {
	Parent  int        // NoNode for the root
	Kids    [2]int     // child node indexes; NoNode when absent
	SinkIdx int        // index into Tree.Sinks, or NoSink
	Loc     geom.Point // embedding location (valid after DME)
	EdgeLen float64    // electrical length of feeding edge, µm (≥ Manhattan distance to parent; surplus is snaked)
	Rule    int        // routing-rule index (tech.Tech.Rules) of the feeding edge
	BufIdx  int        // buffer cell index (cell.Library.Buffers) placed at this node, or NoBuf
}

// Tree is a clock tree over a fixed sink set. Nodes[Root] is the tree root,
// driven by the clock source at SrcLoc.
type Tree struct {
	Sinks  []Sink
	Nodes  []Node
	Root   int
	SrcLoc geom.Point // clock source (e.g. PLL output) location
}

// NewTree returns a tree with the given sinks and no nodes.
func NewTree(sinks []Sink, src geom.Point) *Tree {
	return &Tree{Sinks: sinks, Root: NoNode, SrcLoc: src}
}

// AddNode appends a node and returns its index. Parent/child links are the
// caller's responsibility (topology builders wire them explicitly).
func (t *Tree) AddNode(n Node) int {
	t.Nodes = append(t.Nodes, n)
	return len(t.Nodes) - 1
}

// NumKids returns the number of children of node i.
func (t *Tree) NumKids(i int) int {
	n := 0
	for _, k := range t.Nodes[i].Kids {
		if k != NoNode {
			n++
		}
	}
	return n
}

// IsLeaf reports whether node i has no children.
func (t *Tree) IsLeaf(i int) bool { return t.NumKids(i) == 0 }

// PostOrder calls fn on every node, children before parents.
func (t *Tree) PostOrder(fn func(i int)) {
	if t.Root == NoNode {
		return
	}
	// Iterative post-order with an explicit stack to survive deep trees.
	type frame struct {
		node int
		kid  int
	}
	stack := []frame{{t.Root, 0}}
	for len(stack) > 0 {
		f := &stack[len(stack)-1]
		advanced := false
		for f.kid < 2 {
			k := t.Nodes[f.node].Kids[f.kid]
			f.kid++
			if k != NoNode {
				stack = append(stack, frame{k, 0})
				advanced = true
				break
			}
		}
		if advanced {
			continue
		}
		fn(f.node)
		stack = stack[:len(stack)-1]
	}
}

// PreOrder calls fn on every node, parents before children.
func (t *Tree) PreOrder(fn func(i int)) {
	if t.Root == NoNode {
		return
	}
	stack := []int{t.Root}
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		fn(n)
		for _, k := range t.Nodes[n].Kids {
			if k != NoNode {
				stack = append(stack, k)
			}
		}
	}
}

// Depth returns the depth (root = 0) of every node.
func (t *Tree) Depth() []int {
	d := make([]int, len(t.Nodes))
	t.PreOrder(func(i int) {
		if p := t.Nodes[i].Parent; p != NoNode {
			d[i] = d[p] + 1
		}
	})
	return d
}

// MaxDepth returns the maximum node depth (0 for a single-node tree).
func (t *Tree) MaxDepth() int {
	maxD := 0
	for _, d := range t.Depth() {
		if d > maxD {
			maxD = d
		}
	}
	return maxD
}

// LeafCount returns the number of leaves.
func (t *Tree) LeafCount() int {
	n := 0
	for i := range t.Nodes {
		if t.IsLeaf(i) {
			n++
		}
	}
	return n
}

// TotalWirelength returns the sum of all electrical edge lengths, µm.
func (t *Tree) TotalWirelength() float64 {
	var sum float64
	for i := range t.Nodes {
		if t.Nodes[i].Parent != NoNode {
			sum += t.Nodes[i].EdgeLen
		}
	}
	return sum
}

// BufferCount returns the number of placed buffers.
func (t *Tree) BufferCount() int {
	n := 0
	for i := range t.Nodes {
		if t.Nodes[i].BufIdx != NoBuf {
			n++
		}
	}
	return n
}

// Clone returns a deep copy (sinks shared; they are immutable inputs).
func (t *Tree) Clone() *Tree {
	c := &Tree{Sinks: t.Sinks, Root: t.Root, SrcLoc: t.SrcLoc}
	c.Nodes = make([]Node, len(t.Nodes))
	copy(c.Nodes, t.Nodes)
	return c
}

// SetAllRules assigns rule index ri to every edge.
func (t *Tree) SetAllRules(ri int) {
	for i := range t.Nodes {
		t.Nodes[i].Rule = ri
	}
}

// Validate checks the structural invariants every pipeline stage relies on.
func (t *Tree) Validate() error {
	if len(t.Sinks) == 0 {
		return errors.New("ctree: no sinks")
	}
	if t.Root == NoNode {
		return errors.New("ctree: no root")
	}
	if t.Root < 0 || t.Root >= len(t.Nodes) {
		return fmt.Errorf("ctree: root %d out of range", t.Root)
	}
	if t.Nodes[t.Root].Parent != NoNode {
		return errors.New("ctree: root has a parent")
	}
	seenSink := make([]bool, len(t.Sinks))
	visited := 0
	var err error
	t.PreOrder(func(i int) {
		if err != nil {
			return
		}
		visited++
		n := &t.Nodes[i]
		for _, k := range n.Kids {
			if k == NoNode {
				continue
			}
			if k < 0 || k >= len(t.Nodes) {
				err = fmt.Errorf("ctree: node %d has out-of-range child %d", i, k)
				return
			}
			if t.Nodes[k].Parent != i {
				err = fmt.Errorf("ctree: node %d child %d has parent %d", i, k, t.Nodes[k].Parent)
				return
			}
		}
		if n.SinkIdx != NoSink {
			if n.SinkIdx < 0 || n.SinkIdx >= len(t.Sinks) {
				err = fmt.Errorf("ctree: node %d has out-of-range sink %d", i, n.SinkIdx)
				return
			}
			if seenSink[n.SinkIdx] {
				err = fmt.Errorf("ctree: sink %d reached by two nodes", n.SinkIdx)
				return
			}
			seenSink[n.SinkIdx] = true
			if !t.IsLeaf(i) {
				err = fmt.Errorf("ctree: sink node %d has children", i)
				return
			}
		} else if t.IsLeaf(i) {
			err = fmt.Errorf("ctree: leaf node %d has no sink", i)
			return
		}
		if n.EdgeLen < 0 || math.IsNaN(n.EdgeLen) {
			err = fmt.Errorf("ctree: node %d has bad edge length %g", i, n.EdgeLen)
			return
		}
	})
	if err != nil {
		return err
	}
	if visited != len(t.Nodes) {
		return fmt.Errorf("ctree: %d of %d nodes unreachable from root", len(t.Nodes)-visited, len(t.Nodes))
	}
	for si, seen := range seenSink {
		if !seen {
			return fmt.Errorf("ctree: sink %d (%s) not covered by the tree", si, t.Sinks[si].Name)
		}
	}
	return nil
}

// CheckEmbedding verifies the geometric invariant left by DME: every edge's
// electrical length covers the Manhattan distance between its endpoints
// (the surplus is realized by snaking).
func (t *Tree) CheckEmbedding(eps float64) error {
	for i := range t.Nodes {
		p := t.Nodes[i].Parent
		if p == NoNode {
			continue
		}
		d := t.Nodes[i].Loc.Dist(t.Nodes[p].Loc)
		if t.Nodes[i].EdgeLen < d-eps {
			return fmt.Errorf("ctree: edge %d→%d length %.4f below Manhattan distance %.4f",
				p, i, t.Nodes[i].EdgeLen, d)
		}
	}
	return nil
}
