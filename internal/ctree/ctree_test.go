package ctree

import (
	"strings"
	"testing"

	"smartndr/internal/geom"
)

// pairTree builds the minimal valid tree: one root joining two sinks.
func pairTree() *Tree {
	sinks := []Sink{
		{Name: "s0", Loc: geom.Point{X: 0, Y: 0}, Cap: 1e-15},
		{Name: "s1", Loc: geom.Point{X: 10, Y: 0}, Cap: 2e-15},
	}
	t := NewTree(sinks, geom.Point{X: 5, Y: 5})
	l0 := t.AddNode(Node{Parent: NoNode, Kids: [2]int{NoNode, NoNode}, SinkIdx: 0, Loc: sinks[0].Loc, BufIdx: NoBuf})
	l1 := t.AddNode(Node{Parent: NoNode, Kids: [2]int{NoNode, NoNode}, SinkIdx: 1, Loc: sinks[1].Loc, BufIdx: NoBuf})
	r := t.AddNode(Node{Parent: NoNode, Kids: [2]int{l0, l1}, SinkIdx: NoSink, Loc: geom.Point{X: 5, Y: 0}, BufIdx: NoBuf})
	t.Nodes[l0].Parent = r
	t.Nodes[l1].Parent = r
	t.Nodes[l0].EdgeLen = 5
	t.Nodes[l1].EdgeLen = 5
	t.Root = r
	return t
}

func TestValidateAcceptsPair(t *testing.T) {
	tr := pairTree()
	if err := tr.Validate(); err != nil {
		t.Fatalf("valid tree rejected: %v", err)
	}
}

func TestValidateRejectsBroken(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Tree)
		want   string
	}{
		{"no root", func(tr *Tree) { tr.Root = NoNode }, "no root"},
		{"root oob", func(tr *Tree) { tr.Root = 99 }, "out of range"},
		{"root has parent", func(tr *Tree) { tr.Nodes[tr.Root].Parent = 0 }, "root has a parent"},
		{"bad child link", func(tr *Tree) { tr.Nodes[0].Parent = 1 }, "has parent"},
		{"dup sink", func(tr *Tree) { tr.Nodes[1].SinkIdx = 0 }, "two nodes"},
		{"sink oob", func(tr *Tree) { tr.Nodes[0].SinkIdx = 7 }, "out-of-range sink"},
		{"leaf without sink", func(tr *Tree) { tr.Nodes[0].SinkIdx = NoSink }, "no sink"},
		{"negative edge len", func(tr *Tree) { tr.Nodes[0].EdgeLen = -1 }, "bad edge length"},
		{"orphan node", func(tr *Tree) { tr.AddNode(Node{Parent: NoNode, Kids: [2]int{NoNode, NoNode}, SinkIdx: NoSink}) }, "unreachable"},
	}
	for _, c := range cases {
		tr := pairTree()
		c.mutate(tr)
		err := tr.Validate()
		if err == nil {
			t.Errorf("%s: Validate should fail", c.name)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: error %q should mention %q", c.name, err, c.want)
		}
	}
}

func TestValidateNoSinks(t *testing.T) {
	tr := NewTree(nil, geom.Point{})
	if err := tr.Validate(); err == nil {
		t.Error("empty sink set should fail")
	}
}

func TestOrders(t *testing.T) {
	tr := pairTree()
	var post, pre []int
	tr.PostOrder(func(i int) { post = append(post, i) })
	tr.PreOrder(func(i int) { pre = append(pre, i) })
	if len(post) != 3 || len(pre) != 3 {
		t.Fatalf("orders must visit all nodes: post=%v pre=%v", post, pre)
	}
	if post[len(post)-1] != tr.Root {
		t.Error("post-order must end at root")
	}
	if pre[0] != tr.Root {
		t.Error("pre-order must start at root")
	}
}

func TestDepthAndCounts(t *testing.T) {
	tr := pairTree()
	d := tr.Depth()
	if d[tr.Root] != 0 || d[0] != 1 || d[1] != 1 {
		t.Errorf("Depth = %v", d)
	}
	if tr.MaxDepth() != 1 {
		t.Errorf("MaxDepth = %d", tr.MaxDepth())
	}
	if tr.LeafCount() != 2 {
		t.Errorf("LeafCount = %d", tr.LeafCount())
	}
	if tr.NumKids(tr.Root) != 2 {
		t.Errorf("NumKids(root) = %d", tr.NumKids(tr.Root))
	}
	if !tr.IsLeaf(0) || tr.IsLeaf(tr.Root) {
		t.Error("IsLeaf wrong")
	}
}

func TestTotalWirelength(t *testing.T) {
	tr := pairTree()
	if got := tr.TotalWirelength(); got != 10 {
		t.Errorf("TotalWirelength = %g, want 10", got)
	}
}

func TestBufferCount(t *testing.T) {
	tr := pairTree()
	if tr.BufferCount() != 0 {
		t.Error("fresh tree has no buffers")
	}
	tr.Nodes[tr.Root].BufIdx = 2
	if tr.BufferCount() != 1 {
		t.Error("BufferCount should see the placed buffer")
	}
}

func TestCloneIndependence(t *testing.T) {
	tr := pairTree()
	c := tr.Clone()
	c.Nodes[0].Rule = 4
	c.Nodes[0].EdgeLen = 99
	if tr.Nodes[0].Rule == 4 || tr.Nodes[0].EdgeLen == 99 {
		t.Error("Clone must not share node storage")
	}
	if err := c.Validate(); err != nil {
		t.Errorf("clone invalid: %v", err)
	}
}

func TestSetAllRules(t *testing.T) {
	tr := pairTree()
	tr.SetAllRules(3)
	for i := range tr.Nodes {
		if tr.Nodes[i].Rule != 3 {
			t.Fatalf("node %d rule = %d", i, tr.Nodes[i].Rule)
		}
	}
}

func TestCheckEmbedding(t *testing.T) {
	tr := pairTree()
	if err := tr.CheckEmbedding(1e-9); err != nil {
		t.Fatalf("valid embedding rejected: %v", err)
	}
	tr.Nodes[0].EdgeLen = 1 // below the Manhattan distance of 5
	if err := tr.CheckEmbedding(1e-9); err == nil {
		t.Error("short edge should fail embedding check")
	}
}

func TestPostOrderDeepTree(t *testing.T) {
	// A pathological 5000-deep chain must not overflow the stack (the
	// traversals are iterative).
	n := 5000
	sinks := []Sink{{Name: "s", Loc: geom.Point{}, Cap: 1e-15}}
	tr := NewTree(sinks, geom.Point{})
	prev := NoNode
	for i := 0; i < n; i++ {
		id := tr.AddNode(Node{Parent: NoNode, Kids: [2]int{NoNode, NoNode}, SinkIdx: NoSink, BufIdx: NoBuf})
		if prev != NoNode {
			tr.Nodes[prev].Kids[0] = id
			tr.Nodes[id].Parent = prev
		} else {
			tr.Root = id
		}
		prev = id
	}
	leaf := tr.AddNode(Node{Parent: prev, Kids: [2]int{NoNode, NoNode}, SinkIdx: 0, BufIdx: NoBuf})
	tr.Nodes[prev].Kids[0] = leaf
	count := 0
	tr.PostOrder(func(int) { count++ })
	if count != n+1 {
		t.Fatalf("post-order visited %d of %d", count, n+1)
	}
	if err := tr.Validate(); err != nil {
		t.Fatalf("deep chain invalid: %v", err)
	}
	if tr.MaxDepth() != n {
		t.Fatalf("MaxDepth = %d, want %d", tr.MaxDepth(), n)
	}
}
