// Package route realizes the abstract edges of an embedded clock tree as
// rectilinear polylines. Plain edges become L-shapes; edges whose
// electrical length exceeds their Manhattan distance (zero-skew wire
// snaking) get a serpentine detour that makes up exactly the surplus.
//
// The realized geometry feeds three consumers: the RC netlist builder
// (which only needs lengths, already exact in the tree), the
// routing-resource report (track area per rule class), and debug dumps.
package route

import (
	"fmt"
	"math"

	"smartndr/internal/ctree"
	"smartndr/internal/geom"
	"smartndr/internal/tech"
)

// Path is the realized geometry of one tree edge (parent → node).
type Path struct {
	Node   int          // tree node whose feeding edge this is
	Pts    []geom.Point // polyline, first point at the parent, last at the node
	Length float64      // total polyline length, µm (== the edge's electrical length)
	Bends  int          // direction changes (each costs a via pair in a two-layer scheme)
	Snaked bool         // whether a serpentine detour was inserted
}

// Realize produces the polyline for every non-root edge of the tree.
// Results are ordered by node index.
func Realize(t *ctree.Tree) ([]Path, error) {
	var paths []Path
	for i := range t.Nodes {
		p := t.Nodes[i].Parent
		if p == ctree.NoNode {
			continue
		}
		path, err := realizeEdge(t.Nodes[p].Loc, t.Nodes[i].Loc, t.Nodes[i].EdgeLen, i)
		if err != nil {
			return nil, fmt.Errorf("route: edge %d→%d: %w", p, i, err)
		}
		paths = append(paths, path)
	}
	return paths, nil
}

// realizeEdge builds a single rectilinear path from a to b with total
// length exactly elecLen (≥ Manhattan distance, the DME invariant).
func realizeEdge(a, b geom.Point, elecLen float64, node int) (Path, error) {
	d := a.Dist(b)
	if elecLen < d-1e-6 {
		return Path{}, fmt.Errorf("electrical length %.6f below Manhattan distance %.6f", elecLen, d)
	}
	surplus := math.Max(0, elecLen-d)
	pts := []geom.Point{a}
	dx := b.X - a.X
	dy := b.Y - a.Y

	if surplus <= 1e-9 {
		// Plain L-shape: horizontal then vertical.
		if dx != 0 && dy != 0 {
			pts = append(pts, geom.Point{X: b.X, Y: a.Y})
		}
		if a != b {
			pts = append(pts, b)
		}
		return finishPath(node, pts, false), nil
	}

	// Serpentine detour: replace the start of the horizontal (or, if the
	// edge is vertical, the vertical) run with a U-bump of height
	// surplus/2. A degenerate zero-distance edge becomes a pure
	// out-and-back spur.
	h := surplus / 2
	switch {
	case dx != 0:
		sign := math.Copysign(1, dx)
		w := math.Min(math.Abs(dx), math.Max(1.0, math.Abs(dx)/2))
		// Bump over the first w microns of the horizontal run.
		pts = append(pts,
			geom.Point{X: a.X, Y: a.Y + h},
			geom.Point{X: a.X + sign*w, Y: a.Y + h},
			geom.Point{X: a.X + sign*w, Y: a.Y},
		)
		if math.Abs(dx) > w {
			pts = append(pts, geom.Point{X: b.X, Y: a.Y})
		}
		if dy != 0 {
			pts = append(pts, b)
		} else if pts[len(pts)-1] != b {
			pts = append(pts, b)
		}
	case dy != 0:
		sign := math.Copysign(1, dy)
		w := math.Min(math.Abs(dy), math.Max(1.0, math.Abs(dy)/2))
		pts = append(pts,
			geom.Point{X: a.X + h, Y: a.Y},
			geom.Point{X: a.X + h, Y: a.Y + sign*w},
			geom.Point{X: a.X, Y: a.Y + sign*w},
		)
		if math.Abs(dy) > w {
			pts = append(pts, b)
		} else if pts[len(pts)-1] != b {
			pts = append(pts, b)
		}
	default:
		// Coincident endpoints: pure spur out and back.
		pts = append(pts,
			geom.Point{X: a.X + h, Y: a.Y},
			b,
		)
	}
	return finishPath(node, pts, true), nil
}

func finishPath(node int, pts []geom.Point, snaked bool) Path {
	length := 0.0
	bends := 0
	for i := 1; i < len(pts); i++ {
		length += pts[i-1].Dist(pts[i])
		if i >= 2 && direction(pts[i-1], pts[i]) != direction(pts[i-2], pts[i-1]) {
			bends++
		}
	}
	return Path{Node: node, Pts: pts, Length: length, Bends: bends, Snaked: snaked}
}

// direction classifies a segment as horizontal (0) or vertical (1);
// degenerate segments count as horizontal.
func direction(a, b geom.Point) int {
	if a.X == b.X && a.Y != b.Y {
		return 1
	}
	return 0
}

// Usage summarizes routing-resource consumption of a realized tree under
// its per-edge rule assignment.
type Usage struct {
	// LenByRule[ri] is the total wirelength routed under rule ri, µm.
	LenByRule []float64
	// TrackArea is Σ length × track pitch over all edges, µm² — the metric
	// the router's congestion model charges for the clock net.
	TrackArea float64
	// Vias approximates via count as 2 bends per direction change.
	Vias int
}

// ComputeUsage tallies routing-resource usage for the tree (electrical
// lengths and per-edge rules) against the technology's rule pitches.
func ComputeUsage(t *ctree.Tree, te *tech.Tech, paths []Path) Usage {
	u := Usage{LenByRule: make([]float64, te.NumRules())}
	for _, p := range paths {
		ri := t.Nodes[p.Node].Rule
		u.LenByRule[ri] += p.Length
		u.TrackArea += p.Length * te.Layer.TrackPitch(te.Rule(ri))
		u.Vias += 2 * p.Bends
	}
	return u
}
