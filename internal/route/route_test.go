package route

import (
	"math"
	"math/rand"
	"testing"

	"smartndr/internal/ctree"
	"smartndr/internal/dme"
	"smartndr/internal/geom"
	"smartndr/internal/tech"
	"smartndr/internal/topo"
)

func TestRealizeEdgeLShape(t *testing.T) {
	p, err := realizeEdge(geom.Point{X: 0, Y: 0}, geom.Point{X: 30, Y: 40}, 70, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Pts) != 3 {
		t.Fatalf("L-shape should have 3 points, got %v", p.Pts)
	}
	if !geom.ApproxEq(p.Length, 70, 1e-9) {
		t.Errorf("Length = %g", p.Length)
	}
	if p.Bends != 1 {
		t.Errorf("Bends = %d, want 1", p.Bends)
	}
	if p.Snaked {
		t.Error("no surplus, no snake")
	}
}

func TestRealizeEdgeStraight(t *testing.T) {
	p, err := realizeEdge(geom.Point{X: 0, Y: 0}, geom.Point{X: 50, Y: 0}, 50, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Pts) != 2 || p.Bends != 0 {
		t.Errorf("straight edge: %v bends=%d", p.Pts, p.Bends)
	}
}

func TestRealizeEdgeTooShortFails(t *testing.T) {
	if _, err := realizeEdge(geom.Point{}, geom.Point{X: 100, Y: 0}, 50, 1); err == nil {
		t.Error("electrical length below distance must fail")
	}
}

func TestSnakedLengthExact(t *testing.T) {
	cases := []struct {
		a, b geom.Point
		el   float64
	}{
		{geom.Point{X: 0, Y: 0}, geom.Point{X: 100, Y: 0}, 160},    // horizontal with surplus
		{geom.Point{X: 0, Y: 0}, geom.Point{X: 0, Y: 80}, 120},     // vertical with surplus
		{geom.Point{X: 0, Y: 0}, geom.Point{X: 60, Y: 40}, 150},    // L with surplus
		{geom.Point{X: 5, Y: 5}, geom.Point{X: 5, Y: 5}, 42},       // coincident, pure spur
		{geom.Point{X: 0, Y: 0}, geom.Point{X: 0.5, Y: 0}, 300},    // tiny run, huge surplus
		{geom.Point{X: 10, Y: 10}, geom.Point{X: -30, Y: 10}, 100}, // leftward
		{geom.Point{X: 10, Y: 10}, geom.Point{X: 10, Y: -30}, 90},  // downward
	}
	for _, c := range cases {
		p, err := realizeEdge(c.a, c.b, c.el, 1)
		if err != nil {
			t.Fatalf("%v→%v el=%g: %v", c.a, c.b, c.el, err)
		}
		if !geom.ApproxEq(p.Length, c.el, 1e-6) {
			t.Errorf("%v→%v el=%g: realized %g", c.a, c.b, c.el, p.Length)
		}
		if !p.Snaked {
			t.Errorf("%v→%v el=%g: should be snaked", c.a, c.b, c.el)
		}
		if p.Pts[0] != c.a || p.Pts[len(p.Pts)-1].Dist(c.b) > 1e-9 {
			t.Errorf("%v→%v: endpoints %v…%v", c.a, c.b, p.Pts[0], p.Pts[len(p.Pts)-1])
		}
	}
}

func TestRealizeWholeTree(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	sinks := make([]ctree.Sink, 64)
	for i := range sinks {
		sinks[i] = ctree.Sink{
			Loc: geom.Point{X: rng.Float64() * 2000, Y: rng.Float64() * 2000},
			Cap: (1 + rng.Float64()) * 1e-15,
		}
	}
	tr, err := topo.Build(topo.Bipartition, sinks, geom.Point{X: 1000, Y: 1000})
	if err != nil {
		t.Fatal(err)
	}
	if err := dme.Embed(tr, dme.Params{RPerUm: 3, CPerUm: 0.2e-15}); err != nil {
		t.Fatal(err)
	}
	paths, err := Realize(tr)
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != len(tr.Nodes)-1 {
		t.Fatalf("got %d paths for %d edges", len(paths), len(tr.Nodes)-1)
	}
	var total float64
	for _, p := range paths {
		parent := tr.Nodes[p.Node].Parent
		if p.Pts[0].Dist(tr.Nodes[parent].Loc) > 1e-9 {
			t.Fatalf("path %d does not start at parent", p.Node)
		}
		if p.Pts[len(p.Pts)-1].Dist(tr.Nodes[p.Node].Loc) > 1e-9 {
			t.Fatalf("path %d does not end at node", p.Node)
		}
		if !geom.ApproxEq(p.Length, tr.Nodes[p.Node].EdgeLen, 1e-6) {
			t.Fatalf("path %d length %g != edge %g", p.Node, p.Length, tr.Nodes[p.Node].EdgeLen)
		}
		// Rectilinearity: consecutive points share x or y.
		for i := 1; i < len(p.Pts); i++ {
			if p.Pts[i].X != p.Pts[i-1].X && p.Pts[i].Y != p.Pts[i-1].Y {
				t.Fatalf("path %d has a diagonal segment", p.Node)
			}
		}
		total += p.Length
	}
	if !geom.ApproxEq(total, tr.TotalWirelength(), 1e-4) {
		t.Errorf("realized total %g != tree wirelength %g", total, tr.TotalWirelength())
	}
}

func TestComputeUsage(t *testing.T) {
	te := tech.Tech45()
	sinks := []ctree.Sink{
		{Loc: geom.Point{X: 0, Y: 0}, Cap: 1e-15},
		{Loc: geom.Point{X: 100, Y: 0}, Cap: 1e-15},
	}
	tr, _ := topo.Build(topo.Bipartition, sinks, geom.Point{X: 50, Y: 50})
	if err := dme.Embed(tr, dme.Params{RPerUm: 3, CPerUm: 0.2e-15}); err != nil {
		t.Fatal(err)
	}
	tr.SetAllRules(te.BlanketRule)
	paths, err := Realize(tr)
	if err != nil {
		t.Fatal(err)
	}
	u := ComputeUsage(tr, te, paths)
	if !geom.ApproxEq(u.LenByRule[te.BlanketRule], tr.TotalWirelength(), 1e-6) {
		t.Errorf("LenByRule = %v, wirelength %g", u.LenByRule, tr.TotalWirelength())
	}
	wantArea := tr.TotalWirelength() * te.Layer.TrackPitch(te.Rule(te.BlanketRule))
	if !geom.ApproxEq(u.TrackArea, wantArea, 1e-6) {
		t.Errorf("TrackArea = %g, want %g", u.TrackArea, wantArea)
	}

	// Default rule uses less track area for the same length.
	tr.SetAllRules(te.DefaultRule)
	u2 := ComputeUsage(tr, te, paths)
	if u2.TrackArea >= u.TrackArea {
		t.Error("default rule must use less track area than blanket NDR")
	}
}

func TestRealizeRejectsCorruptTree(t *testing.T) {
	sinks := []ctree.Sink{
		{Loc: geom.Point{X: 0, Y: 0}, Cap: 1e-15},
		{Loc: geom.Point{X: 100, Y: 0}, Cap: 1e-15},
	}
	tr, _ := topo.Build(topo.Bipartition, sinks, geom.Point{})
	if err := dme.Embed(tr, dme.Params{RPerUm: 3, CPerUm: 0.2e-15}); err != nil {
		t.Fatal(err)
	}
	// Corrupt one electrical length below its geometric distance.
	for i := range tr.Nodes {
		if tr.Nodes[i].Parent != ctree.NoNode && tr.Nodes[i].EdgeLen > 10 {
			tr.Nodes[i].EdgeLen = 1e-9
			break
		}
	}
	if _, err := Realize(tr); err == nil {
		t.Error("corrupt tree should fail realization")
	}
}

func TestBendsNonNegativeAndSane(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for i := 0; i < 200; i++ {
		a := geom.Point{X: rng.Float64()*200 - 100, Y: rng.Float64()*200 - 100}
		b := geom.Point{X: rng.Float64()*200 - 100, Y: rng.Float64()*200 - 100}
		el := a.Dist(b) * (1 + rng.Float64())
		if el == 0 {
			continue
		}
		p, err := realizeEdge(a, b, el, 0)
		if err != nil {
			t.Fatal(err)
		}
		if p.Bends < 0 || p.Bends > len(p.Pts) {
			t.Fatalf("bends %d out of range for %d points", p.Bends, len(p.Pts))
		}
		if math.Abs(p.Length-el) > 1e-6 {
			t.Fatalf("length %g != %g", p.Length, el)
		}
	}
}
