// Package viz renders a synthesized clock tree as a standalone SVG: edges
// color-coded by routing-rule class with width proportional to the rule's
// wire width, buffers as squares sized by drive, sinks as dots. The output
// is what a physical designer would eyeball to sanity-check an NDR
// assignment — heavy rules should trace the trunk and junction stages.
package viz

import (
	"bufio"
	"fmt"
	"io"
	"os"

	"smartndr/internal/cell"
	"smartndr/internal/ctree"
	"smartndr/internal/geom"
	"smartndr/internal/route"
	"smartndr/internal/tech"
)

// rulePalette colors rule classes from cool (cheap) to hot (heavy). The
// index is the rank in capacitance order; extra classes reuse the last hue.
var rulePalette = []string{
	"#4878cf", // cheapest
	"#6acc65",
	"#d5bb67",
	"#ee854a",
	"#d65f5f", // heaviest
	"#956cb4",
}

// Options configure rendering.
type Options struct {
	// WidthPx is the SVG canvas width in pixels (height follows the die
	// aspect). Default 1000.
	WidthPx float64
	// ShowSinks toggles sink dots (default true via NewOptions).
	ShowSinks bool
	// ShowBuffers toggles buffer markers (default true via NewOptions).
	ShowBuffers bool
	// Title is drawn in the top-left corner.
	Title string
}

// NewOptions returns the defaults.
func NewOptions(title string) Options {
	return Options{WidthPx: 1000, ShowSinks: true, ShowBuffers: true, Title: title}
}

// WriteSVG renders the tree.
func WriteSVG(w io.Writer, t *ctree.Tree, te *tech.Tech, lib *cell.Library, opt Options) error {
	if opt.WidthPx <= 0 {
		opt.WidthPx = 1000
	}
	if t.Root == ctree.NoNode || len(t.Nodes) == 0 {
		return fmt.Errorf("viz: tree has no nodes")
	}
	bb := geom.NewEmptyBBox()
	for i := range t.Nodes {
		bb.Extend(t.Nodes[i].Loc)
	}
	for _, s := range t.Sinks {
		bb.Extend(s.Loc)
	}
	if bb.Empty() {
		return fmt.Errorf("viz: tree has no geometry")
	}
	pad := 0.03 * (bb.Width() + bb.Height()) / 2
	bb.Extend(geom.Point{X: bb.MinX - pad, Y: bb.MinY - pad})
	bb.Extend(geom.Point{X: bb.MaxX + pad, Y: bb.MaxY + pad})
	scale := opt.WidthPx / bb.Width()
	heightPx := bb.Height() * scale
	// SVG y grows downward; chip y grows upward.
	px := func(p geom.Point) (float64, float64) {
		return (p.X - bb.MinX) * scale, heightPx - (p.Y-bb.MinY)*scale
	}

	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, `<svg xmlns="http://www.w3.org/2000/svg" width="%.0f" height="%.0f" viewBox="0 0 %.1f %.1f">`+"\n",
		opt.WidthPx, heightPx, opt.WidthPx, heightPx)
	fmt.Fprintf(bw, `<rect width="100%%" height="100%%" fill="#fafafa"/>`+"\n")

	// Rules ranked by capacitance so the palette reads cheap→heavy.
	rank := make([]int, te.NumRules())
	{
		order := make([]int, te.NumRules())
		for i := range order {
			order[i] = i
		}
		for i := 1; i < len(order); i++ {
			for j := i; j > 0 && te.Layer.CPerUm(te.Rule(order[j])) < te.Layer.CPerUm(te.Rule(order[j-1])); j-- {
				order[j], order[j-1] = order[j-1], order[j]
			}
		}
		for r, ri := range order {
			rank[ri] = r
		}
	}
	color := func(ri int) string {
		k := rank[ri]
		if k >= len(rulePalette) {
			k = len(rulePalette) - 1
		}
		return rulePalette[k]
	}

	// Edges as realized rectilinear paths.
	paths, err := route.Realize(t)
	if err != nil {
		return fmt.Errorf("viz: %w", err)
	}
	for _, p := range paths {
		ri := t.Nodes[p.Node].Rule
		sw := 0.8 + 1.2*te.Rule(ri).WMult
		fmt.Fprintf(bw, `<polyline fill="none" stroke="%s" stroke-width="%.2f" stroke-opacity="0.8" points="`,
			color(ri), sw)
		for _, pt := range p.Pts {
			x, y := px(pt)
			fmt.Fprintf(bw, "%.1f,%.1f ", x, y)
		}
		fmt.Fprint(bw, `"/>`+"\n")
	}

	if opt.ShowBuffers {
		for i := range t.Nodes {
			bi := t.Nodes[i].BufIdx
			if bi == ctree.NoBuf {
				continue
			}
			x, y := px(t.Nodes[i].Loc)
			size := 3 + 0.08*lib.Buffers[bi].Drive
			fmt.Fprintf(bw, `<rect x="%.1f" y="%.1f" width="%.1f" height="%.1f" fill="#333333"/>`+"\n",
				x-size/2, y-size/2, size, size)
		}
	}
	if opt.ShowSinks {
		for _, s := range t.Sinks {
			x, y := px(s.Loc)
			fmt.Fprintf(bw, `<circle cx="%.1f" cy="%.1f" r="1.6" fill="#1a6faf" fill-opacity="0.7"/>`+"\n", x, y)
		}
	}

	// Legend.
	lx, ly := 12.0, 24.0
	if opt.Title != "" {
		fmt.Fprintf(bw, `<text x="%.0f" y="%.0f" font-family="monospace" font-size="14" fill="#222">%s</text>`+"\n",
			lx, ly-8, opt.Title)
		ly += 12
	}
	for i := 0; i < te.NumRules(); i++ {
		fmt.Fprintf(bw, `<line x1="%.0f" y1="%.0f" x2="%.0f" y2="%.0f" stroke="%s" stroke-width="%.1f"/>`+"\n",
			lx, ly, lx+28, ly, color(i), 0.8+1.2*te.Rule(i).WMult)
		fmt.Fprintf(bw, `<text x="%.0f" y="%.0f" font-family="monospace" font-size="11" fill="#444">%s</text>`+"\n",
			lx+34, ly+4, te.Rule(i).Name)
		ly += 15
	}
	fmt.Fprint(bw, "</svg>\n")
	return bw.Flush()
}

// WriteSVGFile renders to a path.
func WriteSVGFile(path string, t *ctree.Tree, te *tech.Tech, lib *cell.Library, opt Options) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("viz: %w", err)
	}
	defer f.Close()
	return WriteSVG(f, t, te, lib, opt)
}
