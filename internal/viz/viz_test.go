package viz

import (
	"bytes"
	"encoding/xml"
	"math/rand"
	"strings"
	"testing"

	"smartndr/internal/cell"
	"smartndr/internal/core"
	"smartndr/internal/ctree"
	"smartndr/internal/cts"
	"smartndr/internal/geom"
	"smartndr/internal/tech"
)

func builtTree(t *testing.T) (*ctree.Tree, *tech.Tech, *cell.Library) {
	t.Helper()
	te := tech.Tech45()
	lib := cell.Default45()
	rng := rand.New(rand.NewSource(5))
	sinks := make([]ctree.Sink, 60)
	for i := range sinks {
		sinks[i] = ctree.Sink{
			Loc: geom.Point{X: rng.Float64() * 1000, Y: rng.Float64() * 800},
			Cap: 2e-15,
		}
	}
	res, err := cts.Build(sinks, geom.Point{X: 500, Y: 400}, te, lib, cts.Options{})
	if err != nil {
		t.Fatal(err)
	}
	res.Tree.SetAllRules(te.BlanketRule)
	return res.Tree, te, lib
}

func TestWriteSVGWellFormed(t *testing.T) {
	tr, te, lib := builtTree(t)
	if _, err := core.Optimize(tr, te, lib, core.Config{}); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteSVG(&buf, tr, te, lib, NewOptions("test tree")); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	// Well-formed XML.
	dec := xml.NewDecoder(strings.NewReader(out))
	for {
		_, err := dec.Token()
		if err != nil {
			if err.Error() == "EOF" {
				break
			}
			t.Fatalf("invalid XML: %v", err)
		}
	}
	// Contains the structural elements.
	for _, want := range []string{"<svg", "polyline", "circle", "rect", "test tree", "2W2S"} {
		if !strings.Contains(out, want) {
			t.Errorf("SVG missing %q", want)
		}
	}
	// One polyline per edge.
	if n := strings.Count(out, "<polyline"); n != len(tr.Nodes)-1 {
		t.Errorf("polylines %d, edges %d", n, len(tr.Nodes)-1)
	}
	// One circle per sink (legend has none).
	if n := strings.Count(out, "<circle"); n != len(tr.Sinks) {
		t.Errorf("circles %d, sinks %d", n, len(tr.Sinks))
	}
}

func TestWriteSVGOptions(t *testing.T) {
	tr, te, lib := builtTree(t)
	var buf bytes.Buffer
	opt := Options{WidthPx: 500} // sinks and buffers off
	if err := WriteSVG(&buf, tr, te, lib, opt); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "<circle") {
		t.Error("sinks drawn despite ShowSinks=false")
	}
	if !strings.Contains(buf.String(), `width="500"`) {
		t.Error("custom width ignored")
	}
}

func TestWriteSVGFile(t *testing.T) {
	tr, te, lib := builtTree(t)
	p := t.TempDir() + "/tree.svg"
	if err := WriteSVGFile(p, tr, te, lib, NewOptions("f")); err != nil {
		t.Fatal(err)
	}
}

func TestWriteSVGEmptyTreeFails(t *testing.T) {
	tr := ctree.NewTree([]ctree.Sink{{Cap: 1e-15}}, geom.Point{})
	var buf bytes.Buffer
	if err := WriteSVG(&buf, tr, tech.Tech45(), cell.Default45(), NewOptions("")); err == nil {
		t.Error("geometry-less tree must fail")
	}
}
