package experiments

import (
	"bytes"
	"strings"
	"testing"
)

// TestAllExperimentsQuick exercises every registered experiment in quick
// mode: each must run cleanly and produce a non-trivial table.
func TestAllExperimentsQuick(t *testing.T) {
	for _, r := range Registry() {
		r := r
		t.Run(r.ID, func(t *testing.T) {
			var buf bytes.Buffer
			if err := r.Run(Options{Out: &buf, Quick: true}); err != nil {
				t.Fatal(err)
			}
			out := buf.String()
			if len(strings.Split(out, "\n")) < 4 {
				t.Errorf("%s produced a trivial table:\n%s", r.ID, out)
			}
		})
	}
}

func TestCSVDumps(t *testing.T) {
	dir := t.TempDir()
	var buf bytes.Buffer
	if err := F1SlewSweep(Options{Out: &buf, Quick: true, DataDir: dir}); err != nil {
		t.Fatal(err)
	}
}

func TestByID(t *testing.T) {
	if _, err := ByID("t2"); err != nil {
		t.Fatal(err)
	}
	if _, err := ByID("zz"); err == nil {
		t.Error("unknown id must fail")
	}
}

func TestAllQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("full suite in -short")
	}
	var buf bytes.Buffer
	if err := All(Options{Out: &buf, Quick: true}); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"T1:", "T2:", "T3:", "F1:", "F2:", "F3:", "F4:", "A1:", "A2:", "A3:"} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("output missing %s", want)
		}
	}
}
