package experiments

import (
	"context"
	"fmt"
	"math/rand"

	"smartndr/internal/cell"
	"smartndr/internal/core"
	"smartndr/internal/ctree"
	"smartndr/internal/cts"
	"smartndr/internal/geom"
	"smartndr/internal/par"
	"smartndr/internal/report"
	"smartndr/internal/sta"
	"smartndr/internal/tech"
	"smartndr/internal/workload"
)

// T4MultiCorner runs three-corner signoff per scheme: each scheme's tree
// is analyzed at typical, slow, and fast silicon. Expected shape: within-
// corner skews track the nominal ordering; the cross-corner spread is an
// order of magnitude larger than any single-corner skew (why signoff uses
// common-path-pessimism removal), identical in shape across schemes.
func T4MultiCorner(o Options) error {
	te := tech.Tech45()
	lib := cell.Default45()
	spec, err := workload.ByName("cns02")
	if err != nil {
		return err
	}
	if o.Quick {
		spec.Sinks /= 4
	}
	_, tree, err := buildTr(spec, te, lib, o.Tracer)
	if err != nil {
		return err
	}
	tb := report.NewTable("T4: three-corner signoff ("+spec.Name+")",
		"scheme", "corner", "skew (ps)", "worst slew (ps)", "viol", "ins delay (ps)", "x-corner (ps)")
	schemes := []string{"all-default", "blanket", "smart"}
	// Per-scheme signoff runs concurrently on private clones; the reports
	// are slot-addressed so rows render in presentation order.
	reps := make([]*core.MultiCornerReport, len(schemes))
	//lint:allow ctxflow offline batch CLI with no cancellation semantics; runs to completion by design
	err = par.ForEach(context.Background(), par.Workers(o.Workers), len(schemes), func(si int) error {
		t := tree.Clone()
		switch schemes[si] {
		case "all-default":
			core.AssignAll(t, te.DefaultRule)
		case "blanket":
			core.AssignAll(t, te.BlanketRule)
		case "smart":
			core.AssignAll(t, te.BlanketRule)
			if _, err := core.Optimize(t, te, lib, core.Config{Tracer: o.Tracer}); err != nil {
				return err
			}
		}
		rep, err := core.EvaluateCorners(t, te, lib, 40e-12, tech.StandardCorners())
		if err != nil {
			return err
		}
		reps[si] = rep
		return nil
	})
	if err != nil {
		return err
	}
	for si, sc := range schemes {
		for i, cm := range reps[si].Corners {
			cross := ""
			if i == 0 {
				cross = report.Ps(reps[si].CrossCornerSkew)
			}
			tb.AddRow(sc, cm.Corner.Name, report.Ps(cm.Skew), report.Ps(cm.WorstSlew),
				fmt.Sprintf("%d", cm.SlewViol), report.Ps(cm.MaxInsDel), cross)
		}
	}
	return tb.Render(o.Out)
}

// T5ElectromigrationAudit reports EM width-floor violations per scheme and
// the cost of enforcing the floor on the smart result. Expected shape:
// all-default violates on every heavy in-stage edge; blanket is clean;
// smart needs only a sliver of enforcement cap because the heavy edges
// are exactly the ones it already kept wide for slew.
func T5ElectromigrationAudit(o Options) error {
	te := tech.Tech45()
	lib := cell.Default45()
	spec := figureSpec(o)
	_, tree, err := buildTr(spec, te, lib, o.Tracer)
	if err != nil {
		return err
	}
	l := core.DefaultEMLimit()
	tb := report.NewTable(
		fmt.Sprintf("T5: electromigration audit (%s, %.1f mA/µm RMS)", spec.Name, l.JRms*1e3),
		"scheme", "EM violations", "worst need (×W)", "enforce upgrades", "power before (mW)", "power after (mW)")
	for _, sc := range []string{"all-default", "blanket", "smart", "smart+EM"} {
		t := tree.Clone()
		switch sc {
		case "all-default":
			core.AssignAll(t, te.DefaultRule)
		case "blanket":
			core.AssignAll(t, te.BlanketRule)
		case "smart":
			core.AssignAll(t, te.BlanketRule)
			if _, err := core.Optimize(t, te, lib, core.Config{Tracer: o.Tracer}); err != nil {
				return err
			}
		case "smart+EM":
			// EM floors respected *inside* the optimizer: edges that carry
			// real current never leave their width class, so the audit is
			// clean by construction and no post-hoc upgrade churn occurs.
			core.AssignAll(t, te.BlanketRule)
			lim := l
			if _, err := core.Optimize(t, te, lib, core.Config{EM: &lim, Tracer: o.Tracer}); err != nil {
				return err
			}
		}
		viols, err := core.AuditEM(t, te, lib, 40e-12, l)
		if err != nil {
			return err
		}
		worstNeed := 0.0
		for _, v := range viols {
			if v.Required > worstNeed {
				worstNeed = v.Required
			}
		}
		before, _, err := core.Evaluate(t, te, lib, 40e-12)
		if err != nil {
			return err
		}
		up, err := core.EnforceEM(t, te, lib, 40e-12, l)
		if err != nil {
			return err
		}
		after, _, err := core.Evaluate(t, te, lib, 40e-12)
		if err != nil {
			return err
		}
		tb.AddRow(sc, fmt.Sprintf("%d", len(viols)), fmt.Sprintf("%.2f", worstNeed),
			fmt.Sprintf("%d", up), report.MW(before.Power.Total()), report.MW(after.Power.Total()))
	}
	return tb.Render(o.Out)
}

// A4OptimalityGap compares the greedy optimizer against exhaustive optimal
// assignment on small instances. Expected shape: gap within a few percent
// (the capacitance objective is separable; the couplings greedy ignores
// are second-order at this scale).
func A4OptimalityGap(o Options) error {
	te := tech.Tech45()
	lib := cell.Default45()
	tb := report.NewTable("A4: greedy vs exhaustive optimal (4-sink instances)",
		"seed", "edges", "evaluated", "optimal cap (fF)", "greedy cap (fF)", "gap")
	seeds := []int64{1, 2, 3, 4, 5, 6, 7, 8}
	if o.Quick {
		seeds = seeds[:3]
	}
	for _, seed := range seeds {
		rng := rand.New(rand.NewSource(seed))
		sinks := make([]ctree.Sink, 4)
		for i := range sinks {
			sinks[i] = ctree.Sink{
				Loc: geom.Point{X: rng.Float64() * 300, Y: rng.Float64() * 300},
				Cap: (1 + rng.Float64()) * 1e-15,
			}
		}
		res, err := cts.Build(sinks, geom.Point{X: 150, Y: 150}, te, lib, cts.Options{Tracer: o.Tracer})
		if err != nil {
			return err
		}
		tree := res.Tree
		tree.SetAllRules(te.BlanketRule)
		opt, err := core.ExhaustiveOptimal(tree, te, lib, 40e-12, te.MaxSlew, te.MaxSkew)
		if err != nil {
			return err
		}
		if !opt.Feasible {
			tb.AddRow(fmt.Sprintf("%d", seed), "-", "-", "infeasible", "-", "-")
			continue
		}
		greedy := tree.Clone()
		if _, err := core.Optimize(greedy, te, lib, core.Config{DisableRepair: true, Tracer: o.Tracer}); err != nil {
			return err
		}
		an, err := sta.Analyze(greedy, te, lib, 40e-12)
		if err != nil {
			return err
		}
		edges := len(tree.Nodes) - 1
		gap := an.TotalSwitchedCap()/opt.BestCap - 1
		tb.AddRow(fmt.Sprintf("%d", seed), fmt.Sprintf("%d", edges),
			fmt.Sprintf("%d", opt.Evaluated),
			fmt.Sprintf("%.2f", opt.BestCap*1e15),
			fmt.Sprintf("%.2f", an.TotalSwitchedCap()*1e15),
			report.Pct(gap))
	}
	return tb.Render(o.Out)
}
