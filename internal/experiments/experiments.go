// Package experiments regenerates every table and figure of the
// reconstructed evaluation (see DESIGN.md §3 — the original paper text was
// unavailable, so the suite follows the conventions of the CTS-power
// literature). Each experiment renders an aligned text table to the given
// writer and, when a data directory is set, dumps the plotted series as
// CSV. The same entry points back the root-level testing.B benchmarks.
package experiments

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"math"
	"time"

	"smartndr/internal/cell"
	"smartndr/internal/core"
	"smartndr/internal/ctree"
	"smartndr/internal/cts"
	"smartndr/internal/obs"
	"smartndr/internal/par"
	"smartndr/internal/rctree"
	"smartndr/internal/report"
	"smartndr/internal/sio"
	"smartndr/internal/tech"
	"smartndr/internal/workload"
)

// Options configure an experiment run.
type Options struct {
	// Out receives the rendered tables.
	Out io.Writer
	// DataDir, when non-empty, receives CSV series for the figures.
	DataDir string
	// Quick trims workload sizes so the full suite runs in seconds —
	// used by tests and the root benchmarks; the shapes are unchanged.
	Quick bool
	// Tracer, when non-nil, records a span per experiment plus the
	// synthesis/optimization phases inside each. Nil disables tracing.
	Tracer *obs.Tracer
	// Workers bounds the parallel sections inside experiments (per-scheme,
	// per-corner, and per-K evaluation, plus Monte Carlo trials): 0 uses
	// GOMAXPROCS, 1 forces serial execution. Table contents and row order
	// are identical for every value — parallel runs collect rows into
	// index-addressed slices before rendering. Additionally, Workers > 1
	// lets All run independent experiments concurrently.
	Workers int
}

// Runner is one registered experiment.
type Runner struct {
	ID    string
	Title string
	Run   func(Options) error
}

// Registry lists all experiments in presentation order.
func Registry() []Runner {
	return []Runner{
		{"t1", "T1: NDR rule-class characterization", T1RuleCharacterization},
		{"t2", "T2: main per-benchmark comparison", T2MainComparison},
		{"t3", "T3: runtime scaling", T3RuntimeScaling},
		{"f1", "F1: power vs slew-constraint sweep", F1SlewSweep},
		{"f2", "F2: NDR usage by stage depth", F2DepthProfile},
		{"f3", "F3: skew under process variation", F3Variation},
		{"f4", "F4: power/robustness vs NDR fraction (TopK sweep)", F4TopKSweep},
		{"a1", "A1: candidate-ordering ablation", A1OrderAblation},
		{"a2", "A2: skew-repair ablation", A2RepairAblation},
		{"a3", "A3: construction-model ablation", A3ModelAblation},
		{"t4", "T4: three-corner signoff", T4MultiCorner},
		{"t5", "T5: electromigration audit", T5ElectromigrationAudit},
		{"a4", "A4: greedy vs exhaustive optimal", A4OptimalityGap},
	}
}

// ByID returns the experiment with the given id.
func ByID(id string) (Runner, error) {
	for _, r := range Registry() {
		if r.ID == id {
			return r, nil
		}
	}
	return Runner{}, fmt.Errorf("experiments: unknown id %q", id)
}

// All runs the full suite. With Workers > 1, independent experiments run
// concurrently: each renders into its own buffer and the buffers are
// flushed in registry order, so stdout is identical to a serial run (up
// to measured wall-clock values in T3). Experiments are independent by
// construction — each builds its own technology, library, and trees.
func All(o Options) error {
	reg := Registry()
	if o.Workers <= 1 {
		for _, r := range reg {
			if err := RunOne(r, o); err != nil {
				return fmt.Errorf("%s: %w", r.ID, err)
			}
			fmt.Fprintln(o.Out)
		}
		return nil
	}
	bufs := make([]bytes.Buffer, len(reg))
	errs := make([]error, len(reg))
	// Errors are collected per experiment rather than cancelling the
	// fan-out, so the output prefix before a failure matches serial runs.
	//lint:allow ctxflow offline batch CLI with no cancellation semantics; a cancelled fan-out would break the bit-identical-output contract
	_ = par.ForEach(context.Background(), o.Workers, len(reg), func(i int) error {
		oi := o
		oi.Out = &bufs[i]
		errs[i] = RunOne(reg[i], oi)
		return nil
	})
	for i, r := range reg {
		if errs[i] != nil {
			return fmt.Errorf("%s: %w", r.ID, errs[i])
		}
		if _, err := bufs[i].WriteTo(o.Out); err != nil {
			return err
		}
		fmt.Fprintln(o.Out)
	}
	return nil
}

// RunOne runs one experiment under an "exp.<id>" span so the
// timing table attributes wall time per experiment.
func RunOne(r Runner, o Options) error {
	sp := o.Tracer.Start("exp."+r.ID, obs.S("title", r.Title))
	defer sp.End()
	err := r.Run(o)
	if err != nil {
		sp.Set("error", err.Error())
	}
	return err
}

// suite returns the benchmark list for the options.
func suite(o Options) []workload.Spec {
	specs := workload.CNSSuite()
	if o.Quick {
		quick := specs[:2]
		out := make([]workload.Spec, len(quick))
		copy(out, quick)
		for i := range out {
			out[i].Sinks /= 4
		}
		return out
	}
	return specs
}

// build constructs the blanket tree for a spec.
func build(spec workload.Spec, te *tech.Tech, lib *cell.Library) (*workload.Benchmark, *ctree.Tree, error) {
	return buildTr(spec, te, lib, nil)
}

// buildTr is build with an optional tracer threaded into synthesis.
func buildTr(spec workload.Spec, te *tech.Tech, lib *cell.Library, tr *obs.Tracer) (*workload.Benchmark, *ctree.Tree, error) {
	bm, err := workload.Generate(spec)
	if err != nil {
		return nil, nil, err
	}
	res, err := cts.Build(bm.Sinks, bm.Src, te, lib, cts.Options{Tracer: tr})
	if err != nil {
		return nil, nil, err
	}
	res.Tree.SetAllRules(te.BlanketRule)
	return bm, res.Tree, nil
}

// T1RuleCharacterization tabulates each rule class's per-micron parasitics
// and the delay/slew of a canonical 1 mm repeater-free stage — the table
// that motivates everything else: NDRs buy RC speed with capacitance.
func T1RuleCharacterization(o Options) error {
	te := tech.Tech45()
	lib := cell.Default45()
	tb := report.NewTable(
		"T1: rule-class characterization (tech45, 1 mm stage driven by "+lib.Strongest().Name+")",
		"rule", "r (Ω/µm)", "c (fF/µm)", "pitch (µm)", "elmore (ps)", "slew (ps)", "cap vs 1W1S")
	defC := te.Layer.CPerUm(te.Rule(te.DefaultRule))
	const stage = 1000.0 // µm
	drv := lib.Strongest()
	for i := 0; i < te.NumRules(); i++ {
		rule := te.Rule(i)
		r := te.Layer.RPerUm(rule)
		c := te.Layer.CPerUm(rule)
		elm := r * stage * (c*stage/2 + 2e-15)
		outSlew := drv.OutSlewAt(50e-12, c*stage+2e-15)
		slew := math.Hypot(outSlew, rctree.Ln9*elm)
		tb.AddRow(rule.Name,
			fmt.Sprintf("%.2f", r),
			fmt.Sprintf("%.3f", c*1e15),
			fmt.Sprintf("%.3f", te.Layer.TrackPitch(rule)),
			report.Ps(elm),
			report.Ps(slew),
			report.Pct(c/defC-1),
		)
	}
	return tb.Render(o.Out)
}

// T2MainComparison is the headline table: per benchmark, the four schemes'
// clock power, wirelength, buffers, worst slew, and skew. The shape to
// check: Smart ≤ Blanket power with zero violations; AllDefault cheapest
// but violating; TopK in between.
func T2MainComparison(o Options) error {
	te := tech.Tech45()
	lib := cell.Default45()
	tb := report.NewTable(
		"T2: scheme comparison (tech45; slew ≤ "+report.Ps(te.MaxSlew)+" ps, skew ≤ "+report.Ps(te.MaxSkew)+" ps)",
		"bench", "sinks", "scheme", "power (mW)", "Δpower", "cap (pF)", "WL (mm)", "bufs",
		"slew (ps)", "viol", "skew (ps)", "NDR len")
	var series struct {
		bench                     []float64
		smart, blanket, def, topk []float64
	}
	for bi, spec := range suite(o) {
		_, tree, err := buildTr(spec, te, lib, o.Tracer)
		if err != nil {
			return err
		}
		type schemeRun struct {
			name  string
			apply func(t *ctree.Tree) error
		}
		runs := []schemeRun{
			{"all-default", func(t *ctree.Tree) error { core.AssignAll(t, te.DefaultRule); return nil }},
			{"blanket", func(t *ctree.Tree) error { core.AssignAll(t, te.BlanketRule); return nil }},
			{"trunk", func(t *ctree.Tree) error { core.AssignTrunk(t, te); return nil }},
			{"smart", func(t *ctree.Tree) error {
				core.AssignAll(t, te.BlanketRule)
				_, err := core.Optimize(t, te, lib, core.Config{Tracer: o.Tracer})
				return err
			}},
		}
		// Schemes evaluate concurrently on private clones; metrics land in
		// a slot per run so the rendered rows keep presentation order.
		ms := make([]core.Metrics, len(runs))
		//lint:allow ctxflow offline batch CLI with no cancellation semantics; runs to completion by design
		err = par.ForEach(context.Background(), par.Workers(o.Workers), len(runs), func(ri int) error {
			t := tree.Clone()
			if err := runs[ri].apply(t); err != nil {
				return err
			}
			m, _, err := core.Evaluate(t, te, lib, 40e-12)
			if err != nil {
				return err
			}
			ms[ri] = m
			return nil
		})
		if err != nil {
			return err
		}
		var blanketPower float64
		for ri, run := range runs {
			m := ms[ri]
			p := m.Power.Total()
			dp := "—"
			if run.name == "blanket" {
				blanketPower = p
			} else if blanketPower > 0 {
				dp = report.Pct(p/blanketPower - 1)
			}
			tb.AddRow(spec.Name, fmt.Sprintf("%d", spec.Sinks), run.name,
				report.MW(p), dp, report.PF(m.SwitchedCap),
				fmt.Sprintf("%.2f", m.Wirelength/1000),
				fmt.Sprintf("%d", m.Buffers),
				report.Ps(m.WorstSlew), fmt.Sprintf("%d", m.SlewViol),
				report.Ps(m.Skew),
				report.Pct(m.NDRFraction),
			)
			switch run.name {
			case "smart":
				series.smart = append(series.smart, p)
			case "blanket":
				series.blanket = append(series.blanket, p)
			case "all-default":
				series.def = append(series.def, p)
			case "trunk":
				series.topk = append(series.topk, p)
			}
		}
		series.bench = append(series.bench, float64(bi+1))
	}
	if o.DataDir != "" {
		if err := sio.WriteCSVFile(o.DataDir+"/t2_power.csv",
			sio.Series{Name: "bench", Values: series.bench},
			sio.Series{Name: "all_default_w", Values: series.def},
			sio.Series{Name: "blanket_w", Values: series.blanket},
			sio.Series{Name: "trunk_w", Values: series.topk},
			sio.Series{Name: "smart_w", Values: series.smart},
		); err != nil {
			return err
		}
	}
	return tb.Render(o.Out)
}

// T3RuntimeScaling measures wall-clock of synthesis and optimization
// against sink count.
func T3RuntimeScaling(o Options) error {
	te := tech.Tech45()
	lib := cell.Default45()
	sizes := []int{500, 1000, 2000, 4000, 8000, 16000}
	if o.Quick {
		sizes = []int{250, 500, 1000}
	}
	tb := report.NewTable("T3: runtime scaling (tech45, uniform sinks)",
		"sinks", "nodes", "build (ms)", "optimize (ms)", "total (ms)")
	var xs, build0, opt0 []float64
	for _, n := range sizes {
		spec := workload.Spec{
			Name: fmt.Sprintf("scale%d", n), Dist: workload.Uniform, Sinks: n,
			DieX: 3000 * math.Sqrt(float64(n)/1000), DieY: 2500 * math.Sqrt(float64(n)/1000),
			CapMin: 1e-15, CapMax: 4e-15, Seed: int64(n),
		}
		bm, err := workload.Generate(spec)
		if err != nil {
			return err
		}
		// T3's subject *is* wall-clock runtime; its rows are the one table
		// exempt from the bit-identical-output contract (docs/performance.md).
		t0 := time.Now() //lint:allow wallclock — runtime scaling is what T3 measures
		res, err := cts.Build(bm.Sinks, bm.Src, te, lib, cts.Options{Tracer: o.Tracer})
		if err != nil {
			return err
		}
		buildMS := time.Since(t0).Seconds() * 1e3 //lint:allow wallclock — runtime scaling is what T3 measures
		res.Tree.SetAllRules(te.BlanketRule)
		t1 := time.Now() //lint:allow wallclock — runtime scaling is what T3 measures
		if _, err := core.Optimize(res.Tree, te, lib, core.Config{Tracer: o.Tracer}); err != nil {
			return err
		}
		optMS := time.Since(t1).Seconds() * 1e3 //lint:allow wallclock — runtime scaling is what T3 measures
		tb.AddRow(fmt.Sprintf("%d", n), fmt.Sprintf("%d", len(res.Tree.Nodes)),
			fmt.Sprintf("%.0f", buildMS), fmt.Sprintf("%.0f", optMS),
			fmt.Sprintf("%.0f", buildMS+optMS))
		xs = append(xs, float64(n))
		build0 = append(build0, buildMS)
		opt0 = append(opt0, optMS)
	}
	if o.DataDir != "" {
		if err := sio.WriteCSVFile(o.DataDir+"/t3_runtime.csv",
			sio.Series{Name: "sinks", Values: xs},
			sio.Series{Name: "build_ms", Values: build0},
			sio.Series{Name: "optimize_ms", Values: opt0},
		); err != nil {
			return err
		}
	}
	return tb.Render(o.Out)
}

// workhorse benchmark for the figure experiments.
func figureSpec(o Options) workload.Spec {
	spec, _ := workload.ByName("cns03")
	if o.Quick {
		spec.Sinks = 500
	}
	return spec
}
