package experiments

import (
	"bytes"
	"strings"
	"testing"
)

// TestExperimentsWorkerCountInvariance: the restructured experiments
// collect rows into index-addressed slices before rendering, so their
// rendered tables must be byte-identical at any worker count. (T3 is
// excluded everywhere it reports measured wall-clock milliseconds.)
func TestExperimentsWorkerCountInvariance(t *testing.T) {
	for _, id := range []string{"t2", "t4", "f3", "f4"} {
		id := id
		t.Run(id, func(t *testing.T) {
			r, err := ByID(id)
			if err != nil {
				t.Fatal(err)
			}
			render := func(workers int) string {
				var buf bytes.Buffer
				if err := r.Run(Options{Out: &buf, Quick: true, Workers: workers}); err != nil {
					t.Fatalf("workers=%d: %v", workers, err)
				}
				return buf.String()
			}
			serial := render(1)
			for _, workers := range []int{2, 8} {
				if got := render(workers); got != serial {
					t.Errorf("workers=%d output differs from serial:\n--- serial ---\n%s\n--- workers=%d ---\n%s",
						workers, serial, workers, got)
				}
			}
		})
	}
}

// TestAllParallel: the concurrent suite must produce every table, in
// registry order, exactly as the serial suite frames them.
func TestAllParallel(t *testing.T) {
	if testing.Short() {
		t.Skip("full suite in -short")
	}
	var buf bytes.Buffer
	if err := All(Options{Out: &buf, Quick: true, Workers: 4}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	prev := -1
	for _, r := range Registry() {
		marker := strings.ToUpper(r.ID) + ":"
		at := strings.Index(out, marker)
		if at < 0 {
			t.Errorf("parallel All output missing %s", marker)
			continue
		}
		if at < prev {
			t.Errorf("%s rendered out of registry order", marker)
		}
		prev = at
	}
}
