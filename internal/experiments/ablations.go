package experiments

import (
	"fmt"

	"smartndr/internal/cell"
	"smartndr/internal/core"
	"smartndr/internal/cts"
	"smartndr/internal/report"
	"smartndr/internal/sta"
	"smartndr/internal/tech"
	"smartndr/internal/workload"
)

// A1OrderAblation compares the optimizer's candidate orderings:
// sensitivity (largest cap gain first) vs structural index orders. The
// expected shape: sensitivity matches or beats the naive orders in final
// capacitance at equal constraint compliance — ordering matters because
// early acceptances consume the shared skew budget.
func A1OrderAblation(o Options) error {
	te := tech.Tech45()
	lib := cell.Default45()
	specs := []string{"cns02", "cns03"}
	if o.Quick {
		specs = specs[:1]
	}
	tb := report.NewTable("A1: candidate-ordering ablation",
		"bench", "order", "cap (pF)", "power (mW)", "downgrades", "viol", "skew (ps)")
	for _, name := range specs {
		spec, err := workload.ByName(name)
		if err != nil {
			return err
		}
		if o.Quick {
			spec.Sinks /= 4
		}
		_, tree, err := buildTr(spec, te, lib, o.Tracer)
		if err != nil {
			return err
		}
		for _, ord := range []core.Order{core.BySensitivity, core.ByIndex, core.ByReverse} {
			t := tree.Clone()
			core.AssignAll(t, te.BlanketRule)
			stats, err := core.Optimize(t, te, lib, core.Config{Order: ord, Tracer: o.Tracer})
			if err != nil {
				return err
			}
			m, _, err := core.Evaluate(t, te, lib, 40e-12)
			if err != nil {
				return err
			}
			tb.AddRow(spec.Name, ord.String(), report.PF(m.SwitchedCap),
				report.MW(m.Power.Total()), fmt.Sprintf("%d", stats.Downgrades),
				fmt.Sprintf("%d", m.SlewViol), report.Ps(m.Skew))
		}
	}
	return tb.Render(o.Out)
}

// A2RepairAblation isolates the integrated skew repair: without it the
// optimizer's residual perturbation stays in the skew number; with it the
// bound is met for a small wire premium.
func A2RepairAblation(o Options) error {
	te := tech.Tech45()
	lib := cell.Default45()
	spec := figureSpec(o)
	_, tree, err := buildTr(spec, te, lib, o.Tracer)
	if err != nil {
		return err
	}
	tb := report.NewTable("A2: skew-repair ablation ("+spec.Name+")",
		"repair", "skew (ps)", "bound met", "repair wire (µm)", "power (mW)", "cap (pF)")
	for _, disable := range []bool{true, false} {
		t := tree.Clone()
		core.AssignAll(t, te.BlanketRule)
		stats, err := core.Optimize(t, te, lib, core.Config{DisableRepair: disable, Tracer: o.Tracer})
		if err != nil {
			return err
		}
		m, _, err := core.Evaluate(t, te, lib, 40e-12)
		if err != nil {
			return err
		}
		name := "on"
		if disable {
			name = "off"
		}
		tb.AddRow(name, report.Ps(m.Skew),
			fmt.Sprintf("%v", m.Skew <= te.MaxSkew),
			report.Um(stats.RepairWire), report.MW(m.Power.Total()),
			report.PF(m.SwitchedCap))
	}
	return tb.Render(o.Out)
}

// A3ModelAblation isolates the construction models: the exact repeated-
// line top-tree model vs the amortized linear rate, and the STA-feedback
// trim loop on vs off. The expected shape: disabling either inflates the
// construction skew the downstream flow must absorb.
func A3ModelAblation(o Options) error {
	te := tech.Tech45()
	lib := cell.Default45()
	spec := figureSpec(o)
	bm, err := workload.Generate(spec)
	if err != nil {
		return err
	}
	tb := report.NewTable("A3: construction-model ablation ("+spec.Name+")",
		"top model", "trim loop", "construction skew (ps)", "worst slew (ps)", "WL (mm)")
	for _, cfg := range []struct {
		linear, noCal bool
	}{
		{false, false},
		{true, false},
		{false, true},
		{true, true},
	} {
		res, err := cts.Build(bm.Sinks, bm.Src, te, lib, cts.Options{
			LinearTopModel: cfg.linear,
			NoCalibration:  cfg.noCal,
			Tracer:         o.Tracer,
		})
		if err != nil {
			return err
		}
		res.Tree.SetAllRules(te.BlanketRule)
		an, err := sta.Analyze(res.Tree, te, lib, 40e-12)
		if err != nil {
			return err
		}
		model := "repeated"
		if cfg.linear {
			model = "linear"
		}
		trim := "on"
		if cfg.noCal {
			trim = "off"
		}
		w, _ := an.WorstSlew()
		tb.AddRow(model, trim, report.Ps(an.Skew()), report.Ps(w),
			fmt.Sprintf("%.2f", res.Tree.TotalWirelength()/1000))
	}
	return tb.Render(o.Out)
}
