package experiments

import (
	"context"
	"fmt"

	"smartndr/internal/cell"
	"smartndr/internal/core"
	"smartndr/internal/par"
	"smartndr/internal/report"
	"smartndr/internal/sio"
	"smartndr/internal/tech"
	"smartndr/internal/variation"
)

// F1SlewSweep sweeps the slew constraint and reports smart-NDR power
// against the all-default and blanket anchors. The expected shape: under a
// tight constraint smart approaches blanket (everything needs the NDR);
// under a loose one it approaches all-default.
func F1SlewSweep(o Options) error {
	te := tech.Tech45()
	lib := cell.Default45()
	spec := figureSpec(o)
	_, tree, err := buildTr(spec, te, lib, o.Tracer)
	if err != nil {
		return err
	}
	// Fixed-order pairs, not a map literal: map iteration order would make
	// the evaluation (and any error) order nondeterministic across runs.
	anchors := map[string]float64{}
	for _, a := range []struct {
		name string
		rule int
	}{{"all-default", te.DefaultRule}, {"blanket", te.BlanketRule}} {
		t := tree.Clone()
		core.AssignAll(t, a.rule)
		m, _, err := core.Evaluate(t, te, lib, 40e-12)
		if err != nil {
			return err
		}
		anchors[a.name] = m.Power.Total()
	}
	tb := report.NewTable(
		fmt.Sprintf("F1: smart-NDR power vs slew constraint (%s; blanket %.3f mW, all-default %.3f mW)",
			spec.Name, anchors["blanket"]*1e3, anchors["all-default"]*1e3),
		"slew limit (ps)", "power (mW)", "vs blanket", "NDR len", "downgrades", "viol")
	limits := []float64{70e-12, 80e-12, 90e-12, 100e-12, 120e-12, 150e-12, 180e-12}
	if o.Quick {
		limits = []float64{80e-12, 100e-12, 150e-12}
	}
	var xs, ys []float64
	for _, lim := range limits {
		t := tree.Clone()
		core.AssignAll(t, te.BlanketRule)
		stats, err := core.Optimize(t, te, lib, core.Config{MaxSlew: lim, Tracer: o.Tracer})
		if err != nil {
			return err
		}
		m, _, err := core.Evaluate(t, te, lib, 40e-12)
		if err != nil {
			return err
		}
		// Violations are judged against the swept limit here.
		viol := 0
		if m.WorstSlew > lim {
			viol = m.SlewViol
		}
		tb.AddRow(report.Ps(lim), report.MW(m.Power.Total()),
			report.Pct(m.Power.Total()/anchors["blanket"]-1),
			report.Pct(m.NDRFraction),
			fmt.Sprintf("%d", stats.Downgrades),
			fmt.Sprintf("%d", viol))
		xs = append(xs, lim*1e12)
		ys = append(ys, m.Power.Total())
	}
	if o.DataDir != "" {
		if err := sio.WriteCSVFile(o.DataDir+"/f1_slew_sweep.csv",
			sio.Series{Name: "slew_limit_ps", Values: xs},
			sio.Series{Name: "smart_power_w", Values: ys},
		); err != nil {
			return err
		}
	}
	return tb.Render(o.Out)
}

// F2DepthProfile reports, per buffer-stage level, how much wire the smart
// assignment keeps on each rule class. The expected shape: NDR
// concentrates near the root (long, slew-critical repeated lines); leaf
// levels run on cheap rules.
func F2DepthProfile(o Options) error {
	te := tech.Tech45()
	lib := cell.Default45()
	spec := figureSpec(o)
	_, tree, err := buildTr(spec, te, lib, o.Tracer)
	if err != nil {
		return err
	}
	core.AssignAll(tree, te.BlanketRule)
	if _, err := core.Optimize(tree, te, lib, core.Config{Tracer: o.Tracer}); err != nil {
		return err
	}
	levels := core.StageLevels(tree)
	maxLv := 0
	for _, lv := range levels {
		if lv > maxLv {
			maxLv = lv
		}
	}
	// wire length per (level, rule)
	lenByLvRule := make([][]float64, maxLv+1)
	for i := range lenByLvRule {
		lenByLvRule[i] = make([]float64, te.NumRules())
	}
	for i := range tree.Nodes {
		n := &tree.Nodes[i]
		if n.Parent < 0 {
			continue
		}
		lenByLvRule[levels[i]][n.Rule] += n.EdgeLen
	}
	headers := []string{"level", "total (mm)"}
	for i := 0; i < te.NumRules(); i++ {
		headers = append(headers, te.Rule(i).Name)
	}
	headers = append(headers, "heavy-NDR share")
	tb := report.NewTable(
		fmt.Sprintf("F2: wirelength by stage level and rule after smart assignment (%s)", spec.Name),
		headers...)
	var xs, shares []float64
	for lv := 0; lv <= maxLv; lv++ {
		var total, heavy float64
		for ri, l := range lenByLvRule[lv] {
			total += l
			rule := te.Rule(ri)
			if rule.WMult >= 2 { // wide classes: 2W1S, 2W2S, 3W3S
				heavy += l
			}
		}
		if total == 0 {
			continue
		}
		row := []string{fmt.Sprintf("%d", lv), fmt.Sprintf("%.2f", total/1000)}
		for _, l := range lenByLvRule[lv] {
			row = append(row, report.Pct(l/total))
		}
		row = append(row, report.Pct(heavy/total))
		tb.AddRow(row...)
		xs = append(xs, float64(lv))
		shares = append(shares, heavy/total)
	}
	if o.DataDir != "" {
		if err := sio.WriteCSVFile(o.DataDir+"/f2_depth_profile.csv",
			sio.Series{Name: "level", Values: xs},
			sio.Series{Name: "heavy_ndr_share", Values: shares},
		); err != nil {
			return err
		}
	}
	return tb.Render(o.Out)
}

// F3Variation compares skew distributions under process variation across
// the schemes. Expected shape: σ(all-default) ≫ σ(smart) ≈ σ(blanket) —
// smart sheds capacitance without giving up the NDR's robustness where it
// matters.
func F3Variation(o Options) error {
	te := tech.Tech45()
	lib := cell.Default45()
	spec := figureSpec(o)
	_, tree, err := buildTr(spec, te, lib, o.Tracer)
	if err != nil {
		return err
	}
	p := variation.Defaults(99)
	p.Workers = o.Workers
	if o.Quick {
		p.Samples = 60
	}
	tb := report.NewTable(
		fmt.Sprintf("F3: skew under process variation (%s, %d samples, CD σ %.0f nm)",
			spec.Name, p.Samples, p.WidthSigma*1e3),
		"scheme", "nominal (ps)", "mean (ps)", "σ (ps)", "P95 (ps)", "max (ps)", "yield@bound")
	schemes := []string{"all-default", "trunk", "smart", "blanket"}
	// Each scheme's assignment + Monte Carlo runs concurrently; rows are
	// slot-addressed so the table order never depends on scheduling, and
	// the Monte Carlo substream determinism makes the numbers themselves
	// worker-count-independent.
	type f3Out struct {
		nominal float64
		st      *variation.Stats
	}
	outs := make([]f3Out, len(schemes))
	//lint:allow ctxflow offline batch CLI with no cancellation semantics; runs to completion by design
	err = par.ForEach(context.Background(), par.Workers(o.Workers), len(schemes), func(si int) error {
		t := tree.Clone()
		switch schemes[si] {
		case "all-default":
			core.AssignAll(t, te.DefaultRule)
		case "blanket":
			core.AssignAll(t, te.BlanketRule)
		case "trunk":
			core.AssignTrunk(t, te)
		case "smart":
			core.AssignAll(t, te.BlanketRule)
			if _, err := core.Optimize(t, te, lib, core.Config{Tracer: o.Tracer}); err != nil {
				return err
			}
		}
		m, _, err := core.Evaluate(t, te, lib, 40e-12)
		if err != nil {
			return err
		}
		st, err := variation.MonteCarloTr(t, te, lib, p, o.Tracer)
		if err != nil {
			return err
		}
		outs[si] = f3Out{nominal: m.Skew, st: st}
		return nil
	})
	if err != nil {
		return err
	}
	var sigmas []float64
	for si, sc := range schemes {
		st := outs[si].st
		tb.AddRow(sc, report.Ps(outs[si].nominal), report.Ps(st.MeanSkew), report.Ps(st.StdSkew),
			report.Ps(st.P95Skew), report.Ps(st.MaxSkew),
			fmt.Sprintf("%.1f%%", st.YieldAt(2*te.MaxSkew)*100))
		sigmas = append(sigmas, st.StdSkew)
	}
	if o.DataDir != "" {
		if err := sio.WriteCSVFile(o.DataDir+"/f3_variation.csv",
			sio.Series{Name: "scheme_idx", Values: []float64{0, 1, 2, 3}},
			sio.Series{Name: "skew_sigma_s", Values: sigmas},
		); err != nil {
			return err
		}
	}
	return tb.Render(o.Out)
}

// F4TopKSweep traces the power/robustness tradeoff of the TopK heuristic
// across K and places the smart point against it. Expected shape: smart
// sits below the TopK curve (less power at comparable robustness).
func F4TopKSweep(o Options) error {
	te := tech.Tech45()
	lib := cell.Default45()
	spec := figureSpec(o)
	_, tree, err := buildTr(spec, te, lib, o.Tracer)
	if err != nil {
		return err
	}
	maxLv := core.MaxStageLevel(tree) + 1
	tb := report.NewTable(
		fmt.Sprintf("F4: TopK sweep vs smart point (%s)", spec.Name),
		"assignment", "power (mW)", "NDR len", "worst slew (ps)", "viol", "skew (ps)")
	// Items 0..maxLv are the K sweep; the last slot is the smart point.
	ms := make([]core.Metrics, maxLv+2)
	//lint:allow ctxflow offline batch CLI with no cancellation semantics; runs to completion by design
	err = par.ForEach(context.Background(), par.Workers(o.Workers), len(ms), func(k int) error {
		t := tree.Clone()
		if k <= maxLv {
			core.AssignTopLevels(t, te, k)
		} else {
			core.AssignAll(t, te.BlanketRule)
			if _, err := core.Optimize(t, te, lib, core.Config{Tracer: o.Tracer}); err != nil {
				return err
			}
		}
		m, _, err := core.Evaluate(t, te, lib, 40e-12)
		if err != nil {
			return err
		}
		ms[k] = m
		return nil
	})
	if err != nil {
		return err
	}
	var ks, powers []float64
	for k := 0; k <= maxLv; k++ {
		m := ms[k]
		tb.AddRow(fmt.Sprintf("top-%d", k), report.MW(m.Power.Total()),
			report.Pct(m.NDRFraction), report.Ps(m.WorstSlew),
			fmt.Sprintf("%d", m.SlewViol), report.Ps(m.Skew))
		ks = append(ks, float64(k))
		powers = append(powers, m.Power.Total())
	}
	m := ms[maxLv+1]
	tb.AddRow("smart", report.MW(m.Power.Total()), report.Pct(m.NDRFraction),
		report.Ps(m.WorstSlew), fmt.Sprintf("%d", m.SlewViol), report.Ps(m.Skew))
	if o.DataDir != "" {
		if err := sio.WriteCSVFile(o.DataDir+"/f4_topk.csv",
			sio.Series{Name: "k", Values: ks},
			sio.Series{Name: "power_w", Values: powers},
		); err != nil {
			return err
		}
	}
	return tb.Render(o.Out)
}
