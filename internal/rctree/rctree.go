// Package rctree implements the RC-tree electrical model used throughout
// the flow: Elmore delay and PERI (scaled-Elmore) slew on a tree of
// resistive wire segments with distributed wire capacitance (π-model) and
// lumped pin capacitances.
//
// A Tree models one *stage* of the buffered clock network: the wire between
// a driver output pin (the root) and the downstream buffer inputs or clock
// sinks (the leaves). Buffer delay itself is table-driven (package cell);
// this package covers only the passive interconnect, with wire resistance
// only — the driver's resistance is accounted for by the NLDM tables, the
// standard CTS decomposition.
package rctree

import (
	"errors"
	"fmt"
	"math"
)

// NodeID identifies a node within one Tree.
type NodeID int32

// None is the NodeID used for "no node" (the root's parent).
const None NodeID = -1

// Ln9 converts a step-response Elmore delay into a 10–90% transition time
// (the PERI approximation).
const Ln9 = 2.1972245773362196

// Tree is an RC tree. Node 0 is always the root (driver output pin).
// Wire capacitance of each edge is split half to each endpoint (π-model)
// during analysis.
type Tree struct {
	parent  []NodeID
	edgeR   []float64 // Ω, resistance of edge (parent→node); 0 for root
	edgeC   []float64 // F, distributed capacitance of that edge
	pinCap  []float64 // F, lumped pin cap at the node
	chHead  []int32   // head of child linked list, -1 if none
	chNext  []int32   // next sibling
	order   []NodeID  // topological order (parents first); nil when dirty
	tagLeaf []bool    // true for nodes registered as timing endpoints
}

// New returns a tree containing only the root node (the driver pin) with
// the given lumped pin capacitance (usually 0).
func New(rootPinCap float64) *Tree {
	t := &Tree{}
	t.parent = append(t.parent, None)
	t.edgeR = append(t.edgeR, 0)
	t.edgeC = append(t.edgeC, 0)
	t.pinCap = append(t.pinCap, rootPinCap)
	t.chHead = append(t.chHead, -1)
	t.chNext = append(t.chNext, -1)
	t.tagLeaf = append(t.tagLeaf, false)
	return t
}

// Len returns the number of nodes in the tree.
func (t *Tree) Len() int { return len(t.parent) }

// Root returns the root node ID (always 0).
func (t *Tree) Root() NodeID { return 0 }

// AddNode appends a node connected to parent by an edge with resistance r
// and distributed capacitance c, with lumped pin capacitance pin at the new
// node. It returns the new node's ID.
func (t *Tree) AddNode(parent NodeID, r, c, pin float64) NodeID {
	id := NodeID(len(t.parent))
	t.parent = append(t.parent, parent)
	t.edgeR = append(t.edgeR, r)
	t.edgeC = append(t.edgeC, c)
	t.pinCap = append(t.pinCap, pin)
	t.chHead = append(t.chHead, -1)
	t.chNext = append(t.chNext, t.chHead[parent])
	t.chHead[parent] = int32(id)
	t.tagLeaf = append(t.tagLeaf, false)
	t.order = nil
	return id
}

// SetEdge replaces the RC of the edge feeding node n. The root has no
// feeding edge; calling SetEdge on the root panics.
func (t *Tree) SetEdge(n NodeID, r, c float64) {
	if n == 0 {
		panic("rctree: root has no feeding edge")
	}
	t.edgeR[n] = r
	t.edgeC[n] = c
}

// EdgeRC returns the resistance and capacitance of the edge feeding node n.
func (t *Tree) EdgeRC(n NodeID) (r, c float64) { return t.edgeR[n], t.edgeC[n] }

// SetPinCap replaces the lumped pin capacitance at node n.
func (t *Tree) SetPinCap(n NodeID, pin float64) { t.pinCap[n] = pin }

// PinCap returns the lumped pin capacitance at node n.
func (t *Tree) PinCap(n NodeID) float64 { return t.pinCap[n] }

// Parent returns the parent of node n (None for the root).
func (t *Tree) Parent(n NodeID) NodeID { return t.parent[n] }

// MarkEndpoint tags node n as a timing endpoint (sink pin or downstream
// buffer input). Analysis reports per-endpoint delay and slew.
func (t *Tree) MarkEndpoint(n NodeID) { t.tagLeaf[n] = true }

// IsEndpoint reports whether node n is a timing endpoint.
func (t *Tree) IsEndpoint(n NodeID) bool { return t.tagLeaf[n] }

// Children calls fn for every child of n.
func (t *Tree) Children(n NodeID, fn func(NodeID)) {
	for c := t.chHead[n]; c >= 0; c = t.chNext[c] {
		fn(NodeID(c))
	}
}

// topoOrder returns (computing and caching if needed) a parents-first order.
func (t *Tree) topoOrder() []NodeID {
	if t.order != nil && len(t.order) == len(t.parent) {
		return t.order
	}
	order := make([]NodeID, 0, len(t.parent))
	stack := []NodeID{0}
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		order = append(order, n)
		for c := t.chHead[n]; c >= 0; c = t.chNext[c] {
			stack = append(stack, NodeID(c))
		}
	}
	t.order = order
	return order
}

// Result holds one analysis pass over a tree.
type Result struct {
	// Delay[n] is the Elmore delay from the root to node n (wire only), s.
	Delay []float64
	// StepSlew[n] is the PERI wire transition at node n for a step input
	// at the root: Ln9 × Elmore, s.
	StepSlew []float64
	// DownCap[n] is the total capacitance at and below n, including the
	// full wire capacitance of n's feeding edge, F.
	DownCap []float64
	// TotalCap is the capacitance the driver sees: wire + pins, F.
	TotalCap float64
}

// Analyze computes Elmore delay, step slew, and downstream capacitance for
// every node.
func (t *Tree) Analyze() *Result {
	n := len(t.parent)
	res := &Result{
		Delay:    make([]float64, n),
		StepSlew: make([]float64, n),
		DownCap:  make([]float64, n),
	}
	order := t.topoOrder()
	// Effective lumped node cap under the π-model: pin cap + half of the
	// feeding edge's wire cap + half of each child edge's wire cap.
	nodeCap := make([]float64, n)
	for i := 0; i < n; i++ {
		nodeCap[i] = t.pinCap[i] + t.edgeC[i]/2
	}
	for i := 1; i < n; i++ {
		nodeCap[t.parent[i]] += t.edgeC[i] / 2
	}
	// Downstream lumped cap: reverse topological accumulation.
	down := make([]float64, n)
	for i := len(order) - 1; i >= 0; i-- {
		v := order[i]
		down[v] += nodeCap[v]
		if p := t.parent[v]; p != None {
			down[p] += down[v]
		}
	}
	// Elmore: delay(v) = delay(parent) + R(v) · downLumped(v).
	for _, v := range order[1:] {
		p := t.parent[v]
		res.Delay[v] = res.Delay[p] + t.edgeR[v]*down[v]
	}
	for i := 0; i < n; i++ {
		res.StepSlew[i] = Ln9 * res.Delay[i]
	}
	// Report DownCap in the natural convention (full feeding edge included)
	// rather than the π-split used internally.
	for i := len(order) - 1; i >= 0; i-- {
		v := order[i]
		res.DownCap[v] += t.pinCap[v] + t.edgeC[v]
		if p := t.parent[v]; p != None {
			res.DownCap[p] += res.DownCap[v]
		}
	}
	res.TotalCap = res.DownCap[0]
	return res
}

// PropagateSlew combines the driver's output transition with the wire's
// step transition at a node (PERI / root-sum-square composition).
func PropagateSlew(driverOutSlew, wireStepSlew float64) float64 {
	return math.Hypot(driverOutSlew, wireStepSlew)
}

// Endpoints returns the IDs of all marked endpoints in topological order.
func (t *Tree) Endpoints() []NodeID {
	var eps []NodeID
	for _, v := range t.topoOrder() {
		if t.tagLeaf[v] {
			eps = append(eps, v)
		}
	}
	return eps
}

// Validate checks structural invariants; it is called by tests and by
// loaders that deserialize trees.
func (t *Tree) Validate() error {
	n := len(t.parent)
	if n == 0 {
		return errors.New("rctree: empty tree")
	}
	if t.parent[0] != None {
		return errors.New("rctree: node 0 must be the root")
	}
	for i := 1; i < n; i++ {
		p := t.parent[i]
		if p == None {
			return fmt.Errorf("rctree: node %d has no parent", i)
		}
		if p < 0 || int(p) >= n {
			return fmt.Errorf("rctree: node %d has out-of-range parent %d", i, p)
		}
		if p >= NodeID(i) {
			return fmt.Errorf("rctree: node %d has non-ancestral parent %d (nodes must be added parents-first)", i, p)
		}
		if t.edgeR[i] < 0 || t.edgeC[i] < 0 {
			return fmt.Errorf("rctree: node %d has negative edge RC", i)
		}
		if t.pinCap[i] < 0 {
			return fmt.Errorf("rctree: node %d has negative pin cap", i)
		}
		if math.IsNaN(t.edgeR[i]) || math.IsNaN(t.edgeC[i]) {
			return fmt.Errorf("rctree: node %d has NaN edge RC", i)
		}
	}
	if len(t.topoOrder()) != n {
		return errors.New("rctree: disconnected nodes")
	}
	return nil
}
