package rctree

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// chain builds a root→a→b→... chain with identical segment RC and a sink
// cap at the last node.
func chain(segs int, r, c, sinkCap float64) (*Tree, NodeID) {
	t := New(0)
	cur := t.Root()
	for i := 0; i < segs; i++ {
		pin := 0.0
		if i == segs-1 {
			pin = sinkCap
		}
		cur = t.AddNode(cur, r, c, pin)
	}
	t.MarkEndpoint(cur)
	return t, cur
}

func TestSingleSegmentElmore(t *testing.T) {
	// One segment R, C(wire), CL at end: Elmore = R·(C/2 + CL).
	r, c, cl := 100.0, 50e-15, 20e-15
	tr, sink := chain(1, r, c, cl)
	res := tr.Analyze()
	want := r * (c/2 + cl)
	if !approx(res.Delay[sink], want, 1e-18) {
		t.Errorf("Elmore = %g, want %g", res.Delay[sink], want)
	}
	if !approx(res.TotalCap, c+cl, 1e-20) {
		t.Errorf("TotalCap = %g, want %g", res.TotalCap, c+cl)
	}
	if !approx(res.StepSlew[sink], Ln9*want, 1e-15) {
		t.Errorf("StepSlew = %g, want %g", res.StepSlew[sink], Ln9*want)
	}
}

func TestTwoSegmentElmore(t *testing.T) {
	// Two identical segments; hand-computed Elmore.
	r, c := 100.0, 50e-15
	cl := 10e-15
	tr, sink := chain(2, r, c, cl)
	res := tr.Analyze()
	// Lumped caps: node1: c/2+c/2 = c; node2: c/2+cl.
	// delay = r·(c + c/2 + cl) + r·(c/2 + cl)
	want := r*(c+c/2+cl) + r*(c/2+cl)
	if !approx(res.Delay[sink], want, 1e-18) {
		t.Errorf("Elmore = %g, want %g", res.Delay[sink], want)
	}
}

func TestChainSplitInvariance(t *testing.T) {
	// A uniform RC line split into k segments has Elmore
	// R·C·(1/2 + (k-1)/(2k))·... — the k→∞ limit is RC/2 + R·CL; more
	// importantly, refining the discretization must converge monotonically.
	R, C, CL := 1000.0, 200e-15, 30e-15
	prev := math.Inf(1)
	var last float64
	for _, k := range []int{1, 2, 4, 8, 32, 128} {
		tr, sink := chain(k, R/float64(k), C/float64(k), CL)
		res := tr.Analyze()
		d := res.Delay[sink]
		if d > prev+1e-18 {
			t.Errorf("delay should not increase with refinement: k=%d d=%g prev=%g", k, d, prev)
		}
		prev = d
		last = d
	}
	// Distributed-line limit.
	want := R*C/2 + R*CL
	if math.Abs(last-want)/want > 0.01 {
		t.Errorf("refined chain delay %g, want ≈%g", last, want)
	}
}

func TestBranchingDownCap(t *testing.T) {
	tr := New(0)
	mid := tr.AddNode(tr.Root(), 10, 5e-15, 0)
	a := tr.AddNode(mid, 10, 5e-15, 7e-15)
	b := tr.AddNode(mid, 10, 5e-15, 3e-15)
	tr.MarkEndpoint(a)
	tr.MarkEndpoint(b)
	res := tr.Analyze()
	if !approx(res.TotalCap, 15e-15+10e-15, 1e-20) {
		t.Errorf("TotalCap = %g", res.TotalCap)
	}
	// DownCap includes mid's feeding edge (5), both child edges (10), and
	// the sink pins (10).
	if !approx(res.DownCap[mid], 25e-15, 1e-20) {
		t.Errorf("DownCap(mid) = %g", res.DownCap[mid])
	}
	// Heavier sink is slower given equal wire.
	if res.Delay[a] <= res.Delay[b] {
		t.Error("heavier sink should have larger Elmore delay")
	}
}

func TestDelayMonotoneAlongPath(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	tr := New(0)
	nodes := []NodeID{tr.Root()}
	for i := 0; i < 200; i++ {
		p := nodes[rng.Intn(len(nodes))]
		n := tr.AddNode(p, rng.Float64()*100, rng.Float64()*10e-15, rng.Float64()*5e-15)
		nodes = append(nodes, n)
	}
	res := tr.Analyze()
	for _, n := range nodes[1:] {
		if res.Delay[n] < res.Delay[tr.Parent(n)] {
			t.Fatalf("delay decreased along path at node %d", n)
		}
	}
}

func TestIncreasingEdgeRIncreasesDownstreamDelay(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tr := New(0)
		nodes := []NodeID{tr.Root()}
		for i := 0; i < 50; i++ {
			p := nodes[rng.Intn(len(nodes))]
			nodes = append(nodes, tr.AddNode(p, 1+rng.Float64()*100, rng.Float64()*10e-15, rng.Float64()*5e-15))
		}
		victim := nodes[1+rng.Intn(len(nodes)-1)]
		before := tr.Analyze()
		r, c := tr.EdgeRC(victim)
		tr.SetEdge(victim, r*2, c)
		after := tr.Analyze()
		// Delay at the victim must not decrease; nodes outside the victim's
		// subtree are unaffected by R changes.
		return after.Delay[victim] >= before.Delay[victim]-1e-21
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestTotalCapEqualsSumProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tr := New(0)
		nodes := []NodeID{tr.Root()}
		sum := 0.0
		for i := 0; i < 80; i++ {
			p := nodes[rng.Intn(len(nodes))]
			ec := rng.Float64() * 10e-15
			pc := rng.Float64() * 5e-15
			nodes = append(nodes, tr.AddNode(p, rng.Float64()*100, ec, pc))
			sum += ec + pc
		}
		res := tr.Analyze()
		return approx(res.TotalCap, sum, 1e-18)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestPropagateSlew(t *testing.T) {
	if got := PropagateSlew(30e-12, 40e-12); !approx(got, 50e-12, 1e-18) {
		t.Errorf("PropagateSlew = %g, want 50 ps", got)
	}
	if got := PropagateSlew(0, 40e-12); !approx(got, 40e-12, 1e-18) {
		t.Errorf("PropagateSlew with zero input = %g", got)
	}
}

func TestEndpoints(t *testing.T) {
	tr := New(0)
	a := tr.AddNode(tr.Root(), 1, 1e-15, 1e-15)
	b := tr.AddNode(tr.Root(), 1, 1e-15, 1e-15)
	tr.MarkEndpoint(b)
	tr.MarkEndpoint(a)
	eps := tr.Endpoints()
	if len(eps) != 2 {
		t.Fatalf("Endpoints = %v", eps)
	}
	if !tr.IsEndpoint(a) || !tr.IsEndpoint(b) || tr.IsEndpoint(tr.Root()) {
		t.Error("IsEndpoint flags wrong")
	}
}

func TestValidate(t *testing.T) {
	tr := New(0)
	tr.AddNode(tr.Root(), 1, 1e-15, 0)
	if err := tr.Validate(); err != nil {
		t.Fatalf("valid tree rejected: %v", err)
	}
	// Negative RC.
	bad := New(0)
	n := bad.AddNode(bad.Root(), 1, 1e-15, 0)
	bad.SetEdge(n, -1, 1e-15)
	if err := bad.Validate(); err == nil {
		t.Error("negative R should fail validation")
	}
	bad2 := New(0)
	n2 := bad2.AddNode(bad2.Root(), 1, 1e-15, 0)
	bad2.SetEdge(n2, math.NaN(), 1e-15)
	if err := bad2.Validate(); err == nil {
		t.Error("NaN R should fail validation")
	}
	bad3 := New(0)
	bad3.AddNode(bad3.Root(), 1, 1e-15, -1e-15)
	if err := bad3.Validate(); err == nil {
		t.Error("negative pin cap should fail validation")
	}
}

func TestSetEdgeRootPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("SetEdge on root should panic")
		}
	}()
	New(0).SetEdge(0, 1, 1)
}

func TestPinCapAccessors(t *testing.T) {
	tr := New(2e-15)
	if tr.PinCap(tr.Root()) != 2e-15 {
		t.Error("root pin cap lost")
	}
	n := tr.AddNode(tr.Root(), 1, 1e-15, 3e-15)
	tr.SetPinCap(n, 4e-15)
	if tr.PinCap(n) != 4e-15 {
		t.Error("SetPinCap lost")
	}
}

func TestChildrenIteration(t *testing.T) {
	tr := New(0)
	a := tr.AddNode(tr.Root(), 1, 0, 0)
	b := tr.AddNode(tr.Root(), 1, 0, 0)
	seen := map[NodeID]bool{}
	tr.Children(tr.Root(), func(c NodeID) { seen[c] = true })
	if !seen[a] || !seen[b] || len(seen) != 2 {
		t.Errorf("Children = %v", seen)
	}
}

func TestAnalyzeAfterMutation(t *testing.T) {
	// The cached topological order must survive SetEdge and new AddNode.
	tr := New(0)
	a := tr.AddNode(tr.Root(), 100, 10e-15, 0)
	tr.MarkEndpoint(a)
	r1 := tr.Analyze()
	tr.SetEdge(a, 200, 10e-15)
	r2 := tr.Analyze()
	if r2.Delay[a] <= r1.Delay[a] {
		t.Error("doubling R must increase delay")
	}
	b := tr.AddNode(a, 100, 10e-15, 5e-15)
	tr.MarkEndpoint(b)
	r3 := tr.Analyze()
	if len(r3.Delay) != 3 {
		t.Fatalf("analysis must cover new nodes, got %d", len(r3.Delay))
	}
	if r3.Delay[b] <= r3.Delay[a] {
		t.Error("descendant must be slower")
	}
}

func approx(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

func BenchmarkAnalyze10k(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	tr := New(0)
	nodes := []NodeID{tr.Root()}
	for i := 0; i < 10000; i++ {
		p := nodes[rng.Intn(len(nodes))]
		nodes = append(nodes, tr.AddNode(p, rng.Float64()*100, rng.Float64()*10e-15, rng.Float64()*2e-15))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Analyze()
	}
}
