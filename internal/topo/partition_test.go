package topo

import (
	"math/rand"
	"reflect"
	"testing"

	"smartndr/internal/ctree"
	"smartndr/internal/geom"
)

func checkPartition(t *testing.T, sinks []ctree.Sink, regions [][]int, maxSinks int) {
	t.Helper()
	seen := make([]bool, len(sinks))
	for ri, r := range regions {
		if len(r) == 0 {
			t.Fatalf("region %d empty", ri)
		}
		if maxSinks > 0 && len(r) > maxSinks {
			t.Fatalf("region %d has %d sinks, bound %d", ri, len(r), maxSinks)
		}
		for k, si := range r {
			if si < 0 || si >= len(sinks) {
				t.Fatalf("region %d: sink index %d out of range", ri, si)
			}
			if seen[si] {
				t.Fatalf("sink %d assigned twice", si)
			}
			seen[si] = true
			if k > 0 && r[k-1] >= si {
				t.Fatalf("region %d not sorted ascending at %d", ri, k)
			}
		}
	}
	for si, ok := range seen {
		if !ok {
			t.Fatalf("sink %d not covered", si)
		}
	}
}

func TestPartitionCoversAndBounds(t *testing.T) {
	for _, n := range []int{1, 2, 7, 100, 1023, 4096} {
		for _, cap := range []int{1, 3, 64, 500} {
			sinks := randomSinks(n, int64(n*31+cap))
			regions := Partition(sinks, cap)
			checkPartition(t, sinks, regions, cap)
		}
	}
}

func TestPartitionSingleRegion(t *testing.T) {
	sinks := randomSinks(50, 7)
	for _, cap := range []int{0, -1, 50, 100} {
		regions := Partition(sinks, cap)
		if len(regions) != 1 || len(regions[0]) != 50 {
			t.Fatalf("cap=%d: want single full region, got %d regions", cap, len(regions))
		}
	}
	if got := Partition(nil, 8); got != nil {
		t.Fatalf("empty sinks: want nil, got %v", got)
	}
}

func TestPartitionDeterministic(t *testing.T) {
	sinks := randomSinks(2000, 42)
	a := Partition(sinks, 128)
	b := Partition(sinks, 128)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("Partition not deterministic across calls")
	}
}

// Duplicate coordinates must not break coverage or determinism: the sort
// tie-breaks on index, so identical points still order stably.
func TestPartitionDuplicatePoints(t *testing.T) {
	sinks := make([]ctree.Sink, 64)
	for i := range sinks {
		sinks[i] = ctree.Sink{Name: "d", Loc: geom.Point{X: float64(i % 4), Y: float64(i % 2)}, Cap: 1e-15}
	}
	regions := Partition(sinks, 8)
	checkPartition(t, sinks, regions, 8)
	again := Partition(sinks, 8)
	if !reflect.DeepEqual(regions, again) {
		t.Fatal("duplicate-point partition not deterministic")
	}
}

func TestGridPartitionCoversAndBounds(t *testing.T) {
	for _, n := range []int{1, 9, 300, 2048} {
		for _, cap := range []int{1, 16, 256} {
			sinks := randomSinks(n, int64(n*17+cap))
			regions := GridPartition(sinks, cap)
			checkPartition(t, sinks, regions, cap)
		}
	}
}

// A tight clump must still respect the bound: the overfull grid cell is
// recursively bipartitioned.
func TestGridPartitionClustered(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	sinks := make([]ctree.Sink, 500)
	for i := range sinks {
		sinks[i] = ctree.Sink{
			Name: "c",
			Loc:  geom.Point{X: 500 + rng.NormFloat64(), Y: 400 + rng.NormFloat64()},
			Cap:  1e-15,
		}
	}
	regions := GridPartition(sinks, 50)
	checkPartition(t, sinks, regions, 50)
}

func TestGridPartitionDegenerateLine(t *testing.T) {
	// All sinks on one vertical line: width 0 must not divide-by-zero.
	sinks := make([]ctree.Sink, 120)
	for i := range sinks {
		sinks[i] = ctree.Sink{Name: "l", Loc: geom.Point{X: 5, Y: float64(i)}, Cap: 1e-15}
	}
	regions := GridPartition(sinks, 10)
	checkPartition(t, sinks, regions, 10)
}
