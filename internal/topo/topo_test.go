package topo

import (
	"math"
	"math/rand"
	"testing"

	"smartndr/internal/ctree"
	"smartndr/internal/geom"
)

func randomSinks(n int, seed int64) []ctree.Sink {
	rng := rand.New(rand.NewSource(seed))
	sinks := make([]ctree.Sink, n)
	for i := range sinks {
		sinks[i] = ctree.Sink{
			Name: "s",
			Loc:  geom.Point{X: rng.Float64() * 2000, Y: rng.Float64() * 2000},
			Cap:  (1 + rng.Float64()) * 1e-15,
		}
	}
	return sinks
}

func TestBuildValidatesOverMethodsAndSizes(t *testing.T) {
	for _, m := range []Method{Bipartition, NearestNeighbor} {
		for _, n := range []int{1, 2, 3, 5, 17, 64, 257} {
			tr, err := Build(m, randomSinks(n, int64(n)), geom.Point{X: 1000, Y: 1000})
			if err != nil {
				t.Fatalf("%v n=%d: %v", m, n, err)
			}
			if err := tr.Validate(); err != nil {
				t.Fatalf("%v n=%d: invalid tree: %v", m, n, err)
			}
			if tr.LeafCount() != n {
				t.Errorf("%v n=%d: leaf count %d", m, n, tr.LeafCount())
			}
			// A binary tree over n leaves has at most 2n−1 nodes.
			if len(tr.Nodes) > 2*n-1 && n > 1 {
				t.Errorf("%v n=%d: %d nodes exceeds 2n-1", m, n, len(tr.Nodes))
			}
		}
	}
}

func TestBuildEmpty(t *testing.T) {
	if _, err := Build(Bipartition, nil, geom.Point{}); err == nil {
		t.Error("empty sink set should error")
	}
}

func TestBuildUnknownMethod(t *testing.T) {
	if _, err := Build(Method(99), randomSinks(4, 1), geom.Point{}); err == nil {
		t.Error("unknown method should error")
	}
}

func TestMethodString(t *testing.T) {
	if Bipartition.String() != "bipartition" || NearestNeighbor.String() != "nearest-neighbor" {
		t.Error("method names wrong")
	}
	if Method(99).String() == "" {
		t.Error("unknown method should still print")
	}
}

func TestSingleSink(t *testing.T) {
	tr, err := Build(Bipartition, randomSinks(1, 3), geom.Point{})
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Nodes) != 1 || tr.Nodes[tr.Root].SinkIdx != 0 {
		t.Errorf("single-sink tree should be one leaf: %+v", tr.Nodes)
	}
}

func TestBipartitionBalance(t *testing.T) {
	n := 256
	tr, err := Build(Bipartition, randomSinks(n, 7), geom.Point{})
	if err != nil {
		t.Fatal(err)
	}
	want := int(math.Ceil(math.Log2(float64(n))))
	if d := tr.MaxDepth(); d != want {
		t.Errorf("bipartition depth = %d, want %d (perfectly balanced for 2^k sinks)", d, want)
	}
}

func TestNearestNeighborDepthReasonable(t *testing.T) {
	n := 256
	tr, err := Build(NearestNeighbor, randomSinks(n, 11), geom.Point{})
	if err != nil {
		t.Fatal(err)
	}
	// Each round at least halves the cluster count except for odd leftovers,
	// so depth is O(log n); allow 2× slack.
	if d := tr.MaxDepth(); d > 2*int(math.Ceil(math.Log2(float64(n)))) {
		t.Errorf("nearest-neighbor depth = %d, too deep for %d sinks", d, n)
	}
}

func TestGeometricLocality(t *testing.T) {
	// Sinks in two far-apart clusters: the root split must separate the
	// clusters for both methods (no cross-cluster merges below the root).
	var sinks []ctree.Sink
	rng := rand.New(rand.NewSource(13))
	for i := 0; i < 16; i++ {
		sinks = append(sinks, ctree.Sink{Loc: geom.Point{X: rng.Float64() * 100, Y: rng.Float64() * 100}, Cap: 1e-15})
	}
	for i := 0; i < 16; i++ {
		sinks = append(sinks, ctree.Sink{Loc: geom.Point{X: 10000 + rng.Float64()*100, Y: rng.Float64() * 100}, Cap: 1e-15})
	}
	for _, m := range []Method{Bipartition, NearestNeighbor} {
		tr, err := Build(m, sinks, geom.Point{})
		if err != nil {
			t.Fatal(err)
		}
		// Each child of the root must span sinks from exactly one cluster.
		for _, k := range tr.Nodes[tr.Root].Kids {
			if k == ctree.NoNode {
				continue
			}
			leftSeen, rightSeen := false, false
			collectSinks(tr, k, func(si int) {
				if sinks[si].Loc.X < 5000 {
					leftSeen = true
				} else {
					rightSeen = true
				}
			})
			if leftSeen && rightSeen {
				t.Errorf("%v: root child mixes the two far clusters", m)
			}
		}
	}
}

func collectSinks(tr *ctree.Tree, node int, fn func(sinkIdx int)) {
	stack := []int{node}
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if tr.Nodes[n].SinkIdx != ctree.NoSink {
			fn(tr.Nodes[n].SinkIdx)
		}
		for _, k := range tr.Nodes[n].Kids {
			if k != ctree.NoNode {
				stack = append(stack, k)
			}
		}
	}
}

func TestDuplicateSinkLocations(t *testing.T) {
	// Stacked sinks (same location) must still produce a valid tree.
	sinks := make([]ctree.Sink, 8)
	for i := range sinks {
		sinks[i] = ctree.Sink{Loc: geom.Point{X: 50, Y: 50}, Cap: 1e-15}
	}
	for _, m := range []Method{Bipartition, NearestNeighbor} {
		tr, err := Build(m, sinks, geom.Point{})
		if err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		if err := tr.Validate(); err != nil {
			t.Fatalf("%v: %v", m, err)
		}
	}
}

func TestCollinearSinks(t *testing.T) {
	sinks := make([]ctree.Sink, 9)
	for i := range sinks {
		sinks[i] = ctree.Sink{Loc: geom.Point{X: float64(i) * 100, Y: 0}, Cap: 1e-15}
	}
	for _, m := range []Method{Bipartition, NearestNeighbor} {
		tr, err := Build(m, sinks, geom.Point{})
		if err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		if err := tr.Validate(); err != nil {
			t.Fatalf("%v: %v", m, err)
		}
	}
}

func BenchmarkBipartition4k(b *testing.B) {
	sinks := randomSinks(4096, 21)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Build(Bipartition, sinks, geom.Point{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkNearestNeighbor4k(b *testing.B) {
	sinks := randomSinks(4096, 22)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Build(NearestNeighbor, sinks, geom.Point{}); err != nil {
			b.Fatal(err)
		}
	}
}
