// Package topo generates the abstract binary topology of the clock tree:
// which sinks merge with which, bottom-up to a single root. Two classical
// generators are provided:
//
//   - Bipartition: top-down recursive geometric partitioning, splitting the
//     sink set at the median of the longer bounding-box axis ("means and
//     medians", Jackson–Srinivasan–Kuh). Produces balanced trees whose
//     merge pairs are geometrically local at every level.
//
//   - NearestNeighbor: bottom-up agglomeration that repeatedly pairs a
//     cluster with its nearest unpaired neighbor (Edahiro-style matching),
//     greedier and often shorter in total wirelength, at the cost of less
//     depth balance.
//
// The output trees carry topology only; internal node locations are
// provisional midpoints that the DME embedding replaces.
package topo

import (
	"fmt"
	"sort"

	"smartndr/internal/ctree"
	"smartndr/internal/geom"
)

// Method selects a topology generator.
type Method int

const (
	// Bipartition is the recursive geometric median split.
	Bipartition Method = iota
	// NearestNeighbor is bottom-up nearest-neighbor pairing.
	NearestNeighbor
)

// String implements fmt.Stringer.
func (m Method) String() string {
	switch m {
	case Bipartition:
		return "bipartition"
	case NearestNeighbor:
		return "nearest-neighbor"
	default:
		return fmt.Sprintf("method(%d)", int(m))
	}
}

// Build generates a topology over the sinks with the chosen method. It
// errors on an empty sink set.
func Build(m Method, sinks []ctree.Sink, src geom.Point) (*ctree.Tree, error) {
	if len(sinks) == 0 {
		return nil, fmt.Errorf("topo: no sinks")
	}
	switch m {
	case Bipartition:
		return buildBipartition(sinks, src), nil
	case NearestNeighbor:
		return buildNearestNeighbor(sinks, src), nil
	default:
		return nil, fmt.Errorf("topo: unknown method %d", int(m))
	}
}

func newLeaf(t *ctree.Tree, sinkIdx int) int {
	return t.AddNode(ctree.Node{
		Parent:  ctree.NoNode,
		Kids:    [2]int{ctree.NoNode, ctree.NoNode},
		SinkIdx: sinkIdx,
		Loc:     t.Sinks[sinkIdx].Loc,
		Rule:    0,
		BufIdx:  ctree.NoBuf,
	})
}

func newInternal(t *ctree.Tree, a, b int) int {
	id := t.AddNode(ctree.Node{
		Parent:  ctree.NoNode,
		Kids:    [2]int{a, b},
		SinkIdx: ctree.NoSink,
		Loc:     geom.Midpoint(t.Nodes[a].Loc, t.Nodes[b].Loc),
		Rule:    0,
		BufIdx:  ctree.NoBuf,
	})
	t.Nodes[a].Parent = id
	t.Nodes[b].Parent = id
	return id
}

// buildBipartition recursively splits sink index sets at the median of the
// longer bounding-box axis.
func buildBipartition(sinks []ctree.Sink, src geom.Point) *ctree.Tree {
	t := ctree.NewTree(sinks, src)
	idx := make([]int, len(sinks))
	for i := range idx {
		idx[i] = i
	}
	t.Root = bipart(t, idx)
	return t
}

func bipart(t *ctree.Tree, idx []int) int {
	if len(idx) == 1 {
		return newLeaf(t, idx[0])
	}
	bb := geom.NewEmptyBBox()
	for _, si := range idx {
		bb.Extend(t.Sinks[si].Loc)
	}
	// Split along the longer axis at the median sink; ties split on x.
	if bb.Width() >= bb.Height() {
		sort.Slice(idx, func(a, b int) bool {
			pa, pb := t.Sinks[idx[a]].Loc, t.Sinks[idx[b]].Loc
			if pa.X != pb.X {
				return pa.X < pb.X
			}
			return pa.Y < pb.Y
		})
	} else {
		sort.Slice(idx, func(a, b int) bool {
			pa, pb := t.Sinks[idx[a]].Loc, t.Sinks[idx[b]].Loc
			if pa.Y != pb.Y {
				return pa.Y < pb.Y
			}
			return pa.X < pb.X
		})
	}
	mid := len(idx) / 2
	left := bipart(t, idx[:mid])
	right := bipart(t, idx[mid:])
	return newInternal(t, left, right)
}

// buildNearestNeighbor agglomerates clusters bottom-up. Each round pairs
// every cluster greedily with its nearest live neighbor; paired clusters
// are replaced by a merge node at their midpoint. Rounds repeat until one
// cluster remains, so the tree height is O(log n) on well-spread inputs.
func buildNearestNeighbor(sinks []ctree.Sink, src geom.Point) *ctree.Tree {
	t := ctree.NewTree(sinks, src)
	live := make([]int, len(sinks)) // node IDs of current clusters
	for i := range sinks {
		live[i] = newLeaf(t, i)
	}
	for len(live) > 1 {
		pts := make([]geom.Point, len(live))
		for i, id := range live {
			pts[i] = t.Nodes[id].Loc
		}
		g := geom.NewGridIndex(pts)
		paired := make([]bool, len(live))
		var next []int
		// Greedy matching in index order: each unpaired cluster grabs its
		// nearest unpaired neighbor.
		for i := range live {
			if paired[i] {
				continue
			}
			paired[i] = true
			g.Remove(i)
			j, ok := g.Nearest(pts[i], -1)
			if !ok {
				// Odd one out this round; promote unchanged.
				next = append(next, live[i])
				continue
			}
			paired[j] = true
			g.Remove(j)
			next = append(next, newInternal(t, live[i], live[j]))
		}
		live = next
	}
	t.Root = live[0]
	return t
}
