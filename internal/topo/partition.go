package topo

import (
	"sort"

	"smartndr/internal/ctree"
	"smartndr/internal/geom"
)

// Partition splits the sink set into regions of at most maxSinks sinks
// each, using the same recursive median bipartition as the Bipartition
// topology generator: every region is a contiguous cut of the geometric
// median splits, so regions are spatially compact and their union covers
// every sink exactly once.
//
// The returned regions are ordered by the recursion (left/bottom halves
// first), and sink indices within a region are sorted ascending. Both
// orders are deterministic functions of the sink coordinates alone, so
// Partition is safe to use in replayable, byte-identical flows.
//
// maxSinks <= 0 or maxSinks >= len(sinks) yields a single region holding
// every sink. An empty sink set yields no regions.
func Partition(sinks []ctree.Sink, maxSinks int) [][]int {
	if len(sinks) == 0 {
		return nil
	}
	idx := make([]int, len(sinks))
	for i := range idx {
		idx[i] = i
	}
	if maxSinks <= 0 || len(sinks) <= maxSinks {
		return [][]int{idx}
	}
	var regions [][]int
	partBipart(sinks, idx, maxSinks, &regions)
	for _, r := range regions {
		sort.Ints(r)
	}
	return regions
}

// partBipart recursively halves idx at the median of the longer
// bounding-box axis until the piece fits maxSinks. The split rule matches
// bipart in topo.go (ties broken on the other coordinate) so partition
// boundaries coincide with topology merge boundaries.
func partBipart(sinks []ctree.Sink, idx []int, maxSinks int, out *[][]int) {
	if len(idx) <= maxSinks {
		region := make([]int, len(idx))
		copy(region, idx)
		*out = append(*out, region)
		return
	}
	bb := geom.NewEmptyBBox()
	for _, si := range idx {
		bb.Extend(sinks[si].Loc)
	}
	if bb.Width() >= bb.Height() {
		sort.Slice(idx, func(a, b int) bool {
			pa, pb := sinks[idx[a]].Loc, sinks[idx[b]].Loc
			if pa.X != pb.X {
				return pa.X < pb.X
			}
			if pa.Y != pb.Y {
				return pa.Y < pb.Y
			}
			return idx[a] < idx[b]
		})
	} else {
		sort.Slice(idx, func(a, b int) bool {
			pa, pb := sinks[idx[a]].Loc, sinks[idx[b]].Loc
			if pa.Y != pb.Y {
				return pa.Y < pb.Y
			}
			if pa.X != pb.X {
				return pa.X < pb.X
			}
			return idx[a] < idx[b]
		})
	}
	mid := len(idx) / 2
	partBipart(sinks, idx[:mid], maxSinks, out)
	partBipart(sinks, idx[mid:], maxSinks, out)
}

// GridPartition splits the sink set by a uniform geometric grid sized so
// the average cell holds about maxSinks sinks, then recursively bipartitions
// any cell that still exceeds the bound (clustered inputs can overfill a
// cell by an arbitrary factor). Empty cells are dropped. Regions are
// ordered row-major by cell, then by recursion within an overfull cell,
// and sink indices within a region are sorted ascending — all
// deterministic in the sink coordinates.
func GridPartition(sinks []ctree.Sink, maxSinks int) [][]int {
	if len(sinks) == 0 {
		return nil
	}
	if maxSinks <= 0 || len(sinks) <= maxSinks {
		idx := make([]int, len(sinks))
		for i := range idx {
			idx[i] = i
		}
		return [][]int{idx}
	}
	bb := geom.NewEmptyBBox()
	for i := range sinks {
		bb.Extend(sinks[i].Loc)
	}
	// Aim for sqrt(n/max) cells per axis, at least 1.
	cells := 1
	for cells*cells*maxSinks < len(sinks) {
		cells++
	}
	w, h := bb.Width(), bb.Height()
	if w <= 0 {
		w = 1
	}
	if h <= 0 {
		h = 1
	}
	buckets := make([][]int, cells*cells)
	for i := range sinks {
		cx := int(float64(cells) * (sinks[i].Loc.X - bb.MinX) / w)
		cy := int(float64(cells) * (sinks[i].Loc.Y - bb.MinY) / h)
		if cx >= cells {
			cx = cells - 1
		}
		if cy >= cells {
			cy = cells - 1
		}
		b := cy*cells + cx
		buckets[b] = append(buckets[b], i)
	}
	var regions [][]int
	for _, b := range buckets {
		if len(b) == 0 {
			continue
		}
		if len(b) <= maxSinks {
			regions = append(regions, b)
			continue
		}
		partBipart(sinks, b, maxSinks, &regions)
	}
	for _, r := range regions {
		sort.Ints(r)
	}
	return regions
}
