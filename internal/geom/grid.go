package geom

import "math"

// GridIndex is a uniform spatial hash over chip space supporting approximate
// nearest-neighbor queries under the Manhattan metric. It is used by
// nearest-neighbor topology generation, where thousands of repeated NN
// queries over a shrinking point set would otherwise cost O(n²).
//
// Items are identified by small-integer IDs supplied at insertion; removed
// items are tombstoned and skipped during queries.
type GridIndex struct {
	cell    float64
	originX float64
	originY float64
	cols    int
	rows    int
	cells   [][]int32
	pts     []Point
	alive   []bool
	nAlive  int
}

// NewGridIndex builds an index over the given points. The cell size is
// chosen so the average occupancy is a small constant. The point slice is
// captured by reference for ID→point lookups; IDs are slice indices.
func NewGridIndex(pts []Point) *GridIndex {
	bb := NewEmptyBBox()
	for _, p := range pts {
		bb.Extend(p)
	}
	if bb.Empty() {
		bb = BBox{0, 0, 1, 1}
	}
	n := len(pts)
	if n == 0 {
		n = 1
	}
	// Target ~2 points per cell. Degenerate (collinear or coincident)
	// point sets have zero bounding-box area, which would yield a
	// microscopic cell size and an enormous grid — the lower bound keeps
	// the total cell count at O(n).
	area := bb.Width() * bb.Height()
	cell := math.Sqrt(area * 2 / float64(n))
	minCell := math.Max(bb.Width(), bb.Height()) / (4*math.Sqrt(float64(n)) + 1)
	if cell < minCell {
		cell = minCell
	}
	if cell <= 0 || math.IsNaN(cell) {
		cell = 1
	}
	cols := int(bb.Width()/cell) + 1
	rows := int(bb.Height()/cell) + 1
	g := &GridIndex{
		cell:    cell,
		originX: bb.MinX,
		originY: bb.MinY,
		cols:    cols,
		rows:    rows,
		cells:   make([][]int32, cols*rows),
		pts:     pts,
		alive:   make([]bool, len(pts)),
	}
	for i, p := range pts {
		g.alive[i] = true
		g.nAlive++
		ci := g.cellIndex(p)
		g.cells[ci] = append(g.cells[ci], int32(i))
	}
	return g
}

func (g *GridIndex) cellCoords(p Point) (int, int) {
	cx := int((p.X - g.originX) / g.cell)
	cy := int((p.Y - g.originY) / g.cell)
	if cx < 0 {
		cx = 0
	}
	if cx >= g.cols {
		cx = g.cols - 1
	}
	if cy < 0 {
		cy = 0
	}
	if cy >= g.rows {
		cy = g.rows - 1
	}
	return cx, cy
}

func (g *GridIndex) cellIndex(p Point) int {
	cx, cy := g.cellCoords(p)
	return cy*g.cols + cx
}

// Remove tombstones the item with the given ID. Removing an absent or
// already-removed ID is a no-op.
func (g *GridIndex) Remove(id int) {
	if id >= 0 && id < len(g.alive) && g.alive[id] {
		g.alive[id] = false
		g.nAlive--
	}
}

// Len returns the number of live items.
func (g *GridIndex) Len() int { return g.nAlive }

// Nearest returns the live item nearest to p in Manhattan distance,
// excluding the item with ID `exclude` (pass -1 to exclude none). The second
// result is false when no live item qualifies.
func (g *GridIndex) Nearest(p Point, exclude int) (int, bool) {
	if g.nAlive == 0 || (g.nAlive == 1 && exclude >= 0 && exclude < len(g.alive) && g.alive[exclude]) {
		return -1, false
	}
	cx, cy := g.cellCoords(p)
	best := -1
	bestD := math.Inf(1)
	// Expand rings of cells until the best candidate cannot be beaten by
	// anything outside the searched ring.
	maxRing := g.cols + g.rows
	for ring := 0; ring <= maxRing; ring++ {
		// A point in a cell at ring r is at least (r-1)*cell away in the
		// worst case; once bestD is below that bound we can stop.
		if best >= 0 && bestD <= float64(ring-1)*g.cell {
			break
		}
		g.scanRing(cx, cy, ring, func(id int32) {
			i := int(id)
			if !g.alive[i] || i == exclude {
				return
			}
			d := p.Dist(g.pts[i])
			if d < bestD {
				bestD = d
				best = i
			}
		})
	}
	if best < 0 {
		return -1, false
	}
	return best, true
}

func (g *GridIndex) scanRing(cx, cy, ring int, visit func(int32)) {
	if ring == 0 {
		g.scanCell(cx, cy, visit)
		return
	}
	for dx := -ring; dx <= ring; dx++ {
		g.scanCell(cx+dx, cy-ring, visit)
		g.scanCell(cx+dx, cy+ring, visit)
	}
	for dy := -ring + 1; dy <= ring-1; dy++ {
		g.scanCell(cx-ring, cy+dy, visit)
		g.scanCell(cx+ring, cy+dy, visit)
	}
}

func (g *GridIndex) scanCell(cx, cy int, visit func(int32)) {
	if cx < 0 || cx >= g.cols || cy < 0 || cy >= g.rows {
		return
	}
	for _, id := range g.cells[cy*g.cols+cx] {
		visit(id)
	}
}
