package geom

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestPointDist(t *testing.T) {
	cases := []struct {
		a, b Point
		want float64
	}{
		{Point{0, 0}, Point{0, 0}, 0},
		{Point{0, 0}, Point{3, 4}, 7},
		{Point{-1, -1}, Point{1, 1}, 4},
		{Point{2.5, 0}, Point{0, 2.5}, 5},
	}
	for _, c := range cases {
		if got := c.a.Dist(c.b); got != c.want {
			t.Errorf("Dist(%v, %v) = %v, want %v", c.a, c.b, got, c.want)
		}
		if got := c.b.Dist(c.a); got != c.want {
			t.Errorf("Dist symmetry broken: Dist(%v, %v) = %v, want %v", c.b, c.a, got, c.want)
		}
	}
}

func TestPointDistEuclid(t *testing.T) {
	if got := (Point{0, 0}).DistEuclid(Point{3, 4}); got != 5 {
		t.Errorf("DistEuclid = %v, want 5", got)
	}
}

func TestPointArith(t *testing.T) {
	p := Point{1, 2}
	q := Point{3, -4}
	if got := p.Add(q); got != (Point{4, -2}) {
		t.Errorf("Add = %v", got)
	}
	if got := p.Sub(q); got != (Point{-2, 6}) {
		t.Errorf("Sub = %v", got)
	}
	if got := p.Scale(2); got != (Point{2, 4}) {
		t.Errorf("Scale = %v", got)
	}
	if got := Midpoint(p, q); got != (Point{2, -1}) {
		t.Errorf("Midpoint = %v", got)
	}
}

func TestManhattanTriangleInequality(t *testing.T) {
	f := func(ax, ay, bx, by, cx, cy float64) bool {
		a := Point{clampCoord(ax), clampCoord(ay)}
		b := Point{clampCoord(bx), clampCoord(by)}
		c := Point{clampCoord(cx), clampCoord(cy)}
		return a.Dist(c) <= a.Dist(b)+b.Dist(c)+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// clampCoord maps arbitrary float64 test inputs (possibly NaN/Inf/huge) into
// a sane chip-coordinate range so float rounding doesn't dominate.
func clampCoord(x float64) float64 {
	if math.IsNaN(x) || math.IsInf(x, 0) {
		return 0
	}
	return math.Mod(x, 1e6)
}

func TestUVRoundTrip(t *testing.T) {
	f := func(x, y float64) bool {
		p := Point{clampCoord(x), clampCoord(y)}
		q := ToXY(ToUV(p))
		return ApproxEq(p.X, q.X, 1e-6) && ApproxEq(p.Y, q.Y, 1e-6)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestUVDistEqualsManhattan(t *testing.T) {
	f := func(ax, ay, bx, by float64) bool {
		a := Point{clampCoord(ax), clampCoord(ay)}
		b := Point{clampCoord(bx), clampCoord(by)}
		return ApproxEq(ToUV(a).DistInf(ToUV(b)), a.Dist(b), 1e-6)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBBoxBasics(t *testing.T) {
	bb := NewEmptyBBox()
	if !bb.Empty() {
		t.Fatal("fresh box should be empty")
	}
	if bb.Width() != 0 || bb.Height() != 0 {
		t.Error("empty box should report zero extents")
	}
	bb.Extend(Point{1, 2})
	if bb.Empty() {
		t.Fatal("box with one point should not be empty")
	}
	bb.Extend(Point{-3, 5})
	if bb.MinX != -3 || bb.MaxX != 1 || bb.MinY != 2 || bb.MaxY != 5 {
		t.Errorf("unexpected box %+v", bb)
	}
	if got := bb.Width(); got != 4 {
		t.Errorf("Width = %v", got)
	}
	if got := bb.Height(); got != 3 {
		t.Errorf("Height = %v", got)
	}
	if got := bb.HalfPerimeter(); got != 7 {
		t.Errorf("HalfPerimeter = %v", got)
	}
	if got := bb.Center(); got != (Point{-1, 3.5}) {
		t.Errorf("Center = %v", got)
	}
	if !bb.Contains(Point{0, 3}) {
		t.Error("Contains should include interior point")
	}
	if bb.Contains(Point{2, 3}) {
		t.Error("Contains should exclude exterior point")
	}
}

func TestBBoxUnion(t *testing.T) {
	a := NewBBox(Point{0, 0}, Point{1, 1})
	b := NewBBox(Point{2, -1}, Point{3, 0.5})
	a.Union(b)
	if a.MinX != 0 || a.MinY != -1 || a.MaxX != 3 || a.MaxY != 1 {
		t.Errorf("Union = %+v", a)
	}
	empty := NewEmptyBBox()
	before := a
	a.Union(empty)
	if a != before {
		t.Error("union with empty box must be a no-op")
	}
}

func TestBBoxExtendContainsProperty(t *testing.T) {
	f := func(xs [6]float64) bool {
		bb := NewEmptyBBox()
		var pts []Point
		for i := 0; i+1 < len(xs); i += 2 {
			p := Point{clampCoord(xs[i]), clampCoord(xs[i+1])}
			pts = append(pts, p)
			bb.Extend(p)
		}
		for _, p := range pts {
			if !bb.Contains(p) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestClamp(t *testing.T) {
	if Clamp(5, 0, 3) != 3 || Clamp(-1, 0, 3) != 0 || Clamp(2, 0, 3) != 2 {
		t.Error("Clamp misbehaves")
	}
}

func TestGridIndexNearestMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		n := 1 + rng.Intn(200)
		pts := make([]Point, n)
		for i := range pts {
			pts[i] = Point{rng.Float64() * 1000, rng.Float64() * 1000}
		}
		g := NewGridIndex(pts)
		for q := 0; q < 20; q++ {
			probe := Point{rng.Float64() * 1000, rng.Float64() * 1000}
			exclude := -1
			if rng.Intn(2) == 0 {
				exclude = rng.Intn(n)
			}
			got, ok := g.Nearest(probe, exclude)
			wantID, wantD := bruteNearest(pts, nil, probe, exclude)
			if wantID < 0 {
				if ok {
					t.Fatalf("expected no result, got %d", got)
				}
				continue
			}
			if !ok {
				t.Fatalf("no result, want %d", wantID)
			}
			if !ApproxEq(probe.Dist(pts[got]), wantD, 1e-9) {
				t.Fatalf("nearest distance %v, want %v", probe.Dist(pts[got]), wantD)
			}
		}
	}
}

func TestGridIndexRemove(t *testing.T) {
	pts := []Point{{0, 0}, {10, 0}, {20, 0}}
	g := NewGridIndex(pts)
	if g.Len() != 3 {
		t.Fatalf("Len = %d", g.Len())
	}
	id, ok := g.Nearest(Point{1, 0}, -1)
	if !ok || id != 0 {
		t.Fatalf("nearest = %d, %v", id, ok)
	}
	g.Remove(0)
	if g.Len() != 2 {
		t.Fatalf("Len after remove = %d", g.Len())
	}
	id, ok = g.Nearest(Point{1, 0}, -1)
	if !ok || id != 1 {
		t.Fatalf("nearest after remove = %d, %v", id, ok)
	}
	g.Remove(0) // double remove is a no-op
	if g.Len() != 2 {
		t.Fatalf("Len after double remove = %d", g.Len())
	}
	g.Remove(1)
	g.Remove(2)
	if _, ok := g.Nearest(Point{0, 0}, -1); ok {
		t.Error("nearest on empty index should fail")
	}
}

func TestGridIndexSinglePointExcluded(t *testing.T) {
	g := NewGridIndex([]Point{{5, 5}})
	if _, ok := g.Nearest(Point{0, 0}, 0); ok {
		t.Error("excluding the only point should yield no result")
	}
	id, ok := g.Nearest(Point{0, 0}, -1)
	if !ok || id != 0 {
		t.Errorf("nearest = %d, %v", id, ok)
	}
}

func TestGridIndexClustered(t *testing.T) {
	// Heavily clustered points stress the ring-expansion search.
	rng := rand.New(rand.NewSource(42))
	pts := make([]Point, 500)
	for i := range pts {
		cx := float64(rng.Intn(3)) * 400
		cy := float64(rng.Intn(3)) * 400
		pts[i] = Point{cx + rng.Float64()*10, cy + rng.Float64()*10}
	}
	g := NewGridIndex(pts)
	for q := 0; q < 50; q++ {
		probe := pts[rng.Intn(len(pts))]
		got, ok := g.Nearest(probe, -1)
		if !ok {
			t.Fatal("no result")
		}
		_, wantD := bruteNearest(pts, nil, probe, -1)
		if !ApproxEq(probe.Dist(pts[got]), wantD, 1e-9) {
			t.Fatalf("nearest distance %v, want %v", probe.Dist(pts[got]), wantD)
		}
	}
}

func bruteNearest(pts []Point, alive []bool, probe Point, exclude int) (int, float64) {
	best := -1
	bestD := math.Inf(1)
	for i, p := range pts {
		if i == exclude || (alive != nil && !alive[i]) {
			continue
		}
		if d := probe.Dist(p); d < bestD {
			bestD = d
			best = i
		}
	}
	return best, bestD
}

func TestGridIndexDegenerateGeometry(t *testing.T) {
	// Collinear, coincident, and two-point sets must not blow up the grid
	// (regression: zero bounding-box area once produced ~1e8 cells).
	cases := [][]Point{
		{{0, 0}, {3000, 0}},                    // horizontal pair
		{{0, 0}, {0, 2500}},                    // vertical pair
		{{0, 0}, {100, 0}, {200, 0}, {300, 0}}, // collinear
		{{5, 5}, {5, 5}, {5, 5}},               // coincident
		{{1500, 2500}, {0, 0}, {3000, 0}},      // triangle
	}
	for ci, pts := range cases {
		g := NewGridIndex(pts)
		for qi, p := range pts {
			got, ok := g.Nearest(p, qi)
			wantID, wantD := bruteNearest(pts, nil, p, qi)
			if wantID < 0 {
				if ok {
					t.Fatalf("case %d: expected no result", ci)
				}
				continue
			}
			if !ok || !ApproxEq(p.Dist(pts[got]), wantD, 1e-9) {
				t.Fatalf("case %d probe %d: got %v/%v want dist %v", ci, qi, got, ok, wantD)
			}
		}
	}
}
