package geom

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestPointTRR(t *testing.T) {
	p := Point{3, 4}
	tr := PointTRR(p)
	if !tr.IsPoint(1e-12) {
		t.Fatal("PointTRR should be a point")
	}
	if !tr.IsArc(1e-12) {
		t.Error("a point is a (degenerate) arc")
	}
	if got := tr.Center(); got.Dist(p) > 1e-12 {
		t.Errorf("Center = %v, want %v", got, p)
	}
	if d := tr.DistToPoint(Point{0, 0}); !ApproxEq(d, 7, 1e-12) {
		t.Errorf("DistToPoint = %v, want 7", d)
	}
}

func TestSegmentTRRIsArc(t *testing.T) {
	// Points on a slope +1 line (x − y = const) form a Manhattan arc.
	a := Point{0, 0}
	b := Point{5, 5}
	tr := SegmentTRR(a, b)
	if !tr.IsArc(1e-12) {
		t.Errorf("slope +1 segment should be an arc: %v", tr)
	}
	if !tr.Contains(Point{2, 2}, 1e-12) {
		t.Error("arc should contain its interior points")
	}
	if tr.Contains(Point{2, 3}, 1e-12) {
		t.Error("arc should not contain off-arc points")
	}
}

func TestTRRInflateContains(t *testing.T) {
	tr := PointTRR(Point{0, 0}).Inflate(10)
	// Manhattan ball of radius 10: diamond with corners at (±10, 0), (0, ±10).
	for _, p := range []Point{{10, 0}, {-10, 0}, {0, 10}, {0, -10}, {5, 5}, {-3, 7}} {
		if !tr.Contains(p, 1e-12) {
			t.Errorf("ball should contain %v", p)
		}
	}
	for _, p := range []Point{{10, 1}, {6, 5}, {-11, 0}} {
		if tr.Contains(p, 1e-12) {
			t.Errorf("ball should not contain %v", p)
		}
	}
}

func TestTRRDistAxisCases(t *testing.T) {
	a := PointTRR(Point{0, 0})
	b := PointTRR(Point{6, 2})
	if d := a.Dist(b); !ApproxEq(d, 8, 1e-12) {
		t.Errorf("Dist = %v, want 8", d)
	}
	// Overlapping regions have distance 0.
	c := PointTRR(Point{0, 0}).Inflate(5)
	d := PointTRR(Point{4, 0}).Inflate(5)
	if got := c.Dist(d); got != 0 {
		t.Errorf("overlapping dist = %v", got)
	}
}

func TestMergeRegionExactSplitIsArc(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 500; trial++ {
		a := PointTRR(Point{rng.Float64() * 100, rng.Float64() * 100})
		b := PointTRR(Point{rng.Float64() * 100, rng.Float64() * 100})
		d := a.Dist(b)
		ea := d * rng.Float64()
		eb := d - ea
		mr, ok := MergeRegion(a, b, ea, eb)
		if !ok {
			// An exact split can miss by an ulp; eps slack must recover it.
			mr, ok = MergeRegion(a, b, ea+1e-9, eb+1e-9)
			if !ok {
				t.Fatalf("exact split must be feasible (d=%v, ea=%v)", d, ea)
			}
		}
		if !mr.IsArc(1e-6) {
			t.Fatalf("merge region of exact split must be an arc, got %v", mr)
		}
		// Every point of the region is at distance exactly ea from a and
		// eb from b.
		p := mr.Center()
		if !ApproxEq(a.DistToPoint(p), ea, 1e-6) || !ApproxEq(b.DistToPoint(p), eb, 1e-6) {
			t.Fatalf("merge point distances %v/%v, want %v/%v",
				a.DistToPoint(p), b.DistToPoint(p), ea, eb)
		}
	}
}

func TestMergeRegionInfeasible(t *testing.T) {
	a := PointTRR(Point{0, 0})
	b := PointTRR(Point{100, 0})
	if _, ok := MergeRegion(a, b, 10, 10); ok {
		t.Error("split shorter than distance must be infeasible")
	}
}

func TestMergeRegionWithSlack(t *testing.T) {
	// ea + eb > d yields a fat region that still contains the exact arc.
	a := PointTRR(Point{0, 0})
	b := PointTRR(Point{10, 0})
	exact, ok := MergeRegion(a, b, 4, 6)
	if !ok {
		t.Fatal("exact split infeasible")
	}
	fat, ok := MergeRegion(a, b, 5, 7)
	if !ok {
		t.Fatal("slack split infeasible")
	}
	if fat.IsArc(1e-12) {
		t.Error("slack region should have area")
	}
	if _, ok := fat.Intersect(exact); !ok {
		t.Error("slack region must contain the exact arc")
	}
}

func TestClosestPointToProperty(t *testing.T) {
	f := func(cx, cy, r, px, py float64) bool {
		c := Point{clampCoord(cx), clampCoord(cy)}
		radius := math.Abs(clampCoord(r))
		probe := Point{clampCoord(px), clampCoord(py)}
		tr := PointTRR(c).Inflate(radius)
		q := tr.ClosestPointTo(probe)
		if !tr.Contains(q, 1e-6) {
			return false
		}
		// The returned point achieves the region-to-point distance.
		return ApproxEq(probe.Dist(q), tr.DistToPoint(probe), 1e-6)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestClosestPointInsideRegion(t *testing.T) {
	tr := PointTRR(Point{0, 0}).Inflate(10)
	p := Point{1, 2}
	q := tr.ClosestPointTo(p)
	if q.Dist(p) > 1e-12 {
		t.Errorf("point inside region should be its own closest point, got %v", q)
	}
}

func TestTRRCorners(t *testing.T) {
	tr := PointTRR(Point{0, 0}).Inflate(10)
	want := map[Point]bool{
		{10, 0}: true, {-10, 0}: true, {0, 10}: true, {0, -10}: true,
	}
	for _, c := range tr.Corners() {
		found := false
		for w := range want {
			if c.Dist(w) < 1e-9 {
				found = true
			}
		}
		if !found {
			t.Errorf("unexpected corner %v", c)
		}
	}
}

func TestTRRIntersectDisjoint(t *testing.T) {
	a := PointTRR(Point{0, 0}).Inflate(1)
	b := PointTRR(Point{10, 10}).Inflate(1)
	if _, ok := a.Intersect(b); ok {
		t.Error("disjoint regions must not intersect")
	}
}

// TestMergeRegionArcCores checks the DME induction step: merging two arc
// (not just point) regions with an exact split again yields an arc.
func TestMergeRegionArcCores(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 300; trial++ {
		a0 := Point{rng.Float64() * 100, rng.Float64() * 100}
		off := rng.Float64() * 20
		// Build a slope +1 arc from a0.
		a := SegmentTRR(a0, Point{a0.X + off, a0.Y + off})
		b0 := Point{rng.Float64()*100 + 150, rng.Float64() * 100}
		b := SegmentTRR(b0, Point{b0.X + off/2, b0.Y + off/2})
		d := a.Dist(b)
		if d == 0 {
			continue
		}
		ea := d * rng.Float64()
		mr, ok := MergeRegion(a, b, ea, d-ea)
		if !ok {
			// The exact split can miss by an ulp; a hair of slack must
			// always recover it (the DME production code does the same).
			mr, ok = MergeRegion(a, b, ea+1e-9, d-ea+1e-9)
			if !ok {
				t.Fatalf("exact split infeasible for arc cores even with eps slack")
			}
		}
		if !mr.IsArc(1e-6) {
			t.Fatalf("merge of arcs must be an arc, got %v", mr)
		}
	}
}
