package geom

import (
	"fmt"
	"math"
)

// TRR is a tilted rectangular region: the Minkowski sum of a core Manhattan
// arc with a Manhattan disk of a given radius. Represented in rotated UV
// space it is an axis-aligned rectangle, which makes inflation and
// intersection trivial. Merging segments in DME are degenerate TRRs (zero
// extent in at least one axis).
//
// A TRR with MinU == MaxU and MinV == MaxV is a single point. A TRR with
// exactly one degenerate axis is a Manhattan arc (a ±1-slope segment in chip
// space). The zero value is the point at the chip-space origin.
type TRR struct {
	MinU, MaxU float64
	MinV, MaxV float64
}

// PointTRR returns the degenerate TRR holding exactly the chip-space point p.
func PointTRR(p Point) TRR {
	q := ToUV(p)
	return TRR{MinU: q.U, MaxU: q.U, MinV: q.V, MaxV: q.V}
}

// SegmentTRR returns the TRR covering the Manhattan arc between chip-space
// points a and b. The two points must lie on a common ±1-slope line (or be
// equal); otherwise SegmentTRR returns the bounding TRR of the two points,
// which is the standard DME relaxation for near-degenerate arcs.
func SegmentTRR(a, b Point) TRR {
	qa, qb := ToUV(a), ToUV(b)
	return TRR{
		MinU: math.Min(qa.U, qb.U), MaxU: math.Max(qa.U, qb.U),
		MinV: math.Min(qa.V, qb.V), MaxV: math.Max(qa.V, qb.V),
	}
}

// Valid reports whether the region is non-empty.
func (t TRR) Valid() bool { return t.MinU <= t.MaxU && t.MinV <= t.MaxV }

// IsPoint reports whether the region is a single point (within eps).
func (t TRR) IsPoint(eps float64) bool {
	return t.MaxU-t.MinU <= eps && t.MaxV-t.MinV <= eps
}

// IsArc reports whether the region is a Manhattan arc: degenerate in at
// least one axis (within eps). Points are arcs.
func (t TRR) IsArc(eps float64) bool {
	return t.MaxU-t.MinU <= eps || t.MaxV-t.MinV <= eps
}

// Inflate returns the Minkowski sum of the region with a Manhattan disk of
// radius r (r ≥ 0): each UV axis grows by r on both sides.
func (t TRR) Inflate(r float64) TRR {
	return TRR{MinU: t.MinU - r, MaxU: t.MaxU + r, MinV: t.MinV - r, MaxV: t.MaxV + r}
}

// Intersect returns the intersection of two regions and whether it is
// non-empty.
func (t TRR) Intersect(o TRR) (TRR, bool) {
	r := TRR{
		MinU: math.Max(t.MinU, o.MinU), MaxU: math.Min(t.MaxU, o.MaxU),
		MinV: math.Max(t.MinV, o.MinV), MaxV: math.Min(t.MaxV, o.MaxV),
	}
	return r, r.Valid()
}

// Dist returns the Manhattan distance between the two regions: the smallest
// Manhattan distance between any point of t and any point of o. In UV space
// this is the larger of the per-axis gaps.
func (t TRR) Dist(o TRR) float64 {
	gapU := axisGap(t.MinU, t.MaxU, o.MinU, o.MaxU)
	gapV := axisGap(t.MinV, t.MaxV, o.MinV, o.MaxV)
	return math.Max(gapU, gapV)
}

func axisGap(aLo, aHi, bLo, bHi float64) float64 {
	switch {
	case aLo > bHi:
		return aLo - bHi
	case bLo > aHi:
		return bLo - aHi
	default:
		return 0
	}
}

// DistToPoint returns the Manhattan distance from the region to chip point p.
func (t TRR) DistToPoint(p Point) float64 {
	return t.Dist(PointTRR(p))
}

// ClosestPointTo returns the chip-space point of the region nearest (in
// Manhattan distance) to chip point p. Componentwise clamping in UV space
// yields an L∞-nearest point, which corresponds to a Manhattan-nearest chip
// point.
func (t TRR) ClosestPointTo(p Point) Point {
	q := ToUV(p)
	return ToXY(UV{
		U: Clamp(q.U, t.MinU, t.MaxU),
		V: Clamp(q.V, t.MinV, t.MaxV),
	})
}

// Center returns the chip-space center of the region.
func (t TRR) Center() Point {
	return ToXY(UV{U: (t.MinU + t.MaxU) / 2, V: (t.MinV + t.MaxV) / 2})
}

// Corners returns the four chip-space corners of the region (duplicated for
// degenerate regions).
func (t TRR) Corners() [4]Point {
	return [4]Point{
		ToXY(UV{t.MinU, t.MinV}),
		ToXY(UV{t.MinU, t.MaxV}),
		ToXY(UV{t.MaxU, t.MinV}),
		ToXY(UV{t.MaxU, t.MaxV}),
	}
}

// Contains reports whether chip point p lies in the region (within eps).
func (t TRR) Contains(p Point, eps float64) bool {
	q := ToUV(p)
	return q.U >= t.MinU-eps && q.U <= t.MaxU+eps &&
		q.V >= t.MinV-eps && q.V <= t.MaxV+eps
}

// String implements fmt.Stringer.
func (t TRR) String() string {
	return fmt.Sprintf("TRR[u:%.3f..%.3f v:%.3f..%.3f]", t.MinU, t.MaxU, t.MinV, t.MaxV)
}

// MergeRegion computes the merging region of two child regions joined with
// edge lengths ea (to a) and eb (to b): the intersection of the two inflated
// TRRs. For the exact zero-skew split ea+eb == Dist(a, b), the result is a
// Manhattan arc. Returns false if the inflated regions do not meet, which
// indicates ea+eb < Dist(a, b) (an infeasible split).
func MergeRegion(a, b TRR, ea, eb float64) (TRR, bool) {
	return a.Inflate(ea).Intersect(b.Inflate(eb))
}
