// Package geom provides the planar geometry substrate for clock-tree
// construction: Manhattan-metric points and boxes in chip (x, y) space, and
// the 45°-rotated (u, v) space in which Manhattan distance becomes Chebyshev
// (L∞) distance. The rotation is the classical trick behind the
// Deferred-Merge Embedding algorithm: tilted rectangular regions (TRRs) in
// chip space become axis-aligned rectangles in rotated space, so merging
// segments are computed with plain rectangle inflation and intersection.
//
// All coordinates are float64 microns.
package geom

import (
	"fmt"
	"math"
)

// Point is a location in chip (x, y) space, in microns.
type Point struct {
	X, Y float64
}

// Dist returns the Manhattan (L1) distance between p and q.
func (p Point) Dist(q Point) float64 {
	return math.Abs(p.X-q.X) + math.Abs(p.Y-q.Y)
}

// DistEuclid returns the Euclidean distance between p and q. It is used only
// for reporting; all routing-relevant distances are Manhattan.
func (p Point) DistEuclid(q Point) float64 {
	return math.Hypot(p.X-q.X, p.Y-q.Y)
}

// Add returns p translated by q.
func (p Point) Add(q Point) Point { return Point{p.X + q.X, p.Y + q.Y} }

// Sub returns p translated by -q.
func (p Point) Sub(q Point) Point { return Point{p.X - q.X, p.Y - q.Y} }

// Scale returns p scaled by k about the origin.
func (p Point) Scale(k float64) Point { return Point{p.X * k, p.Y * k} }

// String implements fmt.Stringer.
func (p Point) String() string { return fmt.Sprintf("(%.3f, %.3f)", p.X, p.Y) }

// Midpoint returns the point halfway between p and q.
func Midpoint(p, q Point) Point {
	return Point{(p.X + q.X) / 2, (p.Y + q.Y) / 2}
}

// BBox is an axis-aligned bounding box in chip space. The zero value is an
// "empty" box that Extend can grow from, provided Empty() initialization via
// NewEmptyBBox is used.
type BBox struct {
	MinX, MinY, MaxX, MaxY float64
}

// NewEmptyBBox returns a box that contains nothing; extending it with any
// point yields the degenerate box at that point.
func NewEmptyBBox() BBox {
	return BBox{
		MinX: math.Inf(1), MinY: math.Inf(1),
		MaxX: math.Inf(-1), MaxY: math.Inf(-1),
	}
}

// NewBBox returns the bounding box of the two corner points, in any order.
func NewBBox(a, b Point) BBox {
	bb := NewEmptyBBox()
	bb.Extend(a)
	bb.Extend(b)
	return bb
}

// Empty reports whether the box contains no points.
func (b BBox) Empty() bool { return b.MinX > b.MaxX || b.MinY > b.MaxY }

// Extend grows the box to include p.
func (b *BBox) Extend(p Point) {
	b.MinX = math.Min(b.MinX, p.X)
	b.MinY = math.Min(b.MinY, p.Y)
	b.MaxX = math.Max(b.MaxX, p.X)
	b.MaxY = math.Max(b.MaxY, p.Y)
}

// Union grows the box to include all of o.
func (b *BBox) Union(o BBox) {
	if o.Empty() {
		return
	}
	b.Extend(Point{o.MinX, o.MinY})
	b.Extend(Point{o.MaxX, o.MaxY})
}

// Contains reports whether p lies inside or on the boundary of the box.
func (b BBox) Contains(p Point) bool {
	return p.X >= b.MinX && p.X <= b.MaxX && p.Y >= b.MinY && p.Y <= b.MaxY
}

// Width returns the x extent of the box (0 for empty boxes).
func (b BBox) Width() float64 {
	if b.Empty() {
		return 0
	}
	return b.MaxX - b.MinX
}

// Height returns the y extent of the box (0 for empty boxes).
func (b BBox) Height() float64 {
	if b.Empty() {
		return 0
	}
	return b.MaxY - b.MinY
}

// Center returns the center point of the box.
func (b BBox) Center() Point {
	return Point{(b.MinX + b.MaxX) / 2, (b.MinY + b.MaxY) / 2}
}

// HalfPerimeter returns the half-perimeter wirelength (HPWL) of the box, the
// standard lower bound for the length of a net spanning it.
func (b BBox) HalfPerimeter() float64 { return b.Width() + b.Height() }

// UV is a location in rotated space: U = X+Y, V = X−Y. Manhattan distance in
// chip space equals Chebyshev (L∞) distance in UV space.
type UV struct {
	U, V float64
}

// ToUV rotates a chip-space point into UV space.
func ToUV(p Point) UV { return UV{U: p.X + p.Y, V: p.X - p.Y} }

// ToXY rotates a UV-space point back into chip space.
func ToXY(q UV) Point { return Point{X: (q.U + q.V) / 2, Y: (q.U - q.V) / 2} }

// DistInf returns the Chebyshev (L∞) distance between two UV points, which
// equals the Manhattan distance between the corresponding chip points.
func (q UV) DistInf(r UV) float64 {
	return math.Max(math.Abs(q.U-r.U), math.Abs(q.V-r.V))
}

// String implements fmt.Stringer.
func (q UV) String() string { return fmt.Sprintf("uv(%.3f, %.3f)", q.U, q.V) }

// Clamp restricts x into [lo, hi].
func Clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}

// ApproxEq reports whether a and b differ by at most eps.
func ApproxEq(a, b, eps float64) bool { return math.Abs(a-b) <= eps }
