package par

import (
	"context"
	"time"
)

// Hedge runs primary and, when it is still running after delay, starts
// backup concurrently against the same logical request — the classic
// hedged-request pattern for cutting tail latency: most calls finish
// before the hedge fires and cost nothing extra; the slow tail gets a
// second chance on another replica instead of waiting out the
// straggler.
//
// The first branch to succeed wins: its value is returned and the
// loser's context is canceled so it can abandon the work (its eventual
// result is discarded via a buffered channel — no goroutine blocks on
// an unread send). A primary that fails before the hedge timer fires
// triggers the backup immediately, so Hedge doubles as one-step
// failover. When both branches fail, the primary's error is returned —
// deterministic regardless of which branch failed last.
//
// delay <= 0 starts the backup immediately (a pure race). A nil backup
// degenerates to calling primary inline on the caller's goroutine —
// important for callers that rely on goroutine-local state (e.g. the
// obs tracer's ambient span stack): single-branch calls never migrate
// goroutines.
//
// The returned bool reports whether the winning value came from the
// backup branch. Branch functions must honor context cancellation
// promptly and release any resources (gate slots, connections) on
// their own way out — Hedge cancels the loser but cannot reclaim what
// the loser holds.
func Hedge[T any](ctx context.Context, delay time.Duration,
	primary, backup func(context.Context) (T, error)) (T, bool, error) {

	var zero T
	if backup == nil {
		v, err := primary(ctx)
		return v, false, err
	}

	hctx, cancel := context.WithCancel(ctx)
	defer cancel() // the loser is canceled as soon as the winner returns

	type outcome struct {
		v      T
		err    error
		hedged bool
	}
	// Capacity 2: both branches can complete after the caller has
	// returned without anyone reading — neither goroutine ever blocks.
	out := make(chan outcome, 2)
	launch := func(fn func(context.Context) (T, error), hedged bool) {
		go func() {
			v, err := fn(hctx)
			out <- outcome{v: v, err: err, hedged: hedged}
		}()
	}
	launch(primary, false)

	timer := time.NewTimer(delay)
	defer timer.Stop()

	started := 1
	finished := 0
	var primaryErr, backupErr error
	for {
		select {
		case <-timer.C:
			if started == 1 {
				launch(backup, true)
				started = 2
			}
		case o := <-out:
			if o.err == nil {
				return o.v, o.hedged, nil
			}
			finished++
			if o.hedged {
				backupErr = o.err
			} else {
				primaryErr = o.err
			}
			if started == 1 {
				// Fast failover: the primary failed before the hedge
				// would have fired.
				launch(backup, true)
				started = 2
				continue
			}
			if finished == started {
				if primaryErr != nil {
					return zero, false, primaryErr
				}
				return zero, true, backupErr
			}
		}
	}
}
