package par

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
)

// ErrSaturated is returned by Gate.Acquire when both the execution
// slots and the wait line are full. Callers serving network traffic
// should map it to a retryable 429/503-style refusal.
var ErrSaturated = errors.New("par: gate saturated")

// Gate is a bounded admission gate for request-serving layers: at most
// `slots` callers hold the gate at once, at most `queue` more wait for
// a slot, and any caller beyond that is refused immediately with
// ErrSaturated instead of piling up unbounded goroutines. The zero
// Gate is not usable; construct with NewGate.
//
// The fail-fast refusal is the point: under overload a server should
// shed load at the door with an honest Retry-After rather than accept
// work it will time out on. See internal/serve for the HTTP mapping.
type Gate struct {
	sem     chan struct{}
	queue   int64
	waiting atomic.Int64
	held    atomic.Int64
}

// NewGate returns a gate with the given execution slots and wait-line
// bound. slots < 1 is treated as 1; queue < 0 as 0 (refuse as soon as
// every slot is busy).
func NewGate(slots, queue int) *Gate {
	if slots < 1 {
		slots = 1
	}
	if queue < 0 {
		queue = 0
	}
	return &Gate{sem: make(chan struct{}, slots), queue: int64(queue)}
}

// Acquire claims an execution slot, waiting in the bounded line if all
// slots are busy. It returns a release function that must be called
// exactly once when the work finishes (calling it again is a no-op).
// Acquire fails with ErrSaturated when the wait line is full, or with
// ctx's error if the context ends while waiting.
func (g *Gate) Acquire(ctx context.Context) (release func(), err error) {
	select {
	case g.sem <- struct{}{}:
	default:
		// Every slot is busy: join the wait line if it has room. The
		// counter is incremented before the bound check so concurrent
		// arrivals over-count rather than over-admit.
		if g.waiting.Add(1) > g.queue {
			g.waiting.Add(-1)
			return nil, ErrSaturated
		}
		select {
		case g.sem <- struct{}{}:
			g.waiting.Add(-1)
		case <-ctx.Done():
			g.waiting.Add(-1)
			return nil, ctx.Err()
		}
	}
	g.held.Add(1)
	var once sync.Once
	return func() {
		once.Do(func() {
			g.held.Add(-1)
			<-g.sem
		})
	}, nil
}

// Held reports how many callers currently hold the gate.
func (g *Gate) Held() int { return int(g.held.Load()) }

// Waiting reports how many callers are in the wait line.
func (g *Gate) Waiting() int { return int(g.waiting.Load()) }

// Slots returns the gate's execution-slot capacity.
func (g *Gate) Slots() int { return cap(g.sem) }
