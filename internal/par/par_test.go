package par

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
)

func TestWorkers(t *testing.T) {
	if got := Workers(4); got != 4 {
		t.Errorf("Workers(4) = %d", got)
	}
	if got := Workers(0); got != runtime.GOMAXPROCS(0) {
		t.Errorf("Workers(0) = %d, want GOMAXPROCS", got)
	}
	if got := Workers(-3); got != runtime.GOMAXPROCS(0) {
		t.Errorf("Workers(-3) = %d, want GOMAXPROCS", got)
	}
}

func TestForEachCoversRange(t *testing.T) {
	for _, workers := range []int{1, 2, 7, 64} {
		const n = 100
		hits := make([]atomic.Int32, n)
		err := ForEach(context.Background(), workers, n, func(i int) error {
			hits[i].Add(1)
			return nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i := range hits {
			if got := hits[i].Load(); got != 1 {
				t.Fatalf("workers=%d: index %d ran %d times", workers, i, got)
			}
		}
	}
}

func TestForEachEmpty(t *testing.T) {
	if err := ForEach(context.Background(), 4, 0, func(int) error {
		t.Fatal("fn called for empty range")
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}

func TestForEachFirstError(t *testing.T) {
	boom := errors.New("boom")
	for _, workers := range []int{1, 4} {
		var ran atomic.Int32
		err := ForEach(context.Background(), workers, 1000, func(i int) error {
			ran.Add(1)
			if i == 3 {
				return boom
			}
			return nil
		})
		if !errors.Is(err, boom) {
			t.Fatalf("workers=%d: err = %v, want boom", workers, err)
		}
		// Cancellation must prevent the bulk of the remaining work (some
		// in-flight items may still finish).
		if got := ran.Load(); got > 900 {
			t.Errorf("workers=%d: %d items ran after error", workers, got)
		}
	}
}

func TestForEachContextCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err := ForEach(ctx, 4, 10, func(int) error { return nil })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestForEachWorkerIDsDisjoint(t *testing.T) {
	// Per-worker scratch reuse relies on a worker never running two items
	// concurrently; verify worker ids are in range and scratch indexed by
	// id sees no concurrent use.
	const workers, n = 4, 200
	busy := make([]atomic.Bool, workers)
	var mu sync.Mutex
	seen := map[int]bool{}
	err := ForEachWorker(context.Background(), workers, n, func(w, i int) error {
		if w < 0 || w >= workers {
			t.Errorf("worker id %d out of range", w)
		}
		if !busy[w].CompareAndSwap(false, true) {
			t.Errorf("worker %d entered concurrently", w)
		}
		mu.Lock()
		seen[w] = true
		mu.Unlock()
		busy[w].Store(false)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(seen) == 0 {
		t.Fatal("no workers ran")
	}
}

func TestSubstreamSeedProperties(t *testing.T) {
	// Distinct trial indices must give distinct seeds, and the derivation
	// must not depend on anything but (seed, index).
	seen := map[int64]int{}
	for i := 0; i < 10000; i++ {
		s := SubstreamSeed(42, i)
		if prev, dup := seen[s]; dup {
			t.Fatalf("seed collision between trials %d and %d", prev, i)
		}
		seen[s] = i
	}
	if SubstreamSeed(1, 5) != SubstreamSeed(1, 5) {
		t.Error("SubstreamSeed not a pure function")
	}
	if SubstreamSeed(1, 5) == SubstreamSeed(2, 5) {
		t.Error("base seed ignored")
	}
}
