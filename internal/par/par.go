// Package par is the shared parallel-execution layer: bounded fan-out
// over an index range with first-error cancellation, plus deterministic
// RNG substream derivation for Monte Carlo-style workloads.
//
// The design contract every caller relies on:
//
//   - Results must be index-addressed. Workers pull indices from a shared
//     counter, so completion order is arbitrary; writing result i into
//     slot i of a preallocated slice makes output independent of worker
//     count and scheduling.
//   - Randomness must be per-item. SubstreamSeed derives an independent
//     seed from (base seed, item index), so a trial's random sequence
//     depends only on its index — bit-identical results at any Workers.
//   - workers <= 1 runs inline on the calling goroutine with no
//     synchronization at all, so the serial path stays the trivially
//     debuggable reference.
package par

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
)

// Workers resolves a worker-count knob: n when positive, otherwise
// runtime.GOMAXPROCS(0).
func Workers(n int) int {
	if n > 0 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}

// ForEach runs fn(i) for every i in [0, n), on at most workers
// goroutines. The first error cancels the remaining work (items not yet
// started are skipped; running items finish) and is returned. A
// cancelled ctx stops the fan-out with ctx's error. workers <= 1, or
// n <= 1, runs inline on the caller's goroutine.
func ForEach(ctx context.Context, workers, n int, fn func(i int) error) error {
	return ForEachWorker(ctx, workers, n, func(_, i int) error { return fn(i) })
}

// ForEachWorker is ForEach with the worker's identity (in [0, workers))
// passed to fn, so callers can reuse per-worker scratch buffers without
// locking: a worker processes one item at a time, so scratch indexed by
// worker id is never shared.
func ForEachWorker(ctx context.Context, workers, n int, fn func(worker, i int) error) error {
	if n <= 0 {
		return ctx.Err()
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			if err := fn(0, i); err != nil {
				return err
			}
		}
		return nil
	}

	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	var (
		next     atomic.Int64
		wg       sync.WaitGroup
		errOnce  sync.Once
		firstErr error
	)
	fail := func(err error) {
		errOnce.Do(func() {
			firstErr = err
			cancel()
		})
	}
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(worker int) {
			defer wg.Done()
			for {
				if ctx.Err() != nil {
					return
				}
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				if err := fn(worker, i); err != nil {
					fail(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if firstErr != nil {
		return firstErr
	}
	return ctx.Err()
}

// Source is a reseedable SplitMix64 math/rand Source64. Unlike
// rand.NewSource, reseeding costs one store instead of re-running the
// ~600-word lagged-Fibonacci seeding, and the value can live inside a
// per-worker scratch struct — so a Monte Carlo trial switches to its
// substream for free: src.Seed(SubstreamSeed(seed, trial)).
type Source struct{ state uint64 }

// Seed resets the stream. Typically fed from SubstreamSeed.
func (s *Source) Seed(seed int64) { s.state = uint64(seed) }

// Uint64 returns the next SplitMix64 output.
func (s *Source) Uint64() uint64 {
	s.state += 0x9E3779B97F4A7C15
	z := s.state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// Int63 implements rand.Source.
func (s *Source) Int63() int64 { return int64(s.Uint64() >> 1) }

// SubstreamSeed derives a statistically independent seed for substream i
// of a base seed using the SplitMix64 finalizer — the standard way to
// split one user-facing seed into per-trial streams. Two properties
// matter: distinct (seed, i) pairs land far apart even for small i, and
// the result depends only on the pair, never on execution order.
func SubstreamSeed(seed int64, i int) int64 {
	z := uint64(seed) + 0x9E3779B97F4A7C15*(uint64(i)+1)
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return int64(z ^ (z >> 31))
}
