package par

import (
	"context"
	"errors"
	"testing"
	"time"
)

func TestHedgeNilBackupRunsPrimaryInline(t *testing.T) {
	ran := false
	v, hedged, err := Hedge(context.Background(), time.Hour, func(ctx context.Context) (int, error) {
		ran = true
		return 42, nil
	}, nil)
	if err != nil || v != 42 || hedged {
		t.Fatalf("Hedge = (%d, %v, %v), want (42, false, nil)", v, hedged, err)
	}
	if !ran {
		t.Fatal("primary never ran")
	}
}

func TestHedgePrimaryWinsBeforeDelay(t *testing.T) {
	backupStarted := make(chan struct{}, 1)
	v, hedged, err := Hedge(context.Background(), time.Hour,
		func(ctx context.Context) (string, error) { return "primary", nil },
		func(ctx context.Context) (string, error) {
			backupStarted <- struct{}{}
			return "backup", nil
		})
	if err != nil || v != "primary" || hedged {
		t.Fatalf("Hedge = (%q, %v, %v), want (primary, false, nil)", v, hedged, err)
	}
	select {
	case <-backupStarted:
		t.Fatal("backup started although the primary finished before the delay")
	default:
	}
}

func TestHedgeBackupWinsOnStraggler(t *testing.T) {
	// The primary blocks until its (hedge-scoped) context is canceled —
	// a straggler that never produces a value on its own. The backup
	// must win, and the canceled primary must observe the cancellation
	// and exit.
	primaryExited := make(chan struct{})
	v, hedged, err := Hedge(context.Background(), time.Millisecond,
		func(ctx context.Context) (string, error) {
			defer close(primaryExited)
			<-ctx.Done()
			return "", ctx.Err()
		},
		func(ctx context.Context) (string, error) { return "backup", nil })
	if err != nil || v != "backup" || !hedged {
		t.Fatalf("Hedge = (%q, %v, %v), want (backup, true, nil)", v, hedged, err)
	}
	select {
	case <-primaryExited:
	case <-time.After(5 * time.Second):
		t.Fatal("canceled primary goroutine never exited")
	}
}

func TestHedgeFastFailoverOnPrimaryError(t *testing.T) {
	// A primary that fails before the hedge delay triggers the backup
	// immediately; the one-hour delay proves the timer was not involved.
	t0 := time.Now()
	v, hedged, err := Hedge(context.Background(), time.Hour,
		func(ctx context.Context) (int, error) { return 0, errors.New("boom") },
		func(ctx context.Context) (int, error) { return 7, nil })
	if err != nil || v != 7 || !hedged {
		t.Fatalf("Hedge = (%d, %v, %v), want (7, true, nil)", v, hedged, err)
	}
	if since := time.Since(t0); since > 10*time.Second {
		t.Fatalf("failover waited %v, want immediate", since)
	}
}

func TestHedgeBothFailReturnsPrimaryError(t *testing.T) {
	primaryErr := errors.New("primary down")
	backupErr := errors.New("backup down")
	_, hedged, err := Hedge(context.Background(), 0,
		func(ctx context.Context) (int, error) {
			// Let the backup fail first so the test pins the "primary's
			// error wins regardless of finish order" contract.
			time.Sleep(10 * time.Millisecond)
			return 0, primaryErr
		},
		func(ctx context.Context) (int, error) { return 0, backupErr })
	if !errors.Is(err, primaryErr) {
		t.Fatalf("Hedge error = %v, want the primary's %v", err, primaryErr)
	}
	if hedged {
		t.Fatal("hedged flag set on a failed hedge")
	}
}

// TestHedgeCanceledLoserReleasesGateSlot is the leak test for the
// cluster's hedged-call shape: each branch acquires a slot from a
// bounded gate and blocks a canceled straggler on its context, exactly
// like a backend transport call. After the winner returns, the
// canceled loser must release its slot and its goroutine must exit —
// synchronized on channels, not sleeps, so -race sees every handoff.
func TestHedgeCanceledLoserReleasesGateSlot(t *testing.T) {
	gate := NewGate(2, 2)
	primaryExited := make(chan struct{})

	primary := func(ctx context.Context) (string, error) {
		// LIFO defers: release runs first, then the exit signal — so a
		// received signal proves the slot is already back.
		defer close(primaryExited)
		release, err := gate.Acquire(ctx)
		if err != nil {
			return "", err
		}
		defer release()
		<-ctx.Done()
		return "", ctx.Err()
	}
	backup := func(ctx context.Context) (string, error) {
		release, err := gate.Acquire(ctx)
		if err != nil {
			return "", err
		}
		defer release()
		return "backup", nil
	}

	v, hedged, err := Hedge(context.Background(), time.Millisecond, primary, backup)
	if err != nil || v != "backup" || !hedged {
		t.Fatalf("Hedge = (%q, %v, %v), want (backup, true, nil)", v, hedged, err)
	}
	select {
	case <-primaryExited:
	case <-time.After(5 * time.Second):
		t.Fatal("canceled primary still holds its gate slot after 5s")
	}
	if held := gate.Held(); held != 0 {
		t.Fatalf("gate holds %d slots after both branches exited, want 0", held)
	}
	if waiting := gate.Waiting(); waiting != 0 {
		t.Fatalf("gate has %d waiters after both branches exited, want 0", waiting)
	}

	// The gate must be fully reusable: both slots acquirable without
	// blocking proves no slot leaked to the canceled branch.
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	for i := 0; i < 2; i++ {
		release, err := gate.Acquire(ctx)
		if err != nil {
			t.Fatalf("slot %d not reacquirable after hedge: %v", i, err)
		}
		defer release()
	}
}

func TestHedgeCallerContextCancelStopsBothBranches(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	bothStarted := make(chan struct{}, 2)
	bothExited := make(chan struct{}, 2)
	branch := func(ctx context.Context) (int, error) {
		bothStarted <- struct{}{}
		defer func() { bothExited <- struct{}{} }()
		<-ctx.Done()
		return 0, ctx.Err()
	}
	done := make(chan error, 1)
	go func() {
		_, _, err := Hedge(ctx, 0, branch, branch)
		done <- err
	}()
	<-bothStarted
	<-bothStarted
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("Hedge error = %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Hedge did not return after caller cancellation")
	}
	for i := 0; i < 2; i++ {
		select {
		case <-bothExited:
		case <-time.After(5 * time.Second):
			t.Fatalf("branch %d never exited after cancellation", i)
		}
	}
}
