package par

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"testing"
)

func TestGateFastPath(t *testing.T) {
	g := NewGate(2, 0)
	rel1, err := g.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	rel2, err := g.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if g.Held() != 2 || g.Waiting() != 0 {
		t.Fatalf("held=%d waiting=%d", g.Held(), g.Waiting())
	}
	// Both slots busy, no wait line: immediate refusal.
	if _, err := g.Acquire(context.Background()); !errors.Is(err, ErrSaturated) {
		t.Fatalf("want ErrSaturated, got %v", err)
	}
	rel1()
	rel1() // idempotent
	rel2()
	if g.Held() != 0 {
		t.Fatalf("held=%d after release", g.Held())
	}
	if rel, err := g.Acquire(context.Background()); err != nil {
		t.Fatal(err)
	} else {
		rel()
	}
}

func TestGateWaitLine(t *testing.T) {
	g := NewGate(1, 1)
	rel, err := g.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	// One waiter fits in the line and blocks until the slot frees.
	acquired := make(chan func())
	go func() {
		r, err := g.Acquire(context.Background())
		if err != nil {
			t.Error(err)
			close(acquired)
			return
		}
		acquired <- r
	}()
	// Wait until the goroutine is actually in the line, then overflow it.
	for g.Waiting() != 1 {
		runtime.Gosched()
	}
	if _, err := g.Acquire(context.Background()); !errors.Is(err, ErrSaturated) {
		t.Fatalf("line full: want ErrSaturated, got %v", err)
	}
	rel()
	r2 := <-acquired
	if r2 == nil {
		t.Fatal("waiter never acquired")
	}
	r2()
}

func TestGateContextCancelWhileWaiting(t *testing.T) {
	g := NewGate(1, 4)
	rel, err := g.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer rel()
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := g.Acquire(ctx)
		done <- err
	}()
	for g.Waiting() != 1 {
		runtime.Gosched()
	}
	cancel()
	if err := <-done; !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if g.Waiting() != 0 {
		t.Fatalf("waiting=%d after cancel", g.Waiting())
	}
}

func TestGateClampsDegenerateBounds(t *testing.T) {
	g := NewGate(0, -3)
	if g.Slots() != 1 {
		t.Fatalf("slots=%d, want 1", g.Slots())
	}
	rel, err := g.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := g.Acquire(context.Background()); !errors.Is(err, ErrSaturated) {
		t.Fatalf("want ErrSaturated, got %v", err)
	}
	rel()
}

// TestGateConcurrentStress hammers the gate from many goroutines under
// -race: every admitted caller must observe Held ≤ slots, and all
// releases must drain the gate back to empty.
func TestGateConcurrentStress(t *testing.T) {
	const slots, queue, callers = 4, 8, 64
	g := NewGate(slots, queue)
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		admitted int
		maxHeld  int
	)
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			rel, err := g.Acquire(context.Background())
			if err != nil {
				if !errors.Is(err, ErrSaturated) {
					t.Error(err)
				}
				return
			}
			h := g.Held()
			mu.Lock()
			admitted++
			if h > maxHeld {
				maxHeld = h
			}
			mu.Unlock()
			rel()
		}()
	}
	wg.Wait()
	if maxHeld > slots {
		t.Fatalf("held %d > %d slots", maxHeld, slots)
	}
	if g.Held() != 0 || g.Waiting() != 0 {
		t.Fatalf("gate not drained: held=%d waiting=%d", g.Held(), g.Waiting())
	}
	if admitted == 0 {
		t.Fatal("no caller admitted")
	}
}
