package sio

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"

	"smartndr/internal/workload"
)

func TestDEFLiteRoundTrip(t *testing.T) {
	bm, err := workload.Generate(workload.Spec{
		Name: "rt", Dist: workload.Clustered, Sinks: 120, DieX: 1500, DieY: 1200,
		CapMin: 1e-15, CapMax: 3e-15, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteDEFLite(&buf, bm); err != nil {
		t.Fatal(err)
	}
	got, err := ReadDEFLite(&buf, "rt")
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Sinks) != len(bm.Sinks) {
		t.Fatalf("sink count %d vs %d", len(got.Sinks), len(bm.Sinks))
	}
	for i := range got.Sinks {
		a, b := got.Sinks[i], bm.Sinks[i]
		if a.Name != b.Name {
			t.Fatalf("sink %d name %q vs %q", i, a.Name, b.Name)
		}
		if a.Loc.Dist(b.Loc) > 2e-3 { // 3 decimals of µm
			t.Fatalf("sink %d moved %v vs %v", i, a.Loc, b.Loc)
		}
		if diff := a.Cap - b.Cap; diff > 1e-19 || diff < -1e-19 {
			t.Fatalf("sink %d cap %g vs %g", i, a.Cap, b.Cap)
		}
	}
	if got.Src.Dist(bm.Src) > 2e-3 {
		t.Errorf("source moved: %v vs %v", got.Src, bm.Src)
	}
	if got.Spec.Sinks != 120 || got.Spec.DieX != 1500 {
		t.Errorf("spec not reconstructed: %+v", got.Spec)
	}
}

func TestDEFLiteFileRoundTrip(t *testing.T) {
	bm, _ := workload.Generate(workload.CNSSuite()[0])
	p := filepath.Join(t.TempDir(), "bench.def")
	if err := WriteDEFLiteFile(p, bm); err != nil {
		t.Fatal(err)
	}
	got, err := ReadDEFLiteFile(p)
	if err != nil {
		t.Fatal(err)
	}
	if got.Spec.Name != "bench" {
		t.Errorf("name from path: %q", got.Spec.Name)
	}
	if len(got.Sinks) != len(bm.Sinks) {
		t.Error("sink count mismatch")
	}
}

func TestDEFLiteComments(t *testing.T) {
	in := `# header comment
DIE 0 0 100 100

# a sink follows
SOURCE 50 50
SINK a 10 10 1.5
END
`
	bm, err := ReadDEFLite(strings.NewReader(in), "c")
	if err != nil {
		t.Fatal(err)
	}
	if len(bm.Sinks) != 1 {
		t.Fatalf("parsed %+v", bm.Sinks)
	}
	if d := bm.Sinks[0].Cap - 1.5e-15; d > 1e-22 || d < -1e-22 {
		t.Errorf("cap %g", bm.Sinks[0].Cap)
	}
}

func TestDEFLiteErrors(t *testing.T) {
	cases := map[string]string{
		"sink before die":   "SOURCE 1 1\nSINK a 1 1 1\nEND\n",
		"sink before src":   "DIE 0 0 9 9\nSINK a 1 1 1\nEND\n",
		"bad number":        "DIE 0 0 9 9\nSOURCE x 1\nSINK a 1 1 1\nEND\n",
		"die arity":         "DIE 0 0 9\nSOURCE 1 1\nSINK a 1 1 1\nEND\n",
		"degenerate die":    "DIE 0 0 0 9\nSOURCE 1 1\nSINK a 1 1 1\nEND\n",
		"sink arity":        "DIE 0 0 9 9\nSOURCE 1 1\nSINK a 1 1\nEND\n",
		"dup sink":          "DIE 0 0 9 9\nSOURCE 1 1\nSINK a 1 1 1\nSINK a 2 2 1\nEND\n",
		"bad cap":           "DIE 0 0 9 9\nSOURCE 1 1\nSINK a 1 1 0\nEND\n",
		"unknown directive": "DIE 0 0 9 9\nSOURCE 1 1\nWIBBLE\nEND\n",
		"missing end":       "DIE 0 0 9 9\nSOURCE 1 1\nSINK a 1 1 1\n",
		"no sinks":          "DIE 0 0 9 9\nSOURCE 1 1\nEND\n",
		"content after end": "DIE 0 0 9 9\nSOURCE 1 1\nSINK a 1 1 1\nEND\nSINK b 2 2 1\n",
	}
	for name, in := range cases {
		if _, err := ReadDEFLite(strings.NewReader(in), "x"); err == nil {
			t.Errorf("%s: should fail", name)
		} else if !strings.Contains(err.Error(), "deflite") {
			t.Errorf("%s: unhelpful error %v", name, err)
		}
	}
}

func TestDEFLiteErrorNamesLine(t *testing.T) {
	in := "DIE 0 0 9 9\nSOURCE 1 1\nSINK a 1 1 bogus\nEND\n"
	_, err := ReadDEFLite(strings.NewReader(in), "x")
	if err == nil || !strings.Contains(err.Error(), "line 3") {
		t.Errorf("error should cite line 3: %v", err)
	}
}
