package sio

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"smartndr/internal/cell"
	"smartndr/internal/cts"
	"smartndr/internal/tech"
	"smartndr/internal/workload"
)

func TestBenchmarkRoundTrip(t *testing.T) {
	dir := t.TempDir()
	bm, err := workload.Generate(workload.CNSSuite()[0])
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "bm.json")
	if err := SaveJSON(path, bm); err != nil {
		t.Fatal(err)
	}
	got, err := LoadBenchmark(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Spec != bm.Spec || len(got.Sinks) != len(bm.Sinks) {
		t.Error("benchmark round trip mismatch")
	}
	for i := range got.Sinks {
		if got.Sinks[i] != bm.Sinks[i] {
			t.Fatalf("sink %d mismatch", i)
		}
	}
}

func TestTechRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "tech.json")
	if err := SaveJSON(path, tech.Tech45()); err != nil {
		t.Fatal(err)
	}
	got, err := LoadTech(path)
	if err != nil {
		t.Fatal(err)
	}
	want := tech.Tech45()
	if got.Name != want.Name || got.Vdd != want.Vdd || len(got.Rules) != len(want.Rules) {
		t.Error("tech round trip mismatch")
	}
}

func TestTreeRoundTrip(t *testing.T) {
	dir := t.TempDir()
	bm, _ := workload.Generate(workload.Spec{
		Name: "t", Dist: workload.Uniform, Sinks: 40, DieX: 800, DieY: 800,
		CapMin: 1e-15, CapMax: 2e-15, Seed: 3,
	})
	res, err := cts.Build(bm.Sinks, bm.Src, tech.Tech45(), cell.Default45(), cts.Options{})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "tree.json")
	if err := SaveTree(path, res.Tree); err != nil {
		t.Fatal(err)
	}
	got, err := LoadTree(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Nodes) != len(res.Tree.Nodes) || got.Root != res.Tree.Root {
		t.Fatal("tree shape mismatch")
	}
	for i := range got.Nodes {
		a, b := got.Nodes[i], res.Tree.Nodes[i]
		if a.Parent != b.Parent || a.EdgeLen != b.EdgeLen || a.Rule != b.Rule || a.BufIdx != b.BufIdx {
			t.Fatalf("node %d mismatch: %+v vs %+v", i, a, b)
		}
	}
	if got.TotalWirelength() != res.Tree.TotalWirelength() {
		t.Error("wirelength changed in round trip")
	}
}

func TestLoadRejectsCorrupt(t *testing.T) {
	dir := t.TempDir()
	cases := map[string]string{
		"garbage.json":     "not json at all{{{",
		"unknown.json":     `{"nope": 1}`,
		"empty_bench.json": `{"spec":{"name":"x","dist":0,"sinks":5,"die_x":10,"die_y":10,"cap_min":1e-15,"cap_max":2e-15,"seed":1},"sinks":[],"src":{"X":0,"Y":0}}`,
	}
	for name, content := range cases {
		p := filepath.Join(dir, name)
		if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := LoadBenchmark(p); err == nil {
			t.Errorf("%s: load should fail", name)
		}
	}
	if _, err := LoadBenchmark(filepath.Join(dir, "missing.json")); err == nil {
		t.Error("missing file should fail")
	}
	if _, err := LoadTech(filepath.Join(dir, "garbage.json")); err == nil {
		t.Error("corrupt tech should fail")
	}
	if _, err := LoadTree(filepath.Join(dir, "garbage.json")); err == nil {
		t.Error("corrupt tree should fail")
	}
}

func TestLoadTechRejectsInvalid(t *testing.T) {
	dir := t.TempDir()
	bad := tech.Tech45()
	bad.Vdd = -1
	p := filepath.Join(dir, "bad.json")
	if err := SaveJSON(p, bad); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadTech(p); err == nil {
		t.Error("invalid tech must fail validation on load")
	}
}

func TestLoadTreeRejectsBrokenStructure(t *testing.T) {
	dir := t.TempDir()
	// A tree whose root points nowhere.
	content := `{"sinks":[{"name":"s","loc":{"X":0,"Y":0},"cap":1e-15}],"nodes":[],"root":5,"src":[0,0]}`
	p := filepath.Join(dir, "broken.json")
	if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadTree(p); err == nil {
		t.Error("structurally broken tree must fail")
	}
}

func TestWriteCSV(t *testing.T) {
	var buf bytes.Buffer
	err := WriteCSV(&buf,
		Series{Name: "x", Values: []float64{1, 2, 3}},
		Series{Name: "y", Values: []float64{10, 20, 30}},
	)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 4 {
		t.Fatalf("lines = %d: %q", len(lines), buf.String())
	}
	if lines[0] != "x,y" {
		t.Errorf("header = %q", lines[0])
	}
	if lines[2] != "2,20" {
		t.Errorf("row = %q", lines[2])
	}
}

func TestWriteCSVErrors(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteCSV(&buf); err == nil {
		t.Error("no series should fail")
	}
	err := WriteCSV(&buf,
		Series{Name: "x", Values: []float64{1}},
		Series{Name: "y", Values: []float64{1, 2}},
	)
	if err == nil {
		t.Error("length mismatch should fail")
	}
}

func TestWriteCSVFile(t *testing.T) {
	p := filepath.Join(t.TempDir(), "out.csv")
	if err := WriteCSVFile(p, Series{Name: "v", Values: []float64{1.5}}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(p)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(data), "v\n1.5") {
		t.Errorf("content = %q", data)
	}
}
