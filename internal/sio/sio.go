// Package sio persists the flow's artifacts — benchmarks, technologies,
// clock trees, and experiment results — as JSON, and emits CSV series for
// plotting. All readers validate what they load; a corrupted or
// hand-edited file fails loudly, never half-loads.
package sio

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strconv"

	"smartndr/internal/ctree"
	"smartndr/internal/tech"
	"smartndr/internal/workload"
)

// SaveJSON writes v as indented JSON to path.
func SaveJSON(path string, v any) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("sio: %w", err)
	}
	defer f.Close()
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		return fmt.Errorf("sio: encoding %s: %w", path, err)
	}
	return nil
}

func loadJSON(path string, v any) error {
	f, err := os.Open(path)
	if err != nil {
		return fmt.Errorf("sio: %w", err)
	}
	defer f.Close()
	dec := json.NewDecoder(f)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return fmt.Errorf("sio: decoding %s: %w", path, err)
	}
	return nil
}

// LoadBenchmark reads a benchmark and validates it.
func LoadBenchmark(path string) (*workload.Benchmark, error) {
	var bm workload.Benchmark
	if err := loadJSON(path, &bm); err != nil {
		return nil, err
	}
	if err := bm.Spec.Validate(); err != nil {
		return nil, err
	}
	if len(bm.Sinks) == 0 {
		return nil, fmt.Errorf("sio: benchmark %s has no sinks", path)
	}
	for i, s := range bm.Sinks {
		if s.Cap <= 0 {
			return nil, fmt.Errorf("sio: benchmark %s sink %d has non-positive cap", path, i)
		}
	}
	return &bm, nil
}

// LoadTech reads a technology and validates it.
func LoadTech(path string) (*tech.Tech, error) {
	var te tech.Tech
	if err := loadJSON(path, &te); err != nil {
		return nil, err
	}
	if err := te.Validate(); err != nil {
		return nil, err
	}
	return &te, nil
}

// treeFile is the serialized form of a clock tree.
type treeFile struct {
	Sinks  []ctree.Sink `json:"sinks"`
	Nodes  []nodeFile   `json:"nodes"`
	Root   int          `json:"root"`
	SrcLoc [2]float64   `json:"src"`
}

type nodeFile struct {
	Parent  int        `json:"parent"`
	Kids    [2]int     `json:"kids"`
	SinkIdx int        `json:"sink"`
	Loc     [2]float64 `json:"loc"`
	EdgeLen float64    `json:"len"`
	Rule    int        `json:"rule"`
	BufIdx  int        `json:"buf"`
}

// SaveTree writes a clock tree to path.
func SaveTree(path string, t *ctree.Tree) error {
	tf := treeFile{
		Sinks:  t.Sinks,
		Root:   t.Root,
		SrcLoc: [2]float64{t.SrcLoc.X, t.SrcLoc.Y},
	}
	for _, n := range t.Nodes {
		tf.Nodes = append(tf.Nodes, nodeFile{
			Parent: n.Parent, Kids: n.Kids, SinkIdx: n.SinkIdx,
			Loc: [2]float64{n.Loc.X, n.Loc.Y}, EdgeLen: n.EdgeLen,
			Rule: n.Rule, BufIdx: n.BufIdx,
		})
	}
	return SaveJSON(path, tf)
}

// LoadTree reads a clock tree and validates it.
func LoadTree(path string) (*ctree.Tree, error) {
	var tf treeFile
	if err := loadJSON(path, &tf); err != nil {
		return nil, err
	}
	t := &ctree.Tree{Sinks: tf.Sinks, Root: tf.Root}
	t.SrcLoc.X, t.SrcLoc.Y = tf.SrcLoc[0], tf.SrcLoc[1]
	for _, n := range tf.Nodes {
		node := ctree.Node{
			Parent: n.Parent, Kids: n.Kids, SinkIdx: n.SinkIdx,
			EdgeLen: n.EdgeLen, Rule: n.Rule, BufIdx: n.BufIdx,
		}
		node.Loc.X, node.Loc.Y = n.Loc[0], n.Loc[1]
		t.Nodes = append(t.Nodes, node)
	}
	if err := t.Validate(); err != nil {
		return nil, fmt.Errorf("sio: tree %s: %w", path, err)
	}
	return t, nil
}

// Series is one named column of values for CSV export.
type Series struct {
	Name   string
	Values []float64
}

// WriteCSV emits aligned series as CSV: one header row of names, then one
// row per index. Series must share a length.
func WriteCSV(w io.Writer, series ...Series) error {
	if len(series) == 0 {
		return fmt.Errorf("sio: no series")
	}
	n := len(series[0].Values)
	for _, s := range series {
		if len(s.Values) != n {
			return fmt.Errorf("sio: series %q has %d values, want %d", s.Name, len(s.Values), n)
		}
	}
	cw := csv.NewWriter(w)
	header := make([]string, len(series))
	for i, s := range series {
		header[i] = s.Name
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	row := make([]string, len(series))
	for r := 0; r < n; r++ {
		for i, s := range series {
			row[i] = strconv.FormatFloat(s.Values[r], 'g', 8, 64)
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteCSVFile writes series to a file path.
func WriteCSVFile(path string, series ...Series) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("sio: %w", err)
	}
	defer f.Close()
	return WriteCSV(f, series...)
}
