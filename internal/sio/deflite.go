package sio

import (
	"bufio"
	"bytes"
	"errors"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"smartndr/internal/ctree"
	"smartndr/internal/geom"
	"smartndr/internal/workload"
)

// DEF-lite is a minimal line-oriented exchange format for clock sink sets,
// for users whose sinks come from a physical-design flow rather than a
// generator. Distances are microns, capacitances femtofarads:
//
//	# comment
//	DIE 0 0 3200 2560
//	SOURCE 1600 1280
//	SINK ff0001 120.50 300.25 1.8
//	SINK ff0002 1840.00 95.00 2.4
//	END
//
// DIE and SOURCE must appear before the first SINK; every sink needs a
// unique name. Parsers report the offending line on any error.

// WriteDEFLite writes a benchmark in DEF-lite form.
func WriteDEFLite(w io.Writer, bm *workload.Benchmark) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "# %s: %d sinks (%s distribution, seed %d)\n",
		bm.Spec.Name, len(bm.Sinks), bm.Spec.Dist, bm.Spec.Seed)
	fmt.Fprintf(bw, "DIE 0 0 %.3f %.3f\n", bm.Spec.DieX, bm.Spec.DieY)
	fmt.Fprintf(bw, "SOURCE %.3f %.3f\n", bm.Src.X, bm.Src.Y)
	for _, s := range bm.Sinks {
		fmt.Fprintf(bw, "SINK %s %.3f %.3f %.4f\n", s.Name, s.Loc.X, s.Loc.Y, s.Cap*1e15)
	}
	fmt.Fprintln(bw, "END")
	return bw.Flush()
}

// WriteDEFLiteFile writes a benchmark to a path.
func WriteDEFLiteFile(path string, bm *workload.Benchmark) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("sio: %w", err)
	}
	defer f.Close()
	return WriteDEFLite(f, bm)
}

const (
	// defliteChunkBytes is the read-buffer size of the streaming parser.
	defliteChunkBytes = 64 * 1024
	// defliteMaxLineBytes bounds one logical line. DEF-lite lines are a
	// directive plus a few tokens; anything near this bound is garbage,
	// and rejecting it keeps parser memory independent of input size.
	defliteMaxLineBytes = 64 * 1024
)

var errLineTooLong = fmt.Errorf("line exceeds %d bytes", defliteMaxLineBytes)

// lineDecoder yields '\n'-terminated lines from a reader using one
// fixed-size chunk buffer plus a carry for lines that straddle chunk
// boundaries. Unlike bufio.Scanner with a large token cap, its memory
// stays bounded by chunk + max line size no matter how big the input
// is. Returned slices are valid only until the next call.
type lineDecoder struct {
	r     io.Reader
	chunk []byte // fixed read buffer
	pend  []byte // unconsumed tail of chunk
	carry []byte // partial line carried across refills
	done  bool   // reader exhausted
	stall int    // consecutive zero-byte reads
}

func newLineDecoder(r io.Reader, chunkBytes int) *lineDecoder {
	if chunkBytes <= 0 {
		chunkBytes = defliteChunkBytes
	}
	return &lineDecoder{r: r, chunk: make([]byte, chunkBytes)}
}

// next returns the next line with the trailing '\n' (and '\r', for CRLF
// input) removed, or io.EOF after the last line. A final line without a
// newline is returned as-is.
func (d *lineDecoder) next() ([]byte, error) {
	for {
		if i := bytes.IndexByte(d.pend, '\n'); i >= 0 {
			line := d.pend[:i]
			d.pend = d.pend[i+1:]
			if len(d.carry) > 0 {
				if len(d.carry)+len(line) > defliteMaxLineBytes {
					return nil, errLineTooLong
				}
				d.carry = append(d.carry, line...)
				line = d.carry
				d.carry = d.carry[:0]
			}
			return trimCR(line), nil
		}
		if len(d.pend) > 0 {
			if len(d.carry)+len(d.pend) > defliteMaxLineBytes {
				return nil, errLineTooLong
			}
			d.carry = append(d.carry, d.pend...)
			d.pend = nil
		}
		if d.done {
			if len(d.carry) > 0 {
				line := d.carry
				d.carry = nil
				return trimCR(line), nil
			}
			return nil, io.EOF
		}
		n, err := d.r.Read(d.chunk)
		d.pend = d.chunk[:n]
		switch {
		case errors.Is(err, io.EOF):
			d.done = true
		case err != nil:
			return nil, err
		case n == 0:
			if d.stall++; d.stall > 100 {
				return nil, io.ErrNoProgress
			}
		default:
			d.stall = 0
		}
	}
}

func trimCR(line []byte) []byte {
	if n := len(line); n > 0 && line[n-1] == '\r' {
		return line[:n-1]
	}
	return line
}

// ReadDEFLite parses a DEF-lite stream into a benchmark. The returned
// spec records the die and a synthetic name; distribution and seed are
// zero (the sinks are explicit). Parsing is streaming: memory is
// bounded by one chunk plus one line plus the sinks themselves,
// regardless of input size.
func ReadDEFLite(r io.Reader, name string) (*workload.Benchmark, error) {
	return readDEFLite(r, name, defliteChunkBytes)
}

// readDEFLite is ReadDEFLite with the chunk size exposed so tests can
// force lines to straddle chunk boundaries.
func readDEFLite(r io.Reader, name string, chunkBytes int) (*workload.Benchmark, error) {
	dec := newLineDecoder(r, chunkBytes)
	bm := &workload.Benchmark{Spec: workload.Spec{Name: name, CapMin: 1e-18, CapMax: 1e-18}}
	seen := make(map[string]bool)
	var haveDie, haveSrc, ended bool
	lineNo := 0
	fail := func(format string, args ...any) error {
		return fmt.Errorf("sio: deflite line %d: %s", lineNo, fmt.Sprintf(format, args...))
	}
	for {
		raw, err := dec.next()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			if errors.Is(err, errLineTooLong) {
				return nil, fmt.Errorf("sio: deflite line %d: %w", lineNo+1, err)
			}
			return nil, fmt.Errorf("sio: deflite: %w", err)
		}
		lineNo++
		line := strings.TrimSpace(string(raw))
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if ended {
			return nil, fail("content after END")
		}
		fields := strings.Fields(line)
		switch fields[0] {
		case "DIE":
			if len(fields) != 5 {
				return nil, fail("DIE wants 4 coordinates")
			}
			v, err := parseFloats(fields[1:])
			if err != nil {
				return nil, fail("%v", err)
			}
			if v[2] <= v[0] || v[3] <= v[1] {
				return nil, fail("degenerate die %v", v)
			}
			bm.Spec.DieX = v[2] - v[0]
			bm.Spec.DieY = v[3] - v[1]
			haveDie = true
		case "SOURCE":
			if len(fields) != 3 {
				return nil, fail("SOURCE wants 2 coordinates")
			}
			v, err := parseFloats(fields[1:])
			if err != nil {
				return nil, fail("%v", err)
			}
			bm.Src = geom.Point{X: v[0], Y: v[1]}
			haveSrc = true
		case "SINK":
			if !haveDie || !haveSrc {
				return nil, fail("SINK before DIE/SOURCE")
			}
			if len(fields) != 5 {
				return nil, fail("SINK wants name, x, y, cap_fF")
			}
			if seen[fields[1]] {
				return nil, fail("duplicate sink %q", fields[1])
			}
			seen[fields[1]] = true
			v, err := parseFloats(fields[2:])
			if err != nil {
				return nil, fail("%v", err)
			}
			if v[2] <= 0 {
				return nil, fail("sink %q has non-positive cap", fields[1])
			}
			capF := v[2] * 1e-15
			bm.Sinks = append(bm.Sinks, ctree.Sink{
				Name: fields[1],
				Loc:  geom.Point{X: v[0], Y: v[1]},
				Cap:  capF,
			})
			if capF < bm.Spec.CapMin || len(bm.Sinks) == 1 {
				bm.Spec.CapMin = capF
			}
			if capF > bm.Spec.CapMax {
				bm.Spec.CapMax = capF
			}
		case "END":
			ended = true
		default:
			return nil, fail("unknown directive %q", fields[0])
		}
	}
	if !ended {
		return nil, fmt.Errorf("sio: deflite: missing END")
	}
	if len(bm.Sinks) == 0 {
		return nil, fmt.Errorf("sio: deflite: no sinks")
	}
	bm.Spec.Sinks = len(bm.Sinks)
	return bm, nil
}

// ReadDEFLiteFile parses a DEF-lite file.
func ReadDEFLiteFile(path string) (*workload.Benchmark, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("sio: %w", err)
	}
	defer f.Close()
	base := path
	if i := strings.LastIndexByte(base, '/'); i >= 0 {
		base = base[i+1:]
	}
	return ReadDEFLite(f, strings.TrimSuffix(base, ".def"))
}

func parseFloats(fields []string) ([]float64, error) {
	out := make([]float64, len(fields))
	for i, f := range fields {
		v, err := strconv.ParseFloat(f, 64)
		if err != nil {
			return nil, fmt.Errorf("bad number %q", f)
		}
		out[i] = v
	}
	return out, nil
}
