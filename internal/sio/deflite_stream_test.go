package sio

import (
	"bytes"
	"errors"
	"io"
	"reflect"
	"strings"
	"testing"

	"smartndr/internal/workload"
)

func validDEF(t testing.TB) []byte {
	t.Helper()
	bm, err := workload.Generate(workload.Spec{
		Name: "st", Dist: workload.Clustered, Sinks: 200, DieX: 1500, DieY: 1200,
		CapMin: 1e-15, CapMax: 3e-15, Seed: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteDEFLite(&buf, bm); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestDEFLiteChunkBoundarySplits parses the same input at every tiny
// chunk size, forcing each line to straddle a boundary somewhere, and
// demands the result match the single-chunk parse exactly.
func TestDEFLiteChunkBoundarySplits(t *testing.T) {
	data := validDEF(t)
	ref, err := readDEFLite(bytes.NewReader(data), "x", len(data)+1)
	if err != nil {
		t.Fatal(err)
	}
	for chunk := 1; chunk <= 64; chunk++ {
		got, err := readDEFLite(bytes.NewReader(data), "x", chunk)
		if err != nil {
			t.Fatalf("chunk=%d: %v", chunk, err)
		}
		if !reflect.DeepEqual(got, ref) {
			t.Fatalf("chunk=%d: parse differs from single-chunk parse", chunk)
		}
	}
}

// TestDEFLiteTruncated cuts a valid file at every byte: every prefix
// that lacks the final END directive must fail cleanly, and prefixes
// that keep it (newline or not) must parse.
func TestDEFLiteTruncated(t *testing.T) {
	data := validDEF(t)
	endPos := bytes.LastIndex(data, []byte("END"))
	if endPos < 0 {
		t.Fatal("no END in writer output")
	}
	for i := 0; i <= len(data); i++ {
		bm, err := readDEFLite(bytes.NewReader(data[:i]), "x", 16)
		if i < endPos+3 {
			if err == nil {
				t.Fatalf("prefix of %d bytes (END missing) parsed successfully", i)
			}
			continue
		}
		if err != nil {
			t.Fatalf("prefix of %d bytes (END present): %v", i, err)
		}
		if len(bm.Sinks) != 200 {
			t.Fatalf("prefix of %d bytes: %d sinks", i, len(bm.Sinks))
		}
	}
}

func TestDEFLiteCRLF(t *testing.T) {
	data := validDEF(t)
	crlf := bytes.ReplaceAll(data, []byte("\n"), []byte("\r\n"))
	ref, err := ReadDEFLite(bytes.NewReader(data), "x")
	if err != nil {
		t.Fatal(err)
	}
	got, err := readDEFLite(bytes.NewReader(crlf), "x", 7)
	if err != nil {
		t.Fatalf("CRLF input rejected: %v", err)
	}
	if !reflect.DeepEqual(got, ref) {
		t.Fatal("CRLF parse differs from LF parse")
	}
}

func TestDEFLiteNoTrailingNewline(t *testing.T) {
	in := "DIE 0 0 100 100\nSOURCE 50 50\nSINK a 1 2 1.5\nEND"
	bm, err := readDEFLite(strings.NewReader(in), "x", 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(bm.Sinks) != 1 || bm.Sinks[0].Name != "a" {
		t.Fatalf("parsed %+v", bm.Sinks)
	}
}

func TestDEFLiteLineTooLong(t *testing.T) {
	long := "# " + strings.Repeat("x", defliteMaxLineBytes+1) + "\nDIE 0 0 1 1\n"
	if _, err := readDEFLite(strings.NewReader(long), "x", 512); !errors.Is(err, errLineTooLong) {
		t.Fatalf("oversize comment line: err = %v, want errLineTooLong", err)
	}
	// Oversize final line without a newline must also be caught.
	tail := "DIE 0 0 100 100\nSOURCE 50 50\nSINK " + strings.Repeat("n", defliteMaxLineBytes+1)
	if _, err := readDEFLite(strings.NewReader(tail), "x", 512); !errors.Is(err, errLineTooLong) {
		t.Fatalf("oversize tail line: err = %v, want errLineTooLong", err)
	}
}

// stutterReader returns zero-byte reads between real ones — legal for an
// io.Reader — and must not hang or corrupt the parse.
type stutterReader struct {
	data []byte
	tick int
}

func (s *stutterReader) Read(p []byte) (int, error) {
	s.tick++
	if s.tick%2 == 1 {
		return 0, nil
	}
	if len(s.data) == 0 {
		return 0, io.EOF
	}
	n := copy(p[:min(len(p), 5)], s.data)
	s.data = s.data[n:]
	return n, nil
}

func TestDEFLiteStutteringReader(t *testing.T) {
	data := validDEF(t)
	ref, err := ReadDEFLite(bytes.NewReader(data), "x")
	if err != nil {
		t.Fatal(err)
	}
	got, err := readDEFLite(&stutterReader{data: data}, "x", 32)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, ref) {
		t.Fatal("stuttering reader parse differs")
	}
}

func TestDEFLiteStalledReaderErrors(t *testing.T) {
	stalled := readerFunc(func(p []byte) (int, error) { return 0, nil })
	if _, err := readDEFLite(stalled, "x", 16); !errors.Is(err, io.ErrNoProgress) {
		t.Fatalf("stalled reader: err = %v, want ErrNoProgress", err)
	}
}

type readerFunc func(p []byte) (int, error)

func (f readerFunc) Read(p []byte) (int, error) { return f(p) }

// FuzzDEFLiteChunked is a differential fuzzer: any input must parse to
// the same result (or fail with the same error) at every chunk size —
// chunk boundaries are an implementation detail that must never leak
// into parse semantics.
func FuzzDEFLiteChunked(f *testing.F) {
	f.Add([]byte("DIE 0 0 100 100\nSOURCE 50 50\nSINK a 1 2 1.5\nEND\n"))
	f.Add([]byte("# c\nDIE 0 0 9 9\nSOURCE 4 4\nSINK s0 1 1 2\nSINK s1 2 2 3\nEND"))
	f.Add([]byte("DIE 0 0 100 100\r\nSOURCE 50 50\r\nSINK a 1 2 1.5\r\nEND\r\n"))
	f.Add([]byte("SINK early 1 2 3\n"))
	f.Add([]byte("DIE 0 0 100 100\nSOURCE 50 50\nSINK a 1 2 1.5\nEND\nextra\n"))
	f.Add([]byte(""))
	f.Add([]byte("\n\n#\n"))
	f.Fuzz(func(t *testing.T, data []byte) {
		ref, refErr := readDEFLite(bytes.NewReader(data), "f", len(data)+1)
		for _, chunk := range []int{1, 3, 17} {
			got, err := readDEFLite(bytes.NewReader(data), "f", chunk)
			if (err == nil) != (refErr == nil) {
				t.Fatalf("chunk=%d: err=%v, reference err=%v", chunk, err, refErr)
			}
			if err != nil {
				if err.Error() != refErr.Error() {
					t.Fatalf("chunk=%d: error %q, reference %q", chunk, err, refErr)
				}
				continue
			}
			if !reflect.DeepEqual(got, ref) {
				t.Fatalf("chunk=%d: parse differs from reference", chunk)
			}
		}
	})
}
