package buffering

import (
	"math"
	"math/rand"
	"testing"

	"smartndr/internal/cell"
	"smartndr/internal/ctree"
	"smartndr/internal/dme"
	"smartndr/internal/geom"
	"smartndr/internal/tech"
	"smartndr/internal/topo"
)

func buildEmbedded(t testing.TB, n int, seed int64, spread float64) *ctree.Tree {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	sinks := make([]ctree.Sink, n)
	for i := range sinks {
		sinks[i] = ctree.Sink{
			Loc: geom.Point{X: rng.Float64() * spread, Y: rng.Float64() * spread},
			Cap: (1 + rng.Float64()*2) * 1e-15,
		}
	}
	tr, err := topo.Build(topo.Bipartition, sinks, geom.Point{X: spread / 2, Y: spread / 2})
	if err != nil {
		t.Fatal(err)
	}
	te := tech.Tech45()
	p := dme.Params{
		RPerUm: te.Layer.RPerUm(te.Rule(te.BlanketRule)),
		CPerUm: te.Layer.CPerUm(te.Rule(te.BlanketRule)),
	}
	if err := dme.Embed(tr, p); err != nil {
		t.Fatal(err)
	}
	tr.SetAllRules(te.BlanketRule)
	return tr
}

func TestInsertPlacesRootDriver(t *testing.T) {
	tr := buildEmbedded(t, 16, 1, 500)
	lib := cell.Default45()
	n, err := Insert(tr, lib, FromTech(tech.Tech45()))
	if err != nil {
		t.Fatal(err)
	}
	if tr.Nodes[tr.Root].BufIdx == ctree.NoBuf {
		t.Error("root must carry the source driver")
	}
	if n != tr.BufferCount() {
		t.Errorf("returned count %d != BufferCount %d", n, tr.BufferCount())
	}
}

func TestInsertTreeStaysValid(t *testing.T) {
	for _, n := range []int{2, 5, 33, 128} {
		tr := buildEmbedded(t, n, int64(n), 3000)
		wlBefore := tr.TotalWirelength()
		lib := cell.Default45()
		if _, err := Insert(tr, lib, FromTech(tech.Tech45())); err != nil {
			t.Fatal(err)
		}
		if err := tr.Validate(); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if err := tr.CheckEmbedding(1e-6); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if math.Abs(tr.TotalWirelength()-wlBefore) > 1e-6*wlBefore {
			t.Errorf("n=%d: edge splitting changed wirelength %g → %g",
				n, wlBefore, tr.TotalWirelength())
		}
	}
}

func TestInsertStageCapBounded(t *testing.T) {
	tr := buildEmbedded(t, 256, 3, 5000)
	lib := cell.Default45()
	te := tech.Tech45()
	opt := FromTech(te)
	if _, err := Insert(tr, lib, opt); err != nil {
		t.Fatal(err)
	}
	caps, drivers := StageCaps(tr, lib, opt.CPerUm)
	if len(drivers) == 0 {
		t.Fatal("no stages found")
	}
	for _, v := range drivers {
		c := caps[v]
		if c > 2*opt.MaxCapPerStage {
			t.Errorf("stage at node %d carries %g F, over 2× the %g F budget", v, c, opt.MaxCapPerStage)
		}
		if c < 0 {
			t.Errorf("stage at node %d has negative cap", v)
		}
	}
}

func TestInsertNoLeafBuffers(t *testing.T) {
	tr := buildEmbedded(t, 64, 9, 4000)
	lib := cell.Default45()
	if _, err := Insert(tr, lib, FromTech(tech.Tech45())); err != nil {
		t.Fatal(err)
	}
	for i := range tr.Nodes {
		if tr.IsLeaf(i) && tr.Nodes[i].BufIdx != ctree.NoBuf {
			t.Fatalf("leaf %d carries a buffer", i)
		}
	}
}

func TestInsertPathBufferCounts(t *testing.T) {
	// Characterizes the greedy cap-limited baseline: per-path buffer
	// counts vary (it does not control insertion-delay balance — that is
	// why the flow default is the hierarchical builder in package cts),
	// but the spread must stay moderate relative to the path depth.
	tr := buildEmbedded(t, 256, 4, 5000)
	lib := cell.Default45()
	if _, err := Insert(tr, lib, FromTech(tech.Tech45())); err != nil {
		t.Fatal(err)
	}
	minB, maxB := math.MaxInt32, 0
	for i := range tr.Nodes {
		if !tr.IsLeaf(i) {
			continue
		}
		count := 0
		for v := i; v != ctree.NoNode; v = tr.Nodes[v].Parent {
			if tr.Nodes[v].BufIdx != ctree.NoBuf {
				count++
			}
		}
		if count < minB {
			minB = count
		}
		if count > maxB {
			maxB = count
		}
	}
	if maxB == 0 {
		t.Fatal("no buffers on any path")
	}
	if maxB-minB > maxB/2+2 {
		t.Errorf("path buffer counts range %d..%d — pathological imbalance", minB, maxB)
	}
}

func TestInsertSmallTreeSingleDriver(t *testing.T) {
	// A tiny, close-packed tree fits in one stage: only the root driver.
	tr := buildEmbedded(t, 4, 4, 50)
	lib := cell.Default45()
	n, err := Insert(tr, lib, FromTech(tech.Tech45()))
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Errorf("50 µm spread should need only the root driver, got %d buffers", n)
	}
}

func TestInsertOptionValidation(t *testing.T) {
	tr := buildEmbedded(t, 4, 5, 100)
	lib := cell.Default45()
	bad := []Options{
		{CPerUm: 0, MaxCapPerStage: 1, MaxSlew: 1},
		{CPerUm: 1, MaxCapPerStage: 0, MaxSlew: 1},
		{CPerUm: 1, MaxCapPerStage: 1, MaxSlew: 0},
		{CPerUm: 1, MaxCapPerStage: 1, MaxSlew: 1, InSlew: -1},
	}
	for i, o := range bad {
		if _, err := Insert(tr, lib, o); err == nil {
			t.Errorf("bad options %d accepted", i)
		}
	}
}

func TestSplitLongEdges(t *testing.T) {
	sinks := []ctree.Sink{
		{Loc: geom.Point{X: 0, Y: 0}, Cap: 1e-15},
		{Loc: geom.Point{X: 3000, Y: 0}, Cap: 1e-15},
	}
	tr, _ := topo.Build(topo.Bipartition, sinks, geom.Point{})
	te := tech.Tech45()
	if err := dme.Embed(tr, dme.Params{
		RPerUm: te.Layer.RPerUm(te.Rule(te.BlanketRule)),
		CPerUm: te.Layer.CPerUm(te.Rule(te.BlanketRule)),
	}); err != nil {
		t.Fatal(err)
	}
	wl := tr.TotalWirelength()
	nodesBefore := len(tr.Nodes)
	SplitLongEdges(tr, 200)
	if len(tr.Nodes) <= nodesBefore {
		t.Fatal("3 mm edges must be split at 200 µm")
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := tr.CheckEmbedding(1e-6); err != nil {
		t.Fatal(err)
	}
	if math.Abs(tr.TotalWirelength()-wl) > 1e-6*wl {
		t.Errorf("wirelength changed: %g → %g", wl, tr.TotalWirelength())
	}
	for i := range tr.Nodes {
		if tr.Nodes[i].Parent != ctree.NoNode && tr.Nodes[i].EdgeLen > 200+1e-9 {
			t.Errorf("edge %d still %g µm long", i, tr.Nodes[i].EdgeLen)
		}
	}
}

func TestSplitLongEdgesPreservesRules(t *testing.T) {
	sinks := []ctree.Sink{
		{Loc: geom.Point{X: 0, Y: 0}, Cap: 1e-15},
		{Loc: geom.Point{X: 1000, Y: 0}, Cap: 1e-15},
	}
	tr, _ := topo.Build(topo.Bipartition, sinks, geom.Point{})
	te := tech.Tech45()
	if err := dme.Embed(tr, dme.Params{RPerUm: 3, CPerUm: 0.2e-15}); err != nil {
		t.Fatal(err)
	}
	tr.SetAllRules(te.BlanketRule)
	SplitLongEdges(tr, 100)
	for i := range tr.Nodes {
		if tr.Nodes[i].Parent != ctree.NoNode && tr.Nodes[i].Rule != te.BlanketRule {
			t.Fatalf("split node %d lost its rule", i)
		}
	}
}

func TestSplitLongEdgesNoop(t *testing.T) {
	tr := buildEmbedded(t, 8, 6, 100)
	n := len(tr.Nodes)
	SplitLongEdges(tr, 1e9)
	if len(tr.Nodes) != n {
		t.Error("nothing should split under a huge limit")
	}
	SplitLongEdges(tr, 0) // guard: non-positive limit is a no-op
	if len(tr.Nodes) != n {
		t.Error("non-positive limit must be a no-op")
	}
}

func TestVanGinnekenBeatsUnbuffered(t *testing.T) {
	lib := cell.Default45()
	te := tech.Tech45()
	r := te.Layer.RPerUm(te.Rule(te.DefaultRule))
	c := te.Layer.CPerUm(te.Rule(te.DefaultRule))
	for _, length := range []float64{500, 1000, 3000, 8000} {
		res, err := VanGinneken(length, r, c, 2e-15, lib, 50)
		if err != nil {
			t.Fatal(err)
		}
		unbuf := UnbufferedDelay(length, r, c, 2e-15, lib)
		if length >= 1000 && res.Delay >= unbuf {
			t.Errorf("length %g: buffered %g ≥ unbuffered %g", length, res.Delay, unbuf)
		}
		if res.Delay <= 0 {
			t.Errorf("length %g: non-positive delay", length)
		}
		if len(res.Positions) != len(res.Cells) {
			t.Error("positions and cells must be parallel")
		}
		for i := 1; i < len(res.Positions); i++ {
			if res.Positions[i] <= res.Positions[i-1] {
				t.Error("positions must ascend")
			}
		}
	}
}

func TestVanGinnekenMoreBuffersOnLongerWires(t *testing.T) {
	lib := cell.Default45()
	te := tech.Tech45()
	r := te.Layer.RPerUm(te.Rule(te.DefaultRule))
	c := te.Layer.CPerUm(te.Rule(te.DefaultRule))
	short, err := VanGinneken(1000, r, c, 2e-15, lib, 50)
	if err != nil {
		t.Fatal(err)
	}
	long, err := VanGinneken(10000, r, c, 2e-15, lib, 50)
	if err != nil {
		t.Fatal(err)
	}
	if len(long.Positions) <= len(short.Positions) {
		t.Errorf("10 mm wire should need more buffers than 1 mm: %d vs %d",
			len(long.Positions), len(short.Positions))
	}
}

func TestVanGinnekenDelayScalesLinearlyWhenBuffered(t *testing.T) {
	lib := cell.Default45()
	te := tech.Tech45()
	r := te.Layer.RPerUm(te.Rule(te.DefaultRule))
	c := te.Layer.CPerUm(te.Rule(te.DefaultRule))
	d4, err := VanGinneken(4000, r, c, 2e-15, lib, 50)
	if err != nil {
		t.Fatal(err)
	}
	d8, err := VanGinneken(8000, r, c, 2e-15, lib, 50)
	if err != nil {
		t.Fatal(err)
	}
	ratio := d8.Delay / d4.Delay
	if ratio > 2.6 || ratio < 1.4 {
		t.Errorf("buffered delay ratio 8mm/4mm = %g, want ≈2 (linear regime)", ratio)
	}
}

func TestVanGinnekenNDRReducesDelay(t *testing.T) {
	lib := cell.Default45()
	te := tech.Tech45()
	rD := te.Layer.RPerUm(te.Rule(te.DefaultRule))
	cD := te.Layer.CPerUm(te.Rule(te.DefaultRule))
	rN := te.Layer.RPerUm(te.Rule(te.BlanketRule))
	cN := te.Layer.CPerUm(te.Rule(te.BlanketRule))
	def, err := VanGinneken(5000, rD, cD, 2e-15, lib, 50)
	if err != nil {
		t.Fatal(err)
	}
	ndr, err := VanGinneken(5000, rN, cN, 2e-15, lib, 50)
	if err != nil {
		t.Fatal(err)
	}
	if ndr.Delay >= def.Delay {
		t.Errorf("NDR wire should be faster: %g vs %g", ndr.Delay, def.Delay)
	}
}

func TestVanGinnekenInputValidation(t *testing.T) {
	lib := cell.Default45()
	for _, bad := range [][4]float64{
		{0, 1, 1, 1}, {-5, 1, 1, 1}, {100, 0, 1, 1}, {100, 1, 0, 1}, {100, 1, 1, 0},
	} {
		if _, err := VanGinneken(bad[0], bad[1], bad[2], 1e-15, lib, bad[3]); err == nil {
			t.Errorf("bad inputs %v accepted", bad)
		}
	}
}

func TestPrunePareto(t *testing.T) {
	cands := []vgCandidate{
		{cap: 3, delay: 1},
		{cap: 1, delay: 3},
		{cap: 2, delay: 2},
		{cap: 2.5, delay: 2.5}, // dominated by {2,2}
		{cap: 4, delay: 0.5},
	}
	out := prunePareto(cands)
	if len(out) != 4 {
		t.Fatalf("pruned to %d, want 4: %+v", len(out), out)
	}
	for i := 1; i < len(out); i++ {
		if out[i].cap <= out[i-1].cap || out[i].delay >= out[i-1].delay {
			t.Fatalf("not a Pareto front: %+v", out)
		}
	}
}

func BenchmarkInsert1k(b *testing.B) {
	lib := cell.Default45()
	opt := FromTech(tech.Tech45())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		tr := buildEmbedded(b, 1024, 8, 4000)
		b.StartTimer()
		if _, err := Insert(tr, lib, opt); err != nil {
			b.Fatal(err)
		}
	}
}
