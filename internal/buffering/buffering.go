// Package buffering provides the buffer-insertion toolbox of the flow:
// greedy cap-limited insertion (Insert) used as an ablation baseline, long-
// edge splitting, NLDM linearization and repeated-line planning for the
// hierarchical builder in package cts, and a classical van Ginneken DP.
//
// Insert is a two-step greedy scheme:
//
//  1. Long edges are split into chains of unary nodes so that no single
//     wire segment exceeds a fraction of the stage capacitance budget —
//     otherwise a single top-level DME edge (which can run for millimetres)
//     could never be repeated.
//
//  2. A bottom-up cap-limited pass places a buffer wherever the
//     accumulated downstream capacitance would cross the stage budget,
//     choosing per-site the smallest library cell that meets the slew
//     target at its actual load. On a delay-balanced DME tree the
//     accumulation is naturally similar across branches, so per-path
//     buffer counts stay close; the residual insertion-delay skew is
//     measured by STA and cleaned up by the optimizer's skew-repair pass.
//
// A classical van Ginneken dynamic program over a single wire (VanGinneken)
// is included as an independently-testable baseline.
package buffering

import (
	"errors"
	"fmt"
	"math"

	"smartndr/internal/cell"
	"smartndr/internal/ctree"
	"smartndr/internal/geom"
	"smartndr/internal/tech"
)

// Options configure buffer insertion.
type Options struct {
	// CPerUm is the wire capacitance per micron used for stage-cap
	// planning (the blanket rule's value during initial construction).
	CPerUm float64
	// MaxCapPerStage bounds the capacitance a buffer stage may accumulate.
	MaxCapPerStage float64
	// MaxSlew is the transition bound used for cell selection.
	MaxSlew float64
	// InSlew is the transition arriving at the clock root from the source.
	InSlew float64
}

// Validate checks the options.
func (o Options) Validate() error {
	if o.CPerUm <= 0 {
		return fmt.Errorf("buffering: non-positive wire cap %g", o.CPerUm)
	}
	if o.MaxCapPerStage <= 0 {
		return fmt.Errorf("buffering: non-positive stage cap bound %g", o.MaxCapPerStage)
	}
	if o.MaxSlew <= 0 {
		return fmt.Errorf("buffering: non-positive slew bound %g", o.MaxSlew)
	}
	if o.InSlew < 0 {
		return errors.New("buffering: negative input slew")
	}
	return nil
}

// FromTech derives insertion options from a technology (planning under its
// blanket rule).
func FromTech(te *tech.Tech) Options {
	return Options{
		CPerUm:         te.Layer.CPerUm(te.Rule(te.BlanketRule)),
		MaxCapPerStage: te.MaxCapPerStage,
		MaxSlew:        te.MaxSlew,
		InSlew:         40e-12,
	}
}

// maxSegFrac is the fraction of the stage budget one wire segment may hold
// after edge splitting.
const maxSegFrac = 0.5

// Insert places buffers and returns the number inserted (including the
// root driver, which is always placed). The tree is modified: long edges
// gain unary split nodes, and BufIdx fields are set. Existing buffer
// assignments are discarded.
func Insert(t *ctree.Tree, lib *cell.Library, opt Options) (int, error) {
	if err := opt.Validate(); err != nil {
		return 0, err
	}
	if err := lib.Validate(); err != nil {
		return 0, err
	}
	if t.Root == ctree.NoNode {
		return 0, errors.New("buffering: tree has no root")
	}
	for i := range t.Nodes {
		t.Nodes[i].BufIdx = ctree.NoBuf
	}
	maxSegLen := maxSegFrac * opt.MaxCapPerStage / opt.CPerUm
	SplitLongEdges(t, maxSegLen)

	// Bottom-up cap-limited placement. downCap[v] is the capacitance a
	// driver at v would see: subtree wire + sink pins, cut at buffered
	// descendants (replaced by their input cap).
	downCap := make([]float64, len(t.Nodes))
	trigger := 0.8 * opt.MaxCapPerStage
	count := 0
	t.PostOrder(func(v int) {
		n := &t.Nodes[v]
		if t.IsLeaf(v) {
			downCap[v] = t.Sinks[n.SinkIdx].Cap
			return
		}
		sum := 0.0
		for _, k := range n.Kids {
			if k == ctree.NoNode {
				continue
			}
			sum += downCap[k] + opt.CPerUm*t.Nodes[k].EdgeLen
		}
		downCap[v] = sum
		edgeUp := 0.0
		if n.Parent != ctree.NoNode {
			edgeUp = opt.CPerUm * n.EdgeLen
		}
		if v == t.Root || sum >= trigger || sum+edgeUp > opt.MaxCapPerStage {
			b, _ := lib.SmallestMeeting(opt.MaxSlew, sum, opt.MaxSlew)
			n.BufIdx = indexOf(lib, b)
			downCap[v] = b.InputCap
			count++
		}
	})
	return count, nil
}

// SplitLongEdges subdivides every edge longer than maxLen into equal
// segments joined by unary nodes placed along the straight line between
// the endpoints. Electrical lengths divide exactly, so total wirelength
// and downstream parasitics are unchanged.
func SplitLongEdges(t *ctree.Tree, maxLen float64) {
	if maxLen <= 0 {
		return
	}
	// Collect first: AddNode invalidates iteration order.
	type job struct{ node, segs int }
	var jobs []job
	for i := range t.Nodes {
		if t.Nodes[i].Parent == ctree.NoNode {
			continue
		}
		// Segment count must match the repeated-line model exactly:
		// n = ceil(e/maxLen), with a hair of tolerance so an edge of
		// exactly n·maxLen yields n segments, not n+1.
		segs := int(math.Ceil(t.Nodes[i].EdgeLen/maxLen - 1e-12))
		if segs >= 2 {
			jobs = append(jobs, job{i, segs})
		}
	}
	for _, j := range jobs {
		splitEdge(t, j.node, j.segs)
	}
}

// splitEdge replaces the feeding edge of node v with a chain of `segs`
// equal segments through segs−1 new unary nodes.
func splitEdge(t *ctree.Tree, v, segs int) {
	if segs < 2 {
		return
	}
	p := t.Nodes[v].Parent
	total := t.Nodes[v].EdgeLen
	rule := t.Nodes[v].Rule
	a := t.Nodes[p].Loc
	b := t.Nodes[v].Loc
	segLen := total / float64(segs)
	prev := p
	for s := 1; s < segs; s++ {
		f := float64(s) / float64(segs)
		loc := geom.Point{X: a.X + (b.X-a.X)*f, Y: a.Y + (b.Y-a.Y)*f}
		id := t.AddNode(ctree.Node{
			Parent:  prev,
			Kids:    [2]int{ctree.NoNode, ctree.NoNode},
			SinkIdx: ctree.NoSink,
			Loc:     loc,
			EdgeLen: segLen,
			Rule:    rule,
			BufIdx:  ctree.NoBuf,
		})
		// Rewire the previous node's child pointer.
		if prev == p {
			for ki, k := range t.Nodes[p].Kids {
				if k == v {
					t.Nodes[p].Kids[ki] = id
					break
				}
			}
		} else {
			t.Nodes[prev].Kids[0] = id
		}
		prev = id
	}
	t.Nodes[prev].Kids[0] = v
	if prev != p {
		// prev is a fresh unary node; make sure its second slot is empty
		// and point v at it.
		t.Nodes[prev].Kids[1] = ctree.NoNode
	}
	t.Nodes[v].Parent = prev
	t.Nodes[v].EdgeLen = segLen
}

// StageCaps recomputes, for every buffered node, the capacitance of the
// stage it drives (wire + sink pins + downstream buffer input caps). caps
// is indexed by node (meaningful only at buffered nodes, zero elsewhere);
// drivers lists the buffered nodes in ascending node order, giving a
// deterministic iteration over the stages. Used by buffer sizing, tests,
// and reports.
func StageCaps(t *ctree.Tree, lib *cell.Library, cPerUm float64) (caps []float64, drivers []int) {
	caps = make([]float64, len(t.Nodes))
	downCap := make([]float64, len(t.Nodes))
	t.PostOrder(func(v int) {
		n := &t.Nodes[v]
		if t.IsLeaf(v) {
			downCap[v] = t.Sinks[n.SinkIdx].Cap
			return
		}
		sum := 0.0
		for _, k := range n.Kids {
			if k == ctree.NoNode {
				continue
			}
			sum += downCap[k] + cPerUm*t.Nodes[k].EdgeLen
		}
		if n.BufIdx != ctree.NoBuf {
			caps[v] = sum
			downCap[v] = lib.Buffers[n.BufIdx].InputCap
			return
		}
		downCap[v] = sum
	})
	for v := range t.Nodes {
		if t.Nodes[v].BufIdx != ctree.NoBuf && !t.IsLeaf(v) {
			drivers = append(drivers, v)
		}
	}
	return caps, drivers
}

func indexOf(lib *cell.Library, b *cell.Buffer) int {
	for i := range lib.Buffers {
		if lib.Buffers[i].Name == b.Name {
			return i
		}
	}
	return 0
}
