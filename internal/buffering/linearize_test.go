package buffering

import (
	"math"
	"testing"

	"smartndr/internal/cell"
	"smartndr/internal/tech"
)

func TestLinearizeTracksTable(t *testing.T) {
	lib := cell.Default45()
	const refSlew = 50e-12
	for i := range lib.Buffers {
		b := &lib.Buffers[i]
		lin := Linearize(b, refSlew)
		if lin.Rd <= 0 || lin.Cin != b.InputCap {
			t.Fatalf("%s: bad linearization %+v", b.Name, lin)
		}
		// The fit must track the table within a few percent across the
		// characterized load range (the generator is linear in load).
		for _, load := range b.Delay.LoadAxis {
			want := b.DelayAt(refSlew, load)
			got := lin.T0 + lin.Rd*load
			if math.Abs(got-want) > 0.05*want {
				t.Errorf("%s @%g F: lin %g vs table %g", b.Name, load, got, want)
			}
		}
	}
}

func TestLinearizeStrongerCellsLowerRd(t *testing.T) {
	lib := cell.Default45()
	prev := math.Inf(1)
	for i := range lib.Buffers {
		lin := Linearize(&lib.Buffers[i], 50e-12)
		if lin.Rd >= prev {
			t.Errorf("%s: Rd %g not below weaker cell's %g", lib.Buffers[i].Name, lin.Rd, prev)
		}
		prev = lin.Rd
	}
}

func TestPlanRepeatedLine(t *testing.T) {
	lib := cell.Default45()
	te := tech.Tech45()
	r := te.Layer.RPerUm(te.Rule(te.BlanketRule))
	c := te.Layer.CPerUm(te.Rule(te.BlanketRule))
	rl, err := PlanRepeatedLine(lib, r, c, te.MaxCapPerStage, te.MaxSlew, 50e-12)
	if err != nil {
		t.Fatal(err)
	}
	if rl.Spacing <= 0 || rl.KPerUm <= 0 {
		t.Fatalf("bad plan %+v", rl)
	}
	// Segment cap within budget.
	b := &lib.Buffers[rl.CellIdx]
	segCap := c*rl.Spacing + b.InputCap
	if segCap > te.MaxCapPerStage*1.0001 {
		t.Errorf("segment cap %g over budget %g", segCap, te.MaxCapPerStage)
	}
	// Slew met at segment load.
	if s := b.OutSlewAt(50e-12, segCap); s > te.MaxSlew {
		t.Errorf("repeater slew %g over bound %g", s, te.MaxSlew)
	}
	// Amortized rate must beat the unbuffered quadratic over a few mm.
	L := 4000.0
	unbuf := r * L * (c * L / 2)
	if rl.KPerUm*L >= unbuf {
		t.Errorf("repeated line %g not faster than unbuffered %g over %g µm", rl.KPerUm*L, unbuf, L)
	}
}

func TestPlanRepeatedLineErrors(t *testing.T) {
	lib := cell.Default45()
	if _, err := PlanRepeatedLine(lib, 0, 1e-15, 1e-13, 1e-10, 5e-11); err == nil {
		t.Error("zero r should fail")
	}
	if _, err := PlanRepeatedLine(lib, 1, 1e-15, 0, 1e-10, 5e-11); err == nil {
		t.Error("zero budget should fail")
	}
	// Budget below every cell's input cap is impossible.
	if _, err := PlanRepeatedLine(lib, 1, 1e-15, 1e-18, 1e-10, 5e-11); err == nil {
		t.Error("sub-Cin budget should fail")
	}
}

func TestPlanRepeatedLinePrefersSmallCells(t *testing.T) {
	lib := cell.Default45()
	te := tech.Tech45()
	r := te.Layer.RPerUm(te.Rule(te.BlanketRule))
	c := te.Layer.CPerUm(te.Rule(te.BlanketRule))
	// A very loose slew bound lets the smallest cell win.
	rl, err := PlanRepeatedLine(lib, r, c, te.MaxCapPerStage, 1.0, 50e-12)
	if err != nil {
		t.Fatal(err)
	}
	if rl.CellIdx != 0 {
		t.Errorf("loose slew should pick the weakest cell, got %d", rl.CellIdx)
	}
	// A tight slew bound forces a stronger cell.
	rl2, err := PlanRepeatedLine(lib, r, c, te.MaxCapPerStage, 40e-12, 50e-12)
	if err != nil {
		t.Fatal(err)
	}
	if rl2.CellIdx <= rl.CellIdx {
		t.Errorf("tight slew should pick a stronger cell: %d vs %d", rl2.CellIdx, rl.CellIdx)
	}
}
