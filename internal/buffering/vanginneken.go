package buffering

import (
	"fmt"
	"math"

	"smartndr/internal/cell"
)

// VGResult is the outcome of the van Ginneken dynamic program on a single
// wire: the minimal achievable source-to-sink Elmore delay and the buffer
// positions (distance from the sink, µm) with their cell indices.
type VGResult struct {
	Delay     float64   // s, driver output to sink, including buffer delays
	Positions []float64 // µm from the *sink*, ascending
	Cells     []int     // cell index per position, parallel to Positions
}

// vgCandidate is one Pareto point of the DP: driving this partial solution
// requires capacitance Cap at its upstream end and incurs Delay to the sink.
type vgCandidate struct {
	cap   float64
	delay float64
	// chain of insertions (linked to share tails across candidates)
	link *vgInsertion
}

type vgInsertion struct {
	pos  float64 // distance from sink
	cell int
	prev *vgInsertion
}

// VanGinneken computes the delay-optimal buffering of a single wire of the
// given length (µm) with per-micron parasitics r and c, driving a sink of
// capacitance sinkCap. Candidate buffer sites are every `step` µm. Buffer
// delay is approximated from each cell's NLDM table at a fixed slew — the
// classical formulation uses a linear (R_d, C_in, T_int) model, which the
// tables embed.
//
// This is the textbook O(sites × cells × candidates) bottom-up DP with
// Pareto pruning. It exists as an independently-verifiable baseline for the
// level-synchronous scheme used on whole trees.
func VanGinneken(length, r, c, sinkCap float64, lib *cell.Library, step float64) (VGResult, error) {
	if length <= 0 || r <= 0 || c <= 0 || step <= 0 {
		return VGResult{}, fmt.Errorf("buffering: bad van Ginneken inputs length=%g r=%g c=%g step=%g", length, r, c, step)
	}
	if err := lib.Validate(); err != nil {
		return VGResult{}, err
	}
	const refSlew = 50e-12
	// Start at the sink.
	cands := []vgCandidate{{cap: sinkCap, delay: 0}}
	nSites := int(length / step)
	for s := 1; s <= nSites; s++ {
		pos := float64(s) * step
		seg := step
		if pos > length {
			seg = length - float64(s-1)*step
			pos = length
		}
		// Propagate every candidate upstream across the segment.
		for i := range cands {
			cd := &cands[i]
			cd.delay += r * seg * (c*seg/2 + cd.cap)
			cd.cap += c * seg
		}
		// Option: insert any buffer here.
		var added []vgCandidate
		for ci := range lib.Buffers {
			b := &lib.Buffers[ci]
			best := vgCandidate{cap: math.Inf(1), delay: math.Inf(1)}
			for _, cd := range cands {
				d := cd.delay + b.DelayAt(refSlew, cd.cap)
				if d < best.delay {
					best = vgCandidate{
						cap:   b.InputCap,
						delay: d,
						link:  &vgInsertion{pos: pos, cell: ci, prev: cd.link},
					}
				}
			}
			added = append(added, best)
		}
		cands = prunePareto(append(cands, added...))
	}
	// Terminal: driven by the strongest buffer as the source driver.
	drv := lib.Strongest()
	best := vgCandidate{delay: math.Inf(1)}
	for _, cd := range cands {
		if d := cd.delay + drv.DelayAt(refSlew, cd.cap); d < best.delay {
			best = cd
			best.delay = d
		}
	}
	res := VGResult{Delay: best.delay}
	for ins := best.link; ins != nil; ins = ins.prev {
		res.Positions = append(res.Positions, ins.pos)
		res.Cells = append(res.Cells, ins.cell)
	}
	// Linked list is upstream-first; reverse into ascending
	// distance-from-sink order.
	for i, j := 0, len(res.Positions)-1; i < j; i, j = i+1, j-1 {
		res.Positions[i], res.Positions[j] = res.Positions[j], res.Positions[i]
		res.Cells[i], res.Cells[j] = res.Cells[j], res.Cells[i]
	}
	return res, nil
}

// prunePareto keeps only candidates not dominated in (cap, delay): a
// candidate is dominated if another has both smaller-or-equal cap and
// smaller-or-equal delay.
func prunePareto(cands []vgCandidate) []vgCandidate {
	// Sort by cap ascending, then sweep keeping strictly decreasing delay.
	for i := 1; i < len(cands); i++ {
		for j := i; j > 0 && cands[j].cap < cands[j-1].cap; j-- {
			cands[j], cands[j-1] = cands[j-1], cands[j]
		}
	}
	out := cands[:0]
	bestDelay := math.Inf(1)
	for _, cd := range cands {
		if cd.delay < bestDelay {
			out = append(out, cd)
			bestDelay = cd.delay
		}
	}
	return out
}

// UnbufferedDelay returns the Elmore delay of the same wire with no
// buffers, driven by the strongest library cell — the baseline VanGinneken
// must beat on long wires.
func UnbufferedDelay(length, r, c, sinkCap float64, lib *cell.Library) float64 {
	const refSlew = 50e-12
	drv := lib.Strongest()
	wireCap := c * length
	return drv.DelayAt(refSlew, wireCap+sinkCap) + r*length*(c*length/2+sinkCap)
}
