package buffering

import (
	"fmt"
	"math"

	"smartndr/internal/cell"
)

// LinBuf is a linearized buffer model extracted from NLDM tables at a
// reference slew: delay(load) ≈ T0 + Rd·load. It is the model the upper-
// level (repeated-wire) DME balances against; final timing always comes
// from the full tables.
type LinBuf struct {
	Rd  float64 // Ω, effective switch resistance
	T0  float64 // s, intrinsic delay
	Cin float64 // F, input capacitance
}

// Linearize fits the two-parameter model to a cell's delay table at the
// given reference slew using two load points inside the characterized
// range.
func Linearize(b *cell.Buffer, refSlew float64) LinBuf {
	axis := b.Delay.LoadAxis
	l1 := axis[len(axis)/3]
	l2 := axis[2*len(axis)/3]
	d1 := b.DelayAt(refSlew, l1)
	d2 := b.DelayAt(refSlew, l2)
	rd := (d2 - d1) / (l2 - l1)
	return LinBuf{
		Rd:  rd,
		T0:  d1 - rd*l1,
		Cin: b.InputCap,
	}
}

// RepeatedLine describes a wire driven through identical repeaters at
// fixed spacing: the classical "buffered interconnect" whose delay is
// linear in length. Junction (merge-point) repeaters drive two downstream
// segments; their delay is a per-merge constant rather than per-micron.
type RepeatedLine struct {
	Spacing       float64 // µm between repeaters
	KPerUm        float64 // s/µm amortized inline delay rate
	CellIdx       int     // repeater cell index in the library
	JunctionDelay float64 // s, delay of a merge-point repeater at 2× segment load
	// SteadySlew is the fixed-point input transition of an infinite
	// repeated line: each repeater's output slew at the segment load,
	// RSS-composed with the segment's wire slew, reproduces itself. Delay
	// models linearized at this slew carry no systematic bias along long
	// repeated paths.
	SteadySlew float64 // s
}

// slewFromElmore converts an Elmore delay to a PERI step transition.
func slewFromElmore(d float64) float64 { return 2.1972245773362196 * d }

// rss is root-sum-square transition composition.
func rss(a, b float64) float64 {
	return math.Hypot(a, b)
}

// PlanRepeatedLine chooses a repeater cell and spacing such that each
// segment's capacitance (wire + repeater input) stays within capBudget,
// and returns the amortized per-micron delay rate
//
//	k = [Rd·(c·s + Cin) + T0 + r·s·(c·s/2 + Cin)] / s
//
// plus the constant delay of a junction repeater, which drives two such
// segments. The cell is the smallest whose output slew meets maxSlew at
// the *junction* load (the worst case); spacing is set to fill the budget.
func PlanRepeatedLine(lib *cell.Library, r, c, capBudget, maxSlew, refSlew float64) (RepeatedLine, error) {
	if r <= 0 || c <= 0 || capBudget <= 0 {
		return RepeatedLine{}, fmt.Errorf("buffering: bad repeated-line inputs r=%g c=%g budget=%g", r, c, capBudget)
	}
	plan := func(ci int) (RepeatedLine, float64, bool) {
		b := &lib.Buffers[ci]
		s := (capBudget - b.InputCap) / c
		if s <= 0 {
			return RepeatedLine{}, 0, false
		}
		segLoad := c*s + b.InputCap
		juncLoad := 2 * segLoad
		// Fixed-point repeater input slew along the line.
		wireStep := slewFromElmore(r * s * (c*s/2 + b.InputCap))
		steady := refSlew
		for i := 0; i < 25; i++ {
			steady = rss(b.OutSlewAt(steady, segLoad), wireStep)
		}
		lin := Linearize(b, steady)
		rl := RepeatedLine{
			Spacing:       s,
			KPerUm:        (lin.Rd*segLoad + lin.T0 + r*s*(c*s/2+b.InputCap)) / s,
			CellIdx:       ci,
			JunctionDelay: lin.T0 + lin.Rd*juncLoad,
			SteadySlew:    steady,
		}
		return rl, b.OutSlewAt(steady, juncLoad), true
	}
	// Smallest cell meeting slew at the junction load wins.
	for ci := range lib.Buffers {
		rl, slew, ok := plan(ci)
		if ok && slew <= maxSlew {
			return rl, nil
		}
	}
	// Fall back to the strongest cell even if slew-marginal; the caller's
	// STA will surface any violation.
	rl, _, ok := plan(len(lib.Buffers) - 1)
	if !ok {
		return RepeatedLine{}, fmt.Errorf("buffering: cap budget %g below strongest cell input cap", capBudget)
	}
	return rl, nil
}
