package hier

import (
	"context"
	"crypto/sha256"
	"encoding/binary"
	"math"
	"testing"

	"smartndr/internal/cell"
	"smartndr/internal/ctree"
	"smartndr/internal/sta"
	"smartndr/internal/tech"
	"smartndr/internal/workload"
)

func benchSinks(tb testing.TB, n int, die float64, seed int64) ([]ctree.Sink, workload.Benchmark) {
	tb.Helper()
	bm, err := workload.Generate(workload.Spec{
		Name: "hier", Dist: workload.Clustered, Sinks: n, DieX: die, DieY: die * 0.8,
		CapMin: 1e-15, CapMax: 4e-15, Seed: seed,
	})
	if err != nil {
		tb.Fatal(err)
	}
	return bm.Sinks, *bm
}

// fingerprint reduces a tree to a SHA-256 over every bit that defines it:
// topology, sink bindings, exact coordinates, edge lengths, rules, and
// buffer choices. Two trees with equal fingerprints are byte-identical
// for every downstream consumer (STA, power model, writers).
func fingerprint(t *ctree.Tree) [32]byte {
	h := sha256.New()
	var buf [8]byte
	w := func(u uint64) {
		binary.LittleEndian.PutUint64(buf[:], u)
		h.Write(buf[:])
	}
	w(uint64(t.Root))
	w(uint64(len(t.Nodes)))
	for i := range t.Nodes {
		n := &t.Nodes[i]
		w(uint64(n.Parent))
		w(uint64(n.Kids[0]))
		w(uint64(n.Kids[1]))
		w(uint64(n.SinkIdx))
		w(math.Float64bits(n.Loc.X))
		w(math.Float64bits(n.Loc.Y))
		w(math.Float64bits(n.EdgeLen))
		w(uint64(n.Rule))
		w(uint64(n.BufIdx))
	}
	var out [32]byte
	h.Sum(out[:0])
	return out
}

func build(t *testing.T, sinks []ctree.Sink, bm workload.Benchmark, cfg Config) *Result {
	t.Helper()
	te := tech.Tech45()
	lib := cell.Default45()
	res, err := Build(context.Background(), sinks, bm.Src, te, lib, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestWorkerInvariance is the scale byte-identity contract: the stitched,
// balanced, smart-optimized tree must be bit-identical whether the
// regions were built serially or on eight workers.
func TestWorkerInvariance(t *testing.T) {
	sinks, bm := benchSinks(t, 6000, 8000, 77)
	mk := func(workers int) [32]byte {
		cfg := Config{MaxRegionSinks: 800, Smart: true, Workers: workers}
		res := build(t, sinks, bm, cfg)
		if res.NumRegions < 4 {
			t.Fatalf("expected a real partition, got %d regions", res.NumRegions)
		}
		return fingerprint(res.Tree)
	}
	serial := mk(1)
	if parallel := mk(8); parallel != serial {
		t.Fatal("Workers=8 tree differs from Workers=1 tree")
	}
	// And rebuild determinism at a fixed worker count.
	if again := mk(8); again != serial {
		t.Fatal("repeated Workers=8 build not deterministic")
	}
}

func TestBuildMeetsSkewBudget(t *testing.T) {
	te := tech.Tech45()
	lib := cell.Default45()
	for _, smart := range []bool{false, true} {
		sinks, bm := benchSinks(t, 4000, 7000, 5)
		cfg := Config{MaxRegionSinks: 600, Smart: smart, Workers: 2}
		res := build(t, sinks, bm, cfg)
		an, err := sta.Analyze(res.Tree, te, lib, 40e-12)
		if err != nil {
			t.Fatal(err)
		}
		if got := an.Skew(); got > te.MaxSkew {
			t.Errorf("smart=%v: global skew %.2f ps over budget %.2f ps",
				smart, got*1e12, te.MaxSkew*1e12)
		}
		if res.Skew != res.Balance.FinalSkew {
			t.Errorf("smart=%v: Skew %.3g != Balance.FinalSkew %.3g", smart, res.Skew, res.Balance.FinalSkew)
		}
		if smart {
			if res.Opt == nil {
				t.Fatal("smart build returned nil aggregated stats")
			}
			if res.Opt.Downgrades == 0 {
				t.Error("smart build accepted no downgrades — optimization evidently did not run")
			}
		}
	}
}

func TestBuildCoversEverySink(t *testing.T) {
	sinks, bm := benchSinks(t, 3000, 6000, 11)
	res := build(t, sinks, bm, Config{MaxRegionSinks: 500, Workers: 3})
	seen := make([]bool, len(sinks))
	for i := range res.Tree.Nodes {
		if si := res.Tree.Nodes[i].SinkIdx; si != ctree.NoSink {
			if seen[si] {
				t.Fatalf("sink %d bound twice", si)
			}
			seen[si] = true
		}
	}
	for si, ok := range seen {
		if !ok {
			t.Fatalf("sink %d missing from stitched tree", si)
		}
	}
	total := 0
	for _, n := range res.RegionSinks {
		total += n
	}
	if total != len(sinks) {
		t.Fatalf("region sink counts sum to %d, want %d", total, len(sinks))
	}
}

func TestBuildFlatShortCircuit(t *testing.T) {
	sinks, bm := benchSinks(t, 400, 3000, 3)
	res := build(t, sinks, bm, Config{MaxRegionSinks: 2048, Smart: true})
	if res.NumRegions != 1 {
		t.Fatalf("expected flat build, got %d regions", res.NumRegions)
	}
	if res.Opt == nil || res.Opt.Downgrades == 0 {
		t.Error("flat smart build reported no optimization")
	}
}

func TestBuildRejectsBadConfig(t *testing.T) {
	sinks, bm := benchSinks(t, 10, 1000, 1)
	for _, cfg := range []Config{
		{SkewSplit: 1.5},
		{SkewSplit: -0.1},
		{MaxRegionSinks: -4},
		{InSlew: -1e-12},
	} {
		if _, err := Build(context.Background(), sinks, bm.Src, tech.Tech45(), cell.Default45(), cfg); err == nil {
			t.Errorf("config %+v accepted", cfg)
		}
	}
	if _, err := Build(context.Background(), nil, bm.Src, tech.Tech45(), cell.Default45(), Config{}); err == nil {
		t.Error("empty sink set accepted")
	}
}

func TestBuildHonorsContext(t *testing.T) {
	sinks, bm := benchSinks(t, 3000, 6000, 13)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := Build(ctx, sinks, bm.Src, tech.Tech45(), cell.Default45(), Config{MaxRegionSinks: 500}); err == nil {
		t.Error("cancelled context did not stop the build")
	}
}
