// Package hier builds clock trees at production scale (10^5–10^6 sinks)
// by partitioned hierarchical construction: the sink set is split into
// bounded-size geometric regions, each region gets its own complete CTS
// build (and, optionally, smart-NDR rule optimization) on a worker pool,
// and the region trees are then stitched under one top-level tree whose
// DME pass balances the regions' measured insertion delays.
//
// The skew budget is split across the two levels: regions are built (and
// optimized) to SkewSplit × budget of internal skew, and the stitched
// tree's residual *inter-region* skew — the top model's error plus
// whatever the region measurement missed — is cleaned up by a final
// global wire-snaking balance driven by the incremental STA engine, to
// the full budget.
//
// Determinism contract: the output is a pure function of (sinks, src,
// technology, library, config) — Workers only bounds the fan-out. Region
// builds are independent, results land in index-addressed slices
// (internal/par's contract), and every aggregation runs serially in
// region-index order, so the stitched tree is byte-identical at any
// worker count. The invariance test in this package pins that down.
package hier

import (
	"context"
	"errors"
	"fmt"
	"math"

	"smartndr/internal/cell"
	"smartndr/internal/core"
	"smartndr/internal/ctree"
	"smartndr/internal/cts"
	"smartndr/internal/geom"
	"smartndr/internal/obs"
	"smartndr/internal/par"
	"smartndr/internal/sta"
	"smartndr/internal/tech"
	"smartndr/internal/topo"
)

// Config parameterizes a hierarchical build.
type Config struct {
	// MaxRegionSinks bounds the sink count of one region (default 2048).
	// Sink sets at or under the bound build flat — one region, no top
	// tree.
	MaxRegionSinks int
	// SkewSplit is the fraction of the skew budget granted to intra-region
	// skew; the rest absorbs inter-region error (default 0.5, range (0,1)).
	SkewSplit float64
	// Smart runs the paper's per-edge smart-NDR optimization inside every
	// region (before the top tree is built, so region insertion delays are
	// measured post-optimization). False leaves the blanket rule everywhere.
	Smart bool
	// Workers bounds the region fan-out: 0 uses GOMAXPROCS, 1 is serial.
	// Results are bit-identical for every value.
	Workers int
	// InSlew is the root input transition used for region delay
	// measurement and the final global balance (default 40 ps).
	InSlew float64
	// BalanceIters bounds the final global skew-repair loop (default 40).
	BalanceIters int
	// CTS configures the per-region and top-tree builders. The top build
	// always runs with NoCalibration — see Build.
	CTS cts.Options
	// Opt configures the per-region smart optimizer (Smart only). Its
	// MaxSkew (or the technology bound when zero) is the *global* budget;
	// regions receive SkewSplit × that.
	Opt core.Config
	// Tracer instruments the build phases (partition, regions, top_embed,
	// stitch, balance). Nil disables instrumentation at no cost.
	Tracer *obs.Tracer
}

func (c Config) withDefaults() Config {
	if c.MaxRegionSinks == 0 {
		c.MaxRegionSinks = 2048
	}
	if c.SkewSplit == 0 {
		c.SkewSplit = 0.5
	}
	if c.InSlew == 0 {
		c.InSlew = 40e-12
	}
	if c.BalanceIters == 0 {
		c.BalanceIters = 40
	}
	return c
}

// Validate checks the configuration.
func (c Config) Validate() error {
	c = c.withDefaults()
	if c.MaxRegionSinks < 1 {
		return fmt.Errorf("hier: non-positive region bound %d", c.MaxRegionSinks)
	}
	if c.SkewSplit <= 0 || c.SkewSplit >= 1 {
		return fmt.Errorf("hier: skew split %g out of (0,1)", c.SkewSplit)
	}
	if c.InSlew <= 0 {
		return fmt.Errorf("hier: non-positive input slew %g", c.InSlew)
	}
	return c.CTS.Validate()
}

// Result is a hierarchical build plus its telemetry.
type Result struct {
	Tree *ctree.Tree
	// NumRegions is the number of partitioned regions (1 = flat build).
	NumRegions int
	// RegionSinks[i] is the sink count of region i.
	RegionSinks []int
	// Opt aggregates the per-region optimizer stats (Smart only): counters
	// and wire/cap totals are summed across regions, Passes and FinalSlew
	// take the worst region, FinalSkew is the *global* post-balance skew.
	// The per-pass breakdown slices are region-local and therefore absent.
	Opt *core.Stats
	// Balance reports the final global skew-repair pass.
	Balance core.RepairStats
	// Skew is the final verified global skew, s.
	Skew float64
}

// Build synthesizes a clock tree over the sinks hierarchically. See the
// package comment for the pipeline; the notable subtlety is that the top
// tree is built with calibration disabled: cts.Build's STA feedback loop
// cannot see pseudo-sink Delay offsets (plain STA measures arrivals at
// the tap pins, not below them), so letting it "balance" the top tree
// would equalize tap arrivals and destroy exactly the compensation the
// DME merge encoded. The final post-stitch balance, which runs on the
// full tree where every real sink is visible, owns inter-region cleanup
// instead.
func Build(ctx context.Context, sinks []ctree.Sink, src geom.Point, te *tech.Tech, lib *cell.Library, cfg Config) (*Result, error) {
	if len(sinks) == 0 {
		return nil, errors.New("hier: no sinks")
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()
	tr := cfg.Tracer
	sp := tr.Start("hier.build", obs.I("sinks", len(sinks)))
	defer sp.End()

	// Resolved skew budgets: regions get SkewSplit × global, the final
	// balance targets the full global budget.
	globalSkew := cfg.Opt.MaxSkew
	if globalSkew == 0 {
		globalSkew = te.MaxSkew
	}
	regionOpt := cfg.Opt
	regionOpt.Tracer = nil // workers must not share the ambient span stack
	regionOpt.MaxSkew = cfg.SkewSplit * globalSkew
	regionCTS := cfg.CTS
	regionCTS.Tracer = nil

	// ---- Partition. ----
	partSpan := tr.Start("hier.partition")
	defer partSpan.End() // error paths; no-op after the explicit End below
	regions := topo.Partition(sinks, cfg.MaxRegionSinks)
	partSpan.Set("regions", len(regions))
	partSpan.End()

	res := &Result{NumRegions: len(regions), RegionSinks: make([]int, len(regions))}
	for i, r := range regions {
		res.RegionSinks[i] = len(r)
	}

	// ---- Flat short-circuit: one region is just an ordinary build. ----
	if len(regions) == 1 {
		built, err := cts.Build(sinks, src, te, lib, cfg.CTS)
		if err != nil {
			return nil, err
		}
		built.Tree.SetAllRules(te.BlanketRule)
		if cfg.Smart {
			opt := cfg.Opt
			opt.Tracer = cfg.Tracer
			st, err := core.Optimize(built.Tree, te, lib, opt)
			if err != nil {
				return nil, err
			}
			res.Opt = st
			res.Skew = st.FinalSkew
		} else {
			an, err := sta.Analyze(built.Tree, te, lib, cfg.InSlew)
			if err != nil {
				return nil, err
			}
			res.Skew = an.Skew()
		}
		res.Tree = built.Tree
		return res, built.Tree.Validate()
	}

	// ---- Per-region builds on the worker pool. ----
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	regSpan := tr.Start("hier.regions", obs.I("regions", len(regions)))
	defer regSpan.End() // error paths; no-op after the explicit End below
	workers := par.Workers(cfg.Workers)
	trees := make([]*ctree.Tree, len(regions))
	pseudo := make([]ctree.Sink, len(regions))
	stats := make([]*core.Stats, len(regions))
	analyzers := make([]*sta.Analyzer, workers)
	err := par.ForEachWorker(ctx, workers, len(regions), func(w, i int) error {
		rs := regSpan.Child("region", obs.I("idx", i), obs.I("sinks", len(regions[i])))
		defer rs.End()
		members := regions[i]
		sub := make([]ctree.Sink, len(members))
		for j, m := range members {
			sub[j] = sinks[m]
		}
		built, err := cts.Build(sub, src, te, lib, regionCTS)
		if err != nil {
			return fmt.Errorf("hier: region %d: %w", i, err)
		}
		t := built.Tree
		t.SetAllRules(te.BlanketRule)
		if cfg.Smart {
			st, err := core.Optimize(t, te, lib, regionOpt)
			if err != nil {
				return fmt.Errorf("hier: region %d optimize: %w", i, err)
			}
			stats[i] = st
		}
		if analyzers[w] == nil {
			analyzers[w] = sta.NewAnalyzer(te, lib)
		}
		an, err := analyzers[w].Analyze(t, cfg.InSlew, nil)
		if err != nil {
			return fmt.Errorf("hier: region %d timing: %w", i, err)
		}
		root := t.Nodes[t.Root]
		trees[i] = t
		pseudo[i] = ctree.Sink{
			Name: "region",
			Loc:  root.Loc,
			Cap:  lib.Buffers[root.BufIdx].InputCap,
			// The offset the top DME balances: measured insertion delay
			// from the region root's input pin down to its slowest sink.
			Delay: an.MaxSinkArrival(),
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	regSpan.End()

	if cfg.Smart {
		res.Opt = aggregateStats(stats)
	}

	// ---- Top tree over the region pseudo-sinks. ----
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	topSpan := tr.Start("hier.top_embed", obs.I("regions", len(regions)))
	defer topSpan.End() // error paths; no-op after the explicit End below
	topCTS := cfg.CTS
	topCTS.Tracer = cfg.Tracer
	topCTS.NoCalibration = true // see the function comment
	topBuilt, err := cts.Build(pseudo, src, te, lib, topCTS)
	if err != nil {
		return nil, fmt.Errorf("hier: top tree: %w", err)
	}
	topBuilt.Tree.SetAllRules(te.BlanketRule)
	topSpan.End()

	// ---- Stitch regions under the top tree. ----
	stitchSpan := tr.Start("hier.stitch")
	defer stitchSpan.End() // error paths; no-op after the explicit End below
	regionRoots := make([]int, len(regions))
	final := cts.Stitch(sinks, src, topBuilt.Tree, trees, regions, regionRoots)
	stitchSpan.Set("nodes", len(final.Nodes))
	stitchSpan.End()
	if err := final.Validate(); err != nil {
		return nil, fmt.Errorf("hier: stitched tree: %w", err)
	}

	// ---- Final global balance, ground-truth STA. ----
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	balSpan := tr.Start("hier.balance")
	defer balSpan.End() // error paths; no-op after the explicit End below
	bal, err := core.RepairSkew(final, te, lib, cfg.InSlew, globalSkew, cfg.BalanceIters)
	if err != nil {
		return nil, fmt.Errorf("hier: balance: %w", err)
	}
	balSpan.Set("iters", bal.Iters)
	balSpan.Set("final_skew_ps", bal.FinalSkew*1e12)
	balSpan.End()

	res.Tree = final
	res.Balance = bal
	res.Skew = bal.FinalSkew
	if res.Opt != nil {
		res.Opt.FinalSkew = bal.FinalSkew
	}
	return res, nil
}

// aggregateStats folds per-region optimizer stats into one summary, in
// region-index order (float sums are order-sensitive; fixing the order
// keeps the summary deterministic at any worker count).
func aggregateStats(stats []*core.Stats) *core.Stats {
	agg := &core.Stats{}
	for _, st := range stats {
		if st == nil {
			continue
		}
		agg.Passes = max(agg.Passes, st.Passes)
		agg.Downgrades += st.Downgrades
		agg.Upgrades += st.Upgrades
		agg.CapBefore += st.CapBefore
		agg.CapAfter += st.CapAfter
		agg.RepairWire += st.RepairWire
		agg.FinalSlew = math.Max(agg.FinalSlew, st.FinalSlew)
		agg.RepairRounds += st.RepairRounds
		agg.RecoverRounds += st.RecoverRounds
	}
	return agg
}
