package obs

import (
	"bytes"
	"math"
	"strings"
	"sync"
	"testing"
)

func TestHistogramBucketEdges(t *testing.T) {
	h := NewHistogram([]float64{1, 2, 5})
	// le semantics: a value exactly on a bound lands in that bound's
	// bucket; above the last bound lands in overflow.
	for _, v := range []float64{0, 0.5, 1} {
		h.Observe(v)
	}
	h.Observe(1.5)
	h.Observe(2)
	h.Observe(5)
	h.Observe(5.1)
	h.Observe(100)
	s := h.Snapshot()
	want := []uint64{3, 2, 1, 2}
	if len(s.Counts) != len(want) {
		t.Fatalf("counts len = %d, want %d", len(s.Counts), len(want))
	}
	for i, w := range want {
		if s.Counts[i] != w {
			t.Errorf("bucket %d = %d, want %d", i, s.Counts[i], w)
		}
	}
	if s.Count != 8 {
		t.Errorf("count = %d, want 8", s.Count)
	}
	if got := s.Sum; math.Abs(got-115.1) > 1e-9 {
		t.Errorf("sum = %g, want 115.1", got)
	}
}

func TestHistogramQuantile(t *testing.T) {
	h := NewHistogram([]float64{1, 2, 4})
	// 10 observations uniformly in the first bucket, 10 in the second.
	for i := 0; i < 10; i++ {
		h.Observe(0.5)
		h.Observe(1.5)
	}
	s := h.Snapshot()
	// rank(0.5) = 10 → exactly exhausts bucket 0 → its upper bound.
	if got := s.Quantile(0.5); math.Abs(got-1) > 1e-12 {
		t.Errorf("p50 = %g, want 1", got)
	}
	// rank(0.75) = 15 → halfway through bucket (1,2].
	if got := s.Quantile(0.75); math.Abs(got-1.5) > 1e-12 {
		t.Errorf("p75 = %g, want 1.5", got)
	}
	if got := s.Quantile(0); got != 0 {
		t.Errorf("p0 = %g, want 0", got)
	}
	if got := s.Quantile(1); math.Abs(got-2) > 1e-12 {
		t.Errorf("p100 = %g, want 2", got)
	}
	// Overflow-only data reports the last bound — the histogram cannot
	// resolve beyond it.
	o := NewHistogram([]float64{1, 2, 4})
	o.Observe(100)
	if got := o.Snapshot().Quantile(0.99); got != 4 {
		t.Errorf("overflow p99 = %g, want 4", got)
	}
	if got := (HistogramSnapshot{}).Quantile(0.5); got != 0 {
		t.Errorf("empty quantile = %g, want 0", got)
	}
}

func TestHistogramMerge(t *testing.T) {
	a := NewHistogram([]float64{1, 2})
	b := NewHistogram([]float64{1, 2})
	a.Observe(0.5)
	b.Observe(1.5)
	b.Observe(3)
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	s := a.Snapshot()
	if s.Count != 3 || s.Counts[0] != 1 || s.Counts[1] != 1 || s.Counts[2] != 1 {
		t.Errorf("merged snapshot = %+v", s)
	}
	if math.Abs(s.Sum-5) > 1e-12 {
		t.Errorf("merged sum = %g, want 5", s.Sum)
	}
	// b is unchanged by the merge.
	if bs := b.Snapshot(); bs.Count != 2 {
		t.Errorf("source count = %d after merge, want 2", bs.Count)
	}
	c := NewHistogram([]float64{1, 3})
	if err := a.Merge(c); err == nil {
		t.Error("merge across different bounds did not fail")
	}
}

func TestHistogramNilSafety(t *testing.T) {
	var h *Histogram
	h.Observe(1)
	if err := h.Merge(NewHistogram(nil)); err != nil {
		t.Errorf("nil merge: %v", err)
	}
	if s := h.Snapshot(); s.Count != 0 {
		t.Errorf("nil snapshot count = %d", s.Count)
	}
	var r *Registry
	r.Histogram("x").Observe(1) // whole chain must be free when disabled
	var tr *Tracer
	tr.Observe("x", 1)
}

func TestHistogramConcurrentObserve(t *testing.T) {
	h := NewHistogram(nil)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				h.Observe(1e-4)
			}
		}()
	}
	wg.Wait()
	if s := h.Snapshot(); s.Count != 8000 {
		t.Errorf("count = %d, want 8000", s.Count)
	}
}

func TestRegistryKindCollisionDetected(t *testing.T) {
	r := &Registry{}
	r.Add("serve.requests", 2)
	r.Set("serve.requests", 99) // cross-kind: dropped, recorded
	r.Set("serve.depth", 7)
	r.Add("serve.depth", 1) // cross-kind: dropped, recorded
	if r.Histogram("serve.requests") != nil {
		t.Error("histogram on a counter name should return nil")
	}
	r.Histogram("serve.latency_seconds").Observe(1)
	r.Set("serve.latency_seconds", 1) // cross-kind on a histogram name

	snap := r.Snapshot()
	if got := snap["serve.requests"]; got != 2 {
		t.Errorf("counter survived as %g, want 2 (first registration wins)", got)
	}
	if got := snap["serve.depth"]; got != 7 {
		t.Errorf("gauge survived as %g, want 7", got)
	}
	want := []string{"serve.depth", "serve.latency_seconds", "serve.requests"}
	got := r.Collisions()
	if len(got) != len(want) {
		t.Fatalf("Collisions() = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Collisions() = %v, want %v", got, want)
		}
	}
	// Same-kind re-registration is not a collision.
	clean := &Registry{}
	clean.Add("a.b", 1)
	clean.Add("a.b", 1)
	if len(clean.Collisions()) != 0 {
		t.Errorf("same-kind reuse flagged: %v", clean.Collisions())
	}
}

func TestSpanObserverAggregatesAndTees(t *testing.T) {
	col := NewCollector()
	o := NewSpanObserver(col)
	tr := New(o)
	root := tr.Start("flow.apply")
	inner := tr.Start("optimize")
	inner.End()
	root.End()
	tr.Add("core.downgrades", 1)
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	paths := o.Paths()
	if len(paths) != 2 || paths[0] != "flow.apply" || paths[1] != "flow.apply/optimize" {
		t.Fatalf("paths = %v", paths)
	}
	if got := o.Histogram("flow.apply").Snapshot().Count; got != 1 {
		t.Errorf("flow.apply count = %d, want 1", got)
	}
	if _, ok := o.Snapshot()["metrics"]; ok {
		t.Error("synthetic metrics event was aggregated as a span")
	}
	// Tee forwarded everything, including the metrics event.
	if got := len(col.Events()); got != 3 {
		t.Errorf("teed events = %d, want 3", got)
	}
	var nilObs *SpanObserver
	if nilObs.Paths() != nil || nilObs.Snapshot() != nil || nilObs.Histogram("x") != nil {
		t.Error("nil SpanObserver accessors must return nil")
	}
}

func TestScopedTeeDeliversToBoth(t *testing.T) {
	shared := NewCollector()
	tr := New(shared)
	per := NewCollector()
	rtr := tr.ScopedTee(per)
	sp := rtr.Start("serve.flow")
	sp.Start("flow.apply").End()
	sp.End()
	if err := rtr.Close(); err != nil { // no-op: scoped
		t.Fatal(err)
	}
	if got := len(per.Events()); got != 2 {
		t.Errorf("per-request events = %d, want 2", got)
	}
	if got := len(shared.Events()); got != 2 {
		t.Errorf("shared events = %d, want 2", got)
	}
	var nilTr *Tracer
	if nilTr.ScopedTee(per) != nil {
		t.Error("ScopedTee on nil tracer must be nil")
	}
	if tr.ScopedTee(nil) == nil {
		t.Error("ScopedTee(nil) must degrade to Scoped, not nil")
	}
}

func TestWritePromTextDeterministic(t *testing.T) {
	build := func() PromSnapshot {
		r := &Registry{}
		r.Add("serve.cache_hits", 3)
		r.Add("serve.requests", 7)
		r.Set("core.final_skew_ps", 12.5)
		h := r.Histogram("serve.flow_cold_seconds")
		for _, v := range []float64{0.0004, 0.0015, 0.0015, 0.2} {
			h.Observe(v)
		}
		snap := r.PromSnapshot()
		snap.SpanHistograms = map[string]HistogramSnapshot{
			"serve.flow/flow.apply": h.Snapshot(),
		}
		return snap
	}
	var a, b bytes.Buffer
	if err := WritePromText(&a, "smartndr", build()); err != nil {
		t.Fatal(err)
	}
	if err := WritePromText(&b, "smartndr", build()); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("identical snapshots rendered differently")
	}
	text := a.String()
	for _, want := range []string{
		"# TYPE smartndr_serve_cache_hits_total counter\nsmartndr_serve_cache_hits_total 3\n",
		"# TYPE smartndr_core_final_skew_ps gauge\nsmartndr_core_final_skew_ps 12.5\n",
		`smartndr_serve_flow_cold_seconds_bucket{le="0.0005"} 1`,
		`smartndr_serve_flow_cold_seconds_bucket{le="0.002"} 3`,
		`smartndr_serve_flow_cold_seconds_bucket{le="+Inf"} 4`,
		"smartndr_serve_flow_cold_seconds_count 4",
		`smartndr_span_duration_seconds_bucket{path="serve.flow/flow.apply",le="+Inf"} 4`,
		`smartndr_span_duration_seconds_count{path="serve.flow/flow.apply"} 4`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q\n--- got ---\n%s", want, text)
		}
	}
	// Every non-comment line is "<series> <value>" with a valid name.
	for _, line := range strings.Split(strings.TrimRight(text, "\n"), "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp <= 0 {
			t.Errorf("malformed line %q", line)
		}
	}
}
