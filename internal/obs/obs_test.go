package obs

import (
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestNilTracerIsSafe(t *testing.T) {
	var tr *Tracer
	if tr.Enabled() {
		t.Error("nil tracer reports enabled")
	}
	sp := tr.Start("a", I("k", 1))
	sp.Set("x", 2)
	child := sp.Start("b")
	child.End()
	sp.End()
	tr.Add("c", 1)
	tr.Gauge("g", 2)
	tr.Registry().Add("c", 1)
	if got := tr.Registry().Counter("c"); got != 0 {
		t.Errorf("nil registry counter = %g", got)
	}
	if err := tr.Close(); err != nil {
		t.Errorf("nil Close: %v", err)
	}
}

func TestNewNopSinkDisables(t *testing.T) {
	if New(nil) != nil {
		t.Error("New(nil) should return nil tracer")
	}
	if New(Nop()) != nil {
		t.Error("New(Nop()) should return nil tracer")
	}
	if Multi(nil, Nop()) != nil {
		t.Error("Multi of nothing should collapse to nil")
	}
}

func TestSpanNestingAndEvents(t *testing.T) {
	c := NewCollector()
	tr := New(c)
	root := tr.Start("flow", S("scheme", "smart"))
	inner := tr.Start("optimize")
	leaf := inner.Start("pass", I("pass", 0))
	leaf.Set("downgrades", 7)
	leaf.End()
	inner.End()
	root.End()
	tr.Add("downgrades", 7)
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}

	evs := c.Events()
	if len(evs) != 4 { // 3 spans + metrics
		t.Fatalf("events = %d, want 4", len(evs))
	}
	// Spans end innermost-first.
	if evs[0].Span != "flow/optimize/pass" || evs[0].Depth != 2 {
		t.Errorf("leaf event: %+v", evs[0])
	}
	if evs[0].Attrs["downgrades"] != 7 {
		t.Errorf("leaf attrs: %v", evs[0].Attrs)
	}
	if evs[1].Span != "flow/optimize" || evs[1].Depth != 1 {
		t.Errorf("inner event: %+v", evs[1])
	}
	if evs[2].Span != "flow" || evs[2].Depth != 0 {
		t.Errorf("root event: %+v", evs[2])
	}
	if evs[3].Span != "metrics" || evs[3].Attrs["downgrades"] != 7.0 {
		t.Errorf("metrics event: %+v", evs[3])
	}
	for _, ev := range evs[:3] {
		if ev.DurNS < 0 {
			t.Errorf("%s: negative duration", ev.Span)
		}
	}
	if evs[2].DurNS < evs[1].DurNS {
		t.Error("root shorter than child")
	}
}

func TestSpanEndIdempotentAndAbandonedChildren(t *testing.T) {
	c := NewCollector()
	tr := New(c)
	root := tr.Start("root")
	_ = root.Start("orphan") // never ended (simulates an error path)
	root.End()
	root.End() // idempotent
	next := tr.Start("next")
	next.End()
	evs := c.Events()
	if len(evs) != 2 {
		t.Fatalf("events = %d, want 2", len(evs))
	}
	if evs[1].Span != "next" || evs[1].Depth != 0 {
		t.Errorf("stack not healed after abandoned child: %+v", evs[1])
	}
}

func TestJSONLSinkLinesParse(t *testing.T) {
	var sb strings.Builder
	tr := New(NewJSONL(&sb))
	sp := tr.Start("sta.analyze", I("nodes", 42))
	time.Sleep(time.Millisecond)
	sp.End()
	tr.Add("sta.calls", 1)
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("lines = %d, want 2", len(lines))
	}
	for i, ln := range lines {
		var ev struct {
			Span  string         `json:"span"`
			DurNS *int64         `json:"dur_ns"`
			Attrs map[string]any `json:"attrs"`
		}
		if err := json.Unmarshal([]byte(ln), &ev); err != nil {
			t.Fatalf("line %d does not parse: %v", i, err)
		}
		if ev.Span == "" {
			t.Errorf("line %d: empty span", i)
		}
	}
	var first SpanEvent
	if err := json.Unmarshal([]byte(lines[0]), &first); err != nil {
		t.Fatal(err)
	}
	if first.Span != "sta.analyze" || first.DurNS <= 0 || first.Attrs["nodes"] != 42.0 {
		t.Errorf("first event: %+v", first)
	}
}

func TestTreeSinkRenders(t *testing.T) {
	var sb strings.Builder
	tr := New(NewTree(&sb))
	root := tr.Start("build")
	child := tr.Start("cluster", I("clusters", 3))
	child.End()
	root.End()
	tr.Gauge("final_skew_ps", 12.5)
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"build", "  cluster", "clusters=3", "metrics:", "final_skew_ps"} {
		if !strings.Contains(out, want) {
			t.Errorf("tree output missing %q:\n%s", want, out)
		}
	}
	// Parent line must come before child even though it ended later.
	if strings.Index(out, "build") > strings.Index(out, "cluster") {
		t.Errorf("parent not rendered first:\n%s", out)
	}
}

func TestMultiSinkFansOut(t *testing.T) {
	a, b := NewCollector(), NewCollector()
	tr := New(Multi(a, b, Nop()))
	tr.Start("x").End()
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	if len(a.Events()) != 1 || len(b.Events()) != 1 {
		t.Errorf("fanout: a=%d b=%d", len(a.Events()), len(b.Events()))
	}
}

func TestRegistryConcurrent(t *testing.T) {
	tr := New(NewCollector())
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				tr.Add("n", 1)
				sp := tr.Start("work")
				sp.Set("j", j)
				sp.End()
			}
		}()
	}
	wg.Wait()
	if got := tr.Registry().Counter("n"); got != 800 {
		t.Errorf("counter = %g, want 800", got)
	}
	names := tr.Registry().Names()
	if len(names) != 1 || names[0] != "n" {
		t.Errorf("names = %v", names)
	}
}

func TestSpanChildConcurrent(t *testing.T) {
	// Child spans bypass the ambient stack, so concurrent children of one
	// parent all nest correctly and never capture later ambient starts.
	col := NewCollector()
	tr := New(col)
	root := tr.Start("run")
	var wg sync.WaitGroup
	const trials = 50
	for i := 0; i < trials; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c := root.Child("trial", I("trial", i))
			c.Set("ok", 1)
			c.End()
		}(i)
	}
	wg.Wait()
	// An ambient start while children existed must still nest under the
	// innermost *ambient* open span — the root, not any child.
	next := tr.Start("report")
	next.End()
	root.End()
	got := map[string]int{}
	for _, ev := range col.Events() {
		got[ev.Span]++
	}
	if got["run/trial"] != trials {
		t.Errorf("run/trial events = %d, want %d", got["run/trial"], trials)
	}
	if got["run/report"] != 1 {
		t.Errorf("run/report events = %d, want 1 (ambient nesting broken)", got["run/report"])
	}
	if got["run"] != 1 {
		t.Errorf("run events = %d, want 1", got["run"])
	}
}

func TestSpanChildNilSafe(t *testing.T) {
	var s *Span
	c := s.Child("x")
	c.Set("k", 1)
	c.End() // all no-ops
	if c != nil {
		t.Error("nil span's Child must be nil")
	}
}

// TestScopedTracerIsolatesStacks: two scoped tracers nest independently
// (a request's spans never become children of another request's open
// span) while events land in the shared sink and counters in the shared
// registry.
func TestScopedTracerIsolatesStacks(t *testing.T) {
	col := NewCollector()
	owner := New(col)
	a := owner.Scoped()
	b := owner.Scoped()

	spA := a.Start("req", S("id", "a"))
	spB := b.Start("req", S("id", "b")) // must be a root, not a child of spA
	innerB := b.Start("work")
	innerB.End()
	spB.End()
	spA.End()
	a.Add("serve.requests", 1)
	b.Add("serve.requests", 1)

	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	if got := len(col.Events()); got != 3 {
		t.Fatalf("scoped Close must not flush metrics; events = %d", got)
	}
	if err := owner.Close(); err != nil {
		t.Fatal(err)
	}
	paths := map[string]bool{}
	var metrics map[string]any
	for _, ev := range col.Events() {
		paths[ev.Span] = true
		if ev.Span == "metrics" {
			metrics = ev.Attrs
		}
	}
	for _, want := range []string{"req", "req/work"} {
		if !paths[want] {
			t.Errorf("span %q missing; got %v", want, paths)
		}
	}
	if paths["req/req"] || paths["req/req/work"] {
		t.Errorf("scoped stacks leaked across requests: %v", paths)
	}
	if metrics == nil || metrics["serve.requests"] != 2.0 {
		t.Errorf("shared registry snapshot wrong: %v", metrics)
	}
	if owner.Registry() != a.Registry() {
		t.Error("scoped tracer must share the owner's registry")
	}
}

func TestScopedNilTracer(t *testing.T) {
	var tr *Tracer
	sc := tr.Scoped()
	if sc != nil {
		t.Fatal("Scoped on nil must be nil")
	}
	sc.Start("x").End()
	if err := sc.Close(); err != nil {
		t.Fatal(err)
	}
}
