package obs

import (
	"fmt"
	"sort"
	"sync"
)

// Histogram is a fixed-boundary, log-bucketed latency distribution:
// observations fall into the first bucket whose upper bound is >= the
// value (Prometheus "le" semantics), with one implicit overflow bucket
// above the last bound. Boundaries are fixed at construction, so two
// histograms with the same bounds merge exactly and two histograms fed
// the same observations are byte-identical in any rendering — the
// determinism contract the rest of the repo holds extends to telemetry.
//
// A nil *Histogram ignores every call, matching the nil-tracer
// convention: Registry.Histogram on a nil registry returns nil, and the
// whole chain stays free when telemetry is off.
type Histogram struct {
	bounds []float64 // strictly increasing upper bounds (inclusive)

	mu     sync.Mutex
	counts []uint64 // len(bounds)+1; last is the overflow bucket
	sum    float64
	count  uint64
}

// defaultLatencyBounds is a 1-2-5 series per decade from 1µs to 50s,
// in seconds. 24 buckets cover everything from a cached STA pass to a
// full synthesis under load; durations beyond 50s land in overflow.
var defaultLatencyBounds = []float64{
	1e-6, 2e-6, 5e-6,
	1e-5, 2e-5, 5e-5,
	1e-4, 2e-4, 5e-4,
	1e-3, 2e-3, 5e-3,
	1e-2, 2e-2, 5e-2,
	1e-1, 2e-1, 5e-1,
	1, 2, 5,
	10, 20, 50,
}

// DefaultLatencyBounds returns (a copy of) the standard bucket bounds
// in seconds: a 1-2-5 log series per decade, 1µs through 50s.
func DefaultLatencyBounds() []float64 {
	return append([]float64(nil), defaultLatencyBounds...)
}

// NewHistogram returns a histogram over the given upper bounds, which
// must be strictly increasing and non-empty (nil selects
// DefaultLatencyBounds). Bounds are copied.
func NewHistogram(bounds []float64) *Histogram {
	if bounds == nil {
		bounds = defaultLatencyBounds
	}
	if len(bounds) == 0 {
		panic("obs: histogram needs at least one bucket bound")
	}
	for i := 1; i < len(bounds); i++ {
		if !(bounds[i] > bounds[i-1]) {
			panic("obs: histogram bounds must be strictly increasing")
		}
	}
	return &Histogram{
		bounds: append([]float64(nil), bounds...),
		counts: make([]uint64, len(bounds)+1),
	}
}

// Observe records one value (for latencies: seconds).
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v; len() = overflow
	h.mu.Lock()
	h.counts[i]++
	h.sum += v
	h.count++
	h.mu.Unlock()
}

// Merge folds o's observations into h. Both histograms must share the
// same bounds; merging is exact (bucket counts and sums add), so
// per-shard histograms aggregate without loss.
func (h *Histogram) Merge(o *Histogram) error {
	if h == nil || o == nil {
		return nil
	}
	snap := o.Snapshot()
	if len(snap.Bounds) != len(h.bounds) {
		return fmt.Errorf("obs: merging histograms with %d and %d bounds", len(snap.Bounds), len(h.bounds))
	}
	for i, b := range h.bounds {
		if snap.Bounds[i] != b {
			return fmt.Errorf("obs: merging histograms with different bounds at bucket %d", i)
		}
	}
	h.mu.Lock()
	for i, c := range snap.Counts {
		h.counts[i] += c
	}
	h.sum += snap.Sum
	h.count += snap.Count
	h.mu.Unlock()
	return nil
}

// Snapshot returns a point-in-time copy. Safe on nil (zero snapshot).
func (h *Histogram) Snapshot() HistogramSnapshot {
	if h == nil {
		return HistogramSnapshot{}
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return HistogramSnapshot{
		Bounds: h.bounds, // immutable after construction
		Counts: append([]uint64(nil), h.counts...),
		Sum:    h.sum,
		Count:  h.count,
	}
}

// HistogramSnapshot is an immutable copy of a histogram's state.
type HistogramSnapshot struct {
	Bounds []float64 // upper bounds, one per bucket (overflow excluded)
	Counts []uint64  // len(Bounds)+1; last is the overflow bucket
	Sum    float64
	Count  uint64
}

// Quantile estimates the p-quantile (p in [0,1]) by linear
// interpolation inside the containing bucket, taking 0 as the lower
// edge of the first bucket. Values in the overflow bucket report the
// last bound — the histogram cannot resolve beyond it. Deterministic:
// the same snapshot always yields the same value. Returns 0 on an
// empty snapshot.
func (s HistogramSnapshot) Quantile(p float64) float64 {
	if s.Count == 0 || len(s.Bounds) == 0 {
		return 0
	}
	if p < 0 {
		p = 0
	}
	if p > 1 {
		p = 1
	}
	rank := p * float64(s.Count)
	var cum float64
	for i, c := range s.Counts {
		if c == 0 {
			continue
		}
		next := cum + float64(c)
		if next >= rank {
			if i >= len(s.Bounds) {
				return s.Bounds[len(s.Bounds)-1]
			}
			lo := 0.0
			if i > 0 {
				lo = s.Bounds[i-1]
			}
			hi := s.Bounds[i]
			frac := (rank - cum) / float64(c)
			if frac < 0 {
				frac = 0
			}
			return lo + frac*(hi-lo)
		}
		cum = next
	}
	return s.Bounds[len(s.Bounds)-1]
}
