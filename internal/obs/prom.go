package obs

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// PromSnapshot is the input to WritePromText: a point-in-time copy of
// everything one exposition renders. Build it from a Registry
// (Registry.PromSnapshot) and optionally a SpanObserver, then add any
// extra process-level series (e.g. runtime/metrics gauges) before
// rendering.
type PromSnapshot struct {
	Counters   map[string]float64
	Gauges     map[string]float64
	Histograms map[string]HistogramSnapshot
	// SpanHistograms are keyed by span path and rendered as one
	// <ns>_span_duration_seconds family with a path label, since paths
	// ('/'-joined) live outside the flat metric namespace.
	SpanHistograms map[string]HistogramSnapshot
	// LabeledCounters / LabeledGauges are multi-series families keyed by
	// registry-convention names (pkg.snake_case); each family renders
	// one line per series with its label set. They exist for
	// small-cardinality dimensional series (cache stripes, cluster
	// shards) that the flat Registry namespace cannot express.
	LabeledCounters map[string][]LabeledSeries
	LabeledGauges   map[string][]LabeledSeries
}

// LabeledSeries is one series of a labeled family: pre-rendered label
// pairs (build them with PromLabel, comma-joined) plus the value.
type LabeledSeries struct {
	Labels string
	Value  float64
}

// PromLabel renders one label pair per the exposition grammar.
func PromLabel(key, value string) string {
	return key + `="` + promLabelEscape(value) + `"`
}

// PromSnapshot copies the registry's counters, gauges, and histograms
// into exposition form. Safe on nil (empty snapshot).
func (r *Registry) PromSnapshot() PromSnapshot {
	return PromSnapshot{
		Counters:   r.Counters(),
		Gauges:     r.Gauges(),
		Histograms: r.Histograms(),
	}
}

// WritePromText renders the snapshot in Prometheus text exposition
// format (version 0.0.4). Every family and series is emitted in sorted
// order and every number is formatted deterministically, so two
// snapshots holding the same data render byte-identically — telemetry
// obeys the same determinism contract as the engine.
//
// Name mapping: a registry name like "serve.cache_hits" becomes
// <ns>_serve_cache_hits (non-alphanumeric bytes -> '_'), counters gain
// a _total suffix, histograms render as _bucket/_sum/_count with
// cumulative le buckets, and span-path histograms become one
// <ns>_span_duration_seconds family labeled by path.
func WritePromText(w io.Writer, ns string, snap PromSnapshot) error {
	var b strings.Builder

	for _, name := range sortedFloatKeys(snap.Counters) {
		fam := promName(ns, name)
		if !strings.HasSuffix(fam, "_total") {
			fam += "_total"
		}
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s counter\n%s %s\n",
			fam, name, fam, fam, promFloat(snap.Counters[name]))
	}
	for _, name := range sortedLabeledKeys(snap.LabeledCounters) {
		fam := promName(ns, name)
		if !strings.HasSuffix(fam, "_total") {
			fam += "_total"
		}
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s counter\n", fam, name, fam)
		for _, series := range sortedSeries(snap.LabeledCounters[name]) {
			fmt.Fprintf(&b, "%s{%s} %s\n", fam, series.Labels, promFloat(series.Value))
		}
	}
	for _, name := range sortedFloatKeys(snap.Gauges) {
		fam := promName(ns, name)
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s gauge\n%s %s\n",
			fam, name, fam, fam, promFloat(snap.Gauges[name]))
	}
	for _, name := range sortedLabeledKeys(snap.LabeledGauges) {
		fam := promName(ns, name)
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s gauge\n", fam, name, fam)
		for _, series := range sortedSeries(snap.LabeledGauges[name]) {
			fmt.Fprintf(&b, "%s{%s} %s\n", fam, series.Labels, promFloat(series.Value))
		}
	}
	for _, name := range sortedHistKeys(snap.Histograms) {
		writePromHistogram(&b, promName(ns, name), name, "", snap.Histograms[name])
	}
	if len(snap.SpanHistograms) > 0 {
		fam := promName(ns, "span_duration_seconds")
		fmt.Fprintf(&b, "# HELP %s span duration by slash-joined path\n# TYPE %s histogram\n", fam, fam)
		for _, path := range sortedHistKeys(snap.SpanHistograms) {
			writePromHistogramSeries(&b, fam, `path="`+promLabelEscape(path)+`"`, snap.SpanHistograms[path])
		}
	}

	_, err := io.WriteString(w, b.String())
	return err
}

// writePromHistogram emits one single-series histogram family with its
// HELP/TYPE header.
func writePromHistogram(b *strings.Builder, fam, help, labels string, s HistogramSnapshot) {
	fmt.Fprintf(b, "# HELP %s %s\n# TYPE %s histogram\n", fam, help, fam)
	writePromHistogramSeries(b, fam, labels, s)
}

// writePromHistogramSeries emits the _bucket/_sum/_count series of one
// histogram, with optional extra labels (no braces, no trailing comma).
func writePromHistogramSeries(b *strings.Builder, fam, labels string, s HistogramSnapshot) {
	sep := ""
	if labels != "" {
		sep = ","
	}
	var cum uint64
	for i, bound := range s.Bounds {
		if i < len(s.Counts) {
			cum += s.Counts[i]
		}
		fmt.Fprintf(b, "%s_bucket{%s%sle=%q} %d\n", fam, labels, sep, promFloat(bound), cum)
	}
	if n := len(s.Counts); n > 0 {
		cum += s.Counts[n-1]
	}
	fmt.Fprintf(b, "%s_bucket{%s%sle=\"+Inf\"} %d\n", fam, labels, sep, cum)
	if labels == "" {
		fmt.Fprintf(b, "%s_sum %s\n%s_count %d\n", fam, promFloat(s.Sum), fam, s.Count)
	} else {
		fmt.Fprintf(b, "%s_sum{%s} %s\n%s_count{%s} %d\n", fam, labels, promFloat(s.Sum), fam, labels, s.Count)
	}
}

// promName maps a registry name into the exposition namespace:
// "<ns>_" prefix, every byte outside [a-zA-Z0-9_] replaced by '_'.
func promName(ns, name string) string {
	var b strings.Builder
	b.Grow(len(ns) + 1 + len(name))
	b.WriteString(ns)
	b.WriteByte('_')
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9', c == '_':
			b.WriteByte(c)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// promFloat renders a value deterministically in the shortest form
// that round-trips ('g', like Prometheus itself uses).
func promFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// promLabelEscape escapes a label value per the exposition grammar.
func promLabelEscape(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, `"`, `\"`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

func sortedFloatKeys(m map[string]float64) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func sortedHistKeys(m map[string]HistogramSnapshot) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func sortedLabeledKeys(m map[string][]LabeledSeries) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// sortedSeries orders a family's series by label set so rendering
// stays deterministic regardless of how the caller assembled them.
func sortedSeries(in []LabeledSeries) []LabeledSeries {
	out := make([]LabeledSeries, len(in))
	copy(out, in)
	sort.Slice(out, func(i, j int) bool { return out[i].Labels < out[j].Labels })
	return out
}
