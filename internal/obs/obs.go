// Package obs provides structured, dependency-free instrumentation for
// the smartndr flow: hierarchical timing spans, named counters and
// gauges, and pluggable event sinks.
//
// The design goal is zero overhead when disabled: every method on
// *Tracer, *Span, and *Registry is safe on a nil receiver and returns
// immediately, so engine code can be threaded with tracing calls
// unconditionally and pay only a nil check when no tracer is attached.
// New returns nil for a nil (or no-op) sink, which makes the nil tracer
// the canonical disabled form:
//
//	tr := obs.New(nil)          // disabled — every call below is free
//	sp := tr.Start("optimize")  // nil span
//	sp.Set("passes", 3)         // no-op
//	sp.End()                    // no-op
//
// With a real sink, spans nest implicitly: Start on a tracer opens a
// child of the innermost open span (context-style plumbing without a
// context parameter), and End emits a SpanEvent carrying the full
// slash-joined path, wall-clock duration, and attributes:
//
//	tr := obs.New(obs.NewJSONL(f))
//	root := tr.Start("flow.apply", obs.S("scheme", "smart-ndr"))
//	... // nested Start/End calls inside the engine
//	root.End()
//	tr.Close() // flush metrics, close the sink
//
// Counters and gauges accumulate in the tracer's Registry and are
// emitted as a synthetic "metrics" span event on Close.
package obs

import (
	"sort"
	"sync"
	"time"
)

// Attr is one key/value annotation on a span. Values should be strings,
// integers, or floats so every sink can render them.
type Attr struct {
	Key   string
	Value any
}

// S returns a string attribute.
func S(key, value string) Attr { return Attr{Key: key, Value: value} }

// I returns an integer attribute.
func I(key string, value int) Attr { return Attr{Key: key, Value: value} }

// F returns a float attribute.
func F(key string, value float64) Attr { return Attr{Key: key, Value: value} }

// Tracer owns a sink, a registry, and the stack of open spans. Create
// one with New; a nil *Tracer is the disabled tracer and every method
// no-ops on it.
type Tracer struct {
	mu     sync.Mutex
	sink   Sink
	start  time.Time
	stack  []*Span
	reg    *Registry
	scoped bool
}

// New returns a tracer emitting to the sink. A nil or no-op sink yields
// a nil tracer, the zero-overhead disabled form.
func New(sink Sink) *Tracer {
	if sink == nil {
		return nil
	}
	if _, nop := sink.(nopSink); nop {
		return nil
	}
	return &Tracer{sink: sink, start: time.Now(), reg: &Registry{}}
}

// ScopedTee returns a request-scoped view of t (see Scoped) whose
// events are additionally delivered to extra — typically a per-request
// Collector, so a server can capture one request's span tree for
// post-hoc inspection while the shared sink still sees every event.
// extra is never closed by the tracer (Close on a scoped tracer is a
// no-op); the caller reads it after the request finishes. Nil-safe on
// both sides: a nil tracer yields nil, a nil extra degrades to Scoped.
func (t *Tracer) ScopedTee(extra Sink) *Tracer {
	if t == nil {
		return nil
	}
	if extra == nil {
		return t.Scoped()
	}
	return &Tracer{sink: teeSink{t.sink, extra}, start: t.start, reg: t.reg, scoped: true}
}

// teeSink fans one scoped tracer's events to the shared sink and the
// per-request extra. Close is never called (scoped Close is a no-op).
type teeSink struct{ shared, extra Sink }

func (s teeSink) Emit(ev SpanEvent) {
	s.shared.Emit(ev)
	s.extra.Emit(ev)
}

func (s teeSink) Close() error { return s.shared.Close() }

// Scoped returns a request-scoped view of t: a tracer with its own
// ambient span stack that shares t's sink, registry, and time origin.
// This is the form a concurrent server hands to each request — the
// implicit innermost-open-span nesting stays isolated per request while
// events land in the shared sink (on the owner's timeline) and counters
// aggregate in the shared registry. Close on a scoped tracer is a no-op:
// the owning tracer emits the metrics snapshot and closes the sink.
// Scoped on a nil tracer returns nil, so a disabled service tracer
// yields disabled request tracers for free.
func (t *Tracer) Scoped() *Tracer {
	if t == nil {
		return nil
	}
	return &Tracer{sink: t.sink, start: t.start, reg: t.reg, scoped: true}
}

// Enabled reports whether the tracer records anything.
func (t *Tracer) Enabled() bool { return t != nil }

// Start opens a span as a child of the innermost open span (or as a
// root span when none is open).
func (t *Tracer) Start(name string, attrs ...Attr) *Span {
	if t == nil {
		return nil
	}
	s := &Span{tr: t, name: name, start: time.Now()}
	s.attrs = append(s.attrs, attrs...)
	t.mu.Lock()
	if n := len(t.stack); n > 0 {
		parent := t.stack[n-1]
		s.path = parent.path + "/" + name
		s.depth = parent.depth + 1
	} else {
		s.path = name
	}
	t.stack = append(t.stack, s)
	t.mu.Unlock()
	return s
}

// Add increments a named counter in the tracer's registry.
func (t *Tracer) Add(name string, delta float64) {
	if t == nil {
		return
	}
	t.reg.Add(name, delta)
}

// Gauge sets a named gauge in the tracer's registry.
func (t *Tracer) Gauge(name string, v float64) {
	if t == nil {
		return
	}
	t.reg.Set(name, v)
}

// Observe records one value into the named histogram in the tracer's
// registry (creating it with DefaultLatencyBounds). For latencies the
// unit is seconds.
func (t *Tracer) Observe(name string, v float64) {
	if t == nil {
		return
	}
	t.reg.Histogram(name).Observe(v)
}

// Registry returns the tracer's metric registry (nil for a nil tracer;
// Registry methods are nil-safe). Scoped tracers share their owner's
// registry.
func (t *Tracer) Registry() *Registry {
	if t == nil {
		return nil
	}
	return t.reg
}

// Close emits the registry snapshot as a synthetic "metrics" span event
// (so JSONL streams stay homogeneous) and closes the sink. Closing a
// scoped tracer is a no-op — the owner flushes the shared state.
func (t *Tracer) Close() error {
	if t == nil {
		return nil
	}
	if t.scoped {
		return nil
	}
	snap := t.reg.Snapshot()
	if len(snap) > 0 {
		attrs := make(map[string]any, len(snap))
		for k, v := range snap {
			attrs[k] = v
		}
		t.emit(SpanEvent{Span: "metrics", StartNS: time.Since(t.start).Nanoseconds(), Attrs: attrs})
	}
	return t.sink.Close()
}

func (t *Tracer) emit(ev SpanEvent) {
	t.mu.Lock()
	sink := t.sink
	t.mu.Unlock()
	sink.Emit(ev)
}

// Span is one timed region. Obtain spans from Tracer.Start; a nil *Span
// ignores every call.
type Span struct {
	tr    *Tracer
	name  string
	path  string
	depth int
	start time.Time

	mu    sync.Mutex
	attrs []Attr
	ended bool
}

// Start opens a child span of s explicitly (regardless of the tracer's
// implicit innermost-open-span nesting).
func (s *Span) Start(name string, attrs ...Attr) *Span {
	if s == nil {
		return nil
	}
	c := &Span{tr: s.tr, name: name, path: s.path + "/" + name, depth: s.depth + 1, start: time.Now()}
	c.attrs = append(c.attrs, attrs...)
	t := s.tr
	t.mu.Lock()
	t.stack = append(t.stack, c)
	t.mu.Unlock()
	return c
}

// Child opens a child span of s without touching the tracer's ambient
// span stack. This is the form to use for concurrent children — e.g.
// Monte Carlo trials or parallel scheme evaluations fanned out across
// goroutines: every child's path nests under s regardless of what other
// goroutines open meanwhile, and later ambient Tracer.Start calls never
// accidentally nest under it. End emits the event as usual.
func (s *Span) Child(name string, attrs ...Attr) *Span {
	if s == nil {
		return nil
	}
	c := &Span{tr: s.tr, name: name, path: s.path + "/" + name, depth: s.depth + 1, start: time.Now()}
	c.attrs = append(c.attrs, attrs...)
	return c
}

// Set attaches (or overwrites) an attribute.
func (s *Span) Set(key string, value any) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for i := range s.attrs {
		if s.attrs[i].Key == key {
			s.attrs[i].Value = value
			return
		}
	}
	s.attrs = append(s.attrs, Attr{Key: key, Value: value})
}

// End closes the span and emits its event. Idempotent; spans opened
// after this one that were never ended (error paths) are abandoned so
// the tracer's nesting stack stays consistent.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.ended {
		s.mu.Unlock()
		return
	}
	s.ended = true
	attrs := attrMap(s.attrs)
	s.mu.Unlock()

	t := s.tr
	t.mu.Lock()
	for i := len(t.stack) - 1; i >= 0; i-- {
		if t.stack[i] == s {
			t.stack = t.stack[:i]
			break
		}
	}
	t.mu.Unlock()
	t.emit(SpanEvent{
		Span:    s.path,
		Depth:   s.depth,
		StartNS: s.start.Sub(t.start).Nanoseconds(),
		DurNS:   time.Since(s.start).Nanoseconds(),
		Attrs:   attrs,
	})
}

func attrMap(attrs []Attr) map[string]any {
	if len(attrs) == 0 {
		return nil
	}
	m := make(map[string]any, len(attrs))
	for _, a := range attrs {
		m[a.Key] = a.Value
	}
	return m
}

// Registry holds named counters, gauges, and histograms. The zero
// value is ready to use; a nil *Registry ignores every call.
//
// Every name belongs to exactly one kind: the first registration
// claims it, and a later call of a different kind on the same name is
// dropped and recorded (Collisions). That makes Snapshot's merged
// counter/gauge map collision-free by construction — previously a
// counter and a gauge sharing a name silently merged with the gauge
// winning. The metricname analyzer keeps the namespace statically
// enumerable, so a collision is always a findable bug, never a silent
// misreading.
type Registry struct {
	mu       sync.Mutex
	counters map[string]float64
	gauges   map[string]float64
	hists    map[string]*Histogram
	kinds    map[string]metricKind
	collided map[string]bool
}

type metricKind uint8

const (
	kindCounter metricKind = iota + 1
	kindGauge
	kindHistogram
)

func (k metricKind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	case kindHistogram:
		return "histogram"
	}
	return "unknown"
}

// claimLocked records name as kind, or detects the cross-kind
// collision and reports false (the caller drops the operation).
func (r *Registry) claimLocked(name string, kind metricKind) bool {
	if r.kinds == nil {
		r.kinds = make(map[string]metricKind)
	}
	if have, ok := r.kinds[name]; ok {
		if have == kind {
			return true
		}
		if r.collided == nil {
			r.collided = make(map[string]bool)
		}
		r.collided[name] = true
		return false
	}
	r.kinds[name] = kind
	return true
}

// Add increments counter name by delta (creating it at zero). If name
// is already a gauge or histogram, the call is dropped and the
// collision recorded.
func (r *Registry) Add(name string, delta float64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	if r.claimLocked(name, kindCounter) {
		if r.counters == nil {
			r.counters = make(map[string]float64)
		}
		r.counters[name] += delta
	}
	r.mu.Unlock()
}

// Set sets gauge name to v. If name is already a counter or histogram,
// the call is dropped and the collision recorded.
func (r *Registry) Set(name string, v float64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	if r.claimLocked(name, kindGauge) {
		if r.gauges == nil {
			r.gauges = make(map[string]float64)
		}
		r.gauges[name] = v
	}
	r.mu.Unlock()
}

// Histogram returns the named histogram, creating it with
// DefaultLatencyBounds on first use. Returns nil (whose methods all
// no-op) on a nil registry or when name is already a counter or gauge
// — the collision is recorded and the caller's Observe calls vanish
// rather than corrupting another metric.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.claimLocked(name, kindHistogram) {
		return nil
	}
	h := r.hists[name]
	if h == nil {
		h = NewHistogram(nil)
		if r.hists == nil {
			r.hists = make(map[string]*Histogram)
		}
		r.hists[name] = h
	}
	return h
}

// Collisions returns the sorted names that were registered under more
// than one metric kind — each is a bug to fix, not a state to tolerate.
func (r *Registry) Collisions() []string {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]string, 0, len(r.collided))
	for name := range r.collided {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Counter returns the current value of a counter.
func (r *Registry) Counter(name string) float64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.counters[name]
}

// Counters returns a copy of the counter map.
func (r *Registry) Counters() map[string]float64 {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]float64, len(r.counters))
	for k, v := range r.counters {
		out[k] = v
	}
	return out
}

// Gauges returns a copy of the gauge map.
func (r *Registry) Gauges() map[string]float64 {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]float64, len(r.gauges))
	for k, v := range r.gauges {
		out[k] = v
	}
	return out
}

// Histograms returns a point-in-time snapshot of every histogram.
func (r *Registry) Histograms() map[string]HistogramSnapshot {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	hists := make(map[string]*Histogram, len(r.hists))
	for k, h := range r.hists {
		hists[k] = h
	}
	r.mu.Unlock()
	out := make(map[string]HistogramSnapshot, len(hists))
	for k, h := range hists {
		out[k] = h.Snapshot()
	}
	return out
}

// Snapshot returns all counters and gauges merged into one map.
// Histograms are excluded (they are not single numbers; see
// Histograms). The merge is collision-free: a name belongs to exactly
// one kind.
func (r *Registry) Snapshot() map[string]float64 {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]float64, len(r.counters)+len(r.gauges))
	for k, v := range r.counters {
		out[k] = v
	}
	for k, v := range r.gauges {
		out[k] = v
	}
	return out
}

// Names returns the sorted metric names in the registry.
func (r *Registry) Names() []string {
	snap := r.Snapshot()
	names := make([]string, 0, len(snap))
	for k := range snap {
		names = append(names, k)
	}
	sort.Strings(names)
	return names
}
