package obs

import (
	"sort"
	"sync"
)

// SpanObserver is a sink-tee that aggregates completed span durations
// into one latency histogram per span path, then forwards the event to
// the wrapped sink (which may be nil for aggregate-only use). Because
// it keys on the full slash-joined path, every phase the engine already
// instruments — cts.build, core.optimize passes, sta splits, serve
// request handling — gets a latency distribution with no engine
// changes: attach the observer anywhere in the sink chain.
//
// Paths live in their own namespace (they contain '/'), separate from
// the flat pkg.snake_case registry names; /metricsz renders them as one
// metric family with a path label. The synthetic "metrics" event from
// Tracer.Close is skipped — it is a snapshot, not a timed region.
type SpanObserver struct {
	next   Sink
	bounds []float64

	mu    sync.Mutex
	hists map[string]*Histogram
}

// NewSpanObserver returns an observer teeing into next (nil: aggregate
// only). Histograms use DefaultLatencyBounds.
func NewSpanObserver(next Sink) *SpanObserver {
	return &SpanObserver{next: next, bounds: defaultLatencyBounds, hists: map[string]*Histogram{}}
}

// Emit records the span's duration under its path and forwards the
// event to the wrapped sink.
func (o *SpanObserver) Emit(ev SpanEvent) {
	if !(ev.Span == "metrics" && ev.DurNS == 0) {
		o.mu.Lock()
		h := o.hists[ev.Span]
		if h == nil {
			h = NewHistogram(o.bounds)
			o.hists[ev.Span] = h
		}
		o.mu.Unlock()
		h.Observe(float64(ev.DurNS) / 1e9)
	}
	if o.next != nil {
		o.next.Emit(ev)
	}
}

// Close closes the wrapped sink. The aggregated histograms remain
// readable after Close.
func (o *SpanObserver) Close() error {
	if o.next != nil {
		return o.next.Close()
	}
	return nil
}

// Paths returns the sorted span paths observed so far. Safe on nil.
func (o *SpanObserver) Paths() []string {
	if o == nil {
		return nil
	}
	o.mu.Lock()
	defer o.mu.Unlock()
	paths := make([]string, 0, len(o.hists))
	for p := range o.hists {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	return paths
}

// Histogram returns the histogram for one span path (nil if the path
// has not been observed). Safe on nil.
func (o *SpanObserver) Histogram(path string) *Histogram {
	if o == nil {
		return nil
	}
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.hists[path]
}

// Snapshot returns a point-in-time copy of every per-path histogram.
// Safe on nil (returns nil).
func (o *SpanObserver) Snapshot() map[string]HistogramSnapshot {
	if o == nil {
		return nil
	}
	o.mu.Lock()
	hists := make(map[string]*Histogram, len(o.hists))
	for p, h := range o.hists {
		hists[p] = h
	}
	o.mu.Unlock()
	out := make(map[string]HistogramSnapshot, len(hists))
	for p, h := range hists {
		out[p] = h.Snapshot()
	}
	return out
}
