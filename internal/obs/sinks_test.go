package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"sync"
	"testing"
)

// TestSinksConcurrentEmit drives every built-in sink from concurrent
// request-scoped tracers — the service's real shape — and is meant to
// run under -race: each sink must serialize Emit internally. The
// JSONL/Tree buffers are only touched through the sink's own lock, so
// the output must also be structurally intact (whole lines, valid
// JSON) despite the interleaving.
func TestSinksConcurrentEmit(t *testing.T) {
	var jsonlBuf, treeBuf bytes.Buffer
	jl := NewJSONL(&jsonlBuf)
	tree := NewTree(&treeBuf)
	col := NewCollector()
	spanObs := NewSpanObserver(nil)
	tr := New(Multi(jl, tree, col, spanObs))

	const goroutines, reqs = 8, 50
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rtr := tr.Scoped()
			for i := 0; i < reqs; i++ {
				sp := rtr.Start("serve.flow", I("g", g), I("i", i))
				child := rtr.Start("flow.apply")
				child.End()
				sp.End()
				rtr.Add("serve.requests", 1)
			}
		}(g)
	}
	wg.Wait()
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}

	wantSpans := goroutines * reqs * 2
	if got := len(col.Events()); got != wantSpans+1 { // +1 synthetic metrics
		t.Errorf("collector events = %d, want %d", got, wantSpans+1)
	}
	lines := 0
	sc := bufio.NewScanner(bytes.NewReader(jsonlBuf.Bytes()))
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		lines++
		var ev SpanEvent
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("JSONL line %d is not valid JSON: %v: %q", lines, err, sc.Text())
		}
	}
	if lines != wantSpans+1 {
		t.Errorf("JSONL lines = %d, want %d", lines, wantSpans+1)
	}
	if treeBuf.Len() == 0 {
		t.Error("tree sink rendered nothing on Close")
	}
	if got := spanObs.Histogram("serve.flow").Snapshot().Count; got != goroutines*reqs {
		t.Errorf("span observer serve.flow count = %d, want %d", got, goroutines*reqs)
	}
	if got := tr.Registry().Counter("serve.requests"); got != float64(goroutines*reqs) {
		t.Errorf("counter = %g, want %d", got, goroutines*reqs)
	}
}

// TestScopedTracersConcurrentTee checks the per-request tee under
// contention: every request's private collector sees exactly its own
// two spans while the shared sink sees all of them.
func TestScopedTracersConcurrentTee(t *testing.T) {
	shared := NewCollector()
	tr := New(shared)
	const goroutines, reqs = 8, 25
	errs := make(chan error, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < reqs; i++ {
				per := NewCollector()
				rtr := tr.ScopedTee(per)
				sp := rtr.Start("serve.flow", I("g", g))
				rtr.Start("flow.apply").End()
				sp.End()
				if got := len(per.Events()); got != 2 {
					errs <- fmt.Errorf("goroutine %d: per-request events = %d, want 2", g, got)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if got := len(shared.Events()); got != goroutines*reqs*2 {
		t.Errorf("shared events = %d, want %d", got, goroutines*reqs*2)
	}
}
