package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
)

// SpanEvent is the wire form of a finished span. The synthetic
// "metrics" event emitted by Tracer.Close uses the same shape with a
// zero duration and the registry snapshot as attributes, so every line
// of a JSONL stream parses identically.
type SpanEvent struct {
	Span    string         `json:"span"`     // slash-joined path, e.g. "flow.apply/optimize/pass"
	Depth   int            `json:"depth"`    // nesting depth (root = 0)
	StartNS int64          `json:"start_ns"` // offset from tracer creation
	DurNS   int64          `json:"dur_ns"`   // wall-clock duration
	Attrs   map[string]any `json:"attrs,omitempty"`
}

// Name returns the last segment of the span path.
func (ev SpanEvent) Name() string {
	if i := strings.LastIndexByte(ev.Span, '/'); i >= 0 {
		return ev.Span[i+1:]
	}
	return ev.Span
}

// Sink receives finished spans. Implementations must be safe for
// concurrent Emit calls.
type Sink interface {
	Emit(SpanEvent)
	Close() error
}

// nopSink discards everything; New maps it to the nil tracer.
type nopSink struct{}

func (nopSink) Emit(SpanEvent) {}
func (nopSink) Close() error   { return nil }

// Nop returns the no-op sink. obs.New(obs.Nop()) returns a nil tracer,
// so a flow wired with it pays only nil checks.
func Nop() Sink { return nopSink{} }

// JSONL streams one JSON object per event to a writer (buffered; Close
// flushes but does not close the underlying writer).
type JSONL struct {
	mu  sync.Mutex
	bw  *bufio.Writer
	enc *json.Encoder
}

// NewJSONL returns a JSON-lines sink over w.
func NewJSONL(w io.Writer) *JSONL {
	bw := bufio.NewWriter(w)
	return &JSONL{bw: bw, enc: json.NewEncoder(bw)}
}

// Emit writes the event as one JSON line.
func (s *JSONL) Emit(ev SpanEvent) {
	s.mu.Lock()
	defer s.mu.Unlock()
	_ = s.enc.Encode(ev) // Encode appends '\n'
}

// Close flushes the buffer.
func (s *JSONL) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.bw.Flush()
}

// Collector retains every event in memory, for programmatic inspection
// and for rendering timing tables after a run.
type Collector struct {
	mu     sync.Mutex
	events []SpanEvent
}

// NewCollector returns an empty collector.
func NewCollector() *Collector { return &Collector{} }

// Emit appends the event.
func (c *Collector) Emit(ev SpanEvent) {
	c.mu.Lock()
	c.events = append(c.events, ev)
	c.mu.Unlock()
}

// Close is a no-op.
func (c *Collector) Close() error { return nil }

// Events returns a copy of the collected events.
func (c *Collector) Events() []SpanEvent {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]SpanEvent(nil), c.events...)
}

// Tree buffers events and renders a human-readable span tree to the
// writer on Close (spans end child-before-parent, so rendering must
// wait for the full set).
type Tree struct {
	w io.Writer
	c Collector
}

// NewTree returns a tree-rendering sink over w.
func NewTree(w io.Writer) *Tree { return &Tree{w: w} }

// Emit buffers the event.
func (s *Tree) Emit(ev SpanEvent) { s.c.Emit(ev) }

// Close renders the tree.
func (s *Tree) Close() error {
	return RenderTree(s.w, s.c.Events())
}

// RenderTree writes events as an indented tree in start-time order,
// one line per span: name, duration, and attributes. The synthetic
// "metrics" event renders as a trailing metrics block.
func RenderTree(w io.Writer, events []SpanEvent) error {
	evs := append([]SpanEvent(nil), events...)
	sort.SliceStable(evs, func(a, b int) bool {
		if evs[a].StartNS != evs[b].StartNS {
			return evs[a].StartNS < evs[b].StartNS
		}
		return evs[a].Depth < evs[b].Depth
	})
	var b strings.Builder
	var metrics *SpanEvent
	for i := range evs {
		ev := &evs[i]
		if ev.Span == "metrics" && ev.DurNS == 0 {
			metrics = ev
			continue
		}
		fmt.Fprintf(&b, "%s%-*s %10.3fms%s\n",
			strings.Repeat("  ", ev.Depth), 32-2*ev.Depth, ev.Name(),
			float64(ev.DurNS)/1e6, renderAttrs(ev.Attrs))
	}
	if metrics != nil {
		b.WriteString("metrics:\n")
		for _, k := range sortedKeys(metrics.Attrs) {
			fmt.Fprintf(&b, "  %-32s %v\n", k, metrics.Attrs[k])
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

func renderAttrs(attrs map[string]any) string {
	if len(attrs) == 0 {
		return ""
	}
	var b strings.Builder
	for _, k := range sortedKeys(attrs) {
		fmt.Fprintf(&b, "  %s=%v", k, attrs[k])
	}
	return b.String()
}

func sortedKeys(m map[string]any) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Multi fans events out to several sinks. Close closes each sink and
// returns the first error.
func Multi(sinks ...Sink) Sink {
	flat := make([]Sink, 0, len(sinks))
	for _, s := range sinks {
		if s == nil {
			continue
		}
		if _, nop := s.(nopSink); nop {
			continue
		}
		flat = append(flat, s)
	}
	switch len(flat) {
	case 0:
		return nil
	case 1:
		return flat[0]
	}
	return multiSink(flat)
}

type multiSink []Sink

func (m multiSink) Emit(ev SpanEvent) {
	for _, s := range m {
		s.Emit(ev)
	}
}

func (m multiSink) Close() error {
	var first error
	for _, s := range m {
		if err := s.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}
