// Package testutil holds the flow-setup boilerplate shared by the
// facade tests, the integration tests, and the service tests: spec
// construction, benchmark generation, and build/apply steps that fail
// the test instead of returning errors. Keeping them here means a new
// test suite starts at "what do I want to assert" instead of re-deriving
// the same five lines of setup.
//
// The helpers live outside the root package so external test packages
// (package smartndr_test, package serve_test) can import them without an
// import cycle; they intentionally expose only the public smartndr
// facade plus workload types.
package testutil

import (
	"testing"

	"smartndr"
	"smartndr/internal/workload"
)

// UniformSpec returns a small uniform-distribution benchmark spec with
// the cap range and naming the repo's tests have always used. Seed is
// explicit because differential tests sweep it.
func UniformSpec(name string, n int, die float64, seed int64) smartndr.BenchSpec {
	return smartndr.BenchSpec{
		Name: name, Dist: workload.Uniform, Sinks: n, DieX: die, DieY: die,
		CapMin: 1e-15, CapMax: 3e-15, Seed: seed,
	}
}

// Gen generates the benchmark for spec, failing the test on error.
func Gen(tb testing.TB, spec smartndr.BenchSpec) *workload.Benchmark {
	tb.Helper()
	bm, err := smartndr.GenerateBenchmark(spec)
	if err != nil {
		tb.Fatal(err)
	}
	return bm
}

// SmallBench generates the historical quick facade benchmark: n uniform
// sinks on a die×die floorplan, seed 42.
func SmallBench(tb testing.TB, n int, die float64) *workload.Benchmark {
	tb.Helper()
	return Gen(tb, UniformSpec("t", n, die, 42))
}

// Named loads a built-in benchmark (cns01…cns08), failing on error.
func Named(tb testing.TB, name string) *workload.Benchmark {
	tb.Helper()
	bm, err := smartndr.Benchmark(name)
	if err != nil {
		tb.Fatal(err)
	}
	return bm
}

// Build synthesizes the clock tree for the benchmark, failing on error.
func Build(tb testing.TB, f *smartndr.Flow, bm *workload.Benchmark) *smartndr.Built {
	tb.Helper()
	built, err := f.Build(bm.Sinks, bm.Src)
	if err != nil {
		tb.Fatal(err)
	}
	return built
}

// Apply applies the scheme to the built tree, failing on error.
func Apply(tb testing.TB, f *smartndr.Flow, b *smartndr.Built, s smartndr.Scheme) *smartndr.Result {
	tb.Helper()
	r, err := f.Apply(b, s)
	if err != nil {
		tb.Fatalf("%v: %v", s, err)
	}
	return r
}

// BuildFlow is NewFlow(cfg) + Build in one call for tests that only
// need the synthesized tree.
func BuildFlow(tb testing.TB, cfg *smartndr.FlowConfig, bm *workload.Benchmark) (*smartndr.Flow, *smartndr.Built) {
	tb.Helper()
	f := smartndr.NewFlow(cfg)
	return f, Build(tb, f, bm)
}

// RunScheme runs the full NewFlow → Build → Apply pipeline on the
// benchmark and returns the scheme's result.
func RunScheme(tb testing.TB, cfg *smartndr.FlowConfig, bm *workload.Benchmark, s smartndr.Scheme) *smartndr.Result {
	tb.Helper()
	f, built := BuildFlow(tb, cfg, bm)
	return Apply(tb, f, built, s)
}
