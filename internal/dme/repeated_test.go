package dme

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"smartndr/internal/ctree"
	"smartndr/internal/geom"
	"smartndr/internal/topo"
)

var repParams = Params{
	Model:  Repeated,
	RPerUm: 1.5,
	CPerUm: 0.266e-15,
	Repeat: RepeatParams{
		Rd:      173,
		T0:      28e-12,
		Cin:     19.2e-15,
		Spacing: 153,
	},
}

func TestRepeatedDelayMonotone(t *testing.T) {
	f := func(raw1, raw2 float64) bool {
		a := math.Abs(math.Mod(raw1, 5000))
		b := a + math.Abs(math.Mod(raw2, 5000)) + 1e-6
		return repParams.repeatedDelay(b) >= repParams.repeatedDelay(a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRepeatedDelaySegmentCount(t *testing.T) {
	s := repParams.Repeat.Spacing
	cases := []struct {
		e    float64
		want float64
	}{
		{0, 1}, {1, 1}, {s, 1}, {s + 0.001, 2}, {2 * s, 2}, {10*s - 1, 10},
	}
	for _, c := range cases {
		if got := repParams.segments(c.e); got != c.want {
			t.Errorf("segments(%g) = %g, want %g", c.e, got, c.want)
		}
	}
}

func TestRepeatedZeroEdgeChargesJunction(t *testing.T) {
	// A zero-length edge still passes through its junction repeater.
	d0 := repParams.repeatedDelay(0)
	want := repParams.Repeat.T0 + repParams.Repeat.Rd*repParams.Repeat.Cin
	if math.Abs(d0-want) > 1e-15 {
		t.Errorf("D(0) = %g, want %g", d0, want)
	}
}

func TestRepeatedAmortizedRate(t *testing.T) {
	// Long lines approach a constant delay per micron; doubling the length
	// roughly doubles the delay.
	d5 := repParams.repeatedDelay(5000)
	d10 := repParams.repeatedDelay(10000)
	ratio := d10 / d5
	if ratio < 1.9 || ratio > 2.1 {
		t.Errorf("long-line ratio %g, want ≈2", ratio)
	}
}

func TestExtendRepeatedDeliversLag(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	jump := repParams.Repeat.T0 + repParams.Repeat.Rd*repParams.Repeat.Cin
	for trial := 0; trial < 500; trial++ {
		e := rng.Float64() * 3000
		lag := rng.Float64() * 200e-12
		e2 := repParams.extendRepeated(e, lag)
		if e2 < e {
			t.Fatalf("extension shrank the edge: %g → %g", e, e2)
		}
		got := repParams.repeatedDelay(e2) - repParams.repeatedDelay(e)
		// Exact in-branch; at a repeater-count jump the residual is at
		// most half a jump.
		if math.Abs(got-lag) > jump/2+1e-15 {
			t.Fatalf("extend(%g, %g ps): delivered %g ps (jump %g ps)",
				e, lag*1e12, got*1e12, jump*1e12)
		}
	}
}

func TestExtendRepeatedZeroLag(t *testing.T) {
	if got := repParams.extendRepeated(500, 0); got != 500 {
		t.Errorf("zero lag must not extend: %g", got)
	}
	if got := repParams.extendRepeated(500, -1e-12); got != 500 {
		t.Errorf("negative lag must not extend: %g", got)
	}
}

func TestExtendForDelayModels(t *testing.T) {
	lin := Params{Model: Linear, KPerUm: 0.07e-12, CPerUm: 0.25e-15}
	if got := lin.ExtendForDelay(100, 7e-12); math.Abs(got-200) > 1e-6 {
		t.Errorf("linear extend = %g, want 200", got)
	}
	elm := Params{Model: Elmore, RPerUm: 3, CPerUm: 0.2e-15}
	e2 := elm.ExtendForDelay(100, 10e-12)
	added := 3*e2*(0.2e-15*e2/2) - 3*100*(0.2e-15*100/2)
	if math.Abs(added-10e-12) > 1e-13 {
		t.Errorf("elmore extend delivered %g", added)
	}
}

func TestRepeatedModelBoundedSkew(t *testing.T) {
	// DME under the Repeated model balances each merge to within half a
	// repeater-count jump (the residual when the balance point lands in a
	// jump and in-branch extension cannot cross it). Residuals accumulate
	// along the merge levels; the cts trim loop absorbs them afterwards.
	// This test pins the *bound*: per-path accumulation stays within
	// halfJump × (merge levels).
	for _, n := range []int{2, 5, 16, 40} {
		rng := rand.New(rand.NewSource(int64(n)))
		sinks := make([]ctree.Sink, n)
		for i := range sinks {
			sinks[i] = ctree.Sink{
				Loc:   geom.Point{X: rng.Float64() * 6000, Y: rng.Float64() * 5000},
				Cap:   19.2e-15, // pseudo-sinks: buffer inputs
				Delay: rng.Float64() * 100e-12,
			}
		}
		tr, err := topo.Build(topo.Bipartition, sinks, geom.Point{X: 3000, Y: 2500})
		if err != nil {
			t.Fatal(err)
		}
		if err := Embed(tr, repParams); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if err := tr.CheckEmbedding(1e-6); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		// Evaluate arrivals under the same Repeated model the merge used,
		// including the per-merge junction charges.
		skew, delay := repeatedSinkSkew(tr, repParams)
		if delay <= 0 {
			t.Fatalf("n=%d: no delay", n)
		}
		jump := repParams.Repeat.T0 + repParams.Repeat.Rd*repParams.Repeat.Cin
		levels := math.Ceil(math.Log2(float64(n))) + 1
		if bound := jump / 2 * levels; skew > bound {
			t.Errorf("n=%d: model skew %.3f ps over the %.1f ps accumulation bound",
				n, skew*1e12, bound*1e12)
		}
	}
}

// repeatedSinkSkew evaluates sink arrivals under the Repeated model with
// the same junction-charge convention merge() uses.
func repeatedSinkSkew(t *ctree.Tree, p Params) (skew, maxDelay float64) {
	arr := make([]float64, len(t.Nodes))
	lo, hi := math.Inf(1), math.Inf(-1)
	t.PreOrder(func(i int) {
		n := &t.Nodes[i]
		pa := n.Parent
		if pa == ctree.NoNode {
			arr[i] = 0
		} else {
			arr[i] = arr[pa] + p.repeatedDelay(n.EdgeLen)
			// Junction charge: the parent drives this edge's first segment
			// and the sibling's; the path through this child is undercharged
			// by the sibling's first-segment share.
			var sib int = ctree.NoNode
			for _, k := range t.Nodes[pa].Kids {
				if k != ctree.NoNode && k != i {
					sib = k
				}
			}
			if sib != ctree.NoNode {
				arr[i] += p.Repeat.Rd*(p.CPerUm*p.firstSeg(t.Nodes[sib].EdgeLen)+p.Repeat.Cin) + p.Repeat.SlewPenalty
			}
		}
		if si := n.SinkIdx; si != ctree.NoSink {
			a := arr[i] + t.Sinks[si].Delay
			lo = math.Min(lo, a)
			hi = math.Max(hi, a)
		}
	})
	return hi - lo, hi
}
