package dme

import (
	"math"
	"math/rand"
	"testing"

	"smartndr/internal/ctree"
	"smartndr/internal/geom"
	"smartndr/internal/rctree"
	"smartndr/internal/topo"
)

var testParams = Params{RPerUm: 3.0, CPerUm: 0.21e-15}

func randomSinks(n int, seed int64, spread float64) []ctree.Sink {
	rng := rand.New(rand.NewSource(seed))
	sinks := make([]ctree.Sink, n)
	for i := range sinks {
		sinks[i] = ctree.Sink{
			Loc: geom.Point{X: rng.Float64() * spread, Y: rng.Float64() * spread},
			Cap: (0.5 + rng.Float64()*3) * 1e-15,
		}
	}
	return sinks
}

// toRCTree converts an embedded clock tree into an RC tree with uniform
// per-micron parasitics, marking sink nodes as endpoints.
func toRCTree(t *ctree.Tree, p Params) (*rctree.Tree, map[int]rctree.NodeID) {
	rt := rctree.New(0)
	ids := map[int]rctree.NodeID{t.Root: rt.Root()}
	t.PreOrder(func(i int) {
		if i == t.Root {
			return
		}
		n := &t.Nodes[i]
		pin := 0.0
		if n.SinkIdx != ctree.NoSink {
			pin = t.Sinks[n.SinkIdx].Cap
		}
		id := rt.AddNode(ids[n.Parent], p.RPerUm*n.EdgeLen, p.CPerUm*n.EdgeLen, pin)
		ids[i] = id
		if n.SinkIdx != ctree.NoSink {
			rt.MarkEndpoint(id)
		}
	})
	return rt, ids
}

// sinkSkew returns (max−min) Elmore delay over sinks of the embedded tree.
func sinkSkew(t *ctree.Tree, p Params) (skew, maxDelay float64) {
	rt, _ := toRCTree(t, p)
	res := rt.Analyze()
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, ep := range rt.Endpoints() {
		d := res.Delay[ep]
		lo = math.Min(lo, d)
		hi = math.Max(hi, d)
	}
	return hi - lo, hi
}

func TestTwoSinkZeroSkew(t *testing.T) {
	sinks := []ctree.Sink{
		{Loc: geom.Point{X: 0, Y: 0}, Cap: 1e-15},
		{Loc: geom.Point{X: 1000, Y: 0}, Cap: 1e-15},
	}
	tr, err := topo.Build(topo.Bipartition, sinks, geom.Point{X: 500, Y: 500})
	if err != nil {
		t.Fatal(err)
	}
	if err := Embed(tr, testParams); err != nil {
		t.Fatal(err)
	}
	skew, delay := sinkSkew(tr, testParams)
	if delay <= 0 {
		t.Fatal("nonzero-delay tree expected")
	}
	if skew > delay*1e-9 {
		t.Errorf("skew = %g s on %g s delay; want ~0", skew, delay)
	}
	// Equal caps and symmetric geometry: the tap point is the midpoint.
	mid := tr.Nodes[tr.Root].Loc
	if math.Abs(mid.X-500) > 1e-6 {
		t.Errorf("symmetric merge should tap at x=500, got %v", mid)
	}
}

func TestAsymmetricCapsShiftTap(t *testing.T) {
	sinks := []ctree.Sink{
		{Loc: geom.Point{X: 0, Y: 0}, Cap: 20e-15}, // heavy sink
		{Loc: geom.Point{X: 1000, Y: 0}, Cap: 1e-15},
	}
	tr, _ := topo.Build(topo.Bipartition, sinks, geom.Point{})
	if err := Embed(tr, testParams); err != nil {
		t.Fatal(err)
	}
	skew, delay := sinkSkew(tr, testParams)
	if skew > delay*1e-9+1e-18 {
		t.Errorf("skew = %g, want ~0", skew)
	}
	// The tap must sit closer to the heavy sink so it gets less wire.
	if tr.Nodes[tr.Root].Loc.X >= 500 {
		t.Errorf("tap at %v should favor the heavy sink at x=0", tr.Nodes[tr.Root].Loc)
	}
}

func TestZeroSkewAcrossSizesAndMethods(t *testing.T) {
	for _, m := range []topo.Method{topo.Bipartition, topo.NearestNeighbor} {
		for _, n := range []int{2, 3, 7, 16, 63, 200} {
			sinks := randomSinks(n, int64(n)*7+int64(m), 3000)
			tr, err := topo.Build(m, sinks, geom.Point{X: 1500, Y: 1500})
			if err != nil {
				t.Fatal(err)
			}
			if err := Embed(tr, testParams); err != nil {
				t.Fatalf("%v n=%d: %v", m, n, err)
			}
			if err := tr.Validate(); err != nil {
				t.Fatalf("%v n=%d: %v", m, n, err)
			}
			if err := tr.CheckEmbedding(1e-6); err != nil {
				t.Fatalf("%v n=%d: %v", m, n, err)
			}
			skew, delay := sinkSkew(tr, testParams)
			if skew > delay*1e-6+1e-18 {
				t.Errorf("%v n=%d: skew %g on delay %g", m, n, skew, delay)
			}
		}
	}
}

func TestSnakingProducesLongEdges(t *testing.T) {
	// Snaking requires a subtree *delay* imbalance: merge a wide two-sink
	// subtree (large internal Elmore delay) with a single nearby sink. The
	// lone sink's edge must be snaked far beyond its Manhattan distance to
	// match the slow subtree.
	sinks := []ctree.Sink{
		{Loc: geom.Point{X: 0, Y: 0}, Cap: 1e-15},
		{Loc: geom.Point{X: 4000, Y: 0}, Cap: 1e-15},
		{Loc: geom.Point{X: 2000, Y: 10}, Cap: 1e-15}, // right next to the pair's tap
	}
	tr := ctree.NewTree(sinks, geom.Point{X: 2000, Y: 0})
	l0 := tr.AddNode(ctree.Node{Parent: ctree.NoNode, Kids: [2]int{ctree.NoNode, ctree.NoNode}, SinkIdx: 0, BufIdx: ctree.NoBuf})
	l1 := tr.AddNode(ctree.Node{Parent: ctree.NoNode, Kids: [2]int{ctree.NoNode, ctree.NoNode}, SinkIdx: 1, BufIdx: ctree.NoBuf})
	m := tr.AddNode(ctree.Node{Parent: ctree.NoNode, Kids: [2]int{l0, l1}, SinkIdx: ctree.NoSink, BufIdx: ctree.NoBuf})
	tr.Nodes[l0].Parent = m
	tr.Nodes[l1].Parent = m
	l2 := tr.AddNode(ctree.Node{Parent: ctree.NoNode, Kids: [2]int{ctree.NoNode, ctree.NoNode}, SinkIdx: 2, BufIdx: ctree.NoBuf})
	root := tr.AddNode(ctree.Node{Parent: ctree.NoNode, Kids: [2]int{m, l2}, SinkIdx: ctree.NoSink, BufIdx: ctree.NoBuf})
	tr.Nodes[m].Parent = root
	tr.Nodes[l2].Parent = root
	tr.Root = root

	if err := Embed(tr, testParams); err != nil {
		t.Fatal(err)
	}
	skew, delay := sinkSkew(tr, testParams)
	if skew > delay*1e-6 {
		t.Errorf("skew = %g on delay %g, want ~0 via snaking", skew, delay)
	}
	// The lone sink's electrical edge must dwarf its geometric distance.
	geoDist := tr.Nodes[l2].Loc.Dist(tr.Nodes[root].Loc)
	if tr.Nodes[l2].EdgeLen < geoDist+100 {
		t.Errorf("edge to lone sink: electrical %g vs geometric %g — expected heavy snaking",
			tr.Nodes[l2].EdgeLen, geoDist)
	}
}

func TestEmbedIdempotentWirelength(t *testing.T) {
	sinks := randomSinks(50, 99, 2000)
	tr, _ := topo.Build(topo.Bipartition, sinks, geom.Point{X: 1000, Y: 1000})
	if err := Embed(tr, testParams); err != nil {
		t.Fatal(err)
	}
	w1 := tr.TotalWirelength()
	if err := Embed(tr, testParams); err != nil {
		t.Fatal(err)
	}
	if w2 := tr.TotalWirelength(); math.Abs(w1-w2) > 1e-6 {
		t.Errorf("re-embedding changed wirelength: %g → %g", w1, w2)
	}
}

func TestEmbedParamValidation(t *testing.T) {
	sinks := randomSinks(4, 1, 100)
	tr, _ := topo.Build(topo.Bipartition, sinks, geom.Point{})
	if err := Embed(tr, Params{RPerUm: 0, CPerUm: 1e-15}); err == nil {
		t.Error("zero R must be rejected")
	}
	if err := Embed(tr, Params{RPerUm: 1, CPerUm: -1}); err == nil {
		t.Error("negative C must be rejected")
	}
	if err := Embed(tr, Params{RPerUm: math.NaN(), CPerUm: 1e-15}); err == nil {
		t.Error("NaN must be rejected")
	}
}

func TestEmbedNoRoot(t *testing.T) {
	tr := ctree.NewTree(randomSinks(2, 1, 10), geom.Point{})
	if err := Embed(tr, testParams); err == nil {
		t.Error("rootless tree must be rejected")
	}
}

func TestSnakeLength(t *testing.T) {
	p := Params{RPerUm: 3.0, CPerUm: 0.2e-15}
	capLoad := 10e-15
	for _, lag := range []float64{1e-12, 10e-12, 100e-12} {
		e := snakeLength(lag, capLoad, p)
		got := p.RPerUm * e * (p.CPerUm*e/2 + capLoad)
		if math.Abs(got-lag) > lag*1e-9 {
			t.Errorf("snakeLength(%g): delay %g", lag, got)
		}
	}
	if snakeLength(0, capLoad, p) != 0 || snakeLength(-1e-12, capLoad, p) != 0 {
		t.Error("non-positive lag needs no snaking")
	}
}

func TestWirelengthReasonable(t *testing.T) {
	// Zero-skew wirelength must be within a small factor of the sink
	// bounding-box half-perimeter scaled by sqrt(n) (Steiner-tree scaling).
	n := 128
	sinks := randomSinks(n, 5, 2000)
	tr, _ := topo.Build(topo.Bipartition, sinks, geom.Point{X: 1000, Y: 1000})
	if err := Embed(tr, testParams); err != nil {
		t.Fatal(err)
	}
	w := tr.TotalWirelength()
	// Expected RSMT length ~ 0.7·sqrt(n·A); zero-skew trees cost a bit
	// more. Guard against both gross blowup and impossibly short results.
	scale := math.Sqrt(float64(n)*2000*2000) * 0.7
	if w < scale*0.5 || w > scale*4 {
		t.Errorf("wirelength %g out of plausible range around %g", w, scale)
	}
}

func TestSubtreeDelayMatchesAnalysis(t *testing.T) {
	sinks := randomSinks(32, 17, 1500)
	tr, _ := topo.Build(topo.Bipartition, sinks, geom.Point{X: 700, Y: 700})
	if err := Embed(tr, testParams); err != nil {
		t.Fatal(err)
	}
	delay, totalCap, err := SubtreeDelay(tr, testParams)
	if err != nil {
		t.Fatal(err)
	}
	rt, _ := toRCTree(tr, testParams)
	res := rt.Analyze()
	var maxD float64
	for _, ep := range rt.Endpoints() {
		maxD = math.Max(maxD, res.Delay[ep])
	}
	if math.Abs(delay-maxD) > maxD*1e-9 {
		t.Errorf("SubtreeDelay %g vs analysis %g", delay, maxD)
	}
	if math.Abs(totalCap-res.TotalCap) > res.TotalCap*1e-9 {
		t.Errorf("SubtreeDelay cap %g vs analysis %g", totalCap, res.TotalCap)
	}
}

func TestClusteredSinksZeroSkew(t *testing.T) {
	// Two dense far-apart clusters exercise deep snaking and long top
	// edges.
	rng := rand.New(rand.NewSource(23))
	var sinks []ctree.Sink
	for i := 0; i < 20; i++ {
		sinks = append(sinks, ctree.Sink{
			Loc: geom.Point{X: rng.Float64() * 50, Y: rng.Float64() * 50},
			Cap: 1e-15,
		})
	}
	for i := 0; i < 5; i++ {
		sinks = append(sinks, ctree.Sink{
			Loc: geom.Point{X: 4000 + rng.Float64()*50, Y: rng.Float64() * 50},
			Cap: 2e-15,
		})
	}
	tr, _ := topo.Build(topo.NearestNeighbor, sinks, geom.Point{X: 2000, Y: 0})
	if err := Embed(tr, testParams); err != nil {
		t.Fatal(err)
	}
	skew, delay := sinkSkew(tr, testParams)
	if skew > delay*1e-6 {
		t.Errorf("clustered skew %g on delay %g", skew, delay)
	}
}

func TestCoincidentSinks(t *testing.T) {
	sinks := []ctree.Sink{
		{Loc: geom.Point{X: 100, Y: 100}, Cap: 1e-15},
		{Loc: geom.Point{X: 100, Y: 100}, Cap: 3e-15},
		{Loc: geom.Point{X: 100, Y: 100}, Cap: 2e-15},
	}
	tr, _ := topo.Build(topo.Bipartition, sinks, geom.Point{})
	if err := Embed(tr, testParams); err != nil {
		t.Fatal(err)
	}
	skew, _ := sinkSkew(tr, testParams)
	if skew > 1e-18 {
		t.Errorf("coincident sinks skew = %g", skew)
	}
}

func BenchmarkEmbed1k(b *testing.B) {
	sinks := randomSinks(1024, 3, 3000)
	tr, _ := topo.Build(topo.Bipartition, sinks, geom.Point{X: 1500, Y: 1500})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := Embed(tr, testParams); err != nil {
			b.Fatal(err)
		}
	}
}

var linParams = Params{Model: Linear, KPerUm: 0.05e-12, CPerUm: 0.25e-15}

// linSinkSkew evaluates sink arrival under the linear model: k·pathLen +
// sink offset, which is what Linear-mode DME balances.
func linSinkSkew(t *ctree.Tree, p Params) (skew, maxDelay float64) {
	depthDelay := make([]float64, len(t.Nodes))
	lo, hi := math.Inf(1), math.Inf(-1)
	t.PreOrder(func(i int) {
		if pa := t.Nodes[i].Parent; pa != ctree.NoNode {
			depthDelay[i] = depthDelay[pa] + p.KPerUm*t.Nodes[i].EdgeLen
		}
		if si := t.Nodes[i].SinkIdx; si != ctree.NoSink {
			d := depthDelay[i] + t.Sinks[si].Delay
			lo = math.Min(lo, d)
			hi = math.Max(hi, d)
		}
	})
	return hi - lo, hi
}

func TestLinearModelZeroSkew(t *testing.T) {
	for _, n := range []int{2, 5, 16, 64} {
		sinks := randomSinks(n, int64(n)*3+1, 5000)
		tr, err := topo.Build(topo.Bipartition, sinks, geom.Point{X: 2500, Y: 2500})
		if err != nil {
			t.Fatal(err)
		}
		if err := Embed(tr, linParams); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if err := tr.CheckEmbedding(1e-6); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		skew, delay := linSinkSkew(tr, linParams)
		if skew > delay*1e-9+1e-18 {
			t.Errorf("n=%d: linear-model skew %g on delay %g", n, skew, delay)
		}
	}
}

func TestLinearModelBalancesOffsets(t *testing.T) {
	// Pseudo-sinks with different insertion delays below them: DME must
	// absorb the offsets so total arrival is equal.
	sinks := []ctree.Sink{
		{Loc: geom.Point{X: 0, Y: 0}, Cap: 5e-15, Delay: 120e-12},
		{Loc: geom.Point{X: 3000, Y: 0}, Cap: 5e-15, Delay: 80e-12},
		{Loc: geom.Point{X: 1500, Y: 2500}, Cap: 5e-15, Delay: 100e-12},
	}
	tr, err := topo.Build(topo.NearestNeighbor, sinks, geom.Point{X: 1500, Y: 1000})
	if err != nil {
		t.Fatal(err)
	}
	if err := Embed(tr, linParams); err != nil {
		t.Fatal(err)
	}
	skew, delay := linSinkSkew(tr, linParams)
	if skew > delay*1e-9+1e-18 {
		t.Errorf("offsets not balanced: skew %g", skew)
	}
	if delay < 120e-12 {
		t.Errorf("total delay %g cannot be below the largest offset", delay)
	}
}

func TestElmoreModelBalancesOffsets(t *testing.T) {
	sinks := []ctree.Sink{
		{Loc: geom.Point{X: 0, Y: 0}, Cap: 2e-15, Delay: 50e-12},
		{Loc: geom.Point{X: 800, Y: 0}, Cap: 2e-15, Delay: 0},
	}
	tr, err := topo.Build(topo.Bipartition, sinks, geom.Point{})
	if err != nil {
		t.Fatal(err)
	}
	if err := Embed(tr, testParams); err != nil {
		t.Fatal(err)
	}
	// Arrival = wire Elmore + offset; compute via rctree plus offsets.
	rt, ids := toRCTree(tr, testParams)
	res := rt.Analyze()
	var arr []float64
	for i := range tr.Nodes {
		if si := tr.Nodes[i].SinkIdx; si != ctree.NoSink {
			arr = append(arr, res.Delay[ids[i]]+tr.Sinks[si].Delay)
		}
	}
	if len(arr) != 2 {
		t.Fatal("want 2 sinks")
	}
	if math.Abs(arr[0]-arr[1]) > 1e-15 {
		t.Errorf("offset-aware skew = %g", math.Abs(arr[0]-arr[1]))
	}
}

func TestLinearSnakeLength(t *testing.T) {
	e := snakeLength(10e-12, 0, linParams)
	if !geomApprox(e, 10e-12/linParams.KPerUm, 1e-9) {
		t.Errorf("linear snake = %g", e)
	}
}

func geomApprox(a, b, eps float64) bool {
	return math.Abs(a-b) <= eps*math.Max(math.Abs(a), math.Abs(b))
}

func TestParamsValidateModels(t *testing.T) {
	good := []Params{
		{Model: Elmore, RPerUm: 1, CPerUm: 1e-15},
		{Model: Linear, KPerUm: 1e-12, CPerUm: 1e-15},
	}
	for i, p := range good {
		if err := p.Validate(); err != nil {
			t.Errorf("good params %d rejected: %v", i, err)
		}
	}
	bad := []Params{
		{Model: Elmore, RPerUm: 0, CPerUm: 1e-15},
		{Model: Linear, KPerUm: 0, CPerUm: 1e-15},
		{Model: Linear, KPerUm: 1e-12, CPerUm: 0},
		{Model: Model(9), RPerUm: 1, CPerUm: 1e-15, KPerUm: 1e-12},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("bad params %d accepted", i)
		}
	}
}
