// Package dme implements Deferred-Merge Embedding: given a binary clock
// topology over located sinks, it computes an exact zero-skew embedding
// under the Elmore delay model (Chao–Hsu–Kahng / Boese–Kahng / Edahiro).
//
// The algorithm runs in two phases:
//
//  1. Bottom-up: each node gets a *merging segment* — the locus of points
//     where its two subtrees can be joined with equal Elmore delay using
//     minimum total wire. Merging segments are Manhattan arcs, manipulated
//     as tilted rectangular regions (package geom). When delay balance
//     cannot be achieved with a plain split of the children's distance,
//     the fast side's edge is *snaked* (elongated beyond its Manhattan
//     length), the standard zero-skew escape.
//
//  2. Top-down: a concrete point is chosen on each merging segment, nearest
//     to the already-placed parent, which realizes every edge within its
//     recorded electrical length.
//
// The resulting tree has zero Elmore skew by construction for uniform wire
// RC; tests assert the residual is at floating-point noise level.
package dme

import (
	"errors"
	"fmt"
	"math"

	"smartndr/internal/ctree"
	"smartndr/internal/geom"
)

// Model selects the edge delay model used for balancing.
type Model int

const (
	// Elmore models an edge of length e driving downstream cap C as a
	// distributed RC line: delay = r·e·(c·e/2 + C). Used for unbuffered
	// (bottom-level) stages.
	Elmore Model = iota
	// Linear models an edge as a repeated (buffered) line with constant
	// delay per micron: delay = k·e, independent of downstream cap. Used
	// for upper levels where repeaters are inserted at fixed spacing — the
	// per-segment buffer plus wire delay amortizes to a constant rate.
	Linear
	// Repeated models the repeated line *exactly*: an edge of length e is
	// realized as n = ceil(e/Spacing) equal segments, each terminated by a
	// repeater (linearized as T0 + Rd·load), so
	//
	//	delay(e) = n·T0 + Rd·(c·e + n·Cin) + r·(e/n)·(c·e/(2n) + Cin)·n
	//
	// This removes the fractional-segment error of the Linear model (up
	// to half a repeater delay per edge), which would otherwise accumulate
	// into tens of picoseconds of construction skew. Merges are balanced
	// by monotone binary search over the split point, with in-branch
	// fine-tuning across the repeater-count jumps.
	Repeated
)

// RepeatParams parameterize the Repeated model's per-segment repeater.
type RepeatParams struct {
	Rd      float64 // Ω, linearized repeater drive resistance
	T0      float64 // s, repeater intrinsic delay
	Cin     float64 // F, repeater input capacitance
	Spacing float64 // µm, maximum segment length
	// SlewPenalty is the extra delay of the repeater that follows a
	// junction: the junction's heavier load degrades its output
	// transition, slowing the next stage. Charged once per merge.
	SlewPenalty float64 // s
}

// firstSeg returns the length of the first segment of an edge of length e
// (segments are equal; a zero-length edge has a zero-length segment).
func (p Params) firstSeg(e float64) float64 {
	if e <= 0 {
		return 0
	}
	return e / p.segments(e)
}

// Params hold the uniform per-micron wire model used for delay balancing.
// The embedding is performed under the *blanket* rule of the flow; later
// per-edge rule changes deliberately perturb the balance, and the
// optimizer's skew-repair pass restores it.
type Params struct {
	Model  Model
	RPerUm float64      // Ω/µm (Elmore and Repeated models)
	CPerUm float64      // F/µm (all models: cap bookkeeping)
	KPerUm float64      // s/µm (Linear model)
	Repeat RepeatParams // Repeated model
	// MergeDelay is a fixed delay added at every two-child merge node —
	// the junction repeater of a buffered top-level tree. It is common to
	// both branches of the merge, so balance within the merge is
	// unaffected, and the bottom-up recursion carries it into higher-level
	// balancing (subtrees with more merge levels get correspondingly less
	// wire). Zero for pure-wire trees.
	MergeDelay float64 // s
}

// Validate checks the parameters.
func (p Params) Validate() error {
	if p.CPerUm <= 0 || math.IsNaN(p.CPerUm) {
		return fmt.Errorf("dme: bad wire cap %g", p.CPerUm)
	}
	if p.MergeDelay < 0 || math.IsNaN(p.MergeDelay) {
		return fmt.Errorf("dme: bad merge delay %g", p.MergeDelay)
	}
	switch p.Model {
	case Elmore:
		if p.RPerUm <= 0 || math.IsNaN(p.RPerUm) {
			return fmt.Errorf("dme: bad wire resistance %g", p.RPerUm)
		}
	case Linear:
		if p.KPerUm <= 0 || math.IsNaN(p.KPerUm) {
			return fmt.Errorf("dme: bad linear delay rate %g", p.KPerUm)
		}
	case Repeated:
		if p.RPerUm <= 0 || math.IsNaN(p.RPerUm) {
			return fmt.Errorf("dme: bad wire resistance %g", p.RPerUm)
		}
		r := p.Repeat
		if r.Rd <= 0 || r.T0 < 0 || r.Cin <= 0 || r.Spacing <= 0 {
			return fmt.Errorf("dme: bad repeater params %+v", r)
		}
	default:
		return fmt.Errorf("dme: unknown model %d", int(p.Model))
	}
	return nil
}

// edgeDelay returns the delay of an edge of length e driving downstream
// capacitance load under the configured model.
func (p Params) edgeDelay(e, load float64) float64 {
	switch p.Model {
	case Linear:
		return p.KPerUm * e
	case Repeated:
		return p.repeatedDelay(e)
	default:
		return p.RPerUm * e * (p.CPerUm*e/2 + load)
	}
}

// segments returns the repeater-segment count of an edge of length e.
// Even a zero-length edge counts one segment: the junction repeater at its
// top physically exists and drives the node below — omitting its delay
// would make every snake-case (zero-length) merge a full repeater delay
// optimistic.
func (p Params) segments(e float64) float64 {
	n := math.Ceil(e/p.Repeat.Spacing - 1e-12)
	if n < 1 {
		n = 1
	}
	return n
}

// repeatedDelay evaluates the Repeated edge model at length e.
func (p Params) repeatedDelay(e float64) float64 {
	if e < 0 {
		e = 0
	}
	return p.repeatedDelayN(e, p.segments(e))
}

// repeatedDelayN evaluates the Repeated model with a fixed segment count:
// D(e; n) = (r·c/2n)·e² + (Rd·c + r·Cin)·e + n·(T0 + Rd·Cin).
func (p Params) repeatedDelayN(e, n float64) float64 {
	rp := p.Repeat
	return p.RPerUm*p.CPerUm/(2*n)*e*e + (rp.Rd*p.CPerUm+p.RPerUm*rp.Cin)*e + n*(rp.T0+rp.Rd*rp.Cin)
}

// ExtendForDelay returns an edge length e' ≥ e whose model delay exceeds
// the delay at length e by lag. Construction-time balance trimming uses it
// to slow a fast subtree by lengthening its feeding edge.
func (p Params) ExtendForDelay(e, lag float64) float64 {
	if lag <= 0 {
		return e
	}
	switch p.Model {
	case Linear:
		return e + lag/p.KPerUm
	case Repeated:
		return p.extendRepeated(e, lag)
	default:
		// Elmore, conservatively with no lumped endpoint load:
		// lag = (r·c/2)·(e'² − e²).
		return math.Sqrt(e*e + 2*lag/(p.RPerUm*p.CPerUm))
	}
}

// extendRepeated returns an edge length e' ≥ e whose Repeated-model delay
// equals delay(e) + lag, staying within the current segment-count branch
// when possible (in-branch extension is continuous). When the branch runs
// out before the lag is absorbed, the walk crosses into longer branches;
// a residual smaller than one repeater-count jump may remain, in which
// case the closest achievable length is returned.
func (p Params) extendRepeated(e, lag float64) float64 {
	if lag <= 0 {
		return e
	}
	target := p.repeatedDelay(e) + lag
	n := p.segments(e)
	if n < 1 {
		n = 1
	}
	for guard := 0; guard < 1<<20; guard++ {
		// Solve D(e'; n) = target within the branch.
		rp := p.Repeat
		a2 := p.RPerUm * p.CPerUm / (2 * n)
		a1 := rp.Rd*p.CPerUm + p.RPerUm*rp.Cin
		a0 := n*(rp.T0+rp.Rd*rp.Cin) - target
		disc := a1*a1 - 4*a2*a0
		if disc >= 0 {
			if cand := (-a1 + math.Sqrt(disc)) / (2 * a2); cand >= e && cand <= n*rp.Spacing+1e-9 {
				return cand
			}
		}
		// Branch exhausted: the target sits in (or past) the repeater-
		// count jump. If it falls inside the jump, pick the nearer rim —
		// undershooting at the branch end or overshooting at the next
		// branch's start — so the residual never exceeds half a jump.
		end := n * rp.Spacing
		if over := p.repeatedDelayN(end, n+1); over > target {
			if under := p.repeatedDelayN(end, n); target-under <= over-target {
				return end
			}
			// Nudge past the boundary so downstream ceil() sees n+1
			// segments.
			return end * (1 + 1e-9)
		}
		e = end
		n++
	}
	return e
}

// nodeState is the bottom-up bookkeeping per tree node.
type nodeState struct {
	ms    geom.TRR // merging segment
	delay float64  // Elmore delay from the node's embedding point to every sink below (equal by construction)
	cap   float64  // total downstream capacitance seen at the node, F
}

// Embed computes the zero-skew embedding in place: it fills Loc and EdgeLen
// for every node of t. Leaf locations (sink positions) are respected.
func Embed(t *ctree.Tree, p Params) error {
	if err := p.Validate(); err != nil {
		return err
	}
	if t.Root == ctree.NoNode {
		return errors.New("dme: tree has no root")
	}
	st := make([]nodeState, len(t.Nodes))
	var fail error
	t.PostOrder(func(i int) {
		if fail != nil {
			return
		}
		n := &t.Nodes[i]
		switch t.NumKids(i) {
		case 0:
			if n.SinkIdx == ctree.NoSink {
				fail = fmt.Errorf("dme: leaf node %d has no sink", i)
				return
			}
			s := t.Sinks[n.SinkIdx]
			st[i] = nodeState{ms: geom.PointTRR(s.Loc), delay: s.Delay, cap: s.Cap}
		case 1:
			// Degenerate unary node: inherit the child state unchanged
			// with a zero-length edge.
			k := n.Kids[0]
			if k == ctree.NoNode {
				k = n.Kids[1]
			}
			st[i] = st[k]
		case 2:
			a, b := n.Kids[0], n.Kids[1]
			msV, ea, eb, dv, cv, err := merge(st[a], st[b], p)
			if err != nil {
				fail = fmt.Errorf("dme: merging node %d: %w", i, err)
				return
			}
			st[i] = nodeState{ms: msV, delay: dv, cap: cv}
			// Stash required electrical edge lengths on the children; the
			// top-down pass keeps them.
			t.Nodes[a].EdgeLen = ea
			t.Nodes[b].EdgeLen = eb
		}
	})
	if fail != nil {
		return fail
	}
	// Top-down embedding: root goes to the merging-segment point nearest
	// the clock source; children to the point of their segment nearest the
	// placed parent.
	t.Nodes[t.Root].Loc = st[t.Root].ms.ClosestPointTo(t.SrcLoc)
	t.Nodes[t.Root].EdgeLen = 0
	t.PreOrder(func(i int) {
		p := t.Nodes[i].Parent
		if p == ctree.NoNode {
			return
		}
		if t.Nodes[i].SinkIdx != ctree.NoSink {
			// Leaves stay at their sink; EdgeLen was set by the merge.
			t.Nodes[i].Loc = t.Sinks[t.Nodes[i].SinkIdx].Loc
			return
		}
		t.Nodes[i].Loc = st[i].ms.ClosestPointTo(t.Nodes[p].Loc)
	})
	// Numerical safety: electrical length must cover geometric distance.
	for i := range t.Nodes {
		pi := t.Nodes[i].Parent
		if pi == ctree.NoNode {
			continue
		}
		d := t.Nodes[i].Loc.Dist(t.Nodes[pi].Loc)
		if t.Nodes[i].EdgeLen < d {
			if t.Nodes[i].EdgeLen < d-1e-6 {
				return fmt.Errorf("dme: internal error: edge %d→%d electrical length %.6f below distance %.6f",
					pi, i, t.Nodes[i].EdgeLen, d)
			}
			t.Nodes[i].EdgeLen = d
		}
	}
	return nil
}

// merge computes the merging segment of two child states and the edge
// lengths that equalize Elmore delay. It implements the classic zero-skew
// merge: the balance point is linear in the split position; infeasible
// splits snake the faster side.
func merge(a, b nodeState, p Params) (ms geom.TRR, ea, eb, delay, cap float64, err error) {
	c := p.CPerUm
	d := a.ms.Dist(b.ms)
	var x float64
	switch p.Model {
	case Linear:
		// ta + k·x = tb + k·(d−x) → x linear, trivially.
		x = (d + (b.delay-a.delay)/p.KPerUm) / 2
	case Repeated:
		// g(x) = (ta + D(x)) − (tb + D(d−x)) is monotone increasing with
		// repeater-count jumps; bisect to the balance locus.
		g := func(x float64) float64 {
			return a.delay + p.repeatedDelay(x) - b.delay - p.repeatedDelay(d-x)
		}
		switch {
		case g(0) >= 0:
			x = -1 // a is slower even with no wire: snake b
		case g(d) <= 0:
			x = d + 1 // b is slower: snake a
		default:
			lo, hi := 0.0, d
			for i := 0; i < 100; i++ {
				mid := (lo + hi) / 2
				if g(mid) <= 0 {
					lo = mid
				} else {
					hi = mid
				}
			}
			x = (lo + hi) / 2
		}
	default: // Elmore
		r := p.RPerUm
		// Solve ta + r·x(c·x/2 + Ca) = tb + r·(d−x)(c·(d−x)/2 + Cb); the
		// quadratic terms cancel, leaving x linear.
		den := r * (c*d + a.cap + b.cap)
		if den > 0 {
			x = (b.delay - a.delay + r*c*d*d/2 + r*b.cap*d) / den
		} else {
			// No wire and no cap on either side: any split works.
			x = d / 2
		}
	}
	switch {
	case x >= 0 && x <= d:
		ea, eb = x, d-x
		var ok bool
		ms, ok = geom.MergeRegion(a.ms, b.ms, ea, eb)
		if !ok {
			// Float rounding can leave the inflated regions short of
			// touching by an ulp; retry with a hair of slack.
			ms, ok = geom.MergeRegion(a.ms, b.ms, ea+1e-9, eb+1e-9)
			if !ok {
				return ms, 0, 0, 0, 0, fmt.Errorf("exact split infeasible (d=%g ea=%g)", d, ea)
			}
		}
	case x < 0:
		// Side a is too slow even with a zero-length edge: place the merge
		// on a's segment and snake b's edge.
		ea = 0
		if p.Model == Repeated {
			// Side a still pays its zero-length edge's junction repeater.
			eb = p.extendRepeated(d, a.delay+p.repeatedDelay(0)-b.delay-p.repeatedDelay(d))
		} else {
			eb = snakeLength(a.delay-b.delay, b.cap, p)
		}
		if eb < d {
			eb = d // numerical guard; cannot be shorter than the distance
		}
		var ok bool
		ms, ok = geom.MergeRegion(a.ms, b.ms, 0, eb)
		if !ok {
			return ms, 0, 0, 0, 0, fmt.Errorf("snaked merge infeasible (d=%g eb=%g)", d, eb)
		}
	default: // x > d
		eb = 0
		if p.Model == Repeated {
			ea = p.extendRepeated(d, b.delay+p.repeatedDelay(0)-a.delay-p.repeatedDelay(d))
		} else {
			ea = snakeLength(b.delay-a.delay, a.cap, p)
		}
		if ea < d {
			ea = d
		}
		var ok bool
		ms, ok = geom.MergeRegion(a.ms, b.ms, ea, 0)
		if !ok {
			return ms, 0, 0, 0, 0, fmt.Errorf("snaked merge infeasible (d=%g ea=%g)", d, ea)
		}
	}
	var da, db float64
	if p.Model == Repeated {
		// Fixed-point refinement: the junction repeater at the merge node
		// drives the first segment of *both* child edges, so each path is
		// undercharged by the other branch's share; the bisected split can
		// also land inside a repeater-count jump. Both residuals are
		// closed by extending the faster side (extension changes its first
		// segment, hence the junction charges — iterate).
		rp := p.Repeat
		for it := 0; it < 6; it++ {
			jA := rp.Rd*(p.CPerUm*p.firstSeg(eb)+rp.Cin) + rp.SlewPenalty
			jB := rp.Rd*(p.CPerUm*p.firstSeg(ea)+rp.Cin) + rp.SlewPenalty
			da = a.delay + p.repeatedDelay(ea) + jA
			db = b.delay + p.repeatedDelay(eb) + jB
			diff := db - da
			if math.Abs(diff) < 1e-16 {
				break
			}
			if diff > 0 {
				ea = p.extendRepeated(ea, diff)
			} else {
				eb = p.extendRepeated(eb, -diff)
			}
		}
		if ea+eb > d { // snaked/extended: recompute the merge region
			var ok bool
			ms, ok = geom.MergeRegion(a.ms, b.ms, ea, eb)
			if !ok {
				return ms, 0, 0, 0, 0, fmt.Errorf("extended merge infeasible (d=%g ea=%g eb=%g)", d, ea, eb)
			}
		}
	} else {
		da = a.delay + p.edgeDelay(ea, a.cap)
		db = b.delay + p.edgeDelay(eb, b.cap)
	}
	if db > da {
		da = db
	}
	delay = da + p.MergeDelay
	cap = a.cap + b.cap + c*(ea+eb)
	return ms, ea, eb, delay, cap, nil
}

// snakeLength returns the wire length e whose edge delay into downstream
// cap capLoad equals the given lag (s) — the snaked-edge length that slows
// the faster subtree into balance. Under the Elmore model this solves
// r·e·(c·e/2 + capLoad) = lag (positive quadratic root); under the linear
// model it is simply lag/k.
func snakeLength(lag, capLoad float64, p Params) float64 {
	if lag <= 0 {
		return 0
	}
	if p.Model == Linear {
		return lag / p.KPerUm
	}
	// (r·c/2)·e² + (r·capLoad)·e − lag = 0
	A := p.RPerUm * p.CPerUm / 2
	B := p.RPerUm * capLoad
	disc := B*B + 4*A*lag
	return (-B + math.Sqrt(disc)) / (2 * A)
}

// SubtreeDelay returns, for reporting, the balanced Elmore delay and total
// capacitance the embedding computed for the whole tree (root values).
func SubtreeDelay(t *ctree.Tree, p Params) (delay, totalCap float64, err error) {
	if err := p.Validate(); err != nil {
		return 0, 0, err
	}
	// Recompute bottom-up from the embedded tree: EdgeLen is authoritative.
	c := p.CPerUm
	delays := make([]float64, len(t.Nodes))
	caps := make([]float64, len(t.Nodes))
	var maxDelay float64
	t.PostOrder(func(i int) {
		n := &t.Nodes[i]
		if t.IsLeaf(i) {
			caps[i] = t.Sinks[n.SinkIdx].Cap
			delays[i] = t.Sinks[n.SinkIdx].Delay
		} else if t.NumKids(i) == 2 {
			delays[i] += p.MergeDelay
		}
		// Fold into the parent on the way up.
		if pi := n.Parent; pi != ctree.NoNode {
			e := n.EdgeLen
			dEdge := p.edgeDelay(e, caps[i])
			caps[pi] += caps[i] + c*e
			if dd := delays[i] + dEdge; dd > delays[pi] {
				delays[pi] = dd
			}
		}
	})
	maxDelay = delays[t.Root]
	return maxDelay, caps[t.Root], nil
}
