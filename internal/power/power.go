// Package power computes clock-network power from an STA capacitance
// inventory. The clock toggles every cycle (activity 1 by definition), so
// dynamic power is simply C·V²·f over all switched capacitance — wire,
// sink pins, buffer input pins, and buffer internal cap — plus summed
// buffer leakage. This is the metric smart NDR assignment minimizes.
package power

import (
	"fmt"

	"smartndr/internal/sta"
	"smartndr/internal/tech"
)

// Breakdown itemizes clock power, W.
type Breakdown struct {
	Wire     float64 `json:"wire"`     // wire switching
	SinkPins float64 `json:"sink"`     // sink pin switching
	BufPins  float64 `json:"buf_pins"` // buffer input pin switching
	BufInt   float64 `json:"buf_int"`  // buffer internal switching
	Leakage  float64 `json:"leakage"`  // buffer leakage
}

// Total returns the summed clock power, W.
func (b Breakdown) Total() float64 {
	return b.Wire + b.SinkPins + b.BufPins + b.BufInt + b.Leakage
}

// WireShare returns the wire fraction of total power.
func (b Breakdown) WireShare() float64 {
	t := b.Total()
	if t == 0 {
		return 0
	}
	return b.Wire / t
}

// String implements fmt.Stringer in mW.
func (b Breakdown) String() string {
	return fmt.Sprintf("total %.3f mW (wire %.3f, sinks %.3f, buf pins %.3f, buf int %.3f, leak %.3f)",
		b.Total()*1e3, b.Wire*1e3, b.SinkPins*1e3, b.BufPins*1e3, b.BufInt*1e3, b.Leakage*1e3)
}

// Compute derives the power breakdown of an analyzed clock network.
func Compute(res *sta.Result, te *tech.Tech) Breakdown {
	cv2f := te.Vdd * te.Vdd * te.Freq
	return Breakdown{
		Wire:     res.WireCap * cv2f,
		SinkPins: res.SinkCap * cv2f,
		BufPins:  res.BufInCap * cv2f,
		BufInt:   res.BufIntCap * cv2f,
		Leakage:  res.LeakageTot,
	}
}
