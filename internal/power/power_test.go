package power

import (
	"math"
	"strings"
	"testing"

	"smartndr/internal/cell"
	"smartndr/internal/ctree"
	"smartndr/internal/geom"
	"smartndr/internal/sta"
	"smartndr/internal/tech"
)

// analyzedPair returns an analyzed two-sink buffered tree.
func analyzedPair(t *testing.T, te *tech.Tech, lib *cell.Library) *sta.Result {
	t.Helper()
	sinks := []ctree.Sink{
		{Name: "s0", Loc: geom.Point{X: 0, Y: 0}, Cap: 2e-15},
		{Name: "s1", Loc: geom.Point{X: 1000, Y: 0}, Cap: 2e-15},
	}
	tr := ctree.NewTree(sinks, geom.Point{})
	l0 := tr.AddNode(ctree.Node{Parent: ctree.NoNode, Kids: [2]int{ctree.NoNode, ctree.NoNode}, SinkIdx: 0, Loc: sinks[0].Loc, EdgeLen: 500, BufIdx: ctree.NoBuf})
	l1 := tr.AddNode(ctree.Node{Parent: ctree.NoNode, Kids: [2]int{ctree.NoNode, ctree.NoNode}, SinkIdx: 1, Loc: sinks[1].Loc, EdgeLen: 500, BufIdx: ctree.NoBuf})
	r := tr.AddNode(ctree.Node{Parent: ctree.NoNode, Kids: [2]int{l0, l1}, SinkIdx: ctree.NoSink, Loc: geom.Point{X: 500, Y: 0}, BufIdx: 3})
	tr.Nodes[l0].Parent = r
	tr.Nodes[l1].Parent = r
	tr.Root = r
	tr.SetAllRules(te.DefaultRule)
	res, err := sta.Analyze(tr, te, lib, 40e-12)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestComputeMatchesHand(t *testing.T) {
	te := tech.Tech45()
	lib := cell.Default45()
	res := analyzedPair(t, te, lib)
	b := Compute(res, te)
	cv2f := te.Vdd * te.Vdd * te.Freq
	if math.Abs(b.Wire-res.WireCap*cv2f) > 1e-12 {
		t.Errorf("Wire = %g", b.Wire)
	}
	if math.Abs(b.SinkPins-4e-15*cv2f) > 1e-15 {
		t.Errorf("SinkPins = %g", b.SinkPins)
	}
	buf := &lib.Buffers[3]
	if math.Abs(b.BufPins-buf.InputCap*cv2f) > 1e-15 {
		t.Errorf("BufPins = %g", b.BufPins)
	}
	if math.Abs(b.BufInt-buf.InternalCap*cv2f) > 1e-15 {
		t.Errorf("BufInt = %g", b.BufInt)
	}
	if b.Leakage != buf.Leakage {
		t.Errorf("Leakage = %g", b.Leakage)
	}
	want := (res.TotalSwitchedCap())*cv2f + buf.Leakage
	if math.Abs(b.Total()-want) > want*1e-12 {
		t.Errorf("Total = %g, want %g", b.Total(), want)
	}
}

func TestPowerScalesWithFreqAndVdd(t *testing.T) {
	te := tech.Tech45()
	lib := cell.Default45()
	res := analyzedPair(t, te, lib)
	base := Compute(res, te)

	fast := tech.Tech45()
	fast.Freq *= 2
	if got := Compute(res, fast); math.Abs(got.Wire-2*base.Wire) > base.Wire*1e-9 {
		t.Error("dynamic power must double with frequency")
	}
	hot := tech.Tech45()
	hot.Vdd *= 2
	if got := Compute(res, hot); math.Abs(got.Wire-4*base.Wire) > base.Wire*1e-9 {
		t.Error("dynamic power must quadruple with Vdd doubling")
	}
}

func TestWireShare(t *testing.T) {
	te := tech.Tech45()
	lib := cell.Default45()
	b := Compute(analyzedPair(t, te, lib), te)
	share := b.WireShare()
	if share <= 0 || share >= 1 {
		t.Errorf("WireShare = %g", share)
	}
	if (Breakdown{}).WireShare() != 0 {
		t.Error("empty breakdown share must be 0")
	}
}

func TestString(t *testing.T) {
	te := tech.Tech45()
	lib := cell.Default45()
	s := Compute(analyzedPair(t, te, lib), te).String()
	if !strings.Contains(s, "total") || !strings.Contains(s, "mW") {
		t.Errorf("String = %q", s)
	}
}
