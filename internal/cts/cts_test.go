package cts

import (
	"math/rand"
	"testing"

	"smartndr/internal/cell"
	"smartndr/internal/ctree"
	"smartndr/internal/geom"
	"smartndr/internal/sta"
	"smartndr/internal/tech"
	"smartndr/internal/topo"
)

func randomSinks(n int, seed int64, spread float64) []ctree.Sink {
	rng := rand.New(rand.NewSource(seed))
	sinks := make([]ctree.Sink, n)
	for i := range sinks {
		sinks[i] = ctree.Sink{
			Name: "ff",
			Loc:  geom.Point{X: rng.Float64() * spread, Y: rng.Float64() * spread},
			Cap:  (1 + rng.Float64()*2) * 1e-15,
		}
	}
	return sinks
}

func TestBuildSmall(t *testing.T) {
	te := tech.Tech45()
	lib := cell.Default45()
	res, err := Build(randomSinks(8, 1, 100), geom.Point{X: 50, Y: 50}, te, lib, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.NumClusters != 1 {
		t.Errorf("100 µm spread should be one cluster, got %d", res.NumClusters)
	}
	if err := res.Tree.Validate(); err != nil {
		t.Fatal(err)
	}
	if res.Tree.Nodes[res.Tree.Root].BufIdx == ctree.NoBuf {
		t.Error("root must carry the driver")
	}
}

func TestBuildMeetsConstraints(t *testing.T) {
	te := tech.Tech45()
	lib := cell.Default45()
	for _, tc := range []struct {
		n      int
		spread float64
		seed   int64
	}{
		{50, 800, 2},
		{200, 2000, 3},
		{500, 4000, 4},
		{1000, 6000, 5},
	} {
		res, err := Build(randomSinks(tc.n, tc.seed, tc.spread), geom.Point{X: tc.spread / 2, Y: tc.spread / 2}, te, lib, Options{})
		if err != nil {
			t.Fatalf("n=%d: %v", tc.n, err)
		}
		tr := res.Tree
		if err := tr.Validate(); err != nil {
			t.Fatalf("n=%d: %v", tc.n, err)
		}
		if err := tr.CheckEmbedding(1e-6); err != nil {
			t.Fatalf("n=%d: %v", tc.n, err)
		}
		an, err := sta.Analyze(tr, te, lib, 40e-12)
		if err != nil {
			t.Fatalf("n=%d: %v", tc.n, err)
		}
		if v := an.SlewViolations(te.MaxSlew); v > 0 {
			worst, at := an.WorstSlew()
			t.Errorf("n=%d spread=%g: %d slew violations (worst %.1f ps at node %d, limit %.1f ps)",
				tc.n, tc.spread, v, worst*1e12, at, te.MaxSlew*1e12)
		}
		// Construction skew (pre-repair): the model-mismatch residual must
		// stay well-bounded; the optimizer's skew-repair pass (package
		// core) brings it under te.MaxSkew.
		if skew := an.Skew(); skew > 2*te.MaxSkew {
			t.Errorf("n=%d spread=%g: construction skew %.2f ps over %.2f ps",
				tc.n, tc.spread, skew*1e12, 2*te.MaxSkew*1e12)
		}
		if an.BufferCount < 1 {
			t.Errorf("n=%d: no buffers", tc.n)
		}
	}
}

func TestBuildClusterCountScales(t *testing.T) {
	te := tech.Tech45()
	lib := cell.Default45()
	small, err := Build(randomSinks(100, 7, 1500), geom.Point{}, te, lib, Options{})
	if err != nil {
		t.Fatal(err)
	}
	large, err := Build(randomSinks(400, 8, 3000), geom.Point{}, te, lib, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if large.NumClusters <= small.NumClusters {
		t.Errorf("4× sinks over 2× area should need more clusters: %d vs %d",
			large.NumClusters, small.NumClusters)
	}
}

func TestBuildStageCapsWithinBudget(t *testing.T) {
	te := tech.Tech45()
	lib := cell.Default45()
	res, err := Build(randomSinks(300, 9, 3500), geom.Point{X: 1750, Y: 1750}, te, lib, Options{})
	if err != nil {
		t.Fatal(err)
	}
	an, err := sta.Analyze(res.Tree, te, lib, 40e-12)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range an.Drivers {
		if c := an.StageCap[v]; c > 1.6*te.MaxCapPerStage {
			t.Errorf("stage at node %d: %.1f fF over budget %.1f fF",
				v, c*1e15, te.MaxCapPerStage*1e15)
		}
	}
}

func TestBuildBothTopologies(t *testing.T) {
	te := tech.Tech45()
	lib := cell.Default45()
	for _, m := range []topo.Method{topo.Bipartition, topo.NearestNeighbor} {
		res, err := Build(randomSinks(150, 11, 2500), geom.Point{X: 1250, Y: 1250}, te, lib, Options{Topology: m})
		if err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		an, err := sta.Analyze(res.Tree, te, lib, 40e-12)
		if err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		if skew := an.Skew(); skew > 2*te.MaxSkew {
			t.Errorf("%v: construction skew %.2f ps over bound", m, skew*1e12)
		}
	}
}

func TestBuildTech65(t *testing.T) {
	te := tech.Tech65()
	lib := cell.Default65()
	res, err := Build(randomSinks(200, 13, 3000), geom.Point{X: 1500, Y: 1500}, te, lib, Options{})
	if err != nil {
		t.Fatal(err)
	}
	an, err := sta.Analyze(res.Tree, te, lib, 40e-12)
	if err != nil {
		t.Fatal(err)
	}
	if v := an.SlewViolations(te.MaxSlew); v > 0 {
		t.Errorf("tech65: %d slew violations", v)
	}
	if skew := an.Skew(); skew > 2*te.MaxSkew {
		t.Errorf("tech65: construction skew %.2f ps over bound %.2f ps", skew*1e12, 2*te.MaxSkew*1e12)
	}
}

func TestBuildErrors(t *testing.T) {
	te := tech.Tech45()
	lib := cell.Default45()
	if _, err := Build(nil, geom.Point{}, te, lib, Options{}); err == nil {
		t.Error("empty sink set must fail")
	}
	if _, err := Build(randomSinks(4, 1, 10), geom.Point{}, te, lib, Options{ClusterCapFrac: 2}); err == nil {
		t.Error("cluster fraction > 1 must fail")
	}
	if _, err := Build(randomSinks(4, 1, 10), geom.Point{}, te, lib, Options{RefSlew: -1}); err == nil {
		t.Error("negative ref slew must fail")
	}
	badTech := tech.Tech45()
	badTech.Vdd = -1
	if _, err := Build(randomSinks(4, 1, 10), geom.Point{}, badTech, lib, Options{}); err == nil {
		t.Error("invalid tech must fail")
	}
}

func TestBuildSingleSink(t *testing.T) {
	te := tech.Tech45()
	lib := cell.Default45()
	res, err := Build(randomSinks(1, 17, 10), geom.Point{}, te, lib, Options{})
	if err != nil {
		t.Fatal(err)
	}
	an, err := sta.Analyze(res.Tree, te, lib, 40e-12)
	if err != nil {
		t.Fatal(err)
	}
	if an.Skew() != 0 {
		t.Error("one sink has zero skew by definition")
	}
}

func TestBuildHugeSinkCapGetsOwnCluster(t *testing.T) {
	te := tech.Tech45()
	lib := cell.Default45()
	sinks := randomSinks(20, 19, 500)
	sinks[0].Cap = te.MaxCapPerStage // pathological macro pin
	res, err := Build(sinks, geom.Point{X: 250, Y: 250}, te, lib, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Tree.Validate(); err != nil {
		t.Fatal(err)
	}
	if res.NumClusters < 2 {
		t.Errorf("macro pin should force multiple clusters, got %d", res.NumClusters)
	}
}

func TestSizeBuffersFitsLoads(t *testing.T) {
	te := tech.Tech45()
	lib := cell.Default45()
	res, err := Build(randomSinks(200, 23, 3000), geom.Point{X: 1500, Y: 1500}, te, lib, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// SizeBuffers is the optional slew-first repair: afterwards, every
	// buffer meets the bound at its stage load per its own table.
	blanketC := te.Layer.CPerUm(te.Rule(te.BlanketRule))
	SizeBuffers(res.Tree, lib, blanketC, 50e-12, te.MaxSlew)
	an, err := sta.Analyze(res.Tree, te, lib, 40e-12)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range an.Drivers {
		load := an.StageCap[v]
		b := &lib.Buffers[res.Tree.Nodes[v].BufIdx]
		if s := b.OutSlewAt(50e-12, load); s > te.MaxSlew*1.3 {
			t.Errorf("node %d: cell %s slew %.1f ps at %.1f fF", v, b.Name, s*1e12, load*1e15)
		}
	}
}

func BenchmarkBuild1k(b *testing.B) {
	te := tech.Tech45()
	lib := cell.Default45()
	sinks := randomSinks(1024, 29, 5000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Build(sinks, geom.Point{X: 2500, Y: 2500}, te, lib, Options{}); err != nil {
			b.Fatal(err)
		}
	}
}
