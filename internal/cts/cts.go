// Package cts orchestrates full clock-tree synthesis: from a bare sink set
// to a buffered, embedded, zero-skew (by construction, to model accuracy)
// clock tree ready for routing-rule assignment.
//
// The builder uses the classical two-phase hierarchical methodology:
//
// Phase A — leaf clusters. Sinks are partitioned geometrically into
// clusters whose total capacitance (wire + pins, under the blanket rule)
// fits one buffer stage. Each cluster gets a pure-wire Elmore DME subtree
// and a buffer at its tap point. The buffer input becomes a pseudo-sink
// carrying the cluster's insertion delay as an offset.
//
// Phase B — top tree. A single DME pass runs over the pseudo-sinks under a
// *linear* delay model: every top-level wire is a repeated line (identical
// repeaters at fixed spacing), whose delay is a constant per micron. The
// DME merge balances total arrival including the phase-A offsets, so skew
// is zero under the composite model. After embedding, edges are split at
// the repeater spacing and repeater cells are placed at every split and
// merge node (junction repeaters are common-mode: they delay both branches
// equally). A final sizing pass fits each buffer to its actual stage load.
//
// What remains as *real* skew — measured afterwards by package sta — is
// only the error of the composite model (table-vs-linear buffer delay,
// partial repeater segments), which is small and is further cleaned up by
// the optimizer's skew-repair pass.
package cts

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"smartndr/internal/buffering"
	"smartndr/internal/cell"
	"smartndr/internal/ctree"
	"smartndr/internal/dme"
	"smartndr/internal/geom"
	"smartndr/internal/obs"
	"smartndr/internal/sta"
	"smartndr/internal/tech"
	"smartndr/internal/topo"
)

// Options configure the builder.
type Options struct {
	// Topology picks the per-cluster and top-tree topology generator.
	Topology topo.Method
	// ClusterCapFrac is the fraction of MaxCapPerStage a leaf cluster may
	// fill (default 0.8).
	ClusterCapFrac float64
	// TopCapFrac is the fraction of MaxCapPerStage one repeated-line
	// segment may fill (default 0.5 — junction repeaters drive two
	// segments, so half a budget each keeps junction stages legal).
	TopCapFrac float64
	// RefSlew is the reference input transition used for cell selection
	// and linearization (default 50 ps).
	RefSlew float64
	// LinearTopModel switches the top-tree DME from the exact repeated-
	// line model to the amortized linear-rate model. The linear model
	// ignores the discreteness of repeater counts and leaves an extra
	// ±half-repeater-delay of construction skew per edge — kept as an
	// ablation knob (experiment A-model), not for production use.
	LinearTopModel bool
	// NoCalibration disables the STA feedback loop that cancels the
	// per-cluster common-mode model error (ablation knob). Construction
	// skew grows by roughly an order of magnitude without it.
	NoCalibration bool
	// Tracer, when non-nil, records per-phase construction spans
	// (clustering, leaf embedding, top embedding, calibration). Nil
	// disables instrumentation at no cost.
	Tracer *obs.Tracer
}

// clusterSlewMargin is the fraction of the slew budget a cluster buffer's
// lumped output transition may use; the rest covers in-cluster wire slew.
const clusterSlewMargin = 0.6

// calibrationIters bounds the STA-feedback rebuild loop; deviations shrink
// superlinearly, so a few rounds reach STA-level balance.
const calibrationIters = 8

// trimDamping under-corrects each trim iteration: lengthening a leaf edge
// also loads its upstream junction, which the trim estimate does not see.
const trimDamping = 0.9

// debugCalibration prints per-iteration calibration spread (tests only).
var debugCalibration = false

// withDefaults fills unset options.
func (o Options) withDefaults() Options {
	if o.ClusterCapFrac == 0 {
		o.ClusterCapFrac = 0.8
	}
	if o.TopCapFrac == 0 {
		o.TopCapFrac = 0.5
	}
	if o.RefSlew == 0 {
		o.RefSlew = 50e-12
	}
	return o
}

// Validate checks the options.
func (o Options) Validate() error {
	o = o.withDefaults()
	if o.ClusterCapFrac <= 0 || o.ClusterCapFrac > 1 {
		return fmt.Errorf("cts: cluster cap fraction %g out of (0,1]", o.ClusterCapFrac)
	}
	if o.TopCapFrac <= 0 || o.TopCapFrac > 1 {
		return fmt.Errorf("cts: top cap fraction %g out of (0,1]", o.TopCapFrac)
	}
	if o.RefSlew <= 0 {
		return fmt.Errorf("cts: non-positive reference slew %g", o.RefSlew)
	}
	return nil
}

// Result is a built clock tree plus construction telemetry.
type Result struct {
	Tree *ctree.Tree
	// NumClusters is the number of phase-A leaf clusters.
	NumClusters int
	// Repeater is the planned repeated-line configuration of phase B
	// (zero-valued when the whole design fit in one cluster).
	Repeater buffering.RepeatedLine
	// TopDelay is the model-predicted source-to-sink insertion delay, s.
	TopDelay float64
}

// Build synthesizes a buffered clock tree over the sinks. All edges carry
// the technology's blanket rule; rule optimization happens downstream.
func Build(sinks []ctree.Sink, src geom.Point, te *tech.Tech, lib *cell.Library, opt Options) (*Result, error) {
	if len(sinks) == 0 {
		return nil, errors.New("cts: no sinks")
	}
	if err := te.Validate(); err != nil {
		return nil, err
	}
	if err := lib.Validate(); err != nil {
		return nil, err
	}
	if err := opt.Validate(); err != nil {
		return nil, err
	}
	opt = opt.withDefaults()
	tr := opt.Tracer
	sp := tr.Start("cts.build", obs.I("sinks", len(sinks)))
	defer sp.End()
	blanket := te.Rule(te.BlanketRule)
	r := te.Layer.RPerUm(blanket)
	c := te.Layer.CPerUm(blanket)
	wireP := dme.Params{Model: dme.Elmore, RPerUm: r, CPerUm: c}

	// Plan the top-level repeated line up front: its steady-state input
	// transition is the slew every repeater *and* every cluster buffer
	// actually sees, so all delay estimates below linearize around it.
	rl, err := buffering.PlanRepeatedLine(lib, r, c, opt.TopCapFrac*te.MaxCapPerStage, te.MaxSlew, opt.RefSlew)
	if err != nil {
		return nil, err
	}
	estSlew := rl.SteadySlew

	// ---- Phase A: cluster, embed, leaf-buffer. ----
	clSpan := tr.Start("cluster")
	defer clSpan.End() // error paths; no-op after the explicit End below
	idx := make([]int, len(sinks))
	for i := range idx {
		idx[i] = i
	}
	var clusters [][]int
	budget := opt.ClusterCapFrac * te.MaxCapPerStage
	if err := clusterize(sinks, idx, budget, wireP, opt.Topology, &clusters); err != nil {
		return nil, err
	}
	clSpan.Set("clusters", len(clusters))
	clSpan.End()
	leafSpan := tr.Start("leaf_embed")
	defer leafSpan.End() // error paths; no-op after the explicit End below

	type clusterTree struct {
		tree   *ctree.Tree
		member []int // original sink index per cluster-local sink
		pseudo ctree.Sink
		bufIdx int
	}
	cts := make([]clusterTree, 0, len(clusters))
	for _, members := range clusters {
		sub := make([]ctree.Sink, len(members))
		for i, m := range members {
			sub[i] = sinks[m]
		}
		tr, err := topo.Build(opt.Topology, sub, src)
		if err != nil {
			return nil, err
		}
		if err := dme.Embed(tr, wireP); err != nil {
			return nil, fmt.Errorf("cts: cluster embed: %w", err)
		}
		tr.SetAllRules(te.BlanketRule)
		delay, cap, err := dme.SubtreeDelay(tr, wireP)
		if err != nil {
			return nil, err
		}
		// Margin on the slew target: the buffer's output transition
		// degrades further across the cluster's distributed wire, so the
		// lumped check must leave headroom.
		b, _ := lib.SmallestMeeting(estSlew, cap, clusterSlewMargin*te.MaxSlew)
		bi := cellIndex(lib, b)
		tr.Nodes[tr.Root].BufIdx = bi
		cts = append(cts, clusterTree{
			tree:   tr,
			member: members,
			pseudo: ctree.Sink{
				Name:  "clusterbuf",
				Loc:   tr.Nodes[tr.Root].Loc,
				Cap:   b.InputCap,
				Delay: delay + b.DelayAt(estSlew, cap),
			},
			bufIdx: bi,
		})
	}

	leafSpan.End()

	// ---- Single-cluster short-circuit. ----
	if len(cts) == 1 {
		final := rebaseCluster(cts[0].tree, cts[0].member, sinks, src)
		res := &Result{Tree: final, NumClusters: 1, TopDelay: cts[0].pseudo.Delay}
		return res, final.Validate()
	}

	// ---- Phase B: top tree, then frozen-geometry balance trimming. ----
	//
	// The composite delay model (linearized repeaters, junction-load
	// fixed-point, slew-penalty constants) still leaves a small per-
	// cluster *common-mode* error: within a cluster the DME math and the
	// STA math are identical, so all construction skew lives between
	// clusters. Rebuilding the embedding from corrected offsets does not
	// converge — every re-embedding re-rolls the geometry-coupled error —
	// so instead the geometry is frozen after one embedding and only the
	// clusters' feeding edges are lengthened (repeater-aware snaking) to
	// slow early clusters into balance, measured by the real STA.
	b0 := &lib.Buffers[rl.CellIdx]
	lin := buffering.Linearize(b0, estSlew)
	segLoad := c*rl.Spacing + b0.InputCap
	outJ := b0.OutSlewAt(estSlew, 2*segLoad)
	var topP dme.Params
	if opt.LinearTopModel {
		topP = dme.Params{Model: dme.Linear, KPerUm: rl.KPerUm, CPerUm: c, MergeDelay: rl.JunctionDelay}
	} else {
		topP = dme.Params{
			Model:  dme.Repeated,
			RPerUm: r,
			CPerUm: c,
			Repeat: dme.RepeatParams{
				Rd: lin.Rd, T0: lin.T0, Cin: lin.Cin, Spacing: rl.Spacing,
				SlewPenalty: b0.DelayAt(outJ, segLoad) - b0.DelayAt(estSlew, segLoad),
			},
		}
	}
	topSpan := tr.Start("top_embed")
	defer topSpan.End() // error paths; no-op after the explicit End below
	pseudo := make([]ctree.Sink, len(cts))
	for i := range cts {
		pseudo[i] = cts[i].pseudo
	}
	topBase, err := topo.Build(opt.Topology, pseudo, src)
	if err != nil {
		return nil, err
	}
	if err := dme.Embed(topBase, topP); err != nil {
		return nil, fmt.Errorf("cts: top embed: %w", err)
	}
	topBase.SetAllRules(te.BlanketRule)
	topDelay, _, err := dme.SubtreeDelay(topBase, topP)
	if err != nil {
		return nil, err
	}
	// Locate each pseudo-sink's leaf node in the un-split top tree.
	leafOf := make([]int, len(cts))
	for i := range topBase.Nodes {
		if si := topBase.Nodes[i].SinkIdx; si != ctree.NoSink {
			leafOf[si] = i
		}
	}
	leafLen := make([]float64, len(cts))
	for ci, ln := range leafOf {
		leafLen[ci] = topBase.Nodes[ln].EdgeLen
	}
	trees := make([]*ctree.Tree, len(cts))
	members := make([][]int, len(cts))
	for i := range cts {
		trees[i] = cts[i].tree
		members[i] = cts[i].member
	}
	topSpan.End()
	iters := calibrationIters
	if opt.NoCalibration {
		iters = 1
	}
	calSpan := tr.Start("calibrate")
	defer calSpan.End() // error paths; no-op after the explicit End below
	lastSpread := 0.0
	calIters := 0
	var final *ctree.Tree
	clusterRoots := make([]int, len(cts))
	for iter := 0; iter < iters; iter++ {
		calIters = iter + 1
		topWork := topBase.Clone()
		for ci, ln := range leafOf {
			topWork.Nodes[ln].EdgeLen = leafLen[ci]
		}
		buffering.SplitLongEdges(topWork, rl.Spacing)
		// Repeaters at every internal (non-pseudo-sink) node.
		for i := range topWork.Nodes {
			if topWork.Nodes[i].SinkIdx == ctree.NoSink {
				topWork.Nodes[i].BufIdx = rl.CellIdx
			}
		}
		final = Stitch(sinks, src, topWork, trees, members, clusterRoots)
		if iter == iters-1 {
			break
		}
		an, err := sta.Analyze(final, te, lib, opt.RefSlew)
		if err != nil {
			return nil, err
		}
		arr := make([]float64, len(cts))
		arrMax := math.Inf(-1)
		for ci, rootID := range clusterRoots {
			arr[ci] = clusterSinkArrival(final, an, rootID)
			arrMax = math.Max(arrMax, arr[ci])
		}
		spread := 0.0
		for ci := range arr {
			lag := arrMax - arr[ci]
			if lag > spread {
				spread = lag
			}
			if lag > 1e-13 {
				leafLen[ci] = topP.ExtendForDelay(leafLen[ci], trimDamping*lag)
			}
		}
		lastSpread = spread
		if debugCalibration {
			fmt.Printf("cts: trim iter %d spread %.2f ps\n", iter, spread*1e12)
		}
		if spread < te.MaxSkew/4 {
			iters = iter + 2 // one final rebuild with the last trims
		}
	}

	calSpan.Set("iters", calIters)
	calSpan.Set("spread_ps", lastSpread*1e12)
	calSpan.End()

	// No post-hoc resizing: the cell choices above are exactly what the
	// DME offsets and the delay model assumed; changing them here would
	// reintroduce skew. SizeBuffers remains available for flows that trade
	// skew for slew margin.

	res := &Result{
		Tree:        final,
		NumClusters: len(cts),
		Repeater:    rl,
		TopDelay:    topDelay,
	}
	return res, final.Validate()
}

// clusterize recursively bipartitions sink index sets until each cluster's
// embedded capacitance fits the budget.
func clusterize(sinks []ctree.Sink, idx []int, budget float64, p dme.Params, m topo.Method, out *[][]int) error {
	if len(idx) == 1 {
		*out = append(*out, idx)
		return nil
	}
	sub := make([]ctree.Sink, len(idx))
	for i, si := range idx {
		sub[i] = sinks[si]
	}
	tr, err := topo.Build(m, sub, geom.Point{})
	if err != nil {
		return err
	}
	if err := dme.Embed(tr, p); err != nil {
		return err
	}
	_, cap, err := dme.SubtreeDelay(tr, p)
	if err != nil {
		return err
	}
	if cap <= budget {
		*out = append(*out, idx)
		return nil
	}
	// Median split along the longer bounding-box axis.
	bb := geom.NewEmptyBBox()
	for _, si := range idx {
		bb.Extend(sinks[si].Loc)
	}
	byX := bb.Width() >= bb.Height()
	sorted := append([]int(nil), idx...)
	sort.Slice(sorted, func(a, b int) bool {
		pa, pb := sinks[sorted[a]].Loc, sinks[sorted[b]].Loc
		if byX {
			if pa.X != pb.X {
				return pa.X < pb.X
			}
			return pa.Y < pb.Y
		}
		if pa.Y != pb.Y {
			return pa.Y < pb.Y
		}
		return pa.X < pb.X
	})
	mid := len(sorted) / 2
	if err := clusterize(sinks, sorted[:mid], budget, p, m, out); err != nil {
		return err
	}
	return clusterize(sinks, sorted[mid:], budget, p, m, out)
}

// rebaseCluster copies a cluster tree built over a sink subset into a tree
// over the full sink slice.
func rebaseCluster(t *ctree.Tree, member []int, sinks []ctree.Sink, src geom.Point) *ctree.Tree {
	final := ctree.NewTree(sinks, src)
	var paste func(srcNode, parent int) int
	paste = func(srcNode, parent int) int {
		n := t.Nodes[srcNode]
		cp := n
		cp.Parent = parent
		cp.Kids = [2]int{ctree.NoNode, ctree.NoNode}
		if n.SinkIdx != ctree.NoSink {
			cp.SinkIdx = member[n.SinkIdx]
		}
		id := final.AddNode(cp)
		slot := 0
		for _, k := range n.Kids {
			if k == ctree.NoNode {
				continue
			}
			final.Nodes[id].Kids[slot] = paste(k, id)
			slot++
		}
		return id
	}
	final.Root = paste(t.Root, ctree.NoNode)
	return final
}

// SizeBuffers refits every placed buffer to the smallest library cell that
// meets the slew bound at its actual stage load. Two passes let input-cap
// changes settle.
func SizeBuffers(t *ctree.Tree, lib *cell.Library, cPerUm, refSlew, maxSlew float64) {
	for pass := 0; pass < 2; pass++ {
		caps, drivers := buffering.StageCaps(t, lib, cPerUm)
		for _, v := range drivers {
			b, _ := lib.SmallestMeeting(refSlew, caps[v], maxSlew)
			t.Nodes[v].BufIdx = cellIndex(lib, b)
		}
	}
}

func cellIndex(lib *cell.Library, b *cell.Buffer) int {
	for i := range lib.Buffers {
		if lib.Buffers[i].Name == b.Name {
			return i
		}
	}
	return 0
}

// Stitch assembles a tree over the original sinks from a top tree whose
// pseudo-sink i stands for subtree trees[i]: each pseudo-sink leaf is
// replaced by its subtree, with the subtree's local sink indices mapped
// to global ones through members[i]. The subtree root inherits the leaf's
// feeding-edge attributes (length and rule); clusterRoots, sized
// len(trees) by the caller, records the final-tree node ID of each
// subtree's buffered root. The cts builder uses it to paste leaf clusters
// under the repeated-line top tree; the hierarchical flow reuses it one
// level up to paste whole region trees under the global top tree.
func Stitch(sinks []ctree.Sink, src geom.Point, top *ctree.Tree, trees []*ctree.Tree, members [][]int, clusterRoots []int) *ctree.Tree {
	final := ctree.NewTree(sinks, src)
	var paste func(srcT *ctree.Tree, srcNode, parent int, member []int) int
	paste = func(srcT *ctree.Tree, srcNode, parent int, member []int) int {
		n := srcT.Nodes[srcNode]
		cp := n
		cp.Parent = parent
		cp.Kids = [2]int{ctree.NoNode, ctree.NoNode}
		if n.SinkIdx != ctree.NoSink {
			cp.SinkIdx = member[n.SinkIdx]
		}
		id := final.AddNode(cp)
		slot := 0
		for _, k := range n.Kids {
			if k == ctree.NoNode {
				continue
			}
			final.Nodes[id].Kids[slot] = paste(srcT, k, id, member)
			slot++
		}
		return id
	}
	var pasteTop func(srcNode, parent int) int
	pasteTop = func(srcNode, parent int) int {
		n := top.Nodes[srcNode]
		if ci := n.SinkIdx; ci != ctree.NoSink {
			id := paste(trees[ci], trees[ci].Root, parent, members[ci])
			final.Nodes[id].EdgeLen = n.EdgeLen
			final.Nodes[id].Rule = n.Rule
			clusterRoots[ci] = id
			return id
		}
		cp := n
		cp.Parent = parent
		cp.Kids = [2]int{ctree.NoNode, ctree.NoNode}
		id := final.AddNode(cp)
		slot := 0
		for _, k := range n.Kids {
			if k == ctree.NoNode {
				continue
			}
			final.Nodes[id].Kids[slot] = pasteTop(k, id)
			slot++
		}
		return id
	}
	final.Root = pasteTop(top.Root, ctree.NoNode)
	return final
}

// clusterSinkArrival returns the arrival of the first sink found under the
// given cluster root; all sinks of a cluster arrive together (the cluster
// DME and STA use the same wire math), so one sample represents the
// cluster.
func clusterSinkArrival(t *ctree.Tree, an *sta.Result, root int) float64 {
	stack := []int{root}
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if t.Nodes[v].SinkIdx != ctree.NoSink {
			return an.Arrival[v]
		}
		for _, k := range t.Nodes[v].Kids {
			if k != ctree.NoNode {
				stack = append(stack, k)
			}
		}
	}
	return 0
}
