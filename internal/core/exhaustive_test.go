package core

import (
	"math/rand"
	"testing"

	"smartndr/internal/cell"
	"smartndr/internal/ctree"
	"smartndr/internal/cts"
	"smartndr/internal/geom"
	"smartndr/internal/sta"
	"smartndr/internal/tech"
)

// tinyTree builds a small buffered tree (few sinks → few edges) suitable
// for exhaustive search.
func tinyTree(t testing.TB, nSinks int, seed int64) (*ctree.Tree, *tech.Tech, *cell.Library) {
	t.Helper()
	te := tech.Tech45()
	lib := cell.Default45()
	rng := rand.New(rand.NewSource(seed))
	sinks := make([]ctree.Sink, nSinks)
	for i := range sinks {
		sinks[i] = ctree.Sink{
			Loc: geom.Point{X: rng.Float64() * 300, Y: rng.Float64() * 300},
			Cap: (1 + rng.Float64()) * 1e-15,
		}
	}
	res, err := cts.Build(sinks, geom.Point{X: 150, Y: 150}, te, lib, cts.Options{})
	if err != nil {
		t.Fatal(err)
	}
	res.Tree.SetAllRules(te.BlanketRule)
	return res.Tree, te, lib
}

func TestExhaustiveFindsFeasible(t *testing.T) {
	tr, te, lib := tinyTree(t, 4, 5)
	res, err := ExhaustiveOptimal(tr, te, lib, 40e-12, te.MaxSlew, te.MaxSkew)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Feasible {
		t.Fatal("tiny tree must have a feasible assignment (blanket is one)")
	}
	if res.Evaluated == 0 {
		t.Fatal("nothing evaluated")
	}
	// The optimum can be no worse than the blanket assignment.
	an, err := sta.Analyze(tr, te, lib, 40e-12)
	if err != nil {
		t.Fatal(err)
	}
	if res.BestCap > an.TotalSwitchedCap() {
		t.Errorf("optimal %.3f pF worse than blanket %.3f pF",
			res.BestCap*1e12, an.TotalSwitchedCap()*1e12)
	}
	// The returned assignment reproduces the reported cap and is legal.
	if err := ApplyRules(tr, res.BestRules); err != nil {
		t.Fatal(err)
	}
	an2, err := sta.Analyze(tr, te, lib, 40e-12)
	if err != nil {
		t.Fatal(err)
	}
	if diff := an2.TotalSwitchedCap() - res.BestCap; diff > 1e-20 || diff < -1e-20 {
		t.Errorf("assignment does not reproduce BestCap: %g vs %g", an2.TotalSwitchedCap(), res.BestCap)
	}
	worst, _ := an2.WorstSlew()
	if worst > te.MaxSlew || an2.Skew() > te.MaxSkew {
		t.Error("reported optimum violates constraints")
	}
}

func TestExhaustiveRestoresTree(t *testing.T) {
	tr, te, lib := tinyTree(t, 3, 7)
	before := make([]int, len(tr.Nodes))
	for i := range tr.Nodes {
		before[i] = tr.Nodes[i].Rule
	}
	if _, err := ExhaustiveOptimal(tr, te, lib, 40e-12, te.MaxSlew, te.MaxSkew); err != nil {
		t.Fatal(err)
	}
	for i := range tr.Nodes {
		if tr.Nodes[i].Rule != before[i] {
			t.Fatal("search must restore the caller's assignment")
		}
	}
}

func TestExhaustiveRejectsBigTrees(t *testing.T) {
	tr, te, lib := tinyTree(t, 30, 11)
	if _, err := ExhaustiveOptimal(tr, te, lib, 40e-12, te.MaxSlew, te.MaxSkew); err == nil {
		t.Error("big tree must be rejected")
	}
}

func TestGreedyNearOptimalOnTinyTrees(t *testing.T) {
	// The optimality-gap claim behind experiment A4: on exhaustively
	// solvable instances, the greedy lands within a few percent of the
	// true optimum under identical constraints.
	worstGap := 0.0
	for seed := int64(1); seed <= 6; seed++ {
		tr, te, lib := tinyTree(t, 4, seed)
		opt, err := ExhaustiveOptimal(tr, te, lib, 40e-12, te.MaxSlew, te.MaxSkew)
		if err != nil {
			t.Fatal(err)
		}
		if !opt.Feasible {
			continue
		}
		greedy := tr.Clone()
		if _, err := Optimize(greedy, te, lib, Config{DisableRepair: true}); err != nil {
			t.Fatal(err)
		}
		an, err := sta.Analyze(greedy, te, lib, 40e-12)
		if err != nil {
			t.Fatal(err)
		}
		gap := an.TotalSwitchedCap()/opt.BestCap - 1
		if gap > worstGap {
			worstGap = gap
		}
		if gap < -1e-9 {
			// Greedy "better than optimal" would mean it broke a
			// constraint the oracle respected.
			worst, _ := an.WorstSlew()
			if worst <= te.MaxSlew && an.Skew() <= te.MaxSkew {
				t.Fatalf("seed %d: greedy %.4f pF beats 'optimal' %.4f pF legally — oracle bug",
					seed, an.TotalSwitchedCap()*1e12, opt.BestCap*1e12)
			}
		}
	}
	if worstGap > 0.10 {
		t.Errorf("greedy optimality gap %.1f%% exceeds 10%%", worstGap*100)
	}
	t.Logf("worst greedy gap over tiny instances: %.2f%%", worstGap*100)
}

func TestApplyRulesLengthCheck(t *testing.T) {
	tr, _, _ := tinyTree(t, 3, 13)
	if err := ApplyRules(tr, []int{1}); err == nil {
		t.Error("length mismatch must fail")
	}
}
