package core

import (
	"math"
	"sort"

	"smartndr/internal/cell"
	"smartndr/internal/ctree"
	"smartndr/internal/sta"
	"smartndr/internal/tech"
)

// Stats reports what Optimize did.
type Stats struct {
	Passes     int     // downgrade sweeps executed
	Downgrades int     // accepted rule reductions
	Upgrades   int     // accepted rule strengthenings (violation recovery)
	CapBefore  float64 // switched cap before optimization, F
	CapAfter   float64 // switched cap after optimization (incl. repair wire), F
	RepairWire float64 // wirelength added by skew repair, µm
	FinalSkew  float64 // s
	FinalSlew  float64 // s, worst transition
}

// debugOptimize enables diagnostic prints (tests only).
var debugOptimize = false

// sinkSpan maps tree nodes to contiguous ranges of DFS-ordered sinks, so a
// subtree arrival shift is one segment-tree range-add.
type sinkSpan struct {
	lo, hi []int // per node: sink positions [lo, hi); empty if lo >= hi
	node   []int // sink position → sink node index
}

func newSinkSpan(t *ctree.Tree) *sinkSpan {
	s := &sinkSpan{lo: make([]int, len(t.Nodes)), hi: make([]int, len(t.Nodes))}
	var walk func(v int)
	walk = func(v int) {
		s.lo[v] = len(s.node)
		if t.Nodes[v].SinkIdx != ctree.NoSink {
			s.node = append(s.node, v)
		}
		for _, k := range t.Nodes[v].Kids {
			if k != ctree.NoNode {
				walk(k)
			}
		}
		s.hi[v] = len(s.node)
	}
	walk(t.Root)
	return s
}

// Optimize performs smart NDR assignment on a buffered clock tree.
//
// Flow: (1) an initial skew repair balances the construction residue;
// (2) downgrade sweeps visit every buffer stage and move each edge to the
// cheapest rule class that keeps all stage transitions within the derated
// slew bound AND keeps the *global* skew within budget — the skew effect
// of shifting whole subtrees is tracked exactly with a segment tree;
// (3) a violation-recovery sweep upgrades any stage that the second-order
// slew cascade (input-slew drift across stages) pushed over the bound;
// (4) a final skew repair absorbs the residue. Rules and edge lengths are
// modified in place.
func Optimize(t *ctree.Tree, te *tech.Tech, lib *cell.Library, cfg Config) (*Stats, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults(te)
	stats := &Stats{}
	res, err := sta.Analyze(t, te, lib, cfg.InSlew)
	if err != nil {
		return nil, err
	}
	stats.CapBefore = res.TotalSwitchedCap()
	slewLimit := cfg.MaxSlew * cfg.SlewSafety

	if !cfg.DisableRepair {
		rep, err := RepairSkew(t, te, lib, cfg.InSlew, cfg.MaxSkew, cfg.RepairIters)
		if err != nil {
			return nil, err
		}
		stats.RepairWire += rep.AddedWire
	}

	span := newSinkSpan(t)
	byCap := rulesByCap(te)

	var emFloor []float64

	for pass := 0; pass < cfg.MaxPasses; pass++ {
		res, err = sta.Analyze(t, te, lib, cfg.InSlew)
		if err != nil {
			return nil, err
		}
		if cfg.EM != nil {
			// EM width floors against the *current* parasitics: early
			// passes see the conservative (heavier-wire) floors, later
			// passes relax them as downstream capacitance drops — the
			// assignment converges to the floors of its own final state.
			emFloor, err = EMFloors(t, te, lib, cfg.InSlew, *cfg.EM)
			if err != nil {
				return nil, err
			}
		}
		// Skew budget: never worse than what we started the pass with,
		// and no worse than the bound when we are inside it.
		arrivals := make([]float64, len(span.node))
		for pos, v := range span.node {
			arrivals[pos] = res.Arrival[v]
		}
		at := newArrTree(arrivals)
		// Stay comfortably inside the bound: the stage-model arrivals the
		// segment tree tracks drift slightly from full STA (input-slew
		// cascades), so targeting 80% of the bound keeps the *real* final
		// skew under it without needing a heavy repair afterwards.
		skewBudget := 0.8 * cfg.MaxSkew
		if s := res.Skew(); s > skewBudget {
			skewBudget = s
		}

		changed := 0
		for _, u := range stageDrivers(t) {
			se := newStageEval(t, te, lib, u)
			if len(se.nodes) == 0 {
				continue
			}
			inSlew := res.Slew[u]
			cur := se.eval(inSlew)
			if cur.worstSlew > slewLimit {
				continue // no headroom; recovery sweep handles true violations
			}
			for _, v := range se.candidateOrder(cfg.Order, byCap) {
				curCost := te.Layer.CPerUm(te.Rule(t.Nodes[v].Rule))
				for _, ri := range byCap {
					if te.Layer.CPerUm(te.Rule(ri)) >= curCost {
						break // remaining candidates are not cheaper
					}
					if emFloor != nil && te.Rule(ri).WMult < emFloor[v] {
						continue // below the electromigration width floor
					}
					old := t.Nodes[v].Rule
					t.Nodes[v].Rule = ri
					cand := se.eval(inSlew)
					if cand.worstSlew > slewLimit ||
						se.maxEndpointShift(cand, cur) > cfg.EdgeDeltaCap {
						t.Nodes[v].Rule = old
						continue
					}
					// Exact global skew check: shift each endpoint's sink
					// subtree by its arrival delta.
					se.applyShifts(at, span, cand, cur)
					if at.Skew() > skewBudget {
						se.applyShifts(at, span, cur, cand) // revert
						t.Nodes[v].Rule = old
						continue
					}
					cur = cand
					changed++
					stats.Downgrades++
					break // cheapest passing rule wins
				}
			}
		}
		stats.Passes++
		if changed == 0 {
			break
		}
	}

	// Constraint cleanup: skew repair and slew recovery interact — snakes
	// can push marginal transitions over the bound, and recovery upgrades
	// shift arrivals — so the two alternate until both are clean (or no
	// move helps). Repair itself is slew-safe (it rolls back iterations
	// that create violations), and a fresh call restarts its adaptive
	// damping, so re-invoking it after upgrades keeps making progress.
	stats.Upgrades += recoverViolations(t, te, lib, cfg, slewLimit, cfg.MaxSlew, byCap)
	if !cfg.DisableRepair {
		prevRepair := math.Inf(1)
		for round := 0; round < 8; round++ {
			rep, err := RepairSkew(t, te, lib, cfg.InSlew, cfg.MaxSkew, cfg.RepairIters)
			if err != nil {
				return nil, err
			}
			stats.RepairWire += rep.AddedWire
			up := recoverViolations(t, te, lib, cfg, slewLimit, cfg.MaxSlew, byCap)
			stats.Upgrades += up
			if rep.Converged && up == 0 {
				break
			}
			if up == 0 && rep.FinalSkew >= prevRepair*0.995 {
				// Stuck on skew with clean transitions: buy headroom on
				// the tight stages and let the next repair use it.
				headroom := 0.90 * cfg.MaxSlew
				hr := recoverViolations(t, te, lib, cfg, headroom, headroom, byCap)
				stats.Upgrades += hr
				if hr == 0 {
					break // nothing left to upgrade; accept the residual
				}
			}
			prevRepair = rep.FinalSkew
		}
	}
	res, err = sta.Analyze(t, te, lib, cfg.InSlew)
	if err != nil {
		return nil, err
	}
	stats.CapAfter = res.TotalSwitchedCap()
	stats.FinalSkew = res.Skew()
	stats.FinalSlew, _ = res.WorstSlew()
	return stats, nil
}

// recoverViolations upgrades rule classes and, when drive-limited, the
// stage drivers of every stage violating the slew limit, iterating against
// fresh full analyses until clean or stuck. Returns the upgrade count.
// enforceLimit is the per-stage target upgrades aim for; exitLimit is the
// global transition level that counts as "clean".
func recoverViolations(t *ctree.Tree, te *tech.Tech, lib *cell.Library, cfg Config, enforceLimit, exitLimit float64, byCap []int) int {
	total := 0
	for round := 0; round < 5; round++ {
		res, err := sta.Analyze(t, te, lib, cfg.InSlew)
		if err != nil {
			return total
		}
		if res.SlewViolations(exitLimit) == 0 {
			return total
		}
		fixed := 0
		for _, u := range stageDrivers(t) {
			se := newStageEval(t, te, lib, u)
			if len(se.nodes) == 0 {
				continue
			}
			inSlew := res.Slew[u]
			if se.eval(inSlew).worstSlew <= enforceLimit {
				continue
			}
			fixed += se.upgradeUntilMet(inSlew, enforceLimit, byCap)
			// Rule upgrades alone cannot fix a drive-limited stage: the
			// transition is dominated by the driver's output slew at its
			// load. Upsize the driver until the stage meets or the library
			// tops out.
			for se.eval(inSlew).worstSlew > enforceLimit &&
				t.Nodes[u].BufIdx < len(lib.Buffers)-1 {
				t.Nodes[u].BufIdx++
				fixed++
			}
		}
		total += fixed
		if fixed == 0 {
			return total
		}
	}
	return total
}

// applyShifts moves the arrival tree from state `from` to state `to` by
// range-adding each endpoint's delta over its sink span.
func (se *stageEval) applyShifts(at *arrTree, span *sinkSpan, to, from stageState) {
	for i, v := range se.nodes {
		if !se.endpoint[i] {
			continue
		}
		if d := to.arr[i] - from.arr[i]; d != 0 {
			at.Add(span.lo[v], span.hi[v]-1, d)
		}
	}
}

// candidateOrder returns the stage's edge nodes in the configured order.
func (se *stageEval) candidateOrder(o Order, byCap []int) []int {
	out := append([]int(nil), se.nodes...)
	switch o {
	case ByIndex:
		sort.Ints(out)
	case ByReverse:
		sort.Sort(sort.Reverse(sort.IntSlice(out)))
	default: // BySensitivity: largest cap saving first
		cheapest := byCap[0]
		gain := func(v int) float64 {
			nd := &se.t.Nodes[v]
			return nd.EdgeLen * (se.te.Layer.CPerUm(se.te.Rule(nd.Rule)) -
				se.te.Layer.CPerUm(se.te.Rule(cheapest)))
		}
		sort.Slice(out, func(a, b int) bool { return gain(out[a]) > gain(out[b]) })
	}
	return out
}

// upgradeUntilMet strengthens stage edges (the change that improves the
// stage's worst transition most, first) until the stage meets the slew
// limit or no upgrade helps. Returns the number of upgrades applied.
func (se *stageEval) upgradeUntilMet(inSlew, slewLimit float64, byCap []int) int {
	n := 0
	for guard := 0; guard < len(se.nodes)*len(byCap)+1; guard++ {
		base := se.eval(inSlew)
		if base.worstSlew <= slewLimit {
			return n
		}
		bestV, bestRule := -1, -1
		bestSlew := base.worstSlew
		for _, v := range se.nodes {
			old := se.t.Nodes[v].Rule
			for _, ri := range byCap {
				if ri == old {
					continue
				}
				se.t.Nodes[v].Rule = ri
				cand := se.eval(inSlew)
				if cand.worstSlew < bestSlew {
					bestSlew = cand.worstSlew
					bestV, bestRule = v, ri
				}
			}
			se.t.Nodes[v].Rule = old
		}
		if bestV < 0 {
			return n // nothing helps
		}
		se.t.Nodes[bestV].Rule = bestRule
		n++
	}
	return n
}

// rulesByCap returns rule indices sorted by capacitance per micron,
// cheapest first.
func rulesByCap(te *tech.Tech) []int {
	out := make([]int, te.NumRules())
	for i := range out {
		out[i] = i
	}
	sort.Slice(out, func(a, b int) bool {
		return te.Layer.CPerUm(te.Rule(out[a])) < te.Layer.CPerUm(te.Rule(out[b]))
	})
	return out
}
