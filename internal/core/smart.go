package core

import (
	"math"
	"sort"

	"smartndr/internal/cell"
	"smartndr/internal/ctree"
	"smartndr/internal/obs"
	"smartndr/internal/sta"
	"smartndr/internal/tech"
)

// Stats reports what Optimize did. The per-pass slices are always
// populated (no sink or tracer required), so library users get
// iteration-level telemetry from the return value alone.
type Stats struct {
	Passes     int     // downgrade sweeps executed
	Downgrades int     // accepted rule reductions
	Upgrades   int     // accepted rule strengthenings (violation recovery)
	CapBefore  float64 // switched cap before optimization, F
	CapAfter   float64 // switched cap after optimization (incl. repair wire), F
	RepairWire float64 // wirelength added by skew repair, µm
	FinalSkew  float64 // s
	FinalSlew  float64 // s, worst transition

	// PassDowngrades[p] is the number of downgrades accepted in sweep p.
	PassDowngrades []int
	// PassCapDelta[p] is the switched-capacitance reduction achieved by
	// sweep p, F (measured by the next full analysis; the last entry is
	// measured against the post-cleanup final state).
	PassCapDelta []float64
	// RepairRounds counts skew-repair invocations (initial balance plus
	// every cleanup alternation).
	RepairRounds int
	// RecoverRounds counts violation-recovery sweeps in the cleanup
	// alternation (including the headroom passes).
	RecoverRounds int
}

// debugOptimize enables diagnostic prints (tests only).
var debugOptimize = false

// sinkSpan maps tree nodes to contiguous ranges of DFS-ordered sinks, so a
// subtree arrival shift is one segment-tree range-add.
type sinkSpan struct {
	lo, hi []int // per node: sink positions [lo, hi); empty if lo >= hi
	node   []int // sink position → sink node index
}

func newSinkSpan(t *ctree.Tree) *sinkSpan {
	s := &sinkSpan{lo: make([]int, len(t.Nodes)), hi: make([]int, len(t.Nodes))}
	// Explicit-stack DFS: degenerate trees (tens of thousands of serial
	// nodes) must not grow a recursion frame per node. A node is pushed
	// twice — first visit assigns lo and expands kids, second (after the
	// whole subtree) assigns hi.
	type frame struct {
		node int
		exit bool
	}
	stack := []frame{{t.Root, false}}
	for len(stack) > 0 {
		f := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		v := f.node
		if f.exit {
			s.hi[v] = len(s.node)
			continue
		}
		s.lo[v] = len(s.node)
		if t.Nodes[v].SinkIdx != ctree.NoSink {
			s.node = append(s.node, v)
		}
		stack = append(stack, frame{v, true})
		// Push kids in reverse so they pop in natural order, preserving
		// the recursive version's DFS sink numbering exactly.
		kids := t.Nodes[v].Kids
		for i := len(kids) - 1; i >= 0; i-- {
			if kids[i] != ctree.NoNode {
				stack = append(stack, frame{kids[i], false})
			}
		}
	}
	return s
}

// Optimize performs smart NDR assignment on a buffered clock tree.
//
// Flow: (1) an initial skew repair balances the construction residue;
// (2) downgrade sweeps visit every buffer stage and move each edge to the
// cheapest rule class that keeps all stage transitions within the derated
// slew bound AND keeps the *global* skew within budget — the skew effect
// of shifting whole subtrees is tracked exactly with a segment tree;
// (3) a violation-recovery sweep upgrades any stage that the second-order
// slew cascade (input-slew drift across stages) pushed over the bound;
// (4) a final skew repair absorbs the residue. Rules and edge lengths are
// modified in place.
func Optimize(t *ctree.Tree, te *tech.Tech, lib *cell.Library, cfg Config) (*Stats, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults(te)
	tr := cfg.Tracer
	sp := tr.Start("core.optimize", obs.I("nodes", len(t.Nodes)))
	defer sp.End()
	stats := &Stats{}
	// One timing engine for the whole run: every analysis below shares its
	// buffers, and with the incremental path enabled (the default) each
	// query recomputes only the region the preceding edits dirtied. The
	// two modes are bitwise identical, so the knob never changes a result.
	tim := sta.NewIncremental(te, lib)
	if cfg.DisableIncrementalSTA {
		tim.Disable()
	}
	res, err := tim.Analyze(t, cfg.InSlew)
	if err != nil {
		return nil, err
	}
	stats.CapBefore = res.TotalSwitchedCap()
	slewLimit := cfg.MaxSlew * cfg.SlewSafety

	if !cfg.DisableRepair {
		rsp := tr.Start("init_repair")
		defer rsp.End() // error paths; no-op after the explicit End below
		rep, err := repairToTargets(tim, t, te, lib, cfg.InSlew, nil, cfg.MaxSkew, cfg.RepairIters)
		if err != nil {
			return nil, err
		}
		stats.RepairWire += rep.AddedWire
		stats.RepairRounds++
		rsp.Set("iters", rep.Iters)
		rsp.Set("added_wire_um", rep.AddedWire)
		rsp.End()
	}

	span := newSinkSpan(t)
	byCap := rulesByCap(te)

	var emFloor []float64
	var passCap []float64 // switched cap observed at the start of each sweep

	for pass := 0; pass < cfg.MaxPasses; pass++ {
		psp := tr.Start("pass", obs.I("pass", pass))
		res, err = tim.Analyze(t, cfg.InSlew)
		if err != nil {
			psp.End()
			return nil, err
		}
		passCap = append(passCap, res.TotalSwitchedCap())
		if cfg.EM != nil {
			// EM width floors against the *current* parasitics: early
			// passes see the conservative (heavier-wire) floors, later
			// passes relax them as downstream capacitance drops — the
			// assignment converges to the floors of its own final state.
			// Through the shared engine this analysis is free: nothing
			// changed since the pass-top query, so it is served from cache.
			emFloor, err = emFloors(tim, t, te, cfg.InSlew, *cfg.EM)
			if err != nil {
				psp.End()
				return nil, err
			}
		}
		// Skew budget: never worse than what we started the pass with,
		// and no worse than the bound when we are inside it.
		arrivals := make([]float64, len(span.node))
		for pos, v := range span.node {
			arrivals[pos] = res.Arrival[v]
		}
		at := newArrTree(arrivals)
		// Stay comfortably inside the bound: the stage-model arrivals the
		// segment tree tracks drift slightly from full STA (input-slew
		// cascades), so targeting 80% of the bound keeps the *real* final
		// skew under it without needing a heavy repair afterwards.
		skewBudget := 0.8 * cfg.MaxSkew
		if s := res.Skew(); s > skewBudget {
			skewBudget = s
		}

		changed := 0
		for _, u := range stageDrivers(t) {
			se := newStageEval(t, te, lib, u)
			if len(se.nodes) == 0 {
				continue
			}
			inSlew := res.Slew[u]
			cur := se.eval(inSlew)
			if cur.worstSlew > slewLimit {
				continue // no headroom; recovery sweep handles true violations
			}
			for _, v := range se.candidateOrder(cfg.Order, byCap) {
				curCost := te.Layer.CPerUm(te.Rule(t.Nodes[v].Rule))
				for _, ri := range byCap {
					if te.Layer.CPerUm(te.Rule(ri)) >= curCost {
						break // remaining candidates are not cheaper
					}
					if emFloor != nil && te.Rule(ri).WMult < emFloor[v] {
						continue // below the electromigration width floor
					}
					old := t.Nodes[v].Rule
					t.Nodes[v].Rule = ri
					cand := se.eval(inSlew)
					if cand.worstSlew > slewLimit ||
						se.maxEndpointShift(cand, cur) > cfg.EdgeDeltaCap {
						t.Nodes[v].Rule = old
						continue
					}
					// Exact global skew check: shift each endpoint's sink
					// subtree by its arrival delta.
					se.applyShifts(at, span, cand, cur)
					if at.Skew() > skewBudget {
						se.applyShifts(at, span, cur, cand) // revert
						t.Nodes[v].Rule = old
						continue
					}
					cur = cand
					tim.Touch(v) // accepted: next analysis sees one dirty edge
					changed++
					stats.Downgrades++
					break // cheapest passing rule wins
				}
			}
		}
		stats.Passes++
		stats.PassDowngrades = append(stats.PassDowngrades, changed)
		psp.Set("downgrades", changed)
		psp.End()
		if changed == 0 {
			break
		}
	}

	// Constraint cleanup: skew repair and slew recovery interact — snakes
	// can push marginal transitions over the bound, and recovery upgrades
	// shift arrivals — so the two alternate until both are clean (or no
	// move helps). Repair itself is slew-safe (it rolls back iterations
	// that create violations), and a fresh call restarts its adaptive
	// damping, so re-invoking it after upgrades keeps making progress.
	rvsp := tr.Start("recover")
	up0 := recoverViolations(tim, t, te, lib, cfg, slewLimit, cfg.MaxSlew, byCap)
	stats.Upgrades += up0
	stats.RecoverRounds++
	rvsp.Set("upgrades", up0)
	rvsp.End()
	if !cfg.DisableRepair {
		csp := tr.Start("cleanup")
		defer csp.End() // error paths; no-op after the explicit End below
		prevRepair := math.Inf(1)
		rounds := 0
		for round := 0; round < 8; round++ {
			rounds = round + 1
			rep, err := repairToTargets(tim, t, te, lib, cfg.InSlew, nil, cfg.MaxSkew, cfg.RepairIters)
			if err != nil {
				return nil, err
			}
			stats.RepairWire += rep.AddedWire
			stats.RepairRounds++
			up := recoverViolations(tim, t, te, lib, cfg, slewLimit, cfg.MaxSlew, byCap)
			stats.Upgrades += up
			stats.RecoverRounds++
			if rep.Converged && up == 0 {
				break
			}
			if up == 0 && rep.FinalSkew >= prevRepair*0.995 {
				// Stuck on skew with clean transitions: buy headroom on
				// the tight stages and let the next repair use it.
				headroom := 0.90 * cfg.MaxSlew
				hr := recoverViolations(tim, t, te, lib, cfg, headroom, headroom, byCap)
				stats.Upgrades += hr
				stats.RecoverRounds++
				if hr == 0 {
					break // nothing left to upgrade; accept the residual
				}
			}
			prevRepair = rep.FinalSkew
		}
		csp.Set("rounds", rounds)
		csp.End()
	}
	res, err = tim.Analyze(t, cfg.InSlew)
	if err != nil {
		return nil, err
	}
	stats.CapAfter = res.TotalSwitchedCap()
	stats.FinalSkew = res.Skew()
	stats.FinalSlew, _ = res.WorstSlew()
	// Per-sweep capacitance deltas: each sweep's gain is visible at the
	// next analysis; the last sweep is measured against the final state,
	// so cleanup upgrades and repair wire land in its entry.
	for p := range passCap {
		next := stats.CapAfter
		if p+1 < len(passCap) {
			next = passCap[p+1]
		}
		stats.PassCapDelta = append(stats.PassCapDelta, passCap[p]-next)
	}
	tr.Add("core.downgrades", float64(stats.Downgrades))
	tr.Add("core.upgrades", float64(stats.Upgrades))
	tr.Add("core.repair_wire_um", stats.RepairWire)
	// STA cost telemetry (see sta.IncStats for the visit metric). These go
	// to the tracer, not Stats, so Stats stays byte-identical across the
	// incremental on/off knob while the cost difference stays observable.
	tst := tim.Stats()
	tr.Add("sta.node_visits", float64(tst.NodeVisits))
	tr.Add("sta.full_runs", float64(tst.FullRuns))
	tr.Add("sta.inc_runs", float64(tst.IncRuns))
	tr.Add("sta.cached_runs", float64(tst.CachedRuns))
	tr.Add("sta.fallbacks", float64(tst.Fallbacks))
	tr.Gauge("core.final_skew_ps", stats.FinalSkew*1e12)
	tr.Gauge("core.final_slew_ps", stats.FinalSlew*1e12)
	tr.Gauge("core.cap_saved_frac", 1-stats.CapAfter/stats.CapBefore)
	sp.Set("passes", stats.Passes)
	sp.Set("downgrades", stats.Downgrades)
	return stats, nil
}

// recoverViolations upgrades rule classes and, when drive-limited, the
// stage drivers of every stage violating the slew limit, iterating against
// fresh analyses of the shared timing engine until clean or stuck. Returns
// the upgrade count. enforceLimit is the per-stage target upgrades aim
// for; exitLimit is the global transition level that counts as "clean".
func recoverViolations(tim *sta.Incremental, t *ctree.Tree, te *tech.Tech, lib *cell.Library, cfg Config, enforceLimit, exitLimit float64, byCap []int) int {
	total := 0
	for round := 0; round < 5; round++ {
		res, err := tim.Analyze(t, cfg.InSlew)
		if err != nil {
			return total
		}
		if res.SlewViolations(exitLimit) == 0 {
			return total
		}
		fixed := 0
		for _, u := range stageDrivers(t) {
			se := newStageEval(t, te, lib, u)
			if len(se.nodes) == 0 {
				continue
			}
			inSlew := res.Slew[u]
			if se.eval(inSlew).worstSlew <= enforceLimit {
				continue
			}
			fixed += se.upgradeUntilMet(tim, inSlew, enforceLimit, byCap)
			// Rule upgrades alone cannot fix a drive-limited stage: the
			// transition is dominated by the driver's output slew at its
			// load. Upsize the driver until the stage meets or the library
			// tops out.
			for se.eval(inSlew).worstSlew > enforceLimit &&
				t.Nodes[u].BufIdx < len(lib.Buffers)-1 {
				t.Nodes[u].BufIdx++
				tim.Touch(u)
				fixed++
			}
		}
		total += fixed
		if fixed == 0 {
			return total
		}
	}
	return total
}

// applyShifts moves the arrival tree from state `from` to state `to` by
// range-adding each endpoint's delta over its sink span.
func (se *stageEval) applyShifts(at *arrTree, span *sinkSpan, to, from stageState) {
	for i, v := range se.nodes {
		if !se.endpoint[i] {
			continue
		}
		if d := to.arr[i] - from.arr[i]; d != 0 {
			at.Add(span.lo[v], span.hi[v]-1, d)
		}
	}
}

// candidateOrder returns the stage's edge nodes in the configured order.
func (se *stageEval) candidateOrder(o Order, byCap []int) []int {
	out := append([]int(nil), se.nodes...)
	switch o {
	case ByIndex:
		sort.Ints(out)
	case ByReverse:
		sort.Sort(sort.Reverse(sort.IntSlice(out)))
	default: // BySensitivity: largest cap saving first
		cheapest := byCap[0]
		gain := func(v int) float64 {
			nd := &se.t.Nodes[v]
			return nd.EdgeLen * (se.te.Layer.CPerUm(se.te.Rule(nd.Rule)) -
				se.te.Layer.CPerUm(se.te.Rule(cheapest)))
		}
		sort.Slice(out, func(a, b int) bool { return gain(out[a]) > gain(out[b]) })
	}
	return out
}

// upgradeUntilMet strengthens stage edges (the change that improves the
// stage's worst transition most, first) until the stage meets the slew
// limit or no upgrade helps. Returns the number of upgrades applied.
// Accepted edits are reported to tim; trial/revert probes are not (they
// leave the tree unchanged).
func (se *stageEval) upgradeUntilMet(tim *sta.Incremental, inSlew, slewLimit float64, byCap []int) int {
	n := 0
	for guard := 0; guard < len(se.nodes)*len(byCap)+1; guard++ {
		base := se.eval(inSlew)
		if base.worstSlew <= slewLimit {
			return n
		}
		bestV, bestRule := -1, -1
		bestSlew := base.worstSlew
		for _, v := range se.nodes {
			old := se.t.Nodes[v].Rule
			for _, ri := range byCap {
				if ri == old {
					continue
				}
				se.t.Nodes[v].Rule = ri
				cand := se.eval(inSlew)
				if cand.worstSlew < bestSlew {
					bestSlew = cand.worstSlew
					bestV, bestRule = v, ri
				}
			}
			se.t.Nodes[v].Rule = old
		}
		if bestV < 0 {
			return n // nothing helps
		}
		se.t.Nodes[bestV].Rule = bestRule
		tim.Touch(bestV)
		n++
	}
	return n
}

// rulesByCap returns rule indices sorted by capacitance per micron,
// cheapest first.
func rulesByCap(te *tech.Tech) []int {
	out := make([]int, te.NumRules())
	for i := range out {
		out[i] = i
	}
	sort.Slice(out, func(a, b int) bool {
		return te.Layer.CPerUm(te.Rule(out[a])) < te.Layer.CPerUm(te.Rule(out[b]))
	})
	return out
}
