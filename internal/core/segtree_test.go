package core

import (
	"math"
	"math/rand"
	"testing"
)

func TestArrTreeBasics(t *testing.T) {
	at := newArrTree([]float64{3, 1, 4, 1, 5})
	if at.Min() != 1 || at.Max() != 5 {
		t.Fatalf("min/max = %g/%g", at.Min(), at.Max())
	}
	if at.Skew() != 4 {
		t.Fatalf("skew = %g", at.Skew())
	}
	at.Add(1, 3, 10) // [3, 11, 14, 11, 5]
	if at.Min() != 3 || at.Max() != 14 {
		t.Fatalf("after add: min/max = %g/%g", at.Min(), at.Max())
	}
	at.Add(1, 3, -10) // back
	if at.Skew() != 4 {
		t.Fatalf("revert failed: skew = %g", at.Skew())
	}
}

func TestArrTreeEmptyAndSingle(t *testing.T) {
	empty := newArrTree(nil)
	if empty.Skew() != 0 || empty.Min() != 0 || empty.Max() != 0 {
		t.Error("empty tree should report zeros")
	}
	empty.Add(0, 0, 5) // must not panic
	one := newArrTree([]float64{7})
	if one.Skew() != 0 || one.Min() != 7 || one.Max() != 7 {
		t.Error("single-element tree wrong")
	}
	one.Add(0, 0, 3)
	if one.Max() != 10 {
		t.Error("single-element add wrong")
	}
}

func TestArrTreeMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 30; trial++ {
		n := 1 + rng.Intn(200)
		ref := make([]float64, n)
		for i := range ref {
			ref[i] = rng.Float64() * 100
		}
		at := newArrTree(append([]float64(nil), ref...))
		for op := 0; op < 100; op++ {
			lo := rng.Intn(n)
			hi := lo + rng.Intn(n-lo)
			d := (rng.Float64() - 0.5) * 20
			at.Add(lo, hi, d)
			for i := lo; i <= hi; i++ {
				ref[i] += d
			}
			mn, mx := math.Inf(1), math.Inf(-1)
			for _, v := range ref {
				mn = math.Min(mn, v)
				mx = math.Max(mx, v)
			}
			if math.Abs(at.Min()-mn) > 1e-9 || math.Abs(at.Max()-mx) > 1e-9 {
				t.Fatalf("trial %d op %d: tree %g/%g vs ref %g/%g", trial, op, at.Min(), at.Max(), mn, mx)
			}
		}
	}
}

func TestArrTreeInvertedRangeNoop(t *testing.T) {
	at := newArrTree([]float64{1, 2, 3})
	at.Add(2, 1, 99)
	if at.Max() != 3 {
		t.Error("inverted range must be a no-op")
	}
}
