package core

import (
	"math"
	"testing"

	"smartndr/internal/cell"
	"smartndr/internal/ctree"
	"smartndr/internal/sta"
	"smartndr/internal/tech"
)

func TestRepairToTargetsRealizesSchedule(t *testing.T) {
	te := tech.Tech45()
	lib := cell.Default45()
	tr := buildBlanket(t, 100, 211, 1500, te, lib)
	// A realistic useful-skew schedule is per register bank (cluster), not
	// per flip-flop: fine-grained per-sink offsets would need delay
	// buffers, since wire snaking at a low-load leaf edge is capacitance-
	// prohibitive. Banks on the right half of the die get 12 ps of
	// intentional lag.
	targets := make([]float64, len(tr.Sinks))
	for i := range tr.Nodes {
		si := tr.Nodes[i].SinkIdx
		if si == ctree.NoSink {
			continue
		}
		// The sink's bank is its nearest buffered ancestor.
		v := i
		for v != ctree.NoNode && tr.Nodes[v].BufIdx == ctree.NoBuf {
			v = tr.Nodes[v].Parent
		}
		if v != ctree.NoNode && tr.Nodes[v].Loc.X > 750 {
			targets[si] = 12e-12
		}
	}
	// A fresh call restarts the adaptive damping (same idiom Optimize
	// uses); two rounds realize a bank-level schedule comfortably.
	var st RepairStats
	for round := 0; round < 3; round++ {
		var err error
		st, err = RepairToTargets(tr, te, lib, 40e-12, targets, 8e-12, 40)
		if err != nil {
			t.Fatal(err)
		}
		if st.Converged {
			break
		}
	}
	if !st.Converged {
		t.Fatalf("schedule not realized: residual %.2f ps", st.FinalSkew*1e12)
	}
	// Verify the achieved arrival differences follow the schedule.
	res, err := sta.Analyze(tr, te, lib, 40e-12)
	if err != nil {
		t.Fatal(err)
	}
	loA, hiA := math.Inf(1), math.Inf(-1)
	for i := range tr.Nodes {
		si := tr.Nodes[i].SinkIdx
		if si == ctree.NoSink {
			continue
		}
		a := res.Arrival[i] - targets[si]
		loA = math.Min(loA, a)
		hiA = math.Max(hiA, a)
	}
	if hiA-loA > 8e-12 {
		t.Errorf("target-adjusted spread %.2f ps over tolerance", (hiA-loA)*1e12)
	}
	// Slews stay legal.
	if v := res.SlewViolations(te.MaxSlew); v > 0 {
		t.Errorf("schedule realization broke %d slews", v)
	}
}

func TestRepairToTargetsValidation(t *testing.T) {
	te := tech.Tech45()
	lib := cell.Default45()
	tr := buildBlanket(t, 10, 213, 200, te, lib)
	if _, err := RepairToTargets(tr, te, lib, 40e-12, []float64{1e-12}, 5e-12, 5); err == nil {
		t.Error("target length mismatch must fail")
	}
	if _, err := RepairToTargets(tr, te, lib, 40e-12, nil, 0, 5); err == nil {
		t.Error("zero tolerance must fail")
	}
}

func TestRepairToTargetsNilMatchesRepairSkew(t *testing.T) {
	te := tech.Tech45()
	lib := cell.Default45()
	a := buildBlanket(t, 80, 217, 1200, te, lib)
	b := a.Clone()
	sa, err := RepairSkew(a, te, lib, 40e-12, te.MaxSkew, 30)
	if err != nil {
		t.Fatal(err)
	}
	sb, err := RepairToTargets(b, te, lib, 40e-12, nil, te.MaxSkew, 30)
	if err != nil {
		t.Fatal(err)
	}
	if sa.FinalSkew != sb.FinalSkew || sa.AddedWire != sb.AddedWire {
		t.Errorf("nil-target repair differs from RepairSkew: %+v vs %+v", sa, sb)
	}
}
