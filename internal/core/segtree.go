package core

import "math"

// arrTree is a lazy segment tree over sink arrival times supporting
// range-add (shift a whole subtree of sinks) and O(1) global min/max
// queries. The downgrade loop uses it to check the *exact* global skew
// impact of a candidate rule change in O(log n) before accepting it —
// the piece that keeps stage-local greedy decisions globally sound.
type arrTree struct {
	n    int
	mn   []float64
	mx   []float64
	lazy []float64
}

// newArrTree builds the tree over the given per-sink arrivals (in DFS
// order, so any subtree of the clock tree is a contiguous range).
func newArrTree(arr []float64) *arrTree {
	n := len(arr)
	t := &arrTree{
		n:    n,
		mn:   make([]float64, 4*n),
		mx:   make([]float64, 4*n),
		lazy: make([]float64, 4*n),
	}
	if n > 0 {
		t.build(1, 0, n-1, arr)
	}
	return t
}

func (t *arrTree) build(node, lo, hi int, arr []float64) {
	if lo == hi {
		t.mn[node] = arr[lo]
		t.mx[node] = arr[lo]
		return
	}
	mid := (lo + hi) / 2
	t.build(2*node, lo, mid, arr)
	t.build(2*node+1, mid+1, hi, arr)
	t.pull(node)
}

func (t *arrTree) pull(node int) {
	t.mn[node] = math.Min(t.mn[2*node], t.mn[2*node+1])
	t.mx[node] = math.Max(t.mx[2*node], t.mx[2*node+1])
}

func (t *arrTree) push(node int) {
	if l := t.lazy[node]; l != 0 {
		for _, c := range [2]int{2 * node, 2*node + 1} {
			t.mn[c] += l
			t.mx[c] += l
			t.lazy[c] += l
		}
		t.lazy[node] = 0
	}
}

// Add shifts arrivals in [lo, hi] (inclusive sink positions) by delta.
func (t *arrTree) Add(lo, hi int, delta float64) {
	if t.n == 0 || lo > hi || delta == 0 {
		return
	}
	t.add(1, 0, t.n-1, lo, hi, delta)
}

func (t *arrTree) add(node, nlo, nhi, lo, hi int, delta float64) {
	if hi < nlo || nhi < lo {
		return
	}
	if lo <= nlo && nhi <= hi {
		t.mn[node] += delta
		t.mx[node] += delta
		t.lazy[node] += delta
		return
	}
	t.push(node)
	mid := (nlo + nhi) / 2
	t.add(2*node, nlo, mid, lo, hi, delta)
	t.add(2*node+1, mid+1, nhi, lo, hi, delta)
	t.pull(node)
}

// Skew returns the current global max−min arrival.
func (t *arrTree) Skew() float64 {
	if t.n == 0 {
		return 0
	}
	return t.mx[1] - t.mn[1]
}

// Min returns the global minimum arrival.
func (t *arrTree) Min() float64 {
	if t.n == 0 {
		return 0
	}
	return t.mn[1]
}

// Max returns the global maximum arrival.
func (t *arrTree) Max() float64 {
	if t.n == 0 {
		return 0
	}
	return t.mx[1]
}
