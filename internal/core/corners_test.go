package core

import (
	"testing"

	"smartndr/internal/cell"
	"smartndr/internal/tech"
)

func TestStandardCornersValid(t *testing.T) {
	cs := tech.StandardCorners()
	if len(cs) != 3 {
		t.Fatalf("corner count %d", len(cs))
	}
	for _, c := range cs {
		if err := c.Validate(); err != nil {
			t.Errorf("%s: %v", c.Name, err)
		}
	}
	if _, err := tech.CornerByName("slow"); err != nil {
		t.Error(err)
	}
	if _, err := tech.CornerByName("nope"); err == nil {
		t.Error("unknown corner must fail")
	}
}

func TestEvaluateCornersOrdering(t *testing.T) {
	te := tech.Tech45()
	lib := cell.Default45()
	tr := buildBlanket(t, 150, 31, 2000, te, lib)
	rep, err := EvaluateCorners(tr, te, lib, 40e-12, tech.StandardCorners())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Corners) != 3 {
		t.Fatalf("corners = %d", len(rep.Corners))
	}
	byName := map[string]CornerMetrics{}
	for _, c := range rep.Corners {
		byName[c.Corner.Name] = c
	}
	// Slow silicon is slower, fast is faster.
	if !(byName["fast"].MaxInsDel < byName["typ"].MaxInsDel &&
		byName["typ"].MaxInsDel < byName["slow"].MaxInsDel) {
		t.Errorf("insertion delays out of order: fast %g typ %g slow %g",
			byName["fast"].MaxInsDel, byName["typ"].MaxInsDel, byName["slow"].MaxInsDel)
	}
	// Slow corner has the worst transitions.
	if byName["slow"].WorstSlew <= byName["fast"].WorstSlew {
		t.Error("slow corner should have worse slews than fast")
	}
	if rep.WorstSkew < byName["typ"].Skew {
		t.Error("worst skew below typical skew")
	}
	// Cross-corner spread must dwarf any single-corner skew: global
	// derates shift all arrivals by ~25%, which is tens of picoseconds.
	if rep.CrossCornerSkew <= rep.WorstSkew {
		t.Errorf("cross-corner spread %g should exceed single-corner skew %g",
			rep.CrossCornerSkew, rep.WorstSkew)
	}
}

func TestEvaluateCornersProportionalSkew(t *testing.T) {
	// Uniform derating scales all arrivals by a common factor, so the
	// within-corner skew should stay roughly proportional — the balanced
	// tree stays balanced across corners.
	te := tech.Tech45()
	lib := cell.Default45()
	tr := buildBlanket(t, 200, 37, 2500, te, lib)
	if _, err := RepairSkew(tr, te, lib, 40e-12, te.MaxSkew, 30); err != nil {
		t.Fatal(err)
	}
	rep, err := EvaluateCorners(tr, te, lib, 40e-12, tech.StandardCorners())
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range rep.Corners {
		if c.Skew > 2*te.MaxSkew {
			t.Errorf("corner %s: skew %.2f ps blows up", c.Corner.Name, c.Skew*1e12)
		}
	}
}

func TestEvaluateCornersErrors(t *testing.T) {
	te := tech.Tech45()
	lib := cell.Default45()
	tr := buildBlanket(t, 10, 41, 200, te, lib)
	if _, err := EvaluateCorners(tr, te, lib, 40e-12, nil); err == nil {
		t.Error("no corners must fail")
	}
	bad := []tech.Corner{{Name: "x", RFactor: 0, CFactor: 1, BufFactor: 1}}
	if _, err := EvaluateCorners(tr, te, lib, 40e-12, bad); err == nil {
		t.Error("invalid corner must fail")
	}
}
