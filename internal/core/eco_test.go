package core

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"testing"

	"smartndr/internal/cell"
	"smartndr/internal/ctree"
	"smartndr/internal/geom"
	"smartndr/internal/tech"
)

func TestCanonicalEdits(t *testing.T) {
	if got := CanonicalEdits(nil); got != nil {
		t.Fatalf("nil in, %v out", got)
	}
	if got := CanonicalEdits([]Edit{}); got != nil {
		t.Fatalf("empty in, %v out", got)
	}
	// Last write wins per target; stray fields are stripped; output is
	// sorted by (op, index).
	in := []Edit{
		{Op: OpNodeRule, Node: 9, Rule: 1},
		{Op: OpSinkCap, Sink: 2, Cap: 3e-15, Rule: 7}, // Rule is noise for sink_cap
		{Op: OpMoveSink, Sink: 5, X: 1, Y: 2},
		{Op: OpSinkCap, Sink: 2, Cap: 2e-15},
		{Op: OpInSlew, InSlewPS: 50},
		{Op: OpInSlew, InSlewPS: 60},
		{Op: OpMoveSink, Sink: 1, X: 4, Y: 4, Cap: 9}, // Cap is noise for move_sink
	}
	want := []Edit{
		{Op: OpMoveSink, Sink: 1, X: 4, Y: 4},
		{Op: OpMoveSink, Sink: 5, X: 1, Y: 2},
		{Op: OpSinkCap, Sink: 2, Cap: 2e-15},
		{Op: OpNodeRule, Node: 9, Rule: 1},
		{Op: OpInSlew, InSlewPS: 60},
	}
	got := CanonicalEdits(in)
	if len(got) != len(want) {
		t.Fatalf("got %d edits %v, want %d", len(got), got, len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("edit[%d] = %+v, want %+v", i, got[i], want[i])
		}
	}
	// Canonicalization is idempotent.
	again := CanonicalEdits(got)
	for i := range got {
		if again[i] != got[i] {
			t.Fatalf("not idempotent at %d: %+v vs %+v", i, again[i], got[i])
		}
	}
	// sink_rule and node_rule are distinct targets even at equal index.
	both := CanonicalEdits([]Edit{
		{Op: OpSinkRule, Sink: 3, Rule: 0},
		{Op: OpNodeRule, Node: 3, Rule: 2},
	})
	if len(both) != 2 {
		t.Fatalf("sink_rule/node_rule collapsed: %v", both)
	}
}

// snapshotTree deep-copies the state an ECO can mutate.
func snapshotTree(tr *ctree.Tree) ([]ctree.Node, []ctree.Sink) {
	return append([]ctree.Node(nil), tr.Nodes...), append([]ctree.Sink(nil), tr.Sinks...)
}

// requireTreeBytes asserts the tree matches a snapshot bitwise.
func requireTreeBytes(t *testing.T, tag string, tr *ctree.Tree, nodes []ctree.Node, sinks []ctree.Sink) {
	t.Helper()
	for i := range nodes {
		if tr.Nodes[i] != nodes[i] {
			t.Fatalf("%s: node %d = %+v, want %+v", tag, i, tr.Nodes[i], nodes[i])
		}
	}
	for i := range sinks {
		if tr.Sinks[i] != sinks[i] {
			t.Fatalf("%s: sink %d = %+v, want %+v", tag, i, tr.Sinks[i], sinks[i])
		}
	}
}

// randomEdits builds a batch of valid edits against the tree.
func randomEdits(rng *rand.Rand, tr *ctree.Tree, te *tech.Tech, n int) []Edit {
	edits := make([]Edit, 0, n)
	for i := 0; i < n; i++ {
		switch rng.Intn(5) {
		case 0:
			edits = append(edits, Edit{Op: OpMoveSink, Sink: rng.Intn(len(tr.Sinks)),
				X: rng.Float64() * 1000, Y: rng.Float64() * 1000})
		case 1:
			edits = append(edits, Edit{Op: OpSinkCap, Sink: rng.Intn(len(tr.Sinks)),
				Cap: (1 + 3*rng.Float64()) * 1e-15})
		case 2:
			edits = append(edits, Edit{Op: OpSinkRule, Sink: rng.Intn(len(tr.Sinks)),
				Rule: rng.Intn(te.NumRules())})
		case 3:
			edits = append(edits, Edit{Op: OpNodeRule, Node: rng.Intn(len(tr.Nodes)),
				Rule: rng.Intn(te.NumRules())})
		default:
			edits = append(edits, Edit{Op: OpInSlew, InSlewPS: 30 + 40*rng.Float64()})
		}
	}
	return edits
}

// TestECORoundTrip: applying edit states and then clearing them must land
// back on the pristine tree bitwise — the invariant warm-path rollback
// and cache-key canonicalization both lean on.
func TestECORoundTrip(t *testing.T) {
	te := tech.Tech45()
	lib := cell.Default45()
	tr := buildBlanket(t, 80, 41, 1200, te, lib)
	nodes0, sinks0 := snapshotTree(tr)
	eco, err := NewECO(tr, te)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(410))
	for round := 0; round < 30; round++ {
		state := CanonicalEdits(randomEdits(rng, tr, te, 1+rng.Intn(8)))
		if err := eco.SetState(state, nil); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		live := eco.Live()
		if len(live) != len(state) {
			t.Fatalf("round %d: live %v, want %v", round, live, state)
		}
		for i := range state {
			if live[i] != state[i] {
				t.Fatalf("round %d: live[%d] = %+v, want %+v", round, i, live[i], state[i])
			}
		}
		if err := eco.SetState(nil, nil); err != nil {
			t.Fatal(err)
		}
		requireTreeBytes(t, fmt.Sprintf("round %d", round), tr, nodes0, sinks0)
		if got := eco.InSlew(40e-12); got != 40e-12 {
			t.Fatalf("round %d: in_slew override survived clear: %g", round, got)
		}
	}
}

// TestECOPathIndependence: the tree bytes depend only on the canonical
// edit state, not on the sequence of states that led there.
func TestECOPathIndependence(t *testing.T) {
	te := tech.Tech45()
	lib := cell.Default45()
	trA := buildBlanket(t, 60, 42, 1000, te, lib)
	trB := buildBlanket(t, 60, 42, 1000, te, lib)
	ecoA, err := NewECO(trA, te)
	if err != nil {
		t.Fatal(err)
	}
	ecoB, err := NewECO(trB, te)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(4200))
	var cumulative []Edit
	for step := 0; step < 20; step++ {
		cumulative = CanonicalEdits(append(cumulative, randomEdits(rng, trA, te, 1+rng.Intn(4))...))
		// A walks through every intermediate state; B jumps straight to
		// the final one each step after bouncing through a decoy state.
		if err := ecoA.SetState(cumulative, nil); err != nil {
			t.Fatal(err)
		}
		if err := ecoB.SetState(randomEdits(rng, trB, te, 3), nil); err != nil {
			t.Fatal(err)
		}
		if err := ecoB.SetState(cumulative, nil); err != nil {
			t.Fatal(err)
		}
		nodesA, sinksA := snapshotTree(trA)
		requireTreeBytes(t, fmt.Sprintf("step %d", step), trB, nodesA, sinksA)
	}
}

// TestECOMoveSinkEmbedding: a moved sink keeps its snaking surplus, so
// the edge remains a valid embedding at the new location.
func TestECOMoveSinkEmbedding(t *testing.T) {
	te := tech.Tech45()
	lib := cell.Default45()
	tr := buildBlanket(t, 50, 43, 900, te, lib)
	eco, err := NewECO(tr, te)
	if err != nil {
		t.Fatal(err)
	}
	if err := eco.SetState([]Edit{
		{Op: OpMoveSink, Sink: 7, X: 13.25, Y: 801.5},
		{Op: OpMoveSink, Sink: 11, X: 0, Y: 0},
	}, nil); err != nil {
		t.Fatal(err)
	}
	if got := tr.Sinks[7].Loc; got != (geom.Point{X: 13.25, Y: 801.5}) {
		t.Fatalf("sink 7 at %v", got)
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := tr.CheckEmbedding(1e-9); err != nil {
		t.Fatal(err)
	}
}

func TestECOValidation(t *testing.T) {
	te := tech.Tech45()
	lib := cell.Default45()
	tr := buildBlanket(t, 30, 44, 800, te, lib)
	nodes0, sinks0 := snapshotTree(tr)
	eco, err := NewECO(tr, te)
	if err != nil {
		t.Fatal(err)
	}
	bad := [][]Edit{
		{{Op: "teleport", Sink: 0}},
		{{Op: OpMoveSink, Sink: -1, X: 1, Y: 1}},
		{{Op: OpMoveSink, Sink: 0, X: math.NaN(), Y: 1}},
		{{Op: OpMoveSink, Sink: len(tr.Sinks), X: 1, Y: 1}},
		{{Op: OpSinkCap, Sink: 0, Cap: 0}},
		{{Op: OpSinkCap, Sink: 0, Cap: math.Inf(1)}},
		{{Op: OpSinkCap, Sink: 99, Cap: 1e-15}},
		{{Op: OpSinkRule, Sink: 0, Rule: te.NumRules()}},
		{{Op: OpNodeRule, Node: len(tr.Nodes), Rule: 0}},
		{{Op: OpNodeRule, Node: -2, Rule: 0}},
		{{Op: OpInSlew, InSlewPS: 0}},
		{{Op: OpInSlew, InSlewPS: math.NaN()}},
		// One good edit does not excuse a bad one in the same state.
		{{Op: OpSinkCap, Sink: 0, Cap: 2e-15}, {Op: "warp", Node: 1}},
	}
	for i, edits := range bad {
		if err := eco.SetState(edits, nil); !errors.Is(err, ErrEdit) {
			t.Errorf("case %d (%v): err = %v, want ErrEdit", i, edits, err)
		}
		requireTreeBytes(t, fmt.Sprintf("case %d", i), tr, nodes0, sinks0)
	}
	if len(eco.Live()) != 0 {
		t.Fatalf("rejected states leaked into live: %v", eco.Live())
	}
	// Root rule edit is valid and inert.
	if err := eco.SetState([]Edit{{Op: OpNodeRule, Node: tr.Root, Rule: 0}}, nil); err != nil {
		t.Fatalf("root rule edit rejected: %v", err)
	}
}

// TestECOTouchReportsEditedNodes: the touch hook sees the leaf (or node)
// behind every apply and revert — the contract the incremental engine
// depends on for dirty tracking.
func TestECOTouchReportsEditedNodes(t *testing.T) {
	te := tech.Tech45()
	lib := cell.Default45()
	tr := buildBlanket(t, 40, 45, 900, te, lib)
	eco, err := NewECO(tr, te)
	if err != nil {
		t.Fatal(err)
	}
	touched := map[int]int{}
	touch := func(v int) { touched[v]++ }
	state := []Edit{
		{Op: OpSinkCap, Sink: 3, Cap: 2e-15},
		{Op: OpNodeRule, Node: 5, Rule: 1},
	}
	if err := eco.SetState(state, touch); err != nil {
		t.Fatal(err)
	}
	leaf3 := -1
	for v := range tr.Nodes {
		if tr.Nodes[v].SinkIdx == 3 {
			leaf3 = v
		}
	}
	if touched[leaf3] == 0 || touched[5] == 0 {
		t.Fatalf("apply did not touch edited nodes: %v (leaf3=%d)", touched, leaf3)
	}
	touched = map[int]int{}
	if err := eco.SetState(nil, touch); err != nil {
		t.Fatal(err)
	}
	if touched[leaf3] == 0 || touched[5] == 0 {
		t.Fatalf("revert did not touch edited nodes: %v (leaf3=%d)", touched, leaf3)
	}
	_ = lib
}
