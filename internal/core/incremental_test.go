package core

import (
	"reflect"
	"testing"

	"smartndr/internal/cell"
	"smartndr/internal/ctree"
	"smartndr/internal/geom"
	"smartndr/internal/obs"
	"smartndr/internal/sta"
	"smartndr/internal/tech"
)

// sameTree asserts two trees agree bitwise on every optimizer-visible
// field (rules, edge lengths, buffers).
func sameTree(t *testing.T, tag string, a, b *ctree.Tree) {
	t.Helper()
	if len(a.Nodes) != len(b.Nodes) {
		t.Fatalf("%s: node counts differ", tag)
	}
	for i := range a.Nodes {
		x, y := &a.Nodes[i], &b.Nodes[i]
		if x.Rule != y.Rule || x.EdgeLen != y.EdgeLen || x.BufIdx != y.BufIdx {
			t.Fatalf("%s: node %d diverges: rule %d/%d len %.17g/%.17g buf %d/%d",
				tag, i, x.Rule, y.Rule, x.EdgeLen, y.EdgeLen, x.BufIdx, y.BufIdx)
		}
	}
}

// TestOptimizeIncrementalInvariance: the incremental-STA knob must not
// change a single optimizer decision — Stats (including every per-pass
// table) and the final tree are byte-identical with it on and off. This
// is the strong form of the ≤1e-12 contract: the incremental engine is
// bitwise exact, so the flows cannot diverge.
func TestOptimizeIncrementalInvariance(t *testing.T) {
	te := tech.Tech45()
	lib := cell.Default45()
	em := DefaultEMLimit()
	cases := []struct {
		name string
		n    int
		seed int64
		cfg  Config
	}{
		{"default", 200, 7, Config{}},
		{"em", 150, 8, Config{EM: &em}},
		{"no-repair", 150, 9, Config{DisableRepair: true}},
		{"by-index", 120, 10, Config{Order: ByIndex}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			base := buildBlanket(t, tc.n, tc.seed, float64(tc.n)*10, te, lib)
			incTree, fullTree := base.Clone(), base.Clone()

			cfgInc := tc.cfg
			stInc, err := Optimize(incTree, te, lib, cfgInc)
			if err != nil {
				t.Fatal(err)
			}
			cfgFull := tc.cfg
			cfgFull.DisableIncrementalSTA = true
			stFull, err := Optimize(fullTree, te, lib, cfgFull)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(stInc, stFull) {
				t.Errorf("stats diverge:\nincremental: %+v\nfull:        %+v", stInc, stFull)
			}
			sameTree(t, tc.name, incTree, fullTree)
		})
	}
}

// optimizeVisits runs Optimize on a fresh copy of the benchmark testcase
// and returns the STA node-visit count reported through the tracer.
func optimizeVisits(t *testing.T, tree *ctree.Tree, te *tech.Tech, lib *cell.Library, cfg Config) float64 {
	t.Helper()
	tr := obs.New(obs.NewCollector())
	cfg.Tracer = tr
	if _, err := Optimize(tree, te, lib, cfg); err != nil {
		t.Fatal(err)
	}
	return tr.Registry().Counter("sta.node_visits")
}

// TestOptimizeNodeVisitReduction measures the headline number: STA node
// visits per Optimize call on the benchmark testcase (the 300-sink tree
// BenchmarkOptimize runs), incremental vs full analysis. The acceptance
// bar is ≥5×.
func TestOptimizeNodeVisitReduction(t *testing.T) {
	te := tech.Tech45()
	lib := cell.Default45()
	em := DefaultEMLimit()
	cfg := Config{EM: &em}

	base := buildBlanket(t, 300, 55, 3000, te, lib)
	if _, err := RepairSkew(base, te, lib, 40e-12, te.MaxSkew, 30); err != nil {
		t.Fatal(err)
	}

	full := cfg
	full.DisableIncrementalSTA = true
	fullVisits := optimizeVisits(t, base.Clone(), te, lib, full)
	incVisits := optimizeVisits(t, base.Clone(), te, lib, cfg)
	if fullVisits == 0 || incVisits == 0 {
		t.Fatalf("missing visit counters: full=%v inc=%v", fullVisits, incVisits)
	}
	ratio := fullVisits / incVisits
	t.Logf("STA node visits: full=%.0f incremental=%.0f reduction=%.2fx", fullVisits, incVisits, ratio)
	if ratio < 5 {
		t.Errorf("node-visit reduction %.2fx, want ≥5x", ratio)
	}
}

// deepChain builds a pathological tree: a buffered root driving one
// serial chain of n unbuffered nodes ending in a single sink.
func deepChain(n int, te *tech.Tech) *ctree.Tree {
	tr := ctree.NewTree([]ctree.Sink{{Name: "ff", Loc: geom.Point{X: float64(n), Y: 0}, Cap: 2e-15}}, geom.Point{})
	prev := ctree.NoNode
	for i := 0; i <= n; i++ {
		nd := ctree.Node{
			Parent:  prev,
			Kids:    [2]int{ctree.NoNode, ctree.NoNode},
			SinkIdx: ctree.NoSink,
			Loc:     geom.Point{X: float64(i), Y: 0},
			EdgeLen: 1,
			Rule:    te.DefaultRule,
			BufIdx:  ctree.NoBuf,
		}
		if i == 0 {
			nd.EdgeLen = 0
			nd.BufIdx = 0
		}
		if i == n {
			nd.SinkIdx = 0
		}
		idx := tr.AddNode(nd)
		if prev != ctree.NoNode {
			tr.Nodes[prev].Kids[0] = idx
		} else {
			tr.Root = idx
		}
		prev = idx
	}
	return tr
}

// TestDeepChainTraversals: the explicit-stack DFS conversions must handle
// degenerate serial chains that would grow one recursion frame per node.
func TestDeepChainTraversals(t *testing.T) {
	te := tech.Tech45()
	lib := cell.Default45()
	const n = 150_000
	tr := deepChain(n, te)

	span := newSinkSpan(tr)
	if len(span.node) != 1 {
		t.Fatalf("chain has %d spanned sinks, want 1", len(span.node))
	}
	for v := range tr.Nodes {
		if span.lo[v] != 0 || span.hi[v] != 1 {
			t.Fatalf("node %d span [%d,%d), want [0,1)", v, span.lo[v], span.hi[v])
		}
	}

	se := newStageEval(tr, te, lib, tr.Root)
	if len(se.nodes) != n {
		t.Fatalf("stage gathered %d nodes, want %d", len(se.nodes), n)
	}
	ends := 0
	for _, e := range se.endpoint {
		if e {
			ends++
		}
	}
	if ends != 1 {
		t.Fatalf("stage has %d endpoints, want 1 (the sink)", ends)
	}
	st := se.eval(40e-12)
	if st.worstSlew <= 0 || st.stageCap <= 0 {
		t.Fatalf("implausible chain stage eval: %+v", st)
	}

	// The STA itself is already iterative; confirm it agrees with the
	// stage-local view on the chain's load.
	res, err := sta.Analyze(tr, te, lib, 40e-12)
	if err != nil {
		t.Fatal(err)
	}
	if res.StageCap[tr.Root] != st.stageCap {
		t.Errorf("stage cap %.17g vs STA %.17g", st.stageCap, res.StageCap[tr.Root])
	}
}

// BenchmarkOptimize is the benchmark testcase for the incremental-STA
// numbers in docs/performance.md: the 300-sink EM-aware optimization,
// incremental path on (the default).
func BenchmarkOptimize(b *testing.B) {
	benchOptimize(b, false)
}

// BenchmarkOptimizeFullSTA is the same workload with every timing query
// answered by a from-scratch analysis — the before/after baseline.
func BenchmarkOptimizeFullSTA(b *testing.B) {
	benchOptimize(b, true)
}

func benchOptimize(b *testing.B, disableInc bool) {
	te := tech.Tech45()
	lib := cell.Default45()
	em := DefaultEMLimit()
	base := buildBlanket(b, 300, 55, 3000, te, lib)
	if _, err := RepairSkew(base, te, lib, 40e-12, te.MaxSkew, 30); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		tr := base.Clone()
		b.StartTimer()
		cfg := Config{EM: &em, DisableIncrementalSTA: disableInc}
		if _, err := Optimize(tr, te, lib, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRepairSkew measures the skew-repair loop through the shared
// incremental engine; BenchmarkRepairSkewFullSTA pins it to full analyses.
func BenchmarkRepairSkew(b *testing.B) {
	benchRepairSkew(b, false)
}

func BenchmarkRepairSkewFullSTA(b *testing.B) {
	benchRepairSkew(b, true)
}

func benchRepairSkew(b *testing.B, disableInc bool) {
	te := tech.Tech45()
	lib := cell.Default45()
	base := buildBlanket(b, 300, 55, 3000, te, lib)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		tr := base.Clone()
		tim := sta.NewIncremental(te, lib)
		if disableInc {
			tim.Disable()
		}
		b.StartTimer()
		if _, err := repairToTargets(tim, tr, te, lib, 40e-12, nil, te.MaxSkew, 30); err != nil {
			b.Fatal(err)
		}
	}
}
