package core

import (
	"math"
	"testing"

	"smartndr/internal/cell"
	"smartndr/internal/tech"
)

func TestEMCurrentScale(t *testing.T) {
	// Sanity of magnitudes: a 100 fF stage at 1 GHz / 1 V charges
	// Q = C·V per cycle → I_avg = 0.1 mA; shaped RMS ≈ 0.16 mA.
	te := tech.Tech45()
	l := DefaultEMLimit()
	i := edgeRmsCurrent(100e-15, te, l)
	if i < 1e-4 || i > 3e-4 {
		t.Errorf("RMS current %g A out of expected range", i)
	}
	// A minimum-width wire at 0.7 mA/µm sustains 49 µA: a heavy stage
	// needs a few× width — the constraint is active but satisfiable
	// within the rule menu.
	sustain := l.JRms * te.Layer.MinWidth
	if sustain <= 0 || i/sustain < 2 || i/sustain > 5 {
		t.Errorf("floor ratio %g implausible", i/sustain)
	}
}

func TestEMFloorsMonotone(t *testing.T) {
	te := tech.Tech45()
	lib := cell.Default45()
	tr := buildBlanket(t, 120, 61, 1800, te, lib)
	floors, err := EMFloors(tr, te, lib, 40e-12, DefaultEMLimit())
	if err != nil {
		t.Fatal(err)
	}
	// Floors are nonnegative and the root stage's first edges (heaviest
	// in-stage loads) need at least as much width as typical leaf edges.
	var maxFloor float64
	for i, f := range floors {
		if f < 0 || math.IsNaN(f) {
			t.Fatalf("bad floor %g at %d", f, i)
		}
		maxFloor = math.Max(maxFloor, f)
	}
	if maxFloor <= 0 {
		t.Fatal("no edge carries current?")
	}
	if maxFloor > 10 {
		t.Fatalf("max floor %.1f× implausibly high", maxFloor)
	}
}

func TestAuditAndEnforceEM(t *testing.T) {
	te := tech.Tech45()
	lib := cell.Default45()
	tr := buildBlanket(t, 200, 67, 2500, te, lib)
	l := DefaultEMLimit()

	// All-default assignment: heavy-load edges must violate.
	AssignAll(tr, te.DefaultRule)
	viols, err := AuditEM(tr, te, lib, 40e-12, l)
	if err != nil {
		t.Fatal(err)
	}
	if len(viols) == 0 {
		t.Fatal("all-default must have EM violations at stage-top edges")
	}
	for _, v := range viols {
		if v.Required <= v.Width {
			t.Fatalf("non-violation reported: %+v", v)
		}
	}

	n, err := EnforceEM(tr, te, lib, 40e-12, l)
	if err != nil {
		t.Fatal(err)
	}
	if n != len(viols) {
		t.Errorf("enforced %d, audited %d", n, len(viols))
	}
	// Enforcement changes loads only via rule caps; floors can creep, so
	// audit again and allow at most a small second wave.
	viols2, err := AuditEM(tr, te, lib, 40e-12, l)
	if err != nil {
		t.Fatal(err)
	}
	if len(viols2) > len(viols)/4 {
		t.Errorf("enforcement left %d of %d violations", len(viols2), len(viols))
	}

	// Blanket 2W2S should already satisfy the rule almost everywhere.
	AssignAll(tr, te.BlanketRule)
	bviols, err := AuditEM(tr, te, lib, 40e-12, l)
	if err != nil {
		t.Fatal(err)
	}
	if len(bviols) > len(viols)/10 {
		t.Errorf("blanket NDR should nearly satisfy EM: %d violations", len(bviols))
	}
}

func TestEnforceEMImpossible(t *testing.T) {
	te := tech.Tech45()
	lib := cell.Default45()
	tr := buildBlanket(t, 50, 71, 800, te, lib)
	l := EMLimit{JRms: 1e-6, WaveShape: 1.6} // absurdly strict
	if _, err := EnforceEM(tr, te, lib, 40e-12, l); err == nil {
		t.Error("unsatisfiable EM rule must error")
	}
}

func TestEMLimitValidate(t *testing.T) {
	if err := (EMLimit{}).Validate(); err == nil {
		t.Error("zero limit must fail")
	}
	if err := DefaultEMLimit().Validate(); err != nil {
		t.Error(err)
	}
}

func TestSmartWithEMFloor(t *testing.T) {
	// The documented composition: optimize, then enforce EM, then verify
	// the tree is still legal on slew/skew (EM upgrades only add width,
	// which can only improve transitions).
	te := tech.Tech45()
	lib := cell.Default45()
	tr := buildBlanket(t, 150, 73, 2000, te, lib)
	if _, err := Optimize(tr, te, lib, Config{}); err != nil {
		t.Fatal(err)
	}
	if _, err := EnforceEM(tr, te, lib, 40e-12, DefaultEMLimit()); err != nil {
		t.Fatal(err)
	}
	m, _, err := Evaluate(tr, te, lib, 40e-12)
	if err != nil {
		t.Fatal(err)
	}
	if m.SlewViol != 0 {
		t.Errorf("EM enforcement broke %d slews", m.SlewViol)
	}
	viols, err := AuditEM(tr, te, lib, 40e-12, DefaultEMLimit())
	if err != nil {
		t.Fatal(err)
	}
	if len(viols) != 0 {
		t.Errorf("%d EM violations after enforcement", len(viols))
	}
}

func TestOptimizeWithEMFloor(t *testing.T) {
	te := tech.Tech45()
	lib := cell.Default45()
	tr := buildBlanket(t, 200, 79, 2500, te, lib)
	l := DefaultEMLimit()
	cfg := Config{EM: &l}
	if _, err := Optimize(tr, te, lib, cfg); err != nil {
		t.Fatal(err)
	}
	viols, err := AuditEM(tr, te, lib, 40e-12, l)
	if err != nil {
		t.Fatal(err)
	}
	// The floors were computed under blanket parasitics (conservative),
	// so the optimized tree must audit clean up to snaking-induced load
	// growth on a handful of edges.
	if len(viols) > len(tr.Nodes)/100 {
		t.Errorf("EM-aware optimization left %d violations", len(viols))
	}
	// It still saves power vs blanket.
	m, _, err := Evaluate(tr, te, lib, 40e-12)
	if err != nil {
		t.Fatal(err)
	}
	blanket := buildBlanket(t, 200, 79, 2500, te, lib)
	bm, _, err := Evaluate(blanket, te, lib, 40e-12)
	if err != nil {
		t.Fatal(err)
	}
	if m.Power.Total() >= bm.Power.Total() {
		t.Errorf("EM-aware smart %.3f mW not below blanket %.3f mW",
			m.Power.Total()*1e3, bm.Power.Total()*1e3)
	}
	if m.SlewViol > 0 || m.Skew > te.MaxSkew {
		t.Errorf("constraints broken: viol=%d skew=%.2fps", m.SlewViol, m.Skew*1e12)
	}
}
