package core

import (
	"testing"

	"smartndr/internal/cell"
	"smartndr/internal/tech"
)

// TestRepairSkewAllocBound guards the hot-path refactor that hoisted
// the repair loop's working arrays (stage ownership, driver
// resistances, slew budgets, snapshots) out of the iteration loop and
// replaced the per-iteration driver map with the analyzer's Drivers
// slice. Allocation count per RepairSkew call must stay small and, in
// particular, must not scale with iteration count — each measured run
// resets the tree and repairs from scratch across several iterations,
// so a regression that allocates per iteration (or per driver) blows
// through the bound immediately.
func TestRepairSkewAllocBound(t *testing.T) {
	te := tech.Tech45()
	lib := cell.Default45()
	tr := buildBlanket(t, 400, 9, 3500, te, lib)
	// Deterministically unbalance the calibrated tree so the repair loop
	// has real work: stagger leaf-edge lengths by a few tens of microns.
	for i := range tr.Nodes {
		if tr.IsLeaf(i) {
			tr.Nodes[i].EdgeLen += float64(i%7) * 12
		}
	}
	base := make([]float64, len(tr.Nodes))
	for i := range tr.Nodes {
		base[i] = tr.Nodes[i].EdgeLen
	}
	reset := func() {
		for i := range tr.Nodes {
			tr.Nodes[i].EdgeLen = base[i]
		}
	}
	var iters int
	run := func() RepairStats {
		reset()
		st, err := RepairSkew(tr, te, lib, 40e-12, te.MaxSkew, 30)
		if err != nil {
			t.Fatal(err)
		}
		return st
	}
	if st := run(); st.Iters < 2 {
		t.Skipf("repair converged in %d iterations — workload too easy to guard the loop", st.Iters)
	} else {
		iters = st.Iters
	}
	allocs := testing.AllocsPerRun(10, func() { run() })
	// The repair loop's own working arrays allocate once per call, not
	// per iteration; the remaining per-iteration cost is the incremental
	// engine's dirty-driver heap, whose container/heap interface boxes
	// one value per touched driver. That makes the steady total roughly
	// (touched drivers) × iterations — measured ≈ 27k objects for this
	// 400-sink workload over 6 iterations. The bound is ~1.7× measured:
	// tight enough that an O(n²) allocation pattern (node-pair scaling ≈
	// 640k) or a reintroduced per-node map in the loop body trips it,
	// loose enough to absorb engine-internal jitter.
	const allocCeil = 45000
	if allocs > allocCeil {
		t.Errorf("RepairSkew allocates %.0f objects/run over %d iterations, want ≤ %d", allocs, iters, allocCeil)
	}
}

// TestOptimizeRegionAllocScale pins the allocation *scaling* of the
// per-region optimize path the hierarchical flow fans out: allocation
// count per sink must not grow with region size. O(n²) (or per-node
// map) regressions in the optimizer hot loop show up as a superlinear
// jump long before wall-clock noise would.
func TestOptimizeRegionAllocScale(t *testing.T) {
	if testing.Short() {
		t.Skip("allocation scaling test skipped in -short mode")
	}
	te := tech.Tech45()
	lib := cell.Default45()
	perSink := func(n int) float64 {
		tr := buildBlanket(t, n, int64(n), 3000, te, lib)
		base := make([]int, len(tr.Nodes))
		for i := range tr.Nodes {
			base[i] = tr.Nodes[i].Rule
		}
		edges := make([]float64, len(tr.Nodes))
		for i := range tr.Nodes {
			edges[i] = tr.Nodes[i].EdgeLen
		}
		allocs := testing.AllocsPerRun(3, func() {
			for i := range tr.Nodes {
				tr.Nodes[i].Rule = base[i]
				tr.Nodes[i].EdgeLen = edges[i]
			}
			if _, err := Optimize(tr, te, lib, Config{}); err != nil {
				t.Fatal(err)
			}
		})
		return allocs / float64(n)
	}
	small := perSink(200)
	big := perSink(800)
	// Linear behavior keeps allocations-per-sink flat; quadratic growth
	// would quadruple it between 200 and 800 sinks. 2× allows constant
	// overheads to wash out without masking a real blowup.
	if big > 2*small+1 {
		t.Errorf("optimize allocations/sink grew from %.1f (200 sinks) to %.1f (800 sinks) — superlinear",
			small, big)
	}
}
