package core

import (
	"math"

	"smartndr/internal/cell"
	"smartndr/internal/ctree"
	"smartndr/internal/rctree"
	"smartndr/internal/tech"
)

// stageEval evaluates one buffer stage in isolation: the RC tree between a
// driver buffer's output and the next buffer inputs / sinks. Candidate
// rule changes are scored by re-evaluating only this stage — O(stage size)
// instead of O(tree) — which is what makes the greedy downgrade scale.
type stageEval struct {
	t      *ctree.Tree
	te     *tech.Tech
	lib    *cell.Library
	driver int
	// nodes lists the stage's nodes (driver excluded) in parent-before-
	// child order; the driver's children come first.
	nodes []int
	// endpoint[i] marks nodes[i] as a stage endpoint (buffer input or
	// sink pin).
	endpoint []bool
	// local index of each tree node in `nodes` (+1; 0 = absent).
	local map[int]int

	// scratch, indexed parallel to nodes:
	down []float64 // π-lumped downstream cap within stage
	elm  []float64 // Elmore from driver output
}

// stageState is one evaluation outcome.
type stageState struct {
	stageCap  float64
	bufDelay  float64
	outSlew   float64
	worstSlew float64 // max transition over endpoints
	// arr[i] is the arrival at nodes[i] relative to the driver *input*
	// (buffer delay + wire Elmore); only endpoint entries are meaningful.
	arr []float64
}

// newStageEval collects the stage rooted at the buffered node driver.
func newStageEval(t *ctree.Tree, te *tech.Tech, lib *cell.Library, driver int) *stageEval {
	se := &stageEval{t: t, te: te, lib: lib, driver: driver, local: make(map[int]int)}
	// Explicit-stack DFS (kids pushed in reverse so they pop in Kids
	// order): same visit order as the recursive form, but safe on
	// degenerate serial chains that would otherwise grow the stack one
	// frame per node.
	var stack []int
	push := func(n int) {
		kids := t.Nodes[n].Kids
		for i := len(kids) - 1; i >= 0; i-- {
			if kids[i] != ctree.NoNode {
				stack = append(stack, kids[i])
			}
		}
	}
	push(driver)
	for len(stack) > 0 {
		k := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		se.nodes = append(se.nodes, k)
		se.local[k] = len(se.nodes)
		end := t.Nodes[k].BufIdx != ctree.NoBuf || t.IsLeaf(k)
		se.endpoint = append(se.endpoint, end)
		if !end {
			push(k)
		}
	}
	se.down = make([]float64, len(se.nodes))
	se.elm = make([]float64, len(se.nodes))
	return se
}

// eval recomputes the stage under the tree's current rule assignment for
// the given transition at the driver's input pin.
func (se *stageEval) eval(inSlew float64) stageState {
	t, te := se.t, se.te
	// Downstream caps, children-before-parents (reverse of `nodes`).
	for i := len(se.nodes) - 1; i >= 0; i-- {
		v := se.nodes[i]
		nd := &t.Nodes[v]
		ec := te.WireC(nd.EdgeLen, nd.Rule)
		d := ec / 2
		switch {
		case nd.BufIdx != ctree.NoBuf:
			d += se.lib.Buffers[nd.BufIdx].InputCap
		case t.IsLeaf(v):
			d += t.Sinks[nd.SinkIdx].Cap
		default:
			for _, k := range nd.Kids {
				if k == ctree.NoNode {
					continue
				}
				j := se.local[k] - 1
				d += se.down[j] + te.WireC(t.Nodes[k].EdgeLen, t.Nodes[k].Rule)/2
			}
		}
		se.down[i] = d
	}
	// Stage load seen by the driver.
	st := stageState{arr: make([]float64, len(se.nodes))}
	for _, k := range t.Nodes[se.driver].Kids {
		if k == ctree.NoNode {
			continue
		}
		j := se.local[k] - 1
		st.stageCap += se.down[j] + te.WireC(t.Nodes[k].EdgeLen, t.Nodes[k].Rule)/2
	}
	b := &se.lib.Buffers[t.Nodes[se.driver].BufIdx]
	st.bufDelay = b.DelayAt(inSlew, st.stageCap)
	st.outSlew = b.OutSlewAt(inSlew, st.stageCap)
	// Elmore, parents-before-children (forward order).
	for i, v := range se.nodes {
		nd := &t.Nodes[v]
		base := 0.0
		if p := nd.Parent; p != se.driver {
			base = se.elm[se.local[p]-1]
		}
		se.elm[i] = base + te.WireR(nd.EdgeLen, nd.Rule)*se.down[i]
		st.arr[i] = st.bufDelay + se.elm[i]
		if se.endpoint[i] {
			if s := math.Hypot(st.outSlew, rctree.Ln9*se.elm[i]); s > st.worstSlew {
				st.worstSlew = s
			}
		}
	}
	if len(se.nodes) == 0 {
		st.worstSlew = st.outSlew
	}
	return st
}

// maxEndpointShift returns the largest |arrival delta| over endpoints
// between two states of the same stage.
func (se *stageEval) maxEndpointShift(a, b stageState) float64 {
	worst := 0.0
	for i := range se.nodes {
		if !se.endpoint[i] {
			continue
		}
		if d := math.Abs(a.arr[i] - b.arr[i]); d > worst {
			worst = d
		}
	}
	if len(se.nodes) == 0 {
		worst = math.Abs((a.bufDelay) - (b.bufDelay))
	}
	return worst
}

// stageDrivers returns all buffered nodes in parents-first order.
func stageDrivers(t *ctree.Tree) []int {
	var out []int
	t.PreOrder(func(i int) {
		if t.Nodes[i].BufIdx != ctree.NoBuf {
			out = append(out, i)
		}
	})
	return out
}
