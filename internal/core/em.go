package core

import (
	"fmt"
	"math"

	"smartndr/internal/cell"
	"smartndr/internal/ctree"
	"smartndr/internal/sta"
	"smartndr/internal/tech"
)

// Electromigration is the third reason clock nets carry NDRs (after slew
// and variation): a clock wire charges its downstream capacitance every
// cycle, so its RMS current density scales with C·V·f/width, and EM
// lifetime rules impose a *minimum width* per edge that grows with the
// load the edge feeds. Smart assignment must not downgrade an edge below
// its EM floor; this file provides the floor computation, the audit, and
// the enforcement hook used by Optimize.

// EMLimit parameterizes the current-density rule.
type EMLimit struct {
	// JRms is the allowed RMS current density per micron of wire width,
	// A/µm. Derated clock-layer copper at 45 nm sustains ≈ 0.5–1.5 mA/µm.
	JRms float64
	// WaveShape converts average charging current to RMS for a clock
	// square wave (default 1.6, the usual triangle-pulse approximation).
	WaveShape float64
}

// DefaultEMLimit returns a 45 nm-class clock EM rule: 0.7 mA/µm RMS,
// the derated (105 °C, thin-barrier) copper limit clock signoff applies.
// At this level the heaviest in-stage edges of a cap-budgeted tree need
// ≈1.2–1.7× width — the constraint is active exactly where the blanket
// NDR already provides width, which is the practical reason clock NDRs
// carry a width component at all.
func DefaultEMLimit() EMLimit {
	return EMLimit{JRms: 0.7e-3, WaveShape: 1.6}
}

// Validate checks the limit.
func (l EMLimit) Validate() error {
	if l.JRms <= 0 || l.WaveShape <= 0 {
		return fmt.Errorf("core: bad EM limit %+v", l)
	}
	return nil
}

// edgeRmsCurrent returns the RMS current through an edge: the charge
// delivered per cycle to everything below it, times f, shaped to RMS.
// downCap here is the *full* downstream switched cap through this edge
// (wire + pins through the next buffers is not enough: the buffers' own
// input pins terminate the charge path, so within-stage downstream cap is
// the right quantity — the same D the STA exposes).
func edgeRmsCurrent(downCap float64, te *tech.Tech, l EMLimit) float64 {
	return l.WaveShape * downCap * te.Vdd * te.Freq
}

// EMFloors computes, per node, the minimum rule index (in the given
// cap-ascending rule order) whose width sustains the edge's RMS current.
// Returns the floor as a minimum *width multiplier* per edge; rule
// legality is then a simple WMult comparison.
func EMFloors(t *ctree.Tree, te *tech.Tech, lib *cell.Library, inSlew float64, l EMLimit) ([]float64, error) {
	return emFloors(sta.NewIncremental(te, lib), t, te, inSlew, l)
}

// emFloors is EMFloors against a caller-supplied timing engine: called
// right after another analysis of the same tree state (as Optimize does
// per pass), the timing query is served from cache.
func emFloors(tim *sta.Incremental, t *ctree.Tree, te *tech.Tech, inSlew float64, l EMLimit) ([]float64, error) {
	if err := l.Validate(); err != nil {
		return nil, err
	}
	res, err := tim.Analyze(t, inSlew)
	if err != nil {
		return nil, err
	}
	floors := make([]float64, len(t.Nodes))
	for i := range t.Nodes {
		if t.Nodes[i].Parent == ctree.NoNode {
			continue
		}
		irms := edgeRmsCurrent(res.DownCap[i], te, l)
		floors[i] = irms / (l.JRms * te.Layer.MinWidth)
	}
	return floors, nil
}

// EMViolation is one edge below its EM width floor.
type EMViolation struct {
	Node     int
	Rule     string
	Width    float64 // WMult in use
	Required float64 // minimum WMult
	IRms     float64 // A
}

// AuditEM lists every edge whose assigned rule is narrower than its EM
// floor.
func AuditEM(t *ctree.Tree, te *tech.Tech, lib *cell.Library, inSlew float64, l EMLimit) ([]EMViolation, error) {
	tim := sta.NewIncremental(te, lib)
	floors, err := emFloors(tim, t, te, inSlew, l)
	if err != nil {
		return nil, err
	}
	res, err := tim.Analyze(t, inSlew) // cached: same tree state as the floors
	if err != nil {
		return nil, err
	}
	var out []EMViolation
	for i := range t.Nodes {
		nd := &t.Nodes[i]
		if nd.Parent == ctree.NoNode {
			continue
		}
		rule := te.Rule(nd.Rule)
		if rule.WMult < floors[i] {
			out = append(out, EMViolation{
				Node:     i,
				Rule:     rule.Name,
				Width:    rule.WMult,
				Required: floors[i],
				IRms:     edgeRmsCurrent(res.DownCap[i], te, l),
			})
		}
	}
	return out, nil
}

// EnforceEM upgrades every EM-violating edge to the cheapest rule class
// meeting its width floor. Returns the number of upgraded edges; errors
// if some edge's floor exceeds every class in the menu.
func EnforceEM(t *ctree.Tree, te *tech.Tech, lib *cell.Library, inSlew float64, l EMLimit) (int, error) {
	floors, err := EMFloors(t, te, lib, inSlew, l)
	if err != nil {
		return 0, err
	}
	byCap := rulesByCap(te)
	upgraded := 0
	for i := range t.Nodes {
		nd := &t.Nodes[i]
		if nd.Parent == ctree.NoNode || te.Rule(nd.Rule).WMult >= floors[i] {
			continue
		}
		found := false
		for _, ri := range byCap {
			if te.Rule(ri).WMult >= floors[i] {
				nd.Rule = ri
				upgraded++
				found = true
				break
			}
		}
		if !found {
			return upgraded, fmt.Errorf("core: edge %d needs %.2f× width, menu tops out at %.2f×",
				i, floors[i], maxWidth(te))
		}
	}
	return upgraded, nil
}

func maxWidth(te *tech.Tech) float64 {
	w := 0.0
	for i := 0; i < te.NumRules(); i++ {
		w = math.Max(w, te.Rule(i).WMult)
	}
	return w
}
