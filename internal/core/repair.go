package core

import (
	"fmt"
	"math"

	"smartndr/internal/buffering"
	"smartndr/internal/cell"
	"smartndr/internal/ctree"
	"smartndr/internal/rctree"
	"smartndr/internal/sta"
	"smartndr/internal/tech"
)

// RepairStats reports a skew-repair run.
type RepairStats struct {
	Iters     int
	AddedWire float64 // µm of snaking inserted
	FinalSkew float64 // s
	Converged bool
}

// repairDamping scales each iteration's computed snakes below the exact
// solution: added wire raises stage loads and driver delays, which the
// Elmore-only estimate does not see, so full-strength corrections
// overshoot and oscillate.
const repairDamping = 0.85

// repairSlewCeil is the transition level snaking may push a pin to,
// relative to the technology bound.
const repairSlewCeil = 0.95

// repairPerEdgeDelta caps the delay one edge may absorb per iteration.
// The squared-slew budget is the primary limiter; this cap only prevents a
// single iteration from committing one huge snake whose second-order load
// effects (driver slew degradation) the budget cannot see. It must stay
// large enough that lag concentrates on high-load edges near stage roots,
// where wire snaking is capacitance-cheap — tiny quotas would push the lag
// into leaf edges where a picosecond costs tens of microns of wire.
const repairPerEdgeDelta = 30e-12

// RepairSkew equalizes sink arrival times by wire snaking: every sink's
// lag behind the latest sink is scheduled onto tree edges (highest common
// ancestor first, so shared wire serves whole subtrees), converted to
// extra electrical length via the local Elmore load, and applied with
// damping. Each snake is clipped so the projected transition at the pins
// below stays under the slew bound; lag that cannot be placed on an edge
// falls through to deeper edges with more headroom. Iterates with full
// re-analysis until the skew target is met or the iteration budget runs
// out. Edge lengths only grow; rules and buffers are untouched.
func RepairSkew(t *ctree.Tree, te *tech.Tech, lib *cell.Library, inSlew, targetSkew float64, maxIters int) (RepairStats, error) {
	return RepairToTargets(t, te, lib, inSlew, nil, targetSkew, maxIters)
}

// RepairToTargets is the useful-skew generalization of RepairSkew: every
// sink i aims at arrival base + targets[i] (indexed by sink order, i.e.
// Tree.Sinks). Convergence means the spread of target-adjusted arrivals
// (arrival − target) is at most tol — with zero targets this is exactly
// the global skew. A clock scheduler derives targets from launch/capture
// slacks; this routine realizes them with wire.
func RepairToTargets(t *ctree.Tree, te *tech.Tech, lib *cell.Library, inSlew float64, targets []float64, tol float64, maxIters int) (RepairStats, error) {
	return repairToTargets(sta.NewIncremental(te, lib), t, te, lib, inSlew, targets, tol, maxIters)
}

// repairToTargets runs the repair loop against a caller-supplied timing
// engine, so Optimize's repair rounds share one analyzer (and its
// incremental state) with the rest of the run. Every edge edit — snakes
// and rollback restores alike — is reported through tim.Touch.
func repairToTargets(tim *sta.Incremental, t *ctree.Tree, te *tech.Tech, lib *cell.Library, inSlew float64, targets []float64, tol float64, maxIters int) (RepairStats, error) {
	if tol <= 0 {
		return RepairStats{}, fmt.Errorf("core: non-positive tolerance %g", tol)
	}
	if targets != nil && len(targets) != len(t.Sinks) {
		return RepairStats{}, fmt.Errorf("core: %d targets for %d sinks", len(targets), len(t.Sinks))
	}
	targetOf := func(nodeIdx int) float64 {
		if targets == nil {
			return 0
		}
		return targets[t.Nodes[nodeIdx].SinkIdx]
	}
	adjSpread := func(res *sta.Result) (spread, adjMax float64) {
		lo, hi := math.Inf(1), math.Inf(-1)
		for i := range t.Nodes {
			if t.Nodes[i].SinkIdx == ctree.NoSink {
				continue
			}
			a := res.Arrival[i] - targetOf(i)
			lo = math.Min(lo, a)
			hi = math.Max(hi, a)
		}
		return hi - lo, hi
	}
	targetSkew := tol
	var st RepairStats
	lag := make([]float64, len(t.Nodes))
	given := make([]float64, len(t.Nodes))
	drv := make([]int, len(t.Nodes))
	rdDrv := make([]float64, len(t.Nodes))
	worstBelow := make([]float64, len(t.Nodes))
	budgetSq := make([]float64, len(t.Nodes))
	slewCeil := repairSlewCeil * te.MaxSlew
	damping := repairDamping
	// Divergence guard: wire snaking has second-order couplings (stage
	// loads degrade driver transitions, the arrival maximum chases its own
	// repairs). Any iteration that fails to improve the skew is rolled
	// back and retried at half strength; repair therefore never leaves the
	// tree worse than it found it.
	prevSkew := math.Inf(1)
	baseViol := -1
	snapshot := make([]float64, len(t.Nodes))
	snapWire := 0.0
	for it := 0; it < maxIters; it++ {
		res, err := tim.Analyze(t, inSlew)
		if err != nil {
			return st, err
		}
		if baseViol < 0 {
			baseViol = res.SlewViolations(te.MaxSlew)
		}
		skew, arrMax := adjSpread(res)
		st.FinalSkew = skew
		if skew <= targetSkew {
			st.Converged = true
			return st, nil
		}
		if it > 0 && (skew >= prevSkew*0.999 || res.SlewViolations(te.MaxSlew) > baseViol) {
			// No skew progress, or the snakes' second-order load effects
			// broke a transition the budget model missed: roll the last
			// iteration back and try gentler corrections.
			for i := range t.Nodes {
				if t.Nodes[i].EdgeLen != snapshot[i] {
					t.Nodes[i].EdgeLen = snapshot[i]
					tim.Touch(i)
				}
			}
			st.AddedWire = snapWire
			damping /= 2
			if damping < 0.05 {
				break
			}
			res, err = tim.Analyze(t, inSlew)
			if err != nil {
				return st, err
			}
			skew, arrMax = adjSpread(res)
			st.FinalSkew = skew
		}
		prevSkew = skew
		for i := range t.Nodes {
			snapshot[i] = t.Nodes[i].EdgeLen
		}
		snapWire = st.AddedWire
		st.Iters++

		// Stage ownership and per-stage linearized driver resistance: a
		// snake's wire capacitance also loads its stage driver, slowing
		// the whole stage by Rd·c·dl — a first-order term the snake-length
		// solve must include or every application overshoots.
		t.PreOrder(func(v int) {
			p := t.Nodes[v].Parent
			if p == ctree.NoNode {
				drv[v] = v
				return
			}
			if t.Nodes[p].BufIdx != ctree.NoBuf {
				drv[v] = p
			} else {
				drv[v] = drv[p]
			}
		})
		for _, u := range res.Drivers {
			b := &lib.Buffers[t.Nodes[u].BufIdx]
			rdDrv[u] = buffering.Linearize(b, res.Slew[u]).Rd
		}

		// Worst transition in the subtree below each node: snaking an edge
		// raises slews downstream of it, so the allowance is set by the
		// most critical pin below.
		t.PostOrder(func(v int) {
			w := 0.0
			if t.Nodes[v].BufIdx != ctree.NoBuf || t.IsLeaf(v) {
				w = res.Slew[v]
			}
			for _, k := range t.Nodes[v].Kids {
				if k != ctree.NoNode && worstBelow[k] > w {
					w = worstBelow[k]
				}
			}
			worstBelow[v] = w
		})

		// Bottom-up: lag[v] = the delay every sink below v still needs.
		t.PostOrder(func(v int) {
			if t.IsLeaf(v) {
				lag[v] = arrMax + targetOf(v) - res.Arrival[v]
				return
			}
			m := math.Inf(1)
			for _, k := range t.Nodes[v].Kids {
				if k != ctree.NoNode && lag[k] < m {
					m = lag[k]
				}
			}
			lag[v] = m
		})
		// Top-down: every edge absorbs a small share of its subtree's
		// unmet lag; the remainder cascades to deeper edges in the same
		// iteration. A squared-transition budget, refreshed at every
		// stage boundary (buffers regenerate the signal), bounds the
		// joint RSS slew impact of all snakes along a path.
		applied := false
		t.PreOrder(func(v int) {
			p := t.Nodes[v].Parent
			if p == ctree.NoNode {
				given[v] = 0
				budgetSq[v] = 0
				return
			}
			given[v] = given[p]
			if t.Nodes[p].BufIdx != ctree.NoBuf {
				// New stage: fresh budget from this subtree's most
				// critical pin.
				budgetSq[v] = math.Max(0, slewCeil*slewCeil-worstBelow[v]*worstBelow[v])
			} else {
				budgetSq[v] = budgetSq[p]
			}
			need := lag[v] - given[p]
			if need <= 1e-15 || budgetSq[v] <= 0 {
				return
			}
			delta := math.Min(need*damping, repairPerEdgeDelta)
			// Respect the remaining slew budget: the snake's step slew is
			// ln9·(its wire Elmore) in RSS with everything else on the
			// path.
			wireDelta := delta
			if sq := rctree.Ln9 * rctree.Ln9 * wireDelta * wireDelta; sq > budgetSq[v] {
				wireDelta = math.Sqrt(budgetSq[v]) / rctree.Ln9
				delta = wireDelta
			}
			dl := snakeForStage(delta, t.Nodes[v].Rule, res.DownCap[v], rdDrv[drv[v]], te)
			if dl <= 0 {
				return
			}
			t.Nodes[v].EdgeLen += dl
			tim.Touch(v)
			st.AddedWire += dl
			given[v] += delta
			budgetSq[v] -= rctree.Ln9 * rctree.Ln9 * wireDelta * wireDelta
			applied = true
		})
		if !applied {
			break // every lagging path is slew-blocked; give up
		}
	}
	res, err := tim.Analyze(t, inSlew)
	if err != nil {
		return st, err
	}
	st.FinalSkew, _ = adjSpread(res)
	if st.FinalSkew > prevSkew || res.SlewViolations(te.MaxSlew) > baseViol {
		// The last (unvetted) iteration made things worse: keep the best
		// state instead.
		for i := range t.Nodes {
			if t.Nodes[i].EdgeLen != snapshot[i] {
				t.Nodes[i].EdgeLen = snapshot[i]
				tim.Touch(i)
			}
		}
		st.AddedWire = snapWire
		st.FinalSkew = prevSkew
	}
	st.Converged = st.FinalSkew <= targetSkew
	return st, nil
}

// snakeFor returns the extra wire length on an edge with the given rule
// and within-stage downstream load that adds `delta` seconds of Elmore
// delay:  r·e·(c·e/2 + load) = delta.
func snakeFor(delta float64, rule int, load float64, te *tech.Tech) float64 {
	return snakeForStage(delta, rule, load, 0, te)
}

// snakeForStage additionally charges the stage-driver loading term: the
// snake's wire capacitance c·e raises the driver's delay by rdDrv·c·e,
// which the targeted subtree experiences on top of the wire Elmore:
//
//	(r·c/2)·e² + (r·load + rdDrv·c)·e = delta
func snakeForStage(delta float64, rule int, load, rdDrv float64, te *tech.Tech) float64 {
	if delta <= 0 {
		return 0
	}
	r := te.Layer.RPerUm(te.Rule(rule))
	c := te.Layer.CPerUm(te.Rule(rule))
	A := r * c / 2
	B := r*load + rdDrv*c
	disc := B*B + 4*A*delta
	return (-B + math.Sqrt(disc)) / (2 * A)
}

// elmoreOf returns the Elmore delay a snake of length dl adds.
func elmoreOf(dl float64, rule int, load float64, te *tech.Tech) float64 {
	r := te.Layer.RPerUm(te.Rule(rule))
	c := te.Layer.CPerUm(te.Rule(rule))
	return r * dl * (c*dl/2 + load)
}

// maxSnakeForSlew returns the longest snake on an edge (rule, load) that
// keeps hypot(curSlew, ln9·elmore(dl)) ≤ ceil. Zero when the pin is
// already at or over the ceiling.
func maxSnakeForSlew(curSlew, ceil float64, rule int, load float64, te *tech.Tech) float64 {
	if curSlew >= ceil {
		return 0
	}
	// Allowed extra step slew in RSS.
	extra := math.Sqrt(ceil*ceil - curSlew*curSlew)
	return snakeFor(extra/rctree.Ln9, rule, load, te)
}
