package core

import (
	"math"
	"math/rand"
	"testing"

	"smartndr/internal/cell"
	"smartndr/internal/ctree"
	"smartndr/internal/cts"
	"smartndr/internal/geom"
	"smartndr/internal/sta"
	"smartndr/internal/tech"
)

func randomSinks(n int, seed int64, spread float64) []ctree.Sink {
	rng := rand.New(rand.NewSource(seed))
	sinks := make([]ctree.Sink, n)
	for i := range sinks {
		sinks[i] = ctree.Sink{
			Name: "ff",
			Loc:  geom.Point{X: rng.Float64() * spread, Y: rng.Float64() * spread},
			Cap:  (1 + rng.Float64()*2) * 1e-15,
		}
	}
	return sinks
}

// buildBlanket constructs a buffered tree under the blanket rule.
func buildBlanket(t testing.TB, n int, seed int64, spread float64, te *tech.Tech, lib *cell.Library) *ctree.Tree {
	t.Helper()
	res, err := cts.Build(randomSinks(n, seed, spread), geom.Point{X: spread / 2, Y: spread / 2}, te, lib, cts.Options{})
	if err != nil {
		t.Fatal(err)
	}
	res.Tree.SetAllRules(te.BlanketRule)
	return res.Tree
}

func TestRepairSkewConverges(t *testing.T) {
	te := tech.Tech45()
	lib := cell.Default45()
	for _, tc := range []struct {
		n      int
		spread float64
	}{{60, 1000}, {250, 2500}, {600, 4500}} {
		tr := buildBlanket(t, tc.n, int64(tc.n), tc.spread, te, lib)
		st, err := RepairSkew(tr, te, lib, 40e-12, te.MaxSkew, 30)
		if err != nil {
			t.Fatal(err)
		}
		if !st.Converged {
			t.Errorf("n=%d: repair did not converge, final skew %.2f ps", tc.n, st.FinalSkew*1e12)
		}
		res, err := sta.Analyze(tr, te, lib, 40e-12)
		if err != nil {
			t.Fatal(err)
		}
		if v := res.SlewViolations(te.MaxSlew); v > 0 {
			t.Errorf("n=%d: repair broke %d slews", tc.n, v)
		}
		if err := tr.CheckEmbedding(1e-6); err != nil {
			t.Errorf("n=%d: %v", tc.n, err)
		}
	}
}

func TestRepairSkewNoopOnBalanced(t *testing.T) {
	te := tech.Tech45()
	lib := cell.Default45()
	tr := buildBlanket(t, 100, 3, 1500, te, lib)
	if _, err := RepairSkew(tr, te, lib, 40e-12, te.MaxSkew, 30); err != nil {
		t.Fatal(err)
	}
	wl := tr.TotalWirelength()
	st, err := RepairSkew(tr, te, lib, 40e-12, te.MaxSkew, 30)
	if err != nil {
		t.Fatal(err)
	}
	if st.Iters != 0 || tr.TotalWirelength() != wl {
		t.Errorf("repairing a repaired tree must be a no-op: iters=%d", st.Iters)
	}
}

func TestRepairSkewBadTarget(t *testing.T) {
	te := tech.Tech45()
	lib := cell.Default45()
	tr := buildBlanket(t, 10, 5, 200, te, lib)
	if _, err := RepairSkew(tr, te, lib, 40e-12, 0, 5); err == nil {
		t.Error("zero target must fail")
	}
}

func TestOptimizeReducesPower(t *testing.T) {
	te := tech.Tech45()
	lib := cell.Default45()
	for _, tc := range []struct {
		n      int
		spread float64
	}{{80, 1200}, {300, 3000}} {
		tr := buildBlanket(t, tc.n, int64(tc.n)+100, tc.spread, te, lib)
		if _, err := RepairSkew(tr, te, lib, 40e-12, te.MaxSkew, 30); err != nil {
			t.Fatal(err)
		}
		before, _, err := Evaluate(tr, te, lib, 40e-12)
		if err != nil {
			t.Fatal(err)
		}
		stats, err := Optimize(tr, te, lib, Config{})
		if err != nil {
			t.Fatal(err)
		}
		after, _, err := Evaluate(tr, te, lib, 40e-12)
		if err != nil {
			t.Fatal(err)
		}
		if stats.Downgrades == 0 {
			t.Errorf("n=%d: optimizer found nothing to downgrade", tc.n)
		}
		if after.Power.Total() >= before.Power.Total() {
			t.Errorf("n=%d: power %.4f → %.4f mW, no reduction",
				tc.n, before.Power.Total()*1e3, after.Power.Total()*1e3)
		}
		if after.SlewViol > 0 {
			t.Errorf("n=%d: optimization introduced %d slew violations", tc.n, after.SlewViol)
		}
		if after.Skew > te.MaxSkew {
			t.Errorf("n=%d: final skew %.2f ps over bound %.2f ps",
				tc.n, after.Skew*1e12, te.MaxSkew*1e12)
		}
		// The optimizer moves wire off the blanket class (often onto the
		// capacitance-cheaper spacing-only NDR, so the overall NDR
		// fraction may legitimately stay high).
		if after.LenByRule[te.BlanketRule] >= before.LenByRule[te.BlanketRule] {
			t.Errorf("n=%d: no wire left the blanket rule", tc.n)
		}
	}
}

func TestOptimizeBeatsTopKBaselines(t *testing.T) {
	te := tech.Tech45()
	lib := cell.Default45()
	tr := buildBlanket(t, 300, 41, 3000, te, lib)
	if _, err := RepairSkew(tr, te, lib, 40e-12, te.MaxSkew, 30); err != nil {
		t.Fatal(err)
	}
	smart := tr.Clone()
	if _, err := Optimize(smart, te, lib, Config{}); err != nil {
		t.Fatal(err)
	}
	sm, _, err := Evaluate(smart, te, lib, 40e-12)
	if err != nil {
		t.Fatal(err)
	}
	// Every TopK baseline that meets constraints must cost at least as
	// much switched cap as smart.
	maxLv := MaxStageLevel(tr)
	for k := 0; k <= maxLv+1; k++ {
		base := tr.Clone()
		AssignTopLevels(base, te, k)
		bm, _, err := Evaluate(base, te, lib, 40e-12)
		if err != nil {
			t.Fatal(err)
		}
		if bm.SlewViol > 0 {
			continue // infeasible baseline, not comparable
		}
		if bm.SwitchedCap < sm.SwitchedCap*0.999 {
			t.Errorf("TopK k=%d beats smart: %.3f vs %.3f pF",
				k, bm.SwitchedCap*1e12, sm.SwitchedCap*1e12)
		}
	}
}

func TestOptimizeOrdersAllFeasible(t *testing.T) {
	te := tech.Tech45()
	lib := cell.Default45()
	var caps []float64
	for _, o := range []Order{BySensitivity, ByIndex, ByReverse} {
		tr := buildBlanket(t, 150, 77, 2000, te, lib)
		if _, err := RepairSkew(tr, te, lib, 40e-12, te.MaxSkew, 30); err != nil {
			t.Fatal(err)
		}
		st, err := Optimize(tr, te, lib, Config{Order: o})
		if err != nil {
			t.Fatalf("%v: %v", o, err)
		}
		m, _, err := Evaluate(tr, te, lib, 40e-12)
		if err != nil {
			t.Fatal(err)
		}
		if m.SlewViol > 0 || m.Skew > te.MaxSkew {
			t.Errorf("%v: constraints broken (viol=%d skew=%.2fps)", o, m.SlewViol, m.Skew*1e12)
		}
		if st.Downgrades == 0 {
			t.Errorf("%v: no downgrades", o)
		}
		caps = append(caps, m.SwitchedCap)
	}
	// Sensitivity ordering should not be the worst of the three.
	if caps[0] > caps[1]*1.02 && caps[0] > caps[2]*1.02 {
		t.Errorf("sensitivity order clearly worst: %v", caps)
	}
}

func TestOptimizeDisableRepair(t *testing.T) {
	te := tech.Tech45()
	lib := cell.Default45()
	tr := buildBlanket(t, 150, 99, 2000, te, lib)
	if _, err := RepairSkew(tr, te, lib, 40e-12, te.MaxSkew, 30); err != nil {
		t.Fatal(err)
	}
	norepair := tr.Clone()
	stN, err := Optimize(norepair, te, lib, Config{DisableRepair: true})
	if err != nil {
		t.Fatal(err)
	}
	if stN.RepairWire != 0 {
		t.Error("disabled repair must add no wire")
	}
	repaired := tr.Clone()
	stR, err := Optimize(repaired, te, lib, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if stR.FinalSkew > te.MaxSkew {
		t.Errorf("with repair, skew %.2f ps over bound", stR.FinalSkew*1e12)
	}
	if stN.FinalSkew < stR.FinalSkew {
		t.Errorf("repair should not worsen skew: %.2f vs %.2f ps",
			stR.FinalSkew*1e12, stN.FinalSkew*1e12)
	}
}

func TestEvaluateInventoryConsistent(t *testing.T) {
	te := tech.Tech45()
	lib := cell.Default45()
	tr := buildBlanket(t, 120, 7, 1800, te, lib)
	m, res, err := Evaluate(tr, te, lib, 40e-12)
	if err != nil {
		t.Fatal(err)
	}
	sum := 0.0
	for _, l := range m.LenByRule {
		sum += l
	}
	if math.Abs(sum-m.Wirelength) > 1e-6*m.Wirelength {
		t.Errorf("LenByRule sums to %g, wirelength %g", sum, m.Wirelength)
	}
	if m.NDRFraction != 1 {
		t.Errorf("blanket tree must be 100%% NDR, got %g", m.NDRFraction)
	}
	if m.Buffers != res.BufferCount || m.Buffers < 1 {
		t.Errorf("buffer count mismatch")
	}
	if m.Power.Total() <= 0 || m.SwitchedCap <= 0 {
		t.Error("power must be positive")
	}
	if m.TrackArea <= m.Wirelength*te.Layer.TrackPitch(te.Rule(te.DefaultRule)) {
		t.Error("blanket track area must exceed default-pitch area")
	}
}

func TestStageLevels(t *testing.T) {
	te := tech.Tech45()
	lib := cell.Default45()
	tr := buildBlanket(t, 400, 13, 4000, te, lib)
	lv := StageLevels(tr)
	if lv[tr.Root] != 0 {
		t.Error("root level must be 0")
	}
	maxLv := MaxStageLevel(tr)
	if maxLv < 1 {
		t.Errorf("a 4 mm tree must have multiple stage levels, got %d", maxLv)
	}
	// Levels never decrease toward the leaves.
	for i := range tr.Nodes {
		p := tr.Nodes[i].Parent
		if p != ctree.NoNode && lv[i] < lv[p] {
			t.Fatalf("level decreases from %d to %d", lv[p], lv[i])
		}
	}
}

func TestAssignTopLevels(t *testing.T) {
	te := tech.Tech45()
	lib := cell.Default45()
	tr := buildBlanket(t, 400, 17, 4000, te, lib)
	maxLv := MaxStageLevel(tr)

	AssignTopLevels(tr, te, 0)
	m0, _, err := Evaluate(tr, te, lib, 40e-12)
	if err != nil {
		t.Fatal(err)
	}
	if m0.NDRFraction != 0 {
		t.Errorf("k=0 must be all-default, NDR fraction %g", m0.NDRFraction)
	}
	AssignTopLevels(tr, te, maxLv+1)
	mAll, _, err := Evaluate(tr, te, lib, 40e-12)
	if err != nil {
		t.Fatal(err)
	}
	if mAll.NDRFraction != 1 {
		t.Errorf("k=max+1 must be all-NDR, fraction %g", mAll.NDRFraction)
	}
	AssignTopLevels(tr, te, 1)
	m1, _, err := Evaluate(tr, te, lib, 40e-12)
	if err != nil {
		t.Fatal(err)
	}
	if m1.NDRFraction <= 0 || m1.NDRFraction >= 1 {
		t.Errorf("k=1 must be a mix, fraction %g", m1.NDRFraction)
	}
}

func TestConfigValidate(t *testing.T) {
	bad := []Config{
		{MaxSlew: -1},
		{SlewSafety: 2},
		{MaxPasses: -1},
		{RepairIters: -3},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
	if err := (Config{}).Validate(); err != nil {
		t.Errorf("zero config must be valid (defaults apply): %v", err)
	}
}

func TestOrderString(t *testing.T) {
	for _, o := range []Order{BySensitivity, ByIndex, ByReverse, Order(9)} {
		if o.String() == "" {
			t.Error("empty order name")
		}
	}
}

func BenchmarkOptimize300(b *testing.B) {
	te := tech.Tech45()
	lib := cell.Default45()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		tr := buildBlanket(b, 300, 55, 3000, te, lib)
		if _, err := RepairSkew(tr, te, lib, 40e-12, te.MaxSkew, 30); err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		if _, err := Optimize(tr, te, lib, Config{}); err != nil {
			b.Fatal(err)
		}
	}
}
