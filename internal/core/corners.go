package core

import (
	"fmt"
	"math"

	"smartndr/internal/cell"
	"smartndr/internal/ctree"
	"smartndr/internal/sta"
	"smartndr/internal/tech"
)

// CornerMetrics is the timing view of one analysis corner.
type CornerMetrics struct {
	Corner    tech.Corner
	Skew      float64 // s
	WorstSlew float64 // s
	SlewViol  int
	MaxInsDel float64 // s
}

// MultiCornerReport is the cross-corner summary signoff cares about.
type MultiCornerReport struct {
	Corners []CornerMetrics
	// WorstSkew is the largest single-corner skew.
	WorstSkew float64
	// CrossCornerSkew is the spread of any single sink's arrival across
	// corners, maximized over sinks — the penalty a chip pays when launch
	// and capture paths see different silicon.
	CrossCornerSkew float64
	// TotalViol sums slew violations over corners.
	TotalViol int
}

// EvaluateCorners analyzes the tree at every corner by scaling the
// electrical view (wire R/C and buffer delays) with the corner derates —
// the same mechanism the variation engine uses, so corner and Monte Carlo
// results are directly comparable.
func EvaluateCorners(t *ctree.Tree, te *tech.Tech, lib *cell.Library, inSlew float64, corners []tech.Corner) (*MultiCornerReport, error) {
	if len(corners) == 0 {
		return nil, fmt.Errorf("core: no corners")
	}
	rep := &MultiCornerReport{}
	n := len(t.Nodes)
	// Per-sink arrivals per corner for the cross-corner spread.
	var sinkNodes []int
	for i := range t.Nodes {
		if t.Nodes[i].SinkIdx != ctree.NoSink {
			sinkNodes = append(sinkNodes, i)
		}
	}
	arr := make([][]float64, 0, len(corners))
	for _, c := range corners {
		if err := c.Validate(); err != nil {
			return nil, err
		}
		edgeR := make([]float64, n)
		edgeC := make([]float64, n)
		bufScale := make([]float64, n)
		for i := range t.Nodes {
			nd := &t.Nodes[i]
			if nd.Parent != ctree.NoNode {
				edgeR[i] = te.WireR(nd.EdgeLen, nd.Rule) * c.RFactor
				edgeC[i] = te.WireC(nd.EdgeLen, nd.Rule) * c.CFactor
			}
			bufScale[i] = c.BufFactor
		}
		res, err := sta.AnalyzeOv(t, te, lib, inSlew, &sta.Overrides{
			EdgeR: edgeR, EdgeC: edgeC, BufScale: bufScale,
		})
		if err != nil {
			return nil, err
		}
		worst, _ := res.WorstSlew()
		cm := CornerMetrics{
			Corner:    c,
			Skew:      res.Skew(),
			WorstSlew: worst,
			SlewViol:  res.SlewViolations(te.MaxSlew),
			MaxInsDel: res.MaxSinkArrival(),
		}
		rep.Corners = append(rep.Corners, cm)
		rep.WorstSkew = math.Max(rep.WorstSkew, cm.Skew)
		rep.TotalViol += cm.SlewViol
		ca := make([]float64, len(sinkNodes))
		for si, v := range sinkNodes {
			ca[si] = res.Arrival[v]
		}
		arr = append(arr, ca)
	}
	for si := range sinkNodes {
		lo, hi := math.Inf(1), math.Inf(-1)
		for ci := range arr {
			lo = math.Min(lo, arr[ci][si])
			hi = math.Max(hi, arr[ci][si])
		}
		rep.CrossCornerSkew = math.Max(rep.CrossCornerSkew, hi-lo)
	}
	return rep, nil
}
