// Package core implements the paper's contribution: smart non-default
// routing (NDR) rule assignment for clock power reduction.
//
// A conventional flow routes the entire clock tree with one blanket NDR
// (e.g. double width / double spacing) to guarantee sharp transitions and
// variation robustness — and pays for it in switched capacitance, since a
// 2W2S wire carries 20–30% more capacitance per micron than a default-rule
// wire. Smart NDR assigns a routing rule *per tree edge*: every edge is
// downgraded to the cheapest rule class that keeps all transition (slew)
// constraints met, with the residual skew perturbation cleaned up by a
// wire-snaking skew-repair pass. The result keeps the blanket tree's
// timing guarantees at a fraction of its capacitance.
//
// The package provides:
//
//   - Optimize: the sensitivity-ordered greedy downgrade with stage-local
//     incremental evaluation and integrated skew repair (the "smart" flow);
//   - baseline assignments (all-default, blanket, top-K stage levels) that
//     the experiments compare against;
//   - RepairSkew: Elmore-guided wire snaking usable on any buffered tree;
//   - Evaluate: the shared metrics extraction (power, skew, slew,
//     wirelength, routing-track area).
package core

import (
	"errors"
	"fmt"

	"smartndr/internal/cell"
	"smartndr/internal/ctree"
	"smartndr/internal/obs"
	"smartndr/internal/power"
	"smartndr/internal/sta"
	"smartndr/internal/tech"
)

// Order selects how Optimize ranks downgrade candidates (ablation knob).
type Order int

const (
	// BySensitivity ranks edges by capacitance gain (largest first) —
	// the smart ordering.
	BySensitivity Order = iota
	// ByIndex processes edges in arbitrary structural order.
	ByIndex
	// ByReverse processes edges in reverse structural order.
	ByReverse
)

// String implements fmt.Stringer.
func (o Order) String() string {
	switch o {
	case BySensitivity:
		return "sensitivity"
	case ByIndex:
		return "index"
	case ByReverse:
		return "reverse"
	default:
		return fmt.Sprintf("order(%d)", int(o))
	}
}

// Config controls Optimize.
type Config struct {
	// MaxSlew/MaxSkew override the technology bounds when nonzero.
	MaxSlew float64
	MaxSkew float64
	// InSlew is the clock transition at the root driver input
	// (default 40 ps).
	InSlew float64
	// SlewSafety derates the slew bound during optimization so the final
	// network keeps headroom (default 0.98).
	SlewSafety float64
	// MaxPasses bounds the downgrade sweeps (default 3).
	MaxPasses int
	// EdgeDeltaCap bounds the arrival shift a single edge change may
	// introduce at any stage endpoint; keeps the post-pass skew repair
	// cheap (default: the skew bound).
	EdgeDeltaCap float64
	// Order is the candidate ordering (ablation A1).
	Order Order
	// DisableRepair skips the integrated skew repair (ablation A2).
	DisableRepair bool
	// RepairIters bounds skew-repair iterations (default 25).
	RepairIters int
	// EM, when non-nil, activates electromigration awareness: per-edge
	// width floors are computed up front and no edge is downgraded below
	// its floor. Nil reproduces the slew/skew-only optimization.
	EM *EMLimit
	// DisableIncrementalSTA pins every timing query to a from-scratch
	// analysis instead of the dirty-region update path. The two modes
	// produce byte-identical results (the incremental engine is bitwise
	// exact); this knob exists for A/B measurement and as a safety valve.
	DisableIncrementalSTA bool
	// Tracer, when non-nil, records per-phase spans and optimizer
	// counters (downgrades, upgrades, repair rounds). Nil disables
	// instrumentation at no cost.
	Tracer *obs.Tracer
}

func (c Config) withDefaults(te *tech.Tech) Config {
	if c.MaxSlew == 0 {
		c.MaxSlew = te.MaxSlew
	}
	if c.MaxSkew == 0 {
		c.MaxSkew = te.MaxSkew
	}
	if c.InSlew == 0 {
		c.InSlew = 40e-12
	}
	if c.SlewSafety == 0 {
		c.SlewSafety = 0.98
	}
	if c.MaxPasses == 0 {
		c.MaxPasses = 3
	}
	if c.EdgeDeltaCap == 0 {
		c.EdgeDeltaCap = c.MaxSkew
	}
	if c.RepairIters == 0 {
		c.RepairIters = 25
	}
	return c
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.MaxSlew < 0 || c.MaxSkew < 0 || c.InSlew < 0 {
		return errors.New("core: negative constraint")
	}
	if c.SlewSafety < 0 || c.SlewSafety > 1 {
		return fmt.Errorf("core: slew safety %g out of [0,1]", c.SlewSafety)
	}
	if c.MaxPasses < 0 || c.RepairIters < 0 {
		return errors.New("core: negative iteration bound")
	}
	return nil
}

// Metrics summarizes a clock network for the experiment tables.
type Metrics struct {
	Power       power.Breakdown `json:"power"`
	SwitchedCap float64         `json:"switched_cap"` // F
	Wirelength  float64         `json:"wirelength"`   // µm
	TrackArea   float64         `json:"track_area"`   // µm²
	Buffers     int             `json:"buffers"`
	WorstSlew   float64         `json:"worst_slew"` // s
	SlewViol    int             `json:"slew_violations"`
	Skew        float64         `json:"skew"`          // s
	MaxInsDelay float64         `json:"max_ins_delay"` // s
	// LenByRule[ri] is the wirelength routed under rule ri, µm.
	LenByRule []float64 `json:"len_by_rule"`
	// NDRFraction is the wirelength fraction on non-default rules.
	NDRFraction float64 `json:"ndr_fraction"`
}

// Evaluate analyzes the tree and extracts the full metric set.
func Evaluate(t *ctree.Tree, te *tech.Tech, lib *cell.Library, inSlew float64) (Metrics, *sta.Result, error) {
	return EvaluateTr(t, te, lib, inSlew, nil)
}

// EvaluateTr is Evaluate with instrumentation: the STA and the metric
// extraction record separate spans under "core.evaluate".
func EvaluateTr(t *ctree.Tree, te *tech.Tech, lib *cell.Library, inSlew float64, tr *obs.Tracer) (Metrics, *sta.Result, error) {
	sp := tr.Start("core.evaluate")
	defer sp.End()
	res, err := sta.AnalyzeTr(t, te, lib, inSlew, nil, tr)
	if err != nil {
		return Metrics{}, nil, err
	}
	return extractMetrics(t, te, res, tr), res, nil
}

// EvaluateInc is EvaluateTr with the analysis served by a shared
// dirty-region engine instead of a from-scratch pass: the engine's
// bitwise-exactness contract makes the two interchangeable, which is what
// session responses being byte-identical to cold runs rests on. Edited
// nodes must already have been reported via eng.Touch.
func EvaluateInc(t *ctree.Tree, te *tech.Tech, lib *cell.Library, inSlew float64, eng *sta.Incremental, tr *obs.Tracer) (Metrics, *sta.Result, error) {
	sp := tr.Start("core.evaluate_inc")
	defer sp.End()
	res, err := eng.Analyze(t, inSlew)
	if err != nil {
		return Metrics{}, nil, err
	}
	return extractMetrics(t, te, res, tr), res, nil
}

// extractMetrics folds an analysis result and the tree geometry into the
// experiment-table metric set. Shared by the cold and incremental
// evaluate paths; must stay a pure function of (t, res) so both produce
// identical bytes for identical inputs.
func extractMetrics(t *ctree.Tree, te *tech.Tech, res *sta.Result, tr *obs.Tracer) Metrics {
	exSpan := tr.Start("extract")
	defer exSpan.End()
	m := Metrics{
		Power:       power.Compute(res, te),
		SwitchedCap: res.TotalSwitchedCap(),
		Wirelength:  t.TotalWirelength(),
		Buffers:     res.BufferCount,
		SlewViol:    res.SlewViolations(te.MaxSlew),
		Skew:        res.Skew(),
		MaxInsDelay: res.MaxSinkArrival(),
		LenByRule:   make([]float64, te.NumRules()),
	}
	m.WorstSlew, _ = res.WorstSlew()
	var ndrLen float64
	for i := range t.Nodes {
		n := &t.Nodes[i]
		if n.Parent == ctree.NoNode {
			continue
		}
		m.LenByRule[n.Rule] += n.EdgeLen
		m.TrackArea += n.EdgeLen * te.Layer.TrackPitch(te.Rule(n.Rule))
		if !te.Rule(n.Rule).IsDefault() {
			ndrLen += n.EdgeLen
		}
	}
	if m.Wirelength > 0 {
		m.NDRFraction = ndrLen / m.Wirelength
	}
	return m
}

// AssignAll sets every edge to rule index ri — the all-default and blanket
// baselines.
func AssignAll(t *ctree.Tree, ri int) { t.SetAllRules(ri) }

// StageLevels returns, per node, the level of the buffer stage that owns
// the node's feeding edge: 0 for the root driver's stage, increasing
// downstream. The root node itself is level 0.
func StageLevels(t *ctree.Tree) []int {
	lv := make([]int, len(t.Nodes))
	t.PreOrder(func(i int) {
		p := t.Nodes[i].Parent
		if p == ctree.NoNode {
			lv[i] = 0
			return
		}
		if t.Nodes[p].BufIdx != ctree.NoBuf && p != t.Root {
			lv[i] = lv[p] + 1
		} else {
			lv[i] = lv[p]
		}
	})
	return lv
}

// AssignTopLevels applies the blanket NDR to edges in stage levels < k and
// the default rule to all deeper edges — the "rule-of-thumb" baseline that
// keeps NDR near the root where wires are long.
func AssignTopLevels(t *ctree.Tree, te *tech.Tech, k int) {
	lv := StageLevels(t)
	for i := range t.Nodes {
		if lv[i] < k {
			t.Nodes[i].Rule = te.BlanketRule
		} else {
			t.Nodes[i].Rule = te.DefaultRule
		}
	}
}

// AssignTrunk applies the blanket NDR to the clock trunk — every edge in a
// stage whose driver still has buffers below it — and the default rule to
// the leaf stages (the local nets below the last buffer level). This is
// the practical designer rule-of-thumb baseline: "NDR the trunk, default
// the twigs."
func AssignTrunk(t *ctree.Tree, te *tech.Tech) {
	hasBufBelow := make([]bool, len(t.Nodes))
	t.PostOrder(func(v int) {
		for _, k := range t.Nodes[v].Kids {
			if k == ctree.NoNode {
				continue
			}
			if hasBufBelow[k] || t.Nodes[k].BufIdx != ctree.NoBuf {
				hasBufBelow[v] = true
			}
		}
	})
	drv := make([]int, len(t.Nodes))
	t.PreOrder(func(v int) {
		p := t.Nodes[v].Parent
		if p == ctree.NoNode {
			drv[v] = v
			t.Nodes[v].Rule = te.BlanketRule
			return
		}
		if t.Nodes[p].BufIdx != ctree.NoBuf {
			drv[v] = p
		} else {
			drv[v] = drv[p]
		}
		if hasBufBelow[drv[v]] {
			t.Nodes[v].Rule = te.BlanketRule
		} else {
			t.Nodes[v].Rule = te.DefaultRule
		}
	})
}

// MaxStageLevel returns the deepest stage level in the tree.
func MaxStageLevel(t *ctree.Tree) int {
	maxLv := 0
	for _, lv := range StageLevels(t) {
		if lv > maxLv {
			maxLv = lv
		}
	}
	return maxLv
}
