package core

import (
	"fmt"
	"math"

	"smartndr/internal/cell"
	"smartndr/internal/ctree"
	"smartndr/internal/sta"
	"smartndr/internal/tech"
)

// ExhaustiveResult is the outcome of brute-force optimal assignment.
type ExhaustiveResult struct {
	BestCap   float64 // F, minimum feasible switched cap
	BestRules []int   // per-node rule indices achieving it
	Evaluated int     // complete assignments actually analyzed
	Pruned    int64   // partial assignments cut by the cap bound
	Feasible  bool    // whether any assignment met the constraints
}

// maxExhaustiveEdges bounds the search: 5 rule classes over more edges
// than this explodes past what a test or experiment should pay for.
const maxExhaustiveEdges = 12

// ExhaustiveOptimal finds the minimum-capacitance rule assignment of a
// *small* tree subject to the slew and skew bounds, by enumerating the
// full assignment space with branch-and-bound pruning on the (separable)
// capacitance objective. It exists to measure the greedy optimizer's
// optimality gap — experiment A4 — and as an oracle for tests; it is not
// part of the production flow.
//
// Feasibility uses the same full STA predicate the experiments report:
// no transition above maxSlew, skew at most maxSkew. Edge lengths are
// untouched (no snaking), so compare against Optimize(DisableRepair).
func ExhaustiveOptimal(t *ctree.Tree, te *tech.Tech, lib *cell.Library, inSlew, maxSlew, maxSkew float64) (*ExhaustiveResult, error) {
	var edges []int
	for i := range t.Nodes {
		if t.Nodes[i].Parent != ctree.NoNode {
			edges = append(edges, i)
		}
	}
	if len(edges) > maxExhaustiveEdges {
		return nil, fmt.Errorf("core: %d edges exceeds the exhaustive-search bound of %d", len(edges), maxExhaustiveEdges)
	}
	byCap := rulesByCap(te)
	cheapest := byCap[0]
	// Per-edge wire-cap contribution by rule, and the per-edge floor used
	// for the admissible bound.
	capOf := func(node, ri int) float64 {
		return te.WireC(t.Nodes[node].EdgeLen, ri)
	}
	minRemain := make([]float64, len(edges)+1)
	for i := len(edges) - 1; i >= 0; i-- {
		minRemain[i] = minRemain[i+1] + capOf(edges[i], cheapest)
	}

	saved := make([]int, len(t.Nodes))
	for i := range t.Nodes {
		saved[i] = t.Nodes[i].Rule
	}
	res := &ExhaustiveResult{BestCap: math.Inf(1)}

	// One shared timing engine across the whole enumeration: consecutive
	// complete assignments differ only in the deepest recursion levels, so
	// each analysis is an incremental update over a handful of edges — the
	// ideal workload for the dirty-region path.
	tim := sta.NewIncremental(te, lib)
	var rec func(idx int, partial float64)
	rec = func(idx int, partial float64) {
		if partial+minRemain[idx] >= res.BestCap {
			res.Pruned++
			return
		}
		if idx == len(edges) {
			an, err := tim.Analyze(t, inSlew)
			if err != nil {
				return
			}
			res.Evaluated++
			worst, _ := an.WorstSlew()
			if worst > maxSlew || an.Skew() > maxSkew {
				return
			}
			cap := an.TotalSwitchedCap()
			if cap < res.BestCap {
				res.BestCap = cap
				res.BestRules = make([]int, len(t.Nodes))
				for i := range t.Nodes {
					res.BestRules[i] = t.Nodes[i].Rule
				}
				res.Feasible = true
			}
			return
		}
		for _, ri := range byCap {
			t.Nodes[edges[idx]].Rule = ri
			tim.Touch(edges[idx])
			rec(idx+1, partial+capOf(edges[idx], ri))
		}
		t.Nodes[edges[idx]].Rule = saved[edges[idx]]
		tim.Touch(edges[idx])
	}
	rec(0, 0)

	// Restore the caller's assignment.
	for i := range t.Nodes {
		t.Nodes[i].Rule = saved[i]
	}
	return res, nil
}

// ApplyRules copies a per-node rule vector (e.g. ExhaustiveResult.BestRules)
// onto the tree.
func ApplyRules(t *ctree.Tree, rules []int) error {
	if len(rules) != len(t.Nodes) {
		return fmt.Errorf("core: rule vector has %d entries for %d nodes", len(rules), len(t.Nodes))
	}
	for i := range t.Nodes {
		t.Nodes[i].Rule = rules[i]
	}
	return nil
}
