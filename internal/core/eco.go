// Edits and the ECO applicator behind stateful design sessions.
//
// A session holds one optimized tree and re-evaluates it after small
// engineering change orders (ECOs): a sink moves, a pin cap changes, an
// edge is forced onto a different rule class, the input slew is swept.
// The contract the serve layer builds on is bitwise determinism: applying
// a canonical edit list to a pristine tree must produce the same tree
// bytes whether it happens in one shot (a cold run of the edited spec) or
// by stepping through intermediate states (a warm session). SetState
// guarantees that by always reverting to recorded pristine values before
// applying the desired state in canonical order — floating-point
// round-trips like `x - d + d` never enter the picture.
package core

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"smartndr/internal/ctree"
	"smartndr/internal/geom"
	"smartndr/internal/tech"
)

// ErrEdit tags every edit-validation failure so transport layers can map
// engine rejections to a 400 rather than a 500.
var ErrEdit = errors.New("invalid edit")

// Edit ops. The op decides which fields of Edit are meaningful; every op
// is an absolute set (last write wins), which is what makes canonical
// edit lists order-free for clients.
const (
	OpMoveSink = "move_sink" // Sink, X, Y (µm): relocate a sink pin
	OpSinkCap  = "sink_cap"  // Sink, Cap (F): change a sink pin cap
	OpSinkRule = "sink_rule" // Sink, Rule: re-rule the sink leaf's feeding edge
	OpNodeRule = "node_rule" // Node, Rule: re-rule one tree edge by node index
	OpInSlew   = "in_slew"   // InSlewPS: override the source input slew
)

// Edit is one serialized session delta. Which index/value fields are read
// depends on Op — see the op constants.
type Edit struct {
	Op       string  `json:"op"`
	Sink     int     `json:"sink,omitempty"`
	Node     int     `json:"node,omitempty"`
	X        float64 `json:"x,omitempty"`
	Y        float64 `json:"y,omitempty"`
	Cap      float64 `json:"cap,omitempty"`
	Rule     int     `json:"rule,omitempty"`
	InSlewPS float64 `json:"in_slew_ps,omitempty"`
}

// opRank orders ops inside a canonical edit list. Rule edits addressed by
// sink always precede rule edits addressed by node so that when both name
// the same edge, the node-addressed one deterministically wins.
func opRank(op string) int {
	switch op {
	case OpMoveSink:
		return 0
	case OpSinkCap:
		return 1
	case OpSinkRule:
		return 2
	case OpNodeRule:
		return 3
	case OpInSlew:
		return 4
	}
	return -1
}

// target identifies what an edit writes: one (op kind, index) cell.
type target struct {
	rank int
	idx  int
}

func (e Edit) target() target {
	r := opRank(e.Op)
	switch e.Op {
	case OpMoveSink, OpSinkCap, OpSinkRule:
		return target{r, e.Sink}
	case OpNodeRule:
		return target{r, e.Node}
	default: // in_slew and unknown ops have a single global cell
		return target{r, 0}
	}
}

// Validate checks the fields any tree would reject: unknown op, negative
// index, non-finite or non-positive values. Index upper bounds are only
// known to an ECO bound to a tree; SetState checks those.
func (e Edit) Validate() error {
	switch e.Op {
	case OpMoveSink:
		if e.Sink < 0 {
			return fmt.Errorf("%w: %s sink %d", ErrEdit, e.Op, e.Sink)
		}
		if !finite(e.X) || !finite(e.Y) {
			return fmt.Errorf("%w: %s (%g,%g) not finite", ErrEdit, e.Op, e.X, e.Y)
		}
	case OpSinkCap:
		if e.Sink < 0 {
			return fmt.Errorf("%w: %s sink %d", ErrEdit, e.Op, e.Sink)
		}
		if !(e.Cap > 0) || !finite(e.Cap) {
			return fmt.Errorf("%w: %s cap %g", ErrEdit, e.Op, e.Cap)
		}
	case OpSinkRule:
		if e.Sink < 0 || e.Rule < 0 {
			return fmt.Errorf("%w: %s sink %d rule %d", ErrEdit, e.Op, e.Sink, e.Rule)
		}
	case OpNodeRule:
		if e.Node < 0 || e.Rule < 0 {
			return fmt.Errorf("%w: %s node %d rule %d", ErrEdit, e.Op, e.Node, e.Rule)
		}
	case OpInSlew:
		if !(e.InSlewPS > 0) || !finite(e.InSlewPS) {
			return fmt.Errorf("%w: %s %g ps", ErrEdit, e.Op, e.InSlewPS)
		}
	default:
		return fmt.Errorf("%w: unknown op %q", ErrEdit, e.Op)
	}
	return nil
}

func finite(f float64) bool { return !math.IsNaN(f) && !math.IsInf(f, 0) }

// canonical strips the fields the op does not read, so two edits that
// mean the same thing marshal to the same bytes.
func (e Edit) canonical() Edit {
	c := Edit{Op: e.Op}
	switch e.Op {
	case OpMoveSink:
		c.Sink, c.X, c.Y = e.Sink, e.X, e.Y
	case OpSinkCap:
		c.Sink, c.Cap = e.Sink, e.Cap
	case OpSinkRule:
		c.Sink, c.Rule = e.Sink, e.Rule
	case OpNodeRule:
		c.Node, c.Rule = e.Node, e.Rule
	case OpInSlew:
		c.InSlewPS = e.InSlewPS
	default:
		return e
	}
	return c
}

// CanonicalEdits reduces an edit sequence to its canonical form: every op
// is an absolute set, so only the last write to each (op, index) target
// survives; survivors are field-normalized and sorted by (op, index).
// An empty result is returned as nil so "no edits" has one spelling —
// callers hash the canonical list into cache keys. The input is not
// validated; invalid edits canonicalize like any others and are rejected
// when applied.
func CanonicalEdits(edits []Edit) []Edit {
	if len(edits) == 0 {
		return nil
	}
	last := make(map[target]Edit, len(edits))
	for _, e := range edits {
		last[e.target()] = e.canonical()
	}
	out := make([]Edit, 0, len(last))
	for _, e := range last { //lint:commutative — collected then sorted below
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool {
		ti, tj := out[i].target(), out[j].target()
		if ti.rank != tj.rank {
			return ti.rank < tj.rank
		}
		return ti.idx < tj.idx
	})
	return out
}

// ECO applies canonical edit lists to one optimized tree, bitwise
// reversibly. It snapshots every value an edit can overwrite at
// construction; SetState restores those recorded originals before
// applying the desired state, so any edit path to a given canonical list
// lands on the identical tree bytes.
//
// ECO copies the Sinks slice up front: ctree.Tree.Clone shares it, and a
// sink-cap edit through a shared backing array would corrupt sibling
// clones of the same build.
type ECO struct {
	t  *ctree.Tree
	te *tech.Tech

	leafOf      []int        // sink index -> its leaf node
	origLoc     []geom.Point // per sink: pristine sink location
	origNodeLoc []geom.Point // per sink: pristine leaf-node location
	origCap     []float64    // per sink
	origEdgeLen []float64    // per sink: the leaf's pristine feeding EdgeLen
	surplus     []float64    // per sink: pristine EdgeLen - Dist(parent, sink)
	origRule    []int        // per node

	live     map[target]Edit // edits currently applied to t
	inSlewPS float64         // 0 = no in_slew override live
}

// NewECO snapshots the pristine state of an optimized tree. The tree must
// be valid (every sink covered by exactly one leaf).
func NewECO(t *ctree.Tree, te *tech.Tech) (*ECO, error) {
	e := &ECO{
		t:           t,
		te:          te,
		leafOf:      make([]int, len(t.Sinks)),
		origLoc:     make([]geom.Point, len(t.Sinks)),
		origNodeLoc: make([]geom.Point, len(t.Sinks)),
		origCap:     make([]float64, len(t.Sinks)),
		origEdgeLen: make([]float64, len(t.Sinks)),
		surplus:     make([]float64, len(t.Sinks)),
		origRule:    make([]int, len(t.Nodes)),
		live:        make(map[target]Edit),
	}
	for i := range e.leafOf {
		e.leafOf[i] = ctree.NoNode
	}
	// Clone shares Sinks between trees; edits must not leak across clones.
	t.Sinks = append([]ctree.Sink(nil), t.Sinks...)
	for v := range t.Nodes {
		nd := &t.Nodes[v]
		e.origRule[v] = nd.Rule
		if nd.SinkIdx == ctree.NoSink {
			continue
		}
		s := nd.SinkIdx
		if s < 0 || s >= len(t.Sinks) || e.leafOf[s] != ctree.NoNode {
			return nil, fmt.Errorf("core: tree sink coverage broken at node %d", v)
		}
		e.leafOf[s] = v
		e.origLoc[s] = t.Sinks[s].Loc
		// DME may embed the leaf a hair off the pin; revert must restore
		// the node's own pristine location bitwise, not the sink's.
		e.origNodeLoc[s] = nd.Loc
		e.origCap[s] = t.Sinks[s].Cap
		e.origEdgeLen[s] = nd.EdgeLen
		if nd.Parent != ctree.NoNode {
			// Snaking surplus of the pristine embedding; a moved sink
			// keeps its surplus so the edge stays a valid embedding.
			e.surplus[s] = nd.EdgeLen - t.Nodes[nd.Parent].Loc.Dist(nd.Loc)
		}
	}
	for s, v := range e.leafOf {
		if v == ctree.NoNode {
			return nil, fmt.Errorf("core: sink %d not covered by the tree", s)
		}
	}
	return e, nil
}

// Tree returns the tree the ECO mutates.
func (e *ECO) Tree() *ctree.Tree { return e.t }

// InSlew returns the session input slew: the live in_slew override if one
// is applied, else base. The ps→s conversion happens in exactly one place
// so warm and cold paths compute the identical float.
func (e *ECO) InSlew(base float64) float64 {
	if e.inSlewPS > 0 {
		return e.inSlewPS * 1e-12
	}
	return base
}

// check validates an edit against the bound tree.
func (e *ECO) check(ed Edit) error {
	if err := ed.Validate(); err != nil {
		return err
	}
	switch ed.Op {
	case OpMoveSink, OpSinkCap, OpSinkRule:
		if ed.Sink >= len(e.t.Sinks) {
			return fmt.Errorf("%w: %s sink %d out of range (%d sinks)", ErrEdit, ed.Op, ed.Sink, len(e.t.Sinks))
		}
	case OpNodeRule:
		if ed.Node >= len(e.t.Nodes) {
			return fmt.Errorf("%w: %s node %d out of range (%d nodes)", ErrEdit, ed.Op, ed.Node, len(e.t.Nodes))
		}
	}
	switch ed.Op {
	case OpSinkRule, OpNodeRule:
		if ed.Rule >= e.te.NumRules() {
			return fmt.Errorf("%w: rule %d out of range (%d rules)", ErrEdit, ed.Rule, e.te.NumRules())
		}
	}
	return nil
}

// SetState makes the tree's edit state exactly CanonicalEdits(edits):
// live edits absent from the desired state revert to their recorded
// pristine values, then every desired edit is applied in canonical order.
// touch, if non-nil, is called with each tree node whose analysis inputs
// may have changed (the hook a dirty-region engine hangs off). On a
// validation error the tree is untouched.
func (e *ECO) SetState(edits []Edit, touch func(node int)) error {
	desired := CanonicalEdits(edits)
	for _, ed := range desired {
		if err := e.check(ed); err != nil {
			return err
		}
	}
	// Revert live edits that the desired state drops, in target order so
	// the walk itself is deterministic.
	var stale []target
	keep := make(map[target]bool, len(desired))
	for _, ed := range desired {
		keep[ed.target()] = true
	}
	for tg := range e.live { //lint:commutative — collected then sorted below
		if !keep[tg] {
			stale = append(stale, tg)
		}
	}
	sort.Slice(stale, func(i, j int) bool {
		if stale[i].rank != stale[j].rank {
			return stale[i].rank < stale[j].rank
		}
		return stale[i].idx < stale[j].idx
	})
	for _, tg := range stale {
		e.revert(e.live[tg], touch)
		delete(e.live, tg)
	}
	for _, ed := range desired {
		e.apply(ed, touch)
		e.live[ed.target()] = ed
	}
	return nil
}

// Live returns the canonical edit list currently applied to the tree.
func (e *ECO) Live() []Edit {
	out := make([]Edit, 0, len(e.live))
	for _, ed := range e.live { //lint:commutative — CanonicalEdits sorts
		out = append(out, ed)
	}
	return CanonicalEdits(out)
}

// apply writes one validated edit into the tree. Every op is an absolute
// set computed from pristine snapshots, never from the current value, so
// re-applying is idempotent and any apply order inside one target is moot.
func (e *ECO) apply(ed Edit, touch func(int)) {
	switch ed.Op {
	case OpMoveSink:
		s := ed.Sink
		v := e.leafOf[s]
		loc := geom.Point{X: ed.X, Y: ed.Y}
		e.t.Sinks[s].Loc = loc
		e.t.Nodes[v].Loc = loc
		if p := e.t.Nodes[v].Parent; p != ctree.NoNode {
			e.t.Nodes[v].EdgeLen = e.surplus[s] + e.t.Nodes[p].Loc.Dist(loc)
		}
		e.mark(v, touch)
	case OpSinkCap:
		e.t.Sinks[ed.Sink].Cap = ed.Cap
		e.mark(e.leafOf[ed.Sink], touch)
	case OpSinkRule:
		v := e.leafOf[ed.Sink]
		e.t.Nodes[v].Rule = ed.Rule
		e.mark(v, touch)
	case OpNodeRule:
		// The root has no feeding edge; a root rule edit is an inert
		// no-op everywhere (STA and metrics skip parentless nodes), so
		// it is accepted rather than special-cased by every client.
		e.t.Nodes[ed.Node].Rule = ed.Rule
		e.mark(ed.Node, touch)
	case OpInSlew:
		e.inSlewPS = ed.InSlewPS
	}
}

// revert restores the pristine values an edit overwrote. Originals are
// restored from the snapshot bitwise — recomputing them would not be
// exact ((a-b)+b != a in floats).
func (e *ECO) revert(ed Edit, touch func(int)) {
	switch ed.Op {
	case OpMoveSink:
		s := ed.Sink
		v := e.leafOf[s]
		e.t.Sinks[s].Loc = e.origLoc[s]
		e.t.Nodes[v].Loc = e.origNodeLoc[s]
		e.t.Nodes[v].EdgeLen = e.origEdgeLen[s]
		e.mark(v, touch)
	case OpSinkCap:
		e.t.Sinks[ed.Sink].Cap = e.origCap[ed.Sink]
		e.mark(e.leafOf[ed.Sink], touch)
	case OpSinkRule:
		v := e.leafOf[ed.Sink]
		e.t.Nodes[v].Rule = e.origRule[v]
		e.mark(v, touch)
	case OpNodeRule:
		e.t.Nodes[ed.Node].Rule = e.origRule[ed.Node]
		e.mark(ed.Node, touch)
	case OpInSlew:
		e.inSlewPS = 0
	}
}

func (e *ECO) mark(v int, touch func(int)) {
	if touch != nil {
		touch(v)
	}
}
