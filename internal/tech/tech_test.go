package tech

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestBuiltinsValidate(t *testing.T) {
	for _, tt := range []*Tech{Tech45(), Tech65()} {
		if err := tt.Validate(); err != nil {
			t.Errorf("%s: %v", tt.Name, err)
		}
	}
}

func TestByName(t *testing.T) {
	for _, name := range []string{"tech45", "45", "tech65", "65"} {
		if _, err := ByName(name); err != nil {
			t.Errorf("ByName(%q): %v", name, err)
		}
	}
	if _, err := ByName("tech7"); err == nil {
		t.Error("unknown tech must error")
	} else if !strings.Contains(err.Error(), "tech7") {
		t.Errorf("error should name the unknown tech: %v", err)
	}
}

func TestRuleOrderingPhysics(t *testing.T) {
	tt := Tech45()
	def := tt.Rules[tt.DefaultRule]
	blanket := tt.Rules[tt.BlanketRule]
	l := tt.Layer

	if l.RPerUm(blanket) >= l.RPerUm(def) {
		t.Error("NDR must reduce resistance per micron")
	}
	if l.CPerUm(blanket) <= l.CPerUm(def) {
		t.Error("full NDR (2W2S) must cost more capacitance than default")
	}
	// Spacing-only NDR reduces cap (less coupling, same area).
	i, ok := tt.RuleByName("1W2S")
	if !ok {
		t.Fatal("1W2S missing")
	}
	if l.CPerUm(tt.Rules[i]) >= l.CPerUm(def) {
		t.Error("1W2S must reduce capacitance")
	}
	// Width-only NDR is the most capacitive two-mult class.
	j, ok := tt.RuleByName("2W1S")
	if !ok {
		t.Fatal("2W1S missing")
	}
	if l.CPerUm(tt.Rules[j]) <= l.CPerUm(blanket) {
		t.Error("2W1S must cost more cap than 2W2S")
	}
	// RC delay product must improve with the blanket NDR.
	rcDef := l.RPerUm(def) * l.CPerUm(def)
	rcNDR := l.RPerUm(blanket) * l.CPerUm(blanket)
	if rcNDR >= rcDef {
		t.Errorf("blanket NDR must reduce RC product: def %g vs ndr %g", rcDef, rcNDR)
	}
}

func TestWireRC(t *testing.T) {
	tt := Tech45()
	r := tt.WireR(1000, tt.DefaultRule)
	c := tt.WireC(1000, tt.DefaultRule)
	if r <= 0 || c <= 0 {
		t.Fatal("wire RC must be positive")
	}
	// 1 mm of default wire at 3 Ω/µm.
	if math.Abs(r-3000) > 1 {
		t.Errorf("WireR(1mm) = %g, want ≈3000", r)
	}
	// Linearity in length.
	if got := tt.WireR(2000, tt.DefaultRule); math.Abs(got-2*r) > 1e-9 {
		t.Error("WireR not linear in length")
	}
	if got := tt.WireC(2000, tt.DefaultRule); math.Abs(got-2*c) > 1e-24 {
		t.Error("WireC not linear in length")
	}
}

func TestTrackPitch(t *testing.T) {
	tt := Tech45()
	def := tt.Rules[tt.DefaultRule]
	ndr := tt.Rules[tt.BlanketRule]
	if tt.Layer.TrackPitch(ndr) <= tt.Layer.TrackPitch(def) {
		t.Error("NDR must consume more routing pitch")
	}
}

func TestRPerUmMonotoneInWidth(t *testing.T) {
	l := Tech45().Layer
	f := func(w1, w2 float64) bool {
		a := 1 + math.Abs(math.Mod(w1, 4))
		b := a + math.Abs(math.Mod(w2, 4)) + 0.01
		ra := l.RPerUm(RuleClass{WMult: a, SMult: 1})
		rb := l.RPerUm(RuleClass{WMult: b, SMult: 1})
		return rb < ra
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCPerUmMonotone(t *testing.T) {
	l := Tech45().Layer
	f := func(s1, s2 float64) bool {
		a := 1 + math.Abs(math.Mod(s1, 4))
		b := a + math.Abs(math.Mod(s2, 4)) + 0.01
		ca := l.CPerUm(RuleClass{WMult: 1, SMult: a})
		cb := l.CPerUm(RuleClass{WMult: 1, SMult: b})
		return cb < ca // wider spacing → less coupling → less cap
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestValidateCatchesBadConfigs(t *testing.T) {
	mutations := []struct {
		name   string
		mutate func(*Tech)
	}{
		{"empty name", func(t *Tech) { t.Name = "" }},
		{"zero vdd", func(t *Tech) { t.Vdd = 0 }},
		{"negative freq", func(t *Tech) { t.Freq = -1 }},
		{"zero min width", func(t *Tech) { t.Layer.MinWidth = 0 }},
		{"zero rsheet", func(t *Tech) { t.Layer.RSheet = 0 }},
		{"negative carea", func(t *Tech) { t.Layer.CArea = -1 }},
		{"no rules", func(t *Tech) { t.Rules = nil }},
		{"default oob", func(t *Tech) { t.DefaultRule = 99 }},
		{"blanket oob", func(t *Tech) { t.BlanketRule = -1 }},
		{"default not 1W1S", func(t *Tech) { t.DefaultRule = 3 }},
		{"zero max slew", func(t *Tech) { t.MaxSlew = 0 }},
		{"zero max skew", func(t *Tech) { t.MaxSkew = 0 }},
		{"zero stage cap", func(t *Tech) { t.MaxCapPerStage = 0 }},
		{"dup rule name", func(t *Tech) { t.Rules[1].Name = t.Rules[0].Name }},
		{"empty rule name", func(t *Tech) { t.Rules[2].Name = "" }},
		{"sub-1 multiplier", func(t *Tech) { t.Rules[1].WMult = 0.5 }},
		{"nan multiplier", func(t *Tech) { t.Rules[1].SMult = math.NaN() }},
		{"negative node", func(t *Tech) { t.Node = -45 }},
	}
	for _, m := range mutations {
		tt := Tech45()
		m.mutate(tt)
		if err := tt.Validate(); err == nil {
			t.Errorf("%s: Validate should fail", m.name)
		}
	}
}

func TestBuiltinsCarryNode(t *testing.T) {
	if n := Tech45().Node; n != 45 {
		t.Errorf("tech45 node = %d, want 45", n)
	}
	if n := Tech65().Node; n != 65 {
		t.Errorf("tech65 node = %d, want 65", n)
	}
}

func TestRuleByName(t *testing.T) {
	tt := Tech45()
	i, ok := tt.RuleByName("2W2S")
	if !ok || tt.Rules[i].Name != "2W2S" {
		t.Errorf("RuleByName failed: %d %v", i, ok)
	}
	if _, ok := tt.RuleByName("9W9S"); ok {
		t.Error("unknown rule should not resolve")
	}
}

func TestIsDefault(t *testing.T) {
	if !(RuleClass{Name: "d", WMult: 1, SMult: 1}).IsDefault() {
		t.Error("1W1S should be default")
	}
	if (RuleClass{Name: "n", WMult: 2, SMult: 1}).IsDefault() {
		t.Error("2W1S should not be default")
	}
}
