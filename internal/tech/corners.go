package tech

import "fmt"

// Corner is a process/voltage/temperature analysis corner, expressed as
// multiplicative derates on the nominal electrical view — the standard
// signoff abstraction. Wire R and C derate with metal thickness and
// dielectric spread; buffer delay derates with device speed.
type Corner struct {
	Name      string  `json:"name"`
	RFactor   float64 `json:"r_factor"`   // wire resistance multiplier
	CFactor   float64 `json:"c_factor"`   // wire capacitance multiplier
	BufFactor float64 `json:"buf_factor"` // buffer delay multiplier
}

// Validate checks the corner.
func (c Corner) Validate() error {
	if c.Name == "" {
		return fmt.Errorf("tech: corner with empty name")
	}
	if c.RFactor <= 0 || c.CFactor <= 0 || c.BufFactor <= 0 {
		return fmt.Errorf("tech: corner %s has non-positive derate", c.Name)
	}
	return nil
}

// StandardCorners returns the classic three-corner set: typical, slow
// (hot, thin metal, weak devices), and fast (cold, thick metal, strong
// devices). Derate magnitudes follow published 45 nm signoff practice.
func StandardCorners() []Corner {
	return []Corner{
		{Name: "typ", RFactor: 1.00, CFactor: 1.00, BufFactor: 1.00},
		{Name: "slow", RFactor: 1.15, CFactor: 1.08, BufFactor: 1.25},
		{Name: "fast", RFactor: 0.88, CFactor: 0.94, BufFactor: 0.80},
	}
}

// CornerByName looks a standard corner up.
func CornerByName(name string) (Corner, error) {
	for _, c := range StandardCorners() {
		if c.Name == name {
			return c, nil
		}
	}
	return Corner{}, fmt.Errorf("tech: unknown corner %q (have typ, slow, fast)", name)
}
