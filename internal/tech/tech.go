// Package tech models the process technology visible to clock-tree
// synthesis: the clock routing layer's parasitics as a function of the
// routing rule (width/spacing class), supply and clock parameters, and the
// set of non-default rules (NDRs) the router may choose from.
//
// The wire model is the standard parameterized form that commercial
// extractors expose to CTS engines:
//
//	r(w)    = Rsheet / (w · Wmin)                      [Ω/µm]
//	c(w, s) = Carea·(w · Wmin) + Cfringe + Ccouple / s [F/µm]
//
// where w and s are the width and spacing multipliers of the rule class
// (w = s = 1 for the default rule). Widening a wire cuts resistance but
// grows area capacitance; widening spacing cuts the coupling term. A 2W2S
// NDR therefore switches more capacitance per micron than the default rule
// — the power cost that smart NDR assignment recovers.
package tech

import (
	"errors"
	"fmt"
	"math"
)

// RuleClass is one routing rule: a width and spacing multiplier pair over
// the layer minimums. The default rule is {1, 1}.
type RuleClass struct {
	Name  string  `json:"name"`
	WMult float64 `json:"w_mult"` // width multiplier ≥ 1
	SMult float64 `json:"s_mult"` // spacing multiplier ≥ 1
}

// IsDefault reports whether the rule is the minimum-width, minimum-spacing
// default rule.
func (r RuleClass) IsDefault() bool { return r.WMult == 1 && r.SMult == 1 }

// Layer describes the metal layer pair used for clock routing (we model the
// H/V pair as one electrical layer, the usual CTS abstraction).
type Layer struct {
	Name     string  `json:"name"`
	MinWidth float64 `json:"min_width"` // µm
	MinSpace float64 `json:"min_space"` // µm
	RSheet   float64 `json:"r_sheet"`   // Ω/sq
	CArea    float64 `json:"c_area"`    // F/µm per µm of width
	CFringe  float64 `json:"c_fringe"`  // F/µm
	CCouple  float64 `json:"c_couple"`  // F/µm at minimum spacing
}

// RPerUm returns the wire resistance per micron under the given rule.
func (l Layer) RPerUm(rule RuleClass) float64 {
	return l.RSheet / (l.MinWidth * rule.WMult)
}

// CPerUm returns the wire capacitance per micron under the given rule.
func (l Layer) CPerUm(rule RuleClass) float64 {
	return l.CArea*(l.MinWidth*rule.WMult) + l.CFringe + l.CCouple/rule.SMult
}

// TrackPitch returns the routing pitch consumed by a wire of this rule:
// width plus one spacing. Smart NDR also reduces routing-resource usage;
// the experiments report this as a secondary metric.
func (l Layer) TrackPitch(rule RuleClass) float64 {
	return l.MinWidth*rule.WMult + l.MinSpace*rule.SMult
}

// Tech is a complete technology description for the clock network.
type Tech struct {
	Name string `json:"name"`
	// Node is the process node class in nanometres (45, 65, ...). It
	// keys default-library selection for custom technologies, so a
	// 65 nm-class tech named anything gets the right buffer cells. Zero
	// means unspecified; selection then falls back to name matching.
	Node  int     `json:"node,omitempty"`
	Vdd   float64 `json:"vdd"`   // V
	Freq  float64 `json:"freq"`  // Hz, nominal clock frequency
	Layer Layer   `json:"layer"` // clock routing layer

	// Rules holds every available rule class. Rules[DefaultRule] must be
	// the {1,1} class; Rules[BlanketRule] is the class a conventional flow
	// applies to the whole tree.
	Rules       []RuleClass `json:"rules"`
	DefaultRule int         `json:"default_rule"`
	BlanketRule int         `json:"blanket_rule"`

	ViaR float64 `json:"via_r"` // Ω per layer change
	ViaC float64 `json:"via_c"` // F per layer change

	// Constraint defaults; benchmarks may override.
	MaxSlew float64 `json:"max_slew"` // s, max transition anywhere on the net
	MaxSkew float64 `json:"max_skew"` // s, global skew bound

	// MaxCapPerStage bounds the capacitance one buffer may drive; the
	// buffering pass inserts a level when a stage exceeds it.
	MaxCapPerStage float64 `json:"max_cap_per_stage"` // F
}

// Rule returns the rule class at index i.
func (t *Tech) Rule(i int) RuleClass { return t.Rules[i] }

// NumRules returns the number of available rule classes.
func (t *Tech) NumRules() int { return len(t.Rules) }

// RuleByName looks a rule class up by name.
func (t *Tech) RuleByName(name string) (int, bool) {
	for i, r := range t.Rules {
		if r.Name == name {
			return i, true
		}
	}
	return 0, false
}

// WireR returns the resistance of a wire of the given length (µm) under
// rule index ri.
func (t *Tech) WireR(length float64, ri int) float64 {
	return t.Layer.RPerUm(t.Rules[ri]) * length
}

// WireC returns the capacitance of a wire of the given length (µm) under
// rule index ri.
func (t *Tech) WireC(length float64, ri int) float64 {
	return t.Layer.CPerUm(t.Rules[ri]) * length
}

// Validate checks internal consistency. Every loader calls this before the
// technology is used; the error messages name the offending field.
func (t *Tech) Validate() error {
	switch {
	case t.Name == "":
		return errors.New("tech: empty name")
	case t.Node < 0:
		return fmt.Errorf("tech %s: negative node %d", t.Name, t.Node)
	case t.Vdd <= 0:
		return fmt.Errorf("tech %s: non-positive vdd %g", t.Name, t.Vdd)
	case t.Freq <= 0:
		return fmt.Errorf("tech %s: non-positive freq %g", t.Name, t.Freq)
	case t.Layer.MinWidth <= 0 || t.Layer.MinSpace <= 0:
		return fmt.Errorf("tech %s: non-positive layer minimums", t.Name)
	case t.Layer.RSheet <= 0:
		return fmt.Errorf("tech %s: non-positive sheet resistance", t.Name)
	case t.Layer.CArea < 0 || t.Layer.CFringe < 0 || t.Layer.CCouple < 0:
		return fmt.Errorf("tech %s: negative capacitance coefficient", t.Name)
	case len(t.Rules) == 0:
		return fmt.Errorf("tech %s: no rule classes", t.Name)
	case t.DefaultRule < 0 || t.DefaultRule >= len(t.Rules):
		return fmt.Errorf("tech %s: default rule index %d out of range", t.Name, t.DefaultRule)
	case t.BlanketRule < 0 || t.BlanketRule >= len(t.Rules):
		return fmt.Errorf("tech %s: blanket rule index %d out of range", t.Name, t.BlanketRule)
	case !t.Rules[t.DefaultRule].IsDefault():
		return fmt.Errorf("tech %s: rule %q marked default is not 1W1S", t.Name, t.Rules[t.DefaultRule].Name)
	case t.MaxSlew <= 0:
		return fmt.Errorf("tech %s: non-positive max slew %g", t.Name, t.MaxSlew)
	case t.MaxSkew <= 0:
		return fmt.Errorf("tech %s: non-positive max skew %g", t.Name, t.MaxSkew)
	case t.MaxCapPerStage <= 0:
		return fmt.Errorf("tech %s: non-positive max cap per stage %g", t.Name, t.MaxCapPerStage)
	}
	seen := make(map[string]bool, len(t.Rules))
	for i, r := range t.Rules {
		if r.Name == "" {
			return fmt.Errorf("tech %s: rule %d has empty name", t.Name, i)
		}
		if seen[r.Name] {
			return fmt.Errorf("tech %s: duplicate rule name %q", t.Name, r.Name)
		}
		seen[r.Name] = true
		if r.WMult < 1 || r.SMult < 1 {
			return fmt.Errorf("tech %s: rule %q has multiplier below 1", t.Name, r.Name)
		}
		if math.IsNaN(r.WMult) || math.IsNaN(r.SMult) {
			return fmt.Errorf("tech %s: rule %q has NaN multiplier", t.Name, r.Name)
		}
	}
	return nil
}

// standardRules is the rule menu shared by the built-in technologies:
// the default class plus the spacing-only, width-only, full, and heavy NDRs.
func standardRules() []RuleClass {
	return []RuleClass{
		{Name: "1W1S", WMult: 1, SMult: 1},
		{Name: "1W2S", WMult: 1, SMult: 2},
		{Name: "2W1S", WMult: 2, SMult: 1},
		{Name: "2W2S", WMult: 2, SMult: 2},
		{Name: "3W3S", WMult: 3, SMult: 3},
	}
}

// Tech45 returns a 45 nm-class technology with a semi-global clock layer.
// Coefficients are set so that the per-micron RC of each rule class tracks
// published 45 nm interconnect data: the 2W2S NDR halves resistance at the
// cost of ~28% more capacitance than the default rule.
func Tech45() *Tech {
	t := &Tech{
		Name: "tech45",
		Node: 45,
		Vdd:  1.0,
		Freq: 1.0e9,
		Layer: Layer{
			Name:     "M5M6",
			MinWidth: 0.070,    // µm
			MinSpace: 0.070,    // µm
			RSheet:   0.21,     // Ω/sq → 3.0 Ω/µm at 1W
			CArea:    1.40e-15, // F/µm per µm width
			CFringe:  0.030e-15,
			CCouple:  0.080e-15,
		},
		Rules:          standardRules(),
		DefaultRule:    0,
		BlanketRule:    3, // 2W2S
		ViaR:           2.0,
		ViaC:           0.05e-15,
		MaxSlew:        100e-12,
		MaxSkew:        25e-12,
		MaxCapPerStage: 120e-15,
	}
	if err := t.Validate(); err != nil {
		panic("tech: built-in tech45 invalid: " + err.Error())
	}
	return t
}

// Tech65 returns a 65 nm-class technology. Wires are wider and less
// resistive; coupling is a smaller share of total capacitance, so NDRs buy
// less and the smart assignment sheds them more aggressively.
func Tech65() *Tech {
	t := &Tech{
		Name: "tech65",
		Node: 65,
		Vdd:  1.1,
		Freq: 750e6,
		Layer: Layer{
			Name:     "M5M6",
			MinWidth: 0.100,
			MinSpace: 0.100,
			RSheet:   0.16, // → 1.6 Ω/µm at 1W
			CArea:    1.10e-15,
			CFringe:  0.040e-15,
			CCouple:  0.060e-15,
		},
		Rules:          standardRules(),
		DefaultRule:    0,
		BlanketRule:    3,
		ViaR:           1.5,
		ViaC:           0.08e-15,
		MaxSlew:        120e-12,
		MaxSkew:        30e-12,
		MaxCapPerStage: 150e-15,
	}
	if err := t.Validate(); err != nil {
		panic("tech: built-in tech65 invalid: " + err.Error())
	}
	return t
}

// ByName returns a built-in technology by name.
func ByName(name string) (*Tech, error) {
	switch name {
	case "tech45", "45":
		return Tech45(), nil
	case "tech65", "65":
		return Tech65(), nil
	default:
		return nil, fmt.Errorf("tech: unknown technology %q (have tech45, tech65)", name)
	}
}
