package analysis

import "go/ast"

// Wallclock forbids reading the wall clock (time.Now, time.Since,
// time.Until) outside internal/obs and the CLIs. Engine packages must
// stay replayable: a path whose behavior or output depends on the real
// clock cannot be resumed, diffed, or compared across runs. obs owns
// all span timing; package main (the CLIs and examples) may measure
// whatever it likes. A deliberate in-engine measurement — e.g. a
// runtime-scaling experiment whose *subject* is wall time — carries a
// //lint:allow wallclock annotation with its justification.
var Wallclock = &Analyzer{
	Name: "wallclock",
	Doc:  "forbids time.Now/Since/Until outside internal/obs and package main",
	Run:  runWallclock,
}

func runWallclock(pass *Pass) error {
	if pass.Pkg.Name() == "main" || pathBase(pass.Pkg.Path()) == "obs" {
		return nil
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			pkg, fn := pkgFunc(pass.Info, call)
			if pkg == "time" && (fn == "Now" || fn == "Since" || fn == "Until") {
				pass.Reportf(call.Pos(),
					"time.%s reads the wall clock in a deterministic package; route timing through obs spans or annotate //lint:allow wallclock with a justification",
					fn)
			}
			return true
		})
	}
	return nil
}
