// Package a is the gateleak golden package: the release func returned
// by par.Gate.Acquire must be called or deferred on every path out of
// the function and out of the loop iteration that acquired it.
package a

import (
	"context"
	"errors"

	"smartndr/internal/par"
)

// Flagged: the early return leaks the slot.
func LeakOnReturn(ctx context.Context, g *par.Gate, fail bool) error {
	release, err := g.Acquire(ctx) // want "gate release release is not called on every path"
	if err != nil {
		return err
	}
	if fail {
		return errors.New("boom")
	}
	release()
	return nil
}

// Flagged: the release func is thrown away; the slot can never free.
func Discarded(ctx context.Context, g *par.Gate) {
	_, _ = g.Acquire(ctx) // want "gate release func is discarded"
}

// Flagged: the winner path releases, but slow iterations leak their
// slot when the iteration ends.
func LeakInLoop(ctx context.Context, g *par.Gate, n int) {
	for i := 0; i < n; i++ {
		release, err := g.Acquire(ctx) // want "gate release release acquired in a loop is not called"
		if err != nil {
			return
		}
		if i%2 == 0 {
			release()
		}
	}
}

// Flagged: a defer inside the loop body does not run until the
// function returns, so slots accumulate across iterations.
func DeferInLoop(ctx context.Context, g *par.Gate, n int) {
	for i := 0; i < n; i++ {
		release, err := g.Acquire(ctx) // want "called only by a defer registered in the same iteration"
		if err != nil {
			return
		}
		defer release()
	}
}

// Clean: the standard idiom — acquire, check the error, defer.
func DeferAfterErrCheck(ctx context.Context, g *par.Gate) error {
	release, err := g.Acquire(ctx)
	if err != nil {
		return err
	}
	defer release()
	return work(ctx)
}

// Clean: released inside a deferred cleanup closure.
func DeferredClosure(ctx context.Context, g *par.Gate) error {
	release, err := g.Acquire(ctx)
	if err != nil {
		return err
	}
	defer func() {
		release()
	}()
	return work(ctx)
}

// Clean: released explicitly on both branch exits.
func ReleasedOnAllPaths(ctx context.Context, g *par.Gate, fast bool) error {
	release, err := g.Acquire(ctx)
	if err != nil {
		return err
	}
	if fast {
		release()
		return nil
	}
	werr := work(ctx)
	release()
	return werr
}

// Clean: released before each iteration ends, hedge-loser style.
func ReleasedInLoop(ctx context.Context, g *par.Gate, n int) {
	for i := 0; i < n; i++ {
		release, err := g.Acquire(ctx)
		if err != nil {
			continue
		}
		if work(ctx) != nil {
			release()
			continue
		}
		release()
	}
}

// Clean: the release escapes — ownership (and the obligation) moves to
// the caller, as in a pool handing out slot-scoped cleanup funcs.
func Escapes(ctx context.Context, g *par.Gate) (func(), error) {
	release, err := g.Acquire(ctx)
	if err != nil {
		return nil, err
	}
	return release, nil
}

// Clean: a deliberate leak on the failure path, annotated with why.
func Allowed(ctx context.Context, g *par.Gate, fail bool) error {
	//lint:allow gateleak slot intentionally pinned until process exit
	release, err := g.Acquire(ctx)
	if err != nil {
		return err
	}
	if fail {
		return nil
	}
	release()
	return nil
}

func work(ctx context.Context) error { return nil }
