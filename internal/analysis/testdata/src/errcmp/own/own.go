// Package own is the all-clean errcmp variant: a package that declares
// its own sentinels and compares against them — the sentinel-return
// idiom — produces no findings.
package own

import "errors"

// ErrSaturated is returned, unwrapped, when the queue is full.
var ErrSaturated = errors.New("saturated")

// ErrClosed is returned, unwrapped, after Close.
var ErrClosed = errors.New("closed")

// Classify maps this package's own sentinels to outcomes; identity
// comparison is safe because every return site is in this file.
func Classify(err error) string {
	switch {
	case err == nil:
		return "ok"
	case err == ErrSaturated:
		return "retry"
	case err != ErrClosed:
		return "fatal"
	default:
		return "done"
	}
}
