// Package a is the errcmp golden package: error values must be
// compared with errors.Is/errors.As, never == / != / type asserts,
// because one fmt.Errorf("%w") anywhere in the call chain breaks
// identity.
package a

import (
	"errors"
	"fmt"
	"io"
	"os"
)

// ErrLocal is this package's own sentinel: comparing against it inside
// the package is the sentinel-return idiom and stays exempt (see own.go
// for the all-clean variant).
var ErrLocal = errors.New("local")

// Flagged: identity comparison against another package's sentinel.
func CompareForeign(err error) bool {
	return err == io.EOF // want "error compared with == does not see through wrapped errors"
}

// Flagged: != has the same hazard.
func CompareForeignNeq(err error) bool {
	if err != io.ErrUnexpectedEOF { // want "error compared with != does not see through wrapped errors"
		return true
	}
	return false
}

// Flagged: a bare type assertion cannot see through wrapping.
func AssertConcrete(err error) bool {
	_, ok := err.(*os.PathError) // want "type assertion on an error value does not see through wrapped errors"
	return ok
}

// Flagged: a type switch on an error has the same blind spot.
func SwitchOnType(err error) string {
	switch err.(type) { // want "type switch on an error value does not see through wrapped errors"
	case *os.PathError:
		return "path"
	default:
		return "other"
	}
}

// Flagged: switching on the error value compares each case with ==.
func SwitchOnValue(err error) string {
	switch err { // want "switch on an error value compares with =="
	case io.EOF:
		return "eof"
	default:
		return "other"
	}
}

// Clean: nil checks are the universal idiom, not sentinel comparisons.
func NilChecks(err error) error {
	if err != nil {
		return fmt.Errorf("wrapped: %w", err)
	}
	for err == nil {
		return nil
	}
	return err
}

// Clean: errors.Is and errors.As are the wrap-safe forms.
func WrapSafe(err error) bool {
	var pe *os.PathError
	return errors.Is(err, io.EOF) || errors.As(err, &pe)
}

// Clean: comparing against the package's own sentinel — the package
// controls every return site and guarantees it is never wrapped.
func OwnSentinel(err error) bool {
	return err == ErrLocal
}

// Clean: a deliberate identity comparison, annotated with why.
func Allowed(err error) bool {
	//lint:allow errcmp the decoder contract returns io.EOF unwrapped
	return err == io.EOF
}
