// Package client is the httpbody golden package: every *http.Response
// acquired in a function must have its Body closed on every path.
package client

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
)

// Flagged: the body is never closed at all.
func NeverClosed(c *http.Client, url string) (int, error) {
	resp, err := c.Get(url) // want "response body resp.Body is not closed on every path"
	if err != nil {
		return 0, err
	}
	return resp.StatusCode, nil
}

// Flagged: closed on the happy path but leaked on the early return.
func LeakOnEarlyReturn(c *http.Client, url string) ([]byte, error) {
	resp, err := c.Get(url) // want "response body resp.Body is not closed on every path"
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("status %d", resp.StatusCode)
	}
	data, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	return data, err
}

// Flagged: closed in only one switch arm.
func LeakInSwitch(c *http.Client, url string) error {
	resp, err := c.Get(url) // want "response body resp.Body is not closed on every path"
	if err != nil {
		return err
	}
	switch resp.StatusCode {
	case http.StatusOK:
		resp.Body.Close()
		return nil
	case http.StatusNotFound:
		return fmt.Errorf("not found")
	}
	return nil
}

// Flagged: each iteration acquires a response the body never closes.
func LeakInLoop(c *http.Client, urls []string) int {
	n := 0
	for _, u := range urls {
		resp, err := c.Get(u) // want "response body resp.Body acquired in a loop is not closed"
		if err != nil {
			continue
		}
		n += resp.StatusCode
	}
	return n
}

// Clean: the canonical idiom — error check, then defer Close.
func DeferAfterErrCheck(c *http.Client, req *http.Request) (int, error) {
	resp, err := c.Do(req)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	return resp.StatusCode, nil
}

// Clean: Close inside a deferred closure.
func DeferredClosure(c *http.Client, url string) (string, error) {
	resp, err := c.Get(url)
	if err != nil {
		return "", err
	}
	defer func() {
		_ = resp.Body.Close()
	}()
	data, err := io.ReadAll(resp.Body)
	return string(data), err
}

// Clean: closed explicitly on every path.
func ClosedOnAllPaths(c *http.Client, url string, out any) error {
	resp, err := c.Get(url)
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		resp.Body.Close()
		return fmt.Errorf("status %d", resp.StatusCode)
	}
	err = json.NewDecoder(resp.Body).Decode(out)
	resp.Body.Close()
	return err
}

// Clean: the inverted guard — the response only exists when err == nil.
func InvertedGuard(c *http.Client, url string) int {
	resp, err := c.Get(url)
	if err == nil {
		defer resp.Body.Close()
		return resp.StatusCode
	}
	return 0
}

// Clean: the response escapes to the caller, which owns the Close.
func Escapes(c *http.Client, url string) (*http.Response, error) {
	resp, err := c.Get(url)
	if err != nil {
		return nil, err
	}
	return resp, nil
}

// Clean: closed in a loop before the iteration ends.
func ClosedInLoop(c *http.Client, urls []string) int {
	n := 0
	for _, u := range urls {
		resp, err := c.Get(u)
		if err != nil {
			continue
		}
		n += resp.StatusCode
		resp.Body.Close()
	}
	return n
}

// Clean: a deliberate exception, suppressed with a justification.
func Allowed(c *http.Client, url string) int {
	//lint:allow httpbody the process exits immediately after this probe
	resp, err := c.Get(url)
	if err != nil {
		return 0
	}
	return resp.StatusCode
}
