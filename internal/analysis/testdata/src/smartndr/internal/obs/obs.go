// Package obs is a minimal stub of the real smartndr/internal/obs with
// the method set the analyzers key on (receiver types and names must
// match; behavior is irrelevant to type-checking golden packages).
package obs

// Attr is one key/value annotation on a span.
type Attr struct {
	Key   string
	Value any
}

// S returns a string attribute.
func S(key, value string) Attr { return Attr{Key: key, Value: value} }

// I returns an integer attribute.
func I(key string, value int) Attr { return Attr{Key: key, Value: value} }

// Tracer mirrors obs.Tracer.
type Tracer struct{}

// New returns a tracer.
func New(sink any) *Tracer { return nil }

// Start opens an ambient-stack span.
func (t *Tracer) Start(name string, attrs ...Attr) *Span { return nil }

// Add bumps a named counter.
func (t *Tracer) Add(name string, delta float64) {}

// Gauge sets a named gauge.
func (t *Tracer) Gauge(name string, v float64) {}

// Observe records into a named histogram.
func (t *Tracer) Observe(name string, v float64) {}

// Registry mirrors obs.Registry.
type Registry struct{}

// Add bumps a named counter.
func (r *Registry) Add(name string, delta float64) {}

// Set sets a named gauge.
func (r *Registry) Set(name string, v float64) {}

// Histogram returns the named histogram.
func (r *Registry) Histogram(name string) *Histogram { return nil }

// Histogram mirrors obs.Histogram.
type Histogram struct{}

// Observe records one value.
func (h *Histogram) Observe(v float64) {}

// Span mirrors obs.Span.
type Span struct{}

// Start opens an ambient-stack child span.
func (s *Span) Start(name string, attrs ...Attr) *Span { return nil }

// Child opens a stack-free child span.
func (s *Span) Child(name string, attrs ...Attr) *Span { return nil }

// Set attaches an attribute.
func (s *Span) Set(key string, value any) {}

// End closes the span.
func (s *Span) End() {}
