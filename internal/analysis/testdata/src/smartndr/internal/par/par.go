// Package par is a minimal stub of the real smartndr/internal/par with
// the function set the analyzers key on.
package par

import "context"

// Workers resolves a worker-count knob.
func Workers(n int) int { return n }

// ForEach runs fn(i) for every i in [0, n).
func ForEach(ctx context.Context, workers, n int, fn func(i int) error) error {
	for i := 0; i < n; i++ {
		if err := fn(i); err != nil {
			return err
		}
	}
	return nil
}

// ForEachWorker is ForEach with the worker id passed to fn.
func ForEachWorker(ctx context.Context, workers, n int, fn func(worker, i int) error) error {
	for i := 0; i < n; i++ {
		if err := fn(0, i); err != nil {
			return err
		}
	}
	return nil
}

// Gate mirrors par.Gate: bounded admission with a release func.
type Gate struct{}

// NewGate returns a gate with the given slot and queue bounds.
func NewGate(slots, queue int) *Gate { return &Gate{} }

// Acquire takes a slot, returning the release func the caller must run.
func (g *Gate) Acquire(ctx context.Context) (release func(), err error) {
	return func() {}, nil
}

// Source is a reseedable source.
type Source struct{ state uint64 }

// Seed resets the stream.
func (s *Source) Seed(seed int64) { s.state = uint64(seed) }

// Uint64 returns the next output.
func (s *Source) Uint64() uint64 { s.state++; return s.state }

// Int63 implements rand.Source.
func (s *Source) Int63() int64 { return int64(s.Uint64() >> 1) }

// SubstreamSeed derives a per-item seed.
func SubstreamSeed(seed int64, i int) int64 { return seed + int64(i) }
