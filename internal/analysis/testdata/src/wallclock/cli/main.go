// Command cli shows that package main (the CLIs and examples) is
// exempt from wallclock.
package main

import (
	"fmt"
	"time"
)

func main() {
	t0 := time.Now() // clean: package main may measure wall time
	fmt.Println(time.Since(t0))
}
