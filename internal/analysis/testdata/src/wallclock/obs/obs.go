// Package obs is exempt from wallclock: the real internal/obs owns all
// span timing.
package obs

import "time"

// Clean: obs may read the clock.
func Stamp() time.Time { return time.Now() }
