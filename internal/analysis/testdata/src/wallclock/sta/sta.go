// Package sta is a wallclock golden package: a deterministic engine
// package (non-main, not obs) must not read the wall clock. Its path
// element "sta" also pins the acceptance case "a time.Now in
// internal/sta makes the linter exit nonzero".
package sta

import "time"

// Flagged: all three wall-clock reads.
func Measure() time.Duration {
	t0 := time.Now()    // want "time.Now reads the wall clock in a deterministic package"
	d := time.Since(t0) // want "time.Since reads the wall clock in a deterministic package"
	d += time.Until(t0) // want "time.Until reads the wall clock in a deterministic package"
	return d
}

// Clean: an annotated, justified measurement.
func Profile() time.Time {
	return time.Now() //lint:allow wallclock — this golden case documents the escape hatch
}

// Clean: non-clock uses of package time are fine.
func Budget() time.Duration { return 3 * time.Second }
