// Package lib is the ctxflow golden package for library code:
// context.Background/TODO are forbidden — callees must inherit the
// caller's deadline and cancellation.
package lib

import (
	"context"
	"time"
)

// Flagged: a fresh root context detaches this call tree from the
// caller.
func FreshRoot() error {
	return ping(context.Background()) // want "context.Background in library code detaches callees"
}

// Flagged: TODO is the same detachment with a different name.
func TodoRoot() error {
	return ping(context.TODO()) // want "context.TODO in library code detaches callees"
}

// Flagged: worse — a context parameter is in scope and discarded.
func DiscardsParam(ctx context.Context) error {
	return ping(context.Background()) // want "context.Background discards the in-scope context \"ctx\""
}

// Flagged: closures inherit the enclosing function's context too.
func DiscardsInClosure(ctx context.Context) func() error {
	return func() error {
		return ping(context.TODO()) // want "context.TODO discards the in-scope context \"ctx\""
	}
}

// Clean: the context threads through, derived where a bound is needed.
func Threads(ctx context.Context) error {
	dctx, cancel := context.WithTimeout(ctx, time.Second)
	defer cancel()
	return ping(dctx)
}

// Clean: a deliberate root for a process-lifetime worker, annotated.
func AllowedRoot() error {
	//lint:allow ctxflow detached janitor outlives every request
	return ping(context.Background())
}

func ping(ctx context.Context) error { return nil }
