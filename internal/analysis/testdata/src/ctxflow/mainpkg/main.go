// Command mainpkg is the ctxflow golden for package main: minting a
// root context is allowed at the top of the process — unless a context
// parameter is already in scope, which must thread through instead.
package main

import "context"

func main() {
	ctx := context.Background() // clean: package main owns the root
	run(ctx)
}

// run takes the process context; minting a new root here severs it.
func run(ctx context.Context) error {
	return step(context.Background()) // want "context.Background discards the in-scope context \"ctx\""
}

// probe has no context parameter, so package main may root one.
func probe() error {
	return step(context.TODO()) // clean: main, no context in scope
}

func step(ctx context.Context) error { return nil }
