// Package core is a maporder golden package: its import path ends in
// "core", so it is in the result-producing scope.
package core

import "sort"

// Flagged: raw map iteration in a result-producing package.
func sumValues(m map[string]float64) float64 {
	total := 0.0
	for _, v := range m { // want "range over map m: iteration order is nondeterministic"
		total += v
	}
	return total
}

// Flagged: map literals are no better.
func firstRule() int {
	for _, ri := range map[string]int{"a": 1, "b": 2} { // want "range over map map\\[string\\]int"
		return ri
	}
	return 0
}

// Clean: the collect-then-sort idiom is recognized.
func sortedKeys(m map[string]float64) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Clean: an annotated commutative fold.
func maxValue(m map[int]float64) float64 {
	best := 0.0
	for _, v := range m { //lint:commutative — max is order-independent
		if v > best {
			best = v
		}
	}
	return best
}

// Flagged: collecting values (not keys) does not make the order safe
// even with a later sort of a different slice.
func values(m map[string]int) []int {
	var keys []string
	var vals []int
	for _, v := range m { // want "range over map m"
		vals = append(vals, v)
	}
	sort.Strings(keys)
	return vals
}
