// Package other is outside the maporder scope (its path element is not
// a result-producing package name), so nothing here is flagged.
package other

// Clean: out of scope.
func Sum(m map[string]float64) float64 {
	total := 0.0
	for _, v := range m {
		total += v
	}
	return total
}
