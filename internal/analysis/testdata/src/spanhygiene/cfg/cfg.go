// Package cfg exercises the dataflow engine's CFG edge cases through
// spanhygiene: goto, labeled break/continue out of nested loops,
// select with and without default, and defer-inside-loop — a flagged
// and a clean variant for each.
package cfg

import (
	"errors"

	"smartndr/internal/obs"
)

// Flagged: the goto path skips the End.
func GotoLeak(tr *obs.Tracer, fail bool) error {
	sp := tr.Start("work") // want "span sp is not Ended on every path"
	if fail {
		goto bail
	}
	sp.End()
	return nil
bail:
	return errors.New("boom")
}

// Clean: both the goto path and the fall-through reach the End.
func GotoClean(tr *obs.Tracer, fast bool) error {
	sp := tr.Start("work")
	if fast {
		goto done
	}
	sp.Set("busy", true)
done:
	sp.End()
	return nil
}

// Flagged: break outer ends the outer iteration with sp still open.
func LabeledBreakLeak(root *obs.Span, rows [][]int) {
outer:
	for _, row := range rows {
		sp := root.Child("row") // want "span sp opened in a loop body is not Ended"
		for _, v := range row {
			if v < 0 {
				break outer
			}
		}
		sp.End()
	}
}

// Clean: the span is opened outside the loops and deferred, so the
// labeled break terminates no obligation.
func LabeledBreakClean(root *obs.Span, rows [][]int) {
	sp := root.Child("scan")
	defer sp.End()
outer:
	for _, row := range rows {
		for _, v := range row {
			if v < 0 {
				break outer
			}
		}
	}
}

// Flagged: continue outer ends the outer iteration with sp still open.
func LabeledContinueLeak(root *obs.Span, rows [][]int) {
outer:
	for _, row := range rows {
		sp := root.Child("row") // want "span sp opened in a loop body is not Ended"
		for _, v := range row {
			if v == 0 {
				continue outer
			}
		}
		sp.End()
	}
}

// Clean: every path out of the outer iteration Ends first.
func LabeledContinueClean(root *obs.Span, rows [][]int) {
outer:
	for _, row := range rows {
		sp := root.Child("row")
		for _, v := range row {
			if v == 0 {
				sp.End()
				continue outer
			}
		}
		sp.End()
	}
}

// Flagged: the default arm leaves the span open.
func SelectDefaultLeak(root *obs.Span, ch <-chan int) {
	sp := root.Child("wait") // want "span sp is not Ended on every path"
	select {
	case <-ch:
		sp.End()
	default:
	}
}

// Clean: every select arm, including default, Ends the span.
func SelectDefaultClean(root *obs.Span, ch <-chan int) {
	sp := root.Child("wait")
	select {
	case <-ch:
		sp.End()
	default:
		sp.End()
	}
}

// Clean: without a default the select blocks until some case fires —
// there is no fall-through path that could leak the span.
func SelectNoDefaultClean(root *obs.Span, a, b <-chan int) {
	sp := root.Child("wait")
	select {
	case <-a:
		sp.End()
	case <-b:
		sp.End()
	}
}

// Flagged: a defer inside the loop body runs at function return, not
// at iteration end, so each iteration pins another open span.
func DeferInLoopLeak(root *obs.Span, n int) {
	for i := 0; i < n; i++ {
		sp := root.Child("iter") // want "Ended only by a defer registered in the same iteration"
		defer sp.End()
	}
}

// Clean: Ending before the iteration closes each span in turn.
func DeferInLoopClean(root *obs.Span, n int) {
	for i := 0; i < n; i++ {
		sp := root.Child("iter")
		sp.Set("i", i)
		sp.End()
	}
}
