// Package a is the spanhygiene golden package: spans must End on every
// path, and concurrent code must open children with Span.Child.
package a

import (
	"context"
	"errors"

	"smartndr/internal/obs"
	"smartndr/internal/par"
)

// Flagged: sp leaks on the early error return.
func LeakOnReturn(tr *obs.Tracer, fail bool) error {
	sp := tr.Start("work") // want "span sp is not Ended on every path"
	if fail {
		return errors.New("boom")
	}
	sp.End()
	return nil
}

// Flagged: the handle is thrown away, so nothing can End the span.
func Discarded(tr *obs.Tracer) {
	tr.Start("fire-and-forget") // want "span is opened but its handle is discarded"
	_ = tr.Start("blanked")     // want "span is opened but its handle is discarded"
}

// Flagged: each iteration opens a span the body never closes.
func LeakInLoop(root *obs.Span, n int) {
	for i := 0; i < n; i++ {
		sp := root.Child("iter") // want "span sp opened in a loop body is not Ended"
		sp.Set("i", i)
	}
}

// Flagged: ambient-stack Start inside a go statement races the tracer's
// span stack. The discarded-handle report fires at the same call.
func ConcurrentAmbient(tr *obs.Tracer) {
	go func() {
		tr.Start("racy") // want "Tracer.Start uses the tracer's ambient span stack inside a go statement" "span is opened but its handle is discarded"
	}()
}

// Flagged: Span.Start inside a par worker closure.
func WorkerAmbient(ctx context.Context, sp *obs.Span, n int) error {
	return par.ForEach(ctx, 0, n, func(i int) error {
		c := sp.Start("item") // want "Span.Start uses the tracer's ambient span stack inside a par worker closure"
		defer c.End()
		return nil
	})
}

// Clean: defer right after Start covers every path.
func DeferEnd(tr *obs.Tracer, fail bool) error {
	sp := tr.Start("work")
	defer sp.End()
	if fail {
		return errors.New("boom")
	}
	return nil
}

// Clean: End inside a deferred closure also covers every path.
func DeferClosureEnd(tr *obs.Tracer) (err error) {
	sp := tr.Start("work")
	defer func() {
		sp.Set("err", err)
		sp.End()
	}()
	return nil
}

// Clean: every arm of the branch Ends the span explicitly.
func AllPathsEnd(tr *obs.Tracer, fast bool) {
	sp := tr.Start("work")
	if fast {
		sp.End()
		return
	}
	sp.Set("slow", true)
	sp.End()
}

// Clean: the worker opens a stack-free child and closes it per item.
func WorkerChild(ctx context.Context, sp *obs.Span, n int) error {
	return par.ForEach(ctx, 0, n, func(i int) error {
		c := sp.Child("item", obs.I("i", i))
		defer c.End()
		return nil
	})
}

// Clean: the span escapes — ownership (and the End obligation) moves to
// the caller, so the local check stands down.
func OpenSection(tr *obs.Tracer, name string) *obs.Span {
	sp := tr.Start(name, obs.S("kind", "section"))
	return sp
}
