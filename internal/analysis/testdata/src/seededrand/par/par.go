// Package par is exempt from seededrand (the real internal/par is the
// substream layer itself), so global draws here are not flagged.
package par

import "math/rand"

// Clean: the par package may touch the global source.
func Probe() float64 { return rand.Float64() }
