// Package engine is a seededrand golden package: math/rand global-state
// functions are forbidden outside internal/par.
package engine

import (
	"math/rand"
	randv2 "math/rand/v2"

	"smartndr/internal/par"
)

// Flagged: global-source draws and seeding.
func Jitter() float64 {
	rand.Seed(42)           // want "rand.Seed draws from the package-global random source"
	x := rand.Float64()     // want "rand.Float64 draws from the package-global random source"
	n := rand.Intn(10)      // want "rand.Intn draws from the package-global random source"
	y := randv2.Float64()   // want "rand/v2.Float64 draws from the package-global random source"
	rand.Shuffle(3, swapOf) // want "rand.Shuffle draws from the package-global random source"
	return x + float64(n) + y
}

func swapOf(i, j int) {}

// Clean: explicit per-stream seeding through the par substream API.
func Trial(seed int64, i int) float64 {
	var src par.Source
	src.Seed(par.SubstreamSeed(seed, i))
	rng := rand.New(&src)
	return rng.Float64()
}

// Clean: a directly seeded source is reproducible too.
func Direct(seed int64) int {
	rng := rand.New(rand.NewSource(seed))
	return rng.Intn(100)
}
