// Package a is the floatorder golden package: no compound float
// assignment into captured state inside par worker closures.
package a

import (
	"context"

	"smartndr/internal/par"
)

// Flagged: scheduling-order float accumulation into captured targets.
func SharedAccumulation(ctx context.Context, xs []float64) (float64, error) {
	var sum float64
	prod := 1.0
	stats := struct{ total float64 }{}
	err := par.ForEach(ctx, 0, len(xs), func(i int) error {
		sum += xs[i]         // want "float accumulation into captured sum inside a par worker closure"
		prod *= xs[i]        // want "float accumulation into captured prod inside a par worker closure"
		stats.total += xs[i] // want "float accumulation into captured stats.total inside a par worker closure"
		return nil
	})
	return sum + prod + stats.total, err
}

// Flagged: even a per-worker slot is order-dependent, because the
// worker-to-item mapping changes with scheduling.
func PerWorkerSlots(ctx context.Context, workers int, xs []float64) ([]float64, error) {
	acc := make([]float64, workers)
	err := par.ForEachWorker(ctx, workers, len(xs), func(w, i int) error {
		acc[w] += xs[i] // want "float accumulation into captured acc\\[w\\] inside a par worker closure"
		return nil
	})
	return acc, err
}

// Clean: per-item slots written with plain assignment, reduced serially.
func IndexedSlots(ctx context.Context, xs []float64) (float64, error) {
	out := make([]float64, len(xs))
	err := par.ForEach(ctx, 0, len(xs), func(i int) error {
		out[i] = xs[i] * xs[i]
		return nil
	})
	var sum float64
	for _, v := range out {
		sum += v
	}
	return sum, err
}

// Clean: the accumulator is local to the closure.
func LocalAccumulator(ctx context.Context, xs [][]float64, out []float64) error {
	return par.ForEach(ctx, 0, len(xs), func(i int) error {
		var rowSum float64
		for _, v := range xs[i] {
			rowSum += v
		}
		out[i] = rowSum
		return nil
	})
}

// Clean: integer accumulation is associative; only floats are flagged.
// (Racy int writes are the race detector's department, not this one's.)
func IntAccumulation(ctx context.Context, xs []int, hits *int64) error {
	return par.ForEach(ctx, 0, len(xs), func(i int) error {
		*hits += int64(xs[i])
		return nil
	})
}

// Clean: an audited exception stands down with an annotation.
func Audited(ctx context.Context, xs []float64) (float64, error) {
	var sum float64
	err := par.ForEach(ctx, 1, len(xs), func(i int) error {
		sum += xs[i] //lint:allow floatorder — single-worker fan-out, sequential by construction
		return nil
	})
	return sum, err
}
