// Package clean is the metricname negative golden package: convention
// names pass untouched and an annotated exception is honored.
package clean

import "smartndr/internal/obs"

// Record uses only constant, convention-form names.
func Record(tr *obs.Tracer, reg *obs.Registry) {
	tr.Add("clean.requests", 1)
	tr.Gauge("clean.queue_depth", 4)
	tr.Observe("clean.wait_seconds", 0.25)
	reg.Add("clean.errors", 1)
	reg.Set("clean.inflight", 2)
	reg.Histogram("clean.run_seconds").Observe(1.5)
}

// Bridge mirrors counters from a legacy system whose names predate the
// convention; the exception is deliberate and justified in place.
func Bridge(reg *obs.Registry, legacy map[string]float64) {
	for name, v := range legacy {
		reg.Add(name, v) //lint:allow metricname legacy bridge forwards externally-owned names
	}
}
