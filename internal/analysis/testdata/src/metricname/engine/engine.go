// Package engine is the metricname golden package: metric names at
// obs call sites must be constant strings in pkg.snake_case form.
package engine

import (
	"fmt"

	"smartndr/internal/obs"
)

// Flagged: the name is assembled at runtime, so the metric namespace
// cannot be enumerated statically.
func DynamicName(tr *obs.Tracer, scheme string) {
	tr.Add("engine."+scheme, 1)                      // want "metric name for Tracer.Add must be a constant string"
	tr.Gauge(fmt.Sprintf("engine.%s_ps", scheme), 2) // want "metric name for Tracer.Gauge must be a constant string"
}

// Flagged: a variable name is just as unenumerable as a computed one.
func VariableName(reg *obs.Registry, name string) {
	reg.Add(name, 1) // want "metric name for Registry.Add must be a constant string"
}

// Flagged: constant, but not pkg.snake_case.
func BadFormat(tr *obs.Tracer, reg *obs.Registry) {
	tr.Add("nodot", 1)                  // want `metric name "nodot" does not match the pkg.snake_case convention`
	tr.Gauge("engine.CamelCase", 1)     // want `metric name "engine.CamelCase" does not match the pkg.snake_case convention`
	tr.Observe("Engine.seconds", 1)     // want `metric name "Engine.seconds" does not match the pkg.snake_case convention`
	reg.Set("engine.trailing.", 1)      // want `metric name "engine.trailing." does not match the pkg.snake_case convention`
	h := reg.Histogram("engine-dash.x") // want `metric name "engine-dash.x" does not match the pkg.snake_case convention`
	h.Observe(0.5)
}

// Clean: literal and spelled-constant names in convention; the
// histogram handle records values, not names, so Observe on it is
// never checked.
const prefix = "engine."

func Clean(tr *obs.Tracer, reg *obs.Registry) {
	tr.Add("engine.visits", 1)
	tr.Gauge("engine.skew_ps", 3.5)
	tr.Observe(prefix+"phase_seconds", 0.01)
	reg.Set("engine.cap_saved_frac", 0.2)
	reg.Histogram("engine.latency_seconds").Observe(0.002)
}
