package analysis

import (
	"go/ast"
	"go/types"
)

// maporderScope names the result-producing packages (by final import
// path element) where map iteration order can leak into tables, CSVs,
// stats, or optimization decisions. Matching on the last element keeps
// the rule portable between the real tree (smartndr/internal/core) and
// analysistest golden packages (maporder/core).
var maporderScope = map[string]bool{
	"core":        true,
	"sta":         true,
	"report":      true,
	"experiments": true,
	"variation":   true,
}

// Maporder flags `range` over a map in a result-producing package: Go
// randomizes map iteration order, so any output or state mutation that
// depends on visit order silently breaks the repo's bit-identical-runs
// contract. Two escapes exist: iterate sorted keys (the
// collect-then-sort idiom is recognized), or annotate the range with
// //lint:commutative plus a justification when every iteration is
// provably independent of the others.
var Maporder = &Analyzer{
	Name: "maporder",
	Doc:  "flags nondeterministic map iteration in result-producing packages",
	Run:  runMaporder,
}

func runMaporder(pass *Pass) error {
	if !maporderScope[pathBase(pass.Pkg.Path())] {
		return nil
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			rs, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			tv, ok := pass.Info.Types[rs.X]
			if !ok {
				return true
			}
			if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
				return true
			}
			if pass.HasDirective(rs.Pos(), "commutative") {
				return true
			}
			if isSortedKeyCollection(pass, file, rs) {
				return true
			}
			pass.Reportf(rs.Pos(),
				"range over map %s: iteration order is nondeterministic in a result-producing package; iterate sorted keys or annotate //lint:commutative with a justification",
				types.ExprString(rs.X))
			return true
		})
	}
	return nil
}

// isSortedKeyCollection recognizes the benign collect-then-sort idiom:
// the loop body is exactly `keys = append(keys, k)` for the range key,
// and the same keys slice is later passed to a sort call. Object
// identity ties the append target to the sort argument, so shadowed
// variables do not fool the check.
func isSortedKeyCollection(pass *Pass, file *ast.File, rs *ast.RangeStmt) bool {
	if rs.Body == nil || len(rs.Body.List) != 1 {
		return false
	}
	asg, ok := rs.Body.List[0].(*ast.AssignStmt)
	if !ok || len(asg.Lhs) != 1 || len(asg.Rhs) != 1 {
		return false
	}
	dst, ok := asg.Lhs[0].(*ast.Ident)
	if !ok {
		return false
	}
	call, ok := asg.Rhs[0].(*ast.CallExpr)
	if !ok || len(call.Args) != 2 {
		return false
	}
	if fn, ok := call.Fun.(*ast.Ident); !ok || fn.Name != "append" {
		return false
	}
	keyID, ok := rs.Key.(*ast.Ident)
	if !ok {
		return false
	}
	appended, ok := call.Args[1].(*ast.Ident)
	if !ok || objOf(pass, appended) == nil || objOf(pass, appended) != objOf(pass, keyID) {
		return false
	}
	dstObj := objOf(pass, dst)
	if dstObj == nil {
		return false
	}
	// A later sort call on the same slice object blesses the loop.
	sorted := false
	ast.Inspect(file, func(n ast.Node) bool {
		if sorted {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rs.End() || len(call.Args) == 0 {
			return true
		}
		pkg, fn := pkgFunc(pass.Info, call)
		isSort := pkg == "sort" && (fn == "Strings" || fn == "Ints" || fn == "Float64s" ||
			fn == "Slice" || fn == "SliceStable" || fn == "Sort" || fn == "Stable")
		isSlices := pkg == "slices" && (fn == "Sort" || fn == "SortFunc" || fn == "SortStableFunc")
		if !isSort && !isSlices {
			return true
		}
		if arg, ok := call.Args[0].(*ast.Ident); ok && objOf(pass, arg) == dstObj {
			sorted = true
		}
		return true
	})
	return sorted
}

// objOf resolves an identifier to its object via either use or def.
func objOf(pass *Pass, id *ast.Ident) types.Object {
	if o := pass.Info.Uses[id]; o != nil {
		return o
	}
	return pass.Info.Defs[id]
}
