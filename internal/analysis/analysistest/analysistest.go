// Package analysistest runs an analyzer over golden packages under a
// GOPATH-style testdata/src tree and checks its diagnostics against
// `// want "regexp"` comments, mirroring the x/tools package of the
// same name on the repo's stdlib-only analysis framework.
//
// A want comment applies to its own line; several quoted regexps may
// follow one want. Every diagnostic must be wanted and every want must
// be matched, so golden files pin both the positive and the negative
// behavior of an analyzer. Because testdata/src is consulted before
// `go list`, golden packages may import stub versions of the repo's own
// packages (smartndr/internal/obs, smartndr/internal/par) under their
// real import paths.
package analysistest

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"smartndr/internal/analysis"
)

type expectation struct {
	file string
	line int
	re   *regexp.Regexp
	hit  bool
}

// Run applies the analyzer to each golden package (import paths under
// dir/src) and reports mismatches against the // want comments.
func Run(t *testing.T, dir string, a *analysis.Analyzer, pkgPaths ...string) {
	t.Helper()
	moduleRoot, err := findModuleRoot(dir)
	if err != nil {
		t.Fatal(err)
	}
	loader := &analysis.Loader{Dir: moduleRoot, Overlay: filepath.Join(dir, "src")}
	for _, path := range pkgPaths {
		pkg, err := loader.LoadOverlay(path)
		if err != nil {
			t.Fatalf("loading %s: %v", path, err)
		}
		diags, err := analysis.RunAnalyzers([]*analysis.Package{pkg}, []*analysis.Analyzer{a})
		if err != nil {
			t.Fatalf("running %s on %s: %v", a.Name, path, err)
		}
		wants, err := parseWants(pkg)
		if err != nil {
			t.Fatalf("parsing want comments in %s: %v", path, err)
		}
		for _, d := range diags {
			if !claim(wants, d.Pos.Filename, d.Pos.Line, d.Message) {
				t.Errorf("%s: unexpected diagnostic at %s:%d: %s",
					a.Name, filepath.Base(d.Pos.Filename), d.Pos.Line, d.Message)
			}
		}
		for _, w := range wants {
			if !w.hit {
				t.Errorf("%s: missing diagnostic at %s:%d matching %q",
					a.Name, filepath.Base(w.file), w.line, w.re)
			}
		}
	}
}

func claim(wants []*expectation, file string, line int, msg string) bool {
	for _, w := range wants {
		if !w.hit && w.file == file && w.line == line && w.re.MatchString(msg) {
			w.hit = true
			return true
		}
	}
	return false
}

var wantRe = regexp.MustCompile(`^//\s*want\s+(.*)$`)

func parseWants(pkg *analysis.Package) ([]*expectation, error) {
	var wants []*expectation
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				for _, q := range splitQuoted(m[1]) {
					pat, err := strconv.Unquote(q)
					if err != nil {
						return nil, fmt.Errorf("%s:%d: bad want pattern %s: %w", pos.Filename, pos.Line, q, err)
					}
					re, err := regexp.Compile(pat)
					if err != nil {
						return nil, fmt.Errorf("%s:%d: bad want regexp %s: %w", pos.Filename, pos.Line, q, err)
					}
					wants = append(wants, &expectation{file: pos.Filename, line: pos.Line, re: re})
				}
			}
		}
	}
	return wants, nil
}

// splitQuoted extracts the double-quoted segments of a want payload:
// `"a" "b"` → ["a", "b"] (quotes kept for strconv.Unquote).
func splitQuoted(s string) []string {
	var out []string
	for {
		i := strings.IndexByte(s, '"')
		if i < 0 {
			return out
		}
		j := i + 1
		for j < len(s) {
			if s[j] == '\\' {
				j += 2
				continue
			}
			if s[j] == '"' {
				break
			}
			j++
		}
		if j >= len(s) {
			return out
		}
		out = append(out, s[i:j+1])
		s = s[j+1:]
	}
}

func findModuleRoot(dir string) (string, error) {
	d, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(d, "go.mod")); err == nil {
			return d, nil
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", fmt.Errorf("analysistest: no go.mod above %s", dir)
		}
		d = parent
	}
}
