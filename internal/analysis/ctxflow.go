package analysis

import (
	"go/ast"
	"go/types"
)

// Ctxflow enforces the cancellation-threading contract the cluster
// layer depends on: a request's context must flow from the HTTP
// handler down through every backend call, or hedged retries and
// drains cannot cancel in-flight work.
//
// Two rules:
//
//  1. context.Background() and context.TODO() are forbidden outside
//     package main — library code that mints a fresh root context
//     detaches itself from its caller's deadline and cancellation.
//     Test files never reach the linter (the loader reads GoFiles
//     only), and deliberate roots — long-lived daemons, background
//     probes — take //lint:allow ctxflow with a why.
//  2. Even in package main, minting a root context while a
//     context.Context parameter is in scope is flagged: the enclosing
//     function was handed a context precisely so callees inherit it.
//
// Suppress a deliberate exception with //lint:allow ctxflow.
var Ctxflow = &Analyzer{
	Name: "ctxflow",
	Doc:  "context.Background/TODO are forbidden where a caller's context should flow",
	Run:  runCtxflow,
}

func runCtxflow(pass *Pass) error {
	isMain := pass.Pkg != nil && pass.Pkg.Name() == "main"
	for _, file := range pass.Files {
		var stack []ast.Node
		ast.Inspect(file, func(n ast.Node) bool {
			if n == nil {
				stack = stack[:len(stack)-1]
				return true
			}
			stack = append(stack, n)
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			pkg, fn := pkgFunc(pass.Info, call)
			if pkg != "context" || (fn != "Background" && fn != "TODO") {
				return true
			}
			if ctxParam := enclosingCtxParam(pass, stack); ctxParam != "" {
				pass.Reportf(call.Pos(),
					"context.%s discards the in-scope context %q; thread it (or derive with context.WithTimeout/WithCancel) so cancellation propagates",
					fn, ctxParam)
				return true
			}
			if !isMain {
				pass.Reportf(call.Pos(),
					"context.%s in library code detaches callees from the caller's deadline and cancellation; accept a context.Context instead",
					fn)
			}
			return true
		})
	}
	return nil
}

// enclosingCtxParam returns the name of a context.Context parameter of
// the innermost enclosing function (declaration or literal) that has
// one, or "". Only named, non-blank parameters count — an unnamed or
// blank context is an explicit statement that it is not for use.
func enclosingCtxParam(pass *Pass, stack []ast.Node) string {
	for i := len(stack) - 1; i >= 0; i-- {
		var ft *ast.FuncType
		switch fn := stack[i].(type) {
		case *ast.FuncDecl:
			ft = fn.Type
		case *ast.FuncLit:
			ft = fn.Type
		default:
			continue
		}
		if ft.Params != nil {
			for _, field := range ft.Params.List {
				for _, name := range field.Names {
					if name.Name == "_" {
						continue
					}
					if obj := pass.Info.Defs[name]; obj != nil && isContextType(obj.Type()) {
						return name.Name
					}
				}
			}
		}
	}
	return ""
}

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}
