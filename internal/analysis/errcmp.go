package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Errcmp flags error comparisons that break under wrapping: `err ==
// sentinel` / `err != sentinel` instead of errors.Is, and bare type
// assertions (`err.(*T)`, `switch err.(type)`) instead of errors.As.
// The motivating bug is PR 8's cluster health flapping — `retryable()`
// compared errors with `==` while http.Client.Do wraps a canceled
// context in *url.Error, so context.Canceled was never recognized and
// healthy backends were marked down. Any code path that receives an
// error through even one fmt.Errorf("%w") or library boundary has the
// same hazard.
//
// Exemptions:
//
//   - nil checks (`err == nil`, `err != nil`) — the universal idiom,
//     not a sentinel comparison;
//   - comparisons against package-level error variables declared in the
//     package under analysis (the sentinel-return idiom: a package may
//     guarantee its own sentinels are returned unwrapped, and its
//     internal equality checks are part of that contract);
//   - `//lint:allow errcmp <why>` for deliberate identity comparisons
//     across package boundaries.
var Errcmp = &Analyzer{
	Name: "errcmp",
	Doc:  "error values must be compared with errors.Is/errors.As, not == or type asserts",
	Run:  runErrcmp,
}

func runErrcmp(pass *Pass) error {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.BinaryExpr:
				checkErrCompare(pass, n)
			case *ast.TypeAssertExpr:
				// n.Type == nil is the `switch err.(type)` guard, reported
				// at the switch below with its own message.
				if n.Type != nil && isErrorType(exprType(pass, n.X)) {
					pass.Reportf(n.Pos(),
						"type assertion on an error value does not see through wrapped errors; use errors.As")
				}
			case *ast.TypeSwitchStmt:
				if ta := typeSwitchAssert(n); ta != nil && isErrorType(exprType(pass, ta.X)) {
					pass.Reportf(n.Pos(),
						"type switch on an error value does not see through wrapped errors; use errors.As per case")
				}
			case *ast.SwitchStmt:
				if n.Tag != nil && isErrorType(exprType(pass, n.Tag)) {
					pass.Reportf(n.Pos(),
						"switch on an error value compares with == and does not see through wrapped errors; use errors.Is per case")
				}
			}
			return true
		})
	}
	return nil
}

// checkErrCompare flags ==/!= where either operand is an error, unless
// the other side is nil or a same-package sentinel.
func checkErrCompare(pass *Pass, be *ast.BinaryExpr) {
	if be.Op != token.EQL && be.Op != token.NEQ {
		return
	}
	if !isErrorType(exprType(pass, be.X)) && !isErrorType(exprType(pass, be.Y)) {
		return
	}
	if isNilIdent(be.X) || isNilIdent(be.Y) {
		return
	}
	if isOwnSentinel(pass, be.X) || isOwnSentinel(pass, be.Y) {
		return
	}
	op := "=="
	if be.Op == token.NEQ {
		op = "!="
	}
	pass.Reportf(be.Pos(),
		"error compared with %s does not see through wrapped errors; use errors.Is", op)
}

// isOwnSentinel reports whether e names a package-level error variable
// declared in the package being analyzed. Comparing against one's own
// sentinel is the sentinel-return idiom: the package controls every
// return site and can guarantee the value is never wrapped.
func isOwnSentinel(pass *Pass, e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	if !ok {
		return false
	}
	v, ok := objOf(pass, id).(*types.Var)
	if !ok || v.Pkg() == nil || v.Pkg() != pass.Pkg {
		return false
	}
	// Package-level variables have package scope as their parent.
	return v.Parent() == v.Pkg().Scope()
}

// typeSwitchAssert digs the x.(type) expression out of a type switch's
// assign statement (`switch v := x.(type)` or `switch x.(type)`).
func typeSwitchAssert(s *ast.TypeSwitchStmt) *ast.TypeAssertExpr {
	switch a := s.Assign.(type) {
	case *ast.ExprStmt:
		ta, _ := a.X.(*ast.TypeAssertExpr)
		return ta
	case *ast.AssignStmt:
		if len(a.Rhs) == 1 {
			ta, _ := a.Rhs[0].(*ast.TypeAssertExpr)
			return ta
		}
	}
	return nil
}

// exprType returns the static type of e, or nil.
func exprType(pass *Pass, e ast.Expr) types.Type {
	tv, ok := pass.Info.Types[e]
	if !ok {
		return nil
	}
	return tv.Type
}
