package analysis

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
)

// A Package is one type-checked package ready for analysis.
type Package struct {
	Path  string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info

	directives directiveIndex
	cfgs       map[*ast.BlockStmt]*funcCFG // shared per-function CFG cache (cfg.go)
}

// Loader enumerates packages with `go list -deps -json` and
// type-checks them with go/types, dependencies first, so analyzers get
// full type information without any module dependency beyond the Go
// toolchain itself. Dependency packages are checked with
// IgnoreFuncBodies (only their exported shape matters); the requested
// packages get full bodies, comments, and an ast/types cross-index.
//
// Overlay, when set, is a GOPATH-style source root (dir/<import/path>/)
// consulted before `go list`: analysistest points it at a testdata/src
// tree so golden packages can import stub versions of the repo's own
// packages under their real import paths.
type Loader struct {
	Dir     string // directory to run `go list` from (module root)
	Overlay string // optional GOPATH-style source root, tried first

	fset    *token.FileSet
	pkgs    map[string]*Package // fully loaded, by import path
	loading map[string]bool     // overlay cycle guard
}

type listPkg struct {
	ImportPath string
	Dir        string
	Standard   bool
	DepOnly    bool
	GoFiles    []string
	Error      *struct{ Err string }
}

func (l *Loader) init() {
	if l.fset == nil {
		l.fset = token.NewFileSet()
		l.pkgs = map[string]*Package{}
		l.loading = map[string]bool{}
	}
}

// Load type-checks the packages matching the go list patterns (plus
// their whole dependency closure) and returns the matched packages.
func (l *Loader) Load(patterns ...string) ([]*Package, error) {
	l.init()
	infos, err := l.goList(patterns)
	if err != nil {
		return nil, err
	}
	var roots []*Package
	for _, lp := range infos {
		root := !lp.DepOnly && !lp.Standard
		p, err := l.check(lp, root)
		if err != nil {
			return nil, err
		}
		if root {
			roots = append(roots, p)
		}
	}
	return roots, nil
}

// LoadOverlay type-checks one package from the overlay source root.
func (l *Loader) LoadOverlay(path string) (*Package, error) {
	l.init()
	if l.Overlay == "" {
		return nil, fmt.Errorf("analysis: loader has no overlay root")
	}
	if _, err := l.importPath(path); err != nil {
		return nil, err
	}
	p := l.pkgs[path]
	if p == nil {
		return nil, fmt.Errorf("analysis: overlay package %s did not load", path)
	}
	return p, nil
}

// goList runs `go list -deps -json` and decodes the package stream,
// which arrives dependencies-first — exactly the type-checking order.
// CGO_ENABLED=0 keeps GoFiles self-contained (pure-Go fallbacks) so the
// standard library type-checks from source without a C toolchain.
func (l *Loader) goList(patterns []string) ([]*listPkg, error) {
	args := append([]string{"list", "-e", "-deps", "-json"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = l.Dir
	cmd.Env = append(os.Environ(), "CGO_ENABLED=0")
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.StdoutPipe()
	if err != nil {
		return nil, err
	}
	if err := cmd.Start(); err != nil {
		return nil, err
	}
	var infos []*listPkg
	dec := json.NewDecoder(out)
	for {
		lp := &listPkg{}
		if err := dec.Decode(lp); errors.Is(err, io.EOF) {
			break
		} else if err != nil {
			_ = cmd.Wait()
			return nil, fmt.Errorf("analysis: decoding go list output: %w", err)
		}
		infos = append(infos, lp)
	}
	if err := cmd.Wait(); err != nil {
		return nil, fmt.Errorf("analysis: go list %s: %w\n%s", strings.Join(patterns, " "), err, stderr.String())
	}
	for _, lp := range infos {
		if lp.Error != nil {
			return nil, fmt.Errorf("analysis: go list %s: %s", lp.ImportPath, lp.Error.Err)
		}
	}
	return infos, nil
}

// check parses and type-checks one listed package (memoized).
func (l *Loader) check(lp *listPkg, full bool) (*Package, error) {
	if p, ok := l.pkgs[lp.ImportPath]; ok {
		return p, nil
	}
	if lp.ImportPath == "unsafe" {
		p := &Package{Path: "unsafe", Fset: l.fset, Types: types.Unsafe}
		l.pkgs["unsafe"] = p
		return p, nil
	}
	files := make([]string, len(lp.GoFiles))
	for i, f := range lp.GoFiles {
		files[i] = filepath.Join(lp.Dir, f)
	}
	return l.typecheck(lp.ImportPath, files, full, lp.Standard)
}

// typecheck parses the files and runs go/types over them. Standard-
// library packages tolerate type errors (a handful of runtime-internal
// constructs need the compiler); analyzed packages do not.
func (l *Loader) typecheck(path string, filenames []string, full, lenient bool) (*Package, error) {
	mode := parser.SkipObjectResolution
	if full {
		mode |= parser.ParseComments
	}
	var files []*ast.File
	for _, fn := range filenames {
		f, err := parser.ParseFile(l.fset, fn, nil, mode)
		if err != nil {
			if lenient {
				continue
			}
			return nil, fmt.Errorf("analysis: parsing %s: %w", fn, err)
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
	}
	var firstErr error
	conf := types.Config{
		Importer:         importerFunc(l.importPath),
		IgnoreFuncBodies: !full,
		FakeImportC:      true,
		Sizes:            types.SizesFor("gc", runtime.GOARCH),
		Error: func(err error) {
			if firstErr == nil {
				firstErr = err
			}
		},
	}
	tpkg, _ := conf.Check(path, l.fset, files, info)
	if firstErr != nil && !lenient {
		return nil, fmt.Errorf("analysis: type-checking %s: %w", path, firstErr)
	}
	p := &Package{
		Path:  path,
		Fset:  l.fset,
		Files: files,
		Types: tpkg,
		Info:  info,
	}
	if full {
		p.directives = buildDirectives(l.fset, files)
	}
	l.pkgs[path] = p
	return p, nil
}

// importPath resolves an import for the type checker: cached packages
// first, then the overlay source root, then a fresh `go list -deps`
// closure (stdlib or module packages reached only from overlay code).
func (l *Loader) importPath(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if p, ok := l.pkgs[path]; ok {
		return p.Types, nil
	}
	if l.Overlay != "" {
		dir := filepath.Join(l.Overlay, filepath.FromSlash(path))
		if fi, err := os.Stat(dir); err == nil && fi.IsDir() {
			if l.loading[path] {
				return nil, fmt.Errorf("analysis: import cycle through %s", path)
			}
			l.loading[path] = true
			defer delete(l.loading, path)
			names, err := overlayGoFiles(dir)
			if err != nil {
				return nil, err
			}
			p, err := l.typecheck(path, names, true, false)
			if err != nil {
				return nil, err
			}
			return p.Types, nil
		}
	}
	infos, err := l.goList([]string{"--", path})
	if err != nil {
		return nil, err
	}
	for _, lp := range infos {
		if _, err := l.check(lp, false); err != nil {
			return nil, err
		}
	}
	if p, ok := l.pkgs[path]; ok {
		return p.Types, nil
	}
	return nil, fmt.Errorf("analysis: cannot resolve import %q", path)
}

// overlayGoFiles lists a testdata package dir's Go sources (no test
// files, no build-constraint resolution — golden packages are plain).
func overlayGoFiles(dir string) ([]string, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range ents {
		n := e.Name()
		if e.IsDir() || !strings.HasSuffix(n, ".go") || strings.HasSuffix(n, "_test.go") {
			continue
		}
		names = append(names, filepath.Join(dir, n))
	}
	sort.Strings(names)
	if len(names) == 0 {
		return nil, fmt.Errorf("analysis: no Go files in overlay dir %s", dir)
	}
	return names, nil
}

// importerFunc adapts a function to types.Importer. (go/importer's
// implementations resolve through GOPATH or export data; the loader
// needs its own resolution order.)
type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }
