package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Httpbody enforces the HTTP client hygiene contract the cluster
// transport relies on: every *http.Response acquired in a function must
// have its Body closed on every path out of the function (or out of the
// loop iteration that acquired it). An unclosed body pins the
// underlying connection — it never returns to the transport's idle
// pool — so a frontend fanning thousands of calls across its backends
// leaks sockets until the fleet wedges.
//
// Like spanhygiene, the check is a conservative lexical walk rather
// than a full CFG. It tracks responses bound to local variables,
// accepts resp.Body.Close() directly, deferred, or inside a deferred
// closure, branch-merges if/switch arms pessimistically, and exempts
// responses that escape (returned, stored, or passed along — ownership
// transfers with them). The standard acquisition idiom is understood:
// inside a branch guarded by the error paired at acquisition
// (`resp, err := c.Do(req); if err != nil { ... }`) the response is nil
// by the http.Client contract and needs no Close. Suppress a deliberate
// exception with //lint:allow httpbody.
var Httpbody = &Analyzer{
	Name: "httpbody",
	Doc:  "http.Response bodies must be closed on every path in client code",
	Run:  runHttpbody,
}

func runHttpbody(pass *Pass) error {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			var body *ast.BlockStmt
			switch fn := n.(type) {
			case *ast.FuncDecl:
				body = fn.Body
			case *ast.FuncLit:
				body = fn.Body
			default:
				return true
			}
			if body != nil {
				w := &bodyWalker{pass: pass, body: body, reported: map[types.Object]bool{}}
				st := newBodyState()
				w.walkStmts(body.List, st, token.NoPos)
				w.reportOpen(st, body.End(), "function end")
			}
			return true
		})
	}
	return nil
}

// acquisition records where a response variable was bound and which
// error variable (if any) was assigned alongside it.
type acquisition struct {
	pos    token.Pos
	errObj types.Object
}

type bodyState struct {
	open     map[types.Object]acquisition
	deferred map[types.Object]bool
}

func newBodyState() *bodyState {
	return &bodyState{open: map[types.Object]acquisition{}, deferred: map[types.Object]bool{}}
}

func (st *bodyState) clone() *bodyState {
	c := newBodyState()
	for k, v := range st.open { //lint:commutative — map copy
		c.open[k] = v
	}
	for k := range st.deferred { //lint:commutative — map copy
		c.deferred[k] = true
	}
	return c
}

// mergeBodyStates folds sibling branch end-states: a response stays
// open unless every branch closed it, and a defer counts only when
// every branch registered it.
func mergeBodyStates(branches []*bodyState) *bodyState {
	out := newBodyState()
	for _, b := range branches {
		for obj, acq := range b.open { //lint:commutative — set union
			out.open[obj] = acq
		}
	}
	if len(branches) > 0 {
		for obj := range branches[0].deferred { //lint:commutative — set intersection
			all := true
			for _, b := range branches[1:] {
				if !b.deferred[obj] {
					all = false
					break
				}
			}
			if all {
				out.deferred[obj] = true
			}
		}
	}
	return out
}

type bodyWalker struct {
	pass     *Pass
	body     *ast.BlockStmt
	reported map[types.Object]bool
}

func (w *bodyWalker) walkStmts(list []ast.Stmt, st *bodyState, loopStart token.Pos) {
	for _, s := range list {
		w.walkStmt(s, st, loopStart)
	}
}

func (w *bodyWalker) walkStmt(s ast.Stmt, st *bodyState, loopStart token.Pos) {
	switch s := s.(type) {
	case *ast.AssignStmt:
		w.trackAssign(s, st)
	case *ast.ExprStmt:
		if call, ok := s.X.(*ast.CallExpr); ok {
			if obj := w.closedObj(call); obj != nil {
				delete(st.open, obj)
			}
		}
	case *ast.DeferStmt:
		if obj := w.closedObj(s.Call); obj != nil {
			delete(st.open, obj)
			st.deferred[obj] = true
		}
		if lit, ok := s.Call.Fun.(*ast.FuncLit); ok {
			// defer func() { ...; resp.Body.Close(); ... }() — a Close
			// anywhere in the deferred closure covers all later paths.
			ast.Inspect(lit.Body, func(n ast.Node) bool {
				if call, ok := n.(*ast.CallExpr); ok {
					if obj := w.closedObj(call); obj != nil {
						delete(st.open, obj)
						st.deferred[obj] = true
					}
				}
				return true
			})
		}
	case *ast.ReturnStmt:
		w.reportOpen(st, s.Pos(), "this return")
	case *ast.BranchStmt:
		if (s.Tok == token.BREAK || s.Tok == token.CONTINUE) && loopStart.IsValid() {
			w.reportLoopOpen(st, s.Pos(), loopStart)
		}
	case *ast.IfStmt:
		if s.Init != nil {
			w.walkStmt(s.Init, st, loopStart)
		}
		a := st.clone()
		b := st.clone() // the else arm, or fall-through when absent
		// The error-guard idiom: in the branch where the acquisition's
		// paired error is non-nil, the response is nil (http.Client
		// contract) and there is nothing to close.
		if errObj := guardedErr(w.pass, s.Cond, token.NEQ); errObj != nil {
			dropPaired(a, errObj)
		}
		if errObj := guardedErr(w.pass, s.Cond, token.EQL); errObj != nil {
			dropPaired(b, errObj) // `if err == nil`: the else side is the error side
		}
		w.walkStmts(s.Body.List, a, loopStart)
		if s.Else != nil {
			w.walkStmt(s.Else, b, loopStart)
		}
		m := mergeBodyStates([]*bodyState{a, b})
		st.open, st.deferred = m.open, m.deferred
	case *ast.ForStmt:
		if s.Init != nil {
			w.walkStmt(s.Init, st, loopStart)
		}
		inner := st.clone()
		w.walkStmts(s.Body.List, inner, s.Body.Pos())
		w.reportLoopOpen(inner, s.Body.End(), s.Body.Pos())
	case *ast.RangeStmt:
		inner := st.clone()
		w.walkStmts(s.Body.List, inner, s.Body.Pos())
		w.reportLoopOpen(inner, s.Body.End(), s.Body.Pos())
	case *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
		var clauses []ast.Stmt
		hasDefault := false
		switch s := s.(type) {
		case *ast.SwitchStmt:
			clauses = s.Body.List
		case *ast.TypeSwitchStmt:
			clauses = s.Body.List
		case *ast.SelectStmt:
			clauses = s.Body.List
		}
		var bodies []*bodyState
		for _, c := range clauses {
			b := st.clone()
			switch c := c.(type) {
			case *ast.CaseClause:
				if c.List == nil {
					hasDefault = true
				}
				w.walkStmts(c.Body, b, loopStart)
			case *ast.CommClause:
				if c.Comm == nil {
					hasDefault = true
				}
				w.walkStmts(c.Body, b, loopStart)
			}
			bodies = append(bodies, b)
		}
		if !hasDefault {
			bodies = append(bodies, st.clone())
		}
		if len(bodies) > 0 {
			m := mergeBodyStates(bodies)
			st.open, st.deferred = m.open, m.deferred
		}
	case *ast.BlockStmt:
		w.walkStmts(s.List, st, loopStart)
	case *ast.LabeledStmt:
		w.walkStmt(s.Stmt, st, loopStart)
	}
}

// trackAssign records response variables bound by an assignment, pairing
// each with the error variable assigned in the same statement (tuple
// form `resp, err := c.Do(req)` or element-wise assignments).
func (w *bodyWalker) trackAssign(s *ast.AssignStmt, st *bodyState) {
	// Tuple form: one call on the right, several names on the left.
	if len(s.Rhs) == 1 && len(s.Lhs) > 1 {
		call, ok := s.Rhs[0].(*ast.CallExpr)
		if !ok || !returnsResponse(w.pass, call) {
			return
		}
		var errObj types.Object
		for _, l := range s.Lhs {
			if id, ok := l.(*ast.Ident); ok && id.Name != "_" {
				if obj := objOf(w.pass, id); obj != nil && isErrorType(obj.Type()) {
					errObj = obj
				}
			}
		}
		for _, l := range s.Lhs {
			id, ok := l.(*ast.Ident)
			if !ok || id.Name == "_" {
				continue
			}
			obj := objOf(w.pass, id)
			if obj == nil || !isResponsePtr(obj.Type()) || w.escapes(obj) {
				continue
			}
			st.open[obj] = acquisition{pos: call.Pos(), errObj: errObj}
			delete(st.deferred, obj)
		}
		return
	}
	// Element-wise form: resp := mustGet(...) and friends.
	if len(s.Lhs) == len(s.Rhs) {
		for i, rhs := range s.Rhs {
			call, ok := rhs.(*ast.CallExpr)
			if !ok || !returnsResponse(w.pass, call) {
				continue
			}
			id, ok := s.Lhs[i].(*ast.Ident)
			if !ok || id.Name == "_" {
				continue
			}
			obj := objOf(w.pass, id)
			if obj == nil || !isResponsePtr(obj.Type()) || w.escapes(obj) {
				continue
			}
			st.open[obj] = acquisition{pos: call.Pos()}
			delete(st.deferred, obj)
		}
	}
}

// guardedErr returns the error object when cond has the shape
// `<errVar> <op> nil` for the requested operator.
func guardedErr(pass *Pass, cond ast.Expr, op token.Token) types.Object {
	be, ok := cond.(*ast.BinaryExpr)
	if !ok || be.Op != op {
		return nil
	}
	var id *ast.Ident
	switch {
	case isNilIdent(be.Y):
		id, _ = be.X.(*ast.Ident)
	case isNilIdent(be.X):
		id, _ = be.Y.(*ast.Ident)
	}
	if id == nil {
		return nil
	}
	obj := objOf(pass, id)
	if obj == nil || !isErrorType(obj.Type()) {
		return nil
	}
	return obj
}

func isNilIdent(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "nil"
}

// dropPaired removes every open response whose acquisition paired it
// with errObj.
func dropPaired(st *bodyState, errObj types.Object) {
	for obj, acq := range st.open { //lint:commutative — filtered deletion, order-free
		if acq.errObj == errObj {
			delete(st.open, obj)
		}
	}
}

// reportOpen flags every tracked response still open at an exit point.
func (w *bodyWalker) reportOpen(st *bodyState, at token.Pos, where string) {
	for obj, acq := range st.open { //lint:commutative — dedup via w.reported; diagnostics sorted by the driver
		if st.deferred[obj] || w.reported[obj] {
			continue
		}
		w.reported[obj] = true
		w.pass.Reportf(acq.pos,
			"response body %s.Body is not closed on every path (leaks at %s, %s); add defer %s.Body.Close() after the error check",
			obj.Name(), w.pass.Fset.Position(at), where, obj.Name())
	}
}

// reportLoopOpen flags responses acquired in the current loop body that
// are still open when the iteration can end.
func (w *bodyWalker) reportLoopOpen(st *bodyState, at token.Pos, loopStart token.Pos) {
	for obj, acq := range st.open { //lint:commutative — dedup via w.reported; diagnostics sorted by the driver
		if acq.pos < loopStart || st.deferred[obj] || w.reported[obj] {
			continue
		}
		w.reported[obj] = true
		w.pass.Reportf(acq.pos,
			"response body %s.Body acquired in a loop is not closed by %s; close it before the iteration ends",
			obj.Name(), w.pass.Fset.Position(at))
	}
}

// closedObj returns the response variable a call closes via
// <resp>.Body.Close(), if any.
func (w *bodyWalker) closedObj(call *ast.CallExpr) types.Object {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Close" {
		return nil
	}
	inner, ok := sel.X.(*ast.SelectorExpr)
	if !ok || inner.Sel.Name != "Body" {
		return nil
	}
	id, ok := inner.X.(*ast.Ident)
	if !ok {
		return nil
	}
	obj := objOf(w.pass, id)
	if obj == nil || !isResponsePtr(obj.Type()) {
		return nil
	}
	return obj
}

// returnsResponse reports whether the call yields a *net/http.Response,
// alone or in a result tuple.
func returnsResponse(pass *Pass, call *ast.CallExpr) bool {
	tv, ok := pass.Info.Types[call]
	if !ok {
		return false
	}
	switch t := tv.Type.(type) {
	case *types.Tuple:
		for i := 0; i < t.Len(); i++ {
			if isResponsePtr(t.At(i).Type()) {
				return true
			}
		}
		return false
	default:
		return isResponsePtr(tv.Type)
	}
}

// isResponsePtr reports whether t is *net/http.Response.
func isResponsePtr(t types.Type) bool {
	p, ok := t.(*types.Pointer)
	if !ok {
		return false
	}
	named, ok := p.Elem().(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "net/http" && obj.Name() == "Response"
}

func isErrorType(t types.Type) bool {
	named, ok := t.(*types.Named)
	return ok && named.Obj().Pkg() == nil && named.Obj().Name() == "error"
}

// escapes reports whether the response object is used outside selector
// position in this function — returned, stored elsewhere, or passed
// along. Such responses transfer ownership to the consumer.
func (w *bodyWalker) escapes(obj types.Object) bool {
	recv := map[*ast.Ident]bool{}
	lhs := map[*ast.Ident]bool{}
	cmp := map[*ast.Ident]bool{}
	ast.Inspect(w.body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.SelectorExpr:
			if id, ok := n.X.(*ast.Ident); ok {
				recv[id] = true
			}
		case *ast.AssignStmt:
			for _, l := range n.Lhs {
				if id, ok := l.(*ast.Ident); ok {
					lhs[id] = true
				}
			}
		case *ast.BinaryExpr:
			// Nil checks (`resp != nil`) are reads, not transfers.
			if isNilIdent(n.X) || isNilIdent(n.Y) {
				if id, ok := n.X.(*ast.Ident); ok {
					cmp[id] = true
				}
				if id, ok := n.Y.(*ast.Ident); ok {
					cmp[id] = true
				}
			}
		}
		return true
	})
	escaped := false
	ast.Inspect(w.body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok || escaped || objOf(w.pass, id) != obj {
			return true
		}
		if !recv[id] && !lhs[id] && !cmp[id] {
			escaped = true
		}
		return true
	})
	return escaped
}
