package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Httpbody enforces the HTTP client hygiene contract the cluster
// transport relies on: every *http.Response acquired in a function must
// have its Body closed on every path out of the function (or out of the
// loop iteration that acquired it). An unclosed body pins the
// underlying connection — it never returns to the transport's idle
// pool — so a frontend fanning thousands of calls across its backends
// leaks sockets until the fleet wedges.
//
// Like spanhygiene, the check is an instance of the shared must-reach
// dataflow engine (dataflow.go) over the per-function CFG (cfg.go). It
// tracks responses bound to local variables, accepts resp.Body.Close()
// directly, deferred, or inside a deferred closure, and exempts
// responses that escape (returned, stored, or passed along — ownership
// transfers with them). The standard acquisition idiom is understood:
// on the branch edge where the acquisition's paired error is non-nil
// (`resp, err := c.Do(req); if err != nil { ... }`) the response is nil
// by the http.Client contract and needs no Close. Suppress a deliberate
// exception with //lint:allow httpbody.
var Httpbody = &Analyzer{
	Name: "httpbody",
	Doc:  "http.Response bodies must be closed on every path in client code",
	Run:  runHttpbody,
}

var httpbodyRule = &consumeRule{
	isAcquire:      returnsResponse,
	isResourceType: isResponsePtr,
	consumes:       closedBodyObj,
	pairErr:        true,
	escapes: func(p *Pass, body *ast.BlockStmt, obj types.Object) bool {
		return escapesWith(p, body, obj, escapeOpts{allowNilCompare: true})
	},
	reportExit: func(p *Pass, obj types.Object, acq token.Pos, at token.Position, where string) {
		p.Reportf(acq,
			"response body %s.Body is not closed on every path (leaks at %s, %s); add defer %s.Body.Close() after the error check",
			obj.Name(), at, where, obj.Name())
	},
	reportLoop: func(p *Pass, obj types.Object, acq token.Pos, at token.Position) {
		p.Reportf(acq,
			"response body %s.Body acquired in a loop is not closed by %s; close it before the iteration ends",
			obj.Name(), at)
	},
	reportDeferLoop: func(p *Pass, obj types.Object, acq token.Pos, at token.Position) {
		p.Reportf(acq,
			"response body %s.Body acquired in a loop is closed only by a defer registered in the same iteration; defers run at function return, not at the iteration end (%s) — close it directly before the iteration ends",
			obj.Name(), at)
	},
}

func runHttpbody(pass *Pass) error {
	return httpbodyRule.run(pass)
}

// closedBodyObj returns the response variable a call closes via
// <resp>.Body.Close(), if any.
func closedBodyObj(pass *Pass, call *ast.CallExpr) types.Object {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Close" {
		return nil
	}
	inner, ok := sel.X.(*ast.SelectorExpr)
	if !ok || inner.Sel.Name != "Body" {
		return nil
	}
	id, ok := inner.X.(*ast.Ident)
	if !ok {
		return nil
	}
	obj := objOf(pass, id)
	if obj == nil || !isResponsePtr(obj.Type()) {
		return nil
	}
	return obj
}

// returnsResponse reports whether the call yields a *net/http.Response,
// alone or in a result tuple.
func returnsResponse(pass *Pass, call *ast.CallExpr) bool {
	tv, ok := pass.Info.Types[call]
	if !ok {
		return false
	}
	switch t := tv.Type.(type) {
	case *types.Tuple:
		for i := 0; i < t.Len(); i++ {
			if isResponsePtr(t.At(i).Type()) {
				return true
			}
		}
		return false
	default:
		return isResponsePtr(tv.Type)
	}
}

// isResponsePtr reports whether t is *net/http.Response.
func isResponsePtr(t types.Type) bool {
	p, ok := t.(*types.Pointer)
	if !ok {
		return false
	}
	named, ok := p.Elem().(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "net/http" && obj.Name() == "Response"
}

func isErrorType(t types.Type) bool {
	named, ok := t.(*types.Named)
	return ok && named.Obj().Pkg() == nil && named.Obj().Name() == "error"
}
