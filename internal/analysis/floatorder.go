package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Floatorder flags compound float assignments (+=, -=, *=, /=) inside
// par.ForEach / par.ForEachWorker worker closures when the target is
// captured from outside the closure. Floating-point addition is not
// associative, and workers pull items from a shared counter in
// scheduling order — so `sum += x` across items (or even into a
// per-worker slot, since the worker↔item mapping is nondeterministic)
// silently breaks the bit-identical-at-any-worker-count contract that
// PR 2's Monte Carlo stats rely on. The fix is the par design rule:
// write per-item results into slot i of a preallocated slice, reduce
// serially after the fan-out. Suppress a provably-safe case with
// //lint:allow floatorder.
var Floatorder = &Analyzer{
	Name: "floatorder",
	Doc:  "flags shared float accumulation inside par worker closures",
	Run:  runFloatorder,
}

func runFloatorder(pass *Pass) error {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			pkg, fn := pkgFunc(pass.Info, call)
			if pathBase(pkg) != "par" || (fn != "ForEach" && fn != "ForEachWorker") {
				return true
			}
			for _, arg := range call.Args {
				if lit, ok := arg.(*ast.FuncLit); ok {
					checkWorkerClosure(pass, lit)
				}
			}
			return true
		})
	}
	return nil
}

var compoundOps = map[token.Token]bool{
	token.ADD_ASSIGN: true,
	token.SUB_ASSIGN: true,
	token.MUL_ASSIGN: true,
	token.QUO_ASSIGN: true,
}

func checkWorkerClosure(pass *Pass, lit *ast.FuncLit) {
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		asg, ok := n.(*ast.AssignStmt)
		if !ok || !compoundOps[asg.Tok] || len(asg.Lhs) != 1 {
			return true
		}
		lhs := asg.Lhs[0]
		if !isFloat(pass.Info.Types[lhs].Type) {
			return true
		}
		base := baseIdent(lhs)
		if base == nil {
			return true
		}
		obj := objOf(pass, base)
		if obj == nil || !obj.Pos().IsValid() {
			return true
		}
		// Captured: declared outside the worker closure's extent.
		if obj.Pos() >= lit.Pos() && obj.Pos() <= lit.End() {
			return true
		}
		pass.Reportf(asg.Pos(),
			"float accumulation into captured %s inside a par worker closure depends on scheduling order; write per-item results into an index-addressed slot and reduce after the fan-out",
			types.ExprString(lhs))
		return true
	})
}

// baseIdent unwraps index/selector/star/paren chains to the root
// identifier: s.field, xs[i], (*p).f → s, xs, p.
func baseIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x
		case *ast.IndexExpr:
			e = x.X
		case *ast.SelectorExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		default:
			return nil
		}
	}
}

func isFloat(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}
