package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"testing"
)

// buildTestCFG type-checks one import-free source file and returns the
// CFG of the named function.
func buildTestCFG(t *testing.T, src, fn string) *funcCFG {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "p.go", src, parser.SkipObjectResolution)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	info := &types.Info{
		Types: map[ast.Expr]types.TypeAndValue{},
		Defs:  map[*ast.Ident]types.Object{},
		Uses:  map[*ast.Ident]types.Object{},
	}
	conf := types.Config{}
	if _, err := conf.Check("p", fset, []*ast.File{f}, info); err != nil {
		t.Fatalf("typecheck: %v", err)
	}
	for _, d := range f.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok && fd.Name.Name == fn {
			return buildCFG(info, fd.Body)
		}
	}
	t.Fatalf("no function %s in source", fn)
	return nil
}

// reachable returns the set of block indices reachable from entry.
func reachable(g *funcCFG) map[int]bool {
	seen := map[int]bool{g.entry.index: true}
	work := []*cfgBlock{g.entry}
	for len(work) > 0 {
		b := work[0]
		work = work[1:]
		for _, e := range b.succs {
			if !seen[e.to.index] {
				seen[e.to.index] = true
				work = append(work, e.to)
			}
		}
	}
	return seen
}

func exitBlocks(g *funcCFG) []*cfgBlock {
	var out []*cfgBlock
	for _, b := range g.blocks {
		if b.exit != nil {
			out = append(out, b)
		}
	}
	return out
}

// A goto target after an unconditional return is only reachable
// through the goto edge — the CFG must carry it.
func TestCFGGotoReachesLabel(t *testing.T) {
	g := buildTestCFG(t, `package p
func f(fail bool) int {
	x := 1
	if fail {
		goto bail
	}
	return x
bail:
	return 0
}`, "f")
	exits := exitBlocks(g)
	if len(exits) != 2 {
		t.Fatalf("want 2 return exits, got %d", len(exits))
	}
	seen := reachable(g)
	for _, b := range exits {
		if !seen[b.index] {
			t.Errorf("exit block %d (%s) unreachable — goto edge missing", b.index, b.exit.where)
		}
	}
}

// break outer from a nested loop terminates the current iteration of
// BOTH loops; the edge must carry an iterEnd per loop, innermost
// first.
func TestCFGLabeledBreakTerminatesBothLoops(t *testing.T) {
	g := buildTestCFG(t, `package p
func f(rows [][]int) {
outer:
	for _, r := range rows {
		for _, v := range r {
			if v < 0 {
				break outer
			}
		}
	}
}`, "f")
	var breakIters []iterEnd
	for _, b := range g.blocks {
		for _, e := range b.succs {
			if len(e.iters) > len(breakIters) {
				breakIters = e.iters
			}
		}
	}
	if len(breakIters) != 2 {
		t.Fatalf("break outer should end 2 iterations, edge carries %d", len(breakIters))
	}
	inner, outer := breakIters[0].loop, breakIters[1].loop
	if !(inner.bodyPos > outer.bodyPos && inner.bodyEnd < outer.bodyEnd) {
		t.Errorf("iterEnds not innermost-first: inner %v outer %v", inner, outer)
	}
}

// A goto that jumps out of a loop ends that loop's iteration; one that
// stays inside ends nothing.
func TestCFGGotoLoopExit(t *testing.T) {
	g := buildTestCFG(t, `package p
func f(n int) int {
	for i := 0; i < n; i++ {
		if i == 7 {
			goto out
		}
	}
	return 0
out:
	return 1
}`, "f")
	found := false
	for _, b := range g.blocks {
		for _, e := range b.succs {
			if len(e.iters) == 1 && e.cond == nil && e.to.exit != nil {
				found = true
			}
		}
	}
	if !found {
		t.Error("goto out of the loop carries no iterEnd to the label block")
	}
}

// A select without default has no fall-through edge (it blocks until a
// case fires); a switch without default does.
func TestCFGSelectVsSwitchDefault(t *testing.T) {
	sel := buildTestCFG(t, `package p
func f(a, b chan int) {
	select {
	case <-a:
	case <-b:
	}
}`, "f")
	if n := len(sel.entry.succs); n != 2 {
		t.Errorf("select without default: entry has %d successors, want 2 (one per case, no fall-through)", n)
	}
	sw := buildTestCFG(t, `package p
func f(x int) {
	switch x {
	case 1:
	case 2:
	}
}`, "f")
	if n := len(sw.entry.succs); n != 3 {
		t.Errorf("switch without default: entry has %d successors, want 3 (one per case + no-case-taken)", n)
	}
}

// A statement-position panic ends its block with no successors: paths
// through it never reach an exit, so they cannot leak.
func TestCFGPanicPrunesPath(t *testing.T) {
	g := buildTestCFG(t, `package p
func f(bad bool) int {
	if bad {
		panic("no")
	}
	return 1
}`, "f")
	if n := len(exitBlocks(g)); n != 1 {
		t.Fatalf("want 1 exit (the return), got %d", n)
	}
	pruned := false
	for _, b := range g.blocks {
		if len(b.stmts) == 1 && len(b.succs) == 0 && b.exit == nil {
			pruned = true
		}
	}
	if !pruned {
		t.Error("the panic block still has successors or an exit")
	}
}

// The normal end of a loop body is a back edge annotated with that
// loop's iterEnd at the body's closing brace.
func TestCFGBackEdgeIterEnd(t *testing.T) {
	g := buildTestCFG(t, `package p
func f(n int) {
	s := 0
	for i := 0; i < n; i++ {
		s += i
	}
	_ = s
}`, "f")
	count := 0
	for _, b := range g.blocks {
		for _, e := range b.succs {
			for _, it := range e.iters {
				count++
				if it.at != it.loop.bodyEnd {
					t.Errorf("back edge iterEnd at %v, want body end %v", it.at, it.loop.bodyEnd)
				}
			}
		}
	}
	if count != 1 {
		t.Errorf("want exactly 1 iterEnd on the back edge, got %d", count)
	}
}
