package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Gateleak enforces the admission-gate contract the serving layer's
// backpressure depends on: the release func returned by
// par.Gate.Acquire must be called or deferred on every path out of the
// function (and out of the loop iteration that acquired it) — hedge
// losers and error paths included. A leaked release pins a gate slot
// forever; with a bounded gate the fleet's admission capacity ratchets
// down until every request queues and times out. This is exactly the
// leak class PR 8's hand-written channel tests policed; the dataflow
// engine checks it on every build instead.
//
// The check is an instance of the shared must-reach engine
// (dataflow.go): acquisitions are `release, err := gate.Acquire(ctx)`,
// consumption is calling release (directly, deferred, or inside a
// deferred closure), the paired-error idiom applies (on the branch
// where err != nil the release is nil by contract), and a release that
// escapes (returned, stored, passed along) transfers the obligation.
// Suppress a deliberate exception with //lint:allow gateleak.
var Gateleak = &Analyzer{
	Name: "gateleak",
	Doc:  "par.Gate.Acquire release funcs must run on every path",
	Run:  runGateleak,
}

var gateleakRule = &consumeRule{
	isAcquire: isGateAcquire,
	isResourceType: func(t types.Type) bool {
		_, ok := t.(*types.Signature)
		return ok
	},
	consumes: releaseCallObj,
	pairErr:  true,
	escapes: func(p *Pass, body *ast.BlockStmt, obj types.Object) bool {
		return escapesWith(p, body, obj, escapeOpts{allowNilCompare: true, allowCallFun: true})
	},
	discardMsg: "gate release func is discarded, so its admission slot can never be released",
	reportExit: func(p *Pass, obj types.Object, acq token.Pos, at token.Position, where string) {
		p.Reportf(acq,
			"gate release %s is not called on every path (slot leaks at %s, %s); add defer %s() after the error check",
			obj.Name(), at, where, obj.Name())
	},
	reportLoop: func(p *Pass, obj types.Object, acq token.Pos, at token.Position) {
		p.Reportf(acq,
			"gate release %s acquired in a loop is not called by %s; release the slot before the iteration ends",
			obj.Name(), at)
	},
	reportDeferLoop: func(p *Pass, obj types.Object, acq token.Pos, at token.Position) {
		p.Reportf(acq,
			"gate release %s acquired in a loop is called only by a defer registered in the same iteration; defers run at function return, not at the iteration end (%s) — slots accumulate across iterations",
			obj.Name(), at)
	},
}

func runGateleak(pass *Pass) error {
	return gateleakRule.run(pass)
}

// isGateAcquire reports whether call is par.Gate.Acquire.
func isGateAcquire(pass *Pass, call *ast.CallExpr) bool {
	pkg, typ, method := methodOn(pass.Info, call)
	return pathBase(pkg) == "par" && typ == "Gate" && method == "Acquire"
}

// releaseCallObj returns the tracked release variable a call consumes:
// a direct call of the bound func value, `release()`.
func releaseCallObj(pass *Pass, call *ast.CallExpr) types.Object {
	id, ok := call.Fun.(*ast.Ident)
	if !ok {
		return nil
	}
	obj := objOf(pass, id)
	if obj == nil {
		return nil
	}
	if _, ok := obj.Type().(*types.Signature); !ok {
		return nil
	}
	return obj
}
