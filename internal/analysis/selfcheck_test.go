package analysis_test

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"smartndr/internal/analysis"
)

// TestRepoIsLintClean runs the full ten-analyzer suite over the whole
// module and asserts zero diagnostics — the repo must stay clean so
// that `make lint` (and CI) only ever fails on a genuine regression.
func TestRepoIsLintClean(t *testing.T) {
	if testing.Short() {
		t.Skip("loading the full module closure is not short")
	}
	if n := len(analysis.All()); n != 10 {
		t.Fatalf("self-check must run all 10 analyzers, All() returned %d", n)
	}
	root, err := moduleRoot()
	if err != nil {
		t.Fatal(err)
	}
	loader := &analysis.Loader{Dir: root}
	pkgs, err := loader.Load("./...")
	if err != nil {
		t.Fatalf("loading module packages: %v", err)
	}
	if len(pkgs) == 0 {
		t.Fatal("no packages loaded from module root")
	}
	diags, err := analysis.RunAnalyzers(pkgs, analysis.All())
	if err != nil {
		t.Fatalf("running analyzers: %v", err)
	}
	for _, d := range diags {
		t.Errorf("%s:%d:%d: %s (%s)", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Message, d.Analyzer)
	}
	if t.Failed() {
		t.Log("fix the findings above or annotate them (//lint:commutative, //lint:allow <analyzer>) with a justification")
	}
}

func moduleRoot() (string, error) {
	d, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(d, "go.mod")); err == nil {
			return d, nil
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", fmt.Errorf("no go.mod above the test working directory")
		}
		d = parent
	}
}
