package analysis

import (
	"go/ast"
	"go/constant"
	"regexp"
)

// Metricname enforces the metric-naming contract at every call that
// mints a metric: obs.Tracer.Add/Gauge/Observe and
// obs.Registry.Add/Set/Histogram must be given a constant string
// matching the pkg.snake_case convention ("serve.cache_hits",
// "sta.node_visits"). Constant names keep the metric namespace
// statically enumerable — grep finds every series that can ever exist,
// dashboards never chase runtime-invented names, and the Prometheus
// exposition stays a closed set. Dynamic dimensions belong in labels
// (the span-path histograms), not in names. The obs package itself is
// exempt: it forwards caller-supplied names rather than minting them.
var Metricname = &Analyzer{
	Name: "metricname",
	Doc:  "requires constant pkg.snake_case names at obs metric call sites",
	Run:  runMetricname,
}

// metricNameRe is the naming convention: a package prefix, then one or
// more dot-separated snake_case segments.
var metricNameRe = regexp.MustCompile(`^[a-z][a-z0-9]*(\.[a-z][a-z0-9_]*)+$`)

// metricNameMethods maps obs receiver type → the methods whose first
// argument is a metric name.
var metricNameMethods = map[string]map[string]bool{
	"Tracer":   {"Add": true, "Gauge": true, "Observe": true},
	"Registry": {"Add": true, "Set": true, "Histogram": true},
}

func runMetricname(pass *Pass) error {
	if pathBase(pass.Pkg.Path()) == "obs" {
		return nil
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) == 0 {
				return true
			}
			pkgPath, typeName, method := methodOn(pass.Info, call)
			if pathBase(pkgPath) != "obs" || !metricNameMethods[typeName][method] {
				return true
			}
			tv, ok := pass.Info.Types[call.Args[0]]
			if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
				pass.Reportf(call.Args[0].Pos(),
					"metric name for %s.%s must be a constant string so the namespace stays statically enumerable; put dynamic dimensions in labels, not names",
					typeName, method)
				return true
			}
			if name := constant.StringVal(tv.Value); !metricNameRe.MatchString(name) {
				pass.Reportf(call.Args[0].Pos(),
					"metric name %q does not match the pkg.snake_case convention (want e.g. \"serve.cache_hits\")",
					name)
			}
			return true
		})
	}
	return nil
}
