package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// This file builds per-function control-flow graphs for the dataflow
// engine in dataflow.go. The CFG models exactly the control constructs
// the resource-hygiene analyzers (spanhygiene, httpbody, gateleak)
// need to reason about paths:
//
//   - straight-line blocks of atomic statements (assign, decl, expr,
//     defer, go, send, inc/dec),
//   - branch and merge for if/switch/type-switch/select, including
//     fallthrough and the no-case-taken edge of a switch without a
//     default (a select without a default blocks until a case fires,
//     so it gets no such edge),
//   - loops (for, range) with explicit back edges, plus labeled
//     break/continue and goto, each annotated with the set of loop
//     iterations the jump terminates,
//   - exit points: every return, and the fall-off-the-end of the
//     function body, and
//   - escape points: statement-position calls that never return
//     (panic, os.Exit, runtime.Goexit, log.Fatal*/Panic*) end their
//     block with no successors, so paths through them are pruned.
//
// Nested function literals are *not* inlined — each FuncDecl and
// FuncLit body gets its own CFG, mirroring how the analyzers treat
// closures as independent functions. Statements after an
// unconditional jump still get blocks (they may be goto targets) but
// are unreachable unless something jumps to them; the dataflow engine
// skips blocks the fixpoint never reaches.
//
// CFGs are built once per package and shared by every analyzer via
// Pass.funcCFG — the builder only consults types.Info (identical
// across a package's passes), so the cache lives on the Package.

// A cfgLoop is one lexical loop; its body extent decides which
// acquisitions count as "inside the loop" for iteration-end checks.
type cfgLoop struct {
	bodyPos, bodyEnd token.Pos
}

// contains reports whether pos lies inside the loop body.
func (l *cfgLoop) contains(pos token.Pos) bool {
	return pos >= l.bodyPos && pos < l.bodyEnd
}

// An iterEnd marks a CFG edge that terminates one iteration of loop —
// a back edge (at the body end), a break/continue, or a goto that
// leaves the loop body. `at` is where the iteration ends, for
// diagnostics.
type iterEnd struct {
	loop *cfgLoop
	at   token.Pos
}

// A cfgEdge is one control transfer. cond (with negate) carries the
// branch condition of an if, so the dataflow engine can apply
// condition-derived facts (the err-guard idiom) per edge; iters lists
// the loop iterations the edge terminates.
type cfgEdge struct {
	to     *cfgBlock
	cond   ast.Expr
	negate bool // edge taken when cond is false
	iters  []iterEnd
}

// A cfgExit is a path out of the function, attached to the block that
// ends there.
type cfgExit struct {
	pos   token.Pos
	where string // "this return" or "function end"
}

// A cfgBlock is one straight-line run of atomic statements.
type cfgBlock struct {
	index int
	stmts []ast.Stmt
	succs []cfgEdge
	exit  *cfgExit // non-nil when the block leaves the function
}

// A funcCFG is the control-flow graph of one function body.
type funcCFG struct {
	entry  *cfgBlock
	blocks []*cfgBlock // creation order; deterministic
}

// funcCFG returns the (cached) CFG for a function body in this
// package. The cache is shared across analyzers: the builder depends
// only on syntax and types.Info, both fixed per package.
func (p *Pass) funcCFG(body *ast.BlockStmt) *funcCFG {
	if p.pkg == nil {
		return buildCFG(p.Info, body)
	}
	if p.pkg.cfgs == nil {
		p.pkg.cfgs = map[*ast.BlockStmt]*funcCFG{}
	}
	if g, ok := p.pkg.cfgs[body]; ok {
		return g
	}
	g := buildCFG(p.Info, body)
	p.pkg.cfgs[body] = g
	return g
}

// --- builder ---

// A cfgTarget is one entry of the break/continue target stack: loops
// carry both targets and their loop record, switch/select only break.
type cfgTarget struct {
	up         *cfgTarget
	label      string
	loop       *cfgLoop // nil for switch/select
	breakTo    *cfgBlock
	continueTo *cfgBlock // nil unless loop
}

type cfgLabel struct {
	block *cfgBlock
	pos   token.Pos
}

// A cfgGoto is a pending goto edge, resolved after the whole body is
// built so forward jumps work; loops snapshots the enclosing loops at
// the goto (innermost last) to compute terminated iterations.
type cfgGoto struct {
	from  *cfgBlock
	pos   token.Pos
	name  string
	loops []*cfgLoop
}

type cfgBuilder struct {
	info    *types.Info
	blocks  []*cfgBlock
	cur     *cfgBlock // nil after an unconditional jump (dead position)
	targets *cfgTarget
	label   string // pending label for the next breakable statement
	labels  map[string]*cfgLabel
	gotos   []cfgGoto
	loopStk []*cfgLoop
	fall    *cfgBlock // fallthrough target inside a switch clause
}

func buildCFG(info *types.Info, body *ast.BlockStmt) *funcCFG {
	b := &cfgBuilder{info: info, labels: map[string]*cfgLabel{}}
	entry := b.newBlock()
	b.cur = entry
	b.stmtList(body.List)
	if b.cur != nil {
		b.cur.exit = &cfgExit{pos: body.End(), where: "function end"}
	}
	b.resolveGotos()
	return &funcCFG{entry: entry, blocks: b.blocks}
}

func (b *cfgBuilder) newBlock() *cfgBlock {
	blk := &cfgBlock{index: len(b.blocks)}
	b.blocks = append(b.blocks, blk)
	return blk
}

func (b *cfgBuilder) edge(from, to *cfgBlock, cond ast.Expr, negate bool, iters []iterEnd) {
	from.succs = append(from.succs, cfgEdge{to: to, cond: cond, negate: negate, iters: iters})
}

// jump links cur to `to` (when cur is live) and makes `to` current.
func (b *cfgBuilder) jump(to *cfgBlock) {
	if b.cur != nil {
		b.edge(b.cur, to, nil, false, nil)
	}
	b.cur = to
}

// takeLabel consumes the pending label set by an enclosing LabeledStmt.
func (b *cfgBuilder) takeLabel() string {
	l := b.label
	b.label = ""
	return l
}

func (b *cfgBuilder) stmtList(list []ast.Stmt) {
	for _, s := range list {
		if b.cur == nil {
			// Dead position (after return/break/goto): statements here
			// still get blocks — they may be goto targets — but stay
			// unreachable unless something jumps in.
			b.cur = b.newBlock()
		}
		b.stmt(s)
	}
}

func (b *cfgBuilder) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		b.stmtList(s.List)
	case *ast.LabeledStmt:
		lb := b.newBlock()
		b.jump(lb)
		b.labels[s.Label.Name] = &cfgLabel{block: lb, pos: s.Pos()}
		b.label = s.Label.Name
		b.stmt(s.Stmt)
		b.label = ""
	case *ast.IfStmt:
		b.ifStmt(s)
	case *ast.ForStmt:
		b.forStmt(s)
	case *ast.RangeStmt:
		b.rangeStmt(s)
	case *ast.SwitchStmt:
		b.switchStmt(s.Init, s.Body)
	case *ast.TypeSwitchStmt:
		b.switchStmt(s.Init, s.Body)
	case *ast.SelectStmt:
		b.selectStmt(s)
	case *ast.ReturnStmt:
		b.cur.exit = &cfgExit{pos: s.Pos(), where: "this return"}
		b.cur = nil
	case *ast.BranchStmt:
		b.branchStmt(s)
	case *ast.ExprStmt:
		b.cur.stmts = append(b.cur.stmts, s)
		if isNoReturnCall(b.info, s.X) {
			b.cur = nil // escape point: panic/os.Exit/… never returns
		}
	default:
		// Assign, Decl, Defer, Go, Send, IncDec, Empty: atomic.
		b.cur.stmts = append(b.cur.stmts, s)
	}
}

func (b *cfgBuilder) ifStmt(s *ast.IfStmt) {
	if s.Init != nil {
		b.stmt(s.Init)
	}
	cond := b.cur
	then := b.newBlock()
	b.edge(cond, then, s.Cond, false, nil)
	b.cur = then
	b.stmtList(s.Body.List)
	thenEnd := b.cur
	join := b.newBlock()
	if s.Else != nil {
		els := b.newBlock()
		b.edge(cond, els, s.Cond, true, nil)
		b.cur = els
		b.stmt(s.Else)
		if b.cur != nil {
			b.edge(b.cur, join, nil, false, nil)
		}
	} else {
		b.edge(cond, join, s.Cond, true, nil)
	}
	if thenEnd != nil {
		b.edge(thenEnd, join, nil, false, nil)
	}
	b.cur = join
}

func (b *cfgBuilder) forStmt(s *ast.ForStmt) {
	if s.Init != nil {
		b.stmt(s.Init)
	}
	header := b.newBlock()
	b.jump(header)
	loop := &cfgLoop{bodyPos: s.Body.Pos(), bodyEnd: s.Body.End()}
	body := b.newBlock()
	after := b.newBlock()
	b.edge(header, body, s.Cond, false, nil)
	if s.Cond != nil {
		b.edge(header, after, s.Cond, true, nil)
	}
	contTo := header
	if s.Post != nil {
		post := b.newBlock()
		post.stmts = append(post.stmts, s.Post)
		b.edge(post, header, nil, false, nil)
		contTo = post
	}
	b.targets = &cfgTarget{up: b.targets, label: b.takeLabel(), loop: loop, breakTo: after, continueTo: contTo}
	b.loopStk = append(b.loopStk, loop)
	b.cur = body
	b.stmtList(s.Body.List)
	if b.cur != nil {
		// Back edge: the normal end of an iteration.
		b.edge(b.cur, contTo, nil, false, []iterEnd{{loop, s.Body.End()}})
	}
	b.loopStk = b.loopStk[:len(b.loopStk)-1]
	b.targets = b.targets.up
	b.cur = after
}

func (b *cfgBuilder) rangeStmt(s *ast.RangeStmt) {
	header := b.newBlock()
	b.jump(header)
	loop := &cfgLoop{bodyPos: s.Body.Pos(), bodyEnd: s.Body.End()}
	body := b.newBlock()
	after := b.newBlock()
	b.edge(header, body, nil, false, nil)
	b.edge(header, after, nil, false, nil)
	b.targets = &cfgTarget{up: b.targets, label: b.takeLabel(), loop: loop, breakTo: after, continueTo: header}
	b.loopStk = append(b.loopStk, loop)
	b.cur = body
	b.stmtList(s.Body.List)
	if b.cur != nil {
		b.edge(b.cur, header, nil, false, []iterEnd{{loop, s.Body.End()}})
	}
	b.loopStk = b.loopStk[:len(b.loopStk)-1]
	b.targets = b.targets.up
	b.cur = after
}

// switchStmt builds both expression and type switches: every clause is
// a branch from the tag block, fallthrough edges link consecutive
// clauses, and a missing default adds the no-case-taken edge.
func (b *cfgBuilder) switchStmt(init ast.Stmt, body *ast.BlockStmt) {
	if init != nil {
		b.stmt(init)
	}
	cond := b.cur
	after := b.newBlock()
	b.targets = &cfgTarget{up: b.targets, label: b.takeLabel(), breakTo: after}
	clauseBlocks := make([]*cfgBlock, len(body.List))
	for i := range body.List {
		clauseBlocks[i] = b.newBlock()
	}
	prevFall := b.fall
	hasDefault := false
	for i, c := range body.List {
		cc, ok := c.(*ast.CaseClause)
		if !ok {
			continue
		}
		if cc.List == nil {
			hasDefault = true
		}
		b.edge(cond, clauseBlocks[i], nil, false, nil)
		if i+1 < len(clauseBlocks) {
			b.fall = clauseBlocks[i+1]
		} else {
			b.fall = nil
		}
		b.cur = clauseBlocks[i]
		b.stmtList(cc.Body)
		if b.cur != nil {
			b.edge(b.cur, after, nil, false, nil)
		}
	}
	b.fall = prevFall
	if !hasDefault {
		b.edge(cond, after, nil, false, nil)
	}
	b.targets = b.targets.up
	b.cur = after
}

// selectStmt branches to every comm clause. Unlike a switch, a select
// without a default has no fall-through edge: it blocks until one of
// its cases can proceed, so some clause always runs.
func (b *cfgBuilder) selectStmt(s *ast.SelectStmt) {
	cond := b.cur
	after := b.newBlock()
	b.targets = &cfgTarget{up: b.targets, label: b.takeLabel(), breakTo: after}
	for _, c := range s.Body.List {
		cc, ok := c.(*ast.CommClause)
		if !ok {
			continue
		}
		blk := b.newBlock()
		b.edge(cond, blk, nil, false, nil)
		b.cur = blk
		if cc.Comm != nil {
			b.stmt(cc.Comm)
		}
		b.stmtList(cc.Body)
		if b.cur != nil {
			b.edge(b.cur, after, nil, false, nil)
		}
	}
	b.targets = b.targets.up
	b.cur = after
}

func (b *cfgBuilder) branchStmt(s *ast.BranchStmt) {
	switch s.Tok {
	case token.BREAK:
		if t := b.findTarget(s.Label, false); t != nil {
			b.edge(b.cur, t.breakTo, nil, false, b.exitedLoops(t, s.Pos(), true))
		}
	case token.CONTINUE:
		if t := b.findTarget(s.Label, true); t != nil {
			b.edge(b.cur, t.continueTo, nil, false, b.exitedLoops(t, s.Pos(), true))
		}
	case token.GOTO:
		if s.Label != nil {
			loops := make([]*cfgLoop, len(b.loopStk))
			copy(loops, b.loopStk)
			b.gotos = append(b.gotos, cfgGoto{from: b.cur, pos: s.Pos(), name: s.Label.Name, loops: loops})
		}
	case token.FALLTHROUGH:
		if b.fall != nil {
			b.edge(b.cur, b.fall, nil, false, nil)
		}
	}
	b.cur = nil
}

// findTarget resolves a break (any breakable) or continue (loops only)
// to its target-stack entry, honoring an optional label.
func (b *cfgBuilder) findTarget(label *ast.Ident, loopOnly bool) *cfgTarget {
	for t := b.targets; t != nil; t = t.up {
		if loopOnly && t.loop == nil {
			continue
		}
		if label == nil || t.label == label.Name {
			return t
		}
	}
	return nil
}

// exitedLoops collects the iterations a break/continue terminates: the
// loops on the target stack from the innermost through the target.
// Breaking a labeled outer loop ends the current iteration of every
// loop in between; breaking a switch ends none. includeTarget is true
// for both break and continue — either way the target loop's current
// iteration is over.
func (b *cfgBuilder) exitedLoops(target *cfgTarget, at token.Pos, includeTarget bool) []iterEnd {
	var iters []iterEnd
	for t := b.targets; t != nil; t = t.up {
		if t == target {
			if includeTarget && t.loop != nil {
				iters = append(iters, iterEnd{t.loop, at})
			}
			break
		}
		if t.loop != nil {
			iters = append(iters, iterEnd{t.loop, at})
		}
	}
	return iters
}

// resolveGotos links goto statements to their label blocks. A goto
// terminates the iteration of every enclosing loop whose body does not
// contain the label (jumping within the same iteration ends nothing).
func (b *cfgBuilder) resolveGotos() {
	for _, g := range b.gotos {
		lb := b.labels[g.name]
		if lb == nil || g.from == nil {
			continue
		}
		var iters []iterEnd
		for i := len(g.loops) - 1; i >= 0; i-- {
			if g.loops[i].contains(lb.pos) {
				break // label inside this loop (and every outer one)
			}
			iters = append(iters, iterEnd{g.loops[i], g.pos})
		}
		b.edge(g.from, lb.block, nil, false, iters)
	}
}

// isNoReturnCall recognizes statement-position calls that never
// return: panic, os.Exit, runtime.Goexit, and the log package's
// Fatal*/Panic* family. Blocks ending in one get no successors, so
// resources still open there are not leaks — the old lexical walkers
// merged these paths pessimistically; the CFG prunes them.
func isNoReturnCall(info *types.Info, e ast.Expr) bool {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return false
	}
	if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "panic" {
		if _, builtin := info.Uses[id].(*types.Builtin); builtin {
			return true
		}
	}
	pkg, fn := pkgFuncInfo(info, call)
	switch pkg {
	case "os":
		return fn == "Exit"
	case "runtime":
		return fn == "Goexit"
	case "log":
		return strings.HasPrefix(fn, "Fatal") || strings.HasPrefix(fn, "Panic")
	}
	return false
}

// pkgFuncInfo is pkgFunc without a Pass (the builder holds only the
// types.Info).
func pkgFuncInfo(info *types.Info, call *ast.CallExpr) (pkgPath, fn string) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", ""
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return "", ""
	}
	pn, ok := info.Uses[id].(*types.PkgName)
	if !ok {
		return "", ""
	}
	return pn.Imported().Path(), sel.Sel.Name
}
