package analysis

import "go/ast"

// randGlobals lists the math/rand (and math/rand/v2) top-level
// functions that draw from the package-global generator. v1's global
// source is shared mutable state (order-dependent under concurrency
// even when seeded); v2's is auto-seeded and unconditionally
// nondeterministic. Constructors (New, NewSource, NewPCG, ...) stay
// legal: the repo's contract is explicit per-stream seeding via
// par.SubstreamSeed, not a ban on math/rand itself.
var randGlobals = map[string]map[string]bool{
	"math/rand": set("Seed", "Int", "Intn", "Int31", "Int31n", "Int63", "Int63n",
		"Uint32", "Uint64", "Float32", "Float64", "NormFloat64", "ExpFloat64",
		"Perm", "Shuffle", "Read"),
	"math/rand/v2": set("Int", "IntN", "Int32", "Int32N", "Int64", "Int64N",
		"Uint", "UintN", "Uint32", "Uint32N", "Uint64", "Uint64N",
		"Float32", "Float64", "NormFloat64", "ExpFloat64", "Perm", "Shuffle", "N"),
}

func set(names ...string) map[string]bool {
	m := make(map[string]bool, len(names))
	for _, n := range names {
		m[n] = true
	}
	return m
}

// Seededrand forbids the math/rand global-state functions everywhere
// except internal/par (the substream layer itself): randomness must
// flow from an explicit seed through rand.New / par.Source so that a
// trial's stream depends only on (seed, index), never on call order,
// goroutine interleaving, or process start time.
var Seededrand = &Analyzer{
	Name: "seededrand",
	Doc:  "forbids math/rand global-state functions outside internal/par",
	Run:  runSeededrand,
}

func runSeededrand(pass *Pass) error {
	if pathBase(pass.Pkg.Path()) == "par" {
		return nil
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			pkg, fn := pkgFunc(pass.Info, call)
			if randGlobals[pkg][fn] {
				name := pathBase(pkg)
				if name == "v2" {
					name = "rand/v2"
				}
				pass.Reportf(call.Pos(),
					"%s.%s draws from the package-global random source; seed an explicit source (rand.New with par.SubstreamSeed, or par.Source) so results are reproducible",
					name, fn)
			}
			return true
		})
	}
	return nil
}
