package analysis_test

import (
	"strings"
	"testing"

	"smartndr/internal/analysis"
	"smartndr/internal/analysis/analysistest"
)

// TestGolden checks every analyzer against its golden packages under
// testdata/src: each has at least one flagged and one clean case, and
// the want comments pin the exact diagnostics.
func TestGolden(t *testing.T) {
	cases := []struct {
		analyzer *analysis.Analyzer
		pkgs     []string
	}{
		{analysis.Maporder, []string{"maporder/core", "maporder/other"}},
		{analysis.Seededrand, []string{"seededrand/engine", "seededrand/par"}},
		{analysis.Wallclock, []string{"wallclock/sta", "wallclock/obs", "wallclock/cli"}},
		{analysis.Spanhygiene, []string{"spanhygiene/a", "spanhygiene/cfg"}},
		{analysis.Floatorder, []string{"floatorder/a"}},
		{analysis.Metricname, []string{"metricname/engine", "metricname/clean"}},
		{analysis.Httpbody, []string{"httpbody/client"}},
		{analysis.Errcmp, []string{"errcmp/a", "errcmp/own"}},
		{analysis.Gateleak, []string{"gateleak/a"}},
		{analysis.Ctxflow, []string{"ctxflow/lib", "ctxflow/mainpkg"}},
	}
	for _, c := range cases {
		c := c
		t.Run(c.analyzer.Name, func(t *testing.T) {
			t.Parallel()
			analysistest.Run(t, "testdata", c.analyzer, c.pkgs...)
		})
	}
}

func TestByName(t *testing.T) {
	got, err := analysis.ByName("wallclock,maporder")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0].Name != "wallclock" || got[1].Name != "maporder" {
		names := make([]string, len(got))
		for i, a := range got {
			names[i] = a.Name
		}
		t.Fatalf("ByName returned %v, want [wallclock maporder]", names)
	}
	if _, err := analysis.ByName("nosuchanalyzer"); err == nil {
		t.Fatal("ByName accepted an unknown analyzer name")
	}
}

func TestAllHaveDocs(t *testing.T) {
	seen := map[string]bool{}
	for _, a := range analysis.All() {
		if a.Name == "" || a.Doc == "" || a.Run == nil {
			t.Errorf("analyzer %+v is missing a name, doc, or run function", a)
		}
		if seen[a.Name] {
			t.Errorf("duplicate analyzer name %q", a.Name)
		}
		seen[a.Name] = true
		if strings.ContainsAny(a.Name, " ,") {
			t.Errorf("analyzer name %q must be a single flag-friendly token", a.Name)
		}
	}
	// The full roster, by name: a registration forgotten in All() fails
	// here, not silently in CI.
	want := []string{
		"maporder", "seededrand", "wallclock", "spanhygiene", "floatorder",
		"metricname", "httpbody", "errcmp", "gateleak", "ctxflow",
	}
	if len(seen) != len(want) {
		t.Errorf("expected the %d suite analyzers, got %d", len(want), len(seen))
	}
	for _, name := range want {
		if !seen[name] {
			t.Errorf("analyzer %q is not registered in All()", name)
		}
	}
}
