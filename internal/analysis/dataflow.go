package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// This file is the shared must-reach dataflow engine: "a resource
// acquired here must reach a consuming call on every path out of the
// function, and out of the loop iteration that acquired it". Three
// analyzers instantiate it — spanhygiene (obs spans must End),
// httpbody (response bodies must Close), gateleak (par.Gate release
// funcs must run) — by filling in a consumeRule; the path reasoning,
// defer semantics, error-guard idiom, loop-iteration checks, and
// escape exemption live here once instead of being reimplemented per
// analyzer.
//
// The analysis is a forward must-analysis over the function CFG
// (cfg.go). Per tracked object the state is one of:
//
//	open      — acquired, consumption not yet guaranteed (an entry
//	            with deferPos == 0)
//	deferred  — consumption registered on the defer stack; satisfied
//	            at every function exit (entry with deferPos != 0)
//	closed    — consumed, or never acquired on this path (no entry)
//
// Merging predecessor states is pessimistic in exactly the all-paths
// sense: a resource is open after a merge if any incoming path left
// it open, and deferred only if every incoming path deferred it; a
// path that closed it explicitly contributes "no obligation" without
// making the defer universal.
//
// Exits report open resources; loop-terminating edges (cfg.go
// iterEnd) report resources acquired inside that loop's body that are
// still open — including, with a dedicated message, resources whose
// only consumption is a defer registered in the same loop body, since
// defers run at function return, not at iteration end, and so
// accumulate one pinned resource per iteration.
type consumeRule struct {
	// isAcquire reports whether the call yields the tracked resource
	// (alone or in a result tuple).
	isAcquire func(p *Pass, call *ast.CallExpr) bool
	// isResourceType reports whether a bound variable of this type
	// holds the resource handle.
	isResourceType func(t types.Type) bool
	// consumes returns the object whose obligation the call satisfies,
	// or nil.
	consumes func(p *Pass, call *ast.CallExpr) types.Object
	// pairErr pairs each acquisition with the error variable assigned
	// in the same statement; on branch edges where that error is known
	// non-nil the resource is dropped (nil by the acquiring API's
	// contract, nothing to consume).
	pairErr bool
	// escapes reports whether the object's uses transfer ownership out
	// of the function (returned, stored, passed along); escaping
	// resources are exempt.
	escapes func(p *Pass, body *ast.BlockStmt, obj types.Object) bool

	// discardMsg, when non-empty, flags acquisitions whose handle is
	// discarded (statement position, or bound to _): nothing can ever
	// consume them.
	discardMsg string
	// reportExit flags obj (acquired at acq) still open at a function
	// exit; where is "this return" or "function end".
	reportExit func(p *Pass, obj types.Object, acq token.Pos, at token.Position, where string)
	// reportLoop flags obj still open when the loop iteration that
	// acquired it ends at `at`.
	reportLoop func(p *Pass, obj types.Object, acq token.Pos, at token.Position)
	// reportDeferLoop flags obj acquired in a loop whose only
	// consumption is a defer registered inside that same loop body.
	reportDeferLoop func(p *Pass, obj types.Object, acq token.Pos, at token.Position)
}

// resEntry is the per-object dataflow fact while an obligation is
// outstanding or deferred.
type resEntry struct {
	acqPos   token.Pos    // acquisition site, where diagnostics point
	errObj   types.Object // error assigned alongside (pairErr only)
	deferPos token.Pos    // 0 = open; else the defer registering consumption
}

// rstate maps tracked objects to their facts. Absence means closed
// (or never acquired on this path). A nil rstate marks an unreached
// block.
type rstate map[types.Object]resEntry

func cloneState(st rstate) rstate {
	c := make(rstate, len(st))
	for k, v := range st { //lint:commutative — map copy
		c[k] = v
	}
	return c
}

func statesEqual(a, b rstate) bool {
	if len(a) != len(b) {
		return false
	}
	for k, va := range a { //lint:commutative — pure comparison
		vb, ok := b[k]
		if !ok || va != vb {
			return false
		}
	}
	return true
}

// mergeStates folds predecessor end-states: open if any path is open
// (keeping the latest acquisition site), deferred only if every path
// deferred, dropped otherwise. The ordering rules make the result
// independent of predecessor iteration order.
func mergeStates(preds []rstate) rstate {
	out := rstate{}
	for _, p := range preds {
		for obj, e := range p { //lint:commutative — order-independent fold (max/all rules below)
			cur, seen := out[obj]
			if !seen {
				out[obj] = e
				continue
			}
			// Any open predecessor makes the merge open; otherwise keep
			// the later defer. The later acquisition site wins either
			// way, matching the branch-ordered union of the old walkers.
			if e.acqPos > cur.acqPos {
				cur.acqPos, cur.errObj = e.acqPos, e.errObj
			}
			if e.deferPos == 0 || cur.deferPos == 0 {
				cur.deferPos = 0
			} else if e.deferPos > cur.deferPos {
				cur.deferPos = e.deferPos
			}
			out[obj] = cur
		}
	}
	// Deferred entries must be deferred on *every* incoming path; a
	// path without the entry closed it (or never acquired it), so the
	// defer is not universal — but there is no obligation either: drop.
	for obj, e := range out { //lint:commutative — per-key filter
		if e.deferPos == 0 {
			continue
		}
		for _, p := range preds {
			if _, ok := p[obj]; !ok {
				delete(out, obj)
				break
			}
		}
	}
	return out
}

// run applies the rule to every function (declaration or literal) in
// the package.
func (r *consumeRule) run(pass *Pass) error {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			var body *ast.BlockStmt
			switch fn := n.(type) {
			case *ast.FuncDecl:
				body = fn.Body
			case *ast.FuncLit:
				body = fn.Body
			default:
				return true
			}
			if body != nil {
				r.checkFunc(pass, body)
			}
			return true
		})
	}
	return nil
}

// checkFunc runs the dataflow over one function body and reports.
func (r *consumeRule) checkFunc(pass *Pass, body *ast.BlockStmt) {
	g := pass.funcCFG(body)
	escCache := map[types.Object]bool{}
	escapes := func(obj types.Object) bool {
		if v, ok := escCache[obj]; ok {
			return v
		}
		v := r.escapes(pass, body, obj)
		escCache[obj] = v
		return v
	}

	if r.discardMsg != "" {
		r.reportDiscards(pass, g)
	}

	// Forward fixpoint: in-states recomputed from predecessor
	// out-states each round until stable. Blocks are visited in
	// creation order (headers precede bodies), so rounds converge in
	// O(loop nesting); the cap is a safety net for goto-made cycles.
	type predEdge struct{ block, edge int }
	predsOf := make([][]predEdge, len(g.blocks))
	for _, blk := range g.blocks {
		for ei, e := range blk.succs {
			predsOf[e.to.index] = append(predsOf[e.to.index], predEdge{blk.index, ei})
		}
	}
	in := make([]rstate, len(g.blocks))
	out := make([]rstate, len(g.blocks))
	in[g.entry.index] = rstate{}
	for round := 0; round < len(g.blocks)+8; round++ {
		changed := false
		for _, blk := range g.blocks {
			if in[blk.index] == nil {
				continue
			}
			o := r.transfer(pass, cloneState(in[blk.index]), blk, escapes)
			if !statesEqual(o, out[blk.index]) || out[blk.index] == nil {
				out[blk.index] = o
				changed = true
			}
		}
		for _, blk := range g.blocks {
			if blk == g.entry {
				continue
			}
			var incoming []rstate
			for _, pe := range predsOf[blk.index] {
				if out[pe.block] == nil {
					continue
				}
				incoming = append(incoming, r.edgeState(pass, out[pe.block], g.blocks[pe.block].succs[pe.edge]))
			}
			if len(incoming) == 0 {
				continue
			}
			m := mergeStates(incoming)
			if in[blk.index] == nil || !statesEqual(m, in[blk.index]) {
				in[blk.index] = m
				changed = true
			}
		}
		if !changed {
			break
		}
	}

	// Reporting: walk every reachable block once, replaying its
	// transfer to get the state at each exit and at each
	// loop-terminating edge; collect events, keep the earliest per
	// object (matching the first report of a source-ordered walk), and
	// emit.
	type event struct {
		obj   types.Object
		e     resEntry
		at    token.Pos
		kind  int // 0 exit, 1 loop, 2 defer-in-loop
		where string
	}
	var events []event
	for _, blk := range g.blocks {
		if in[blk.index] == nil {
			continue
		}
		st := r.transfer(pass, cloneState(in[blk.index]), blk, escapes)
		if blk.exit != nil {
			for obj, e := range st { //lint:commutative — events sorted below
				if e.deferPos == 0 {
					events = append(events, event{obj, e, blk.exit.pos, 0, blk.exit.where})
				}
			}
		}
		for _, edge := range blk.succs {
			if len(edge.iters) == 0 {
				continue
			}
			es := r.edgeState(pass, st, edge)
			for _, it := range edge.iters {
				for obj, e := range es { //lint:commutative — events sorted below
					if e.acqPos < it.loop.bodyPos {
						continue // acquired outside this loop
					}
					switch {
					case e.deferPos == 0:
						events = append(events, event{obj, e, it.at, 1, ""})
					case it.loop.contains(e.deferPos):
						events = append(events, event{obj, e, it.at, 2, ""})
					}
				}
			}
		}
	}
	sort.Slice(events, func(i, j int) bool {
		a, b := events[i], events[j]
		if a.at != b.at {
			return a.at < b.at
		}
		if a.kind != b.kind {
			return a.kind < b.kind
		}
		return a.e.acqPos < b.e.acqPos
	})
	reported := map[types.Object]bool{}
	for _, ev := range events {
		if reported[ev.obj] {
			continue
		}
		reported[ev.obj] = true
		at := pass.Fset.Position(ev.at)
		switch ev.kind {
		case 0:
			r.reportExit(pass, ev.obj, ev.e.acqPos, at, ev.where)
		case 1:
			r.reportLoop(pass, ev.obj, ev.e.acqPos, at)
		case 2:
			r.reportDeferLoop(pass, ev.obj, ev.e.acqPos, at)
		}
	}
}

// transfer applies a block's statements to st in execution order.
func (r *consumeRule) transfer(pass *Pass, st rstate, blk *cfgBlock, escapes func(types.Object) bool) rstate {
	for _, s := range blk.stmts {
		switch s := s.(type) {
		case *ast.AssignStmt:
			r.acquireAssign(pass, st, s, escapes)
		case *ast.DeclStmt:
			if gd, ok := s.Decl.(*ast.GenDecl); ok {
				for _, spec := range gd.Specs {
					if vs, ok := spec.(*ast.ValueSpec); ok {
						r.acquireValueSpec(pass, st, vs, escapes)
					}
				}
			}
		case *ast.ExprStmt:
			if call, ok := s.X.(*ast.CallExpr); ok {
				if obj := r.consumes(pass, call); obj != nil {
					delete(st, obj)
				}
			}
		case *ast.DeferStmt:
			r.deferStmt(pass, st, s)
		}
	}
	return st
}

// deferStmt registers deferred consumptions: `defer x.Consume()`
// directly, or any consuming call inside a deferred closure — the
// closure runs on every path out of the function, so every
// consumption in it (even a conditional one, pessimism traded for the
// overwhelmingly common cleanup-closure idiom) counts.
func (r *consumeRule) deferStmt(pass *Pass, st rstate, s *ast.DeferStmt) {
	mark := func(obj types.Object) {
		if e, ok := st[obj]; ok {
			e.deferPos = s.Pos()
			st[obj] = e
		}
	}
	if obj := r.consumes(pass, s.Call); obj != nil {
		mark(obj)
	}
	if lit, ok := s.Call.Fun.(*ast.FuncLit); ok {
		ast.Inspect(lit.Body, func(n ast.Node) bool {
			if call, ok := n.(*ast.CallExpr); ok {
				if obj := r.consumes(pass, call); obj != nil {
					mark(obj)
				}
			}
			return true
		})
	}
}

// acquireAssign tracks resources bound by an assignment: the tuple
// form `res, err := acquire(...)` (pairing the error variable when
// the rule asks) and the element-wise form `res := acquire(...)`.
func (r *consumeRule) acquireAssign(pass *Pass, st rstate, s *ast.AssignStmt, escapes func(types.Object) bool) {
	if len(s.Rhs) == 1 && len(s.Lhs) > 1 {
		call, ok := s.Rhs[0].(*ast.CallExpr)
		if !ok || !r.isAcquire(pass, call) {
			return
		}
		var errObj types.Object
		if r.pairErr {
			for _, l := range s.Lhs {
				if id, ok := l.(*ast.Ident); ok && id.Name != "_" {
					if obj := objOf(pass, id); obj != nil && isErrorType(obj.Type()) {
						errObj = obj
					}
				}
			}
		}
		for _, l := range s.Lhs {
			id, ok := l.(*ast.Ident)
			if !ok || id.Name == "_" {
				continue
			}
			obj := objOf(pass, id)
			if obj == nil || !r.isResourceType(obj.Type()) || escapes(obj) {
				continue
			}
			st[obj] = resEntry{acqPos: call.Pos(), errObj: errObj}
		}
		return
	}
	if len(s.Lhs) == len(s.Rhs) {
		for i, rhs := range s.Rhs {
			call, ok := rhs.(*ast.CallExpr)
			if !ok || !r.isAcquire(pass, call) {
				continue
			}
			id, ok := s.Lhs[i].(*ast.Ident)
			if !ok || id.Name == "_" {
				continue
			}
			obj := objOf(pass, id)
			if obj == nil || !r.isResourceType(obj.Type()) || escapes(obj) {
				continue
			}
			st[obj] = resEntry{acqPos: call.Pos()}
		}
	}
}

func (r *consumeRule) acquireValueSpec(pass *Pass, st rstate, vs *ast.ValueSpec, escapes func(types.Object) bool) {
	if len(vs.Names) != len(vs.Values) {
		return
	}
	for i, v := range vs.Values {
		call, ok := v.(*ast.CallExpr)
		if !ok || !r.isAcquire(pass, call) {
			continue
		}
		obj := pass.Info.Defs[vs.Names[i]]
		if obj == nil || !r.isResourceType(obj.Type()) || escapes(obj) {
			continue
		}
		st[obj] = resEntry{acqPos: call.Pos()}
	}
}

// edgeState applies branch-condition facts to a state crossing an
// edge: on the side of an `err != nil` / `err == nil` check where the
// error is known non-nil, resources paired with that error are nil by
// the acquiring API's contract and carry no obligation.
func (r *consumeRule) edgeState(pass *Pass, st rstate, edge cfgEdge) rstate {
	if !r.pairErr || edge.cond == nil {
		return st
	}
	op := token.NEQ
	if edge.negate {
		op = token.EQL
	}
	errObj := guardedErr(pass, edge.cond, op)
	if errObj == nil {
		return st
	}
	var dropped rstate
	for obj, e := range st { //lint:commutative — filtered copy
		if e.errObj == errObj {
			if dropped == nil {
				dropped = cloneState(st)
			}
			delete(dropped, obj)
		}
	}
	if dropped != nil {
		return dropped
	}
	return st
}

// reportDiscards flags acquisitions whose handle is thrown away —
// statement position or a blank identifier — so no path can ever
// consume them. The scan covers every block (even unreachable ones)
// in creation order.
func (r *consumeRule) reportDiscards(pass *Pass, g *funcCFG) {
	for _, blk := range g.blocks {
		for _, s := range blk.stmts {
			switch s := s.(type) {
			case *ast.ExprStmt:
				if call, ok := s.X.(*ast.CallExpr); ok && r.isAcquire(pass, call) {
					pass.Reportf(call.Pos(), "%s", r.discardMsg)
				}
			case *ast.AssignStmt:
				if len(s.Lhs) == len(s.Rhs) {
					for i, rhs := range s.Rhs {
						call, ok := rhs.(*ast.CallExpr)
						if !ok || !r.isAcquire(pass, call) {
							continue
						}
						if id, ok := s.Lhs[i].(*ast.Ident); ok && id.Name == "_" {
							pass.Reportf(call.Pos(), "%s", r.discardMsg)
						}
					}
					continue
				}
				if len(s.Rhs) == 1 && len(s.Lhs) > 1 {
					call, ok := s.Rhs[0].(*ast.CallExpr)
					if !ok || !r.isAcquire(pass, call) {
						continue
					}
					tv, ok := pass.Info.Types[call]
					if !ok {
						continue
					}
					tuple, ok := tv.Type.(*types.Tuple)
					if !ok || tuple.Len() != len(s.Lhs) {
						continue
					}
					for i, l := range s.Lhs {
						id, ok := l.(*ast.Ident)
						if !ok || id.Name != "_" {
							continue
						}
						if r.isResourceType(tuple.At(i).Type()) {
							pass.Reportf(call.Pos(), "%s", r.discardMsg)
						}
					}
				}
			}
		}
	}
}

// guardedErr returns the error object when cond has the shape
// `<errVar> <op> nil` for the requested operator.
func guardedErr(pass *Pass, cond ast.Expr, op token.Token) types.Object {
	be, ok := cond.(*ast.BinaryExpr)
	if !ok || be.Op != op {
		return nil
	}
	var id *ast.Ident
	switch {
	case isNilIdent(be.Y):
		id, _ = be.X.(*ast.Ident)
	case isNilIdent(be.X):
		id, _ = be.Y.(*ast.Ident)
	}
	if id == nil {
		return nil
	}
	obj := objOf(pass, id)
	if obj == nil || !isErrorType(obj.Type()) {
		return nil
	}
	return obj
}

func isNilIdent(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "nil"
}

// escapeOpts tunes the shared ownership-escape scan.
type escapeOpts struct {
	allowNilCompare bool // x == nil / x != nil is a read, not a transfer
	allowCallFun    bool // x() in function position consumes, not transfers
}

// escapesWith reports whether obj is used outside the allowed read
// positions anywhere in body — returned, stored, passed as an
// argument, sent on a channel. Such uses transfer ownership (and the
// consumption obligation) with them, so the local check stands down.
// Always allowed: selector-receiver position (x.M(), x.Field) and the
// left-hand side of assignments.
func escapesWith(pass *Pass, body *ast.BlockStmt, obj types.Object, o escapeOpts) bool {
	allowed := map[*ast.Ident]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.SelectorExpr:
			if id, ok := n.X.(*ast.Ident); ok {
				allowed[id] = true
			}
		case *ast.AssignStmt:
			for _, l := range n.Lhs {
				if id, ok := l.(*ast.Ident); ok {
					allowed[id] = true
				}
			}
		case *ast.BinaryExpr:
			if o.allowNilCompare && (isNilIdent(n.X) || isNilIdent(n.Y)) {
				if id, ok := n.X.(*ast.Ident); ok {
					allowed[id] = true
				}
				if id, ok := n.Y.(*ast.Ident); ok {
					allowed[id] = true
				}
			}
		case *ast.CallExpr:
			if o.allowCallFun {
				if id, ok := n.Fun.(*ast.Ident); ok {
					allowed[id] = true
				}
			}
		}
		return true
	})
	escaped := false
	ast.Inspect(body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok || escaped || objOf(pass, id) != obj {
			return true
		}
		if !allowed[id] {
			escaped = true
		}
		return true
	})
	return escaped
}
