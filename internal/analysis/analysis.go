// Package analysis is the repo's static-analysis suite: ten custom
// passes that turn the determinism, tracing, telemetry, units, and
// resource-hygiene contracts the engine packages rely on —
// bit-identical parallel results, leak-free span trees, no wall-clock
// reads on resumable paths, a statically enumerable metric namespace,
// connection-safe HTTP clients, wrap-proof error handling, leak-free
// admission gates, threaded cancellation contexts — into build-time
// errors instead of code-review folklore.
//
// The resource-hygiene passes (spanhygiene, httpbody, gateleak) share
// a function-level control-flow-graph and must-reach dataflow engine
// (cfg.go, dataflow.go): CFGs are built once per package and cached,
// and each analyzer instantiates the engine with a small rule — what
// acquires the resource, what consumes it, what counts as ownership
// escaping. See docs/static-analysis.md for the block model and merge
// semantics.
//
// The framework deliberately mirrors the golang.org/x/tools/go/analysis
// shape (Analyzer, Pass, Diagnostic) but is built on the standard
// library alone: packages are enumerated with `go list -deps -json` and
// type-checked with go/types, so the linter needs nothing outside the
// Go toolchain. See docs/static-analysis.md for the contract each
// analyzer enforces and cmd/smartndrlint for the CLI driver.
//
// Two comment directives tune the suite:
//
//	//lint:commutative <why>        the annotated map range is provably
//	                                order-independent (maporder skips it)
//	//lint:allow <analyzer> <why>   suppress one analyzer on this line
//
// A directive applies to the line it sits on, or to the following line
// when written on a line of its own. The justification text is
// mandatory by convention — an annotation without a why does not
// survive review — but the parser only needs the directive word.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// An Analyzer is one named static check over a type-checked package.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass) error
}

// A Diagnostic is one finding, positioned and attributed to its
// analyzer.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

// A Pass carries one analyzer's view of one package.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info

	directives directiveIndex
	report     func(Diagnostic)
	pkg        *Package // owning package; carries the shared CFG cache
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// HasDirective reports whether the line holding pos (or the line above
// it) carries the named //lint: directive.
func (p *Pass) HasDirective(pos token.Pos, name string) bool {
	return p.directives.has(p.Fset.Position(pos), name)
}

// directiveIndex maps file → line → directive words found in
// //lint:-prefixed comments.
type directiveIndex map[string]map[int][]string

func (d directiveIndex) has(pos token.Position, name string) bool {
	lines := d[pos.Filename]
	for _, l := range []int{pos.Line, pos.Line - 1} {
		for _, w := range lines[l] {
			if w == name {
				return true
			}
		}
	}
	return false
}

// buildDirectives scans a file's comments for //lint: directives. The
// directive word is everything after the colon up to the first space,
// with an optional "allow " prefix folding the allowed analyzer name
// into the word list (so "//lint:allow wallclock why" indexes both
// "allow" and "allow:wallclock").
func buildDirectives(fset *token.FileSet, files []*ast.File) directiveIndex {
	idx := directiveIndex{}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "//lint:")
				if !ok {
					continue
				}
				fields := strings.Fields(text)
				if len(fields) == 0 {
					continue
				}
				words := []string{fields[0]}
				if fields[0] == "allow" && len(fields) > 1 {
					words = append(words, "allow:"+fields[1])
				}
				pos := fset.Position(c.Pos())
				m := idx[pos.Filename]
				if m == nil {
					m = map[int][]string{}
					idx[pos.Filename] = m
				}
				m[pos.Line] = append(m[pos.Line], words...)
			}
		}
	}
	return idx
}

// All returns the full analyzer suite in reporting order.
func All() []*Analyzer {
	return []*Analyzer{Maporder, Seededrand, Wallclock, Spanhygiene, Floatorder, Metricname, Httpbody, Errcmp, Gateleak, Ctxflow}
}

// ByName resolves a comma-separated analyzer subset ("" means all).
func ByName(names string) ([]*Analyzer, error) {
	if names == "" {
		return All(), nil
	}
	byName := map[string]*Analyzer{}
	for _, a := range All() {
		byName[a.Name] = a
	}
	var out []*Analyzer
	for _, n := range strings.Split(names, ",") {
		a, ok := byName[strings.TrimSpace(n)]
		if !ok {
			return nil, fmt.Errorf("analysis: unknown analyzer %q", n)
		}
		out = append(out, a)
	}
	return out, nil
}

// RunAnalyzers applies each analyzer to each package, drops findings
// suppressed by a matching //lint:allow directive, and returns the rest
// sorted by position — the suite's own output must be deterministic.
func RunAnalyzers(pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer:   a,
				Fset:       pkg.Fset,
				Files:      pkg.Files,
				Pkg:        pkg.Types,
				Info:       pkg.Info,
				directives: pkg.directives,
				pkg:        pkg,
			}
			pass.report = func(d Diagnostic) {
				if pkg.directives.has(d.Pos, "allow:"+d.Analyzer) {
					return
				}
				diags = append(diags, d)
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("analysis: %s on %s: %w", a.Name, pkg.Path, err)
			}
		}
	}
	SortDiagnostics(diags)
	return diags, nil
}

// SortDiagnostics orders findings by position, then analyzer — the
// canonical deterministic output order. Exported for drivers that run
// analyzers separately (per-analyzer timing) and merge afterwards.
func SortDiagnostics(diags []Diagnostic) {
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
}

// pathBase returns the last element of an import path.
func pathBase(path string) string {
	if i := strings.LastIndexByte(path, '/'); i >= 0 {
		return path[i+1:]
	}
	return path
}

// pkgFunc resolves a call of the form pkg.Fn(...) to the imported
// package path and function name; empty strings otherwise.
func pkgFunc(info *types.Info, call *ast.CallExpr) (pkgPath, fn string) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", ""
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return "", ""
	}
	pn, ok := info.Uses[id].(*types.PkgName)
	if !ok {
		return "", ""
	}
	return pn.Imported().Path(), sel.Sel.Name
}

// methodOn resolves a call of the form x.M(...) to the defining package
// path and named type of the method's receiver; empty strings when the
// call is not a method call on a named (possibly pointer) receiver.
func methodOn(info *types.Info, call *ast.CallExpr) (pkgPath, typeName, method string) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", "", ""
	}
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok {
		return "", "", ""
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return "", "", ""
	}
	rt := sig.Recv().Type()
	if p, ok := rt.(*types.Pointer); ok {
		rt = p.Elem()
	}
	named, ok := rt.(*types.Named)
	if !ok {
		return "", "", ""
	}
	obj := named.Obj()
	if obj.Pkg() == nil {
		return "", "", ""
	}
	return obj.Pkg().Path(), obj.Name(), fn.Name()
}
