package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Spanhygiene enforces the two obs contracts that keep trace trees
// well-formed (see internal/obs and docs/observability.md):
//
//  1. Every span opened in a function — tr.Start, sp.Start, sp.Child —
//     must be Ended on every path out of the function (or out of the
//     loop iteration that opened it). A span leaked on an error return
//     never emits its event and silently truncates the trace.
//  2. Code running concurrently — a `go` statement or a par.ForEach /
//     par.ForEachWorker worker closure — must open spans with
//     Span.Child, never the ambient-stack forms Tracer.Start /
//     Span.Start, whose implicit innermost-open-span nesting races
//     across goroutines.
//
// The End check is a conservative lexical walk, not a full CFG: it
// tracks spans bound to local variables, accepts `defer sp.End()`
// (directly or inside a deferred closure) as ending every later path,
// branch-merges if/switch arms pessimistically (a span is closed after
// a branch only if every arm closed it), and gives up on spans that
// escape the function (returned, stored, or passed as an argument).
// Suppress a deliberate exception with //lint:allow spanhygiene.
var Spanhygiene = &Analyzer{
	Name: "spanhygiene",
	Doc:  "obs spans must End on all paths; concurrent code must use Span.Child",
	Run:  runSpanhygiene,
}

func runSpanhygiene(pass *Pass) error {
	for _, file := range pass.Files {
		checkConcurrentStarts(pass, file)
		ast.Inspect(file, func(n ast.Node) bool {
			var body *ast.BlockStmt
			switch fn := n.(type) {
			case *ast.FuncDecl:
				body = fn.Body
			case *ast.FuncLit:
				body = fn.Body
			default:
				return true
			}
			if body != nil {
				w := &hygieneWalker{pass: pass, body: body, reported: map[types.Object]bool{}}
				st := &hygieneState{open: map[types.Object]token.Pos{}, deferred: map[types.Object]bool{}}
				w.walkStmts(body.List, st, token.NoPos)
				w.reportOpen(st, body.End(), "function end")
			}
			return true
		})
	}
	return nil
}

// --- rule 2: ambient Start in concurrent code ---

// checkConcurrentStarts finds `go func(){...}` bodies and function
// literals passed to par.ForEach/ForEachWorker, and flags every
// Tracer.Start / Span.Start in their subtrees (nested literals
// inherit the concurrent context).
func checkConcurrentStarts(pass *Pass, file *ast.File) {
	seen := map[token.Pos]bool{}
	flag := func(root ast.Node, context string) {
		ast.Inspect(root, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			pkg, typ, method := methodOn(pass.Info, call)
			if pathBase(pkg) != "obs" || method != "Start" || (typ != "Tracer" && typ != "Span") {
				return true
			}
			if seen[call.Pos()] {
				return true
			}
			seen[call.Pos()] = true
			pass.Reportf(call.Pos(),
				"%s.Start uses the tracer's ambient span stack inside %s; concurrent children must use Span.Child",
				typ, context)
			return true
		})
	}
	ast.Inspect(file, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.GoStmt:
			if lit, ok := n.Call.Fun.(*ast.FuncLit); ok {
				flag(lit.Body, "a go statement")
			}
		case *ast.CallExpr:
			pkg, fn := pkgFunc(pass.Info, n)
			if pathBase(pkg) == "par" && (fn == "ForEach" || fn == "ForEachWorker") {
				for _, arg := range n.Args {
					if lit, ok := arg.(*ast.FuncLit); ok {
						flag(lit.Body, "a par worker closure")
					}
				}
			}
		}
		return true
	})
}

// --- rule 1: End on every path ---

type hygieneState struct {
	open     map[types.Object]token.Pos // span var → open position
	deferred map[types.Object]bool      // satisfied by a registered defer
}

func (st *hygieneState) clone() *hygieneState {
	c := &hygieneState{
		open:     make(map[types.Object]token.Pos, len(st.open)),
		deferred: make(map[types.Object]bool, len(st.deferred)),
	}
	for k, v := range st.open { //lint:commutative — map copy
		c.open[k] = v
	}
	for k := range st.deferred { //lint:commutative — map copy
		c.deferred[k] = true
	}
	return c
}

// mergeBranches folds sibling branch end-states into one: a span stays
// open unless every branch left it closed (must-close), and a defer
// counts only if every branch registered it (must-defer). Pessimism
// here means a span closed on only some arms is still reported at the
// next exit — exactly the all-paths contract.
func mergeBranches(branches []*hygieneState) *hygieneState {
	out := &hygieneState{open: map[types.Object]token.Pos{}, deferred: map[types.Object]bool{}}
	for _, b := range branches {
		for obj, pos := range b.open { //lint:commutative — set union
			out.open[obj] = pos
		}
	}
	if len(branches) > 0 {
		for obj := range branches[0].deferred { //lint:commutative — set intersection
			all := true
			for _, b := range branches[1:] {
				if !b.deferred[obj] {
					all = false
					break
				}
			}
			if all {
				out.deferred[obj] = true
			}
		}
	}
	return out
}

type hygieneWalker struct {
	pass     *Pass
	body     *ast.BlockStmt
	reported map[types.Object]bool
}

func (w *hygieneWalker) walkStmts(list []ast.Stmt, st *hygieneState, loopStart token.Pos) {
	for _, s := range list {
		w.walkStmt(s, st, loopStart)
	}
}

func (w *hygieneWalker) walkStmt(s ast.Stmt, st *hygieneState, loopStart token.Pos) {
	switch s := s.(type) {
	case *ast.AssignStmt:
		if len(s.Lhs) == len(s.Rhs) {
			for i, rhs := range s.Rhs {
				call, ok := rhs.(*ast.CallExpr)
				if !ok || !w.isOpen(call) {
					continue
				}
				id, ok := s.Lhs[i].(*ast.Ident)
				if !ok || id.Name == "_" {
					w.pass.Reportf(call.Pos(), "span is opened but its handle is discarded, so it can never be Ended")
					continue
				}
				obj := objOf(w.pass, id)
				if obj == nil || w.escapes(obj) {
					continue
				}
				st.open[obj] = call.Pos()
				delete(st.deferred, obj)
			}
		}
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok || len(vs.Names) != len(vs.Values) {
					continue
				}
				for i, v := range vs.Values {
					call, ok := v.(*ast.CallExpr)
					if !ok || !w.isOpen(call) {
						continue
					}
					obj := w.pass.Info.Defs[vs.Names[i]]
					if obj == nil || w.escapes(obj) {
						continue
					}
					st.open[obj] = call.Pos()
				}
			}
		}
	case *ast.ExprStmt:
		if call, ok := s.X.(*ast.CallExpr); ok {
			if w.isOpen(call) {
				w.pass.Reportf(call.Pos(), "span is opened but its handle is discarded, so it can never be Ended")
			}
			if obj := w.endedObj(call); obj != nil {
				delete(st.open, obj)
			}
		}
	case *ast.DeferStmt:
		if obj := w.endedObj(s.Call); obj != nil {
			delete(st.open, obj)
			st.deferred[obj] = true
		}
		if lit, ok := s.Call.Fun.(*ast.FuncLit); ok {
			// defer func() { ...; sp.End(); ... }() — every span Ended
			// anywhere in the deferred closure is covered on all paths.
			ast.Inspect(lit.Body, func(n ast.Node) bool {
				if call, ok := n.(*ast.CallExpr); ok {
					if obj := w.endedObj(call); obj != nil {
						delete(st.open, obj)
						st.deferred[obj] = true
					}
				}
				return true
			})
		}
	case *ast.ReturnStmt:
		w.reportOpen(st, s.Pos(), "this return")
	case *ast.BranchStmt:
		if (s.Tok == token.BREAK || s.Tok == token.CONTINUE) && loopStart.IsValid() {
			w.reportLoopOpen(st, s.Pos(), loopStart)
		}
	case *ast.IfStmt:
		if s.Init != nil {
			w.walkStmt(s.Init, st, loopStart)
		}
		a := st.clone()
		w.walkStmts(s.Body.List, a, loopStart)
		b := st.clone() // the else arm, or fall-through when absent
		if s.Else != nil {
			w.walkStmt(s.Else, b, loopStart)
		}
		m := mergeBranches([]*hygieneState{a, b})
		st.open, st.deferred = m.open, m.deferred
	case *ast.ForStmt:
		if s.Init != nil {
			w.walkStmt(s.Init, st, loopStart)
		}
		inner := st.clone()
		w.walkStmts(s.Body.List, inner, s.Body.Pos())
		w.reportLoopOpen(inner, s.Body.End(), s.Body.Pos())
	case *ast.RangeStmt:
		inner := st.clone()
		w.walkStmts(s.Body.List, inner, s.Body.Pos())
		w.reportLoopOpen(inner, s.Body.End(), s.Body.Pos())
	case *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
		var clauses []ast.Stmt
		hasDefault := false
		switch s := s.(type) {
		case *ast.SwitchStmt:
			clauses = s.Body.List
		case *ast.TypeSwitchStmt:
			clauses = s.Body.List
		case *ast.SelectStmt:
			clauses = s.Body.List
		}
		var bodies []*hygieneState
		for _, c := range clauses {
			b := st.clone()
			switch c := c.(type) {
			case *ast.CaseClause:
				if c.List == nil {
					hasDefault = true
				}
				w.walkStmts(c.Body, b, loopStart)
			case *ast.CommClause:
				if c.Comm == nil {
					hasDefault = true
				}
				w.walkStmts(c.Body, b, loopStart)
			}
			bodies = append(bodies, b)
		}
		if !hasDefault {
			bodies = append(bodies, st.clone()) // no-case-taken fall-through
		}
		if len(bodies) > 0 {
			m := mergeBranches(bodies)
			st.open, st.deferred = m.open, m.deferred
		}
	case *ast.BlockStmt:
		w.walkStmts(s.List, st, loopStart)
	case *ast.LabeledStmt:
		w.walkStmt(s.Stmt, st, loopStart)
	}
}

// reportOpen flags every tracked span still open at an exit point.
func (w *hygieneWalker) reportOpen(st *hygieneState, at token.Pos, where string) {
	for obj, pos := range st.open { //lint:commutative — dedup via w.reported; diagnostics sorted by the driver
		if st.deferred[obj] || w.reported[obj] {
			continue
		}
		w.reported[obj] = true
		w.pass.Reportf(pos, "span %s is not Ended on every path (leaks at %s, %s); add defer %s.End() or End it before the exit",
			obj.Name(), w.pass.Fset.Position(at), where, obj.Name())
	}
}

// reportLoopOpen flags spans opened inside the current loop body that
// are still open when the iteration can end — the next iteration would
// open a fresh span while this one leaks.
func (w *hygieneWalker) reportLoopOpen(st *hygieneState, at token.Pos, loopStart token.Pos) {
	for obj, pos := range st.open { //lint:commutative — dedup via w.reported; diagnostics sorted by the driver
		if pos < loopStart || st.deferred[obj] || w.reported[obj] {
			continue
		}
		w.reported[obj] = true
		w.pass.Reportf(pos, "span %s opened in a loop body is not Ended by %s; End it before the iteration ends",
			obj.Name(), w.pass.Fset.Position(at))
	}
}

// isOpen reports whether call opens an obs span.
func (w *hygieneWalker) isOpen(call *ast.CallExpr) bool {
	pkg, typ, method := methodOn(w.pass.Info, call)
	if pathBase(pkg) != "obs" {
		return false
	}
	return (typ == "Tracer" && method == "Start") ||
		(typ == "Span" && (method == "Start" || method == "Child"))
}

// endedObj returns the span variable a call Ends, if any.
func (w *hygieneWalker) endedObj(call *ast.CallExpr) types.Object {
	pkg, typ, method := methodOn(w.pass.Info, call)
	if pathBase(pkg) != "obs" || typ != "Span" || method != "End" {
		return nil
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return nil
	}
	return objOf(w.pass, id)
}

// escapes reports whether the span object is used outside receiver
// position in this function — returned, stored, or passed along. Such
// spans transfer ownership and are exempt from the local End check.
func (w *hygieneWalker) escapes(obj types.Object) bool {
	recv := map[*ast.Ident]bool{}
	lhs := map[*ast.Ident]bool{}
	ast.Inspect(w.body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.SelectorExpr:
			if id, ok := n.X.(*ast.Ident); ok {
				recv[id] = true
			}
		case *ast.AssignStmt:
			for _, l := range n.Lhs {
				if id, ok := l.(*ast.Ident); ok {
					lhs[id] = true
				}
			}
		}
		return true
	})
	escaped := false
	ast.Inspect(w.body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok || escaped || objOf(w.pass, id) != obj {
			return true
		}
		if !recv[id] && !lhs[id] {
			escaped = true
		}
		return true
	})
	return escaped
}
