package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Spanhygiene enforces the two obs contracts that keep trace trees
// well-formed (see internal/obs and docs/observability.md):
//
//  1. Every span opened in a function — tr.Start, sp.Start, sp.Child —
//     must be Ended on every path out of the function (or out of the
//     loop iteration that opened it). A span leaked on an error return
//     never emits its event and silently truncates the trace.
//  2. Code running concurrently — a `go` statement or a par.ForEach /
//     par.ForEachWorker worker closure — must open spans with
//     Span.Child, never the ambient-stack forms Tracer.Start /
//     Span.Start, whose implicit innermost-open-span nesting races
//     across goroutines.
//
// The End check is an instance of the shared must-reach dataflow
// engine (dataflow.go) over the per-function CFG (cfg.go): it tracks
// spans bound to local variables, accepts `defer sp.End()` (directly
// or inside a deferred closure) as ending every function exit, checks
// loop iterations separately — a defer registered inside the loop body
// does not run until function return, so it cannot cover iteration
// ends — and gives up on spans that escape the function (returned,
// stored, or passed as an argument). Suppress a deliberate exception
// with //lint:allow spanhygiene.
var Spanhygiene = &Analyzer{
	Name: "spanhygiene",
	Doc:  "obs spans must End on all paths; concurrent code must use Span.Child",
	Run:  runSpanhygiene,
}

var spanRule = &consumeRule{
	isAcquire:      isSpanOpen,
	isResourceType: func(t types.Type) bool { return true }, // isAcquire is shape-exact; any bound handle counts
	consumes:       spanEndedObj,
	escapes: func(p *Pass, body *ast.BlockStmt, obj types.Object) bool {
		return escapesWith(p, body, obj, escapeOpts{})
	},
	discardMsg: "span is opened but its handle is discarded, so it can never be Ended",
	reportExit: func(p *Pass, obj types.Object, acq token.Pos, at token.Position, where string) {
		p.Reportf(acq, "span %s is not Ended on every path (leaks at %s, %s); add defer %s.End() or End it before the exit",
			obj.Name(), at, where, obj.Name())
	},
	reportLoop: func(p *Pass, obj types.Object, acq token.Pos, at token.Position) {
		p.Reportf(acq, "span %s opened in a loop body is not Ended by %s; End it before the iteration ends",
			obj.Name(), at)
	},
	reportDeferLoop: func(p *Pass, obj types.Object, acq token.Pos, at token.Position) {
		p.Reportf(acq, "span %s opened in a loop body is Ended only by a defer registered in the same iteration; defers run at function return, not at the iteration end (%s) — End it directly before the iteration ends",
			obj.Name(), at)
	},
}

func runSpanhygiene(pass *Pass) error {
	for _, file := range pass.Files {
		checkConcurrentStarts(pass, file)
	}
	return spanRule.run(pass)
}

// isSpanOpen reports whether call opens an obs span.
func isSpanOpen(pass *Pass, call *ast.CallExpr) bool {
	pkg, typ, method := methodOn(pass.Info, call)
	if pathBase(pkg) != "obs" {
		return false
	}
	return (typ == "Tracer" && method == "Start") ||
		(typ == "Span" && (method == "Start" || method == "Child"))
}

// spanEndedObj returns the span variable a call Ends, if any.
func spanEndedObj(pass *Pass, call *ast.CallExpr) types.Object {
	pkg, typ, method := methodOn(pass.Info, call)
	if pathBase(pkg) != "obs" || typ != "Span" || method != "End" {
		return nil
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return nil
	}
	return objOf(pass, id)
}

// --- rule 2: ambient Start in concurrent code ---

// checkConcurrentStarts finds `go func(){...}` bodies and function
// literals passed to par.ForEach/ForEachWorker, and flags every
// Tracer.Start / Span.Start in their subtrees (nested literals
// inherit the concurrent context).
func checkConcurrentStarts(pass *Pass, file *ast.File) {
	seen := map[token.Pos]bool{}
	flag := func(root ast.Node, context string) {
		ast.Inspect(root, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			pkg, typ, method := methodOn(pass.Info, call)
			if pathBase(pkg) != "obs" || method != "Start" || (typ != "Tracer" && typ != "Span") {
				return true
			}
			if seen[call.Pos()] {
				return true
			}
			seen[call.Pos()] = true
			pass.Reportf(call.Pos(),
				"%s.Start uses the tracer's ambient span stack inside %s; concurrent children must use Span.Child",
				typ, context)
			return true
		})
	}
	ast.Inspect(file, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.GoStmt:
			if lit, ok := n.Call.Fun.(*ast.FuncLit); ok {
				flag(lit.Body, "a go statement")
			}
		case *ast.CallExpr:
			pkg, fn := pkgFunc(pass.Info, n)
			if pathBase(pkg) == "par" && (fn == "ForEach" || fn == "ForEachWorker") {
				for _, arg := range n.Args {
					if lit, ok := arg.(*ast.FuncLit); ok {
						flag(lit.Body, "a par worker closure")
					}
				}
			}
		}
		return true
	})
}
