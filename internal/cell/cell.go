// Package cell models the clock buffer library: cells characterized, as in
// Liberty NLDM, by two-dimensional lookup tables of delay and output slew
// indexed by input slew and output load. Tables are interpolated bilinearly
// and extrapolated linearly at the edges, matching the behaviour of
// commercial delay calculators.
//
// The built-in library is generated from a first-order switch-resistance
// model and then *only* the tables are used downstream, so the rest of the
// system exercises the same table-lookup path it would with vendor data.
package cell

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// Table is a 2-D NLDM lookup table: Values[i][j] is the table value at
// input slew SlewAxis[i] and load LoadAxis[j]. Both axes must be strictly
// increasing.
type Table struct {
	SlewAxis []float64   `json:"slew_axis"` // s
	LoadAxis []float64   `json:"load_axis"` // F
	Values   [][]float64 `json:"values"`
}

// Validate checks table shape and axis monotonicity.
func (t *Table) Validate() error {
	if len(t.SlewAxis) < 2 || len(t.LoadAxis) < 2 {
		return errors.New("cell: table axes need at least 2 points")
	}
	if len(t.Values) != len(t.SlewAxis) {
		return fmt.Errorf("cell: table has %d rows, want %d", len(t.Values), len(t.SlewAxis))
	}
	for i, row := range t.Values {
		if len(row) != len(t.LoadAxis) {
			return fmt.Errorf("cell: table row %d has %d cols, want %d", i, len(row), len(t.LoadAxis))
		}
	}
	for i := 1; i < len(t.SlewAxis); i++ {
		if t.SlewAxis[i] <= t.SlewAxis[i-1] {
			return errors.New("cell: slew axis not strictly increasing")
		}
	}
	for j := 1; j < len(t.LoadAxis); j++ {
		if t.LoadAxis[j] <= t.LoadAxis[j-1] {
			return errors.New("cell: load axis not strictly increasing")
		}
	}
	return nil
}

// Lookup evaluates the table at (slew, load) with bilinear interpolation
// inside the characterized region and linear extrapolation outside it.
func (t *Table) Lookup(slew, load float64) float64 {
	i0, i1, fs := bracket(t.SlewAxis, slew)
	j0, j1, fl := bracket(t.LoadAxis, load)
	v00 := t.Values[i0][j0]
	v01 := t.Values[i0][j1]
	v10 := t.Values[i1][j0]
	v11 := t.Values[i1][j1]
	return v00*(1-fs)*(1-fl) + v01*(1-fs)*fl + v10*fs*(1-fl) + v11*fs*fl
}

// bracket finds the axis interval for x and the interpolation fraction.
// Outside the axis range the nearest interval is used with a fraction
// outside [0,1], which yields linear extrapolation.
func bracket(axis []float64, x float64) (lo, hi int, frac float64) {
	n := len(axis)
	k := sort.SearchFloat64s(axis, x)
	switch {
	case k <= 0:
		lo, hi = 0, 1
	case k >= n:
		lo, hi = n-2, n-1
	default:
		lo, hi = k-1, k
	}
	frac = (x - axis[lo]) / (axis[hi] - axis[lo])
	return lo, hi, frac
}

// Buffer is one clock buffer cell.
type Buffer struct {
	Name        string  `json:"name"`
	Drive       float64 `json:"drive"`        // relative drive strength (X-factor)
	InputCap    float64 `json:"input_cap"`    // F
	InternalCap float64 `json:"internal_cap"` // F, switched internally each cycle
	Leakage     float64 `json:"leakage"`      // W
	Area        float64 `json:"area"`         // µm²
	Delay       Table   `json:"delay"`        // s
	OutSlew     Table   `json:"out_slew"`     // s
}

// Validate checks the cell's tables and scalar parameters.
func (b *Buffer) Validate() error {
	if b.Name == "" {
		return errors.New("cell: buffer with empty name")
	}
	if b.InputCap <= 0 {
		return fmt.Errorf("cell %s: non-positive input cap", b.Name)
	}
	if b.InternalCap < 0 || b.Leakage < 0 || b.Area < 0 {
		return fmt.Errorf("cell %s: negative scalar parameter", b.Name)
	}
	if err := b.Delay.Validate(); err != nil {
		return fmt.Errorf("cell %s delay: %w", b.Name, err)
	}
	if err := b.OutSlew.Validate(); err != nil {
		return fmt.Errorf("cell %s out_slew: %w", b.Name, err)
	}
	return nil
}

// DelayAt returns the cell delay at the given input slew and load.
func (b *Buffer) DelayAt(slew, load float64) float64 { return b.Delay.Lookup(slew, load) }

// OutSlewAt returns the output transition at the given input slew and load.
func (b *Buffer) OutSlewAt(slew, load float64) float64 { return b.OutSlew.Lookup(slew, load) }

// Library is an ordered set of buffer cells, weakest drive first.
type Library struct {
	Name    string   `json:"name"`
	Buffers []Buffer `json:"buffers"`
}

// Validate checks every cell and the drive ordering.
func (l *Library) Validate() error {
	if l.Name == "" {
		return errors.New("cell: library with empty name")
	}
	if len(l.Buffers) == 0 {
		return fmt.Errorf("cell: library %s has no buffers", l.Name)
	}
	seen := make(map[string]bool, len(l.Buffers))
	for i := range l.Buffers {
		b := &l.Buffers[i]
		if err := b.Validate(); err != nil {
			return err
		}
		if seen[b.Name] {
			return fmt.Errorf("cell: duplicate buffer name %q", b.Name)
		}
		seen[b.Name] = true
		if i > 0 && b.Drive <= l.Buffers[i-1].Drive {
			return fmt.Errorf("cell: library %s not ordered by drive at %q", l.Name, b.Name)
		}
	}
	return nil
}

// ByName returns the buffer with the given name.
func (l *Library) ByName(name string) (*Buffer, bool) {
	for i := range l.Buffers {
		if l.Buffers[i].Name == name {
			return &l.Buffers[i], true
		}
	}
	return nil, false
}

// Strongest returns the highest-drive buffer in the library.
func (l *Library) Strongest() *Buffer { return &l.Buffers[len(l.Buffers)-1] }

// Weakest returns the lowest-drive buffer in the library.
func (l *Library) Weakest() *Buffer { return &l.Buffers[0] }

// SmallestMeeting returns the weakest buffer whose output slew at the given
// input slew and load does not exceed maxSlew, or the strongest buffer (and
// false) if none qualifies.
func (l *Library) SmallestMeeting(slew, load, maxSlew float64) (*Buffer, bool) {
	for i := range l.Buffers {
		b := &l.Buffers[i]
		if b.OutSlewAt(slew, load) <= maxSlew {
			return b, true
		}
	}
	return l.Strongest(), false
}

// GenParams control synthetic library generation.
type GenParams struct {
	// R1 is the switch resistance of a unit-drive (X1) cell; a cell of
	// drive k has resistance R1/k.
	R1 float64
	// Cin1 is the input capacitance of a unit-drive cell; scales with k.
	Cin1 float64
	// T0 is the intrinsic (unloaded) delay, identical across sizes.
	T0 float64
	// SlewSens is the delay sensitivity to input slew (dimensionless).
	SlewSens float64
	// Drives lists the X-factors to generate, ascending.
	Drives []float64
	// Leak1 is the leakage of a unit cell (W); scales with k.
	Leak1 float64
	// Area1 is the area of a unit cell (µm²); scales with k.
	Area1 float64
}

// DefaultGenParams returns 45 nm-class generation parameters.
func DefaultGenParams() GenParams {
	return GenParams{
		R1:       4000,    // Ω
		Cin1:     1.2e-15, // F
		T0:       15e-12,  // s
		SlewSens: 0.20,
		Drives:   []float64{2, 4, 8, 16, 32},
		Leak1:    5e-9, // W
		Area1:    0.8,  // µm²
	}
}

// slewFromTau converts an RC time constant to a 10–90% transition time.
const slewFromTau = 2.2

// ln9 scales a step-response Elmore delay to a 10–90% transition (PERI).
const ln9 = 2.1972245773362196

// Generate builds a synthetic buffer library from first-order physics:
//
//	delay(s, cl)   = T0 + ln2·Rd·cl + SlewSens·s
//	outslew(s, cl) = sqrt((2.2·Rd·cl)² + (0.25·s)²)
//
// sampled onto NLDM axes. Downstream code sees only the tables.
func Generate(name string, p GenParams) (*Library, error) {
	if len(p.Drives) == 0 {
		return nil, errors.New("cell: no drives requested")
	}
	slewAxis := []float64{5e-12, 20e-12, 50e-12, 100e-12, 200e-12, 400e-12}
	lib := &Library{Name: name}
	for _, k := range p.Drives {
		if k <= 0 {
			return nil, fmt.Errorf("cell: non-positive drive %g", k)
		}
		rd := p.R1 / k
		cin := p.Cin1 * k
		// Load axis spans 0.5×…40× the cell's own input cap, the usual
		// characterization span.
		loadAxis := make([]float64, 0, 7)
		for _, m := range []float64{0.5, 1, 2, 5, 10, 20, 40} {
			loadAxis = append(loadAxis, cin*m)
		}
		delay := Table{SlewAxis: slewAxis, LoadAxis: loadAxis}
		oslew := Table{SlewAxis: slewAxis, LoadAxis: loadAxis}
		for _, s := range slewAxis {
			var drow, srow []float64
			for _, cl := range loadAxis {
				drow = append(drow, p.T0+math.Ln2*rd*cl+p.SlewSens*s)
				srow = append(srow, math.Hypot(slewFromTau*rd*cl, 0.25*s))
			}
			delay.Values = append(delay.Values, drow)
			oslew.Values = append(oslew.Values, srow)
		}
		lib.Buffers = append(lib.Buffers, Buffer{
			Name:        fmt.Sprintf("CLKBUF_X%g", k),
			Drive:       k,
			InputCap:    cin,
			InternalCap: 0.35 * cin,
			Leakage:     p.Leak1 * k,
			Area:        p.Area1 * k,
			Delay:       delay,
			OutSlew:     oslew,
		})
	}
	if err := lib.Validate(); err != nil {
		return nil, err
	}
	return lib, nil
}

// Default45 returns the built-in 45 nm-class clock buffer library.
func Default45() *Library {
	lib, err := Generate("clkbuf45", DefaultGenParams())
	if err != nil {
		panic("cell: built-in library invalid: " + err.Error())
	}
	return lib
}

// Default65 returns the built-in 65 nm-class clock buffer library: slower,
// larger cells with more input capacitance per drive.
func Default65() *Library {
	p := DefaultGenParams()
	p.R1 = 5200
	p.Cin1 = 1.8e-15
	p.T0 = 25e-12
	p.Area1 = 1.6
	lib, err := Generate("clkbuf65", p)
	if err != nil {
		panic("cell: built-in library invalid: " + err.Error())
	}
	return lib
}
