package cell

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func simpleTable() Table {
	return Table{
		SlewAxis: []float64{1, 2, 3},
		LoadAxis: []float64{10, 20},
		Values: [][]float64{
			{1, 2},
			{2, 3},
			{3, 4},
		},
	}
}

func TestTableValidate(t *testing.T) {
	tab := simpleTable()
	if err := tab.Validate(); err != nil {
		t.Fatalf("valid table rejected: %v", err)
	}
	bad := simpleTable()
	bad.SlewAxis = []float64{1}
	if err := bad.Validate(); err == nil {
		t.Error("one-point axis should fail")
	}
	bad = simpleTable()
	bad.SlewAxis = []float64{1, 1, 3}
	if err := bad.Validate(); err == nil {
		t.Error("non-increasing axis should fail")
	}
	bad = simpleTable()
	bad.Values = bad.Values[:2]
	if err := bad.Validate(); err == nil {
		t.Error("row count mismatch should fail")
	}
	bad = simpleTable()
	bad.Values[1] = []float64{1}
	if err := bad.Validate(); err == nil {
		t.Error("col count mismatch should fail")
	}
	bad = simpleTable()
	bad.LoadAxis = []float64{20, 10}
	if err := bad.Validate(); err == nil {
		t.Error("decreasing load axis should fail")
	}
}

func TestLookupAtGridPoints(t *testing.T) {
	tab := simpleTable()
	for i, s := range tab.SlewAxis {
		for j, l := range tab.LoadAxis {
			if got := tab.Lookup(s, l); math.Abs(got-tab.Values[i][j]) > 1e-12 {
				t.Errorf("Lookup(%g,%g) = %g, want %g", s, l, got, tab.Values[i][j])
			}
		}
	}
}

func TestLookupInterpolation(t *testing.T) {
	tab := simpleTable()
	// Midpoint in both axes of the lower-left cell: mean of 4 corners.
	got := tab.Lookup(1.5, 15)
	want := (1.0 + 2 + 2 + 3) / 4
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("bilinear midpoint = %g, want %g", got, want)
	}
}

func TestLookupExtrapolation(t *testing.T) {
	tab := simpleTable()
	// Table is linear (value = slew + load/10 − 1 + ...) in each axis; the
	// extrapolated value continues the edge slope.
	lo := tab.Lookup(0, 10) // one below the slew axis start
	if math.Abs(lo-0) > 1e-12 {
		t.Errorf("low extrapolation = %g, want 0", lo)
	}
	hi := tab.Lookup(4, 20)
	if math.Abs(hi-5) > 1e-12 {
		t.Errorf("high extrapolation = %g, want 5", hi)
	}
}

func TestLookupMatchesGeneratingPhysics(t *testing.T) {
	// The generated tables sample an analytic form; lookups on the grid and
	// within cells must track it closely.
	p := DefaultGenParams()
	lib, err := Generate("t", p)
	if err != nil {
		t.Fatal(err)
	}
	b, ok := lib.ByName("CLKBUF_X8")
	if !ok {
		t.Fatal("X8 missing")
	}
	rd := p.R1 / 8
	f := func(sRaw, clRaw float64) bool {
		s := 5e-12 + math.Abs(math.Mod(sRaw, 395e-12))
		cl := b.InputCap * (0.5 + math.Abs(math.Mod(clRaw, 39.5)))
		want := p.T0 + math.Ln2*rd*cl + p.SlewSens*s
		got := b.DelayAt(s, cl)
		// Bilinear interpolation of a bilinear-in-axes function is exact up
		// to float noise; the analytic form is linear in s and cl, so the
		// error must be tiny.
		return math.Abs(got-want) <= 1e-15+1e-9*want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDelayMonotoneInLoad(t *testing.T) {
	lib := Default45()
	for i := range lib.Buffers {
		b := &lib.Buffers[i]
		prev := -1.0
		for m := 0.5; m < 60; m *= 1.4 {
			d := b.DelayAt(50e-12, b.InputCap*m)
			if d <= prev {
				t.Errorf("%s: delay not increasing in load", b.Name)
				break
			}
			prev = d
		}
	}
}

func TestStrongerCellFasterAtSameLoad(t *testing.T) {
	lib := Default45()
	load := 60e-15
	slew := 50e-12
	for i := 1; i < len(lib.Buffers); i++ {
		weak := lib.Buffers[i-1].DelayAt(slew, load)
		strong := lib.Buffers[i].DelayAt(slew, load)
		if strong >= weak {
			t.Errorf("%s not faster than %s at %g F load",
				lib.Buffers[i].Name, lib.Buffers[i-1].Name, load)
		}
	}
}

func TestLibraryValidate(t *testing.T) {
	lib := Default45()
	if err := lib.Validate(); err != nil {
		t.Fatalf("built-in library invalid: %v", err)
	}
	bad := Default45()
	bad.Buffers[1].Name = bad.Buffers[0].Name
	if err := bad.Validate(); err == nil {
		t.Error("duplicate cell names should fail")
	}
	bad = Default45()
	bad.Buffers[0].Drive = 100
	if err := bad.Validate(); err == nil {
		t.Error("drive ordering violation should fail")
	}
	bad = Default45()
	bad.Buffers[0].InputCap = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero input cap should fail")
	}
	empty := &Library{Name: "e"}
	if err := empty.Validate(); err == nil {
		t.Error("empty library should fail")
	}
}

func TestByName(t *testing.T) {
	lib := Default45()
	if _, ok := lib.ByName("CLKBUF_X8"); !ok {
		t.Error("X8 should exist")
	}
	if _, ok := lib.ByName("NOPE"); ok {
		t.Error("unknown cell should not resolve")
	}
}

func TestStrongestWeakest(t *testing.T) {
	lib := Default45()
	if lib.Weakest().Drive >= lib.Strongest().Drive {
		t.Error("weakest should have lower drive than strongest")
	}
}

func TestSmallestMeeting(t *testing.T) {
	lib := Default45()
	// Light load: the weakest cell should qualify.
	b, ok := lib.SmallestMeeting(20e-12, 2e-15, 100e-12)
	if !ok {
		t.Fatal("no cell meets a trivial constraint")
	}
	if b.Name != lib.Weakest().Name {
		t.Errorf("picked %s for a trivial load, want weakest", b.Name)
	}
	// Heavy load: a stronger cell is needed.
	heavy, ok := lib.SmallestMeeting(50e-12, 150e-15, 100e-12)
	if !ok {
		t.Fatalf("no cell meets 150 fF / 100 ps — library too weak for its own MaxCap")
	}
	if heavy.Drive <= lib.Weakest().Drive {
		t.Error("heavy load should need a stronger cell")
	}
	// Impossible constraint: returns strongest with ok=false.
	s, ok := lib.SmallestMeeting(400e-12, 5e-12, 1e-15)
	if ok || s.Name != lib.Strongest().Name {
		t.Errorf("impossible constraint: got %s, ok=%v", s.Name, ok)
	}
}

func TestGenerateErrors(t *testing.T) {
	p := DefaultGenParams()
	p.Drives = nil
	if _, err := Generate("x", p); err == nil {
		t.Error("empty drive list should fail")
	}
	p = DefaultGenParams()
	p.Drives = []float64{-1}
	if _, err := Generate("x", p); err == nil {
		t.Error("negative drive should fail")
	} else if !strings.Contains(err.Error(), "drive") {
		t.Errorf("unhelpful error: %v", err)
	}
}

func TestDefault65Differs(t *testing.T) {
	a, b := Default45(), Default65()
	if a.Buffers[0].InputCap >= b.Buffers[0].InputCap {
		t.Error("65 nm cells should have more input cap")
	}
	if a.Buffers[0].DelayAt(50e-12, 20e-15) >= b.Buffers[0].DelayAt(50e-12, 20e-15) {
		t.Error("65 nm cells should be slower")
	}
}

func TestOutSlewIncreasesWithLoad(t *testing.T) {
	lib := Default45()
	b := lib.Buffers[2]
	if b.OutSlewAt(50e-12, 10e-15) >= b.OutSlewAt(50e-12, 100e-15) {
		t.Error("output slew must grow with load")
	}
}
