package report

import (
	"strings"
	"testing"

	"smartndr/internal/obs"
)

func TestTableRender(t *testing.T) {
	tb := NewTable("T1: demo", "bench", "power", "skew")
	tb.AddRow("cns01", "1.234", "12.3")
	tb.AddRow("cns02", "10.5", "9.1")
	out := tb.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 { // title + header + sep + 2 rows
		t.Fatalf("lines = %d:\n%s", len(lines), out)
	}
	if !strings.Contains(lines[0], "T1: demo") {
		t.Error("title missing")
	}
	if !strings.Contains(lines[1], "bench") || !strings.Contains(lines[1], "skew") {
		t.Error("headers missing")
	}
	// Alignment: all rows same width.
	w := len(lines[1])
	for i := 2; i < len(lines); i++ {
		if len(lines[i]) != w {
			t.Errorf("row %d width %d, want %d:\n%s", i, len(lines[i]), w, out)
		}
	}
}

func TestTableNoTitle(t *testing.T) {
	tb := NewTable("", "a")
	tb.AddRow("1")
	if strings.HasPrefix(tb.String(), "\n") {
		t.Error("no stray blank title line")
	}
}

func TestAddRowPads(t *testing.T) {
	tb := NewTable("", "a", "b", "c")
	tb.AddRow("only")
	tb.AddRow("x", "y", "z", "overflow")
	out := tb.String()
	if strings.Contains(out, "overflow") {
		t.Error("overflow cell should be dropped")
	}
}

func TestAddRowf(t *testing.T) {
	tb := NewTable("", "v", "p")
	if err := tb.AddRowf("%.2f", 1.2345, "%d", 42); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(tb.String(), "1.23") || !strings.Contains(tb.String(), "42") {
		t.Errorf("formatted row missing: %s", tb.String())
	}
	if err := tb.AddRowf("%.2f"); err == nil {
		t.Error("odd pair count must fail")
	}
	if err := tb.AddRowf(3, 4); err == nil {
		t.Error("non-string format must fail")
	}
}

func TestTimingTable(t *testing.T) {
	// A root span (0–10 ms) holding two "pass" calls (3 ms + 2 ms) plus
	// the synthetic metrics event, delivered innermost-first as a real
	// tracer would.
	events := []obs.SpanEvent{
		{Span: "run/pass", Depth: 1, StartNS: 1e6, DurNS: 3e6},
		{Span: "run/pass", Depth: 1, StartNS: 5e6, DurNS: 2e6},
		{Span: "run", Depth: 0, StartNS: 0, DurNS: 10e6},
		{Span: "metrics", Depth: 0, StartNS: 10e6, DurNS: 0},
	}
	out := TimingTable("phases", events).String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 6 { // title + header + sep + run + pass + wall clock
		t.Fatalf("lines = %d:\n%s", len(lines), out)
	}
	if strings.Contains(out, "metrics") {
		t.Errorf("synthetic metrics event must be skipped:\n%s", out)
	}
	// Rows come out in start-time order: run before pass.
	runLine, passLine, wallLine := lines[3], lines[4], lines[5]
	if !strings.Contains(runLine, "run") || !strings.Contains(runLine, "10.000") ||
		!strings.Contains(runLine, "100.0%") {
		t.Errorf("run row wrong: %q", runLine)
	}
	// Two pass calls aggregate: 2 calls, 5 ms total, 2.5 ms mean, 50%.
	for _, want := range []string{"pass", "2", "5.000", "2.500", "50.0%"} {
		if !strings.Contains(passLine, want) {
			t.Errorf("pass row missing %q: %q", want, passLine)
		}
	}
	// Indented one level deeper than run.
	if strings.Index(passLine, "pass") <= strings.Index(runLine, "run") {
		t.Errorf("pass not indented under run:\n%s", out)
	}
	if !strings.Contains(wallLine, "wall clock") || !strings.Contains(wallLine, "10.000") {
		t.Errorf("wall-clock row wrong: %q", wallLine)
	}
}

func TestTimingTableEmpty(t *testing.T) {
	out := TimingTable("empty", nil).String()
	if strings.Contains(out, "wall clock") {
		t.Errorf("no events should render no wall-clock row:\n%s", out)
	}
}

func TestFormatters(t *testing.T) {
	if Ps(12.34e-12) != "12.34" {
		t.Errorf("Ps = %s", Ps(12.34e-12))
	}
	if MW(0.0123) != "12.300" {
		t.Errorf("MW = %s", MW(0.0123))
	}
	if PF(5.5e-12) != "5.500" {
		t.Errorf("PF = %s", PF(5.5e-12))
	}
	if Um(123.4) != "123" {
		t.Errorf("Um = %s", Um(123.4))
	}
	if Pct(-0.123) != "-12.3%" {
		t.Errorf("Pct = %s", Pct(-0.123))
	}
	if Pct(0.05) != "+5.0%" {
		t.Errorf("Pct = %s", Pct(0.05))
	}
}
