// Package report renders the experiment tables and series as aligned
// monospace text, the way the paper's tables read. It is deliberately
// dependency-free: rows are strings and floats formatted by the caller's
// chosen precision.
package report

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"smartndr/internal/obs"
)

// Table accumulates rows and renders with per-column alignment.
type Table struct {
	title   string
	headers []string
	rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{title: title, headers: headers}
}

// AddRow appends a row; short rows are padded with empty cells, long rows
// are truncated to the header width.
func (t *Table) AddRow(cells ...string) {
	row := make([]string, len(t.headers))
	for i := range row {
		if i < len(cells) {
			row[i] = cells[i]
		}
	}
	t.rows = append(t.rows, row)
}

// AddRowf appends a row of formatted values: each value is rendered with
// its paired format verb.
func (t *Table) AddRowf(pairs ...any) error {
	if len(pairs)%2 != 0 {
		return fmt.Errorf("report: AddRowf needs format/value pairs")
	}
	cells := make([]string, 0, len(pairs)/2)
	for i := 0; i < len(pairs); i += 2 {
		f, ok := pairs[i].(string)
		if !ok {
			return fmt.Errorf("report: AddRowf pair %d: format is %T, want string", i/2, pairs[i])
		}
		cells = append(cells, fmt.Sprintf(f, pairs[i+1]))
	}
	t.AddRow(cells...)
	return nil
}

// Render writes the table.
func (t *Table) Render(w io.Writer) error {
	widths := make([]int, len(t.headers))
	for i, h := range t.headers {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.title != "" {
		fmt.Fprintf(&b, "%s\n", t.title)
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			// Right-align numbers-ish columns; headers follow their column.
			fmt.Fprintf(&b, "%*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.headers)
	sep := make([]string, len(t.headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.rows {
		writeRow(row)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// String renders to a string (for tests and embedding in docs).
func (t *Table) String() string {
	var b strings.Builder
	_ = t.Render(&b)
	return b.String()
}

// TimingTable renders collected span events as a phase-breakdown table:
// one row per distinct span path (indented by nesting depth, in
// start-time order) with call count, total and mean wall time, and the
// share of the run's wall clock. A final "wall clock" row holds the
// span between the first start and the last end, so top-level rows can
// be checked against it. The synthetic "metrics" event is skipped.
func TimingTable(title string, events []obs.SpanEvent) *Table {
	type agg struct {
		path    string
		depth   int
		calls   int
		totalNS int64
		firstNS int64
	}
	var (
		order    []*agg
		byPath         = map[string]*agg{}
		minStart int64 = 0
		maxEnd   int64 = 0
		seenAny        = false
	)
	evs := append([]obs.SpanEvent(nil), events...)
	sort.SliceStable(evs, func(a, b int) bool { return evs[a].StartNS < evs[b].StartNS })
	for _, ev := range evs {
		if ev.Span == "metrics" && ev.DurNS == 0 {
			continue
		}
		if !seenAny || ev.StartNS < minStart {
			minStart = ev.StartNS
		}
		if end := ev.StartNS + ev.DurNS; !seenAny || end > maxEnd {
			maxEnd = end
		}
		seenAny = true
		a := byPath[ev.Span]
		if a == nil {
			a = &agg{path: ev.Span, depth: ev.Depth, firstNS: ev.StartNS}
			byPath[ev.Span] = a
			order = append(order, a)
		}
		a.calls++
		a.totalNS += ev.DurNS
	}
	wallNS := maxEnd - minStart
	tb := NewTable(title, "phase", "calls", "total (ms)", "avg (ms)", "% wall")
	nameOf := func(a *agg) string {
		name := a.path
		if i := strings.LastIndexByte(name, '/'); i >= 0 {
			name = name[i+1:]
		}
		return strings.Repeat("  ", a.depth) + name
	}
	nameW := 0
	for _, a := range order {
		if n := len(nameOf(a)); n > nameW {
			nameW = n
		}
	}
	for _, a := range order {
		pct := "—"
		if wallNS > 0 {
			pct = fmt.Sprintf("%.1f%%", 100*float64(a.totalNS)/float64(wallNS))
		}
		// Left-pad-to-width keeps the tree indentation visible despite the
		// table's right alignment.
		tb.AddRow(fmt.Sprintf("%-*s", nameW, nameOf(a)),
			fmt.Sprintf("%d", a.calls),
			fmt.Sprintf("%.3f", float64(a.totalNS)/1e6),
			fmt.Sprintf("%.3f", float64(a.totalNS)/1e6/float64(a.calls)),
			pct)
	}
	if seenAny {
		tb.AddRow(fmt.Sprintf("%-*s", nameW, "wall clock"), "",
			fmt.Sprintf("%.3f", float64(wallNS)/1e6), "", "100.0%")
	}
	return tb
}

// Ps formats seconds as picoseconds with 2 decimals.
func Ps(s float64) string { return fmt.Sprintf("%.2f", s*1e12) }

// MW formats watts as milliwatts with 3 decimals.
func MW(w float64) string { return fmt.Sprintf("%.3f", w*1e3) }

// PF formats farads as picofarads with 3 decimals.
func PF(f float64) string { return fmt.Sprintf("%.3f", f*1e12) }

// Um formats microns with no decimals.
func Um(u float64) string { return fmt.Sprintf("%.0f", u) }

// Pct formats a ratio as a signed percentage with 1 decimal.
func Pct(x float64) string { return fmt.Sprintf("%+.1f%%", x*100) }
